#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/dynamic_index.h"
#include "core/ego_network.h"
#include "core/esd_index.h"
#include "core/index_builder.h"
#include "core/naive_topk.h"
#include "core/pair_diversity.h"
#include "gen/erdos_renyi.h"
#include "gen/holme_kim.h"
#include "graph/builder.h"
#include "tests/test_helpers.h"
#include "util/rng.h"

namespace esd::core {
namespace {

using graph::Edge;
using graph::Graph;
using graph::GraphBuilder;
using graph::VertexId;

// ---------------------------------------------------------------------------
// Pair structural diversity (Dong et al. [3])
// ---------------------------------------------------------------------------

TEST(PairDiversityTest, NonEdgePairScored) {
  // u=0 and w=2 are NOT adjacent but share neighbors {1, 3}; 1 and 3 are
  // not adjacent, so the pair (0,2) has two singleton contexts.
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(0, 3);
  b.AddEdge(3, 2);
  Graph g = b.Build();
  EXPECT_EQ(PairScore(g, 0, 2, 1), 2u);
  EXPECT_EQ(PairScore(g, 0, 2, 2), 0u);
  EXPECT_EQ(PairScore(g, 0, 0, 1), 0u);  // degenerate
  EXPECT_EQ(PairScore(g, 0, 2, 0), 0u);
}

TEST(PairDiversityTest, AgreesWithEdgeScoreOnEdges) {
  Graph g = gen::ErdosRenyiGnp(30, 0.3, 1);
  for (const Edge& e : g.Edges()) {
    for (uint32_t tau : {1u, 2u, 3u}) {
      EXPECT_EQ(PairScore(g, e.u, e.v, tau), EdgeScore(g, e.u, e.v, tau));
    }
  }
}

std::vector<ScoredPair> BruteNonAdjacentTopK(const Graph& g, uint32_t k,
                                             uint32_t tau) {
  std::vector<ScoredPair> all;
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (VertexId v = u + 1; v < g.NumVertices(); ++v) {
      if (g.HasEdge(u, v)) continue;
      uint32_t s = PairScore(g, u, v, tau);
      if (s > 0) all.push_back(ScoredPair{u, v, s});
    }
  }
  std::sort(all.begin(), all.end(),
            [](const ScoredPair& a, const ScoredPair& b) {
              return a.score > b.score;
            });
  if (all.size() > k) all.resize(k);
  return all;
}

class PairTopKTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PairTopKTest, MatchesBruteForceScores) {
  Graph g = gen::ErdosRenyiGnp(35, 0.2, GetParam());
  for (uint32_t tau : {1u, 2u}) {
    for (uint32_t k : {1u, 5u, 15u}) {
      auto got = TopKNonAdjacentPairs(g, k, tau);
      auto want = BruteNonAdjacentTopK(g, k, tau);
      // The online result may include zero-score pairs when fewer than k
      // positive pairs exist; compare positive prefixes.
      size_t want_len = want.size();
      ASSERT_GE(got.size(), want_len);
      for (size_t i = 0; i < want_len; ++i) {
        EXPECT_EQ(got[i].score, want[i].score) << "rank " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PairTopKTest,
                         ::testing::Values(11, 12, 13, 14));

TEST(PairDiversityTest, ReturnedPairsAreNonAdjacent) {
  Graph g = gen::HolmeKim(120, 5, 0.5, 21);
  for (const ScoredPair& p : TopKNonAdjacentPairs(g, 15, 2)) {
    EXPECT_FALSE(g.HasEdge(p.u, p.v));
    EXPECT_EQ(p.score, PairScore(g, p.u, p.v, 2));
  }
}

TEST(PairDiversityTest, CandidateCapKeepsBestBounds) {
  Graph g = gen::HolmeKim(150, 6, 0.5, 23);
  auto uncapped = TopKNonAdjacentPairs(g, 5, 1, 0);
  auto capped = TopKNonAdjacentPairs(g, 5, 1, 2000);
  // With a generous cap the answers coincide (the cap keeps the pairs with
  // the largest upper bounds at tau=1: score == |N(u)∩N(v)| ... the bound
  // is exact at tau=1 only when the ego-network is edgeless, so compare
  // scores loosely: capped can never beat uncapped.
  ASSERT_EQ(uncapped.size(), capped.size());
  for (size_t i = 0; i < capped.size(); ++i) {
    EXPECT_LE(capped[i].score, uncapped[i].score);
  }
}

TEST(PairDiversityTest, EmptyAndTinyGraphs) {
  EXPECT_TRUE(TopKNonAdjacentPairs(Graph(), 5, 1).empty());
  Graph one = Graph::FromEdges(1, {});
  EXPECT_TRUE(TopKNonAdjacentPairs(one, 5, 1).empty());
  // Complete graph: no non-adjacent pairs at all.
  GraphBuilder b(4);
  for (VertexId i = 0; i < 4; ++i) {
    for (VertexId j = i + 1; j < 4; ++j) b.AddEdge(i, j);
  }
  EXPECT_TRUE(TopKNonAdjacentPairs(b.Build(), 3, 1).empty());
}

// ---------------------------------------------------------------------------
// Threshold queries on the index
// ---------------------------------------------------------------------------

TEST(ThresholdQueryTest, CountMatchesNaive) {
  Graph g = gen::ErdosRenyiGnp(40, 0.3, 31);
  EsdIndex index = BuildIndexClique(g);
  for (uint32_t tau : {1u, 2u, 3u}) {
    std::vector<uint32_t> scores = AllEdgeScores(g, tau);
    for (uint32_t min_score : {1u, 2u, 3u, 5u}) {
      uint64_t want = 0;
      for (uint32_t s : scores) want += s >= min_score;
      EXPECT_EQ(index.CountWithScoreAtLeast(tau, min_score), want)
          << "tau=" << tau << " min=" << min_score;
    }
    EXPECT_EQ(index.CountWithScoreAtLeast(tau, 0), g.NumEdges());
  }
}

TEST(ThresholdQueryTest, QueryReturnsAllQualifyingEdges) {
  Graph g = gen::HolmeKim(100, 5, 0.6, 33);
  EsdIndex index = BuildIndexClique(g);
  const uint32_t tau = 2, min_score = 2;
  TopKResult r = index.QueryWithScoreAtLeast(tau, min_score);
  EXPECT_EQ(r.size(), index.CountWithScoreAtLeast(tau, min_score));
  for (const ScoredEdge& se : r) {
    EXPECT_GE(se.score, min_score);
    EXPECT_EQ(se.score, EdgeScore(g, se.edge.u, se.edge.v, tau));
  }
  EXPECT_TRUE(std::is_sorted(r.begin(), r.end(),
                             [](const ScoredEdge& a, const ScoredEdge& b) {
                               return a.score > b.score;
                             }));
  // Limit applies.
  EXPECT_EQ(index.QueryWithScoreAtLeast(tau, min_score, 3).size(),
            std::min<size_t>(3, r.size()));
}

TEST(ThresholdQueryTest, DegenerateInputs) {
  Graph g = gen::ErdosRenyiGnp(20, 0.3, 37);
  EsdIndex index = BuildIndexClique(g);
  EXPECT_TRUE(index.QueryWithScoreAtLeast(0, 1).empty());
  EXPECT_TRUE(index.QueryWithScoreAtLeast(2, 0).empty());
  EXPECT_EQ(index.CountWithScoreAtLeast(1000, 1), 0u);
  EXPECT_TRUE(index.QueryWithScoreAtLeast(1000, 1).empty());
}

// ---------------------------------------------------------------------------
// Vertex-level updates
// ---------------------------------------------------------------------------

TEST(VertexUpdateTest, AddVertexThenConnect) {
  Graph g = gen::ErdosRenyiGnp(15, 0.4, 41);
  DynamicEsdIndex dyn(g);
  VertexId nv = dyn.AddVertex();
  EXPECT_EQ(nv, 15u);
  // Connect the new vertex to a triangle; its edges acquire ego structure.
  ASSERT_TRUE(dyn.InsertEdge(nv, 0));
  ASSERT_TRUE(dyn.InsertEdge(nv, 1));
  ASSERT_TRUE(dyn.InsertEdge(nv, 2));
  Graph now = dyn.CurrentGraph().Snapshot();
  for (uint32_t tau : {1u, 2u}) {
    EXPECT_EQ(Scores(dyn.Query(10, tau)), test::NaiveTopScores(now, 10, tau));
  }
}

TEST(VertexUpdateTest, RemoveVertexEdgesMatchesRebuild) {
  Graph g = gen::HolmeKim(60, 5, 0.5, 43);
  DynamicEsdIndex dyn(g);
  // Remove a well-connected vertex.
  VertexId victim = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (g.Degree(v) > g.Degree(victim)) victim = v;
  }
  size_t removed = dyn.RemoveVertexEdges(victim);
  EXPECT_EQ(removed, g.Degree(victim));
  EXPECT_EQ(dyn.CurrentGraph().Degree(victim), 0u);
  Graph now = dyn.CurrentGraph().Snapshot();
  EsdIndex fresh = BuildIndexClique(now);
  EXPECT_EQ(dyn.Index().NumEntries(), fresh.NumEntries());
  EXPECT_EQ(dyn.Index().DistinctSizes(), fresh.DistinctSizes());
  for (uint32_t tau : {1u, 2u, 3u}) {
    EXPECT_EQ(Scores(dyn.Query(20, tau)), test::NaiveTopScores(now, 20, tau));
  }
}

TEST(VertexUpdateTest, RemoveIsolatedVertexIsNoop) {
  Graph g = Graph::FromEdges(5, {{0, 1}});
  DynamicEsdIndex dyn(g);
  EXPECT_EQ(dyn.RemoveVertexEdges(4), 0u);
  EXPECT_EQ(dyn.RemoveVertexEdges(99), 0u);  // out of range
}

}  // namespace
}  // namespace esd::core
