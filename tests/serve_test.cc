// EsdQueryService: many threads hammering one immutable FrozenEsdIndex
// must get exactly the single-threaded answers; bounded admission,
// deadlines, tau-batching, and the metrics layer must behave
// deterministically. The stress test here is the one the TSan CI job runs
// against the thread pool + service in combination.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/frozen_index.h"
#include "core/index_builder.h"
#include "core/query_engine.h"
#include "core/topk_result.h"
#include "gen/barabasi_albert.h"
#include "gen/erdos_renyi.h"
#include "graph/graph.h"
#include "obs/metrics.h"
#include "serve/metrics.h"
#include "serve/query_service.h"
#include "serve/result_cache.h"
#include "util/thread_pool.h"

namespace esd {
namespace {

using core::FrozenEsdIndex;
using core::TopKResult;
using serve::EsdQueryService;
using serve::LatencyHistogram;
using serve::MetricsSnapshot;
using serve::QueryRequest;
using serve::QueryResponse;
using serve::ResponseStatus;

TEST(ServeTest, StressParityAcrossThreads) {
  graph::Graph g = gen::BarabasiAlbert(150, 4, 3);
  FrozenEsdIndex frozen = core::BuildFrozenIndex(g);

  // Single-threaded ground truth over a (k, tau) grid.
  std::vector<QueryRequest> cases;
  std::vector<TopKResult> want;
  for (uint32_t tau : {1u, 2u, 3u, 5u, 9u}) {
    for (uint32_t k : {1u, 4u, 16u, 64u}) {
      QueryRequest rq;
      rq.k = k;
      rq.tau = tau;
      cases.push_back(rq);
      want.push_back(frozen.Query(k, tau));
    }
  }

  EsdQueryService::Options opts;
  opts.num_threads = 4;
  opts.max_queue = 1 << 14;
  opts.max_batch = 16;
  EsdQueryService service(frozen, opts);

  constexpr int kClients = 8;
  constexpr int kRounds = 200;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kRounds; ++r) {
        const size_t idx = static_cast<size_t>(c * 31 + r * 7) % cases.size();
        QueryResponse resp = service.Submit(cases[idx]).get();
        if (resp.status != ResponseStatus::kOk) {
          failures.fetch_add(1);
        } else if (resp.result != want[idx]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);

  const MetricsSnapshot snap = service.metrics().Snap();
  EXPECT_EQ(snap.accepted, static_cast<uint64_t>(kClients * kRounds));
  EXPECT_EQ(snap.completed, static_cast<uint64_t>(kClients * kRounds));
  EXPECT_EQ(snap.rejected, 0u);
  EXPECT_EQ(snap.deadline_missed, 0u);
  EXPECT_GE(snap.batches, 1u);
  EXPECT_EQ(snap.total.count, snap.completed);
  EXPECT_GT(snap.total.p50_us, 0.0);
  EXPECT_LE(snap.total.p50_us, snap.total.p95_us);
  EXPECT_LE(snap.total.p95_us, snap.total.p99_us);
}

TEST(ServeTest, ParityAgainstEveryEngineKind) {
  // The service must answer identically over any engine implementation,
  // not just the frozen fast path.
  graph::Graph g = gen::ErdosRenyiGnm(40, 150, 17);
  for (const std::string& name : core::QueryEngineNames()) {
    std::string error;
    std::unique_ptr<core::EsdQueryEngine> engine =
        core::BuildQueryEngine(g, name, &error);
    ASSERT_NE(engine, nullptr) << error;
    EsdQueryService::Options opts;
    opts.num_threads = 2;
    EsdQueryService service(*engine, opts);
    for (uint32_t tau : {1u, 2u, 4u}) {
      QueryRequest rq;
      rq.k = 8;
      rq.tau = tau;
      QueryResponse resp = service.Query(rq);
      EXPECT_EQ(resp.status, ResponseStatus::kOk);
      EXPECT_EQ(resp.result, engine->Query(8, tau)) << name << " tau=" << tau;
    }
  }
}

TEST(ServeTest, BoundedAdmissionRejectsWhenQueueFull) {
  graph::Graph g = gen::ErdosRenyiGnm(20, 60, 5);
  FrozenEsdIndex frozen = core::BuildFrozenIndex(g);
  EsdQueryService::Options opts;
  opts.num_threads = 1;
  opts.max_queue = 2;
  opts.start_paused = true;  // nothing drains: the backlog is deterministic
  EsdQueryService service(frozen, opts);

  std::future<QueryResponse> a = service.Submit({});
  std::future<QueryResponse> b = service.Submit({});
  QueryResponse rejected = service.Submit({}).get();  // queue is full
  EXPECT_EQ(rejected.status, ResponseStatus::kRejectedQueueFull);
  EXPECT_TRUE(rejected.result.empty());

  MetricsSnapshot snap = service.metrics().Snap();
  EXPECT_EQ(snap.accepted, 2u);
  EXPECT_EQ(snap.rejected, 1u);

  service.Start();
  EXPECT_EQ(a.get().status, ResponseStatus::kOk);
  EXPECT_EQ(b.get().status, ResponseStatus::kOk);
}

TEST(ServeTest, DeadlineMissedInQueue) {
  graph::Graph g = gen::ErdosRenyiGnm(20, 60, 6);
  FrozenEsdIndex frozen = core::BuildFrozenIndex(g);
  EsdQueryService::Options opts;
  opts.num_threads = 1;
  opts.start_paused = true;
  EsdQueryService service(frozen, opts);

  QueryRequest hurried;
  hurried.deadline_us = 1000;  // 1 ms, spent entirely in the paused queue
  std::future<QueryResponse> missed = service.Submit(hurried);
  std::future<QueryResponse> unhurried = service.Submit({});
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  service.Start();

  EXPECT_EQ(missed.get().status, ResponseStatus::kDeadlineMissed);
  EXPECT_EQ(unhurried.get().status, ResponseStatus::kOk);
  MetricsSnapshot snap = service.metrics().Snap();
  EXPECT_EQ(snap.deadline_missed, 1u);
  EXPECT_EQ(snap.completed, 1u);
}

TEST(ServeTest, BatchingSharesSlabSearchAcrossEqualTaus) {
  graph::Graph g = gen::BarabasiAlbert(60, 3, 9);
  FrozenEsdIndex frozen = core::BuildFrozenIndex(g);
  EsdQueryService::Options opts;
  opts.num_threads = 1;
  opts.max_batch = 64;
  opts.start_paused = true;
  EsdQueryService service(frozen, opts);

  // 12 queries over 4 distinct taus, all queued before the single worker
  // starts: one batch, sorted by tau, 12 - 4 = 8 binary searches saved.
  std::vector<std::future<QueryResponse>> futures;
  std::vector<TopKResult> want;
  for (int rep = 0; rep < 3; ++rep) {
    for (uint32_t tau : {1u, 2u, 3u, 4u}) {
      QueryRequest rq;
      rq.k = 5;
      rq.tau = tau;
      futures.push_back(service.Submit(rq));
      want.push_back(frozen.Query(5, tau));
    }
  }
  service.Start();
  for (size_t i = 0; i < futures.size(); ++i) {
    QueryResponse resp = futures[i].get();
    EXPECT_EQ(resp.status, ResponseStatus::kOk);
    EXPECT_EQ(resp.result, want[i]) << "i=" << i;
  }
  MetricsSnapshot snap = service.metrics().Snap();
  EXPECT_EQ(snap.completed, 12u);
  EXPECT_EQ(snap.batches, 1u);
  EXPECT_EQ(snap.slab_searches_saved, 8u);
}

TEST(ServeTest, StopDrainsAdmittedAndBouncesLate) {
  graph::Graph g = gen::ErdosRenyiGnm(25, 80, 7);
  FrozenEsdIndex frozen = core::BuildFrozenIndex(g);
  EsdQueryService::Options opts;
  opts.num_threads = 2;
  EsdQueryService service(frozen, opts);
  std::vector<std::future<QueryResponse>> admitted;
  for (int i = 0; i < 50; ++i) admitted.push_back(service.Submit({}));
  service.Stop();
  for (auto& f : admitted) {
    EXPECT_EQ(f.get().status, ResponseStatus::kOk);  // graceful drain
  }
  EXPECT_EQ(service.Submit({}).get().status, ResponseStatus::kShutdown);
}

TEST(ServeTest, PausedTeardownAnswersBacklogWithShutdown) {
  graph::Graph g = gen::ErdosRenyiGnm(25, 80, 8);
  FrozenEsdIndex frozen = core::BuildFrozenIndex(g);
  std::future<QueryResponse> orphan;
  {
    EsdQueryService::Options opts;
    opts.start_paused = true;
    EsdQueryService service(frozen, opts);
    orphan = service.Submit({});
  }
  EXPECT_EQ(orphan.get().status, ResponseStatus::kShutdown);
}

TEST(ServeTest, DegenerateRequestsMatchEngineSemantics) {
  graph::Graph g = gen::ErdosRenyiGnm(25, 80, 10);
  FrozenEsdIndex frozen = core::BuildFrozenIndex(g);
  EsdQueryService service(frozen, {});
  QueryRequest zero_k;
  zero_k.k = 0;
  EXPECT_TRUE(service.Query(zero_k).result.empty());
  QueryRequest zero_tau;
  zero_tau.tau = 0;
  EXPECT_TRUE(service.Query(zero_tau).result.empty());
  QueryRequest huge_tau;
  huge_tau.tau = 1u << 30;  // above every stored size: all padding
  EXPECT_EQ(service.Query(huge_tau).result,
            frozen.Query(huge_tau.k, huge_tau.tau));
}

TEST(ServeMetricsTest, HistogramPercentilesAreLogScaleAccurate) {
  LatencyHistogram h;
  // 100 samples: 1..100 µs. Log-scale buckets promise <= 12.5% error.
  for (uint64_t us = 1; us <= 100; ++us) h.RecordNanos(us * 1000);
  LatencyHistogram::Snapshot s = h.Snap();
  EXPECT_EQ(s.count, 100u);
  EXPECT_NEAR(s.p50_us, 50.0, 50.0 * 0.125 + 0.5);
  EXPECT_NEAR(s.p95_us, 95.0, 95.0 * 0.125 + 0.5);
  EXPECT_NEAR(s.p99_us, 99.0, 99.0 * 0.125 + 0.5);
  EXPECT_DOUBLE_EQ(s.max_us, 100.0);
  EXPECT_NEAR(s.mean_us, 50.5, 1e-9);
  EXPECT_LE(s.p50_us, s.p95_us);
  EXPECT_LE(s.p95_us, s.p99_us);
}

TEST(ServeMetricsTest, HistogramIsSafeUnderConcurrentRecords) {
  LatencyHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.RecordNanos(static_cast<uint64_t>(t) * 1000 + 100);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.Snap().count,
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(ServeMetricsTest, JsonFieldsAreWellFormed) {
  serve::ServiceMetrics m;
  m.RecordAccepted();
  m.RecordCompleted(12.0, 3.0);
  const std::string fields = serve::MetricsJsonFields(m.Snap());
  EXPECT_NE(fields.find("\"accepted\":1"), std::string::npos) << fields;
  EXPECT_NE(fields.find("\"completed\":1"), std::string::npos) << fields;
  EXPECT_NE(fields.find("\"p95_us\":"), std::string::npos) << fields;
  EXPECT_EQ(fields.find('{'), std::string::npos) << fields;
}

TEST(ThreadPoolServeTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(util::ThreadPool::DefaultThreadCount(), 1u);
}

// Engine-swap serving: each batch pins the provider's engine of the moment,
// and a batch keeps its pinned engine alive (shared_ptr) even after the
// provider moves on — the contract LiveEsdIndex epoch swaps rely on.
TEST(ServeTest, EngineProviderPinsEnginePerBatch) {
  graph::Graph g_small = gen::ErdosRenyiGnm(40, 80, 5);
  graph::Graph g_large = gen::ErdosRenyiGnm(60, 200, 6);
  auto engine_a = std::make_shared<FrozenEsdIndex>(core::BuildFrozenIndex(g_small));
  auto engine_b = std::make_shared<FrozenEsdIndex>(core::BuildFrozenIndex(g_large));
  const TopKResult want_a = engine_a->Query(16, 2);
  const TopKResult want_b = engine_b->Query(16, 2);
  ASSERT_NE(want_a, want_b) << "test graphs must give distinct answers";

  std::mutex mu;
  std::shared_ptr<const FrozenEsdIndex> current = engine_a;
  EsdQueryService::Options opts;
  opts.num_threads = 2;
  EsdQueryService service(
      [&]() -> std::shared_ptr<const core::EsdQueryEngine> {
        std::lock_guard<std::mutex> lock(mu);
        return current;
      },
      opts);

  QueryRequest rq;
  rq.k = 16;
  rq.tau = 2;
  EXPECT_EQ(service.Query(rq).result, want_a);

  // Swap the engine; subsequent batches must see the new one even though
  // the service never restarts. Dropping our references proves each batch
  // held its own pin.
  {
    std::lock_guard<std::mutex> lock(mu);
    current = engine_b;
  }
  engine_a.reset();
  EXPECT_EQ(service.Query(rq).result, want_b);
  engine_b.reset();  // `current` still pins it inside the provider
  EXPECT_EQ(service.Query(rq).result, want_b);
}

// ---------------------------------------------------------------------------
// ResultCache: the epoch-keyed answer cache in front of the slab path.
// ---------------------------------------------------------------------------

serve::ResultCache::Options SmallCacheOptions(size_t entries, size_t bytes) {
  serve::ResultCache::Options copts;
  copts.max_entries = entries;
  copts.max_bytes = bytes;
  copts.shards = 1;  // single shard: capacity semantics are exact
  return copts;
}

TopKResult MakeResult(uint32_t score, size_t n = 1) {
  TopKResult r;
  for (size_t i = 0; i < n; ++i) {
    r.push_back(core::ScoredEdge{
        graph::Edge{static_cast<graph::VertexId>(i),
                    static_cast<graph::VertexId>(i + 1)},
        score});
  }
  return r;
}

TEST(ResultCacheTest, HitMissAndLruEviction) {
  obs::MetricRegistry reg;
  serve::ResultCache cache(SmallCacheOptions(4, 1 << 20), reg);

  const TopKResult r1 = MakeResult(7);
  TopKResult out;
  EXPECT_FALSE(cache.Lookup(0, 2, 10, true, &out));
  cache.Insert(0, 2, 10, true, r1);
  ASSERT_TRUE(cache.Lookup(0, 2, 10, true, &out));
  EXPECT_EQ(out, r1);
  // Every key dimension participates: pad, k, and tau each miss alone.
  EXPECT_FALSE(cache.Lookup(0, 2, 10, false, &out));
  EXPECT_FALSE(cache.Lookup(0, 2, 11, true, &out));
  EXPECT_FALSE(cache.Lookup(0, 3, 10, true, &out));

  // Four newer keys push the original out of the 4-entry LRU.
  for (uint32_t k = 20; k < 24; ++k) cache.Insert(0, 5, k, true, r1);
  const serve::ResultCache::Stats s = cache.Snap();
  EXPECT_EQ(s.entries, 4u);
  EXPECT_GE(s.evictions, 1u);
  EXPECT_FALSE(cache.Lookup(0, 2, 10, true, &out));
  ASSERT_TRUE(cache.Lookup(0, 5, 23, true, &out));

  // The registry carries the same counters under esd_cache_*.
  EXPECT_EQ(reg.CounterValue("esd_cache_hits"), cache.Snap().hits);
  EXPECT_EQ(reg.CounterValue("esd_cache_misses"), cache.Snap().misses);
  EXPECT_GT(reg.GaugeValue("esd_cache_bytes"), 0.0);
}

TEST(ResultCacheTest, ByteBudgetBoundsResidencyAndRefusesOversized) {
  obs::MetricRegistry reg;
  // Tight byte budget, generous entry budget: bytes are the binding bound.
  const size_t budget = 1024;
  serve::ResultCache cache(SmallCacheOptions(1024, budget), reg);

  for (uint32_t k = 1; k <= 64; ++k) {
    cache.Insert(0, 1, k, true, MakeResult(k, 8));
    EXPECT_LE(cache.Snap().bytes, budget) << "after insert k=" << k;
  }
  serve::ResultCache::Stats s = cache.Snap();
  EXPECT_GE(s.evictions, 1u);
  EXPECT_GT(s.entries, 0u);
  EXPECT_LT(s.entries, 64u);

  // A result bigger than the whole shard budget is refused outright
  // (inserting it would evict everything for a one-shot answer).
  TopKResult out;
  cache.Insert(0, 9, 9, true, MakeResult(1, 4096));
  EXPECT_FALSE(cache.Lookup(0, 9, 9, true, &out));
}

TEST(ResultCacheTest, EpochSwapInvalidatesWholeGeneration) {
  obs::MetricRegistry reg;
  serve::ResultCache cache(SmallCacheOptions(64, 1 << 20), reg);
  const TopKResult r0 = MakeResult(3);
  const TopKResult r1 = MakeResult(9);
  TopKResult out;

  for (uint32_t tau = 1; tau <= 8; ++tau) cache.Insert(0, tau, 5, true, r0);
  ASSERT_TRUE(cache.Lookup(0, 4, 5, true, &out));

  // One O(1) rotation drops all eight entries at once.
  cache.OnEpochChange(1);
  serve::ResultCache::Stats s = cache.Snap();
  EXPECT_EQ(s.epoch, 1u);
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.generations, 2u);
  EXPECT_FALSE(cache.Lookup(1, 4, 5, true, &out));
  cache.Insert(1, 4, 5, true, r1);
  ASSERT_TRUE(cache.Lookup(1, 4, 5, true, &out));
  EXPECT_EQ(out, r1);

  // A reader still pinned to the retired epoch bypasses: it must neither
  // see the new generation's answers nor pollute it with stale ones.
  EXPECT_FALSE(cache.Lookup(0, 4, 5, true, &out));
  cache.Insert(0, 7, 7, true, r0);
  EXPECT_FALSE(cache.Lookup(1, 7, 7, true, &out));
  EXPECT_GE(cache.Snap().bypasses, 1u);

  // Backward epoch notifications are no-ops; newer lookups rotate lazily
  // even without a notification.
  cache.OnEpochChange(0);
  EXPECT_EQ(cache.Snap().epoch, 1u);
  EXPECT_FALSE(cache.Lookup(5, 4, 5, true, &out));
  EXPECT_EQ(cache.Snap().epoch, 5u);
}

// TSan-targeted: readers hammer Lookup/Insert while another thread bumps
// the epoch. Payloads encode (epoch, tau, k), so any hit that crossed a
// generation boundary or returned another key's answer is caught in the
// assertion, not just by the sanitizer.
TEST(ResultCacheTest, ConcurrentReadersSurviveEpochBumps) {
  obs::MetricRegistry reg;
  serve::ResultCache::Options copts;
  copts.max_entries = 64;
  copts.max_bytes = 1 << 20;
  copts.shards = 4;
  serve::ResultCache cache(copts, reg);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> epoch{0};
  auto score_of = [](uint64_t e, uint32_t tau, uint32_t k) {
    return static_cast<uint32_t>(e * 1000 + tau * 10 + k);
  };

  constexpr int kReaders = 4;
  std::atomic<int> wrong{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      uint64_t state = 0x9E3779B9u * (t + 1);
      TopKResult out;
      while (!stop.load(std::memory_order_relaxed)) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        const uint32_t tau = 1 + static_cast<uint32_t>((state >> 33) % 8);
        const uint32_t k = 1 + static_cast<uint32_t>((state >> 45) % 4);
        const uint64_t e = epoch.load(std::memory_order_relaxed);
        if (cache.Lookup(e, tau, k, true, &out)) {
          if (out.size() != 1 || out[0].score != score_of(e, tau, k)) {
            wrong.fetch_add(1);
          }
        } else {
          cache.Insert(e, tau, k, true, MakeResult(score_of(e, tau, k)));
        }
      }
    });
  }
  for (uint64_t b = 1; b <= 50; ++b) {
    epoch.store(b, std::memory_order_relaxed);
    cache.OnEpochChange(b);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(cache.Snap().epoch, 50u);
  EXPECT_EQ(cache.Snap().generations, 51u);
}

TEST(ServeTest, ResultCacheServesRepeatsAndKeepsParity) {
  graph::Graph g = gen::BarabasiAlbert(120, 3, 7);
  FrozenEsdIndex frozen = core::BuildFrozenIndex(g);
  EsdQueryService::Options opts;
  opts.num_threads = 2;
  opts.cache_bytes = 1 << 20;
  EsdQueryService service(frozen, opts);
  ASSERT_NE(service.cache(), nullptr);

  for (int round = 0; round < 5; ++round) {
    for (uint32_t tau : {1u, 2u, 3u}) {
      for (uint32_t k : {5u, 17u}) {
        QueryRequest rq;
        rq.k = k;
        rq.tau = tau;
        QueryResponse resp = service.Query(rq);
        ASSERT_EQ(resp.status, ResponseStatus::kOk);
        EXPECT_EQ(resp.result, frozen.Query(k, tau))
            << "round=" << round << " tau=" << tau << " k=" << k;
      }
    }
  }
  const serve::ResultCache::Stats s = service.cache()->Snap();
  EXPECT_GT(s.hits, 0u);
  EXPECT_GE(s.misses, 6u);  // at least one compulsory miss per combination
  EXPECT_EQ(s.epoch, 0u);   // static engine: the generation never rotates
}

TEST(ServeTest, LegacyProviderModeNeverCaches) {
  graph::Graph g = gen::ErdosRenyiGnm(30, 90, 4);
  auto engine = std::make_shared<FrozenEsdIndex>(core::BuildFrozenIndex(g));
  EsdQueryService::Options opts;
  opts.num_threads = 1;
  opts.cache_bytes = 1 << 20;  // requested, but the mode can't honor it
  EsdQueryService service(
      [engine]() -> std::shared_ptr<const core::EsdQueryEngine> {
        return engine;
      },
      opts);
  EXPECT_EQ(service.cache(), nullptr);
  QueryRequest rq;
  rq.k = 4;
  rq.tau = 2;
  EXPECT_EQ(service.Query(rq).result, engine->Query(4, 2));
}

// Regression: the per-request (non-frozen) path used to bump the
// distinct-tau count once per request, so equal-tau batches reported zero
// slab searches saved even though tau-batching grouped them.
TEST(ServeTest, DegenerateBatchCountsDistinctTausOnce) {
  graph::Graph g = gen::ErdosRenyiGnm(30, 90, 12);
  std::string error;
  std::unique_ptr<core::EsdQueryEngine> treap =
      core::BuildQueryEngine(g, "treap", &error);
  ASSERT_NE(treap, nullptr) << error;

  EsdQueryService::Options opts;
  opts.num_threads = 1;
  opts.max_batch = 64;
  opts.start_paused = true;
  EsdQueryService service(*treap, opts);

  const TopKResult want = treap->Query(4, 2);
  std::vector<std::future<QueryResponse>> futures;
  for (int i = 0; i < 6; ++i) {
    QueryRequest rq;
    rq.k = 4;
    rq.tau = 2;
    futures.push_back(service.Submit(rq));
  }
  service.Start();
  for (auto& f : futures) {
    QueryResponse resp = f.get();
    EXPECT_EQ(resp.status, ResponseStatus::kOk);
    EXPECT_EQ(resp.result, want);
  }
  const MetricsSnapshot snap = service.metrics().Snap();
  EXPECT_EQ(snap.completed, 6u);
  EXPECT_EQ(snap.batches, 1u);
  EXPECT_EQ(snap.slab_searches_saved, 5u);  // 6 requests, 1 distinct tau
}

}  // namespace
}  // namespace esd
