// EsdQueryService: many threads hammering one immutable FrozenEsdIndex
// must get exactly the single-threaded answers; bounded admission,
// deadlines, tau-batching, and the metrics layer must behave
// deterministically. The stress test here is the one the TSan CI job runs
// against the thread pool + service in combination.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/frozen_index.h"
#include "core/index_builder.h"
#include "core/query_engine.h"
#include "gen/barabasi_albert.h"
#include "gen/erdos_renyi.h"
#include "serve/metrics.h"
#include "serve/query_service.h"
#include "util/thread_pool.h"

namespace esd {
namespace {

using core::FrozenEsdIndex;
using core::TopKResult;
using serve::EsdQueryService;
using serve::LatencyHistogram;
using serve::MetricsSnapshot;
using serve::QueryRequest;
using serve::QueryResponse;
using serve::ResponseStatus;

TEST(ServeTest, StressParityAcrossThreads) {
  graph::Graph g = gen::BarabasiAlbert(150, 4, 3);
  FrozenEsdIndex frozen = core::BuildFrozenIndex(g);

  // Single-threaded ground truth over a (k, tau) grid.
  std::vector<QueryRequest> cases;
  std::vector<TopKResult> want;
  for (uint32_t tau : {1u, 2u, 3u, 5u, 9u}) {
    for (uint32_t k : {1u, 4u, 16u, 64u}) {
      QueryRequest rq;
      rq.k = k;
      rq.tau = tau;
      cases.push_back(rq);
      want.push_back(frozen.Query(k, tau));
    }
  }

  EsdQueryService::Options opts;
  opts.num_threads = 4;
  opts.max_queue = 1 << 14;
  opts.max_batch = 16;
  EsdQueryService service(frozen, opts);

  constexpr int kClients = 8;
  constexpr int kRounds = 200;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kRounds; ++r) {
        const size_t idx = static_cast<size_t>(c * 31 + r * 7) % cases.size();
        QueryResponse resp = service.Submit(cases[idx]).get();
        if (resp.status != ResponseStatus::kOk) {
          failures.fetch_add(1);
        } else if (resp.result != want[idx]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);

  const MetricsSnapshot snap = service.metrics().Snap();
  EXPECT_EQ(snap.accepted, static_cast<uint64_t>(kClients * kRounds));
  EXPECT_EQ(snap.completed, static_cast<uint64_t>(kClients * kRounds));
  EXPECT_EQ(snap.rejected, 0u);
  EXPECT_EQ(snap.deadline_missed, 0u);
  EXPECT_GE(snap.batches, 1u);
  EXPECT_EQ(snap.total.count, snap.completed);
  EXPECT_GT(snap.total.p50_us, 0.0);
  EXPECT_LE(snap.total.p50_us, snap.total.p95_us);
  EXPECT_LE(snap.total.p95_us, snap.total.p99_us);
}

TEST(ServeTest, ParityAgainstEveryEngineKind) {
  // The service must answer identically over any engine implementation,
  // not just the frozen fast path.
  graph::Graph g = gen::ErdosRenyiGnm(40, 150, 17);
  for (const std::string& name : core::QueryEngineNames()) {
    std::string error;
    std::unique_ptr<core::EsdQueryEngine> engine =
        core::BuildQueryEngine(g, name, &error);
    ASSERT_NE(engine, nullptr) << error;
    EsdQueryService::Options opts;
    opts.num_threads = 2;
    EsdQueryService service(*engine, opts);
    for (uint32_t tau : {1u, 2u, 4u}) {
      QueryRequest rq;
      rq.k = 8;
      rq.tau = tau;
      QueryResponse resp = service.Query(rq);
      EXPECT_EQ(resp.status, ResponseStatus::kOk);
      EXPECT_EQ(resp.result, engine->Query(8, tau)) << name << " tau=" << tau;
    }
  }
}

TEST(ServeTest, BoundedAdmissionRejectsWhenQueueFull) {
  graph::Graph g = gen::ErdosRenyiGnm(20, 60, 5);
  FrozenEsdIndex frozen = core::BuildFrozenIndex(g);
  EsdQueryService::Options opts;
  opts.num_threads = 1;
  opts.max_queue = 2;
  opts.start_paused = true;  // nothing drains: the backlog is deterministic
  EsdQueryService service(frozen, opts);

  std::future<QueryResponse> a = service.Submit({});
  std::future<QueryResponse> b = service.Submit({});
  QueryResponse rejected = service.Submit({}).get();  // queue is full
  EXPECT_EQ(rejected.status, ResponseStatus::kRejectedQueueFull);
  EXPECT_TRUE(rejected.result.empty());

  MetricsSnapshot snap = service.metrics().Snap();
  EXPECT_EQ(snap.accepted, 2u);
  EXPECT_EQ(snap.rejected, 1u);

  service.Start();
  EXPECT_EQ(a.get().status, ResponseStatus::kOk);
  EXPECT_EQ(b.get().status, ResponseStatus::kOk);
}

TEST(ServeTest, DeadlineMissedInQueue) {
  graph::Graph g = gen::ErdosRenyiGnm(20, 60, 6);
  FrozenEsdIndex frozen = core::BuildFrozenIndex(g);
  EsdQueryService::Options opts;
  opts.num_threads = 1;
  opts.start_paused = true;
  EsdQueryService service(frozen, opts);

  QueryRequest hurried;
  hurried.deadline_us = 1000;  // 1 ms, spent entirely in the paused queue
  std::future<QueryResponse> missed = service.Submit(hurried);
  std::future<QueryResponse> unhurried = service.Submit({});
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  service.Start();

  EXPECT_EQ(missed.get().status, ResponseStatus::kDeadlineMissed);
  EXPECT_EQ(unhurried.get().status, ResponseStatus::kOk);
  MetricsSnapshot snap = service.metrics().Snap();
  EXPECT_EQ(snap.deadline_missed, 1u);
  EXPECT_EQ(snap.completed, 1u);
}

TEST(ServeTest, BatchingSharesSlabSearchAcrossEqualTaus) {
  graph::Graph g = gen::BarabasiAlbert(60, 3, 9);
  FrozenEsdIndex frozen = core::BuildFrozenIndex(g);
  EsdQueryService::Options opts;
  opts.num_threads = 1;
  opts.max_batch = 64;
  opts.start_paused = true;
  EsdQueryService service(frozen, opts);

  // 12 queries over 4 distinct taus, all queued before the single worker
  // starts: one batch, sorted by tau, 12 - 4 = 8 binary searches saved.
  std::vector<std::future<QueryResponse>> futures;
  std::vector<TopKResult> want;
  for (int rep = 0; rep < 3; ++rep) {
    for (uint32_t tau : {1u, 2u, 3u, 4u}) {
      QueryRequest rq;
      rq.k = 5;
      rq.tau = tau;
      futures.push_back(service.Submit(rq));
      want.push_back(frozen.Query(5, tau));
    }
  }
  service.Start();
  for (size_t i = 0; i < futures.size(); ++i) {
    QueryResponse resp = futures[i].get();
    EXPECT_EQ(resp.status, ResponseStatus::kOk);
    EXPECT_EQ(resp.result, want[i]) << "i=" << i;
  }
  MetricsSnapshot snap = service.metrics().Snap();
  EXPECT_EQ(snap.completed, 12u);
  EXPECT_EQ(snap.batches, 1u);
  EXPECT_EQ(snap.slab_searches_saved, 8u);
}

TEST(ServeTest, StopDrainsAdmittedAndBouncesLate) {
  graph::Graph g = gen::ErdosRenyiGnm(25, 80, 7);
  FrozenEsdIndex frozen = core::BuildFrozenIndex(g);
  EsdQueryService::Options opts;
  opts.num_threads = 2;
  EsdQueryService service(frozen, opts);
  std::vector<std::future<QueryResponse>> admitted;
  for (int i = 0; i < 50; ++i) admitted.push_back(service.Submit({}));
  service.Stop();
  for (auto& f : admitted) {
    EXPECT_EQ(f.get().status, ResponseStatus::kOk);  // graceful drain
  }
  EXPECT_EQ(service.Submit({}).get().status, ResponseStatus::kShutdown);
}

TEST(ServeTest, PausedTeardownAnswersBacklogWithShutdown) {
  graph::Graph g = gen::ErdosRenyiGnm(25, 80, 8);
  FrozenEsdIndex frozen = core::BuildFrozenIndex(g);
  std::future<QueryResponse> orphan;
  {
    EsdQueryService::Options opts;
    opts.start_paused = true;
    EsdQueryService service(frozen, opts);
    orphan = service.Submit({});
  }
  EXPECT_EQ(orphan.get().status, ResponseStatus::kShutdown);
}

TEST(ServeTest, DegenerateRequestsMatchEngineSemantics) {
  graph::Graph g = gen::ErdosRenyiGnm(25, 80, 10);
  FrozenEsdIndex frozen = core::BuildFrozenIndex(g);
  EsdQueryService service(frozen, {});
  QueryRequest zero_k;
  zero_k.k = 0;
  EXPECT_TRUE(service.Query(zero_k).result.empty());
  QueryRequest zero_tau;
  zero_tau.tau = 0;
  EXPECT_TRUE(service.Query(zero_tau).result.empty());
  QueryRequest huge_tau;
  huge_tau.tau = 1u << 30;  // above every stored size: all padding
  EXPECT_EQ(service.Query(huge_tau).result,
            frozen.Query(huge_tau.k, huge_tau.tau));
}

TEST(ServeMetricsTest, HistogramPercentilesAreLogScaleAccurate) {
  LatencyHistogram h;
  // 100 samples: 1..100 µs. Log-scale buckets promise <= 12.5% error.
  for (uint64_t us = 1; us <= 100; ++us) h.RecordNanos(us * 1000);
  LatencyHistogram::Snapshot s = h.Snap();
  EXPECT_EQ(s.count, 100u);
  EXPECT_NEAR(s.p50_us, 50.0, 50.0 * 0.125 + 0.5);
  EXPECT_NEAR(s.p95_us, 95.0, 95.0 * 0.125 + 0.5);
  EXPECT_NEAR(s.p99_us, 99.0, 99.0 * 0.125 + 0.5);
  EXPECT_DOUBLE_EQ(s.max_us, 100.0);
  EXPECT_NEAR(s.mean_us, 50.5, 1e-9);
  EXPECT_LE(s.p50_us, s.p95_us);
  EXPECT_LE(s.p95_us, s.p99_us);
}

TEST(ServeMetricsTest, HistogramIsSafeUnderConcurrentRecords) {
  LatencyHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.RecordNanos(static_cast<uint64_t>(t) * 1000 + 100);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.Snap().count,
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(ServeMetricsTest, JsonFieldsAreWellFormed) {
  serve::ServiceMetrics m;
  m.RecordAccepted();
  m.RecordCompleted(12.0, 3.0);
  const std::string fields = serve::MetricsJsonFields(m.Snap());
  EXPECT_NE(fields.find("\"accepted\":1"), std::string::npos) << fields;
  EXPECT_NE(fields.find("\"completed\":1"), std::string::npos) << fields;
  EXPECT_NE(fields.find("\"p95_us\":"), std::string::npos) << fields;
  EXPECT_EQ(fields.find('{'), std::string::npos) << fields;
}

TEST(ThreadPoolServeTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(util::ThreadPool::DefaultThreadCount(), 1u);
}

// Engine-swap serving: each batch pins the provider's engine of the moment,
// and a batch keeps its pinned engine alive (shared_ptr) even after the
// provider moves on — the contract LiveEsdIndex epoch swaps rely on.
TEST(ServeTest, EngineProviderPinsEnginePerBatch) {
  graph::Graph g_small = gen::ErdosRenyiGnm(40, 80, 5);
  graph::Graph g_large = gen::ErdosRenyiGnm(60, 200, 6);
  auto engine_a = std::make_shared<FrozenEsdIndex>(core::BuildFrozenIndex(g_small));
  auto engine_b = std::make_shared<FrozenEsdIndex>(core::BuildFrozenIndex(g_large));
  const TopKResult want_a = engine_a->Query(16, 2);
  const TopKResult want_b = engine_b->Query(16, 2);
  ASSERT_NE(want_a, want_b) << "test graphs must give distinct answers";

  std::mutex mu;
  std::shared_ptr<const FrozenEsdIndex> current = engine_a;
  EsdQueryService::Options opts;
  opts.num_threads = 2;
  EsdQueryService service(
      [&]() -> std::shared_ptr<const core::EsdQueryEngine> {
        std::lock_guard<std::mutex> lock(mu);
        return current;
      },
      opts);

  QueryRequest rq;
  rq.k = 16;
  rq.tau = 2;
  EXPECT_EQ(service.Query(rq).result, want_a);

  // Swap the engine; subsequent batches must see the new one even though
  // the service never restarts. Dropping our references proves each batch
  // held its own pin.
  {
    std::lock_guard<std::mutex> lock(mu);
    current = engine_b;
  }
  engine_a.reset();
  EXPECT_EQ(service.Query(rq).result, want_b);
  engine_b.reset();  // `current` still pins it inside the provider
  EXPECT_EQ(service.Query(rq).result, want_b);
}

}  // namespace
}  // namespace esd
