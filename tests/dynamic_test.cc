#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/dynamic_index.h"
#include "core/ego_network.h"
#include "core/index_builder.h"
#include "core/naive_topk.h"
#include "gen/collaboration.h"
#include "gen/erdos_renyi.h"
#include "gen/holme_kim.h"
#include "gen/watts_strogatz.h"
#include "graph/builder.h"
#include "graph/graph.h"
#include "tests/test_helpers.h"
#include "util/rng.h"

namespace esd::core {
namespace {

using graph::Edge;
using graph::Graph;
using graph::GraphBuilder;
using graph::VertexId;

// Asserts the dynamic index is indistinguishable from an index rebuilt from
// scratch on the current graph snapshot (same lists, same scores).
void ExpectEqualsFreshRebuild(const DynamicEsdIndex& dyn) {
  Graph snapshot = dyn.CurrentGraph().Snapshot();
  EsdIndex fresh = BuildIndexClique(snapshot);
  // Dynamic edge ids may differ from snapshot ids after churn, so compare
  // via score multisets per threshold and entry counts per list.
  EXPECT_EQ(dyn.Index().NumEntries(), fresh.NumEntries());
  EXPECT_EQ(dyn.Index().DistinctSizes(), fresh.DistinctSizes());
  for (uint32_t c : fresh.DistinctSizes()) {
    std::vector<uint32_t> a = Scores(dyn.Query(100000, c, false));
    std::vector<uint32_t> b = Scores(fresh.Query(100000, c, false));
    EXPECT_EQ(a, b) << "at threshold c=" << c;
  }
}

// The paper's Fig. 1(a) reconstruction (see core_test.cc).
constexpr VertexId A = 0, B = 1, C = 2, D = 3, E = 4, F = 5, G = 6, H = 7,
                   I = 8, J = 9, K = 10, U = 11, V = 12, P = 13, Q = 14,
                   W = 15;

Graph PaperGraph() {
  GraphBuilder b(16);
  for (auto [x, y] : std::vector<std::pair<VertexId, VertexId>>{
           {A, B}, {A, C}, {B, C}, {B, D}, {B, E}, {C, E}, {C, G}, {D, E}}) {
    b.AddEdge(x, y);
  }
  for (VertexId x : {D, E, H, I}) {
    b.AddEdge(F, x);
    b.AddEdge(G, x);
  }
  b.AddEdge(F, G);
  b.AddEdge(H, I);
  std::vector<VertexId> clique{J, K, U, V, P, Q};
  for (size_t i = 0; i < clique.size(); ++i) {
    for (size_t j = i + 1; j < clique.size(); ++j) {
      b.AddEdge(clique[i], clique[j]);
    }
  }
  b.AddEdge(W, U);
  b.AddEdge(W, P);
  b.AddEdge(W, Q);
  return b.Build();
}

// ---------------------------------------------------------------------------
// Paper worked examples
// ---------------------------------------------------------------------------

TEST(DynamicIndexTest, PaperExample6InsertCD) {
  // Example 6: inserting (c,d) merges the components of (d,e)'s ego-network
  // into a single one ({b,c,f,g}).
  DynamicEsdIndex dyn(PaperGraph());
  EXPECT_EQ(dyn.ScoreOf(D, E, 2), 1u);  // before: {f,g} + isolated b
  EXPECT_EQ(dyn.ScoreOf(D, E, 1), 2u);
  ASSERT_TRUE(dyn.InsertEdge(C, D));
  EXPECT_EQ(dyn.ScoreOf(D, E, 1), 1u);  // one component {b,c,f,g}
  EXPECT_EQ(dyn.ScoreOf(D, E, 4), 1u);
  ExpectEqualsFreshRebuild(dyn);
}

TEST(DynamicIndexTest, PaperExample7DeleteUK) {
  // Example 7: deleting (u,k) breaks the 4-clique {j,k,u,v}; (j,k)'s
  // ego-network becomes {v,p,q} + ... a component of size 3 appears and
  // H(3) must exist afterwards.
  for (DeletionStrategy strategy :
       {DeletionStrategy::kRebuildLocal, DeletionStrategy::kTargeted}) {
    DynamicEsdIndex dyn(PaperGraph(), strategy);
    EXPECT_EQ(dyn.ScoreOf(J, K, 4), 1u);  // {u,v,p,q}
    ASSERT_TRUE(dyn.DeleteEdge(U, K));
    // N(jk) is now {v,p,q} (u no longer adjacent to k), still connected.
    EXPECT_EQ(dyn.ScoreOf(J, K, 3), 1u);
    EXPECT_EQ(dyn.ScoreOf(J, K, 4), 0u);
    std::vector<uint32_t> c = dyn.Index().DistinctSizes();
    EXPECT_TRUE(std::find(c.begin(), c.end(), 3u) != c.end());
    ExpectEqualsFreshRebuild(dyn);
  }
}

// ---------------------------------------------------------------------------
// Unit behaviors
// ---------------------------------------------------------------------------

TEST(DynamicIndexTest, InsertDuplicateAndSelfLoopRejected) {
  DynamicEsdIndex dyn(PaperGraph());
  EXPECT_FALSE(dyn.InsertEdge(F, G));
  EXPECT_FALSE(dyn.InsertEdge(3, 3));
  EXPECT_FALSE(dyn.DeleteEdge(0, 15));  // no such edge
}

TEST(DynamicIndexTest, InsertThenDeleteRoundTrips) {
  Graph g = PaperGraph();
  DynamicEsdIndex dyn(g);
  EsdIndex before = BuildIndexClique(g);
  ASSERT_TRUE(dyn.InsertEdge(A, W));
  ASSERT_TRUE(dyn.InsertEdge(C, D));
  ASSERT_TRUE(dyn.DeleteEdge(C, D));
  ASSERT_TRUE(dyn.DeleteEdge(A, W));
  ExpectEqualsFreshRebuild(dyn);
  EXPECT_EQ(dyn.Index().NumEntries(), before.NumEntries());
}

TEST(DynamicIndexTest, QueryMatchesNaiveAfterUpdates) {
  DynamicEsdIndex dyn(PaperGraph());
  dyn.InsertEdge(C, D);
  dyn.DeleteEdge(U, K);
  dyn.InsertEdge(W, V);
  Graph now = dyn.CurrentGraph().Snapshot();
  for (uint32_t tau : {1u, 2u, 3u, 4u, 5u}) {
    for (uint32_t k : {1u, 3u, 10u, 100u}) {
      EXPECT_EQ(Scores(dyn.Query(k, tau)), test::NaiveTopScores(now, k, tau))
          << "tau=" << tau << " k=" << k;
    }
  }
}

TEST(DynamicIndexTest, TouchedEdgesIsLocal) {
  // Inserting an edge between two far-apart low-degree vertices touches few
  // edges.
  DynamicEsdIndex dyn(PaperGraph());
  dyn.InsertEdge(A, W);  // no common neighbors
  EXPECT_EQ(dyn.LastUpdateTouchedEdges(), 1u);  // only the new edge itself
}

TEST(DynamicIndexTest, GrowFromEmptyGraph) {
  Graph empty = Graph::FromEdges(6, {});
  DynamicEsdIndex dyn(empty);
  // Build K4 edge by edge.
  std::vector<std::pair<VertexId, VertexId>> edges{{0, 1}, {0, 2}, {0, 3},
                                                   {1, 2}, {1, 3}, {2, 3}};
  for (auto [u, v] : edges) ASSERT_TRUE(dyn.InsertEdge(u, v));
  // Every edge of K4 has ego-network = the other two vertices, connected.
  for (auto [u, v] : edges) EXPECT_EQ(dyn.ScoreOf(u, v, 2), 1u);
  ExpectEqualsFreshRebuild(dyn);
  // Tear it down edge by edge.
  for (auto [u, v] : edges) ASSERT_TRUE(dyn.DeleteEdge(u, v));
  EXPECT_EQ(dyn.Index().NumEntries(), 0u);
  EXPECT_EQ(dyn.Index().NumRegisteredEdges(), 0u);
}

TEST(DynamicIndexTest, DeleteSplitsComponentTargeted) {
  // Path inside an ego-network: common neighbors {x,y,z} of (s,t) connected
  // x-y-z; deleting (x... we delete the middle link (x,y) which is an edge
  // of the graph whose removal splits (s,t)'s ego component.
  GraphBuilder b(5);
  VertexId s = 0, t = 1, x = 2, y = 3, z = 4;
  b.AddEdge(s, t);
  for (VertexId w : {x, y, z}) {
    b.AddEdge(s, w);
    b.AddEdge(t, w);
  }
  b.AddEdge(x, y);
  b.AddEdge(y, z);
  Graph g = b.Build();
  for (DeletionStrategy strategy :
       {DeletionStrategy::kRebuildLocal, DeletionStrategy::kTargeted}) {
    DynamicEsdIndex dyn(g, strategy);
    EXPECT_EQ(dyn.ScoreOf(s, t, 3), 1u);  // {x,y,z} one component
    ASSERT_TRUE(dyn.DeleteEdge(x, y));
    EXPECT_EQ(dyn.ScoreOf(s, t, 3), 0u);
    EXPECT_EQ(dyn.ScoreOf(s, t, 1), 2u);  // {x} and {y,z}
    ExpectEqualsFreshRebuild(dyn);
  }
}

// ---------------------------------------------------------------------------
// Randomized maintenance scripts vs rebuild-from-scratch
// ---------------------------------------------------------------------------

struct ScriptParam {
  uint64_t seed;
  DeletionStrategy strategy;

  friend void PrintTo(const ScriptParam& p, std::ostream* os) {
    *os << "seed" << p.seed
        << (p.strategy == DeletionStrategy::kTargeted ? "_targeted"
                                                      : "_rebuild");
  }
};

class MaintenanceScriptTest
    : public ::testing::TestWithParam<ScriptParam> {};

TEST_P(MaintenanceScriptTest, RandomEditScriptMatchesRebuild) {
  auto [seed, strategy] = GetParam();
  util::Rng rng(seed);
  Graph g = gen::ErdosRenyiGnp(24, 0.3, seed);
  DynamicEsdIndex dyn(g, strategy);
  int edits = 0;
  for (int step = 0; step < 120; ++step) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(24));
    VertexId v = static_cast<VertexId>(rng.NextBounded(24));
    if (u == v) continue;
    if (dyn.CurrentGraph().HasEdge(u, v)) {
      ASSERT_TRUE(dyn.DeleteEdge(u, v));
    } else {
      ASSERT_TRUE(dyn.InsertEdge(u, v));
    }
    ++edits;
    if (edits % 10 == 0) ExpectEqualsFreshRebuild(dyn);
  }
  ExpectEqualsFreshRebuild(dyn);
  // Final query cross-check against naive.
  Graph now = dyn.CurrentGraph().Snapshot();
  for (uint32_t tau : {1u, 2u, 3u}) {
    EXPECT_EQ(Scores(dyn.Query(15, tau)), test::NaiveTopScores(now, 15, tau));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MaintenanceScriptTest,
    ::testing::Values(ScriptParam{1, DeletionStrategy::kRebuildLocal},
                      ScriptParam{2, DeletionStrategy::kRebuildLocal},
                      ScriptParam{3, DeletionStrategy::kRebuildLocal},
                      ScriptParam{1, DeletionStrategy::kTargeted},
                      ScriptParam{2, DeletionStrategy::kTargeted},
                      ScriptParam{3, DeletionStrategy::kTargeted},
                      ScriptParam{4, DeletionStrategy::kTargeted},
                      ScriptParam{5, DeletionStrategy::kTargeted}));

TEST(MaintenanceDenseTest, CliqueChurn) {
  // Dense graphs exercise the 4-clique paths heavily.
  util::Rng rng(99);
  Graph g = gen::ErdosRenyiGnp(14, 0.6, 99);
  DynamicEsdIndex dyn(g, DeletionStrategy::kTargeted);
  for (int step = 0; step < 60; ++step) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(14));
    VertexId v = static_cast<VertexId>(rng.NextBounded(14));
    if (u == v) continue;
    if (dyn.CurrentGraph().HasEdge(u, v)) {
      dyn.DeleteEdge(u, v);
    } else {
      dyn.InsertEdge(u, v);
    }
    if (step % 5 == 0) ExpectEqualsFreshRebuild(dyn);
  }
  ExpectEqualsFreshRebuild(dyn);
}

TEST(MaintenanceDenseTest, StrategiesAgreeWithEachOther) {
  util::Rng rng(7);
  Graph g = gen::WattsStrogatz(40, 6, 0.2, 7);
  DynamicEsdIndex a(g, DeletionStrategy::kRebuildLocal);
  DynamicEsdIndex b(g, DeletionStrategy::kTargeted);
  for (int step = 0; step < 80; ++step) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(40));
    VertexId v = static_cast<VertexId>(rng.NextBounded(40));
    if (u == v) continue;
    if (a.CurrentGraph().HasEdge(u, v)) {
      a.DeleteEdge(u, v);
      b.DeleteEdge(u, v);
    } else {
      a.InsertEdge(u, v);
      b.InsertEdge(u, v);
    }
  }
  EXPECT_EQ(a.Index().NumEntries(), b.Index().NumEntries());
  EXPECT_EQ(a.Index().DistinctSizes(), b.Index().DistinctSizes());
  for (uint32_t tau : {1u, 2u, 3u, 4u}) {
    EXPECT_EQ(Scores(a.Query(50, tau)), Scores(b.Query(50, tau)));
  }
}

TEST(MaintenanceDenseTest, CollaborationChurnMatchesRebuild) {
  gen::CollaborationParams p;
  p.num_authors = 300;
  p.num_papers = 350;
  p.num_communities = 4;
  p.num_bridge_pairs = 2;
  p.num_barbells = 1;
  Graph g = gen::GenerateCollaboration(p, 111).graph;
  util::Rng rng(111);
  DynamicEsdIndex dyn(g, DeletionStrategy::kTargeted);
  // Delete 30 random existing edges, insert 30 random new ones.
  const auto& edges = g.Edges();
  for (int i = 0; i < 30; ++i) {
    const Edge& e = edges[rng.NextBounded(edges.size())];
    dyn.DeleteEdge(e.u, e.v);
  }
  for (int i = 0; i < 30; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(300));
    VertexId v = static_cast<VertexId>(rng.NextBounded(300));
    if (u != v && !dyn.CurrentGraph().HasEdge(u, v)) dyn.InsertEdge(u, v);
  }
  ExpectEqualsFreshRebuild(dyn);
}

}  // namespace
}  // namespace esd::core
