#include <algorithm>
#include <numeric>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/vertex_diversity.h"
#include "baselines/vertex_diversity_index.h"
#include "core/dynamic_index.h"
#include "core/edge_dsu_arena.h"
#include "core/ego_network.h"
#include "core/index_builder.h"
#include "core/index_io.h"
#include "gen/chung_lu.h"
#include "gen/erdos_renyi.h"
#include "gen/holme_kim.h"
#include "graph/builder.h"
#include "tests/test_helpers.h"
#include "util/rng.h"

namespace esd {
namespace {

using graph::Edge;
using graph::EdgeId;
using graph::Graph;
using graph::VertexId;

// ---------------------------------------------------------------------------
// EdgeDsuArena
// ---------------------------------------------------------------------------

TEST(EdgeDsuArenaTest, MembersAreCommonNeighborhoods) {
  Graph g = gen::ErdosRenyiGnp(30, 0.3, 1);
  core::EdgeDsuArena arena(g);
  ASSERT_EQ(arena.NumEdges(), g.NumEdges());
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const Edge& uv = g.EdgeAt(e);
    auto want = graph::CommonNeighbors(g, uv.u, uv.v);
    auto got = arena.Members(e);
    ASSERT_EQ(got.size(), want.size());
    EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin()));
  }
}

TEST(EdgeDsuArenaTest, UnionsMatchEgoComponents) {
  Graph g = gen::ErdosRenyiGnp(25, 0.35, 2);
  core::EdgeDsuArena arena(g);
  // Union along every ego-network edge, then component sizes must match
  // the BFS ground truth.
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    auto members = arena.Members(e);
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        if (g.HasEdge(members[i], members[j])) {
          arena.Union(e, members[i], members[j]);
        }
      }
    }
  }
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const Edge& uv = g.EdgeAt(e);
    EXPECT_EQ(arena.ComponentSizes(e), core::EgoComponentSizes(g, uv.u, uv.v));
  }
}

TEST(EdgeDsuArenaTest, ToKeyedDsuPreservesComponents) {
  Graph g = gen::HolmeKim(60, 4, 0.5, 3);
  core::EdgeDsuArena arena(g);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    auto members = arena.Members(e);
    for (size_t i = 0; i + 1 < members.size(); i += 2) {
      arena.Union(e, members[i], members[i + 1]);
    }
  }
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    util::KeyedDsu k = arena.ToKeyedDsu(e);
    EXPECT_EQ(k.ComponentSizes(), arena.ComponentSizes(e));
    // Same partition, not only same sizes.
    auto members = arena.Members(e);
    for (size_t i = 0; i + 1 < members.size(); i += 2) {
      EXPECT_TRUE(k.Same(members[i], members[i + 1]));
    }
  }
}

TEST(EdgeDsuArenaTest, ParallelFillMatchesSerial) {
  Graph g = gen::HolmeKim(100, 5, 0.4, 4);
  util::ThreadPool pool(4);
  core::EdgeDsuArena serial(g);
  core::EdgeDsuArena parallel(g, &pool);
  ASSERT_EQ(serial.TotalMembers(), parallel.TotalMembers());
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    auto a = serial.Members(e);
    auto b = parallel.Members(e);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  }
}

// ---------------------------------------------------------------------------
// Index serialization
// ---------------------------------------------------------------------------

TEST(IndexIoTest, RoundTripFreshIndex) {
  Graph g = gen::HolmeKim(200, 5, 0.5, 5);
  core::EsdIndex index = core::BuildIndexClique(g);
  std::stringstream buffer;
  std::string error;
  ASSERT_TRUE(core::SerializeIndex(index, buffer, &error)) << error;
  core::EsdIndex loaded;
  ASSERT_TRUE(core::DeserializeIndex(buffer, &loaded, &error)) << error;
  test::ExpectIndexesEqual(index, loaded);
  EXPECT_EQ(loaded.NumRegisteredEdges(), index.NumRegisteredEdges());
  // Queries behave identically.
  for (uint32_t tau : {1u, 2u, 3u}) {
    EXPECT_EQ(core::Scores(loaded.Query(20, tau)),
              core::Scores(index.Query(20, tau)));
  }
}

TEST(IndexIoTest, RoundTripWithFreedSlots) {
  core::EsdIndex index;
  EdgeId a = index.RegisterEdge({0, 1});
  EdgeId b = index.RegisterEdge({1, 2});
  EdgeId c = index.RegisterEdge({2, 3});
  index.SetEdgeSizes(a, {1, 2});
  index.SetEdgeSizes(b, {3});
  index.SetEdgeSizes(c, {2, 2});
  index.SetEdgeSizes(b, {});
  index.UnregisterEdge(b);
  std::stringstream buffer;
  std::string error;
  ASSERT_TRUE(core::SerializeIndex(index, buffer, &error)) << error;
  core::EsdIndex loaded;
  ASSERT_TRUE(core::DeserializeIndex(buffer, &loaded, &error)) << error;
  test::ExpectIndexesEqual(index, loaded);
  EXPECT_FALSE(loaded.IsLive(b));
  EXPECT_TRUE(loaded.IsLive(a));
  EXPECT_EQ(loaded.EdgeSizes(c), (std::vector<uint32_t>{2, 2}));
}

TEST(IndexIoTest, FileRoundTrip) {
  Graph g = gen::ErdosRenyiGnp(40, 0.3, 7);
  core::EsdIndex index = core::BuildIndexBasic(g);
  std::string path = ::testing::TempDir() + "/esd_index_io_test.bin";
  std::string error;
  ASSERT_TRUE(core::SaveIndex(index, path, &error)) << error;
  core::EsdIndex loaded;
  ASSERT_TRUE(core::LoadIndex(path, &loaded, &error)) << error;
  test::ExpectIndexesEqual(index, loaded);
  std::remove(path.c_str());
}

TEST(IndexIoTest, RejectsBadMagicAndTruncationAndCorruption) {
  Graph g = gen::ErdosRenyiGnp(20, 0.3, 9);
  core::EsdIndex index = core::BuildIndexBasic(g);
  std::stringstream buffer;
  std::string error;
  ASSERT_TRUE(core::SerializeIndex(index, buffer, &error));
  std::string payload = buffer.str();

  {
    std::stringstream bad("not an index at all");
    core::EsdIndex out;
    EXPECT_FALSE(core::DeserializeIndex(bad, &out, &error));
    EXPECT_NE(error.find("magic"), std::string::npos);
  }
  {
    std::stringstream truncated(payload.substr(0, payload.size() / 2));
    core::EsdIndex out;
    EXPECT_FALSE(core::DeserializeIndex(truncated, &out, &error));
  }
  {
    std::string corrupt = payload;
    corrupt[corrupt.size() / 2] ^= 0x5A;  // flip bits mid-payload
    std::stringstream stream(corrupt);
    core::EsdIndex out;
    EXPECT_FALSE(core::DeserializeIndex(stream, &out, &error));
  }
}

TEST(IndexIoTest, LoadMissingFileFails) {
  core::EsdIndex out;
  std::string error;
  EXPECT_FALSE(core::LoadIndex("/definitely/not/here.bin", &out, &error));
  EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------------
// Batch updates
// ---------------------------------------------------------------------------

TEST(BatchUpdateTest, MatchesSequentialUpdates) {
  util::Rng rng(11);
  Graph g = gen::ErdosRenyiGnp(25, 0.3, 11);
  core::DynamicEsdIndex seq(g);
  core::DynamicEsdIndex batch(g);
  std::vector<core::DynamicEsdIndex::EdgeUpdate> updates;
  for (int i = 0; i < 60; ++i) {
    auto u = static_cast<VertexId>(rng.NextBounded(25));
    auto v = static_cast<VertexId>(rng.NextBounded(25));
    if (u == v) continue;
    bool exists = seq.CurrentGraph().HasEdge(u, v);
    using Kind = core::DynamicEsdIndex::EdgeUpdate::Kind;
    updates.push_back({exists ? Kind::kDelete : Kind::kInsert, u, v});
    if (exists) {
      seq.DeleteEdge(u, v);
    } else {
      seq.InsertEdge(u, v);
    }
  }
  size_t applied = batch.ApplyBatch(updates);
  EXPECT_EQ(applied, updates.size());
  EXPECT_EQ(batch.Index().NumEntries(), seq.Index().NumEntries());
  EXPECT_EQ(batch.Index().DistinctSizes(), seq.Index().DistinctSizes());
  for (uint32_t tau : {1u, 2u, 3u}) {
    EXPECT_EQ(core::Scores(batch.Query(30, tau)),
              core::Scores(seq.Query(30, tau)));
  }
}

TEST(BatchUpdateTest, InsertThenDeleteSameEdgeInBatch) {
  Graph g = gen::ErdosRenyiGnp(15, 0.4, 13);
  core::DynamicEsdIndex dyn(g);
  uint64_t entries_before = dyn.Index().NumEntries();
  using Kind = core::DynamicEsdIndex::EdgeUpdate::Kind;
  // Find a non-edge.
  VertexId u = 0, v = 1;
  while (dyn.CurrentGraph().HasEdge(u, v)) ++v;
  std::vector<core::DynamicEsdIndex::EdgeUpdate> updates{
      {Kind::kInsert, u, v}, {Kind::kDelete, u, v}};
  EXPECT_EQ(dyn.ApplyBatch(updates), 2u);
  EXPECT_EQ(dyn.Index().NumEntries(), entries_before);
  EXPECT_FALSE(dyn.CurrentGraph().HasEdge(u, v));
}

TEST(BatchUpdateTest, NoopsAreCounted) {
  Graph g = gen::ErdosRenyiGnp(10, 0.5, 17);
  core::DynamicEsdIndex dyn(g);
  const Edge& existing = g.Edges()[0];
  using Kind = core::DynamicEsdIndex::EdgeUpdate::Kind;
  std::vector<core::DynamicEsdIndex::EdgeUpdate> updates{
      {Kind::kInsert, existing.u, existing.v},  // already exists -> no-op
      {Kind::kDelete, 0, 9},                    // likely missing
  };
  size_t applied = dyn.ApplyBatch(updates);
  EXPECT_LE(applied, 1u);
}

// ---------------------------------------------------------------------------
// Vertex structural diversity: online + index
// ---------------------------------------------------------------------------

TEST(VertexOnlineTest, MatchesNaiveScoresOnSweep) {
  for (uint64_t seed : {21ull, 22ull}) {
    Graph g = gen::ErdosRenyiGnp(60, 0.12, seed);
    for (uint32_t tau : {1u, 2u, 3u}) {
      for (uint32_t k : {1u, 5u, 20u, 1000u}) {
        auto naive = baselines::TopKVertexDiversity(
            g, std::min<uint32_t>(k, g.NumVertices()), tau);
        auto online = baselines::OnlineVertexTopK(g, k, tau);
        ASSERT_EQ(online.size(), naive.size());
        for (size_t i = 0; i < naive.size(); ++i) {
          EXPECT_EQ(online[i].score, naive[i].score) << "rank " << i;
        }
      }
    }
  }
}

TEST(VertexOnlineTest, StatsAndDegenerateInputs) {
  Graph g = gen::HolmeKim(200, 4, 0.5, 23);
  baselines::VertexOnlineStats stats;
  auto r = baselines::OnlineVertexTopK(g, 5, 2, &stats);
  EXPECT_EQ(r.size(), 5u);
  EXPECT_GE(stats.exact_computations, 5u);
  EXPECT_LE(stats.exact_computations, g.NumVertices());
  EXPECT_TRUE(baselines::OnlineVertexTopK(g, 0, 2).empty());
  EXPECT_TRUE(baselines::OnlineVertexTopK(Graph(), 5, 2).empty());
}

TEST(VsdIndexTest, QueryMatchesNaive) {
  for (uint64_t seed : {31ull, 32ull}) {
    Graph g = gen::ErdosRenyiGnp(50, 0.15, seed);
    baselines::VsdIndex index(g);
    for (uint32_t tau = 1; tau <= 5; ++tau) {
      for (uint32_t k : {1u, 7u, 25u}) {
        auto naive = baselines::TopKVertexDiversity(g, k, tau);
        auto idx = index.Query(k, tau);
        ASSERT_EQ(idx.size(), naive.size());
        for (size_t i = 0; i < naive.size(); ++i) {
          EXPECT_EQ(idx[i].score, naive[i].score)
              << "tau=" << tau << " k=" << k << " rank=" << i;
        }
      }
    }
  }
}

TEST(VsdIndexTest, PaddingAndEmptyGraph) {
  Graph g = Graph::FromEdges(5, {{0, 1}});
  baselines::VsdIndex index(g);
  EXPECT_EQ(index.Query(4, 1).size(), 4u);
  EXPECT_TRUE(index.Query(4, 1, false).size() <= 2u);
  baselines::VsdIndex empty{Graph()};
  EXPECT_TRUE(empty.Query(3, 1).empty());
}

TEST(VsdIndexTest, SizesAscendingAndEntriesBounded) {
  Graph g = gen::HolmeKim(150, 5, 0.6, 33);
  baselines::VsdIndex index(g);
  auto sizes = index.DistinctSizes();
  EXPECT_TRUE(std::is_sorted(sizes.begin(), sizes.end()));
  // Each vertex contributes at most max-comp-size <= d(v) entries.
  uint64_t bound = 2ull * g.NumEdges();
  EXPECT_LE(index.NumEntries(), bound + g.NumVertices());
}

// ---------------------------------------------------------------------------
// Chung–Lu generator
// ---------------------------------------------------------------------------

TEST(ChungLuTest, ExpectedDegreesRoughlyRealized) {
  const uint32_t n = 2000;
  std::vector<double> weights(n, 10.0);  // uniform expected degree 10
  Graph g = gen::ChungLu(weights, 41);
  double avg = 2.0 * g.NumEdges() / n;
  EXPECT_NEAR(avg, 10.0, 1.0);
}

TEST(ChungLuTest, SkewedWeightsMakeHubs) {
  Graph g = gen::ChungLuPowerLaw(3000, 2.3, 2.0, 300.0, 43);
  EXPECT_GT(g.MaxDegree(), 80u);
  EXPECT_GT(g.NumEdges(), 2000u);
}

TEST(ChungLuTest, DeterministicAndDegenerate) {
  std::vector<double> w{3, 2, 1, 1, 0.5};
  EXPECT_EQ(gen::ChungLu(w, 5).Edges(), gen::ChungLu(w, 5).Edges());
  EXPECT_EQ(gen::ChungLu({}, 1).NumVertices(), 0u);
  EXPECT_EQ(gen::ChungLu({0, 0, 0}, 1).NumEdges(), 0u);
}

}  // namespace
}  // namespace esd
