// Adversarial and stress coverage of the substrates: degenerate inputs,
// pathological orderings, churn-heavy workloads, determinism across runs.

#include <algorithm>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gen/barabasi_albert.h"
#include "gen/collaboration.h"
#include "gen/holme_kim.h"
#include "gen/watts_strogatz.h"
#include "gen/word_association.h"
#include "graph/builder.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "graph/orientation.h"
#include "util/binary_heap.h"
#include "util/dsu.h"
#include "util/flat_map.h"
#include "util/rng.h"
#include "util/treap.h"

namespace esd {
namespace {

using graph::Edge;
using graph::Graph;
using graph::VertexId;

// ---------------------------------------------------------------------------
// Treap under adversarial orders
// ---------------------------------------------------------------------------

TEST(TreapRobustnessTest, AscendingAndDescendingInsertions) {
  util::Treap<int> asc, desc;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) asc.Insert(i);
  for (int i = kN; i-- > 0;) desc.Insert(i);
  EXPECT_EQ(asc.size(), static_cast<size_t>(kN));
  EXPECT_EQ(desc.size(), static_cast<size_t>(kN));
  // Random access probes stay correct (and fast enough to finish).
  util::Rng rng(1);
  for (int probe = 0; probe < 1000; ++probe) {
    int x = static_cast<int>(rng.NextBounded(kN));
    EXPECT_TRUE(asc.Contains(x));
    ASSERT_NE(asc.Kth(static_cast<size_t>(x)), nullptr);
    EXPECT_EQ(*asc.Kth(static_cast<size_t>(x)), x);
    EXPECT_EQ(*desc.Kth(static_cast<size_t>(x)), x);
  }
}

TEST(TreapRobustnessTest, EraseEverythingThenReuse) {
  util::Treap<int> t;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 3000; ++i) EXPECT_TRUE(t.Insert(i));
    for (int i = 0; i < 3000; ++i) EXPECT_TRUE(t.Erase(i));
    EXPECT_TRUE(t.empty());
  }
  EXPECT_TRUE(t.Insert(42));
  EXPECT_EQ(*t.Kth(0), 42);
}

TEST(TreapRobustnessTest, BuildFromSortedEmptyAndSingle) {
  util::Treap<int> t;
  t.BuildFromSorted({});
  EXPECT_TRUE(t.empty());
  t.BuildFromSorted({7});
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.Contains(7));
  // Rebuild replaces content.
  t.BuildFromSorted({1, 2, 3});
  EXPECT_FALSE(t.Contains(7));
  EXPECT_EQ(t.size(), 3u);
}

// ---------------------------------------------------------------------------
// FlatMap churn / clear cycles
// ---------------------------------------------------------------------------

TEST(FlatMapRobustnessTest, HeavyEraseReinsertCycles) {
  util::FlatMap<uint32_t, uint32_t> m;
  util::Rng rng(2);
  // Churn keeps the table dense near its load ceiling without tombstones.
  for (int round = 0; round < 50; ++round) {
    for (uint32_t i = 0; i < 200; ++i) m.Insert(i, i + round);
    for (uint32_t i = 0; i < 200; i += 2) m.Erase(i);
    for (uint32_t i = 0; i < 200; ++i) {
      auto* p = m.Find(i);
      if (i % 2 == 0) {
        EXPECT_EQ(p, nullptr);
      } else {
        ASSERT_NE(p, nullptr);
      }
    }
    for (uint32_t i = 0; i < 200; i += 2) m.Insert(i, i);
  }
  EXPECT_EQ(m.size(), 200u);
}

TEST(FlatMapRobustnessTest, SequentialKeysNoClustering) {
  // Sequential integer keys are the common case (vertex ids); make sure
  // lookups stay correct at scale.
  util::FlatMap<uint32_t, uint32_t> m;
  for (uint32_t i = 0; i < 100000; ++i) m.Insert(i, i * 3);
  for (uint32_t i = 0; i < 100000; i += 997) {
    ASSERT_NE(m.Find(i), nullptr);
    EXPECT_EQ(*m.Find(i), i * 3);
  }
  EXPECT_EQ(m.Find(100000), nullptr);
}

// ---------------------------------------------------------------------------
// BinaryHeap with hostile priorities
// ---------------------------------------------------------------------------

TEST(BinaryHeapRobustnessTest, AllEqualPriorities) {
  util::BinaryHeap<int> h;
  for (int i = 0; i < 1000; ++i) h.Push(i, 7);
  std::set<int> seen;
  while (!h.empty()) {
    auto e = h.Pop();
    EXPECT_EQ(e.priority, 7);
    EXPECT_TRUE(seen.insert(e.value).second);
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(BinaryHeapRobustnessTest, NegativePriorities) {
  util::BinaryHeap<int, int64_t> h;
  h.Push(1, -5);
  h.Push(2, 0);
  h.Push(3, -1);
  EXPECT_EQ(h.Pop().value, 2);
  EXPECT_EQ(h.Pop().value, 3);
  EXPECT_EQ(h.Pop().value, 1);
}

// ---------------------------------------------------------------------------
// KeyedDsu churn
// ---------------------------------------------------------------------------

TEST(KeyedDsuRobustnessTest, RemoveComponentsThenRebuild) {
  util::KeyedDsu d;
  util::Rng rng(3);
  for (int round = 0; round < 20; ++round) {
    for (uint32_t v = 0; v < 60; ++v) d.AddMember(v * 7 + 1);
    for (int i = 0; i < 80; ++i) {
      uint32_t a = static_cast<uint32_t>(rng.NextBounded(60)) * 7 + 1;
      uint32_t b = static_cast<uint32_t>(rng.NextBounded(60)) * 7 + 1;
      d.Union(a, b);
    }
    // Tear everything down component by component.
    while (d.NumMembers() > 0) {
      // Find any member via ForEachMember.
      uint32_t any = 0;
      bool found = false;
      d.ForEachMember([&](uint32_t v) {
        if (!found) {
          any = v;
          found = true;
        }
      });
      ASSERT_TRUE(found);
      d.RemoveComponent(any);
    }
    EXPECT_EQ(d.NumComponents(), 0u);
  }
}

// ---------------------------------------------------------------------------
// Graph invariants on extreme shapes
// ---------------------------------------------------------------------------

TEST(GraphRobustnessTest, SingleEdgeAndSelfLoopOnly) {
  Graph g1 = Graph::FromEdges(2, {{0, 1}});
  EXPECT_EQ(g1.NumEdges(), 1u);
  Graph g2 = Graph::FromEdges(3, {{1, 1}, {2, 2}});
  EXPECT_EQ(g2.NumEdges(), 0u);
  EXPECT_EQ(g2.MaxDegree(), 0u);
}

TEST(GraphRobustnessTest, MaxVertexIdBoundary) {
  // Vertices right at the n-1 boundary.
  const VertexId n = 1000;
  Graph g = Graph::FromEdges(n, {{0, n - 1}, {n - 2, n - 1}});
  EXPECT_EQ(g.Degree(n - 1), 2u);
  EXPECT_TRUE(g.HasEdge(n - 1, 0));
  EXPECT_EQ(graph::CommonNeighbors(g, 0, n - 2),
            (std::vector<VertexId>{n - 1}));
}

TEST(GraphRobustnessTest, StarDagOrientationPointsAtHub) {
  // Degree ordering must orient all spokes leaf -> hub; the hub has
  // out-degree 0 and every leaf exactly 1.
  graph::GraphBuilder b(1001);
  for (VertexId i = 1; i <= 1000; ++i) b.AddEdge(0, i);
  Graph g = b.Build();
  graph::DegreeOrderedDag dag(g);
  EXPECT_EQ(dag.OutDegree(0), 0u);
  EXPECT_EQ(dag.MaxOutDegree(), 1u);
}

TEST(IoRobustnessTest, CrlfAndTabsAndExtraTokens) {
  Graph g;
  std::string error;
  ASSERT_TRUE(graph::ParseEdgeList("1\t2\r\n3 4 extra tokens ok\r\n", &g,
                                   &error))
      << error;
  EXPECT_EQ(g.NumEdges(), 2u);
  // A lone vertex token is malformed.
  EXPECT_FALSE(graph::ParseEdgeList("1\n", &g, &error));
}

// ---------------------------------------------------------------------------
// Generator determinism across every family
// ---------------------------------------------------------------------------

TEST(GeneratorDeterminismTest, AllFamiliesStableAcrossCalls) {
  EXPECT_EQ(gen::BarabasiAlbert(300, 3, 9).Edges(),
            gen::BarabasiAlbert(300, 3, 9).Edges());
  EXPECT_EQ(gen::HolmeKim(300, 4, 0.5, 9).Edges(),
            gen::HolmeKim(300, 4, 0.5, 9).Edges());
  EXPECT_EQ(gen::WattsStrogatz(300, 6, 0.3, 9).Edges(),
            gen::WattsStrogatz(300, 6, 0.3, 9).Edges());
  gen::CollaborationParams cp;
  cp.num_authors = 400;
  cp.num_papers = 300;
  EXPECT_EQ(gen::GenerateCollaboration(cp, 9).graph.Edges(),
            gen::GenerateCollaboration(cp, 9).graph.Edges());
  gen::WordAssociationParams wp;
  wp.background_words = 200;
  EXPECT_EQ(gen::GenerateWordAssociation(wp, 9).graph.Edges(),
            gen::GenerateWordAssociation(wp, 9).graph.Edges());
}

TEST(GeneratorDeterminismTest, SeedsProduceDistinctGraphs) {
  EXPECT_NE(gen::HolmeKim(300, 4, 0.5, 1).Edges(),
            gen::HolmeKim(300, 4, 0.5, 2).Edges());
  EXPECT_NE(gen::WattsStrogatz(300, 6, 0.3, 1).Edges(),
            gen::WattsStrogatz(300, 6, 0.3, 2).Edges());
}

}  // namespace
}  // namespace esd
