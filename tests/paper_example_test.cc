// Pins every locally-determined fact of the paper's running example
// (Fig. 1(a), Fig. 2, Examples 1-7) that our reconstruction realizes.
// The reconstruction (see core_test.cc) is exact for the a..g region, the
// {j,k,u,v,p,q} 6-clique with satellite w, and the (f,g) ego-network; the
// paper's figure has extra structure around (h,i) that the text does not
// specify, so facts depending on it are not asserted.

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/dynamic_index.h"
#include "core/ego_network.h"
#include "core/esd_index.h"
#include "core/index_builder.h"
#include "core/online_topk.h"
#include "graph/builder.h"
#include "graph/orientation.h"

namespace esd::core {
namespace {

using graph::Edge;
using graph::Graph;
using graph::GraphBuilder;
using graph::VertexId;

constexpr VertexId A = 0, B = 1, C = 2, D = 3, E = 4, F = 5, G = 6, H = 7,
                   I = 8, J = 9, K = 10, U = 11, V = 12, P = 13, Q = 14,
                   W = 15;

Graph PaperGraph() {
  GraphBuilder b(16);
  for (auto [x, y] : std::vector<std::pair<VertexId, VertexId>>{
           {A, B}, {A, C}, {B, C}, {B, D}, {B, E}, {C, E}, {C, G}, {D, E}}) {
    b.AddEdge(x, y);
  }
  for (VertexId x : {D, E, H, I}) {
    b.AddEdge(F, x);
    b.AddEdge(G, x);
  }
  b.AddEdge(F, G);
  b.AddEdge(H, I);
  std::vector<VertexId> clique{J, K, U, V, P, Q};
  for (size_t i = 0; i < clique.size(); ++i) {
    for (size_t j = i + 1; j < clique.size(); ++j) {
      b.AddEdge(clique[i], clique[j]);
    }
  }
  b.AddEdge(W, U);
  b.AddEdge(W, P);
  b.AddEdge(W, Q);
  return b.Build();
}

TEST(PaperExampleTest, DegreeOrderingTieBreak) {
  // Section II: "e ≺ f, as d(e) = d(f) and e has a smaller ID".
  Graph g = PaperGraph();
  ASSERT_EQ(g.Degree(E), g.Degree(F));
  graph::DegreeOrderedDag dag(g);
  EXPECT_TRUE(dag.Less(E, F));
}

TEST(PaperExampleTest, Example1EgoNetworkOfFG) {
  Graph g = PaperGraph();
  EXPECT_EQ(graph::CommonNeighbors(g, F, G),
            (std::vector<VertexId>{D, E, H, I}));
  EXPECT_EQ(EgoComponentSizes(g, F, G), (std::vector<uint32_t>{2, 2}));
}

TEST(PaperExampleTest, Example2Scores) {
  Graph g = PaperGraph();
  EXPECT_EQ(EdgeScore(g, F, G, 1), 2u);
  EXPECT_EQ(EdgeScore(g, F, G, 2), 2u);
  EXPECT_EQ(EdgeScore(g, F, G, 3), 0u);
}

TEST(PaperExampleTest, Fig2aH1TopRows) {
  // H(1) lists (b,c), (b,e), (c,e) with score 2 and (q,w) with score 1.
  Graph g = PaperGraph();
  EXPECT_EQ(EdgeScore(g, B, C, 1), 2u);  // N(bc) = {a, e}, no a-e edge
  EXPECT_EQ(EdgeScore(g, B, E, 1), 2u);  // N(be) = {c, d}
  EXPECT_EQ(EdgeScore(g, C, E, 1), 2u);  // N(ce) = {b, g}
  EXPECT_EQ(EdgeScore(g, Q, W, 1), 1u);  // N(qw) = {u, p}, connected
}

TEST(PaperExampleTest, Fig2bExcludedFromH2) {
  // "{(a,b),(a,c),(b,c),(b,d),(b,e),(c,e),(c,g)} are not contained in
  // H(2), since the size of the maximum connected component ... is smaller
  // than 2."
  Graph g = PaperGraph();
  for (auto [x, y] : {std::pair{A, B}, {A, C}, {B, C}, {B, D}, {B, E},
                      {C, E}, {C, G}}) {
    auto sizes = EgoComponentSizes(g, x, y);
    EXPECT_TRUE(sizes.empty() || sizes.back() < 2)
        << "(" << x << "," << y << ")";
  }
  EsdIndex index = BuildIndexBasic(g);
  TopKResult h2 = index.QueryWithScoreAtLeast(2, 1);
  std::set<Edge> h2_edges;
  for (const ScoredEdge& se : h2) h2_edges.insert(se.edge);
  for (auto [x, y] : {std::pair{A, B}, {A, C}, {B, C}, {B, D}, {B, E},
                      {C, E}, {C, G}}) {
    EXPECT_EQ(h2_edges.count(graph::MakeEdge(x, y)), 0u);
  }
}

TEST(PaperExampleTest, Fig2cH4IsTheFifteenCliqueEdges) {
  // "H(4) contains 15 edges which are {(j,k),(j,u),(j,v),(k,u),(k,v),
  // (u,v),(u,p),(u,q),(v,p),(v,q),(p,q),(j,p),(j,q),(k,p),(k,q)}".
  Graph g = PaperGraph();
  EsdIndex index = BuildIndexClique(g);
  TopKResult h4 = index.QueryWithScoreAtLeast(4, 1);
  ASSERT_EQ(h4.size(), 15u);
  std::set<Edge> got;
  for (const ScoredEdge& se : h4) {
    EXPECT_EQ(se.score, 1u);
    got.insert(se.edge);
  }
  std::set<Edge> want;
  std::vector<VertexId> clique{J, K, U, V, P, Q};
  for (size_t i = 0; i < clique.size(); ++i) {
    for (size_t j = i + 1; j < clique.size(); ++j) {
      want.insert(graph::MakeEdge(clique[i], clique[j]));
    }
  }
  EXPECT_EQ(got, want);
}

TEST(PaperExampleTest, Fig2dH5AndExample3Tau5) {
  // H(5) = {(u,p),(u,q),(p,q)}, each score 1; they are also the top-3
  // answer for k=3, tau=5 (Example 3).
  Graph g = PaperGraph();
  EsdIndex index = BuildIndexClique(g);
  TopKResult h5 = index.QueryWithScoreAtLeast(5, 1);
  ASSERT_EQ(h5.size(), 3u);
  std::set<Edge> got;
  for (const ScoredEdge& se : h5) {
    EXPECT_EQ(se.score, 1u);
    got.insert(se.edge);
  }
  EXPECT_EQ(got, (std::set<Edge>{graph::MakeEdge(U, P), graph::MakeEdge(U, Q),
                                 graph::MakeEdge(P, Q)}));
  // Example 3 via the online algorithm.
  TopKResult online =
      OnlineTopK(g, 3, 5, UpperBoundRule::kCommonNeighbor);
  std::set<Edge> online_edges;
  for (const ScoredEdge& se : online) online_edges.insert(se.edge);
  EXPECT_EQ(online_edges, got);
}

TEST(PaperExampleTest, Example5QueryUsesNextLargerList) {
  // tau=3 is not in C for the 6-clique region... the query at tau=3 must
  // return the same scores as tau=4 for every edge whose components skip
  // size 3 (Theorem 4's argument).
  Graph g = PaperGraph();
  EsdIndex index = BuildIndexClique(g);
  std::vector<uint32_t> c = index.DistinctSizes();
  EXPECT_TRUE(std::find(c.begin(), c.end(), 3u) == c.end());
  EXPECT_EQ(Scores(index.Query(15, 3, false)),
            Scores(index.Query(15, 4, false)));
}

TEST(PaperExampleTest, Example6InsertionMergesComponents) {
  // Inserting (c,d): {b,c,d,e} becomes a 4-clique, so b and c join one
  // component of (d,e)'s ego-network; c and g likewise; the ego-network of
  // (d,e) collapses to a single component {b,c,f,g}.
  DynamicEsdIndex dyn(PaperGraph());
  ASSERT_TRUE(dyn.InsertEdge(C, D));
  EXPECT_EQ(dyn.ScoreOf(D, E, 1), 1u);
  EXPECT_EQ(dyn.ScoreOf(D, E, 4), 1u);
  // (b,e) also gains: N(be) = {c,d} and now c-d is an edge.
  EXPECT_EQ(dyn.ScoreOf(B, E, 2), 1u);
}

TEST(PaperExampleTest, Example7DeletionSplitsAndCreatesH3) {
  DynamicEsdIndex dyn(PaperGraph());
  ASSERT_TRUE(dyn.DeleteEdge(U, K));
  // (j,k)'s ego-network becomes {v,p,q}: one component of size 3; H(3)
  // must now exist and contain (j,k).
  EXPECT_EQ(dyn.ScoreOf(J, K, 3), 1u);
  std::vector<uint32_t> c = dyn.Index().DistinctSizes();
  EXPECT_TRUE(std::find(c.begin(), c.end(), 3u) != c.end());
  TopKResult h3 = dyn.Index().QueryWithScoreAtLeast(3, 1);
  bool found = false;
  for (const ScoredEdge& se : h3) found |= se.edge == graph::MakeEdge(J, K);
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace esd::core
