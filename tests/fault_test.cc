// Unit tests of the deterministic fail-point framework: spec parsing,
// trigger semantics (always / probabilistic / nth / after / times), seeded
// determinism, delay actions, the retry/backoff helper, the shared health
// vocabulary, and the hardened WriteFully loop. These run against a local
// (non-Global) registry where possible; tests that arm the global registry
// clear it on exit so they compose with the chaos suite.

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fault/failpoint.h"
#include "fault/retry.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "util/posix_io.h"

namespace esd {
namespace {

using fault::FailPointRegistry;
using fault::FaultHit;
using fault::RetryOutcome;
using fault::RetryPolicy;
using obs::HealthState;

TEST(FailPointSpecTest, ErrorActionWithSymbolicErrno) {
  FailPointRegistry reg;
  std::string error;
  ASSERT_TRUE(reg.Set("p", "error(ENOSPC)", &error)) << error;
  const FaultHit hit = reg.Evaluate("p");
  EXPECT_TRUE(hit.fired);
  EXPECT_EQ(hit.error_code, ENOSPC);
}

TEST(FailPointSpecTest, BareErrorDefaultsToEio) {
  FailPointRegistry reg;
  std::string error;
  ASSERT_TRUE(reg.Set("p", "error", &error)) << error;
  const FaultHit hit = reg.Evaluate("p");
  EXPECT_TRUE(hit.fired);
  EXPECT_EQ(hit.error_code, EIO);
}

TEST(FailPointSpecTest, NumericErrnoAccepted) {
  FailPointRegistry reg;
  std::string error;
  ASSERT_TRUE(reg.Set("p", "error(28)", &error)) << error;  // 28 == ENOSPC
  EXPECT_EQ(reg.Evaluate("p").error_code, 28);
}

TEST(FailPointSpecTest, BareFrequencyDefaultsToEioError) {
  FailPointRegistry reg;
  std::string error;
  ASSERT_TRUE(reg.Set("p", "2", &error)) << error;  // fire twice, then stop
  EXPECT_TRUE(reg.Evaluate("p").fired);
  EXPECT_TRUE(reg.Evaluate("p").fired);
  EXPECT_FALSE(reg.Evaluate("p").fired);
  EXPECT_EQ(reg.HitCount("p"), 3u);
  EXPECT_EQ(reg.FireCount("p"), 2u);
}

TEST(FailPointSpecTest, NthFiresExactlyOnce) {
  FailPointRegistry reg;
  std::string error;
  ASSERT_TRUE(reg.Set("p", "nth(3)*error(ENOENT)", &error)) << error;
  EXPECT_FALSE(reg.Evaluate("p").fired);
  EXPECT_FALSE(reg.Evaluate("p").fired);
  const FaultHit third = reg.Evaluate("p");
  EXPECT_TRUE(third.fired);
  EXPECT_EQ(third.error_code, ENOENT);
  EXPECT_FALSE(reg.Evaluate("p").fired);
}

TEST(FailPointSpecTest, AfterFiresOnEveryLaterHit) {
  FailPointRegistry reg;
  std::string error;
  ASSERT_TRUE(reg.Set("p", "after(2)*error", &error)) << error;
  EXPECT_FALSE(reg.Evaluate("p").fired);
  EXPECT_FALSE(reg.Evaluate("p").fired);
  EXPECT_TRUE(reg.Evaluate("p").fired);
  EXPECT_TRUE(reg.Evaluate("p").fired);
}

TEST(FailPointSpecTest, ProbabilisticTriggerIsSeedDeterministic) {
  auto pattern = [](uint64_t seed) {
    FailPointRegistry reg;
    reg.SetSeed(seed);
    std::string error;
    EXPECT_TRUE(reg.Set("p", "1in3", &error)) << error;
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(reg.Evaluate("p").fired);
    return fired;
  };
  EXPECT_EQ(pattern(42), pattern(42));  // same seed -> same schedule
  // 1in3 over 64 draws: some but not all fire (astronomically unlikely
  // otherwise, and deterministic for this fixed seed anyway).
  const std::vector<bool> p = pattern(42);
  const size_t fires = static_cast<size_t>(
      std::count(p.begin(), p.end(), true));
  EXPECT_GT(fires, 0u);
  EXPECT_LT(fires, p.size());
}

TEST(FailPointSpecTest, DelayActionSleepsAndDoesNotFire) {
  FailPointRegistry reg;
  std::string error;
  ASSERT_TRUE(reg.Set("p", "delay(30)", &error)) << error;
  const auto t0 = std::chrono::steady_clock::now();
  const FaultHit hit = reg.Evaluate("p");
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_FALSE(hit.fired);  // delays never fail the call site
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            25);
}

TEST(FailPointSpecTest, OffClearsAndBadSpecsAreRejected) {
  FailPointRegistry reg;
  std::string error;
  ASSERT_TRUE(reg.Set("p", "error", &error));
  ASSERT_TRUE(reg.Set("p", "off", &error)) << error;
  EXPECT_FALSE(reg.Evaluate("p").fired);
  EXPECT_TRUE(reg.ActiveNames().empty());

  for (const char* bad :
       {"", "bogus", "error(EWHAT)", "0in5", "6in5", "delay(99999999)",
        "nth(0)", "0", "*error", "delay()"}) {
    EXPECT_FALSE(reg.Set("p", bad, &error)) << "spec accepted: " << bad;
  }
}

TEST(FailPointSpecTest, ConfigureParsesEnvStyleLists) {
  FailPointRegistry reg;
  std::string error;
  ASSERT_TRUE(reg.Configure(
      "wal.append=error(ENOSPC);snapshot.rename=1in5;pool.task=delay(1)",
      &error))
      << error;
  const std::vector<std::string> names = reg.ActiveNames();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "pool.task");  // sorted
  EXPECT_EQ(names[1], "snapshot.rename");
  EXPECT_EQ(names[2], "wal.append");

  EXPECT_FALSE(reg.Configure("no-equals-sign", &error));
  EXPECT_FALSE(reg.Configure("=spec", &error));

  reg.ClearAll();
  EXPECT_TRUE(reg.ActiveNames().empty());
}

TEST(FailPointSpecTest, ReconfiguringResetsHitCounts) {
  FailPointRegistry reg;
  std::string error;
  ASSERT_TRUE(reg.Set("p", "nth(2)", &error));
  EXPECT_FALSE(reg.Evaluate("p").fired);
  ASSERT_TRUE(reg.Set("p", "nth(2)", &error));  // reset: count starts over
  EXPECT_FALSE(reg.Evaluate("p").fired);
  EXPECT_TRUE(reg.Evaluate("p").fired);
}

TEST(FailPointMacroTest, UnconfiguredPointIsEmptyHit) {
  fault::FailPointRegistry::Global().ClearAll();
  const FaultHit hit = ESD_FAILPOINT("fault_test.nonexistent");
  EXPECT_FALSE(hit.fired);
  EXPECT_FALSE(static_cast<bool>(hit));
}

TEST(FailPointMacroTest, GlobalRegistryDrivesTheMacro) {
  if (!fault::kFailPointsCompiledIn) {
    GTEST_SKIP() << "ESD_FAULT=OFF: macro compiles out";
  }
  auto& global = fault::FailPointRegistry::Global();
  global.ClearAll();
  std::string error;
  ASSERT_TRUE(global.Set("fault_test.macro", "error(EAGAIN)", &error));
  const FaultHit hit = ESD_FAILPOINT("fault_test.macro");
  EXPECT_TRUE(hit.fired);
  EXPECT_EQ(hit.error_code, EAGAIN);
  global.ClearAll();
}

TEST(RetryPolicyTest, BackoffDoublesAndCaps) {
  RetryPolicy policy;
  policy.base_delay = std::chrono::microseconds(100);
  policy.max_delay = std::chrono::microseconds(800);
  EXPECT_EQ(policy.DelayFor(1).count(), 100);
  EXPECT_EQ(policy.DelayFor(2).count(), 200);
  EXPECT_EQ(policy.DelayFor(3).count(), 400);
  EXPECT_EQ(policy.DelayFor(4).count(), 800);
  EXPECT_EQ(policy.DelayFor(10).count(), 800);  // capped
  EXPECT_EQ(policy.DelayFor(0).count(), 0);
}

TEST(RetryPolicyTest, RetryWithBackoffCountsAttempts) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.base_delay = std::chrono::microseconds(0);  // deterministic

  int calls = 0;
  const RetryOutcome fail = fault::RetryWithBackoff(policy, [&] {
    ++calls;
    return false;
  });
  EXPECT_FALSE(fail.ok);
  EXPECT_EQ(fail.attempts, 4);
  EXPECT_EQ(calls, 4);

  calls = 0;
  const RetryOutcome recover = fault::RetryWithBackoff(policy, [&] {
    return ++calls == 3;  // succeeds on the third attempt
  });
  EXPECT_TRUE(recover.ok);
  EXPECT_EQ(recover.attempts, 3);
}

TEST(HealthTest, NamesAndSeverityOrdering) {
  EXPECT_STREQ(obs::HealthStateName(HealthState::kOk), "ok");
  EXPECT_STREQ(obs::HealthStateName(HealthState::kDegraded), "degraded");
  EXPECT_STREQ(obs::HealthStateName(HealthState::kReadOnly), "read-only");
  EXPECT_EQ(obs::WorseHealth(HealthState::kOk, HealthState::kDegraded),
            HealthState::kDegraded);
  EXPECT_EQ(obs::WorseHealth(HealthState::kReadOnly, HealthState::kDegraded),
            HealthState::kReadOnly);
  EXPECT_EQ(obs::WorseHealth(HealthState::kOk, HealthState::kOk),
            HealthState::kOk);
}

TEST(HealthTest, ExportHealthSetsTheGaugeFamily) {
  obs::MetricRegistry reg;
  obs::ExportHealth(reg, HealthState::kReadOnly);
  EXPECT_EQ(reg.GaugeValue("esd_health_state"), 2.0);
  EXPECT_EQ(reg.GaugeValue("esd_health_ok"), 0.0);
  EXPECT_EQ(reg.GaugeValue("esd_health_read_only"), 1.0);
  obs::ExportHealth(reg, HealthState::kOk);
  EXPECT_EQ(reg.GaugeValue("esd_health_state"), 0.0);
  EXPECT_EQ(reg.GaugeValue("esd_health_ok"), 1.0);
  EXPECT_EQ(reg.GaugeValue("esd_health_read_only"), 0.0);
}

TEST(WriteFullyTest, WritesEverythingAndReportsBytes) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("esd_write_fully_" + std::to_string(::getpid()) + ".bin"))
          .string();
  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  ASSERT_GE(fd, 0);
  const std::string payload(4096, 'x');
  const util::WriteResult wr =
      util::WriteFully(fd, payload.data(), payload.size());
  ::close(fd);
  EXPECT_TRUE(wr.ok);
  EXPECT_EQ(wr.bytes_written, payload.size());
  EXPECT_EQ(wr.error_code, 0);
  EXPECT_FALSE(wr.short_write);
  EXPECT_EQ(std::filesystem::file_size(path), payload.size());
  std::filesystem::remove(path);
}

TEST(WriteFullyTest, ShortWriteFailPointTearsForReal) {
  if (!fault::kFailPointsCompiledIn) {
    GTEST_SKIP() << "ESD_FAULT=OFF: injection sites compiled out";
  }
  auto& global = fault::FailPointRegistry::Global();
  global.ClearAll();
  std::string error;
  ASSERT_TRUE(global.Set("fault_test.short", "error", &error));

  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("esd_short_write_" + std::to_string(::getpid()) + ".bin"))
          .string();
  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  ASSERT_GE(fd, 0);
  const std::string payload(1000, 'y');
  const util::WriteResult wr =
      util::WriteFully(fd, payload.data(), payload.size(),
                       "fault_test.short");
  ::close(fd);
  global.ClearAll();

  EXPECT_FALSE(wr.ok);
  EXPECT_TRUE(wr.short_write);
  EXPECT_EQ(wr.bytes_written, payload.size() / 2);
  // The torn bytes genuinely landed on disk — that is what WAL tail
  // repair has to clean up.
  EXPECT_EQ(std::filesystem::file_size(path), payload.size() / 2);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace esd
