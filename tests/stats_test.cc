#include <vector>

#include <gtest/gtest.h>

#include "core/esd_index.h"
#include "core/index_builder.h"
#include "gen/barabasi_albert.h"
#include "gen/erdos_renyi.h"
#include "gen/watts_strogatz.h"
#include "graph/builder.h"
#include "graph/stats.h"
#include "util/thread_pool.h"

namespace esd::graph {
namespace {

Graph PathGraph(VertexId n) {
  GraphBuilder b(n);
  for (VertexId i = 0; i + 1 < n; ++i) b.AddEdge(i, i + 1);
  return b.Build();
}

TEST(StatsTest, DegreeHistogramCounts) {
  GraphBuilder b(5);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(0, 3);
  Graph g = b.Build();
  std::vector<uint64_t> hist = DegreeHistogram(g);
  ASSERT_EQ(hist.size(), 4u);
  EXPECT_EQ(hist[0], 1u);  // vertex 4
  EXPECT_EQ(hist[1], 3u);  // leaves
  EXPECT_EQ(hist[2], 0u);
  EXPECT_EQ(hist[3], 1u);  // hub
}

TEST(StatsTest, AssortativitySigns) {
  // Star graphs are maximally disassortative.
  GraphBuilder star(8);
  for (VertexId i = 1; i < 8; ++i) star.AddEdge(0, i);
  EXPECT_LT(DegreeAssortativity(star.Build()), -0.99);
  // Regular graphs have no degree variance -> 0 by convention.
  EXPECT_DOUBLE_EQ(DegreeAssortativity(gen::WattsStrogatz(50, 4, 0.0, 1)),
                   0.0);
  // BA graphs trend disassortative; ER near 0.
  EXPECT_LT(DegreeAssortativity(gen::BarabasiAlbert(2000, 3, 2)), 0.05);
  double er = DegreeAssortativity(gen::ErdosRenyiGnp(300, 0.1, 3));
  EXPECT_NEAR(er, 0.0, 0.15);
}

TEST(StatsTest, MeanDistanceOnPath) {
  // Exact mean over all ordered reachable pairs of a path of 5:
  // distances 1..4 weighted; sampling all sources gives the exact value.
  Graph g = PathGraph(5);
  double mean = EstimateMeanDistance(g, 200, 7);
  // True mean pairwise distance of P5 = 2.0.
  EXPECT_NEAR(mean, 2.0, 0.25);
  EXPECT_DOUBLE_EQ(EstimateMeanDistance(Graph(), 10, 1), 0.0);
}

TEST(StatsTest, SmallWorldDistancesShrinkWithRewiring) {
  double lattice = EstimateMeanDistance(gen::WattsStrogatz(400, 4, 0.0, 5),
                                        60, 5);
  double rewired = EstimateMeanDistance(gen::WattsStrogatz(400, 4, 0.2, 5),
                                        60, 5);
  EXPECT_LT(rewired, lattice * 0.6);  // the small-world effect
}

TEST(StatsTest, LargestComponentFraction) {
  Graph g = Graph::FromEdges(10, {{0, 1}, {1, 2}, {3, 4}});
  EXPECT_DOUBLE_EQ(LargestComponentFraction(g), 0.3);
  EXPECT_DOUBLE_EQ(LargestComponentFraction(Graph()), 0.0);
  EXPECT_GT(LargestComponentFraction(gen::BarabasiAlbert(100, 2, 1)), 0.99);
}

TEST(ConcurrencyTest, ParallelQueriesAreSafeAndConsistent) {
  // EsdIndex queries are const and safe to issue from many threads.
  Graph g = gen::ErdosRenyiGnp(60, 0.3, 11);
  core::EsdIndex index = core::BuildIndexClique(g);
  std::vector<std::vector<uint32_t>> expected(7);
  for (uint32_t tau = 1; tau <= 6; ++tau) {
    expected[tau] = core::Scores(index.Query(20, tau));
  }
  util::ThreadPool pool(4);
  std::atomic<int> mismatches{0};
  pool.ParallelFor(0, 600, 10, [&](uint64_t i) {
    uint32_t tau = 1 + static_cast<uint32_t>(i % 6);
    if (core::Scores(index.Query(20, tau)) != expected[tau]) ++mismatches;
  });
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace esd::graph
