#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <numeric>
#include <queue>
#include <set>
#include <thread>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "util/binary_heap.h"
#include "util/dsu.h"
#include "util/flat_map.h"
#include "util/rng.h"
#include "util/spinlock.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "util/treap.h"

namespace esd::util {
namespace {

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicBySeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBoundedInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.NextBounded(bound), bound);
  }
}

TEST(RngTest, NextBoundedCoversAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextBoundedRoughlyUniform) {
  Rng rng(13);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {0};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(19);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextInRange(-2, 3));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(RngTest, NextBoolExtremes) {
  Rng rng(23);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, NextBoolRate) {
  Rng rng(29);
  int hits = 0;
  for (int i = 0; i < 50000; ++i) hits += rng.NextBool(0.3);
  EXPECT_NEAR(hits, 15000, 700);
}

TEST(RngTest, SplitIndependentStreams) {
  Rng a(31);
  Rng b = a.Split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 2);
}

TEST(RngTest, Mix64Distinct) {
  std::set<uint64_t> out;
  for (uint64_t i = 0; i < 1000; ++i) out.insert(Mix64(i));
  EXPECT_EQ(out.size(), 1000u);
}

// ---------------------------------------------------------------------------
// Timer
// ---------------------------------------------------------------------------

TEST(TimerTest, MonotoneAndResettable) {
  Timer t;
  double a = t.ElapsedSeconds();
  double b = t.ElapsedSeconds();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
  t.Reset();
  EXPECT_LT(t.ElapsedSeconds(), 1.0);
}

TEST(TimerTest, UnitConversions) {
  Timer t;
  double s = t.ElapsedSeconds();
  EXPECT_GE(t.ElapsedMillis(), s * 1e3 * 0.5);
  EXPECT_GE(t.ElapsedMicros(), s * 1e6 * 0.5);
}

// ---------------------------------------------------------------------------
// FlatMap / FlatSet
// ---------------------------------------------------------------------------

TEST(FlatMapTest, InsertFindBasic) {
  FlatMap<uint32_t, int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.Find(5), nullptr);
  auto [p, inserted] = m.Insert(5, 50);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(*p, 50);
  EXPECT_EQ(m.size(), 1u);
  auto [p2, inserted2] = m.Insert(5, 99);
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(*p2, 50);
}

TEST(FlatMapTest, OperatorBracketDefaultConstructs) {
  FlatMap<uint32_t, int> m;
  EXPECT_EQ(m[7], 0);
  m[7] = 42;
  EXPECT_EQ(m[7], 42);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMapTest, EraseBasic) {
  FlatMap<uint32_t, int> m;
  m.Insert(1, 10);
  m.Insert(2, 20);
  EXPECT_TRUE(m.Erase(1));
  EXPECT_FALSE(m.Erase(1));
  EXPECT_EQ(m.Find(1), nullptr);
  ASSERT_NE(m.Find(2), nullptr);
  EXPECT_EQ(*m.Find(2), 20);
}

TEST(FlatMapTest, ClearKeepsWorking) {
  FlatMap<uint32_t, int> m;
  for (uint32_t i = 0; i < 100; ++i) m.Insert(i, static_cast<int>(i));
  m.Clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.Find(10), nullptr);
  m.Insert(10, 1);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMapTest, GrowthPreservesContents) {
  FlatMap<uint64_t, uint64_t> m;
  for (uint64_t i = 0; i < 5000; ++i) m.Insert(i * 7919, i);
  EXPECT_EQ(m.size(), 5000u);
  for (uint64_t i = 0; i < 5000; ++i) {
    auto* p = m.Find(i * 7919);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(*p, i);
  }
}

TEST(FlatMapTest, RandomizedAgainstStdMap) {
  Rng rng(101);
  FlatMap<uint32_t, uint32_t> m;
  std::unordered_map<uint32_t, uint32_t> ref;
  for (int step = 0; step < 20000; ++step) {
    uint32_t key = static_cast<uint32_t>(rng.NextBounded(500));
    switch (rng.NextBounded(3)) {
      case 0: {
        uint32_t val = static_cast<uint32_t>(rng.Next());
        bool inserted = m.Insert(key, val).second;
        bool ref_inserted = ref.emplace(key, val).second;
        EXPECT_EQ(inserted, ref_inserted);
        break;
      }
      case 1: {
        EXPECT_EQ(m.Erase(key), ref.erase(key) > 0);
        break;
      }
      default: {
        auto* p = m.Find(key);
        auto it = ref.find(key);
        if (it == ref.end()) {
          EXPECT_EQ(p, nullptr);
        } else {
          ASSERT_NE(p, nullptr);
          EXPECT_EQ(*p, it->second);
        }
      }
    }
    EXPECT_EQ(m.size(), ref.size());
  }
}

TEST(FlatMapTest, ForEachVisitsAll) {
  FlatMap<uint32_t, uint32_t> m;
  for (uint32_t i = 0; i < 100; ++i) m.Insert(i, i * 2);
  uint64_t key_sum = 0, val_sum = 0;
  m.ForEach([&](uint32_t k, uint32_t v) {
    key_sum += k;
    val_sum += v;
  });
  EXPECT_EQ(key_sum, 99u * 100 / 2);
  EXPECT_EQ(val_sum, 99u * 100);
}

TEST(FlatSetTest, BasicOps) {
  FlatSet<uint64_t> s;
  EXPECT_TRUE(s.Insert(10));
  EXPECT_FALSE(s.Insert(10));
  EXPECT_TRUE(s.Contains(10));
  EXPECT_FALSE(s.Contains(11));
  EXPECT_TRUE(s.Erase(10));
  EXPECT_FALSE(s.Erase(10));
  EXPECT_TRUE(s.empty());
}

// ---------------------------------------------------------------------------
// Dsu
// ---------------------------------------------------------------------------

TEST(DsuTest, SingletonsInitially) {
  Dsu d(5);
  EXPECT_EQ(d.NumComponents(), 5u);
  for (uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(d.Find(i), i);
    EXPECT_EQ(d.ComponentSize(i), 1u);
  }
}

TEST(DsuTest, UnionMergesAndCounts) {
  Dsu d(4);
  EXPECT_TRUE(d.Union(0, 1));
  EXPECT_FALSE(d.Union(1, 0));
  EXPECT_TRUE(d.Union(2, 3));
  EXPECT_EQ(d.NumComponents(), 2u);
  EXPECT_TRUE(d.Union(0, 3));
  EXPECT_EQ(d.NumComponents(), 1u);
  EXPECT_EQ(d.ComponentSize(2), 4u);
  EXPECT_TRUE(d.Same(0, 2));
}

TEST(DsuTest, RandomizedAgainstNaive) {
  Rng rng(55);
  constexpr uint32_t kN = 200;
  Dsu d(kN);
  std::vector<uint32_t> label(kN);
  std::iota(label.begin(), label.end(), 0);
  auto naive_union = [&label](uint32_t a, uint32_t b) {
    uint32_t la = label[a], lb = label[b];
    if (la == lb) return;
    for (auto& l : label) {
      if (l == lb) l = la;
    }
  };
  for (int i = 0; i < 500; ++i) {
    uint32_t a = static_cast<uint32_t>(rng.NextBounded(kN));
    uint32_t b = static_cast<uint32_t>(rng.NextBounded(kN));
    d.Union(a, b);
    naive_union(a, b);
    uint32_t x = static_cast<uint32_t>(rng.NextBounded(kN));
    uint32_t y = static_cast<uint32_t>(rng.NextBounded(kN));
    EXPECT_EQ(d.Same(x, y), label[x] == label[y]);
    EXPECT_EQ(d.ComponentSize(x),
              static_cast<uint32_t>(
                  std::count(label.begin(), label.end(), label[x])));
  }
}

// ---------------------------------------------------------------------------
// KeyedDsu
// ---------------------------------------------------------------------------

TEST(KeyedDsuTest, AddFindUnion) {
  KeyedDsu d;
  EXPECT_TRUE(d.AddMember(100));
  EXPECT_TRUE(d.AddMember(7));
  EXPECT_FALSE(d.AddMember(100));
  EXPECT_EQ(d.NumMembers(), 2u);
  EXPECT_EQ(d.NumComponents(), 2u);
  EXPECT_TRUE(d.Union(100, 7));
  EXPECT_FALSE(d.Union(7, 100));
  EXPECT_EQ(d.NumComponents(), 1u);
  EXPECT_EQ(d.ComponentSize(7), 2u);
  EXPECT_TRUE(d.Same(100, 7));
}

TEST(KeyedDsuTest, ComponentSizesSorted) {
  KeyedDsu d;
  for (uint32_t v : {1u, 2u, 3u, 4u, 5u, 6u}) d.AddMember(v);
  d.Union(1, 2);
  d.Union(2, 3);
  d.Union(4, 5);
  std::vector<uint32_t> sizes = d.ComponentSizes();
  EXPECT_EQ(sizes, (std::vector<uint32_t>{1, 2, 3}));
}

TEST(KeyedDsuTest, RemoveSingletonRules) {
  KeyedDsu d;
  d.AddMember(1);
  d.AddMember(2);
  d.Union(1, 2);
  EXPECT_FALSE(d.RemoveSingleton(1));  // in a size-2 component
  EXPECT_FALSE(d.RemoveSingleton(99));  // not a member
  d.AddMember(3);
  EXPECT_TRUE(d.RemoveSingleton(3));
  EXPECT_FALSE(d.Contains(3));
  EXPECT_EQ(d.NumMembers(), 2u);
}

TEST(KeyedDsuTest, ComponentMembersAndRemoveComponent) {
  KeyedDsu d;
  for (uint32_t v : {10u, 20u, 30u, 40u}) d.AddMember(v);
  d.Union(10, 20);
  d.Union(20, 30);
  std::vector<uint32_t> members = d.ComponentMembers(30);
  std::sort(members.begin(), members.end());
  EXPECT_EQ(members, (std::vector<uint32_t>{10, 20, 30}));
  d.RemoveComponent(10);
  EXPECT_FALSE(d.Contains(10));
  EXPECT_FALSE(d.Contains(20));
  EXPECT_FALSE(d.Contains(30));
  EXPECT_TRUE(d.Contains(40));
  EXPECT_EQ(d.NumComponents(), 1u);
  EXPECT_EQ(d.NumMembers(), 1u);
}

TEST(KeyedDsuTest, ResurrectAfterRemove) {
  KeyedDsu d;
  d.AddMember(5);
  EXPECT_TRUE(d.RemoveSingleton(5));
  EXPECT_TRUE(d.AddMember(5));
  EXPECT_TRUE(d.Contains(5));
  EXPECT_EQ(d.ComponentSize(5), 1u);
}

TEST(KeyedDsuTest, RandomizedUnionsMatchDsu) {
  Rng rng(77);
  constexpr uint32_t kN = 150;
  KeyedDsu keyed;
  Dsu flat(kN);
  // Keys are sparse: vertex i maps to i * 1000003.
  auto key = [](uint32_t i) { return i * 1000003u; };
  for (uint32_t i = 0; i < kN; ++i) keyed.AddMember(key(i));
  for (int step = 0; step < 400; ++step) {
    uint32_t a = static_cast<uint32_t>(rng.NextBounded(kN));
    uint32_t b = static_cast<uint32_t>(rng.NextBounded(kN));
    EXPECT_EQ(keyed.Union(key(a), key(b)), flat.Union(a, b));
    EXPECT_EQ(keyed.NumComponents(), flat.NumComponents());
    uint32_t x = static_cast<uint32_t>(rng.NextBounded(kN));
    EXPECT_EQ(keyed.ComponentSize(key(x)), flat.ComponentSize(x));
  }
}

// ---------------------------------------------------------------------------
// Treap
// ---------------------------------------------------------------------------

TEST(TreapTest, InsertEraseContains) {
  Treap<int> t;
  EXPECT_TRUE(t.Insert(3));
  EXPECT_TRUE(t.Insert(1));
  EXPECT_TRUE(t.Insert(2));
  EXPECT_FALSE(t.Insert(2));
  EXPECT_EQ(t.size(), 3u);
  EXPECT_TRUE(t.Contains(2));
  EXPECT_TRUE(t.Erase(2));
  EXPECT_FALSE(t.Erase(2));
  EXPECT_FALSE(t.Contains(2));
  EXPECT_EQ(t.size(), 2u);
}

TEST(TreapTest, KthAndRank) {
  Treap<int> t;
  for (int x : {50, 10, 30, 20, 40}) t.Insert(x);
  for (size_t i = 0; i < 5; ++i) {
    ASSERT_NE(t.Kth(i), nullptr);
    EXPECT_EQ(*t.Kth(i), static_cast<int>((i + 1) * 10));
  }
  EXPECT_EQ(t.Kth(5), nullptr);
  EXPECT_EQ(t.Rank(10), 0u);
  EXPECT_EQ(t.Rank(35), 3u);
  EXPECT_EQ(t.Rank(100), 5u);
}

TEST(TreapTest, InOrderTraversalSorted) {
  Treap<int> t;
  Rng rng(5);
  std::set<int> ref;
  for (int i = 0; i < 500; ++i) {
    int x = static_cast<int>(rng.NextBounded(10000));
    t.Insert(x);
    ref.insert(x);
  }
  std::vector<int> got;
  t.ForEachInOrder([&](int x) {
    got.push_back(x);
    return true;
  });
  EXPECT_TRUE(std::equal(got.begin(), got.end(), ref.begin(), ref.end()));
}

TEST(TreapTest, TopKStopsEarly) {
  Treap<int> t;
  for (int i = 0; i < 100; ++i) t.Insert(i);
  std::vector<int> top = t.TopK(5);
  EXPECT_EQ(top, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(t.TopK(1000).size(), 100u);
  EXPECT_TRUE(t.TopK(0).empty());
}

TEST(TreapTest, BuildFromSortedMatchesInserts) {
  std::vector<int> keys(1000);
  std::iota(keys.begin(), keys.end(), 0);
  Treap<int> bulk;
  bulk.BuildFromSorted(keys);
  EXPECT_EQ(bulk.size(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_NE(bulk.Kth(i), nullptr);
    EXPECT_EQ(*bulk.Kth(i), keys[i]);
  }
  // Mutations after bulk build behave.
  EXPECT_TRUE(bulk.Erase(500));
  EXPECT_TRUE(bulk.Insert(500));
  EXPECT_TRUE(bulk.Contains(500));
}

TEST(TreapTest, CopyIsIndependent) {
  Treap<int> a;
  for (int i = 0; i < 50; ++i) a.Insert(i);
  Treap<int> b = a;  // clone, as used by index maintenance
  b.Erase(10);
  b.Insert(1000);
  EXPECT_TRUE(a.Contains(10));
  EXPECT_FALSE(a.Contains(1000));
  EXPECT_EQ(a.size(), 50u);
  EXPECT_EQ(b.size(), 50u);
}

TEST(TreapTest, RandomizedAgainstStdSet) {
  Rng rng(999);
  Treap<uint32_t> t;
  std::set<uint32_t> ref;
  for (int step = 0; step < 20000; ++step) {
    uint32_t x = static_cast<uint32_t>(rng.NextBounded(300));
    switch (rng.NextBounded(4)) {
      case 0:
        EXPECT_EQ(t.Insert(x), ref.insert(x).second);
        break;
      case 1:
        EXPECT_EQ(t.Erase(x), ref.erase(x) > 0);
        break;
      case 2:
        EXPECT_EQ(t.Contains(x), ref.count(x) > 0);
        break;
      default: {
        size_t i = rng.NextBounded(ref.size() + 1);
        const uint32_t* kth = t.Kth(i);
        if (i >= ref.size()) {
          EXPECT_EQ(kth, nullptr);
        } else {
          ASSERT_NE(kth, nullptr);
          EXPECT_EQ(*kth, *std::next(ref.begin(), static_cast<long>(i)));
        }
      }
    }
    EXPECT_EQ(t.size(), ref.size());
  }
}

struct ScoreKey {
  uint32_t score;
  uint32_t edge;
};
struct ScoreKeyLess {
  bool operator()(const ScoreKey& a, const ScoreKey& b) const {
    if (a.score != b.score) return a.score > b.score;
    return a.edge < b.edge;
  }
};

TEST(TreapTest, CustomComparatorDescendingScore) {
  Treap<ScoreKey, ScoreKeyLess> t;
  t.Insert({5, 1});
  t.Insert({7, 2});
  t.Insert({5, 0});
  std::vector<uint32_t> edges;
  t.ForEachInOrder([&](const ScoreKey& k) {
    edges.push_back(k.edge);
    return true;
  });
  EXPECT_EQ(edges, (std::vector<uint32_t>{2, 0, 1}));
}

// ---------------------------------------------------------------------------
// BinaryHeap
// ---------------------------------------------------------------------------

TEST(BinaryHeapTest, PopsInPriorityOrder) {
  BinaryHeap<int> h;
  h.Push(1, 10);
  h.Push(2, 30);
  h.Push(3, 20);
  EXPECT_EQ(h.Pop().value, 2);
  EXPECT_EQ(h.Pop().value, 3);
  EXPECT_EQ(h.Pop().value, 1);
  EXPECT_TRUE(h.empty());
}

TEST(BinaryHeapTest, TopDoesNotPop) {
  BinaryHeap<int> h;
  h.Push(5, 1);
  EXPECT_EQ(h.Top().value, 5);
  EXPECT_EQ(h.size(), 1u);
}

TEST(BinaryHeapTest, RandomizedAgainstStdPriorityQueue) {
  Rng rng(404);
  BinaryHeap<uint64_t, int64_t> h;
  std::priority_queue<std::pair<int64_t, uint64_t>> ref;
  for (int step = 0; step < 20000; ++step) {
    if (ref.empty() || rng.NextBool(0.55)) {
      int64_t prio = static_cast<int64_t>(rng.NextBounded(1000));
      uint64_t val = rng.Next();
      h.Push(val, prio);
      ref.emplace(prio, val);
    } else {
      auto entry = h.Pop();
      // Priorities must match; values may differ on ties.
      EXPECT_EQ(entry.priority, ref.top().first);
      ref.pop();
    }
    EXPECT_EQ(h.size(), ref.size());
  }
}

// ---------------------------------------------------------------------------
// ThreadPool / SpinLock
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, ParallelForCoversRangeOnce) {
  for (unsigned threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(1000);
    pool.ParallelFor(0, hits.size(), 7, [&](uint64_t i) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, EmptyRangeIsNoop) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(5, 5, 1, [&](uint64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, ReusableAcrossJobs) {
  ThreadPool pool(3);
  std::atomic<uint64_t> sum{0};
  for (int round = 0; round < 10; ++round) {
    pool.ParallelFor(0, 100, 3, [&](uint64_t i) { sum += i; });
  }
  EXPECT_EQ(sum.load(), 10u * (99 * 100 / 2));
}

TEST(ThreadPoolTest, ChunkedSeesWholeRange) {
  ThreadPool pool(4);
  std::atomic<uint64_t> total{0};
  pool.ParallelForChunked(10, 1010, 64, [&](uint64_t lo, uint64_t hi) {
    total += hi - lo;
  });
  EXPECT_EQ(total.load(), 1000u);
}

TEST(SpinLockTest, MutualExclusionUnderContention) {
  ThreadPool pool(4);
  SpinLock lock;
  int64_t counter = 0;  // deliberately non-atomic; protected by the lock
  pool.ParallelFor(0, 20000, 16, [&](uint64_t) {
    SpinLockGuard guard(lock);
    ++counter;
  });
  EXPECT_EQ(counter, 20000);
}

TEST(StripedLocksTest, PowerOfTwoStripesAndStableMapping) {
  StripedLocks locks(100);
  EXPECT_EQ(locks.num_stripes(), 128u);
  EXPECT_EQ(&locks.ForKey(42), &locks.ForKey(42));
}

TEST(ThreadPoolPostTest, TasksRunAndDrainBeforeDestruction) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 200; ++i) {
      pool.Post([&ran] { ran.fetch_add(1); });
    }
  }  // destructor drains everything still queued
  EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPoolPostTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  bool ran = false;
  pool.Post([&ran] { ran = true; });
  EXPECT_TRUE(ran);  // no worker exists; Post must have run it inline
}

TEST(ThreadPoolPostTest, PostedTasksInterleaveWithParallelFor) {
  ThreadPool pool(4);
  std::atomic<int> tasks{0};
  std::atomic<uint64_t> sum{0};
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 5; ++i) {
      pool.Post([&tasks] { tasks.fetch_add(1); });
    }
    pool.ParallelFor(0, 1000, 16, [&sum](uint64_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
  }
  // ParallelFor must still cover every index despite competing tasks.
  EXPECT_EQ(sum.load(), 20ull * (999ull * 1000ull / 2));
  // Give queued tasks their guaranteed drain point: the destructor.
  // (Checked implicitly; here we just wait for the count.)
  while (tasks.load() < 100) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(tasks.load(), 100);
}

}  // namespace
}  // namespace esd::util
