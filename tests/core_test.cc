#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/ego_network.h"
#include "core/esd_index.h"
#include "core/index_builder.h"
#include "core/naive_topk.h"
#include "core/online_topk.h"
#include "core/parallel_builder.h"
#include "gen/collaboration.h"
#include "gen/erdos_renyi.h"
#include "gen/holme_kim.h"
#include "gen/watts_strogatz.h"
#include "graph/builder.h"
#include "graph/graph.h"
#include "tests/test_helpers.h"
#include "util/rng.h"

namespace esd::core {
namespace {

using graph::Edge;
using graph::EdgeId;
using graph::Graph;
using graph::GraphBuilder;
using graph::VertexId;

// Reconstruction of the locally-determined parts of the paper's running
// example (Fig. 1(a)). Vertex ids:
//   a=0 b=1 c=2 d=3 e=4 f=5 g=6 h=7 i=8 j=9 k=10 u=11 v=12 p=13 q=14 w=15
// The construction satisfies Examples 1 and 2 ((f,g)'s ego-network is
// {d,e,h,i} with components {d,e} and {h,i}) and the tau=5 part of
// Example 3 / Fig. 2(d) (H(5) = {(u,p),(u,q),(p,q)} with score 1, realized
// by the 6-clique {j,k,u,v,p,q} plus w adjacent to u, p, q).
constexpr VertexId A = 0, B = 1, C = 2, D = 3, E = 4, F = 5, G = 6, H = 7,
                   I = 8, J = 9, K = 10, U = 11, V = 12, P = 13, Q = 14,
                   W = 15;

Graph PaperGraph() {
  GraphBuilder b(16);
  // Left region (a..g).
  for (auto [x, y] : std::vector<std::pair<VertexId, VertexId>>{
           {A, B}, {A, C}, {B, C}, {B, D}, {B, E}, {C, E}, {C, G}, {D, E}}) {
    b.AddEdge(x, y);
  }
  // f and g adjacent to d, e, h, i; edge (f,g); edge (h,i).
  for (VertexId x : {D, E, H, I}) {
    b.AddEdge(F, x);
    b.AddEdge(G, x);
  }
  b.AddEdge(F, G);
  b.AddEdge(H, I);
  // 6-clique {j,k,u,v,p,q}.
  std::vector<VertexId> clique{J, K, U, V, P, Q};
  for (size_t i = 0; i < clique.size(); ++i) {
    for (size_t j = i + 1; j < clique.size(); ++j) {
      b.AddEdge(clique[i], clique[j]);
    }
  }
  // w adjacent to u, p, q.
  b.AddEdge(W, U);
  b.AddEdge(W, P);
  b.AddEdge(W, Q);
  return b.Build();
}

// ---------------------------------------------------------------------------
// Ego network / scores (Definitions 1-2)
// ---------------------------------------------------------------------------

TEST(EgoNetworkTest, PaperExample1And2) {
  Graph g = PaperGraph();
  // N(fg) = {d, e, h, i} with components {d,e} and {h,i}.
  std::vector<VertexId> common = graph::CommonNeighbors(g, F, G);
  EXPECT_EQ(common, (std::vector<VertexId>{D, E, H, I}));
  std::vector<uint32_t> sizes = EgoComponentSizes(g, F, G);
  EXPECT_EQ(sizes, (std::vector<uint32_t>{2, 2}));
  EXPECT_EQ(EdgeScore(g, F, G, 1), 2u);
  EXPECT_EQ(EdgeScore(g, F, G, 2), 2u);
  EXPECT_EQ(EdgeScore(g, F, G, 3), 0u);
}

TEST(EgoNetworkTest, PaperExample3Tau5) {
  Graph g = PaperGraph();
  // Only (u,p), (u,q), (p,q) have a component of size >= 5.
  for (auto [x, y] : {std::pair{U, P}, {U, Q}, {P, Q}}) {
    EXPECT_EQ(EdgeScore(g, x, y, 5), 1u);
  }
  EXPECT_EQ(EdgeScore(g, J, K, 5), 0u);   // component {u,v,p,q} has size 4
  EXPECT_EQ(EdgeScore(g, J, K, 4), 1u);
  EXPECT_EQ(EdgeScore(g, Q, W, 2), 1u);   // component {u,p}
}

TEST(EgoNetworkTest, DynamicGraphOverloadMatches) {
  Graph g = PaperGraph();
  graph::DynamicGraph d(g);
  for (const Edge& e : g.Edges()) {
    EXPECT_EQ(EgoComponentSizes(g, e.u, e.v), EgoComponentSizes(d, e.u, e.v));
  }
}

TEST(EgoNetworkTest, FastVariantMatchesPlainBfs) {
  for (uint64_t seed : {3ull, 4ull, 5ull}) {
    Graph g = gen::ErdosRenyiGnp(50, 0.25, seed);
    for (const Edge& e : g.Edges()) {
      EXPECT_EQ(EgoComponentSizes(g, e.u, e.v),
                EgoComponentSizesFast(g, e.u, e.v));
    }
  }
}

TEST(EgoNetworkTest, NoCommonNeighborsEmpty) {
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  Graph g = b.Build();
  EXPECT_TRUE(EgoComponentSizes(g, 0, 1).empty());
  EXPECT_EQ(EdgeScore(g, 0, 1, 1), 0u);
}

TEST(EgoNetworkTest, ScoreFromSizes) {
  std::vector<uint32_t> sizes{1, 1, 2, 4, 4, 7};
  EXPECT_EQ(ScoreFromSizes(sizes, 1), 6u);
  EXPECT_EQ(ScoreFromSizes(sizes, 2), 4u);
  EXPECT_EQ(ScoreFromSizes(sizes, 3), 3u);
  EXPECT_EQ(ScoreFromSizes(sizes, 4), 3u);
  EXPECT_EQ(ScoreFromSizes(sizes, 5), 1u);
  EXPECT_EQ(ScoreFromSizes(sizes, 8), 0u);
  EXPECT_EQ(ScoreFromSizes({}, 1), 0u);
}

TEST(EgoNetworkTest, EgoComponentsMembersMatchSizes) {
  for (uint64_t seed : {61ull, 62ull}) {
    Graph g = gen::ErdosRenyiGnp(40, 0.3, seed);
    for (const Edge& e : g.Edges()) {
      auto components = EgoComponents(g, e.u, e.v);
      std::vector<uint32_t> sizes;
      for (const auto& members : components) {
        sizes.push_back(static_cast<uint32_t>(members.size()));
        // Members are common neighbors and internally connected (every
        // member has an in-component neighbor unless the component is a
        // singleton).
        for (VertexId w : members) {
          EXPECT_TRUE(g.HasEdge(e.u, w));
          EXPECT_TRUE(g.HasEdge(e.v, w));
        }
        if (members.size() > 1) {
          for (VertexId w : members) {
            bool linked = false;
            for (VertexId x : members) linked |= x != w && g.HasEdge(w, x);
            EXPECT_TRUE(linked);
          }
        }
      }
      EXPECT_TRUE(std::is_sorted(sizes.begin(), sizes.end()));
      EXPECT_EQ(sizes, EgoComponentSizes(g, e.u, e.v));
    }
  }
}

TEST(EgoNetworkTest, EgoComponentsOnPaperEdgeFG) {
  Graph g = PaperGraph();
  auto components = EgoComponents(g, F, G);
  ASSERT_EQ(components.size(), 2u);
  EXPECT_EQ(components[0], (std::vector<VertexId>{D, E}));
  EXPECT_EQ(components[1], (std::vector<VertexId>{H, I}));
}

TEST(EgoNetworkTest, CliqueEgoIsOneComponent) {
  GraphBuilder b(8);
  for (VertexId i = 0; i < 8; ++i) {
    for (VertexId j = i + 1; j < 8; ++j) b.AddEdge(i, j);
  }
  Graph g = b.Build();
  // In K8, every edge's ego-network is K6: one component of size 6.
  for (const Edge& e : g.Edges()) {
    EXPECT_EQ(EgoComponentSizes(g, e.u, e.v), (std::vector<uint32_t>{6}));
  }
}

// ---------------------------------------------------------------------------
// Naive top-k
// ---------------------------------------------------------------------------

TEST(NaiveTopKTest, PaperExample3Tau2) {
  Graph g = PaperGraph();
  TopKResult r = NaiveTopK(g, 3, 2);
  ASSERT_EQ(r.size(), 3u);
  // The fully-specified facts: (f,g) and (h,i)... our reconstruction pins
  // down (f,g); all three top scores are >= the paper's score 2.
  EXPECT_GE(r[0].score, 2u);
  EXPECT_TRUE(std::is_sorted(r.begin(), r.end(),
                             [](const ScoredEdge& a, const ScoredEdge& b) {
                               return a.score > b.score;
                             }));
}

TEST(NaiveTopKTest, KLargerThanM) {
  Graph g = PaperGraph();
  TopKResult r = NaiveTopK(g, 10000, 2);
  EXPECT_EQ(r.size(), g.NumEdges());
}

TEST(NaiveTopKTest, AllScoresIndexedByEdgeId) {
  Graph g = PaperGraph();
  std::vector<uint32_t> scores = AllEdgeScores(g, 2);
  ASSERT_EQ(scores.size(), g.NumEdges());
  EdgeId fg = g.FindEdge(F, G);
  EXPECT_EQ(scores[fg], 2u);
}

// ---------------------------------------------------------------------------
// Online top-k (Algorithm 1)
// ---------------------------------------------------------------------------

class OnlineVsNaiveTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>> {};

TEST_P(OnlineVsNaiveTest, ScoresMatchOnRandomGraphs) {
  auto [k, tau] = GetParam();
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    Graph g = gen::ErdosRenyiGnp(40, 0.25, seed);
    std::vector<uint32_t> want = test::NaiveTopScores(g, k, tau);
    for (UpperBoundRule rule :
         {UpperBoundRule::kMinDegree, UpperBoundRule::kCommonNeighbor}) {
      TopKResult got = OnlineTopK(g, k, tau, rule);
      EXPECT_EQ(Scores(got), want)
          << "k=" << k << " tau=" << tau << " seed=" << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OnlineVsNaiveTest,
    ::testing::Combine(::testing::Values(1u, 3u, 10u, 50u, 1000u),
                       ::testing::Values(1u, 2u, 3u, 5u)));

TEST(OnlineTopKTest, ScoresAreActuallyCorrectPerEdge) {
  Graph g = gen::HolmeKim(150, 5, 0.5, 7);
  TopKResult r = OnlineTopK(g, 20, 2, UpperBoundRule::kCommonNeighbor);
  for (const ScoredEdge& se : r) {
    EXPECT_EQ(se.score, EdgeScore(g, se.edge.u, se.edge.v, 2));
  }
}

TEST(OnlineTopKTest, EmptyAndDegenerateInputs) {
  Graph empty;
  EXPECT_TRUE(OnlineTopK(empty, 5, 2, UpperBoundRule::kMinDegree).empty());
  Graph g = PaperGraph();
  EXPECT_TRUE(OnlineTopK(g, 0, 2, UpperBoundRule::kMinDegree).empty());
  EXPECT_TRUE(OnlineTopK(g, 5, 0, UpperBoundRule::kMinDegree).empty());
}

TEST(OnlineTopKTest, CommonNeighborBoundPrunesAtLeastAsWell) {
  Graph g = gen::HolmeKim(300, 6, 0.5, 9);
  OnlineStats md, cn;
  OnlineTopK(g, 10, 2, UpperBoundRule::kMinDegree, &md);
  OnlineTopK(g, 10, 2, UpperBoundRule::kCommonNeighbor, &cn);
  EXPECT_LE(cn.exact_computations, md.exact_computations);
  EXPECT_GT(md.exact_computations, 0u);
}

TEST(OnlineTopKTest, StatsCountExactComputations) {
  Graph g = PaperGraph();
  OnlineStats stats;
  OnlineTopK(g, 1, 2, UpperBoundRule::kCommonNeighbor, &stats);
  EXPECT_GE(stats.exact_computations, 1u);
  EXPECT_LE(stats.exact_computations, g.NumEdges());
  EXPECT_EQ(stats.heap_pops, stats.exact_computations + 1);
}

TEST(OnlineTopKTest, LargeTauGivesZeroScores) {
  Graph g = PaperGraph();
  TopKResult r = OnlineTopK(g, 4, 100, UpperBoundRule::kCommonNeighbor);
  ASSERT_EQ(r.size(), 4u);
  for (const ScoredEdge& se : r) EXPECT_EQ(se.score, 0u);
}

// ---------------------------------------------------------------------------
// EsdIndex structure (Section IV-A/B)
// ---------------------------------------------------------------------------

TEST(EsdIndexTest, PaperExampleDistinctSizesAndH5) {
  Graph g = PaperGraph();
  EsdIndex index = BuildIndexBasic(g);
  std::vector<uint32_t> c = index.DistinctSizes();
  // Our reconstruction realizes at least the paper's sizes {1, 2, 4, 5}.
  for (uint32_t want : {1u, 2u, 4u, 5u}) {
    EXPECT_TRUE(std::find(c.begin(), c.end(), want) != c.end()) << want;
  }
  // H(5) = {(u,p), (u,q), (p,q)} each with score 1 (Fig. 2(d)).
  TopKResult top = index.Query(3, 5, /*pad_with_zero_edges=*/false);
  ASSERT_EQ(top.size(), 3u);
  std::set<Edge> got;
  for (const ScoredEdge& se : top) {
    EXPECT_EQ(se.score, 1u);
    got.insert(se.edge);
  }
  std::set<Edge> want{graph::MakeEdge(U, P), graph::MakeEdge(U, Q),
                      graph::MakeEdge(P, Q)};
  EXPECT_EQ(got, want);
  // Queries beyond the largest size return no positive-score edges.
  EXPECT_TRUE(index.Query(3, 6, false).empty());
}

TEST(EsdIndexTest, QueryMatchesNaiveOnParamSweep) {
  for (uint64_t seed : {11ull, 12ull}) {
    Graph g = gen::ErdosRenyiGnp(35, 0.3, seed);
    EsdIndex index = BuildIndexBasic(g);
    for (uint32_t tau = 1; tau <= 7; ++tau) {
      for (uint32_t k : {1u, 2u, 5u, 20u, 10000u}) {
        EXPECT_EQ(Scores(index.Query(k, tau)),
                  test::NaiveTopScores(g, k, tau))
            << "seed=" << seed << " tau=" << tau << " k=" << k;
      }
    }
  }
}

TEST(EsdIndexTest, QueryPaddingBehavior) {
  Graph g = PaperGraph();
  EsdIndex index = BuildIndexBasic(g);
  // tau=5: only 3 edges have positive score.
  TopKResult padded = index.Query(10, 5, true);
  EXPECT_EQ(padded.size(), 10u);
  EXPECT_EQ(padded[3].score, 0u);
  TopKResult unpadded = index.Query(10, 5, false);
  EXPECT_EQ(unpadded.size(), 3u);
  // k or tau of zero -> empty.
  EXPECT_TRUE(index.Query(0, 2).empty());
  EXPECT_TRUE(index.Query(3, 0).empty());
}

TEST(EsdIndexTest, InvariantHoldsAfterBulkLoad) {
  Graph g = gen::HolmeKim(120, 5, 0.4, 13);
  EsdIndex index = BuildIndexBasic(g);
  std::vector<EdgeId> ids(g.NumEdges());
  std::iota(ids.begin(), ids.end(), 0);
  test::ExpectIndexInvariant(index, ids, [&index](EdgeId e) -> const auto& {
    return index.EdgeSizes(e);
  });
}

TEST(EsdIndexTest, ScoreOfMatchesDefinition) {
  Graph g = PaperGraph();
  EsdIndex index = BuildIndexBasic(g);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const Edge& uv = g.EdgeAt(e);
    for (uint32_t tau = 1; tau <= 6; ++tau) {
      EXPECT_EQ(index.ScoreOf(e, tau), EdgeScore(g, uv.u, uv.v, tau));
    }
  }
}

TEST(EsdIndexTest, SetEdgeSizesMovesEntriesAcrossLists) {
  EsdIndex index;
  EdgeId e0 = index.RegisterEdge({0, 1});
  EdgeId e1 = index.RegisterEdge({0, 2});
  index.SetEdgeSizes(e0, {1, 3});
  index.SetEdgeSizes(e1, {3, 3});
  EXPECT_EQ(index.DistinctSizes(), (std::vector<uint32_t>{1, 3}));
  // H(1): e0 score 2, e1 score 2. H(3): e0 score 1, e1 score 2.
  EXPECT_EQ(index.Query(1, 3, false)[0].score, 2u);
  // Shrink e1: drops out of H(3)... and size 3 still owned by e0.
  index.SetEdgeSizes(e1, {2});
  EXPECT_EQ(index.DistinctSizes(), (std::vector<uint32_t>{1, 2, 3}));
  TopKResult top3 = index.Query(5, 3, false);
  ASSERT_EQ(top3.size(), 1u);
  EXPECT_EQ(top3[0].score, 1u);
  // Clear e0: sizes 1 and 3 disappear entirely, leaving e1's single entry
  // in H(2).
  index.SetEdgeSizes(e0, {});
  EXPECT_EQ(index.DistinctSizes(), (std::vector<uint32_t>{2}));
  EXPECT_EQ(index.NumEntries(), 1u);
}

TEST(EsdIndexTest, NewSizeClonesNextLargerList) {
  EsdIndex index;
  EdgeId e0 = index.RegisterEdge({0, 1});
  EdgeId e1 = index.RegisterEdge({0, 2});
  index.SetEdgeSizes(e0, {5});
  index.SetEdgeSizes(e1, {7});
  // Introduce size 6 on e0: H(6) must contain e1 (max 7 >= 6) too.
  index.SetEdgeSizes(e0, {6});
  TopKResult r = index.Query(10, 6, false);
  EXPECT_EQ(r.size(), 2u);
  // And a size below everything.
  index.SetEdgeSizes(e1, {2, 7});
  r = index.Query(10, 2, false);
  EXPECT_EQ(r.size(), 2u);
  r = index.Query(10, 7, false);
  EXPECT_EQ(r.size(), 1u);
}

TEST(EsdIndexTest, RegisterUnregisterReusesIds) {
  EsdIndex index;
  EdgeId a = index.RegisterEdge({0, 1});
  index.SetEdgeSizes(a, {2});
  index.SetEdgeSizes(a, {});
  index.UnregisterEdge(a);
  EXPECT_EQ(index.NumRegisteredEdges(), 0u);
  EdgeId b = index.RegisterEdge({5, 9});
  EXPECT_EQ(a, b);  // id reuse
  EXPECT_EQ(index.EdgeAt(b), graph::MakeEdge(5, 9));
  EXPECT_TRUE(index.EdgeSizes(b).empty());
}

TEST(EsdIndexTest, RandomizedSetEdgeSizesKeepsInvariant) {
  util::Rng rng(271);
  EsdIndex index;
  constexpr int kEdges = 30;
  std::vector<EdgeId> ids;
  for (int i = 0; i < kEdges; ++i) {
    ids.push_back(index.RegisterEdge(
        graph::MakeEdge(static_cast<VertexId>(i), static_cast<VertexId>(100 + i))));
  }
  std::vector<std::vector<uint32_t>> ref(kEdges);
  for (int step = 0; step < 400; ++step) {
    EdgeId e = ids[rng.NextBounded(kEdges)];
    std::vector<uint32_t> sizes;
    size_t len = rng.NextBounded(5);
    for (size_t i = 0; i < len; ++i) {
      sizes.push_back(1 + static_cast<uint32_t>(rng.NextBounded(9)));
    }
    std::sort(sizes.begin(), sizes.end());
    index.SetEdgeSizes(e, sizes);
    ref[e] = sizes;
    if (step % 20 == 0) {
      test::ExpectIndexInvariant(index, ids, [&ref](EdgeId id) -> const auto& {
        return ref[id];
      });
    }
  }
  test::ExpectIndexInvariant(
      index, ids, [&ref](EdgeId id) -> const auto& { return ref[id]; });
}

// ---------------------------------------------------------------------------
// Index builders (Algorithms 2, 3, and the parallel variant)
// ---------------------------------------------------------------------------

class BuilderEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BuilderEquivalenceTest, AllBuildersProduceIdenticalIndexes) {
  uint64_t seed = GetParam();
  Graph g = gen::ErdosRenyiGnp(45, 0.25, seed);
  EsdIndex basic = BuildIndexBasic(g);
  EsdIndex fast = BuildIndexBasicFast(g);
  EsdIndex clique = BuildIndexClique(g);
  EsdIndex par1 = BuildIndexParallel(g, 1);
  EsdIndex par4 = BuildIndexParallel(g, 4);
  test::ExpectIndexesEqual(basic, fast);
  test::ExpectIndexesEqual(basic, clique);
  test::ExpectIndexesEqual(basic, par1);
  test::ExpectIndexesEqual(basic, par4);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BuilderEquivalenceTest,
                         ::testing::Values(101, 102, 103, 104, 105));

TEST(BuilderTest, VertexParallelModeMatchesEdgeParallel) {
  for (uint64_t seed : {301ull, 302ull}) {
    Graph g = gen::ErdosRenyiGnp(50, 0.3, seed);
    EsdIndex edge_par = BuildIndexParallel(g, 4, nullptr,
                                           ParallelMode::kEdgeParallel);
    EsdIndex vertex_par = BuildIndexParallel(g, 4, nullptr,
                                             ParallelMode::kVertexParallel);
    test::ExpectIndexesEqual(edge_par, vertex_par);
    test::ExpectIndexesEqual(edge_par, BuildIndexBasic(g));
  }
}

TEST(BuilderTest, CliqueBuilderOnStructuredGraphs) {
  for (Graph g : {PaperGraph(), gen::WattsStrogatz(80, 6, 0.2, 5),
                  gen::HolmeKim(100, 4, 0.6, 6)}) {
    test::ExpectIndexesEqual(BuildIndexBasic(g), BuildIndexClique(g));
  }
}

TEST(BuilderTest, CliqueBuilderExportsDsu) {
  Graph g = PaperGraph();
  std::vector<util::KeyedDsu> dsu;
  EsdIndex index = BuildIndexClique(g, &dsu);
  ASSERT_EQ(dsu.size(), g.NumEdges());
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const Edge& uv = g.EdgeAt(e);
    EXPECT_EQ(dsu[e].ComponentSizes(), EgoComponentSizes(g, uv.u, uv.v));
  }
}

TEST(BuilderTest, EmptyAndTriangleFreeGraphs) {
  Graph empty;
  EXPECT_EQ(BuildIndexBasic(empty).NumLists(), 0u);
  EXPECT_EQ(BuildIndexClique(empty).NumLists(), 0u);
  // A tree has no common neighbors at all: C is empty.
  GraphBuilder b(6);
  for (VertexId i = 1; i < 6; ++i) b.AddEdge(0, i);
  Graph star = b.Build();
  EsdIndex index = BuildIndexClique(star);
  EXPECT_EQ(index.NumLists(), 0u);
  EXPECT_EQ(index.NumEntries(), 0u);
  // Queries pad with zero-score edges.
  EXPECT_EQ(index.Query(3, 1).size(), 3u);
}

TEST(BuilderTest, IndexSizeBoundedByCommonNeighborSum) {
  // Theorem 3: entries <= sum over edges of |N(uv)|... each edge appears in
  // at most max-component-size <= |N(uv)| lists.
  Graph g = gen::HolmeKim(200, 5, 0.5, 77);
  EsdIndex index = BuildIndexClique(g);
  uint64_t bound = 0;
  for (const Edge& e : g.Edges()) {
    bound += graph::CountCommonNeighbors(g, e.u, e.v);
  }
  EXPECT_LE(index.NumEntries(), bound + g.NumEdges());
  EXPECT_GT(index.MemoryBytes(), 0u);
}

// ---------------------------------------------------------------------------
// Cross-algorithm agreement on realistic graphs
// ---------------------------------------------------------------------------

TEST(CrossAlgorithmTest, IndexVsOnlineVsNaiveOnCollaboration) {
  gen::CollaborationParams p;
  p.num_authors = 600;
  p.num_papers = 700;
  p.num_communities = 6;
  Graph g = gen::GenerateCollaboration(p, 201).graph;
  EsdIndex index = BuildIndexClique(g);
  for (uint32_t tau : {1u, 2u, 3u}) {
    for (uint32_t k : {1u, 10u, 40u}) {
      std::vector<uint32_t> want = test::NaiveTopScores(g, k, tau);
      EXPECT_EQ(Scores(index.Query(k, tau)), want);
      EXPECT_EQ(
          Scores(OnlineTopK(g, k, tau, UpperBoundRule::kCommonNeighbor)),
          want);
    }
  }
}

}  // namespace
}  // namespace esd::core
