#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/connectivity.h"
#include "graph/core_decomposition.h"
#include "graph/dynamic_graph.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "graph/orientation.h"
#include "graph/sampling.h"
#include "util/flat_map.h"
#include "util/rng.h"

namespace esd::graph {
namespace {

Graph PathGraph(VertexId n) {
  GraphBuilder b(n);
  for (VertexId i = 0; i + 1 < n; ++i) b.AddEdge(i, i + 1);
  return b.Build();
}

Graph CompleteGraph(VertexId n) {
  GraphBuilder b(n);
  for (VertexId i = 0; i < n; ++i) {
    for (VertexId j = i + 1; j < n; ++j) b.AddEdge(i, j);
  }
  return b.Build();
}

Graph StarGraph(VertexId leaves) {
  GraphBuilder b(leaves + 1);
  for (VertexId i = 1; i <= leaves; ++i) b.AddEdge(0, i);
  return b.Build();
}

// ---------------------------------------------------------------------------
// Graph / GraphBuilder
// ---------------------------------------------------------------------------

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.NumVertices(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_EQ(g.MaxDegree(), 0u);
}

TEST(GraphTest, FromEdgesDropsSelfLoopsAndDuplicates) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 0}, {2, 2}, {1, 2}, {1, 2}});
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(2, 1));
  EXPECT_FALSE(g.HasEdge(2, 2));
  EXPECT_FALSE(g.HasEdge(0, 2));
}

TEST(GraphTest, NeighborsSortedWithParallelEdgeIds) {
  Graph g = Graph::FromEdges(5, {{3, 1}, {1, 0}, {1, 4}, {2, 1}});
  auto nbrs = g.Neighbors(1);
  ASSERT_EQ(nbrs.size(), 4u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  auto eids = g.IncidentEdges(1);
  for (size_t i = 0; i < nbrs.size(); ++i) {
    const Edge& e = g.EdgeAt(eids[i]);
    EXPECT_EQ(MakeEdge(1, nbrs[i]), e);
  }
}

TEST(GraphTest, FindEdgeAndIds) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const Edge& uv = g.EdgeAt(e);
    EXPECT_EQ(g.FindEdge(uv.u, uv.v), e);
    EXPECT_EQ(g.FindEdge(uv.v, uv.u), e);
  }
  EXPECT_EQ(g.FindEdge(0, 3), kNoEdge);
  EXPECT_EQ(g.FindEdge(0, 0), kNoEdge);
  EXPECT_EQ(g.FindEdge(0, 99), kNoEdge);
}

TEST(GraphTest, DegreesAndMaxDegree) {
  Graph g = StarGraph(6);
  EXPECT_EQ(g.Degree(0), 6u);
  EXPECT_EQ(g.Degree(1), 1u);
  EXPECT_EQ(g.MaxDegree(), 6u);
  EXPECT_EQ(g.MinDegree(0), 1u);
}

TEST(GraphTest, EdgesSortedLexicographically) {
  util::Rng rng(3);
  std::vector<Edge> edges;
  for (int i = 0; i < 200; ++i) {
    auto a = static_cast<VertexId>(rng.NextBounded(50));
    auto b = static_cast<VertexId>(rng.NextBounded(50));
    edges.push_back(MakeEdge(a, b));
  }
  Graph g = Graph::FromEdges(50, edges);
  EXPECT_TRUE(std::is_sorted(g.Edges().begin(), g.Edges().end()));
}

TEST(GraphTest, CommonNeighborsCorrect) {
  // 0-1 share neighbors 2,3; 2 and 3 also adjacent.
  Graph g = Graph::FromEdges(5, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3},
                                 {2, 3}, {0, 4}});
  std::vector<VertexId> cn = CommonNeighbors(g, 0, 1);
  EXPECT_EQ(cn, (std::vector<VertexId>{2, 3}));
  EXPECT_EQ(CountCommonNeighbors(g, 0, 1), 2u);
  EXPECT_EQ(CountCommonNeighbors(g, 0, 4), 0u);
}

TEST(GraphTest, CommonNeighborsMatchBruteForce) {
  util::Rng rng(9);
  Graph g = Graph::FromEdges(30, [&] {
    std::vector<Edge> es;
    for (int i = 0; i < 150; ++i) {
      es.push_back(MakeEdge(static_cast<VertexId>(rng.NextBounded(30)),
                            static_cast<VertexId>(rng.NextBounded(30))));
    }
    return es;
  }());
  for (const Edge& e : g.Edges()) {
    std::vector<VertexId> brute;
    for (VertexId w = 0; w < g.NumVertices(); ++w) {
      if (g.HasEdge(e.u, w) && g.HasEdge(e.v, w)) brute.push_back(w);
    }
    EXPECT_EQ(CommonNeighbors(g, e.u, e.v), brute);
  }
}

TEST(GraphBuilderTest, AutoVertexCount) {
  GraphBuilder b;
  b.AddEdge(3, 7);
  b.AddEdge(1, 2);
  Graph g = b.Build();
  EXPECT_EQ(g.NumVertices(), 8u);
  EXPECT_EQ(g.NumEdges(), 2u);
}

TEST(GraphBuilderTest, FixedVertexCountKeepsIsolated) {
  GraphBuilder b(10);
  b.AddEdge(0, 1);
  Graph g = b.Build();
  EXPECT_EQ(g.NumVertices(), 10u);
  EXPECT_EQ(g.Degree(9), 0u);
}

// ---------------------------------------------------------------------------
// DegreeOrderedDag
// ---------------------------------------------------------------------------

TEST(DagTest, OrderRespectsDegreeThenId) {
  // Degrees: 0->1, 1->2, 2->3, 3->2 on a path 0-1-2-3 plus edge 2-... use
  // explicit graph: star center has max degree.
  Graph g = StarGraph(4);
  DegreeOrderedDag dag(g);
  for (VertexId leaf = 1; leaf <= 4; ++leaf) {
    EXPECT_TRUE(dag.Less(leaf, 0));  // leaves precede the hub
  }
  EXPECT_TRUE(dag.Less(1, 2));  // tie broken by id
}

TEST(DagTest, EveryEdgeOrientedLowToHigh) {
  util::Rng rng(21);
  std::vector<Edge> edges;
  for (int i = 0; i < 300; ++i) {
    edges.push_back(MakeEdge(static_cast<VertexId>(rng.NextBounded(60)),
                             static_cast<VertexId>(rng.NextBounded(60))));
  }
  Graph g = Graph::FromEdges(60, edges);
  DegreeOrderedDag dag(g);
  uint64_t arcs = 0;
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    auto out = dag.OutNeighbors(u);
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
    auto eids = dag.OutEdges(u);
    for (size_t i = 0; i < out.size(); ++i) {
      EXPECT_TRUE(dag.Less(u, out[i]));
      EXPECT_EQ(g.EdgeAt(eids[i]), MakeEdge(u, out[i]));
      ++arcs;
    }
  }
  EXPECT_EQ(arcs, g.NumEdges());
}

TEST(DagTest, RanksAreAPermutation) {
  Graph g = PathGraph(20);
  DegreeOrderedDag dag(g);
  std::set<uint32_t> ranks;
  for (VertexId v = 0; v < 20; ++v) ranks.insert(dag.Rank(v));
  EXPECT_EQ(ranks.size(), 20u);
  EXPECT_EQ(*ranks.rbegin(), 19u);
}

TEST(DagTest, MaxOutDegreeSmallOnClique) {
  // In a complete graph the degree ordering gives out-degrees n-1, n-2, ...
  Graph g = CompleteGraph(6);
  DegreeOrderedDag dag(g);
  EXPECT_EQ(dag.MaxOutDegree(), 5u);
  uint32_t total = 0;
  for (VertexId v = 0; v < 6; ++v) total += dag.OutDegree(v);
  EXPECT_EQ(total, g.NumEdges());
}

// ---------------------------------------------------------------------------
// Connectivity
// ---------------------------------------------------------------------------

TEST(ConnectivityTest, WholeGraphComponents) {
  Graph g = Graph::FromEdges(7, {{0, 1}, {1, 2}, {3, 4}});
  Components c = ConnectedComponents(g);
  EXPECT_EQ(c.NumComponents(), 4u);  // {0,1,2}, {3,4}, {5}, {6}
  std::multiset<uint32_t> sizes(c.size.begin(), c.size.end());
  EXPECT_EQ(sizes, (std::multiset<uint32_t>{1, 1, 2, 3}));
  EXPECT_EQ(c.label[0], c.label[2]);
  EXPECT_NE(c.label[0], c.label[3]);
}

TEST(ConnectivityTest, IsConnected) {
  EXPECT_TRUE(IsConnected(PathGraph(10)));
  EXPECT_TRUE(IsConnected(Graph()));
  EXPECT_TRUE(IsConnected(Graph::FromEdges(1, {})));
  EXPECT_FALSE(IsConnected(Graph::FromEdges(3, {{0, 1}})));
}

TEST(ConnectivityTest, InducedComponentSizesBasic) {
  // Path 0-1-2-3-4; subset {0,1,3,4} splits into {0,1} and {3,4}.
  Graph g = PathGraph(5);
  std::vector<uint32_t> sizes = InducedComponentSizes(g, {0, 1, 3, 4});
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes, (std::vector<uint32_t>{2, 2}));
}

TEST(ConnectivityTest, InducedComponentSizesEmptyAndSingleton) {
  Graph g = PathGraph(5);
  EXPECT_TRUE(InducedComponentSizes(g, {}).empty());
  EXPECT_EQ(InducedComponentSizes(g, {2}), (std::vector<uint32_t>{1}));
}

TEST(ConnectivityTest, InducedMatchesBruteForceOnRandomSubsets) {
  util::Rng rng(31);
  std::vector<Edge> edges;
  for (int i = 0; i < 200; ++i) {
    edges.push_back(MakeEdge(static_cast<VertexId>(rng.NextBounded(40)),
                             static_cast<VertexId>(rng.NextBounded(40))));
  }
  Graph g = Graph::FromEdges(40, edges);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<VertexId> subset;
    for (VertexId v = 0; v < 40; ++v) {
      if (rng.NextBool(0.3)) subset.push_back(v);
    }
    // Brute force: label propagation on the induced subgraph.
    std::vector<Edge> sub_edges;
    util::FlatMap<VertexId, VertexId> local;
    for (VertexId i = 0; i < subset.size(); ++i) local.Insert(subset[i], i);
    for (const Edge& e : g.Edges()) {
      auto* a = local.Find(e.u);
      auto* b = local.Find(e.v);
      if (a != nullptr && b != nullptr) sub_edges.push_back(Edge{*a, *b});
    }
    Graph sub = Graph::FromEdges(static_cast<VertexId>(subset.size()),
                                 std::move(sub_edges));
    Components ref = ConnectedComponents(sub);
    std::vector<uint32_t> want(ref.size.begin(), ref.size.end());
    std::sort(want.begin(), want.end());
    std::vector<uint32_t> got = InducedComponentSizes(g, subset);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, want);
  }
}

// ---------------------------------------------------------------------------
// Core decomposition
// ---------------------------------------------------------------------------

TEST(CoreTest, PathHasDegeneracyOne) {
  CoreDecomposition d = ComputeCores(PathGraph(10));
  EXPECT_EQ(d.degeneracy, 1u);
  for (uint32_t c : d.core) EXPECT_LE(c, 1u);
}

TEST(CoreTest, CliqueHasDegeneracyNMinusOne) {
  CoreDecomposition d = ComputeCores(CompleteGraph(7));
  EXPECT_EQ(d.degeneracy, 6u);
  for (uint32_t c : d.core) EXPECT_EQ(c, 6u);
}

TEST(CoreTest, CliquePlusTailCoreNumbers) {
  // Triangle {0,1,2} plus pendant path 2-3-4.
  Graph g = Graph::FromEdges(5, {{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}});
  CoreDecomposition d = ComputeCores(g);
  EXPECT_EQ(d.degeneracy, 2u);
  EXPECT_EQ(d.core[0], 2u);
  EXPECT_EQ(d.core[1], 2u);
  EXPECT_EQ(d.core[2], 2u);
  EXPECT_EQ(d.core[3], 1u);
  EXPECT_EQ(d.core[4], 1u);
}

TEST(CoreTest, DegeneracyOrderProperty) {
  // In a degeneracy ordering, each vertex has at most δ neighbors that come
  // later.
  util::Rng rng(41);
  std::vector<Edge> edges;
  for (int i = 0; i < 400; ++i) {
    edges.push_back(MakeEdge(static_cast<VertexId>(rng.NextBounded(80)),
                             static_cast<VertexId>(rng.NextBounded(80))));
  }
  Graph g = Graph::FromEdges(80, edges);
  CoreDecomposition d = ComputeCores(g);
  std::vector<uint32_t> pos(g.NumVertices());
  for (uint32_t i = 0; i < d.order.size(); ++i) pos[d.order[i]] = i;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    uint32_t later = 0;
    for (VertexId w : g.Neighbors(v)) later += pos[w] > pos[v];
    EXPECT_LE(later, d.degeneracy);
  }
}

TEST(CoreTest, ArboricityBounds) {
  Graph g = CompleteGraph(6);  // arboricity of K6 is 3
  uint32_t lower = ArboricityLowerBound(g);
  uint32_t upper = ComputeCores(g).degeneracy;  // δ >= α
  EXPECT_LE(lower, 3u);
  EXPECT_GE(upper, 3u);
  EXPECT_EQ(lower, 3u);  // ceil(15/5)
}

// ---------------------------------------------------------------------------
// DynamicGraph
// ---------------------------------------------------------------------------

TEST(DynamicGraphTest, InsertEraseBasics) {
  DynamicGraph g(5);
  EXPECT_TRUE(g.InsertEdge(0, 1));
  EXPECT_FALSE(g.InsertEdge(1, 0));  // duplicate
  EXPECT_FALSE(g.InsertEdge(2, 2));  // self loop
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.EraseEdge(0, 1));
  EXPECT_FALSE(g.EraseEdge(0, 1));
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST(DynamicGraphTest, FromStaticAndSnapshotRoundTrip) {
  util::Rng rng(51);
  std::vector<Edge> edges;
  for (int i = 0; i < 100; ++i) {
    edges.push_back(MakeEdge(static_cast<VertexId>(rng.NextBounded(25)),
                             static_cast<VertexId>(rng.NextBounded(25))));
  }
  Graph g = Graph::FromEdges(25, edges);
  DynamicGraph d(g);
  EXPECT_EQ(d.NumEdges(), g.NumEdges());
  Graph snap = d.Snapshot();
  EXPECT_EQ(snap.Edges(), g.Edges());
}

TEST(DynamicGraphTest, CommonNeighborsMatchesStatic) {
  util::Rng rng(53);
  std::vector<Edge> edges;
  for (int i = 0; i < 200; ++i) {
    edges.push_back(MakeEdge(static_cast<VertexId>(rng.NextBounded(30)),
                             static_cast<VertexId>(rng.NextBounded(30))));
  }
  Graph g = Graph::FromEdges(30, edges);
  DynamicGraph d(g);
  for (const Edge& e : g.Edges()) {
    EXPECT_EQ(d.CommonNeighbors(e.u, e.v), CommonNeighbors(g, e.u, e.v));
  }
}

TEST(DynamicGraphTest, NeighborsStaySorted) {
  util::Rng rng(57);
  DynamicGraph g(20);
  for (int i = 0; i < 300; ++i) {
    VertexId a = static_cast<VertexId>(rng.NextBounded(20));
    VertexId b = static_cast<VertexId>(rng.NextBounded(20));
    if (rng.NextBool(0.3)) {
      g.EraseEdge(a, b);
    } else if (a != b) {
      g.InsertEdge(a, b);
    }
    auto nbrs = g.Neighbors(a);
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  }
}

// ---------------------------------------------------------------------------
// IO
// ---------------------------------------------------------------------------

TEST(IoTest, ParseEdgeListWithCommentsAndRemap) {
  Graph g;
  std::string error;
  ASSERT_TRUE(ParseEdgeList("# comment\n% other comment\n10 20\n20 30\n", &g,
                            &error))
      << error;
  EXPECT_EQ(g.NumVertices(), 3u);  // 10,20,30 remapped to 0,1,2
  EXPECT_EQ(g.NumEdges(), 2u);
}

TEST(IoTest, ParseRejectsMalformed) {
  Graph g;
  std::string error;
  EXPECT_FALSE(ParseEdgeList("1 2\nbogus\n", &g, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos);
}

TEST(IoTest, SaveLoadRoundTrip) {
  util::Rng rng(61);
  std::vector<Edge> edges;
  for (int i = 0; i < 120; ++i) {
    edges.push_back(MakeEdge(static_cast<VertexId>(rng.NextBounded(40)),
                             static_cast<VertexId>(rng.NextBounded(40))));
  }
  Graph g = Graph::FromEdges(40, edges);
  std::string path =
      (std::filesystem::temp_directory_path() / "esd_io_test.txt").string();
  std::string error;
  ASSERT_TRUE(SaveEdgeList(g, path, &error)) << error;
  Graph g2;
  ASSERT_TRUE(LoadEdgeList(path, &g2, &error)) << error;
  // Vertex ids may be remapped by first appearance but counts must match,
  // and re-saving must produce an isomorphic edge multiset size.
  EXPECT_EQ(g2.NumEdges(), g.NumEdges());
  std::remove(path.c_str());
}

TEST(IoTest, LoadMissingFileFails) {
  Graph g;
  std::string error;
  EXPECT_FALSE(LoadEdgeList("/nonexistent/definitely_missing", &g, &error));
  EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------------
// Sampling
// ---------------------------------------------------------------------------

TEST(SamplingTest, EdgeSampleFractionRoughlyRespected) {
  Graph g = CompleteGraph(60);  // 1770 edges
  Graph s = SampleEdges(g, 0.5, 7);
  EXPECT_NEAR(static_cast<double>(s.NumEdges()), 885.0, 120.0);
  EXPECT_EQ(s.NumVertices(), g.NumVertices());
}

TEST(SamplingTest, EdgeSampleExtremes) {
  Graph g = CompleteGraph(10);
  EXPECT_EQ(SampleEdges(g, 0.0, 1).NumEdges(), 0u);
  EXPECT_EQ(SampleEdges(g, 1.0, 1).NumEdges(), g.NumEdges());
}

TEST(SamplingTest, EdgeSampleIsSubset) {
  Graph g = CompleteGraph(20);
  Graph s = SampleEdges(g, 0.3, 11);
  for (const Edge& e : s.Edges()) EXPECT_TRUE(g.HasEdge(e.u, e.v));
}

TEST(SamplingTest, VertexSampleSizeExact) {
  Graph g = CompleteGraph(50);
  Graph s = SampleVertices(g, 0.4, 13);
  EXPECT_EQ(s.NumVertices(), 20u);
  // Induced subgraph of a clique is a clique.
  EXPECT_EQ(s.NumEdges(), 20u * 19 / 2);
}

TEST(SamplingTest, DeterministicBySeed) {
  Graph g = CompleteGraph(30);
  Graph a = SampleEdges(g, 0.5, 99);
  Graph b = SampleEdges(g, 0.5, 99);
  EXPECT_EQ(a.Edges(), b.Edges());
}

}  // namespace
}  // namespace esd::graph
