#include <vector>

#include <gtest/gtest.h>

#include "core/index_builder.h"
#include "core/naive_topk.h"
#include "core/score_profile.h"
#include "gen/erdos_renyi.h"
#include "gen/holme_kim.h"
#include "graph/builder.h"

namespace esd::core {
namespace {

using graph::Graph;
using graph::GraphBuilder;
using graph::VertexId;

TEST(ScoreProfileTest, MatchesNaiveHistogram) {
  for (uint64_t seed : {1ull, 2ull}) {
    Graph g = gen::ErdosRenyiGnp(40, 0.3, seed);
    EsdIndex index = BuildIndexClique(g);
    for (uint32_t tau : {1u, 2u, 3u}) {
      ScoreHistogram h = ComputeScoreHistogram(index, tau);
      std::vector<uint32_t> scores = AllEdgeScores(g, tau);
      std::vector<uint64_t> want(h.count.size(), 0);
      uint64_t sum = 0;
      uint32_t max_score = 0;
      for (uint32_t s : scores) {
        ASSERT_LT(s, want.size());
        ++want[s];
        sum += s;
        max_score = std::max(max_score, s);
      }
      EXPECT_EQ(h.count, want) << "tau=" << tau << " seed=" << seed;
      EXPECT_EQ(h.total_edges, scores.size());
      EXPECT_EQ(h.max_score, max_score);
      EXPECT_DOUBLE_EQ(
          h.mean, scores.empty()
                      ? 0.0
                      : static_cast<double>(sum) / scores.size());
    }
  }
}

TEST(ScoreProfileTest, EmptyIndex) {
  EsdIndex index;
  ScoreHistogram h = ComputeScoreHistogram(index, 2);
  EXPECT_EQ(h.total_edges, 0u);
  EXPECT_EQ(h.max_score, 0u);
  EXPECT_EQ(ScorePercentile(h, 0.5), 0u);
}

TEST(ScoreProfileTest, AllZeroScores) {
  // A star: no edge has a common neighbor.
  GraphBuilder b(6);
  for (VertexId i = 1; i < 6; ++i) b.AddEdge(0, i);
  EsdIndex index = BuildIndexClique(b.Build());
  ScoreHistogram h = ComputeScoreHistogram(index, 1);
  EXPECT_EQ(h.count[0], 5u);
  EXPECT_EQ(h.max_score, 0u);
  EXPECT_DOUBLE_EQ(h.mean, 0.0);
  EXPECT_EQ(ScorePercentile(h, 0.99), 0u);
}

TEST(ScoreProfileTest, PercentileMonotone) {
  Graph g = gen::HolmeKim(300, 5, 0.6, 5);
  EsdIndex index = BuildIndexClique(g);
  ScoreHistogram h = ComputeScoreHistogram(index, 2);
  uint32_t prev = 0;
  for (double f : {0.0, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    uint32_t s = ScorePercentile(h, f);
    EXPECT_GE(s, prev);
    prev = s;
  }
  EXPECT_EQ(ScorePercentile(h, 1.0), h.max_score);
}

TEST(ScoreProfileTest, PercentileBoundaries) {
  // Hand-built histogram: 4 edges at 0, 3 at 1, 2 at 2, 1 at 5.
  ScoreHistogram h;
  h.count = {4, 3, 2, 0, 0, 1};
  h.total_edges = 10;
  h.max_score = 5;

  // fraction 0.0 is "at least none of the edges" — always score 0, even
  // though the cumulative count at 0 is positive.
  EXPECT_EQ(ScorePercentile(h, 0.0), 0u);
  // fraction 1.0 must reach the exact max, not overshoot past it.
  EXPECT_EQ(ScorePercentile(h, 1.0), 5u);
  // Out-of-range fractions clamp instead of indexing out of bounds.
  EXPECT_EQ(ScorePercentile(h, -0.5), 0u);
  EXPECT_EQ(ScorePercentile(h, 1.5), 5u);

  // Interior fractions: ceil semantics. 40% of edges score <= 0; the
  // smallest s covering 41% is 1; covering 95% is 5.
  EXPECT_EQ(ScorePercentile(h, 0.4), 0u);
  EXPECT_EQ(ScorePercentile(h, 0.41), 1u);
  EXPECT_EQ(ScorePercentile(h, 0.7), 1u);
  EXPECT_EQ(ScorePercentile(h, 0.9), 2u);
  EXPECT_EQ(ScorePercentile(h, 0.95), 5u);

  // Empty histogram: every fraction is 0.
  ScoreHistogram empty;
  for (double f : {0.0, 0.5, 1.0}) {
    EXPECT_EQ(ScorePercentile(empty, f), 0u);
  }

  // Single-bucket histogram (all edges score 0).
  ScoreHistogram zeros;
  zeros.count = {7};
  zeros.total_edges = 7;
  for (double f : {0.0, 0.5, 1.0}) {
    EXPECT_EQ(ScorePercentile(zeros, f), 0u);
  }
}

TEST(ScoreProfileTest, PaperObservationDblpScoresSmallForLargeTau) {
  // Exp-7: "when tau >= 3, the structural diversity scores of most edges
  // ... are no larger than 3". Check the same qualitative fact on the
  // collaboration-like stand-in via the histogram.
  Graph g = gen::HolmeKim(500, 6, 0.6, 9);
  EsdIndex index = BuildIndexClique(g);
  ScoreHistogram h3 = ComputeScoreHistogram(index, 3);
  EXPECT_LE(ScorePercentile(h3, 0.95), 3u);
  // At tau = 1 scores are much richer.
  ScoreHistogram h1 = ComputeScoreHistogram(index, 1);
  EXPECT_GT(h1.mean, h3.mean);
}

}  // namespace
}  // namespace esd::core
