// Heavy randomized stress of the dynamic index: after EVERY update on a
// small graph, every invariant we can state is checked — the per-edge
// disjoint sets match a fresh BFS of the current ego-networks, the H lists
// match the stored multisets, and queries match the naive ground truth.
// This is the test that would have caught any drift between Algorithms 4/5
// and the static definitions.

#include <vector>

#include <gtest/gtest.h>

#include "core/dynamic_index.h"
#include "core/ego_network.h"
#include "core/naive_topk.h"
#include "gen/erdos_renyi.h"
#include "graph/graph.h"
#include "tests/test_helpers.h"
#include "util/rng.h"

namespace esd::core {
namespace {

using graph::Edge;
using graph::EdgeId;
using graph::Graph;
using graph::VertexId;

void CheckEverything(const DynamicEsdIndex& dyn) {
  const graph::DynamicGraph& g = dyn.CurrentGraph();
  const EsdIndex& index = dyn.Index();

  // 1. Stored multisets equal a fresh ego BFS on the current graph.
  std::vector<EdgeId> live;
  for (EdgeId e = 0; e < index.EdgeSlotCount(); ++e) {
    if (!index.IsLive(e)) continue;
    live.push_back(e);
    Edge uv = index.EdgeAt(e);
    ASSERT_TRUE(g.HasEdge(uv.u, uv.v));
    EXPECT_EQ(index.EdgeSizes(e), EgoComponentSizes(g, uv.u, uv.v))
        << "edge (" << uv.u << "," << uv.v << ")";
  }
  EXPECT_EQ(live.size(), g.NumEdges());

  // 2. H lists are exactly what the multisets dictate.
  test::ExpectIndexInvariant(index, live, [&index](EdgeId e) -> const auto& {
    return index.EdgeSizes(e);
  });

  // 3. Queries agree with naive top-k on a snapshot.
  Graph snap = g.Snapshot();
  for (uint32_t tau : {1u, 2u, 3u}) {
    EXPECT_EQ(Scores(dyn.Query(12, tau)), test::NaiveTopScores(snap, 12, tau))
        << "tau=" << tau;
  }
}

struct FuzzParam {
  uint64_t seed;
  DeletionStrategy strategy;

  friend void PrintTo(const FuzzParam& p, std::ostream* os) {
    *os << "seed" << p.seed
        << (p.strategy == DeletionStrategy::kTargeted ? "_targeted"
                                                      : "_rebuild");
  }
};

class FuzzDynamicTest : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(FuzzDynamicTest, EveryStepKeepsAllInvariants) {
  auto [seed, strategy] = GetParam();
  util::Rng rng(seed);
  constexpr VertexId kN = 12;
  Graph g = gen::ErdosRenyiGnp(kN, 0.35, seed);
  DynamicEsdIndex dyn(g, strategy);
  CheckEverything(dyn);
  for (int step = 0; step < 80; ++step) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(kN));
    VertexId v = static_cast<VertexId>(rng.NextBounded(kN));
    if (u == v) continue;
    if (dyn.CurrentGraph().HasEdge(u, v)) {
      ASSERT_TRUE(dyn.DeleteEdge(u, v));
    } else {
      ASSERT_TRUE(dyn.InsertEdge(u, v));
    }
    CheckEverything(dyn);
    if (::testing::Test::HasFailure()) {
      FAIL() << "invariants broke at step " << step << " after "
             << (dyn.CurrentGraph().HasEdge(u, v) ? "insert" : "delete")
             << " (" << u << "," << v << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FuzzDynamicTest,
    ::testing::Values(FuzzParam{101, DeletionStrategy::kTargeted},
                      FuzzParam{102, DeletionStrategy::kTargeted},
                      FuzzParam{103, DeletionStrategy::kTargeted},
                      FuzzParam{104, DeletionStrategy::kTargeted},
                      FuzzParam{101, DeletionStrategy::kRebuildLocal},
                      FuzzParam{102, DeletionStrategy::kRebuildLocal}));

TEST(FuzzBatchTest, RandomBatchesKeepInvariants) {
  util::Rng rng(777);
  constexpr VertexId kN = 14;
  Graph g = gen::ErdosRenyiGnp(kN, 0.3, 777);
  DynamicEsdIndex dyn(g);
  using Update = DynamicEsdIndex::EdgeUpdate;
  for (int round = 0; round < 10; ++round) {
    std::vector<Update> batch;
    graph::DynamicGraph shadow = dyn.CurrentGraph();  // to predict validity
    for (int i = 0; i < 12; ++i) {
      VertexId u = static_cast<VertexId>(rng.NextBounded(kN));
      VertexId v = static_cast<VertexId>(rng.NextBounded(kN));
      if (u == v) continue;
      if (shadow.HasEdge(u, v)) {
        batch.push_back({Update::Kind::kDelete, u, v});
        shadow.EraseEdge(u, v);
      } else {
        batch.push_back({Update::Kind::kInsert, u, v});
        shadow.InsertEdge(u, v);
      }
    }
    EXPECT_EQ(dyn.ApplyBatch(batch), batch.size());
    CheckEverything(dyn);
  }
}

}  // namespace
}  // namespace esd::core
