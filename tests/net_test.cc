// Network front end tests: wire-protocol fuzzing (malformed, oversized,
// and truncated length prefixes; garbage first bytes; partial-frame
// reassembly across arbitrary read boundaries), end-to-end NetServer
// integration over loopback (binary pipelining order, text-mode line
// compatibility, HTTP /metrics, 64-connection fan-in, backpressure
// disconnect, graceful drain), and fail-point chaos at the net.read /
// net.write sites proving one poisoned connection never stalls the event
// loop or leaks an in-flight query. All suites are named Net* so the CI
// TSan job picks them up via its -R filter.

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/frozen_index.h"
#include "core/index_builder.h"
#include "core/topk_result.h"
#include "fault/failpoint.h"
#include "gen/barabasi_albert.h"
#include "graph/graph.h"
#include "net/client.h"
#include "net/poller.h"
#include "net/server.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "serve/query_service.h"
#include "util/rng.h"

namespace esd {
namespace {

using core::FrozenEsdIndex;
using net::BlockingClient;
using net::ConnMode;
using net::DetectMode;
using net::ErrorFrame;
using net::Frame;
using net::FrameDecoder;
using net::FrameType;
using net::NetServer;
using net::QueryFrame;
using net::QueryResultFrame;
using net::WireError;
using net::WireStatus;
using serve::EsdQueryService;
using serve::QueryRequest;
using serve::QueryResponse;
using serve::ResponseStatus;

// ---------------------------------------------------------------------------
// Wire codec: round trips.
// ---------------------------------------------------------------------------

TEST(NetWireTest, QueryRoundTrip) {
  QueryFrame q;
  q.cid = 0x1122334455667788ull;
  q.k = 64;
  q.tau = 7;
  q.pad_with_zero_edges = 0;
  q.deadline_us = 1500;
  const std::string frame = EncodeQuery(q);
  ASSERT_GE(frame.size(), net::kFrameHeaderBytes);

  FrameDecoder dec;
  dec.Feed(frame);
  Frame out;
  ASSERT_EQ(dec.Next(&out), WireStatus::kOk);
  EXPECT_EQ(out.type, FrameType::kQuery);
  QueryFrame got;
  ASSERT_EQ(net::DecodeQuery(out.payload, &got), WireStatus::kOk);
  EXPECT_EQ(got.cid, q.cid);
  EXPECT_EQ(got.k, q.k);
  EXPECT_EQ(got.tau, q.tau);
  EXPECT_EQ(got.pad_with_zero_edges, q.pad_with_zero_edges);
  EXPECT_EQ(got.deadline_us, q.deadline_us);
  EXPECT_EQ(dec.buffered_bytes(), 0u);
}

TEST(NetWireTest, QueryResultRoundTrip) {
  QueryResultFrame r;
  r.cid = 42;
  r.status = 2;
  r.rid = 777;
  r.epoch = 9;
  r.edges = {{1, 2, 30}, {4, 5, 0}, {1000000, 2000000, 4000000}};
  const std::string frame = EncodeQueryResult(r);

  FrameDecoder dec;
  dec.Feed(frame);
  Frame out;
  ASSERT_EQ(dec.Next(&out), WireStatus::kOk);
  EXPECT_EQ(out.type, FrameType::kQueryResult);
  QueryResultFrame got;
  ASSERT_EQ(net::DecodeQueryResult(out.payload, &got), WireStatus::kOk);
  EXPECT_EQ(got.cid, r.cid);
  EXPECT_EQ(got.status, r.status);
  EXPECT_EQ(got.rid, r.rid);
  EXPECT_EQ(got.epoch, r.epoch);
  ASSERT_EQ(got.edges.size(), r.edges.size());
  for (size_t i = 0; i < r.edges.size(); ++i) {
    EXPECT_EQ(got.edges[i].u, r.edges[i].u);
    EXPECT_EQ(got.edges[i].v, r.edges[i].v);
    EXPECT_EQ(got.edges[i].score, r.edges[i].score);
  }
}

TEST(NetWireTest, ErrorRoundTrip) {
  const std::string frame =
      EncodeError(WireError::kOversized, "length prefix over cap");
  FrameDecoder dec;
  dec.Feed(frame);
  Frame out;
  ASSERT_EQ(dec.Next(&out), WireStatus::kOk);
  EXPECT_EQ(out.type, FrameType::kError);
  ErrorFrame got;
  ASSERT_EQ(net::DecodeError(out.payload, &got), WireStatus::kOk);
  EXPECT_EQ(got.code, WireError::kOversized);
  EXPECT_EQ(got.message, "length prefix over cap");
}

// ---------------------------------------------------------------------------
// Wire codec: reassembly and malformed input.
// ---------------------------------------------------------------------------

TEST(NetWireTest, ByteAtATimeReassembly) {
  QueryFrame q;
  q.cid = 5;
  const std::string frame = EncodeQuery(q);
  FrameDecoder dec;
  Frame out;
  for (size_t i = 0; i + 1 < frame.size(); ++i) {
    dec.Feed(frame.data() + i, 1);
    ASSERT_EQ(dec.Next(&out), WireStatus::kNeedMore) << "at byte " << i;
  }
  dec.Feed(frame.data() + frame.size() - 1, 1);
  ASSERT_EQ(dec.Next(&out), WireStatus::kOk);
  EXPECT_EQ(out.type, FrameType::kQuery);
}

TEST(NetWireTest, BackToBackFramesInOneFeed) {
  QueryFrame q1, q2;
  q1.cid = 1;
  q2.cid = 2;
  std::string bytes = EncodeQuery(q1);
  bytes += EncodeQuery(q2);
  bytes += EncodeFrame(FrameType::kPing, "");
  FrameDecoder dec;
  dec.Feed(bytes);
  Frame out;
  ASSERT_EQ(dec.Next(&out), WireStatus::kOk);
  QueryFrame got;
  ASSERT_EQ(net::DecodeQuery(out.payload, &got), WireStatus::kOk);
  EXPECT_EQ(got.cid, 1u);
  ASSERT_EQ(dec.Next(&out), WireStatus::kOk);
  ASSERT_EQ(net::DecodeQuery(out.payload, &got), WireStatus::kOk);
  EXPECT_EQ(got.cid, 2u);
  ASSERT_EQ(dec.Next(&out), WireStatus::kOk);
  EXPECT_EQ(out.type, FrameType::kPing);
  EXPECT_EQ(dec.Next(&out), WireStatus::kNeedMore);
}

TEST(NetWireTest, BadMagicPoisonsDecoder) {
  FrameDecoder dec;
  const char raw[] = {0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07};
  dec.Feed(raw, sizeof(raw));
  Frame out;
  EXPECT_EQ(dec.Next(&out), WireStatus::kBadMagic);
  // Poisoned: even a valid frame afterwards keeps reporting the error.
  dec.Feed(EncodeFrame(FrameType::kPing, ""));
  EXPECT_EQ(dec.Next(&out), WireStatus::kBadMagic);
}

TEST(NetWireTest, BadVersionAndFlagsRejected) {
  std::string frame = net::EncodeFrame(FrameType::kPing, "");
  frame[1] = static_cast<char>(net::kWireVersion + 9);
  FrameDecoder dec1;
  dec1.Feed(frame);
  Frame out;
  EXPECT_EQ(dec1.Next(&out), WireStatus::kBadVersion);

  frame = net::EncodeFrame(FrameType::kPing, "");
  frame[3] = 0x40;  // reserved flags must be zero
  FrameDecoder dec2;
  dec2.Feed(frame);
  EXPECT_EQ(dec2.Next(&out), WireStatus::kBadFlags);
}

TEST(NetWireTest, UnknownTypeRejected) {
  std::string frame = net::EncodeFrame(FrameType::kPing, "");
  frame[2] = 0x33;  // no such FrameType
  FrameDecoder dec;
  dec.Feed(frame);
  Frame out;
  EXPECT_EQ(dec.Next(&out), WireStatus::kBadType);
}

TEST(NetWireTest, OversizedPrefixRejectedOnHeaderAlone) {
  // A hostile length prefix must be rejected the moment the 8-byte header
  // is complete — no payload bytes are ever buffered or waited for.
  std::string header;
  header.push_back(static_cast<char>(net::kFrameMagic));
  header.push_back(static_cast<char>(net::kWireVersion));
  header.push_back(static_cast<char>(FrameType::kQuery));
  header.push_back(0);
  const uint32_t huge = 0xFFFFFFFFu;
  header.append(reinterpret_cast<const char*>(&huge), 4);
  FrameDecoder dec;
  dec.Feed(header);  // exactly 8 bytes, zero payload
  Frame out;
  EXPECT_EQ(dec.Next(&out), WireStatus::kOversized);
}

TEST(NetWireTest, TruncatedPayloadNeedsMore) {
  QueryFrame q;
  const std::string frame = EncodeQuery(q);
  FrameDecoder dec;
  dec.Feed(frame.data(), frame.size() - 4);
  Frame out;
  EXPECT_EQ(dec.Next(&out), WireStatus::kNeedMore);
  dec.Feed(frame.data() + frame.size() - 4, 4);
  EXPECT_EQ(dec.Next(&out), WireStatus::kOk);
}

TEST(NetWireTest, QueryPayloadWrongSizeIsBadPayload) {
  const std::string frame = net::EncodeFrame(FrameType::kQuery, "short");
  FrameDecoder dec;
  dec.Feed(frame);
  Frame out;
  ASSERT_EQ(dec.Next(&out), WireStatus::kOk);
  QueryFrame got;
  EXPECT_EQ(net::DecodeQuery(out.payload, &got), WireStatus::kBadPayload);
}

TEST(NetWireTest, QueryResultCountValidatedAgainstPayload) {
  QueryResultFrame r;
  r.edges = {{1, 2, 3}};
  std::string frame = EncodeQueryResult(r);
  // Inflate the declared edge count without supplying the bytes. The count
  // lives in the payload (after the v2 prefix: cid,status,rid,epoch + the
  // 3 u16 shard tallies); corrupting it must yield kBadPayload, not a huge
  // allocation.
  const size_t count_off = net::kFrameHeaderBytes + 8 + 1 + 8 + 8 + 6;
  ASSERT_LT(count_off + 4, frame.size());
  const uint32_t bogus = 1000000;
  std::memcpy(&frame[count_off], &bogus, 4);
  FrameDecoder dec;
  dec.Feed(frame);
  Frame out;
  ASSERT_EQ(dec.Next(&out), WireStatus::kOk);
  QueryResultFrame got;
  EXPECT_EQ(net::DecodeQueryResult(out.payload, &got),
            WireStatus::kBadPayload);
}

TEST(NetWireTest, DetectModeSniffsAllThreeProtocols) {
  EXPECT_EQ(DetectMode(std::string_view("\xE5", 1)), ConnMode::kBinary);
  EXPECT_EQ(DetectMode("GET /metrics HTTP/1.0"), ConnMode::kHttp);
  EXPECT_EQ(DetectMode("QUERY 3 2\n"), ConnMode::kText);
  EXPECT_EQ(DetectMode("STATS"), ConnMode::kText);
  // A strict prefix of "GET " is still ambiguous.
  EXPECT_EQ(DetectMode("G"), ConnMode::kUnknown);
  EXPECT_EQ(DetectMode("GE"), ConnMode::kUnknown);
  EXPECT_EQ(DetectMode("GET"), ConnMode::kUnknown);
  EXPECT_EQ(DetectMode("GETX"), ConnMode::kText);
  EXPECT_EQ(DetectMode(""), ConnMode::kUnknown);
}

TEST(NetWireTest, FuzzRandomBytesNeverCrashOrOverbuffer) {
  util::Rng rng(0xF022);
  for (int round = 0; round < 200; ++round) {
    FrameDecoder dec;
    Frame out;
    const size_t len = 1 + rng.Next() % 256;
    std::string bytes;
    bytes.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng.Next() & 0xFF));
    }
    // Feed in random-sized chunks; pull frames until the decoder wants
    // more bytes or poisons. Either way: no crash, no unbounded growth.
    size_t off = 0;
    while (off < bytes.size()) {
      const size_t chunk = 1 + rng.Next() % 16;
      const size_t n = std::min(chunk, bytes.size() - off);
      dec.Feed(bytes.data() + off, n);
      off += n;
      WireStatus st;
      do {
        st = dec.Next(&out);
      } while (st == WireStatus::kOk);
      if (st != WireStatus::kNeedMore) break;  // poisoned — terminal
    }
    EXPECT_LE(dec.buffered_bytes(), bytes.size());
  }
}

TEST(NetWireTest, FuzzMutatedValidFramesNeverCrash) {
  util::Rng rng(0xBEEF);
  for (int round = 0; round < 300; ++round) {
    QueryFrame q;
    q.cid = rng.Next();
    q.k = static_cast<uint32_t>(rng.Next());
    q.tau = static_cast<uint32_t>(rng.Next());
    std::string frame = EncodeQuery(q);
    // Flip a few random bytes, sometimes truncate.
    const int flips = 1 + static_cast<int>(rng.Next() % 4);
    for (int f = 0; f < flips; ++f) {
      frame[rng.Next() % frame.size()] ^=
          static_cast<char>(1 + rng.Next() % 255);
    }
    if (rng.Next() % 4 == 0) frame.resize(rng.Next() % frame.size());
    FrameDecoder dec;
    dec.Feed(frame);
    Frame out;
    WireStatus st;
    do {
      st = dec.Next(&out);
      if (st == WireStatus::kOk && out.type == FrameType::kQuery) {
        QueryFrame got;
        (void)net::DecodeQuery(out.payload, &got);
      }
    } while (st == WireStatus::kOk);
  }
}

// ---------------------------------------------------------------------------
// Poller unit coverage.
// ---------------------------------------------------------------------------

TEST(NetPollerTest, BothBackendsSignalReadability) {
  for (const bool force_poll : {false, true}) {
    std::string error;
    auto poller = net::Poller::Create(force_poll, &error);
    ASSERT_NE(poller, nullptr) << error;
    if (force_poll) {
      EXPECT_STREQ(poller->backend_name(), "poll");
    }
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    ASSERT_TRUE(poller->Add(fds[0], /*read=*/true, /*write=*/false));
    std::vector<net::Poller::Event> events;
    // Nothing written yet: a short wait must time out with no events.
    poller->Wait(&events, 0);
    EXPECT_TRUE(events.empty());
    ASSERT_EQ(::write(fds[1], "x", 1), 1);
    poller->Wait(&events, 1000);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].fd, fds[0]);
    EXPECT_TRUE(events[0].readable);
    poller->Remove(fds[0]);
    ::close(fds[0]);
    ::close(fds[1]);
  }
}

// ---------------------------------------------------------------------------
// NetServer integration over loopback.
// ---------------------------------------------------------------------------

class NetServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph::Graph g = gen::BarabasiAlbert(150, 4, 3);
    frozen_ = std::make_unique<FrozenEsdIndex>(core::BuildFrozenIndex(g));
    EsdQueryService::Options sopts;
    sopts.num_threads = 2;
    sopts.max_queue = 1 << 14;
    service_ = std::make_unique<EsdQueryService>(*frozen_, sopts);
  }

  void TearDown() override {
    server_.reset();  // drain before the service dies
    service_.reset();
  }

  NetServer* StartServer(NetServer::Options nopts = {}) {
    nopts.registry = &registry_;
    NetServer::Handlers h;
    h.submit = [this](const QueryRequest& rq,
                      std::function<void(QueryResponse)> done) {
      service_->SubmitAsync(rq, std::move(done));
    };
    h.command = [this](const std::string& line, std::string* out) {
      commands_.fetch_add(1);
      if (line == "QUIT") {
        *out = "bye\n";
        return false;
      }
      if (line == "STATS") {
        *out = "stats ok\n";
        return true;
      }
      *out = "ERR unknown command\n";
      return true;
    };
    h.format_query = [](const QueryResponse& resp) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "RESULT %zu edges\n",
                    resp.result.size());
      return std::string(buf);
    };
    h.metrics_text = [this] { return registry_.PrometheusText(); };
    server_ = std::make_unique<NetServer>(h, nopts);
    std::string error;
    EXPECT_TRUE(server_->Start(&error)) << error;
    return server_.get();
  }

  // Reads from a raw fd until the peer closes or `until` appears.
  static std::string ReadUntil(int fd, const std::string& until) {
    std::string got;
    char buf[4096];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n <= 0) break;
      got.append(buf, static_cast<size_t>(n));
      if (!until.empty() && got.find(until) != std::string::npos) break;
    }
    return got;
  }

  obs::MetricRegistry registry_;
  std::unique_ptr<FrozenEsdIndex> frozen_;
  std::unique_ptr<EsdQueryService> service_;
  std::unique_ptr<NetServer> server_;
  std::atomic<uint64_t> commands_{0};
};

TEST_F(NetServerTest, BinaryQueryMatchesEngine) {
  NetServer* srv = StartServer();
  BlockingClient client;
  std::string error;
  ASSERT_TRUE(client.Connect("127.0.0.1", srv->port(), &error)) << error;

  QueryFrame q;
  q.cid = 99;
  q.k = 8;
  q.tau = 2;
  q.pad_with_zero_edges = 1;
  QueryResultFrame result;
  ASSERT_TRUE(client.Query(q, &result));
  EXPECT_EQ(result.cid, 99u);
  EXPECT_EQ(result.status, static_cast<uint8_t>(ResponseStatus::kOk));
  EXPECT_GT(result.rid, 0u);

  const core::TopKResult want = frozen_->Query(8, 2);
  ASSERT_EQ(result.edges.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(result.edges[i].u, want[i].edge.u);
    EXPECT_EQ(result.edges[i].v, want[i].edge.v);
    EXPECT_EQ(result.edges[i].score, want[i].score);
  }
}

TEST_F(NetServerTest, PingPong) {
  NetServer* srv = StartServer();
  BlockingClient client;
  std::string error;
  ASSERT_TRUE(client.Connect("127.0.0.1", srv->port(), &error)) << error;
  ASSERT_TRUE(client.SendPing());
  Frame frame;
  ASSERT_EQ(client.RecvFrame(&frame), WireStatus::kOk);
  EXPECT_EQ(frame.type, FrameType::kPong);
  EXPECT_TRUE(frame.payload.empty());
}

TEST_F(NetServerTest, PipelinedResponsesArriveInRequestOrder) {
  NetServer* srv = StartServer();
  BlockingClient client;
  std::string error;
  ASSERT_TRUE(client.Connect("127.0.0.1", srv->port(), &error)) << error;

  // Burst 32 queries with varying (k, tau) — they land in different
  // service batches and complete out of order internally — then read all
  // responses: cids must come back exactly in send order.
  constexpr uint64_t kN = 32;
  std::string burst;
  for (uint64_t i = 0; i < kN; ++i) {
    QueryFrame q;
    q.cid = 1000 + i;
    q.k = 1 + static_cast<uint32_t>(i % 7);
    q.tau = 1 + static_cast<uint32_t>(i % 5);
    burst += EncodeQuery(q);
  }
  ASSERT_TRUE(client.SendRaw(burst));
  for (uint64_t i = 0; i < kN; ++i) {
    Frame frame;
    ASSERT_EQ(client.RecvFrame(&frame), WireStatus::kOk) << "response " << i;
    ASSERT_EQ(frame.type, FrameType::kQueryResult);
    QueryResultFrame r;
    ASSERT_EQ(net::DecodeQueryResult(frame.payload, &r), WireStatus::kOk);
    EXPECT_EQ(r.cid, 1000 + i) << "out-of-order response at position " << i;
  }
}

TEST_F(NetServerTest, MalformedFrameGetsTypedErrorAndClose) {
  NetServer* srv = StartServer();
  BlockingClient client;
  std::string error;
  ASSERT_TRUE(client.Connect("127.0.0.1", srv->port(), &error)) << error;

  // Valid magic, hostile version byte: binary mode engages, then the
  // decoder reports kBadVersion — the server must answer a kError frame
  // and close, never hang.
  std::string bad = EncodeFrame(FrameType::kPing, "");
  bad[1] = 77;
  ASSERT_TRUE(client.SendRaw(bad));
  Frame frame;
  ASSERT_EQ(client.RecvFrame(&frame), WireStatus::kOk);
  ASSERT_EQ(frame.type, FrameType::kError);
  ErrorFrame ef;
  ASSERT_EQ(net::DecodeError(frame.payload, &ef), WireStatus::kOk);
  EXPECT_EQ(ef.code, WireError::kParse);
  // Peer must close after the error frame.
  EXPECT_EQ(client.RecvFrame(&frame), WireStatus::kNeedMore);
  EXPECT_GE(srv->SnapStats().parse_errors, 1u);
}

TEST_F(NetServerTest, OversizedPrefixRejectedWithoutPayload) {
  NetServer* srv = StartServer();
  BlockingClient client;
  std::string error;
  ASSERT_TRUE(client.Connect("127.0.0.1", srv->port(), &error)) << error;

  // 8-byte header declaring a 256 MiB payload, no payload sent. The server
  // must reject on the header alone instead of waiting for bytes that will
  // never come (a slowloris would otherwise pin the buffer).
  std::string header;
  header.push_back(static_cast<char>(net::kFrameMagic));
  header.push_back(static_cast<char>(net::kWireVersion));
  header.push_back(static_cast<char>(FrameType::kQuery));
  header.push_back(0);
  const uint32_t huge = 256u << 20;
  header.append(reinterpret_cast<const char*>(&huge), 4);
  ASSERT_TRUE(client.SendRaw(header));

  Frame frame;
  ASSERT_EQ(client.RecvFrame(&frame), WireStatus::kOk);
  ASSERT_EQ(frame.type, FrameType::kError);
  ErrorFrame ef;
  ASSERT_EQ(net::DecodeError(frame.payload, &ef), WireStatus::kOk);
  EXPECT_EQ(ef.code, WireError::kOversized);
  EXPECT_EQ(client.RecvFrame(&frame), WireStatus::kNeedMore);
  EXPECT_GE(srv->SnapStats().parse_errors, 1u);
}

TEST_F(NetServerTest, PartialFrameAcrossWritesStillAnswered) {
  NetServer* srv = StartServer();
  BlockingClient client;
  std::string error;
  ASSERT_TRUE(client.Connect("127.0.0.1", srv->port(), &error)) << error;

  QueryFrame q;
  q.cid = 7;
  q.k = 3;
  q.tau = 2;
  const std::string frame = EncodeQuery(q);
  // Drip the frame in three separated writes; the server reassembles.
  ASSERT_TRUE(client.SendRaw(std::string_view(frame).substr(0, 3)));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(client.SendRaw(std::string_view(frame).substr(3, 9)));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(client.SendRaw(std::string_view(frame).substr(12)));

  Frame out;
  ASSERT_EQ(client.RecvFrame(&out), WireStatus::kOk);
  QueryResultFrame r;
  ASSERT_EQ(net::DecodeQueryResult(out.payload, &r), WireStatus::kOk);
  EXPECT_EQ(r.cid, 7u);
}

TEST_F(NetServerTest, TruncatedFrameThenDisconnectIsClean) {
  NetServer* srv = StartServer();
  {
    BlockingClient client;
    std::string error;
    ASSERT_TRUE(client.Connect("127.0.0.1", srv->port(), &error)) << error;
    QueryFrame q;
    const std::string frame = EncodeQuery(q);
    ASSERT_TRUE(client.SendRaw(std::string_view(frame).substr(0, 10)));
  }  // half a frame, then the client vanishes
  // The server must just close its side; subsequent clients are served.
  for (int i = 0; i < 100; ++i) {
    if (srv->SnapStats().closed >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(srv->SnapStats().closed, 1u);
  BlockingClient again;
  std::string error;
  ASSERT_TRUE(again.Connect("127.0.0.1", srv->port(), &error)) << error;
  QueryFrame q;
  q.cid = 1;
  QueryResultFrame r;
  EXPECT_TRUE(again.Query(q, &r));
}

TEST_F(NetServerTest, TextModeSpeaksTheStdinDialect) {
  NetServer* srv = StartServer();
  BlockingClient raw;
  std::string error;
  ASSERT_TRUE(raw.Connect("127.0.0.1", srv->port(), &error)) << error;
  ASSERT_TRUE(raw.SendRaw("QUERY 3 2\r\nSTATS\nNOPE\nQUIT\n"));
  const std::string got = ReadUntil(raw.fd(), "bye");
  EXPECT_NE(got.find("RESULT"), std::string::npos) << got;
  EXPECT_NE(got.find("stats ok"), std::string::npos) << got;
  EXPECT_NE(got.find("ERR unknown command"), std::string::npos) << got;
  EXPECT_NE(got.find("bye"), std::string::npos) << got;
  // Responses appear in command order even though QUERY is async.
  EXPECT_LT(got.find("RESULT"), got.find("stats ok"));
  EXPECT_GE(commands_.load(), 3u);  // STATS, NOPE, QUIT (QUERY intercepted)
}

TEST_F(NetServerTest, TextQueryUsageErrorOnBadArgs) {
  NetServer* srv = StartServer();
  BlockingClient raw;
  std::string error;
  ASSERT_TRUE(raw.Connect("127.0.0.1", srv->port(), &error)) << error;
  ASSERT_TRUE(raw.SendRaw("QUERY nonsense\nQUIT\n"));
  const std::string got = ReadUntil(raw.fd(), "bye");
  EXPECT_NE(got.find("ERR usage: QUERY"), std::string::npos) << got;
}

TEST_F(NetServerTest, OverlongTextLineClosedWithError) {
  NetServer::Options nopts;
  nopts.max_line_bytes = 64;
  NetServer* srv = StartServer(nopts);
  BlockingClient raw;
  std::string error;
  ASSERT_TRUE(raw.Connect("127.0.0.1", srv->port(), &error)) << error;
  ASSERT_TRUE(raw.SendRaw(std::string(256, 'A')));  // no newline, over cap
  const std::string got = ReadUntil(raw.fd(), "");
  EXPECT_NE(got.find("ERR line too long"), std::string::npos) << got;
  EXPECT_GE(srv->SnapStats().parse_errors, 1u);
}

TEST_F(NetServerTest, HttpMetricsScrape) {
  NetServer* srv = StartServer();
  registry_.GetCounter("esd_test_scrape_total", "test counter").Inc(3);
  BlockingClient raw;
  std::string error;
  ASSERT_TRUE(raw.Connect("127.0.0.1", srv->port(), &error)) << error;
  ASSERT_TRUE(raw.SendRaw("GET /metrics HTTP/1.0\r\n\r\n"));
  const std::string got = ReadUntil(raw.fd(), "");  // server closes after
  EXPECT_NE(got.find("HTTP/1.0 200 OK"), std::string::npos) << got;
  EXPECT_NE(got.find("text/plain"), std::string::npos) << got;
  EXPECT_NE(got.find("esd_test_scrape_total 3"), std::string::npos) << got;
  EXPECT_EQ(srv->SnapStats().scrapes, 1u);
}

TEST_F(NetServerTest, HttpUnknownPathIs404) {
  NetServer* srv = StartServer();
  BlockingClient raw;
  std::string error;
  ASSERT_TRUE(raw.Connect("127.0.0.1", srv->port(), &error)) << error;
  ASSERT_TRUE(raw.SendRaw("GET /nope HTTP/1.0\r\n\r\n"));
  const std::string got = ReadUntil(raw.fd(), "");
  EXPECT_NE(got.find("404"), std::string::npos) << got;
}

TEST_F(NetServerTest, SixtyFourConcurrentConnections) {
  NetServer* srv = StartServer();
  constexpr int kConns = 64;
  constexpr int kQueriesPerConn = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kConns);
  for (int c = 0; c < kConns; ++c) {
    clients.emplace_back([&, c] {
      BlockingClient client;
      std::string error;
      if (!client.Connect("127.0.0.1", srv->port(), &error)) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kQueriesPerConn; ++i) {
        QueryFrame q;
        q.cid = static_cast<uint64_t>(c) * 1000 + i;
        q.k = 1 + (c + i) % 8;
        q.tau = 1 + i % 4;
        QueryResultFrame r;
        if (!client.Query(q, &r) || r.cid != q.cid) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  const NetServer::Stats stats = srv->SnapStats();
  EXPECT_EQ(stats.parse_errors, 0u);
  EXPECT_EQ(stats.queries, static_cast<uint64_t>(kConns) * kQueriesPerConn);
  EXPECT_EQ(stats.accepts, static_cast<uint64_t>(kConns));
}

TEST_F(NetServerTest, BackpressureDisconnectsReaderThatStopped) {
  NetServer::Options nopts;
  nopts.max_output_bytes = 16 * 1024;  // tiny cap so the test is fast
  NetServer* srv = StartServer(nopts);
  BlockingClient client;
  std::string error;
  ASSERT_TRUE(client.Connect("127.0.0.1", srv->port(), &error)) << error;

  // Pipeline a flood of padded top-64 queries and never read a byte. Once
  // kernel socket buffers fill, responses accumulate server-side until the
  // output cap trips and the server disconnects us.
  std::string burst;
  for (uint64_t i = 0; i < 4096; ++i) {
    QueryFrame q;
    q.cid = i;
    q.k = 64;
    q.tau = 1;
    q.pad_with_zero_edges = 1;
    burst += EncodeQuery(q);
  }
  (void)client.SendRaw(burst);  // may fail midway once the server closes
  bool closed = false;
  for (int i = 0; i < 2000; ++i) {
    if (srv->SnapStats().backpressure_closes >= 1) {
      closed = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(closed) << "server never applied the output-buffer cap";
  // The loop survives: a well-behaved client still gets answers.
  BlockingClient good;
  ASSERT_TRUE(good.Connect("127.0.0.1", srv->port(), &error)) << error;
  QueryFrame q;
  q.cid = 1;
  QueryResultFrame r;
  EXPECT_TRUE(good.Query(q, &r));
}

TEST_F(NetServerTest, ForcePollBackendServes) {
  NetServer::Options nopts;
  nopts.force_poll = true;
  NetServer* srv = StartServer(nopts);
  EXPECT_STREQ(srv->backend_name(), "poll");
  BlockingClient client;
  std::string error;
  ASSERT_TRUE(client.Connect("127.0.0.1", srv->port(), &error)) << error;
  QueryFrame q;
  q.cid = 5;
  QueryResultFrame r;
  ASSERT_TRUE(client.Query(q, &r));
  EXPECT_EQ(r.cid, 5u);
}

TEST_F(NetServerTest, MaxConnectionsCapRefusesExtras) {
  NetServer::Options nopts;
  nopts.max_connections = 2;
  NetServer* srv = StartServer(nopts);
  std::string error;
  BlockingClient a, b;
  ASSERT_TRUE(a.Connect("127.0.0.1", srv->port(), &error)) << error;
  ASSERT_TRUE(b.Connect("127.0.0.1", srv->port(), &error)) << error;
  // Make sure both are registered before the third knocks.
  QueryFrame q;
  QueryResultFrame r;
  ASSERT_TRUE(a.Query(q, &r));
  ASSERT_TRUE(b.Query(q, &r));

  BlockingClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", srv->port(), &error)) << error;
  // The server accepts then immediately closes; our first read sees EOF.
  Frame frame;
  c.SendPing();
  EXPECT_NE(c.RecvFrame(&frame), WireStatus::kOk);
}

TEST_F(NetServerTest, GracefulShutdownDrainsInflightQueries) {
  NetServer* srv = StartServer();
  BlockingClient client;
  std::string error;
  ASSERT_TRUE(client.Connect("127.0.0.1", srv->port(), &error)) << error;

  // Pipeline a burst, then immediately request shutdown: every response
  // for an already-submitted query must still be delivered before the
  // server closes the connection.
  constexpr uint64_t kN = 16;
  std::string burst;
  for (uint64_t i = 0; i < kN; ++i) {
    QueryFrame q;
    q.cid = 100 + i;
    q.k = 4;
    q.tau = 1 + i % 3;
    burst += EncodeQuery(q);
  }
  ASSERT_TRUE(client.SendRaw(burst));
  // Let the loop ingest the burst before the drain stops reads.
  for (int i = 0; i < 200 && srv->SnapStats().queries < kN; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(srv->SnapStats().queries, kN);
  srv->RequestShutdown();

  uint64_t got = 0;
  Frame frame;
  while (client.RecvFrame(&frame) == WireStatus::kOk) {
    if (frame.type == FrameType::kQueryResult) ++got;
  }
  EXPECT_EQ(got, kN);
  server_->Shutdown();
  const NetServer::Stats stats = server_->SnapStats();
  EXPECT_EQ(stats.inflight, 0u);
  EXPECT_EQ(stats.open_connections, 0u);
}

// ---------------------------------------------------------------------------
// Fail-point chaos at the network IO sites. Compiled-in sites only.
// ---------------------------------------------------------------------------

class NetChaosTest : public NetServerTest {
 protected:
  void SetUp() override {
    if (!fault::kFailPointsCompiledIn) {
      GTEST_SKIP() << "ESD_FAULT=OFF build: net.* fail points compiled out";
    }
    NetServerTest::SetUp();
  }
  void TearDown() override {
    if (fault::kFailPointsCompiledIn) {
      fault::FailPointRegistry::Global().Clear("net.read");
      fault::FailPointRegistry::Global().Clear("net.write");
      fault::FailPointRegistry::Global().Clear("net.accept");
    }
    NetServerTest::TearDown();
  }
};

TEST_F(NetChaosTest, ReadFaultKillsOneConnectionNotTheLoop) {
  NetServer* srv = StartServer();
  std::string error;

  // Arm: the next net.read evaluation fails like a peer reset. Only the
  // victim is active, so the hit lands on its connection deterministically.
  ASSERT_TRUE(fault::FailPointRegistry::Global().Set(
      "net.read", "nth(1)*error(ECONNRESET)", &error))
      << error;

  BlockingClient victim;
  ASSERT_TRUE(victim.Connect("127.0.0.1", srv->port(), &error)) << error;
  ASSERT_TRUE(victim.SendPing());
  Frame frame;
  EXPECT_NE(victim.RecvFrame(&frame), WireStatus::kOk);  // connection died

  // The loop keeps serving: a fresh connection works, nothing leaked.
  fault::FailPointRegistry::Global().Clear("net.read");
  BlockingClient healthy;
  ASSERT_TRUE(healthy.Connect("127.0.0.1", srv->port(), &error)) << error;
  QueryFrame q;
  q.cid = 11;
  QueryResultFrame r;
  ASSERT_TRUE(healthy.Query(q, &r));
  EXPECT_EQ(r.cid, 11u);
  const NetServer::Stats stats = srv->SnapStats();
  EXPECT_GE(stats.read_errors, 1u);
  EXPECT_EQ(stats.inflight, 0u);
}

TEST_F(NetChaosTest, WriteFaultAfterSubmitLeaksNoPending) {
  NetServer* srv = StartServer();
  std::string error;

  BlockingClient victim;
  ASSERT_TRUE(victim.Connect("127.0.0.1", srv->port(), &error)) << error;

  // Let the query reach the service, then fail the response write. The
  // completion callback must still retire the in-flight count even though
  // its bytes can never be delivered.
  ASSERT_TRUE(fault::FailPointRegistry::Global().Set(
      "net.write", "nth(1)*error(ECONNRESET)", &error))
      << error;
  QueryFrame q;
  q.cid = 21;
  ASSERT_TRUE(victim.SendQuery(q));
  Frame frame;
  EXPECT_NE(victim.RecvFrame(&frame), WireStatus::kOk);

  fault::FailPointRegistry::Global().Clear("net.write");
  for (int i = 0; i < 200 && srv->SnapStats().inflight > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const NetServer::Stats stats = srv->SnapStats();
  EXPECT_EQ(stats.inflight, 0u) << "pending query leaked after write fault";
  EXPECT_GE(stats.write_errors, 1u);

  BlockingClient healthy;
  ASSERT_TRUE(healthy.Connect("127.0.0.1", srv->port(), &error)) << error;
  QueryResultFrame r;
  q.cid = 22;
  ASSERT_TRUE(healthy.Query(q, &r));
  EXPECT_EQ(r.cid, 22u);
}

TEST_F(NetChaosTest, ReadDelayDoesNotWedgeOtherConnections) {
  NetServer* srv = StartServer();
  std::string error;

  // Every read stalls 10ms for a while: throughput sags but nothing
  // deadlocks and every response still arrives, in order, per connection.
  ASSERT_TRUE(fault::FailPointRegistry::Global().Set("net.read",
                                                     "delay(10)", &error))
      << error;
  constexpr int kConns = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kConns; ++c) {
    clients.emplace_back([&, c] {
      BlockingClient client;
      std::string err;
      if (!client.Connect("127.0.0.1", srv->port(), &err)) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < 3; ++i) {
        QueryFrame q;
        q.cid = static_cast<uint64_t>(c) * 10 + i;
        QueryResultFrame r;
        if (!client.Query(q, &r) || r.cid != q.cid) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  fault::FailPointRegistry::Global().Clear("net.read");
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(srv->SnapStats().inflight, 0u);
}

TEST_F(NetChaosTest, AcceptFaultRefusesOneThenRecovers) {
  NetServer* srv = StartServer();
  std::string error;
  ASSERT_TRUE(fault::FailPointRegistry::Global().Set(
      "net.accept", "nth(1)*error(EMFILE)", &error))
      << error;

  BlockingClient refused;
  // connect() itself succeeds (the kernel completed the handshake); the
  // server closes it immediately on the injected accept failure.
  if (refused.Connect("127.0.0.1", srv->port(), &error)) {
    refused.SendPing();
    Frame frame;
    EXPECT_NE(refused.RecvFrame(&frame), WireStatus::kOk);
  }
  fault::FailPointRegistry::Global().Clear("net.accept");

  BlockingClient ok;
  ASSERT_TRUE(ok.Connect("127.0.0.1", srv->port(), &error)) << error;
  QueryFrame q;
  q.cid = 31;
  QueryResultFrame r;
  ASSERT_TRUE(ok.Query(q, &r));
  EXPECT_EQ(r.cid, 31u);
  EXPECT_GE(srv->SnapStats().accept_errors, 1u);
}

}  // namespace
}  // namespace esd
