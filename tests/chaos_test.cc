// Chaos suite: seeded fault schedules driven through the global fail-point
// registry against the real live/serve stack. The invariants under test are
// the robustness contract of PR 5 — no crash, no torn durable state, typed
// errors, reads keep serving the last published epoch while writes degrade,
// and full top-k parity with a from-scratch build once faults clear.
//
// Every test runs through the ChaosTest fixture, which skips the whole
// suite when fail points are compiled out (ESD_FAULT=OFF) and clears the
// global registry on both sides so tests compose in any order.

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/frozen_index.h"
#include "core/index_builder.h"
#include "core/index_io.h"
#include "core/query_engine.h"
#include "fault/failpoint.h"
#include "gen/barabasi_albert.h"
#include "graph/dynamic_graph.h"
#include "live/live_index.h"
#include "live/recovery.h"
#include "live/snapshot.h"
#include "live/wal.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "serve/query_service.h"
#include "shard/partition.h"
#include "shard/sharded_engine.h"
#include "util/rng.h"

namespace esd {
namespace {

namespace fs = std::filesystem;

using core::FrozenEsdIndex;
using fault::FailPointRegistry;
using live::ApplyResult;
using live::ApplyStatus;
using live::LiveEsdIndex;
using live::LiveOptions;
using live::LiveUpdate;
using live::UpdateKind;
using obs::HealthState;

/// A fresh scratch directory per test, removed on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    dir_ = fs::temp_directory_path() /
           ("esd_chaos_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

 private:
  fs::path dir_;
};

std::vector<LiveUpdate> RandomUpdates(size_t n, graph::VertexId num_vertices,
                                      uint64_t seed) {
  util::Rng rng(seed);
  std::vector<LiveUpdate> updates;
  updates.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    LiveUpdate u;
    u.kind = rng.NextBool(0.65) ? UpdateKind::kInsert : UpdateKind::kDelete;
    u.u = static_cast<graph::VertexId>(rng.NextBounded(num_vertices));
    do {
      u.v = static_cast<graph::VertexId>(rng.NextBounded(num_vertices));
    } while (u.v == u.u);
    updates.push_back(u);
  }
  return updates;
}

/// Applies the same updates to a shadow graph the way the live index does.
void ApplyToShadow(graph::DynamicGraph* g, const LiveUpdate& u) {
  const graph::VertexId hi = std::max(u.u, u.v);
  if (u.kind == UpdateKind::kInsert) {
    while (g->NumVertices() <= hi) g->AddVertex();
    g->InsertEdge(u.u, u.v);
  } else if (hi < g->NumVertices()) {
    g->EraseEdge(u.u, u.v);
  }
}

void ExpectEngineParity(const core::EsdQueryEngine& engine,
                        const graph::Graph& final_graph,
                        const std::string& context) {
  const FrozenEsdIndex want = core::BuildFrozenIndex(final_graph);
  for (uint32_t tau : {1u, 2u, 3u, 5u}) {
    for (uint32_t k : {1u, 8u, 32u, 128u}) {
      EXPECT_EQ(core::Scores(engine.Query(k, tau)),
                core::Scores(want.Query(k, tau)))
          << context << " diverged at k=" << k << " tau=" << tau;
    }
  }
}

/// LiveOptions tuned for chaos: zero-sleep retries and a short heal
/// interval keep the schedules deterministic and the suite fast.
LiveOptions ChaosOptions(const ScratchDir& dir) {
  LiveOptions options;
  options.wal_path = dir.Path("wal.bin");
  options.snapshot_path = dir.Path("snap.bin");
  options.max_vertex_id = 127;
  options.wal_retry.max_attempts = 3;
  options.wal_retry.base_delay = std::chrono::microseconds(0);
  options.heal_retry_interval = std::chrono::milliseconds(2);
  return options;
}

void Arm(const std::string& name, const std::string& spec) {
  std::string error;
  ASSERT_TRUE(FailPointRegistry::Global().Set(name, spec, &error)) << error;
}

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fault::kFailPointsCompiledIn) {
      GTEST_SKIP() << "ESD_FAULT=OFF: fail-point sites compiled out";
    }
    FailPointRegistry::Global().ClearAll();
  }
  void TearDown() override {
    if (fault::kFailPointsCompiledIn) FailPointRegistry::Global().ClearAll();
  }
};

// The acceptance scenario: every WAL append hits ENOSPC. The index must
// flip read-only with a typed error, keep answering reads from the last
// epoch, bounce later writes instantly, and heal once the fault clears.
TEST_F(ChaosTest, WalEnospcDegradesToReadOnlyAndHeals) {
  ScratchDir dir("enospc");
  graph::Graph bootstrap = gen::BarabasiAlbert(60, 3, 11);
  LiveOptions options = ChaosOptions(dir);
  std::string error;
  auto live = LiveEsdIndex::Open(bootstrap, options, &error);
  ASSERT_NE(live, nullptr) << error;

  graph::DynamicGraph shadow(bootstrap);
  const std::vector<LiveUpdate> updates = RandomUpdates(40, 80, 0xBAD);
  for (size_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(live->Apply(updates[i], &error)) << error;
    ApplyToShadow(&shadow, updates[i]);
  }
  ASSERT_TRUE(live->RefreezeNow());
  const graph::Graph pre_fault = shadow.Snapshot();

  Arm("wal.append", "error(ENOSPC)");

  // Transition call: retries exhaust, index flips read-only, typed error.
  const ApplyResult hit = live->ApplyTyped(updates[10]);
  EXPECT_EQ(hit.status, ApplyStatus::kWalError);
  EXPECT_EQ(hit.processed, 0u);
  EXPECT_NE(hit.message.find("read-only"), std::string::npos) << hit.message;

  // Later writes bounce untried (kDegraded), even across the heal interval
  // — the probe itself keeps failing while the fault is armed.
  std::this_thread::sleep_for(options.heal_retry_interval * 2);
  const ApplyResult bounced = live->ApplyTyped(updates[11]);
  EXPECT_EQ(bounced.status, ApplyStatus::kDegraded);
  EXPECT_EQ(bounced.processed, 0u);

  live::LiveStats stats = live->Stats();
  EXPECT_TRUE(stats.read_only);
  EXPECT_EQ(stats.wal_append_failures, 1u);
  EXPECT_GE(stats.wal_retries, 2u);  // two extra attempts on the transition
  EXPECT_GE(stats.degraded_rejections, 1u);
  EXPECT_EQ(live->Health(), HealthState::kReadOnly);

  // Reads never noticed: the last epoch still answers with full parity.
  {
    auto engine = live->CurrentEngine();
    ExpectEngineParity(*engine, pre_fault, "read-only serving");
  }

  // Clear the fault; after the heal interval the next write probes the
  // WAL, succeeds, and the index resumes normal service.
  FailPointRegistry::Global().ClearAll();
  std::this_thread::sleep_for(options.heal_retry_interval * 2);
  const ApplyResult healed = live->ApplyTyped(updates[12]);
  EXPECT_EQ(healed.status, ApplyStatus::kOk) << healed.message;
  ApplyToShadow(&shadow, updates[12]);
  for (size_t i = 13; i < updates.size(); ++i) {
    ASSERT_TRUE(live->Apply(updates[i], &error)) << error;
    ApplyToShadow(&shadow, updates[i]);
  }
  stats = live->Stats();
  EXPECT_FALSE(stats.read_only);
  EXPECT_EQ(stats.heals, 1u);
  EXPECT_EQ(live->Health(), HealthState::kOk);

  ASSERT_TRUE(live->RefreezeNow());
  const graph::Graph final_graph = shadow.Snapshot();
  {
    auto engine = live->CurrentEngine();
    ExpectEngineParity(*engine, final_graph, "healed engine");
  }

  // The WAL that survived the fault window replays clean (rejected writes
  // left no torn bytes behind), and a reopen lands on the same graph.
  live.reset();
  auto reopened = LiveEsdIndex::Open(bootstrap, options, &error);
  ASSERT_NE(reopened, nullptr) << error;
  EXPECT_EQ(reopened->recovery().wal.tail, live::WalTailStatus::kClean);
  {
    auto engine = reopened->CurrentEngine();
    ExpectEngineParity(*engine, final_graph, "reopened engine");
  }
}

// A torn (short) write mid-record must be detected, typed, and repaired by
// truncating back to the record boundary — the retry then lands cleanly.
TEST_F(ChaosTest, ShortWriteIsTypedAndTailRepaired) {
  ScratchDir dir("short_write");
  graph::Graph bootstrap = gen::BarabasiAlbert(50, 3, 5);
  LiveOptions options = ChaosOptions(dir);
  std::string error;
  auto live = LiveEsdIndex::Open(bootstrap, options, &error);
  ASSERT_NE(live, nullptr) << error;

  graph::DynamicGraph shadow(bootstrap);
  const std::vector<LiveUpdate> updates = RandomUpdates(30, 70, 0x70A2);

  // Tear the 5th append's first attempt; the in-call retry must repair the
  // tail and succeed, invisibly to the caller.
  Arm("wal.short_write", "nth(5)");
  for (const LiveUpdate& u : updates) {
    ASSERT_TRUE(live->Apply(u, &error)) << error;
    ApplyToShadow(&shadow, u);
  }
  const live::LiveStats stats = live->Stats();
  EXPECT_GE(stats.wal_retries, 1u);
  EXPECT_EQ(stats.wal_append_failures, 0u);
  EXPECT_FALSE(stats.read_only);
  EXPECT_EQ(stats.applied_seq, updates.size());

  // The repaired log replays clean end to end.
  live.reset();
  auto reopened = LiveEsdIndex::Open(bootstrap, options, &error);
  ASSERT_NE(reopened, nullptr) << error;
  EXPECT_EQ(reopened->recovery().wal.tail, live::WalTailStatus::kClean);
  EXPECT_EQ(reopened->recovery().applied_seq, updates.size());
  {
    auto engine = reopened->CurrentEngine();
    ExpectEngineParity(*engine, shadow.Snapshot(), "post-tear reopen");
  }
}

// Atomic snapshot writes: a failed rename must leave the previous snapshot
// file untouched and readable.
TEST_F(ChaosTest, SnapshotRenameFaultKeepsOldSnapshot) {
  ScratchDir dir("rename");
  const std::string path = dir.Path("snap.bin");
  graph::DynamicGraph g(gen::BarabasiAlbert(30, 2, 3));
  std::string error;
  ASSERT_TRUE(live::SaveGraphSnapshot(path, g, 7, &error)) << error;

  g.InsertEdge(0, 29);
  Arm("snapshot.rename", "error(EACCES)");
  EXPECT_FALSE(live::SaveGraphSnapshot(path, g, 8, &error));
  EXPECT_NE(error.find("rename"), std::string::npos) << error;

  live::GraphSnapshotData data;
  ASSERT_TRUE(live::LoadGraphSnapshot(path, &data, &error)) << error;
  EXPECT_EQ(data.applied_seq, 7u);  // the old snapshot, intact

  FailPointRegistry::Global().ClearAll();
  ASSERT_TRUE(live::SaveGraphSnapshot(path, g, 8, &error)) << error;
  ASSERT_TRUE(live::LoadGraphSnapshot(path, &data, &error)) << error;
  EXPECT_EQ(data.applied_seq, 8u);
}

// Directory-fsync failure after the rename is a warning, not a write
// failure — but it must surface through the counter and the handler.
TEST_F(ChaosTest, DirFsyncFailureSurfacesTypedWarning) {
  ScratchDir dir("dir_fsync");
  std::string seen_dir;
  int seen_errno = 0;
  auto previous = live::SetSnapshotDirFsyncHandler(
      [&](const std::string& d, int code) {
        seen_dir = d;
        seen_errno = code;
      });
  const double before = obs::MetricRegistry::Global().CounterValue(
      "esd_snapshot_dir_fsync_failures");

  Arm("snapshot.dir_fsync", "error(EIO)");
  graph::DynamicGraph g(gen::BarabasiAlbert(20, 2, 3));
  std::string error;
  EXPECT_TRUE(live::SaveGraphSnapshot(dir.Path("snap.bin"), g, 1, &error))
      << error;  // the write itself still succeeds

  EXPECT_EQ(seen_errno, EIO);
  EXPECT_FALSE(seen_dir.empty());
  EXPECT_EQ(obs::MetricRegistry::Global().CounterValue(
                "esd_snapshot_dir_fsync_failures"),
            before + 1.0);
  live::SetSnapshotDirFsyncHandler(std::move(previous));
}

// Refreeze failures trip the circuit breaker; reads keep the previous
// epoch, health reports degraded, and a later success closes the breaker.
TEST_F(ChaosTest, RefreezeBreakerKeepsServingPreviousEpoch) {
  ScratchDir dir("breaker");
  graph::Graph bootstrap = gen::BarabasiAlbert(60, 3, 13);
  LiveOptions options = ChaosOptions(dir);
  options.refreeze_every = 0;  // drive refreezes by hand
  options.refreeze_breaker_threshold = 2;
  options.refreeze_breaker_cooldown = std::chrono::milliseconds(1);
  std::string error;
  auto live = LiveEsdIndex::Open(bootstrap, options, &error);
  ASSERT_NE(live, nullptr) << error;

  graph::DynamicGraph shadow(bootstrap);
  for (const LiveUpdate& u : RandomUpdates(25, 80, 0xF5)) {
    ASSERT_TRUE(live->Apply(u, &error)) << error;
    ApplyToShadow(&shadow, u);
  }
  const uint64_t epoch_before = live->CurrentSnapshot()->epoch;

  Arm("live.refreeze", "error");
  EXPECT_FALSE(live->RefreezeNow());
  EXPECT_FALSE(live->Stats().breaker_open);  // one failure, threshold is 2
  EXPECT_FALSE(live->RefreezeNow());

  live::LiveStats stats = live->Stats();
  EXPECT_TRUE(stats.breaker_open);
  EXPECT_EQ(stats.refreeze_failures, 2u);
  EXPECT_EQ(live->Health(), HealthState::kDegraded);
  // The previous epoch never moved: reads serve the bootstrap image.
  EXPECT_EQ(live->CurrentSnapshot()->epoch, epoch_before);
  {
    auto engine = live->CurrentEngine();
    ExpectEngineParity(*engine, bootstrap, "stale epoch under open breaker");
  }

  FailPointRegistry::Global().ClearAll();
  EXPECT_TRUE(live->RefreezeNow());  // success closes the breaker
  stats = live->Stats();
  EXPECT_FALSE(stats.breaker_open);
  EXPECT_EQ(live->Health(), HealthState::kOk);
  EXPECT_GT(live->CurrentSnapshot()->epoch, epoch_before);
  {
    auto engine = live->CurrentEngine();
    ExpectEngineParity(*engine, shadow.Snapshot(), "post-breaker epoch");
  }
}

// serve.admission sheds with the same typed status as a full queue, and a
// serve.worker stall expires deadlines without wedging the service.
TEST_F(ChaosTest, AdmissionShedAndDeadlineExpiryUnderWorkerStall) {
  graph::Graph g = gen::BarabasiAlbert(80, 3, 17);
  const FrozenEsdIndex index = core::BuildFrozenIndex(g);

  {
    serve::EsdQueryService::Options options;
    options.num_threads = 1;
    serve::EsdQueryService service(index, options);
    Arm("serve.admission", "error");
    serve::QueryRequest rq;
    rq.k = 8;
    rq.tau = 2;
    EXPECT_EQ(service.Query(rq).status,
              serve::ResponseStatus::kRejectedQueueFull);
    FailPointRegistry::Global().ClearAll();
    EXPECT_EQ(service.Query(rq).status, serve::ResponseStatus::kOk);
  }

  {
    // Stall every worker batch 20ms; requests carrying a 1ms deadline must
    // come back kDeadlineMissed while undeadlined ones still complete.
    Arm("serve.worker", "delay(20)");
    serve::EsdQueryService::Options options;
    options.num_threads = 1;
    options.max_batch = 1;
    serve::EsdQueryService service(index, options);
    serve::QueryRequest tight;
    tight.k = 8;
    tight.tau = 2;
    tight.deadline_us = 1000;
    serve::QueryRequest relaxed = tight;
    relaxed.deadline_us = 0;
    std::vector<std::future<serve::QueryResponse>> tight_futures;
    for (int i = 0; i < 4; ++i) tight_futures.push_back(service.Submit(tight));
    std::future<serve::QueryResponse> relaxed_future = service.Submit(relaxed);
    size_t missed = 0;
    for (auto& f : tight_futures) {
      const serve::QueryResponse r = f.get();
      if (r.status == serve::ResponseStatus::kDeadlineMissed) ++missed;
    }
    // The head-of-line request may beat its deadline; everything queued
    // behind the first 20ms stall cannot.
    EXPECT_GE(missed, 3u);
    EXPECT_EQ(relaxed_future.get().status, serve::ResponseStatus::kOk);
  }
}

// A queue-full bounce under a stalled worker: with the single worker held
// by a delay, a tiny queue overflows and sheds typed.
TEST_F(ChaosTest, QueueFullShedsWhileWorkerStalled) {
  graph::Graph g = gen::BarabasiAlbert(60, 3, 19);
  const FrozenEsdIndex index = core::BuildFrozenIndex(g);
  Arm("serve.worker", "delay(30)");
  serve::EsdQueryService::Options options;
  options.num_threads = 1;
  options.max_batch = 1;
  options.max_queue = 2;
  serve::EsdQueryService service(index, options);

  serve::QueryRequest rq;
  rq.k = 4;
  rq.tau = 1;
  std::vector<std::future<serve::QueryResponse>> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(service.Submit(rq));
  size_t shed = 0;
  size_t served = 0;
  for (auto& f : futures) {
    const serve::QueryResponse r = f.get();
    if (r.status == serve::ResponseStatus::kRejectedQueueFull) ++shed;
    if (r.status == serve::ResponseStatus::kOk) ++served;
  }
  EXPECT_GE(shed, 1u);     // the 2-deep queue overflowed at least once
  EXPECT_GE(served, 2u);   // and the service still drained real work
  EXPECT_EQ(shed + served, futures.size());
}

// Recovery replay faults are typed and retryable: the same state recovers
// cleanly once the fault clears.
TEST_F(ChaosTest, RecoveryFaultIsTypedAndRetryable) {
  ScratchDir dir("recovery");
  graph::Graph bootstrap = gen::BarabasiAlbert(40, 2, 23);
  LiveOptions options = ChaosOptions(dir);
  std::string error;
  {
    auto live = LiveEsdIndex::Open(bootstrap, options, &error);
    ASSERT_NE(live, nullptr) << error;
    for (const LiveUpdate& u : RandomUpdates(20, 60, 0x4EC)) {
      ASSERT_TRUE(live->Apply(u, &error)) << error;
    }
  }

  live::RecoveryOptions ropts;
  ropts.wal_path = options.wal_path;
  ropts.snapshot_path = options.snapshot_path;

  Arm("recovery.replay", "error(EIO)");
  live::RecoveredState state;
  EXPECT_FALSE(live::Recover(bootstrap, ropts, &state, &error));
  EXPECT_NE(error.find("recovery replay failed"), std::string::npos) << error;

  FailPointRegistry::Global().ClearAll();
  error.clear();
  ASSERT_TRUE(live::Recover(bootstrap, ropts, &state, &error)) << error;
  EXPECT_EQ(state.applied_seq, 20u);
}

// index_io save/load fail points return typed errors naming the path and
// never leave a corrupt artifact behind.
TEST_F(ChaosTest, IndexIoInjectionIsTypedAndClean) {
  ScratchDir dir("index_io");
  const std::string path = dir.Path("frozen.bin");
  graph::Graph g = gen::BarabasiAlbert(30, 2, 29);
  const FrozenEsdIndex index = core::BuildFrozenIndex(g);
  std::string error;

  Arm("index_io.save", "error(ENOSPC)");
  EXPECT_FALSE(core::SaveFrozenIndex(index, path, &error));
  EXPECT_NE(error.find(path), std::string::npos) << error;
  EXPECT_FALSE(fs::exists(path));  // injected before any bytes were written

  FailPointRegistry::Global().ClearAll();
  ASSERT_TRUE(core::SaveFrozenIndex(index, path, &error)) << error;

  Arm("index_io.load", "error(EIO)");
  FrozenEsdIndex loaded;
  EXPECT_FALSE(core::LoadFrozenIndex(path, &loaded, &error));
  EXPECT_NE(error.find(path), std::string::npos) << error;

  FailPointRegistry::Global().ClearAll();
  ASSERT_TRUE(core::LoadFrozenIndex(path, &loaded, &error)) << error;
  ExpectEngineParity(loaded, g, "reloaded frozen index");
}

// The randomized schedule: probabilistic WAL, fsync, and refreeze faults
// under a fixed seed. Writers retry/degrade/heal their way through; at the
// end — faults cleared — the index must hold exact parity with the shadow
// both in memory and across a reopen, with a clean WAL tail.
TEST_F(ChaosTest, RandomizedFaultScheduleKeepsInvariants) {
  ScratchDir dir("randomized");
  graph::Graph bootstrap = gen::BarabasiAlbert(70, 3, 31);
  LiveOptions options = ChaosOptions(dir);
  options.refreeze_every = 40;
  options.refreeze_breaker_cooldown = std::chrono::milliseconds(1);
  std::string error;
  auto live = LiveEsdIndex::Open(bootstrap, options, &error);
  ASSERT_NE(live, nullptr) << error;

  auto& global = FailPointRegistry::Global();
  global.SetSeed(0xC0FFEE);
  ASSERT_TRUE(global.Configure(
      "wal.append=2in7;wal.fsync=1in11;live.refreeze=1in5", &error))
      << error;

  graph::DynamicGraph shadow(bootstrap);
  const std::vector<LiveUpdate> updates = RandomUpdates(300, 90, 0x5EED);
  uint64_t rejected = 0;
  for (const LiveUpdate& u : updates) {
    // Drive each update to acceptance. processed==1 means it entered the
    // in-memory index (even when a later fsync fault flipped the call to
    // kWalError — the append itself landed), so the shadow follows
    // `processed`, not the status.
    bool applied = false;
    for (int attempt = 0; attempt < 10000 && !applied; ++attempt) {
      const ApplyResult r = live->ApplyTyped(u);
      applied = r.processed == 1;
      if (!applied) {
        ++rejected;
        ASSERT_TRUE(r.status == ApplyStatus::kWalError ||
                    r.status == ApplyStatus::kDegraded)
            << static_cast<int>(r.status) << " " << r.message;
        ASSERT_FALSE(r.message.empty());
        // Let the heal-probe interval elapse so a retry can go through.
        std::this_thread::sleep_for(options.heal_retry_interval);
      }
    }
    ASSERT_TRUE(applied) << "update never accepted; schedule wedged";
    ApplyToShadow(&shadow, u);
  }
  EXPECT_GT(rejected, 0u) << "schedule injected no faults; tighten specs";

  // Faults off: the index must heal, refreeze, and match the shadow.
  global.ClearAll();
  std::this_thread::sleep_for(options.heal_retry_interval);
  LiveUpdate extra;
  extra.kind = UpdateKind::kInsert;
  extra.u = 0;
  extra.v = 89;
  ASSERT_TRUE(live->Apply(extra, &error)) << error;
  ApplyToShadow(&shadow, extra);
  ASSERT_TRUE(live->RefreezeNow());

  const live::LiveStats stats = live->Stats();
  EXPECT_EQ(stats.applied_seq, updates.size() + 1);
  EXPECT_FALSE(stats.read_only);
  EXPECT_FALSE(stats.breaker_open);
  EXPECT_GT(stats.wal_retries, 0u);

  const graph::Graph final_graph = shadow.Snapshot();
  {
    auto engine = live->CurrentEngine();
    ExpectEngineParity(*engine, final_graph, "post-chaos engine");
  }

  // Durable state survived the whole schedule: clean tail, same graph.
  live.reset();
  auto reopened = LiveEsdIndex::Open(bootstrap, options, &error);
  ASSERT_NE(reopened, nullptr) << error;
  EXPECT_EQ(reopened->recovery().wal.tail, live::WalTailStatus::kClean);
  EXPECT_EQ(reopened->recovery().applied_seq, updates.size() + 1);
  {
    auto engine = reopened->CurrentEngine();
    ExpectEngineParity(*engine, final_graph, "post-chaos reopen");
  }
}

// ---- Sharded fleet under fault schedules -----------------------------------

/// ShardedOptions tuned like ChaosOptions: zero-sleep retries, short heal
/// interval, and a fast stall breaker so schedules stay deterministic.
shard::ShardedOptions ShardChaosOptions(const ScratchDir& dir,
                                        uint32_t num_shards) {
  shard::ShardedOptions options;
  options.num_shards = num_shards;
  options.dir = dir.Path("fleet");
  options.max_vertex_id = 127;
  options.wal_retry.max_attempts = 3;
  options.wal_retry.base_delay = std::chrono::microseconds(0);
  options.heal_retry_interval = std::chrono::milliseconds(2);
  options.stall_threshold = std::chrono::microseconds(5000);
  options.stall_breaker_trips = 1;
  // Long enough that assertions made right after a trip can't race the
  // lazy re-close; the heal phase sleeps past it explicitly.
  options.stall_breaker_cooldown = std::chrono::milliseconds(300);
  return options;
}

constexpr auto kFarDeadline = std::chrono::steady_clock::time_point::max();

// The PR's acceptance scenario. One shard's WAL hits ENOSPC (read-only,
// falls behind the fleet watermark), another's scatter probe stalls until
// the query stall breaker quarantines it. Strict queries must fail typed,
// partial queries must answer correctly over the healthy remainder within
// their deadline, and after the faults clear the healed fleet must hold
// exact edge-for-edge parity with an unsharded live index that replayed
// the identical history.
TEST_F(ChaosTest, ShardOutageServesPartialThenHealsToExactParity) {
  ScratchDir dir("shard_outage");
  graph::Graph bootstrap = gen::BarabasiAlbert(60, 3, 11);
  const uint32_t num_shards = 3;
  std::string error;
  auto fleet = shard::ShardedQueryEngine::Open(
      bootstrap, ShardChaosOptions(dir, num_shards), &error);
  ASSERT_NE(fleet, nullptr) << error;

  // The unsharded reference follows the same update history, so edge-id
  // slots — and therefore the exact canonical answers — line up.
  LiveOptions ref_options = ChaosOptions(dir);
  auto reference = LiveEsdIndex::Open(bootstrap, ref_options, &error);
  ASSERT_NE(reference, nullptr) << error;

  const std::vector<LiveUpdate> updates = RandomUpdates(30, 100, 0x5A4D);
  const std::span<const LiveUpdate> first(updates.data(), 10);
  ASSERT_EQ(fleet->ApplyBatchTyped(first).status, ApplyStatus::kOk);
  ASSERT_EQ(reference->ApplyBatch(first, &error), first.size()) << error;
  ASSERT_TRUE(fleet->RefreezeAll());
  ASSERT_TRUE(reference->RefreezeNow());
  {
    const serve::ShardedOutcome all_ok = fleet->Execute(64, 2, true,
                                                        kFarDeadline);
    EXPECT_EQ(all_ok.result, reference->CurrentEngine()->Query(64, 2));
    EXPECT_EQ(all_ok.shards.ok, num_shards);
  }

  // Fault 1: shard 0's WAL dies. The broadcast write still succeeds on the
  // other shards (durable on >= 1 replica), but shard 0 flips read-only
  // and falls behind the fleet watermark — excluded as degraded.
  Arm("wal.append.shard0", "error(ENOSPC)");
  const std::span<const LiveUpdate> second(updates.data() + 10, 10);
  const ApplyResult partial_write = fleet->ApplyBatchTyped(second);
  EXPECT_EQ(partial_write.status, ApplyStatus::kOk) << partial_write.message;
  EXPECT_NE(partial_write.message.find("behind"), std::string::npos)
      << partial_write.message;
  ASSERT_EQ(reference->ApplyBatch(second, &error), second.size()) << error;
  EXPECT_EQ(fleet->Counts().degraded, 1u);

  // Fault 2: shard 1's scatter probe stalls 30ms. The first query pays the
  // delay (the cost is already sunk) and the stall breaker trips; from the
  // next round shard 1 is down and its fail point is no longer evaluated.
  Arm("shard.query.1", "delay(30)");
  (void)fleet->Execute(8, 2, true, kFarDeadline);
  {
    const serve::ShardCounts counts = fleet->Counts();
    EXPECT_EQ(counts.degraded, 1u);  // shard 0: read-only + behind
    EXPECT_EQ(counts.down, 1u);      // shard 1: stall breaker
    EXPECT_EQ(counts.ok, 1u);        // shard 2 carries the fleet
  }

  serve::EsdQueryService::Options sopts;
  sopts.num_threads = 1;
  serve::EsdQueryService service(*fleet, sopts);

  // Strict: typed rejection, no partial answer smuggled through.
  serve::QueryRequest rq;
  rq.k = 64;
  rq.tau = 2;
  rq.strict = true;
  rq.deadline_us = 200000;
  EXPECT_EQ(service.Query(rq).status,
            serve::ResponseStatus::kShardsUnavailable);

  // Partial: correct answer over the healthy remainder, within deadline.
  // Shard 2 serves its pre-fault epoch, so the expected answer is the
  // reference's pre-fault image restricted to shard 2's edges. (Padding is
  // off: the full-k zero-fill would legitimately differ across epochs.)
  rq.strict = false;
  const serve::QueryResponse partial = service.Query(rq);
  ASSERT_EQ(partial.status, serve::ResponseStatus::kOk);
  EXPECT_EQ(partial.shards_ok, 1u);
  EXPECT_EQ(partial.shards_degraded, 1u);
  EXPECT_EQ(partial.shards_down, 1u);
  {
    const serve::ShardedOutcome got =
        fleet->Execute(64, 2, /*pad_with_zero_edges=*/false, kFarDeadline);
    const auto owns2 = shard::OwnsFilter(2, num_shards);
    core::TopKResult want;
    const FrozenEsdIndex pre_fault =
        core::BuildFrozenIndex([&] {
          graph::DynamicGraph shadow(bootstrap);
          for (const LiveUpdate& u : first) ApplyToShadow(&shadow, u);
          return shadow.Snapshot();
        }());
    for (const core::ScoredEdge& se : pre_fault.Query(1u << 20, 2, false)) {
      if (owns2(se.edge) && want.size() < 64) want.push_back(se);
    }
    EXPECT_EQ(core::Scores(got.result), core::Scores(want));
  }

  // Heal: clear the faults, let the stall cooldown and heal interval
  // elapse, replay the journal into shard 0, and quiesce everything.
  FailPointRegistry::Global().ClearAll();
  std::this_thread::sleep_for(std::chrono::milliseconds(350));
  fleet->CatchUp();
  const std::span<const LiveUpdate> third(updates.data() + 20, 10);
  ASSERT_EQ(fleet->ApplyBatchTyped(third).status, ApplyStatus::kOk);
  ASSERT_EQ(reference->ApplyBatch(third, &error), third.size()) << error;
  ASSERT_TRUE(fleet->RefreezeAll());
  ASSERT_TRUE(reference->RefreezeNow());

  EXPECT_EQ(fleet->Counts().ok, num_shards);
  EXPECT_EQ(fleet->Health(), HealthState::kOk);
  bool replayed = false;
  for (const shard::ShardStatus& st : fleet->Status()) {
    EXPECT_EQ(st.state, "ok") << "shard " << st.id << ": " << st.down_reason;
    EXPECT_EQ(st.journal_lag, 0u);
    replayed = replayed || st.replayed > 0;
  }
  EXPECT_TRUE(replayed) << "shard 0 never replayed the journaled writes";

  // Exact parity with the unsharded reference, padding included.
  const auto healed_ref = reference->CurrentEngine();
  for (uint32_t tau : {1u, 2u, 3u, 5u}) {
    for (uint32_t k : {1u, 8u, 64u, 256u}) {
      const serve::ShardedOutcome got = fleet->Execute(k, tau, true,
                                                       kFarDeadline);
      EXPECT_EQ(got.result, healed_ref->Query(k, tau))
          << "healed fleet diverged at k=" << k << " tau=" << tau;
    }
  }
  EXPECT_EQ(service.Query(rq).status, serve::ResponseStatus::kOk);
}

// The stall breaker re-admits a shard after its cooldown: trip it, verify
// queries skip it (fail point no longer evaluated), then — fault cleared,
// cooldown elapsed — the shard rejoins with full-fleet parity.
TEST_F(ChaosTest, ShardStallBreakerCoolsDownAndRejoins) {
  graph::Graph g = gen::BarabasiAlbert(80, 3, 41);
  shard::ShardedOptions options;
  options.num_shards = 3;
  options.stall_threshold = std::chrono::microseconds(5000);
  options.stall_breaker_trips = 1;
  options.stall_breaker_cooldown = std::chrono::milliseconds(200);
  auto fleet = shard::ShardedQueryEngine::BuildStatic(g, options);
  ASSERT_NE(fleet, nullptr);
  const FrozenEsdIndex full = core::BuildFrozenIndex(g);

  Arm("shard.query.2", "delay(20)");
  (void)fleet->Execute(8, 2, true, kFarDeadline);  // pays the delay, trips
  EXPECT_EQ(fleet->Counts().down, 1u);

  // Tripped: the shard is skipped without evaluating its fail point, so
  // this query is fast even though the delay is still armed.
  const auto t0 = std::chrono::steady_clock::now();
  const serve::ShardedOutcome skipped = fleet->Execute(8, 2, true,
                                                       kFarDeadline);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(skipped.shards.down, 1u);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            15);
  const uint64_t hits_while_tripped =
      FailPointRegistry::Global().HitCount("shard.query.2");
  (void)fleet->Execute(8, 2, true, kFarDeadline);
  EXPECT_EQ(FailPointRegistry::Global().HitCount("shard.query.2"),
            hits_while_tripped);

  FailPointRegistry::Global().ClearAll();
  std::this_thread::sleep_for(options.stall_breaker_cooldown +
                              std::chrono::milliseconds(10));
  const serve::ShardedOutcome healed = fleet->Execute(64, 2, true,
                                                      kFarDeadline);
  EXPECT_EQ(healed.shards.ok, 3u);
  EXPECT_EQ(healed.result, full.Query(64, 2));
}

// Satellite regression: a request admitted while a shard heal probe is in
// flight must get its typed answer immediately — classification reads
// atomics, never the write path's mutex — not stall behind the probe.
TEST_F(ChaosTest, ShardQueryDuringInFlightHealProbeAnswersTypedNotStalls) {
  ScratchDir dir("heal_probe");
  graph::Graph bootstrap = gen::BarabasiAlbert(50, 3, 53);
  std::string error;
  auto fleet = shard::ShardedQueryEngine::Open(
      bootstrap, ShardChaosOptions(dir, 2), &error);
  ASSERT_NE(fleet, nullptr) << error;

  // Knock shard 0 read-only and behind the watermark.
  const std::vector<LiveUpdate> updates = RandomUpdates(8, 90, 0x9EA1);
  Arm("wal.append.shard0", "error(ENOSPC)");
  const ApplyResult r =
      fleet->ApplyBatchTyped({updates.data(), updates.size()});
  EXPECT_EQ(r.status, ApplyStatus::kOk) << r.message;
  EXPECT_EQ(fleet->Counts().degraded, 1u);

  // Re-arm as a 150ms-per-append stall and start a heal attempt in the
  // background: CatchUp holds the write path inside shard 0's WAL probe
  // and replay for the whole delay window.
  FailPointRegistry::Global().ClearAll();
  Arm("wal.append.shard0", "delay(150)");
  std::this_thread::sleep_for(std::chrono::milliseconds(5));  // heal interval
  std::thread healer([&] { fleet->CatchUp(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));  // probe armed

  serve::EsdQueryService::Options sopts;
  sopts.num_threads = 1;
  serve::EsdQueryService service(*fleet, sopts);
  serve::QueryRequest rq;
  rq.k = 8;
  rq.tau = 2;
  rq.deadline_us = 50000;

  // Strict: the shard is still behind while its probe sleeps, so the
  // typed rejection must come back well inside the probe's 250ms.
  rq.strict = true;
  const auto t0 = std::chrono::steady_clock::now();
  const serve::QueryResponse strict_resp = service.Query(rq);
  const auto strict_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_EQ(strict_resp.status, serve::ResponseStatus::kShardsUnavailable);
  EXPECT_LT(strict_ms.count(), 150) << "strict rejection stalled on the heal";

  // Partial: served from shard 1 inside the deadline, same non-blocking
  // guarantee.
  rq.strict = false;
  const auto t1 = std::chrono::steady_clock::now();
  const serve::QueryResponse partial = service.Query(rq);
  const auto partial_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - t1);
  EXPECT_EQ(partial.status, serve::ResponseStatus::kOk);
  EXPECT_EQ(partial.shards_degraded, 1u);
  EXPECT_LT(partial_ms.count(), 150) << "partial answer stalled on the heal";

  healer.join();
  FailPointRegistry::Global().ClearAll();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  fleet->CatchUp();
  EXPECT_EQ(fleet->Counts().ok, 2u);
  rq.strict = true;
  EXPECT_EQ(service.Query(rq).status, serve::ResponseStatus::kOk);
}

}  // namespace
}  // namespace esd
