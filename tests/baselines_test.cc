#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/betweenness.h"
#include "baselines/common_neighbor.h"
#include "baselines/vertex_diversity.h"
#include "gen/erdos_renyi.h"
#include "graph/builder.h"
#include "graph/connectivity.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace esd::baselines {
namespace {

using graph::Edge;
using graph::EdgeId;
using graph::Graph;
using graph::GraphBuilder;
using graph::VertexId;

Graph PathGraph(VertexId n) {
  GraphBuilder b(n);
  for (VertexId i = 0; i + 1 < n; ++i) b.AddEdge(i, i + 1);
  return b.Build();
}

// ---------------------------------------------------------------------------
// Common neighbors (CN)
// ---------------------------------------------------------------------------

TEST(CommonNeighborTest, CountsMatchDirectIntersection) {
  Graph g = gen::ErdosRenyiGnp(40, 0.25, 1);
  std::vector<uint32_t> counts = AllCommonNeighborCounts(g);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const Edge& uv = g.EdgeAt(e);
    EXPECT_EQ(counts[e], graph::CountCommonNeighbors(g, uv.u, uv.v));
  }
}

TEST(CommonNeighborTest, TopKSortedAndCorrect) {
  Graph g = gen::ErdosRenyiGnp(40, 0.3, 2);
  core::TopKResult top = TopKByCommonNeighbors(g, 10);
  ASSERT_EQ(top.size(), 10u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].score, top[i].score);
  }
  // Nothing outside the top-k beats the k-th value.
  std::vector<uint32_t> counts = AllCommonNeighborCounts(g);
  uint32_t kth = top.back().score;
  uint32_t better = 0;
  for (uint32_t c : counts) better += c > kth;
  EXPECT_LE(better, 9u);
}

// ---------------------------------------------------------------------------
// Edge betweenness (BT)
// ---------------------------------------------------------------------------

TEST(BetweennessTest, PathGraphClosedForm) {
  // On a path 0-1-2-3-4, edge (i,i+1) lies on (i+1)*(n-1-i) shortest paths.
  Graph g = PathGraph(5);
  std::vector<double> bt = EdgeBetweenness(g);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const Edge& uv = g.EdgeAt(e);
    double want = static_cast<double>(uv.u + 1) * (5 - 1 - uv.u);
    EXPECT_DOUBLE_EQ(bt[e], want) << "edge " << uv.u << "-" << uv.v;
  }
}

TEST(BetweennessTest, StarGraphUniform) {
  GraphBuilder b(6);
  for (VertexId i = 1; i < 6; ++i) b.AddEdge(0, i);
  Graph g = b.Build();
  std::vector<double> bt = EdgeBetweenness(g);
  // Each spoke carries its leaf's paths to everything: 1 + 4 = ... each
  // leaf-pair path uses two spokes; leaf-hub uses one. Per spoke:
  // 1 (to hub) + 4 (to other leaves) = 5.
  for (double x : bt) EXPECT_DOUBLE_EQ(x, 5.0);
}

TEST(BetweennessTest, BridgeDominatesBarbell) {
  // Two K5's joined by one edge: the bridge carries all 25 cross pairs.
  GraphBuilder b(10);
  for (VertexId i = 0; i < 5; ++i) {
    for (VertexId j = i + 1; j < 5; ++j) {
      b.AddEdge(i, j);
      b.AddEdge(i + 5, j + 5);
    }
  }
  b.AddEdge(0, 5);
  Graph g = b.Build();
  BetweennessTopK top = TopKByBetweenness(g, 1);
  ASSERT_EQ(top.edges.size(), 1u);
  EXPECT_EQ(top.edges[0].edge, graph::MakeEdge(0, 5));
  EXPECT_DOUBLE_EQ(top.values[0], 25.0);
}

TEST(BetweennessTest, TotalMassMatchesPairDistancesOnConnectedGraph) {
  // Sum of edge betweenness over all edges equals the sum over vertex pairs
  // of d(s,t) (each unit of every shortest path is spread across its edges).
  Graph g = gen::ErdosRenyiGnp(20, 0.3, 5);
  if (!graph::IsConnected(g)) GTEST_SKIP() << "sampled graph disconnected";
  std::vector<double> bt = EdgeBetweenness(g);
  double mass = 0;
  for (double x : bt) mass += x;
  // BFS all pairs.
  double dist_sum = 0;
  for (VertexId s = 0; s < g.NumVertices(); ++s) {
    std::vector<int> dist(g.NumVertices(), -1);
    std::vector<VertexId> q{s};
    dist[s] = 0;
    for (size_t h = 0; h < q.size(); ++h) {
      VertexId v = q[h];
      for (VertexId w : g.Neighbors(v)) {
        if (dist[w] < 0) {
          dist[w] = dist[v] + 1;
          q.push_back(w);
        }
      }
    }
    for (VertexId t = s + 1; t < g.NumVertices(); ++t) dist_sum += dist[t];
  }
  EXPECT_NEAR(mass, dist_sum, 1e-6 * dist_sum);
}

TEST(BetweennessTest, SampledApproximationCloseToExact) {
  Graph g = gen::ErdosRenyiGnp(60, 0.15, 7);
  std::vector<double> exact = EdgeBetweenness(g);
  std::vector<double> approx = ApproxEdgeBetweenness(g, 30, 3);
  // Rank correlation proxy: the top exact edge should be near the top of
  // the approximation.
  EdgeId best = static_cast<EdgeId>(
      std::max_element(exact.begin(), exact.end()) - exact.begin());
  std::vector<double> sorted = approx;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  double rank_value = approx[best];
  size_t rank = static_cast<size_t>(
      std::lower_bound(sorted.begin(), sorted.end(), rank_value,
                       std::greater<>()) -
      sorted.begin());
  EXPECT_LT(rank, g.NumEdges() / 5);
}

TEST(BetweennessTest, SampledWithAllSourcesIsExact) {
  Graph g = gen::ErdosRenyiGnp(25, 0.3, 9);
  std::vector<double> exact = EdgeBetweenness(g);
  std::vector<double> full = ApproxEdgeBetweenness(g, 25, 1);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    EXPECT_NEAR(exact[e], full[e], 1e-9);
  }
}

// ---------------------------------------------------------------------------
// Vertex structural diversity
// ---------------------------------------------------------------------------

TEST(VertexDiversityTest, StarCenterCountsLeaves) {
  GraphBuilder b(6);
  for (VertexId i = 1; i < 6; ++i) b.AddEdge(0, i);
  Graph g = b.Build();
  EXPECT_EQ(VertexScore(g, 0, 1), 5u);  // five isolated neighbors
  EXPECT_EQ(VertexScore(g, 0, 2), 0u);
  EXPECT_EQ(VertexScore(g, 1, 1), 1u);  // neighbor {0}
}

TEST(VertexDiversityTest, TriangleNeighborhoodsConnected) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(0, 2);
  Graph g = b.Build();
  for (VertexId v = 0; v < 3; ++v) {
    EXPECT_EQ(VertexScore(g, v, 1), 1u);
    EXPECT_EQ(VertexScore(g, v, 2), 1u);
  }
}

TEST(VertexDiversityTest, TopKOrderingAndScores) {
  Graph g = gen::ErdosRenyiGnp(50, 0.15, 11);
  std::vector<ScoredVertex> top = TopKVertexDiversity(g, 10, 1);
  ASSERT_EQ(top.size(), 10u);
  std::vector<uint32_t> all = AllVertexScores(g, 1);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].score, top[i].score);
  }
  for (const ScoredVertex& sv : top) EXPECT_EQ(sv.score, all[sv.v]);
}

}  // namespace
}  // namespace esd::baselines
