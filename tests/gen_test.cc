#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cliques/triangle.h"
#include "gen/barabasi_albert.h"
#include "gen/collaboration.h"
#include "gen/datasets.h"
#include "gen/erdos_renyi.h"
#include "gen/holme_kim.h"
#include "gen/planted_partition.h"
#include "gen/rmat.h"
#include "gen/watts_strogatz.h"
#include "gen/word_association.h"
#include "graph/connectivity.h"

namespace esd::gen {
namespace {

using graph::Edge;
using graph::Graph;
using graph::VertexId;

// ---------------------------------------------------------------------------
// Erdős–Rényi
// ---------------------------------------------------------------------------

TEST(ErdosRenyiTest, GnmExactEdgeCount) {
  Graph g = ErdosRenyiGnm(100, 500, 1);
  EXPECT_EQ(g.NumVertices(), 100u);
  EXPECT_EQ(g.NumEdges(), 500u);
}

TEST(ErdosRenyiTest, GnmClampsToMaxEdges) {
  Graph g = ErdosRenyiGnm(5, 1000, 2);
  EXPECT_EQ(g.NumEdges(), 10u);
}

TEST(ErdosRenyiTest, GnpEdgeCountNearExpectation) {
  Graph g = ErdosRenyiGnp(100, 0.2, 3);
  double expect = 0.2 * 100 * 99 / 2;
  EXPECT_NEAR(static_cast<double>(g.NumEdges()), expect, expect * 0.25);
}

TEST(ErdosRenyiTest, DeterministicBySeed) {
  EXPECT_EQ(ErdosRenyiGnm(50, 200, 7).Edges(),
            ErdosRenyiGnm(50, 200, 7).Edges());
  EXPECT_NE(ErdosRenyiGnm(50, 200, 7).Edges(),
            ErdosRenyiGnm(50, 200, 8).Edges());
}

// ---------------------------------------------------------------------------
// Barabási–Albert / Holme–Kim
// ---------------------------------------------------------------------------

TEST(BarabasiAlbertTest, SizeAndConnectivity) {
  Graph g = BarabasiAlbert(500, 3, 11);
  EXPECT_EQ(g.NumVertices(), 500u);
  // m = seed clique + 3 per additional vertex.
  EXPECT_EQ(g.NumEdges(), 6u + (500u - 4) * 3);
  EXPECT_TRUE(graph::IsConnected(g));
}

TEST(BarabasiAlbertTest, ProducesHubs) {
  Graph g = BarabasiAlbert(2000, 2, 13);
  // Preferential attachment: max degree far above the mean (4).
  EXPECT_GT(g.MaxDegree(), 40u);
}

TEST(BarabasiAlbertTest, DegenerateInputs) {
  EXPECT_EQ(BarabasiAlbert(0, 3, 1).NumVertices(), 0u);
  EXPECT_EQ(BarabasiAlbert(10, 0, 1).NumEdges(), 0u);
}

TEST(HolmeKimTest, TriadStepRaisesClustering) {
  Graph flat = BarabasiAlbert(1500, 4, 17);
  Graph clustered = HolmeKim(1500, 4, 0.8, 17);
  EXPECT_GT(cliques::GlobalClusteringCoefficient(clustered),
            2 * cliques::GlobalClusteringCoefficient(flat));
}

TEST(HolmeKimTest, ConnectedAndSized) {
  Graph g = HolmeKim(800, 5, 0.5, 19);
  EXPECT_EQ(g.NumVertices(), 800u);
  EXPECT_TRUE(graph::IsConnected(g));
  EXPECT_GT(g.NumEdges(), 800u * 4);
}

// ---------------------------------------------------------------------------
// Watts–Strogatz
// ---------------------------------------------------------------------------

TEST(WattsStrogatzTest, LatticeWithoutRewiring) {
  Graph g = WattsStrogatz(50, 4, 0.0, 23);
  EXPECT_EQ(g.NumEdges(), 100u);  // n * k/2
  for (VertexId v = 0; v < 50; ++v) EXPECT_EQ(g.Degree(v), 4u);
}

TEST(WattsStrogatzTest, RewiringKeepsEdgeCount) {
  Graph g = WattsStrogatz(100, 6, 0.3, 29);
  EXPECT_EQ(g.NumEdges(), 300u);
}

TEST(WattsStrogatzTest, FullRewireBreaksLattice) {
  Graph g = WattsStrogatz(200, 4, 1.0, 31);
  // A pure ring lattice has clustering 0.5 at k=4; heavy rewiring destroys
  // most of it.
  EXPECT_LT(cliques::GlobalClusteringCoefficient(g), 0.2);
}

// ---------------------------------------------------------------------------
// R-MAT
// ---------------------------------------------------------------------------

TEST(RmatTest, SizeAndSkew) {
  RmatParams p;
  p.scale = 12;
  p.edge_factor = 4.0;
  Graph g = Rmat(p, 37);
  EXPECT_EQ(g.NumVertices(), 4096u);
  EXPECT_GT(g.NumEdges(), 10000u);
  // Skewed parameters concentrate edges on low-id vertices.
  EXPECT_GT(g.MaxDegree(), 100u);
}

TEST(RmatTest, DeterministicBySeed) {
  RmatParams p;
  p.scale = 10;
  EXPECT_EQ(Rmat(p, 5).Edges(), Rmat(p, 5).Edges());
}

// ---------------------------------------------------------------------------
// Planted partition
// ---------------------------------------------------------------------------

TEST(PlantedPartitionTest, CommunityLabelsAndDensities) {
  PlantedPartitionResult r = PlantedPartition(4, 30, 0.5, 0.01, 41);
  EXPECT_EQ(r.graph.NumVertices(), 120u);
  EXPECT_EQ(r.community[0], 0u);
  EXPECT_EQ(r.community[119], 3u);
  uint64_t intra = 0, inter = 0;
  for (const Edge& e : r.graph.Edges()) {
    (r.community[e.u] == r.community[e.v] ? intra : inter) += 1;
  }
  // 4 * C(30,2) * 0.5 ≈ 870 intra; C(120,2)-pairs inter * 0.01 ≈ 54.
  EXPECT_GT(intra, 700u);
  EXPECT_LT(inter, 150u);
}

// ---------------------------------------------------------------------------
// Collaboration (DBLP-like)
// ---------------------------------------------------------------------------

TEST(CollaborationTest, ShapeAndAnnotations) {
  CollaborationParams p;
  p.num_authors = 3000;
  p.num_papers = 4000;
  p.num_communities = 10;
  CollaborationGraph c = GenerateCollaboration(p, 43);
  EXPECT_EQ(c.graph.NumVertices(), 3000u);
  EXPECT_EQ(c.community.size(), 3000u);
  EXPECT_EQ(c.author_names.size(), 3000u);
  EXPECT_EQ(c.planted_bridges.size(), p.num_bridge_pairs);
  EXPECT_EQ(c.planted_barbells.size(), p.num_barbells);
  // Co-authorship graphs are triangle-rich.
  EXPECT_GT(cliques::GlobalClusteringCoefficient(c.graph), 0.1);
}

TEST(CollaborationTest, PlantedBridgesExistWithManyContexts) {
  CollaborationParams p;
  p.num_authors = 2000;
  p.num_papers = 2500;
  CollaborationGraph c = GenerateCollaboration(p, 47);
  for (const Edge& e : c.planted_bridges) {
    EXPECT_TRUE(c.graph.HasEdge(e.u, e.v));
    EXPECT_EQ(graph::CountCommonNeighbors(c.graph, e.u, e.v),
              p.contexts_per_bridge * p.authors_per_context);
  }
}

TEST(CollaborationTest, PlantedBarbellsAreWeakTies) {
  CollaborationParams p;
  p.num_authors = 2000;
  p.num_papers = 2500;
  CollaborationGraph c = GenerateCollaboration(p, 53);
  for (const Edge& e : c.planted_barbells) {
    EXPECT_TRUE(c.graph.HasEdge(e.u, e.v));
    EXPECT_EQ(graph::CountCommonNeighbors(c.graph, e.u, e.v), 0u);
  }
}

// ---------------------------------------------------------------------------
// Word association
// ---------------------------------------------------------------------------

TEST(WordAssociationTest, PlantedPairsPresent) {
  WordAssociationParams p;
  p.background_words = 500;
  WordAssociationGraph w = GenerateWordAssociation(p, 59);
  EXPECT_EQ(w.words.size(), w.graph.NumVertices());
  ASSERT_FALSE(w.planted_pairs.empty());
  for (const Edge& e : w.planted_pairs) EXPECT_TRUE(w.graph.HasEdge(e.u, e.v));
  EXPECT_NE(w.Find("bank"), UINT32_MAX);
  EXPECT_NE(w.Find("money"), UINT32_MAX);
  EXPECT_EQ(w.Find("not-a-word"), UINT32_MAX);
}

TEST(WordAssociationTest, SensesAreEgoComponents) {
  WordAssociationParams p;
  p.background_words = 500;
  WordAssociationGraph w = GenerateWordAssociation(p, 61);
  VertexId bank = w.Find("bank");
  VertexId money = w.Find("money");
  std::vector<VertexId> common = graph::CommonNeighbors(w.graph, bank, money);
  std::vector<uint32_t> sizes = graph::InducedComponentSizes(w.graph, common);
  // Fig. 13 shape: the bank–money ego-network splits into one component per
  // planted sense.
  EXPECT_EQ(sizes.size(), w.ground_truth[0].senses.size());
}

// ---------------------------------------------------------------------------
// Dataset registry
// ---------------------------------------------------------------------------

TEST(DatasetsTest, AllNamesLoadAtTinyScale) {
  for (const std::string& name : StandardDatasetNames()) {
    Dataset d = LoadStandardDataset(name, 0.05);
    EXPECT_EQ(d.name, name);
    EXPECT_GT(d.graph.NumVertices(), 0u) << name;
    EXPECT_GT(d.graph.NumEdges(), 0u) << name;
  }
}

TEST(DatasetsTest, StatsMatchGraph) {
  Dataset d = LoadStandardDataset("youtube-s", 0.05);
  DatasetStats s = ComputeStats(d.graph);
  EXPECT_EQ(s.n, d.graph.NumVertices());
  EXPECT_EQ(s.m, d.graph.NumEdges());
  EXPECT_EQ(s.max_degree, d.graph.MaxDegree());
  EXPECT_GE(s.max_degree, s.degeneracy);
}

TEST(DatasetsTest, DeterministicAcrossCalls) {
  Dataset a = LoadStandardDataset("pokec-s", 0.05);
  Dataset b = LoadStandardDataset("pokec-s", 0.05);
  EXPECT_EQ(a.graph.Edges(), b.graph.Edges());
}

}  // namespace
}  // namespace esd::gen
