// Live index subsystem: WAL durability and corruption tolerance, epoch
// snapshot publication, crash recovery, and parity of the maintained live
// index with a from-scratch build on the final graph. The Live* suites are
// part of the TSan CI filter; the fork-based SIGKILL test skips itself
// under TSan (fork + threads is outside TSan's supported model).

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/frozen_index.h"
#include "core/index_builder.h"
#include "core/query_engine.h"
#include "fault/failpoint.h"
#include "gen/barabasi_albert.h"
#include "graph/dynamic_graph.h"
#include "live/live_index.h"
#include "live/recovery.h"
#include "live/snapshot.h"
#include "live/wal.h"
#include "serve/query_service.h"
#include "util/rng.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ESD_UNDER_TSAN 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define ESD_UNDER_TSAN 1
#endif

namespace esd {
namespace {

namespace fs = std::filesystem;

using core::FrozenEsdIndex;
using core::TopKResult;
using live::LiveEsdIndex;
using live::LiveOptions;
using live::LiveUpdate;
using live::UpdateKind;
using live::WalRecord;
using live::WalReplayResult;
using live::WalTailStatus;
using live::WalWriter;

/// A fresh scratch directory per test, removed on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    dir_ = fs::temp_directory_path() /
           ("esd_live_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

 private:
  fs::path dir_;
};

std::vector<WalRecord> MakeRecords(size_t n) {
  std::vector<WalRecord> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    WalRecord rec;
    rec.seq = i + 1;
    rec.kind = i % 3 == 2 ? UpdateKind::kDelete : UpdateKind::kInsert;
    rec.u = static_cast<graph::VertexId>(i * 7 % 97);
    rec.v = static_cast<graph::VertexId>((i * 13 + 1) % 97);
    records.push_back(rec);
  }
  return records;
}

void WriteLog(const std::string& path, const std::vector<WalRecord>& records) {
  WalWriter w;
  std::string error;
  ASSERT_TRUE(w.Open(path, &error)) << error;
  for (const WalRecord& rec : records) {
    ASSERT_TRUE(w.Append(rec, &error)) << error;
  }
  ASSERT_TRUE(w.Sync(&error)) << error;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(LiveWalTest, RoundTrip) {
  ScratchDir dir("wal_roundtrip");
  const std::string path = dir.Path("wal.bin");
  const std::vector<WalRecord> want = MakeRecords(23);
  WriteLog(path, want);

  std::vector<WalRecord> got;
  WalReplayResult result;
  std::string error;
  ASSERT_TRUE(live::ReplayWal(
      path, [&got](const WalRecord& rec) { got.push_back(rec); }, &result,
      &error))
      << error;
  EXPECT_EQ(result.tail, WalTailStatus::kClean);
  EXPECT_EQ(result.records, want.size());
  EXPECT_EQ(result.last_seq, want.back().seq);
  EXPECT_EQ(result.valid_bytes, fs::file_size(path));
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].seq, want[i].seq);
    EXPECT_EQ(got[i].kind, want[i].kind);
    EXPECT_EQ(got[i].u, want[i].u);
    EXPECT_EQ(got[i].v, want[i].v);
  }
}

TEST(LiveWalTest, MissingAndEmptyFilesReplayClean) {
  ScratchDir dir("wal_missing");
  WalReplayResult result;
  std::string error;
  EXPECT_TRUE(live::ReplayWal(dir.Path("nope.bin"), nullptr, &result, &error));
  EXPECT_EQ(result.records, 0u);
  EXPECT_EQ(result.tail, WalTailStatus::kClean);

  const std::string empty = dir.Path("empty.bin");
  WriteFileBytes(empty, "");
  EXPECT_TRUE(live::ReplayWal(empty, nullptr, &result, &error));
  EXPECT_EQ(result.records, 0u);
  EXPECT_EQ(result.tail, WalTailStatus::kClean);
}

// Fuzz: truncate the log at every byte offset. Replay must never crash,
// must deliver exactly the records wholly contained in the prefix, and must
// type the tail correctly.
TEST(LiveWalTest, TruncationSweepDeliversLongestValidPrefix) {
  ScratchDir dir("wal_trunc");
  const std::string path = dir.Path("wal.bin");
  const std::vector<WalRecord> want = MakeRecords(6);
  WriteLog(path, want);
  const std::string bytes = ReadFileBytes(path);
  const size_t record_bytes =
      live::kWalRecordHeaderBytes + live::kWalPayloadBytes;

  for (size_t cut = 0; cut <= bytes.size(); ++cut) {
    const std::string truncated = dir.Path("cut.bin");
    WriteFileBytes(truncated, bytes.substr(0, cut));
    uint64_t delivered = 0;
    WalReplayResult result;
    std::string error;
    ASSERT_TRUE(live::ReplayWal(
        truncated, [&delivered](const WalRecord&) { ++delivered; }, &result,
        &error))
        << "cut=" << cut << ": " << error;
    const size_t whole_records =
        cut < live::kWalFileHeaderBytesV2
            ? 0
            : (cut - live::kWalFileHeaderBytesV2) / record_bytes;
    EXPECT_EQ(delivered, whole_records) << "cut=" << cut;
    EXPECT_EQ(result.records, whole_records) << "cut=" << cut;
    const bool at_boundary =
        cut == 0 || (cut >= live::kWalFileHeaderBytesV2 &&
                     (cut - live::kWalFileHeaderBytesV2) % record_bytes == 0);
    EXPECT_EQ(result.tail == WalTailStatus::kClean, at_boundary)
        << "cut=" << cut;
    if (!at_boundary) {
      EXPECT_EQ(result.tail, WalTailStatus::kTruncatedRecord)
          << "cut=" << cut;
      EXPECT_EQ(result.valid_bytes,
                cut < live::kWalFileHeaderBytesV2
                    ? 0
                    : live::kWalFileHeaderBytesV2 +
                          whole_records * record_bytes)
          << "cut=" << cut;
    }
  }
}

// Fuzz: flip every byte of the log, one at a time. Replay must never crash
// and must deliver only records preceding the corruption, with a typed
// tail; corruption inside the file header is refused outright.
TEST(LiveWalTest, BitFlipSweepNeverCrashesAndTypesTheTail) {
  ScratchDir dir("wal_flip");
  const std::string path = dir.Path("wal.bin");
  const std::vector<WalRecord> want = MakeRecords(5);
  WriteLog(path, want);
  const std::string bytes = ReadFileBytes(path);

  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    std::string mutated = bytes;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0xFF);
    const std::string flipped = dir.Path("flip.bin");
    WriteFileBytes(flipped, mutated);
    uint64_t delivered = 0;
    WalReplayResult result;
    std::string error;
    const bool ok = live::ReplayWal(
        flipped, [&delivered](const WalRecord&) { ++delivered; }, &result,
        &error);
    if (pos < live::kWalFileHeaderBytesV2) {
      EXPECT_FALSE(ok) << "pos=" << pos;
      EXPECT_EQ(result.tail, WalTailStatus::kBadFileHeader) << "pos=" << pos;
      EXPECT_EQ(delivered, 0u);
      continue;
    }
    ASSERT_TRUE(ok) << "pos=" << pos << ": " << error;
    // Corruption at `pos` can only affect the record containing it and
    // those after; everything before replays intact.
    const size_t record_bytes =
        live::kWalRecordHeaderBytes + live::kWalPayloadBytes;
    const size_t hit_record =
        (pos - live::kWalFileHeaderBytesV2) / record_bytes;
    EXPECT_EQ(delivered, hit_record) << "pos=" << pos;
    EXPECT_NE(result.tail, WalTailStatus::kClean) << "pos=" << pos;
    EXPECT_NE(result.tail, WalTailStatus::kBadFileHeader) << "pos=" << pos;
  }
}

// A length prefix claiming a huge payload must be rejected as oversized
// without any attempt to allocate or read it.
TEST(LiveWalTest, OversizedAndMalformedLengthPrefixes) {
  ScratchDir dir("wal_oversized");
  const std::string path = dir.Path("wal.bin");
  const std::vector<WalRecord> want = MakeRecords(2);
  WriteLog(path, want);
  const std::string bytes = ReadFileBytes(path);

  auto with_third_record_len = [&bytes](uint32_t len) {
    std::string mutated = bytes;
    const char* p = reinterpret_cast<const char*>(&len);
    mutated += std::string(p, p + sizeof(len));  // header of a third record
    mutated += std::string(8, '\0');             // its checksum field
    return mutated;
  };

  {
    const std::string oversized = dir.Path("oversized.bin");
    WriteFileBytes(oversized, with_third_record_len(0xFFFFFF0u));
    uint64_t delivered = 0;
    WalReplayResult result;
    std::string error;
    ASSERT_TRUE(live::ReplayWal(
        oversized, [&delivered](const WalRecord&) { ++delivered; }, &result,
        &error));
    EXPECT_EQ(delivered, want.size());
    EXPECT_EQ(result.tail, WalTailStatus::kOversizedRecord);
  }
  {
    // In-bounds but not a v1 payload size.
    const std::string malformed = dir.Path("malformed.bin");
    WriteFileBytes(malformed, with_third_record_len(16));
    WalReplayResult result;
    std::string error;
    ASSERT_TRUE(live::ReplayWal(malformed, nullptr, &result, &error));
    EXPECT_EQ(result.records, want.size());
    EXPECT_EQ(result.tail, WalTailStatus::kMalformedRecord);
  }
}

TEST(LiveWalTest, ForeignFileRefusedByReplayAndWriter) {
  ScratchDir dir("wal_foreign");
  const std::string path = dir.Path("not_a_wal.bin");
  WriteFileBytes(path, "this is certainly not an ESDW log at all");

  WalReplayResult result;
  std::string error;
  EXPECT_FALSE(live::ReplayWal(path, nullptr, &result, &error));
  EXPECT_EQ(result.tail, WalTailStatus::kBadFileHeader);
  EXPECT_FALSE(error.empty());

  WalWriter w;
  error.clear();
  EXPECT_FALSE(w.Open(path, &error));
  EXPECT_FALSE(error.empty());
  // The foreign file must not have been clobbered by the refused open.
  EXPECT_EQ(ReadFileBytes(path),
            "this is certainly not an ESDW log at all");
}

TEST(LiveWalTest, TruncateAllKeepsHeaderAndAcceptsAppends) {
  ScratchDir dir("wal_truncall");
  const std::string path = dir.Path("wal.bin");
  WriteLog(path, MakeRecords(9));
  WalWriter w;
  std::string error;
  ASSERT_TRUE(w.Open(path, &error)) << error;
  ASSERT_TRUE(w.TruncateAll(&error)) << error;
  EXPECT_EQ(w.SizeBytes(), live::kWalFileHeaderBytesV2);

  WalRecord rec;
  rec.seq = 100;
  rec.u = 1;
  rec.v = 2;
  ASSERT_TRUE(w.Append(rec, &error)) << error;
  ASSERT_TRUE(w.Sync(&error)) << error;
  w.Close();

  WalReplayResult result;
  std::vector<WalRecord> got;
  ASSERT_TRUE(live::ReplayWal(
      path, [&got](const WalRecord& r) { got.push_back(r); }, &result,
      &error));
  EXPECT_EQ(result.tail, WalTailStatus::kClean);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].seq, 100u);
}

TEST(LiveRecoveryTest, SnapshotRoundTripAndCorruptionDetected) {
  ScratchDir dir("snap_roundtrip");
  const std::string path = dir.Path("snap.bin");
  graph::DynamicGraph g(6);
  g.InsertEdge(0, 1);
  g.InsertEdge(1, 2);
  g.InsertEdge(4, 5);
  std::string error;
  ASSERT_TRUE(live::SaveGraphSnapshot(path, g, 42, &error)) << error;

  live::GraphSnapshotData data;
  ASSERT_TRUE(live::LoadGraphSnapshot(path, &data, &error)) << error;
  EXPECT_EQ(data.applied_seq, 42u);
  EXPECT_EQ(data.num_vertices, 6u);
  EXPECT_EQ(data.edges.size(), 3u);

  // Any flipped payload byte must be caught by the trailing checksum (or,
  // for the length prefix, by the hardened reader).
  const std::string bytes = ReadFileBytes(path);
  for (size_t pos = 8; pos < bytes.size(); pos += 3) {
    std::string mutated = bytes;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x5A);
    WriteFileBytes(dir.Path("bad.bin"), mutated);
    live::GraphSnapshotData out;
    EXPECT_FALSE(live::LoadGraphSnapshot(dir.Path("bad.bin"), &out, &error))
        << "pos=" << pos;
  }
}

TEST(LiveRecoveryTest, TornTailIsTruncatedAndLogReopens) {
  ScratchDir dir("rec_torn");
  const std::string wal = dir.Path("wal.bin");
  WriteLog(wal, MakeRecords(5));
  // Tear the last record in half.
  const std::string bytes = ReadFileBytes(wal);
  WriteFileBytes(wal, bytes.substr(0, bytes.size() - 10));

  graph::Graph bootstrap;  // empty
  live::RecoveryOptions options;
  options.wal_path = wal;
  live::RecoveredState state;
  std::string error;
  ASSERT_TRUE(live::Recover(bootstrap, options, &state, &error)) << error;
  EXPECT_EQ(state.wal.tail, WalTailStatus::kTruncatedRecord);
  EXPECT_EQ(state.replay_applied, 4u);
  EXPECT_TRUE(state.wal_truncated);
  EXPECT_EQ(fs::file_size(wal), state.wal.valid_bytes);

  // After compaction the log is clean and appendable again.
  WalWriter w;
  ASSERT_TRUE(w.Open(wal, &error)) << error;
  WalRecord rec;
  rec.seq = state.applied_seq + 1;
  rec.u = 90;
  rec.v = 91;
  ASSERT_TRUE(w.Append(rec, &error)) << error;
  ASSERT_TRUE(w.Sync(&error)) << error;
  w.Close();
  WalReplayResult result;
  ASSERT_TRUE(live::ReplayWal(wal, nullptr, &result, &error));
  EXPECT_EQ(result.tail, WalTailStatus::kClean);
  EXPECT_EQ(result.records, 5u);
}

// The crash window between "persist snapshot" and "truncate WAL": records
// at or below the snapshot watermark are still in the log and must be
// skipped, not double-applied.
TEST(LiveRecoveryTest, ReplaySkipsRecordsCoveredBySnapshot) {
  ScratchDir dir("rec_skip");
  const std::string wal = dir.Path("wal.bin");
  const std::string snap = dir.Path("snap.bin");

  // WAL: seq 1 inserts {0,1}; seq 2 inserts {1,2}; seq 3 deletes {0,1}.
  std::vector<WalRecord> records(3);
  records[0] = {1, UpdateKind::kInsert, 0, 1};
  records[1] = {2, UpdateKind::kInsert, 1, 2};
  records[2] = {3, UpdateKind::kDelete, 0, 1};
  WriteLog(wal, records);

  // Snapshot covering seq <= 2: vertices {0,1,2}, edges {0,1},{1,2}.
  graph::DynamicGraph g(3);
  g.InsertEdge(0, 1);
  g.InsertEdge(1, 2);
  std::string error;
  ASSERT_TRUE(live::SaveGraphSnapshot(snap, g, 2, &error)) << error;

  live::RecoveryOptions options;
  options.wal_path = wal;
  options.snapshot_path = snap;
  live::RecoveredState state;
  ASSERT_TRUE(live::Recover(graph::Graph(), options, &state, &error))
      << error;
  EXPECT_TRUE(state.snapshot_loaded);
  EXPECT_EQ(state.snapshot_seq, 2u);
  EXPECT_EQ(state.replay_applied, 1u);  // only seq 3
  EXPECT_EQ(state.applied_seq, 3u);
  EXPECT_FALSE(state.graph.HasEdge(0, 1));  // the delete was applied once
  EXPECT_TRUE(state.graph.HasEdge(1, 2));   // the covered insert not redone
}

std::vector<LiveUpdate> RandomUpdates(size_t n, graph::VertexId num_vertices,
                                      uint64_t seed) {
  util::Rng rng(seed);
  std::vector<LiveUpdate> updates;
  updates.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    LiveUpdate u;
    u.kind = rng.NextBool(0.65) ? UpdateKind::kInsert : UpdateKind::kDelete;
    u.u = static_cast<graph::VertexId>(rng.NextBounded(num_vertices));
    do {
      u.v = static_cast<graph::VertexId>(rng.NextBounded(num_vertices));
    } while (u.v == u.u);
    updates.push_back(u);
  }
  return updates;
}

/// Applies the same updates to a shadow graph the way the live index does.
void ApplyToShadow(graph::DynamicGraph* g, const LiveUpdate& u) {
  const graph::VertexId hi = std::max(u.u, u.v);
  if (u.kind == UpdateKind::kInsert) {
    while (g->NumVertices() <= hi) g->AddVertex();
    g->InsertEdge(u.u, u.v);
  } else if (hi < g->NumVertices()) {
    g->EraseEdge(u.u, u.v);
  }
}

void ExpectEngineParity(const core::EsdQueryEngine& engine,
                        const graph::Graph& final_graph,
                        const std::string& context) {
  const FrozenEsdIndex want = core::BuildFrozenIndex(final_graph);
  for (uint32_t tau : {1u, 2u, 3u, 5u}) {
    for (uint32_t k : {1u, 8u, 32u, 128u}) {
      EXPECT_EQ(core::Scores(engine.Query(k, tau)),
                core::Scores(want.Query(k, tau)))
          << context << " diverged at k=" << k << " tau=" << tau;
    }
  }
}

// The headline property: after N random updates — across refreezes and a
// checkpoint boundary — the live index answers exactly like a from-scratch
// build on the final graph, both before and after a close/reopen.
TEST(LiveIndexTest, PropertyParityWithFromScratchBuild) {
  ScratchDir dir("live_parity");
  graph::Graph bootstrap = gen::BarabasiAlbert(80, 3, 7);
  LiveOptions options;
  options.wal_path = dir.Path("wal.bin");
  options.snapshot_path = dir.Path("snap.bin");
  options.refreeze_every = 50;
  options.max_vertex_id = 127;
  std::string error;
  auto live = LiveEsdIndex::Open(bootstrap, options, &error);
  ASSERT_NE(live, nullptr) << error;

  graph::DynamicGraph shadow(bootstrap);
  const std::vector<LiveUpdate> updates = RandomUpdates(300, 100, 0xE5D);
  for (size_t i = 0; i < updates.size(); ++i) {
    ASSERT_TRUE(live->Apply(updates[i], &error)) << "i=" << i << ": " << error;
    ApplyToShadow(&shadow, updates[i]);
    if (i == 149) {
      ASSERT_TRUE(live->Checkpoint(&error)) << error;
    }
  }
  live->RefreezeNow();
  const graph::Graph final_graph = shadow.Snapshot();
  {
    auto engine = live->CurrentEngine();
    ExpectEngineParity(*engine, final_graph, "live engine");
  }

  const live::LiveStats stats = live->Stats();
  EXPECT_EQ(stats.applied_seq, updates.size());
  EXPECT_EQ(stats.inserts + stats.deletes + stats.noops, updates.size());
  EXPECT_EQ(stats.checkpoints, 1u);
  EXPECT_GE(stats.refreezes, 3u);
  EXPECT_EQ(stats.snapshot_seq, updates.size());

  // Reopen from durable state: recovery must land on the same graph.
  live.reset();
  auto reopened = LiveEsdIndex::Open(bootstrap, options, &error);
  ASSERT_NE(reopened, nullptr) << error;
  EXPECT_EQ(reopened->Stats().applied_seq, updates.size());
  EXPECT_TRUE(reopened->recovery().snapshot_loaded);
  auto engine = reopened->CurrentEngine();
  ExpectEngineParity(*engine, final_graph, "reopened engine");
}

TEST(LiveIndexTest, CheckpointCompactsTheLog) {
  ScratchDir dir("live_ckpt");
  LiveOptions options;
  options.wal_path = dir.Path("wal.bin");
  options.snapshot_path = dir.Path("snap.bin");
  options.refreeze_every = 0;
  std::string error;
  auto live = LiveEsdIndex::Open(gen::BarabasiAlbert(40, 2, 3), options,
                                 &error);
  ASSERT_NE(live, nullptr) << error;

  const std::vector<LiveUpdate> updates = RandomUpdates(64, 40, 99);
  ASSERT_EQ(live->ApplyBatch(updates, &error), updates.size()) << error;
  EXPECT_GT(live->Stats().wal_bytes, live::kWalFileHeaderBytesV2);
  ASSERT_TRUE(live->Checkpoint(&error)) << error;
  EXPECT_EQ(live->Stats().wal_bytes, live::kWalFileHeaderBytesV2);
  EXPECT_TRUE(fs::exists(dir.Path("snap.bin")));

  // Updates after the checkpoint land in the compacted log and survive.
  LiveUpdate extra;
  extra.u = 0;
  extra.v = 39;
  ASSERT_TRUE(live->Apply(extra, &error)) << error;
  const uint64_t final_seq = live->Stats().applied_seq;
  live.reset();
  auto reopened =
      LiveEsdIndex::Open(gen::BarabasiAlbert(40, 2, 3), options, &error);
  ASSERT_NE(reopened, nullptr) << error;
  EXPECT_EQ(reopened->Stats().applied_seq, final_seq);
  EXPECT_EQ(reopened->recovery().replay_applied, 1u);
}

TEST(LiveIndexTest, InsertBeyondVertexBoundIsRejectedBeforeLogging) {
  ScratchDir dir("live_bound");
  LiveOptions options;
  options.wal_path = dir.Path("wal.bin");
  options.max_vertex_id = 49;
  std::string error;
  auto live =
      LiveEsdIndex::Open(gen::BarabasiAlbert(30, 2, 5), options, &error);
  ASSERT_NE(live, nullptr) << error;

  const uint64_t wal_before = live->Stats().wal_bytes;
  LiveUpdate bad;
  bad.u = 2;
  bad.v = 50;  // beyond the bound
  EXPECT_FALSE(live->Apply(bad, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(live->Stats().wal_bytes, wal_before);  // never logged
  EXPECT_EQ(live->Stats().applied_seq, 0u);

  // In-bounds auto-grow works, including for isolated new vertices.
  LiveUpdate grow;
  grow.u = 2;
  grow.v = 49;
  error.clear();
  ASSERT_TRUE(live->Apply(grow, &error)) << error;
  live->RefreezeNow();
  auto snap = live->CurrentSnapshot();
  EXPECT_EQ(snap->applied_seq, 1u);
}

TEST(LiveIndexTest, RefreezePublishesFreshEpochs) {
  ScratchDir dir("live_epoch");
  LiveOptions options;
  options.wal_path = dir.Path("wal.bin");
  options.refreeze_every = 0;  // manual refreezes only
  std::string error;
  auto live =
      LiveEsdIndex::Open(gen::BarabasiAlbert(30, 2, 1), options, &error);
  ASSERT_NE(live, nullptr) << error;

  auto boot = live->CurrentSnapshot();
  EXPECT_EQ(boot->epoch, 0u);
  LiveUpdate u;
  u.u = 0;
  u.v = 29;
  ASSERT_TRUE(live->Apply(u, &error)) << error;
  // Readers pinned to the old epoch are unaffected until they re-pin.
  EXPECT_EQ(live->CurrentSnapshot()->epoch, boot->epoch);
  live->RefreezeNow();
  auto fresh = live->CurrentSnapshot();
  EXPECT_EQ(fresh->epoch, boot->epoch + 1);
  EXPECT_EQ(fresh->applied_seq, 1u);
  EXPECT_EQ(boot->applied_seq, 0u);  // the pinned epoch is immutable
}

// Regression for the stale-epoch publish race. A refreeze builds its frozen
// image under the writer mutex but publishes after releasing it, so a slow
// refreeze can reach Publish AFTER a faster one that folded in more
// updates. The unguarded Publish used to install it anyway, rolling readers
// back to a stale image (and, with the result cache, re-keying a fresh
// generation to stale answers). The seq guard must discard it instead.
//
// The live.refreeze fail point sits exactly in that freeze-to-publish
// window; nth(1)*delay(...) parks only the FIRST refreeze there (FireCount
// bumps before the sleep, giving the test a sync point), letting a second,
// newer refreeze overtake it deterministically.
TEST(LiveIndexTest, StalePublishDiscardedBySeqGuard) {
  ScratchDir dir("live_pubrace");
  LiveOptions options;
  options.wal_path = dir.Path("wal.bin");
  options.refreeze_every = 0;  // every refreeze in this test is explicit
  std::string error;
  auto live =
      LiveEsdIndex::Open(gen::BarabasiAlbert(40, 2, 9), options, &error);
  ASSERT_NE(live, nullptr) << error;

  LiveUpdate first;
  first.u = 0;
  first.v = 39;
  ASSERT_TRUE(live->Apply(first, &error)) << error;  // seq 1

  fault::FailPointRegistry& fp = fault::FailPointRegistry::Global();
  ASSERT_TRUE(fp.Set("live.refreeze", "nth(1)*delay(300)", &error)) << error;

  // Thread A freezes at seq 1, then parks in the window.
  std::thread slow([&] { EXPECT_TRUE(live->RefreezeNow()); });
  while (fp.FireCount("live.refreeze") < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Meanwhile a newer update lands and refreezes straight through (hit 2 of
  // the fail point: nth(1) no longer fires).
  LiveUpdate second;
  second.u = 1;
  second.v = 38;
  ASSERT_TRUE(live->Apply(second, &error)) << error;  // seq 2
  ASSERT_TRUE(live->RefreezeNow());
  auto fresh = live->CurrentSnapshot();
  EXPECT_EQ(fresh->epoch, 1u);
  EXPECT_EQ(fresh->applied_seq, 2u);

  slow.join();
  fp.Clear("live.refreeze");

  // The slow refreeze's stale image (seq 1) must have been discarded: the
  // published epoch still reflects seq 2 and the race was counted.
  auto current = live->CurrentSnapshot();
  EXPECT_EQ(current->epoch, 1u);
  EXPECT_EQ(current->applied_seq, 2u);
  const live::LiveStats stats = live->Stats();
  EXPECT_EQ(stats.publish_races, 1u);
  EXPECT_EQ(stats.refreezes, 2u);  // boot + the fast refreeze; no third epoch
}

// Epoch-aware serving with the result cache in front of a churning live
// index: every answer — first ask (miss) and repeat (hit) — must match the
// current epoch's engine exactly, across epoch swaps driven through the
// SetEpochListener -> NotifyEpoch wiring (the esd_server arrangement).
TEST(LiveIndexTest, CachedAnswersMatchPinnedEpochUnderChurn) {
  ScratchDir dir("live_cache");
  graph::Graph bootstrap = gen::BarabasiAlbert(80, 3, 7);
  LiveOptions options;
  options.wal_path = dir.Path("wal.bin");
  options.refreeze_every = 0;  // deterministic: the test drives every epoch
  options.max_vertex_id = 99;
  std::string error;
  auto live = LiveEsdIndex::Open(bootstrap, options, &error);
  ASSERT_NE(live, nullptr) << error;

  serve::EsdQueryService::Options serve_options;
  serve_options.num_threads = 2;
  serve_options.cache_bytes = 1 << 20;
  LiveEsdIndex* live_raw = live.get();
  serve::EsdQueryService service(
      [live_raw]() -> serve::EsdQueryService::PinnedEngine {
        std::shared_ptr<const live::EpochSnapshot> snap =
            live_raw->CurrentSnapshot();
        return {std::shared_ptr<const core::EsdQueryEngine>(snap,
                                                            &snap->index),
                snap->epoch};
      },
      serve_options);
  ASSERT_NE(service.cache(), nullptr);
  service.NotifyEpoch(live->CurrentSnapshot()->epoch);
  live->SetEpochListener(
      [&service](uint64_t epoch, uint64_t) { service.NotifyEpoch(epoch); });

  const std::vector<LiveUpdate> updates = RandomUpdates(200, 90, 0xCACE);
  constexpr size_t kRounds = 5;
  constexpr size_t kPerRound = 40;
  for (size_t round = 0; round < kRounds; ++round) {
    ASSERT_EQ(live->ApplyBatch({updates.data() + round * kPerRound,
                                kPerRound},
                               &error),
              kPerRound)
        << error;
    ASSERT_TRUE(live->RefreezeNow());
    auto engine = live->CurrentEngine();
    for (uint32_t tau : {1u, 2u, 4u}) {
      for (uint32_t k : {3u, 11u}) {
        const TopKResult want = engine->Query(k, tau);
        serve::QueryRequest rq;
        rq.k = k;
        rq.tau = tau;
        // Ask twice: the repeat is served from the cache generation keyed
        // to this epoch and must be byte-identical, never a stale round's.
        for (int ask = 0; ask < 2; ++ask) {
          serve::QueryResponse resp = service.Query(rq);
          ASSERT_EQ(resp.status, serve::ResponseStatus::kOk);
          EXPECT_EQ(resp.result, want)
              << "round=" << round << " tau=" << tau << " k=" << k
              << " ask=" << ask;
        }
      }
    }
  }
  const serve::ResultCache::Stats cache_stats = service.cache()->Snap();
  EXPECT_GT(cache_stats.hits, 0u);
  EXPECT_EQ(cache_stats.epoch, live->CurrentSnapshot()->epoch);
  EXPECT_EQ(cache_stats.epoch, kRounds);  // boot epoch 0 + one per round

  // The listener captures the service; detach it before teardown order
  // (service first) could leave it dangling.
  live->SetEpochListener({});
}

// TSan-targeted stress: concurrent readers serve through the provider while
// a writer streams updates and epochs swap underneath them. Asserts at
// least 3 epoch publications and full request accounting, then end-state
// parity with a from-scratch build.
TEST(LiveServeStressTest, ReadersPinEpochsWhileWriterStreams) {
  ScratchDir dir("live_stress");
  graph::Graph bootstrap = gen::BarabasiAlbert(120, 3, 11);
  LiveOptions options;
  options.wal_path = dir.Path("wal.bin");
  options.snapshot_path = dir.Path("snap.bin");
  options.refreeze_every = 100;
  options.max_vertex_id = 149;
  std::string error;
  auto live = LiveEsdIndex::Open(bootstrap, options, &error);
  ASSERT_NE(live, nullptr) << error;

  serve::EsdQueryService::Options serve_options;
  serve_options.num_threads = 4;
  serve_options.max_queue = 1 << 14;
  serve_options.max_batch = 8;
  serve::EsdQueryService service(live->EngineProvider(), serve_options);

  graph::DynamicGraph shadow(bootstrap);
  constexpr size_t kUpdates = 600;
  constexpr size_t kBatch = 8;
  std::atomic<bool> writer_done{false};
  std::atomic<bool> writer_failed{false};
  std::thread writer([&] {
    const std::vector<LiveUpdate> updates =
        RandomUpdates(kUpdates, 140, 0xBEEF);
    std::string werror;
    for (size_t i = 0; i < updates.size(); i += kBatch) {
      const size_t n = std::min(kBatch, updates.size() - i);
      if (live->ApplyBatch({updates.data() + i, n}, &werror) != n) {
        writer_failed.store(true);
        break;
      }
      for (size_t j = 0; j < n; ++j) ApplyToShadow(&shadow, updates[i + j]);
    }
    writer_done.store(true);
  });

  constexpr int kClients = 4;
  std::atomic<uint64_t> served{0};
  std::atomic<uint64_t> bad{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      util::Rng rng(1000 + c);
      while (!writer_done.load()) {
        serve::QueryRequest rq;
        rq.k = 1 + static_cast<uint32_t>(rng.NextBounded(32));
        rq.tau = 1 + static_cast<uint32_t>(rng.NextBounded(5));
        serve::QueryResponse resp = service.Submit(rq).get();
        if (resp.status != serve::ResponseStatus::kOk) {
          bad.fetch_add(1);
          continue;
        }
        served.fetch_add(1);
        // Mid-stream we cannot know the exact answer, but every answer
        // must be internally consistent: size k, scores sorted descending.
        EXPECT_EQ(resp.result.size(), rq.k);
        for (size_t i = 1; i < resp.result.size(); ++i) {
          EXPECT_LE(resp.result[i].score, resp.result[i - 1].score);
        }
      }
    });
  }
  writer.join();
  for (std::thread& t : clients) t.join();
  service.Stop();

  ASSERT_FALSE(writer_failed.load());
  EXPECT_EQ(bad.load(), 0u);
  EXPECT_GT(served.load(), 0u);
  const serve::MetricsSnapshot metrics = service.metrics().Snap();
  EXPECT_EQ(metrics.accepted, metrics.completed);

  const live::LiveStats stats = live->Stats();
  EXPECT_EQ(stats.applied_seq, kUpdates);
  // The boot epoch plus at least kUpdates / refreeze_every swaps.
  EXPECT_GE(stats.refreezes, 4u);

  live->RefreezeNow();
  auto engine = live->CurrentEngine();
  ExpectEngineParity(*engine, shadow.Snapshot(), "post-stress engine");
}

// Crash-recovery property: SIGKILL a child process mid-stream (batched
// fsync'd updates with periodic checkpoints), then recover in the parent
// and demand exact top-k parity between the recovered live engine and a
// from-scratch frozen build on the recovered graph.
TEST(LiveKillRecoverTest, SigkillMidStreamRecoversToExactParity) {
#ifdef ESD_UNDER_TSAN
  GTEST_SKIP() << "fork + threads is outside TSan's supported model";
#endif
  ScratchDir dir("live_kill");
  const std::string wal = dir.Path("wal.bin");
  const std::string snap = dir.Path("snap.bin");
  graph::Graph bootstrap = gen::BarabasiAlbert(60, 3, 21);

  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: stream updates until the parent kills us.
    LiveOptions options;
    options.wal_path = wal;
    options.snapshot_path = snap;
    options.refreeze_every = 64;
    options.max_vertex_id = 79;
    std::string error;
    auto live = LiveEsdIndex::Open(bootstrap, options, &error);
    if (live == nullptr) _exit(2);
    const std::vector<LiveUpdate> updates = RandomUpdates(100000, 75, 0xDEAD);
    for (size_t i = 0; i + 4 <= updates.size(); i += 4) {
      if (live->ApplyBatch({updates.data() + i, 4}, &error) != 4) _exit(3);
      if ((i / 4) % 100 == 99 && !live->Checkpoint(&error)) _exit(4);
    }
    _exit(0);  // should be unreachable: the parent kills us first
  }

  // Parent: wait for real durable progress, then SIGKILL.
  const uint64_t record_bytes =
      live::kWalRecordHeaderBytes + live::kWalPayloadBytes;
  bool progressed = false;
  for (int i = 0; i < 2000 && !progressed; ++i) {
    std::error_code ec;
    const auto size = fs::file_size(wal, ec);
    if (!ec && size > live::kWalFileHeaderBytes + 200 * record_bytes) {
      progressed = true;
      break;
    }
    int status = 0;
    ASSERT_EQ(waitpid(child, &status, WNOHANG), 0)
        << "child exited early with status " << status;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(progressed) << "writer never made durable progress";
  ASSERT_EQ(kill(child, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));

  // Recover the durable graph independently of LiveEsdIndex...
  live::RecoveryOptions rec_options;
  rec_options.wal_path = wal;
  rec_options.snapshot_path = snap;
  rec_options.truncate_torn_tail = false;  // leave the tail for Open below
  live::RecoveredState state;
  std::string error;
  ASSERT_TRUE(live::Recover(bootstrap, rec_options, &state, &error)) << error;

  // ...then open the live index over the same files and demand parity with
  // a from-scratch frozen build on the recovered graph. The two answers
  // come from different pipelines (dynamic bootstrap + freeze vs direct
  // frozen build), so this is a real cross-check, not a tautology.
  LiveOptions options;
  options.wal_path = wal;
  options.snapshot_path = snap;
  std::string open_error;
  auto live = LiveEsdIndex::Open(bootstrap, options, &open_error);
  ASSERT_NE(live, nullptr) << open_error;
  EXPECT_EQ(live->Stats().applied_seq, state.applied_seq);
  auto engine = live->CurrentEngine();
  ExpectEngineParity(*engine, state.graph.Snapshot(), "post-SIGKILL engine");
}

}  // namespace
}  // namespace esd
