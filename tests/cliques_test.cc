#include <algorithm>
#include <array>
#include <functional>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "cliques/four_clique.h"
#include "cliques/kclique.h"
#include "cliques/triangle.h"
#include "gen/erdos_renyi.h"
#include "graph/builder.h"
#include "graph/graph.h"
#include "graph/orientation.h"
#include "util/rng.h"

namespace esd::cliques {
namespace {

using graph::Edge;
using graph::Graph;
using graph::GraphBuilder;
using graph::VertexId;

Graph CompleteGraph(VertexId n) {
  GraphBuilder b(n);
  for (VertexId i = 0; i < n; ++i) {
    for (VertexId j = i + 1; j < n; ++j) b.AddEdge(i, j);
  }
  return b.Build();
}

uint64_t Choose(uint64_t n, uint64_t k) {
  if (k > n) return 0;
  uint64_t r = 1;
  for (uint64_t i = 0; i < k; ++i) r = r * (n - i) / (i + 1);
  return r;
}

// Brute-force k-clique count over all vertex subsets (tiny graphs only).
uint64_t BruteKCliques(const Graph& g, int k) {
  std::vector<VertexId> members;
  uint64_t count = 0;
  std::function<void(VertexId)> rec = [&](VertexId start) {
    if (static_cast<int>(members.size()) == k) {
      ++count;
      return;
    }
    for (VertexId v = start; v < g.NumVertices(); ++v) {
      bool ok = true;
      for (VertexId m : members) {
        if (!g.HasEdge(m, v)) {
          ok = false;
          break;
        }
      }
      if (ok) {
        members.push_back(v);
        rec(v + 1);
        members.pop_back();
      }
    }
  };
  rec(0);
  return count;
}

// ---------------------------------------------------------------------------
// Triangles
// ---------------------------------------------------------------------------

TEST(TriangleTest, CountsOnKnownGraphs) {
  EXPECT_EQ(CountTriangles(CompleteGraph(3)), 1u);
  EXPECT_EQ(CountTriangles(CompleteGraph(5)), Choose(5, 3));
  GraphBuilder path(4);
  path.AddEdge(0, 1);
  path.AddEdge(1, 2);
  path.AddEdge(2, 3);
  EXPECT_EQ(CountTriangles(path.Build()), 0u);
}

TEST(TriangleTest, EdgeIdsConsistent) {
  Graph g = CompleteGraph(5);
  graph::DegreeOrderedDag dag(g);
  ForEachTriangle(dag, [&g](const Triangle& t) {
    EXPECT_EQ(g.EdgeAt(t.uv), graph::MakeEdge(t.u, t.v));
    EXPECT_EQ(g.EdgeAt(t.uw), graph::MakeEdge(t.u, t.w));
    EXPECT_EQ(g.EdgeAt(t.vw), graph::MakeEdge(t.v, t.w));
  });
}

TEST(TriangleTest, EachTriangleOnce) {
  Graph g = gen::ErdosRenyiGnp(25, 0.3, 7);
  graph::DegreeOrderedDag dag(g);
  std::set<std::array<VertexId, 3>> seen;
  ForEachTriangle(dag, [&seen](const Triangle& t) {
    std::array<VertexId, 3> key{t.u, t.v, t.w};
    std::sort(key.begin(), key.end());
    EXPECT_TRUE(seen.insert(key).second) << "duplicate triangle";
  });
  EXPECT_EQ(seen.size(), BruteKCliques(g, 3));
}

TEST(TriangleTest, EdgeSupportMatchesCommonNeighbors) {
  Graph g = gen::ErdosRenyiGnp(30, 0.25, 11);
  std::vector<uint32_t> support = EdgeSupport(g);
  for (graph::EdgeId e = 0; e < g.NumEdges(); ++e) {
    const Edge& uv = g.EdgeAt(e);
    EXPECT_EQ(support[e], graph::CountCommonNeighbors(g, uv.u, uv.v));
  }
}

TEST(TriangleTest, ClusteringCoefficientBounds) {
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(CompleteGraph(6)), 1.0);
  GraphBuilder star(5);
  for (VertexId i = 1; i < 5; ++i) star.AddEdge(0, i);
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(star.Build()), 0.0);
  double c = GlobalClusteringCoefficient(gen::ErdosRenyiGnp(40, 0.2, 3));
  EXPECT_GT(c, 0.0);
  EXPECT_LT(c, 1.0);
}

// ---------------------------------------------------------------------------
// 4-cliques
// ---------------------------------------------------------------------------

TEST(FourCliqueTest, CountsOnKnownGraphs) {
  EXPECT_EQ(Count4Cliques(CompleteGraph(4)), 1u);
  EXPECT_EQ(Count4Cliques(CompleteGraph(6)), Choose(6, 4));
  EXPECT_EQ(Count4Cliques(CompleteGraph(3)), 0u);
  // Two K4's sharing a triangle: {0,1,2,3} and {0,1,2,4}.
  GraphBuilder b(5);
  for (VertexId i = 0; i < 3; ++i) {
    for (VertexId j = i + 1; j < 3; ++j) b.AddEdge(i, j);
    b.AddEdge(i, 3);
    b.AddEdge(i, 4);
  }
  EXPECT_EQ(Count4Cliques(b.Build()), 2u);
}

TEST(FourCliqueTest, AllSixEdgeIdsValid) {
  Graph g = CompleteGraph(6);
  graph::DegreeOrderedDag dag(g);
  uint64_t count = 0;
  ForEach4Clique(dag, [&](const FourClique& q) {
    ++count;
    EXPECT_EQ(g.EdgeAt(q.uv), graph::MakeEdge(q.u, q.v));
    EXPECT_EQ(g.EdgeAt(q.uw1), graph::MakeEdge(q.u, q.w1));
    EXPECT_EQ(g.EdgeAt(q.uw2), graph::MakeEdge(q.u, q.w2));
    EXPECT_EQ(g.EdgeAt(q.vw1), graph::MakeEdge(q.v, q.w1));
    EXPECT_EQ(g.EdgeAt(q.vw2), graph::MakeEdge(q.v, q.w2));
    EXPECT_EQ(g.EdgeAt(q.w1w2), graph::MakeEdge(q.w1, q.w2));
    // All four vertices distinct.
    std::set<VertexId> verts{q.u, q.v, q.w1, q.w2};
    EXPECT_EQ(verts.size(), 4u);
  });
  EXPECT_EQ(count, Choose(6, 4));
}

class FourCliqueRandomTest : public ::testing::TestWithParam<
                                 std::tuple<uint32_t, double, uint64_t>> {};

TEST_P(FourCliqueRandomTest, MatchesBruteForceOnce) {
  auto [n, p, seed] = GetParam();
  Graph g = gen::ErdosRenyiGnp(n, p, seed);
  graph::DegreeOrderedDag dag(g);
  std::set<std::array<VertexId, 4>> seen;
  ForEach4Clique(dag, [&seen](const FourClique& q) {
    std::array<VertexId, 4> key{q.u, q.v, q.w1, q.w2};
    std::sort(key.begin(), key.end());
    EXPECT_TRUE(seen.insert(key).second) << "duplicate 4-clique";
  });
  EXPECT_EQ(seen.size(), BruteKCliques(g, 4));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FourCliqueRandomTest,
    ::testing::Values(std::make_tuple(12u, 0.3, 1ull),
                      std::make_tuple(15u, 0.4, 2ull),
                      std::make_tuple(20u, 0.35, 3ull),
                      std::make_tuple(20u, 0.5, 4ull),
                      std::make_tuple(25u, 0.25, 5ull),
                      std::make_tuple(10u, 0.8, 6ull),
                      std::make_tuple(18u, 0.15, 7ull),
                      std::make_tuple(30u, 0.2, 8ull)));

TEST(FourCliqueTest, ArcVariantAggregatesToFull) {
  Graph g = gen::ErdosRenyiGnp(20, 0.4, 17);
  graph::DegreeOrderedDag dag(g);
  uint64_t full = 0;
  ForEach4Clique(dag, [&full](const FourClique&) { ++full; });
  uint64_t via_arcs = 0;
  FourCliqueScratch scratch;
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    auto out = dag.OutNeighbors(u);
    auto eids = dag.OutEdges(u);
    for (size_t i = 0; i < out.size(); ++i) {
      ForEach4CliqueOfArc(dag, u, out[i], eids[i], &scratch,
                          [&via_arcs](const FourClique&) { ++via_arcs; });
    }
  }
  EXPECT_EQ(via_arcs, full);
}

// ---------------------------------------------------------------------------
// k-cliques
// ---------------------------------------------------------------------------

TEST(KCliqueTest, DegenerateCases) {
  Graph g = CompleteGraph(5);
  EXPECT_EQ(CountKCliques(g, 1), 5u);
  EXPECT_EQ(CountKCliques(g, 2), 10u);
  EXPECT_EQ(CountKCliques(g, 5), 1u);
  EXPECT_EQ(CountKCliques(g, 6), 0u);
  EXPECT_EQ(CountKCliques(g, 0), 0u);
  EXPECT_EQ(CountKCliques(Graph(), 3), 0u);
}

class KCliqueRandomTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(KCliqueRandomTest, MatchesBruteForce) {
  auto [k, seed] = GetParam();
  Graph g = gen::ErdosRenyiGnp(16, 0.5, seed);
  EXPECT_EQ(CountKCliques(g, k), BruteKCliques(g, k));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KCliqueRandomTest,
    ::testing::Combine(::testing::Values(3, 4, 5, 6),
                       ::testing::Values(21ull, 22ull, 23ull)));

TEST(KCliqueTest, MembersFormActualCliques) {
  Graph g = gen::ErdosRenyiGnp(18, 0.5, 31);
  ForEachKClique(g, 4, [&g](std::span<const VertexId> clique) {
    ASSERT_EQ(clique.size(), 4u);
    for (size_t i = 0; i < clique.size(); ++i) {
      for (size_t j = i + 1; j < clique.size(); ++j) {
        EXPECT_TRUE(g.HasEdge(clique[i], clique[j]));
      }
    }
  });
}

TEST(KCliqueTest, FourCliqueAgreesWithKClique) {
  for (uint64_t seed : {41ull, 42ull, 43ull}) {
    Graph g = gen::ErdosRenyiGnp(24, 0.3, seed);
    EXPECT_EQ(Count4Cliques(g), CountKCliques(g, 4));
  }
}

}  // namespace
}  // namespace esd::cliques
