// Cross-family property tests: every top-k algorithm in the library must
// agree on every graph family, parameter setting, and seed below; the
// index invariant must hold after construction by any builder; and the
// maintained index must stay exact through churn. These are the
// "whole-system" checks that tie the modules together.

#include <algorithm>
#include <functional>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/dynamic_index.h"
#include "core/ego_network.h"
#include "core/esd_index.h"
#include "core/index_builder.h"
#include "core/naive_topk.h"
#include "core/online_topk.h"
#include "core/parallel_builder.h"
#include "gen/chung_lu.h"
#include "gen/collaboration.h"
#include "gen/erdos_renyi.h"
#include "gen/holme_kim.h"
#include "gen/planted_partition.h"
#include "gen/rmat.h"
#include "gen/watts_strogatz.h"
#include "gen/word_association.h"
#include "graph/graph.h"
#include "tests/test_helpers.h"
#include "util/rng.h"

namespace esd {
namespace {

using core::EsdIndex;
using core::OnlineTopK;
using core::Scores;
using core::UpperBoundRule;
using graph::Graph;
using graph::VertexId;

struct Family {
  std::string name;
  std::function<Graph(uint64_t)> make;
};

std::vector<Family> Families() {
  return {
      {"er_sparse",
       [](uint64_t s) { return gen::ErdosRenyiGnm(120, 300, s); }},
      {"er_dense", [](uint64_t s) { return gen::ErdosRenyiGnp(40, 0.4, s); }},
      {"watts_strogatz",
       [](uint64_t s) { return gen::WattsStrogatz(100, 6, 0.2, s); }},
      {"holme_kim", [](uint64_t s) { return gen::HolmeKim(90, 4, 0.6, s); }},
      {"chung_lu",
       [](uint64_t s) { return gen::ChungLuPowerLaw(150, 2.4, 2.0, 40.0, s); }},
      {"rmat",
       [](uint64_t s) {
         gen::RmatParams p;
         p.scale = 7;
         p.edge_factor = 3.0;
         return gen::Rmat(p, s);
       }},
      {"planted_partition",
       [](uint64_t s) {
         return gen::PlantedPartition(4, 20, 0.35, 0.02, s).graph;
       }},
      {"collaboration",
       [](uint64_t s) {
         gen::CollaborationParams p;
         p.num_authors = 260;
         p.num_papers = 260;
         p.num_communities = 4;
         p.num_bridge_pairs = 1;
         p.num_barbells = 1;
         p.barbell_clique_size = 6;
         return gen::GenerateCollaboration(p, s).graph;
       }},
  };
}

class FamilyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(FamilyTest, AllAlgorithmsAgreeOnTopKScores) {
  Family family = Families()[GetParam()];
  for (uint64_t seed : {1ull, 2ull}) {
    Graph g = family.make(seed);
    EsdIndex index = core::BuildIndexClique(g);
    for (uint32_t tau : {1u, 2u, 3u, 4u}) {
      for (uint32_t k : {1u, 8u, 50u}) {
        std::vector<uint32_t> want = test::NaiveTopScores(g, k, tau);
        EXPECT_EQ(Scores(OnlineTopK(g, k, tau, UpperBoundRule::kMinDegree)),
                  want)
            << family.name << " MD seed=" << seed << " tau=" << tau
            << " k=" << k;
        EXPECT_EQ(
            Scores(OnlineTopK(g, k, tau, UpperBoundRule::kCommonNeighbor)),
            want)
            << family.name << " CN seed=" << seed << " tau=" << tau
            << " k=" << k;
        EXPECT_EQ(Scores(index.Query(k, tau)), want)
            << family.name << " IDX seed=" << seed << " tau=" << tau
            << " k=" << k;
      }
    }
  }
}

TEST_P(FamilyTest, BuildersAgreeAndInvariantHolds) {
  Family family = Families()[GetParam()];
  Graph g = family.make(7);
  EsdIndex basic = core::BuildIndexBasic(g);
  EsdIndex clique = core::BuildIndexClique(g);
  EsdIndex par = core::BuildIndexParallel(g, 3);
  test::ExpectIndexesEqual(basic, clique);
  test::ExpectIndexesEqual(basic, par);
  std::vector<graph::EdgeId> ids(g.NumEdges());
  std::iota(ids.begin(), ids.end(), 0);
  test::ExpectIndexInvariant(clique, ids, [&clique](graph::EdgeId e) -> const auto& {
    return clique.EdgeSizes(e);
  });
}

TEST_P(FamilyTest, MaintainedIndexSurvivesChurn) {
  Family family = Families()[GetParam()];
  Graph g = family.make(9);
  util::Rng rng(9 * 1000 + GetParam());
  core::DynamicEsdIndex dyn(g, core::DeletionStrategy::kTargeted);
  const VertexId n = g.NumVertices();
  for (int step = 0; step < 40; ++step) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(n));
    VertexId v = static_cast<VertexId>(rng.NextBounded(n));
    if (u == v) continue;
    if (dyn.CurrentGraph().HasEdge(u, v)) {
      dyn.DeleteEdge(u, v);
    } else {
      dyn.InsertEdge(u, v);
    }
  }
  Graph now = dyn.CurrentGraph().Snapshot();
  EsdIndex fresh = core::BuildIndexClique(now);
  EXPECT_EQ(dyn.Index().NumEntries(), fresh.NumEntries()) << family.name;
  EXPECT_EQ(dyn.Index().DistinctSizes(), fresh.DistinctSizes())
      << family.name;
  for (uint32_t tau : {1u, 2u, 3u}) {
    EXPECT_EQ(Scores(dyn.Query(25, tau)), test::NaiveTopScores(now, 25, tau))
        << family.name << " tau=" << tau;
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FamilyTest,
                         ::testing::Range<size_t>(0, 8),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return Families()[info.param].name;
                         });

// Monotonicity properties of the score itself.

TEST(ScorePropertyTest, ScoreNonIncreasingInTau) {
  Graph g = gen::HolmeKim(80, 5, 0.5, 51);
  for (const graph::Edge& e : g.Edges()) {
    uint32_t prev = UINT32_MAX;
    for (uint32_t tau = 1; tau <= 6; ++tau) {
      uint32_t s = core::EdgeScore(g, e.u, e.v, tau);
      EXPECT_LE(s, prev);
      prev = s;
    }
  }
}

TEST(ScorePropertyTest, ScoreBoundedByBothUpperBounds) {
  Graph g = gen::ErdosRenyiGnp(50, 0.25, 53);
  for (const graph::Edge& e : g.Edges()) {
    for (uint32_t tau : {1u, 2u, 3u}) {
      uint32_t s = core::EdgeScore(g, e.u, e.v, tau);
      EXPECT_LE(s, std::min(g.Degree(e.u), g.Degree(e.v)) / tau);
      EXPECT_LE(s, graph::CountCommonNeighbors(g, e.u, e.v) / tau);
    }
  }
}

TEST(ScorePropertyTest, Tau1CountsAllComponents) {
  Graph g = gen::WattsStrogatz(70, 4, 0.3, 57);
  for (const graph::Edge& e : g.Edges()) {
    auto sizes = core::EgoComponentSizes(g, e.u, e.v);
    EXPECT_EQ(core::EdgeScore(g, e.u, e.v, 1), sizes.size());
    uint64_t members = 0;
    for (uint32_t s : sizes) members += s;
    EXPECT_EQ(members, graph::CountCommonNeighbors(g, e.u, e.v));
  }
}

TEST(ScorePropertyTest, InsertingEdgeNeverShrinksCommonNeighborhoods) {
  // Adding an edge can merge ego components of OTHER edges but never
  // removes members — so the total member count is monotone.
  Graph g = gen::ErdosRenyiGnp(30, 0.25, 59);
  core::DynamicEsdIndex dyn(g);
  auto total_members = [&dyn]() {
    uint64_t total = 0;
    const EsdIndex& idx = dyn.Index();
    for (graph::EdgeId e = 0; e < idx.EdgeSlotCount(); ++e) {
      if (!idx.IsLive(e)) continue;
      for (uint32_t s : idx.EdgeSizes(e)) total += s;
    }
    return total;
  };
  util::Rng rng(59);
  uint64_t before = total_members();
  for (int i = 0; i < 15; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(30));
    VertexId v = static_cast<VertexId>(rng.NextBounded(30));
    if (u == v || dyn.CurrentGraph().HasEdge(u, v)) continue;
    dyn.InsertEdge(u, v);
    uint64_t after = total_members();
    EXPECT_GE(after, before);
    before = after;
  }
}

}  // namespace
}  // namespace esd
