// Sharded serving engine (src/shard/): the hash partition, the filtered
// per-shard serving images, the scatter-gather merge's exact parity with
// the unsharded canonical answer, the early-exit drain bound, the fleet
// tally surfaced through EsdQueryService, and the v1/v2 wire protocol
// round trips the shard counts ride on.
//
// Fault-driven behavior (stall breakers, WAL outages quarantining one
// shard, heal catch-up under injected errors) lives in chaos_test.cc —
// this suite covers everything that must hold with no fault armed.

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/frozen_index.h"
#include "core/index_builder.h"
#include "core/topk_result.h"
#include "gen/barabasi_albert.h"
#include "graph/dynamic_graph.h"
#include "graph/graph.h"
#include "live/live_index.h"
#include "net/wire.h"
#include "serve/query_service.h"
#include "shard/partition.h"
#include "shard/sharded_engine.h"
#include "util/rng.h"

namespace esd {
namespace {

namespace fs = std::filesystem;

using core::FrozenEsdIndex;
using core::TopKResult;
using shard::ShardedOptions;
using shard::ShardedQueryEngine;

constexpr auto kFarDeadline = std::chrono::steady_clock::time_point::max();

/// A fresh scratch directory per test, removed on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    dir_ = fs::temp_directory_path() /
           ("esd_shard_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  std::string Root() const { return dir_.string(); }
  fs::path Sub(const std::string& name) const { return dir_ / name; }

 private:
  fs::path dir_;
};

ShardedOptions StaticOptions(uint32_t num_shards) {
  ShardedOptions options;
  options.num_shards = num_shards;
  return options;
}

// ---- Partition function ----------------------------------------------------

TEST(ShardPartitionTest, OrientationInvariantAndSingleShardDegenerate) {
  util::Rng rng(0x9A27);
  for (int i = 0; i < 500; ++i) {
    const auto u = static_cast<graph::VertexId>(rng.NextBounded(1u << 20));
    auto v = static_cast<graph::VertexId>(rng.NextBounded(1u << 20));
    if (u == v) v += 1;
    EXPECT_EQ(shard::ShardOfEdge(graph::Edge{u, v}, 4),
              shard::ShardOfEdge(graph::Edge{v, u}, 4));
    EXPECT_EQ(shard::ShardOfEdge(graph::Edge{u, v}, 1), 0u);
    EXPECT_EQ(shard::ShardOfEdge(graph::Edge{u, v}, 0), 0u);
  }
}

TEST(ShardPartitionTest, SpreadsEdgesAcrossShards) {
  const uint32_t num_shards = 8;
  std::vector<uint64_t> per_shard(num_shards, 0);
  util::Rng rng(0x51AB);
  const uint64_t total = 8000;
  for (uint64_t i = 0; i < total; ++i) {
    const auto u = static_cast<graph::VertexId>(rng.NextBounded(1u << 16));
    auto v = static_cast<graph::VertexId>(rng.NextBounded(1u << 16));
    if (u == v) v += 1;
    per_shard[shard::ShardOfEdge(graph::Edge{u, v}, num_shards)]++;
  }
  // splitmix64 over the packed endpoints: every shard should land within
  // a loose factor of the uniform share (binomial tails make 2x generous).
  const uint64_t fair = total / num_shards;
  for (uint32_t s = 0; s < num_shards; ++s) {
    EXPECT_GT(per_shard[s], fair / 2) << "shard " << s << " starved";
    EXPECT_LT(per_shard[s], fair * 2) << "shard " << s << " overloaded";
  }
}

TEST(ShardPartitionTest, OwnsFiltersFormExactPartition) {
  const uint32_t num_shards = 5;
  std::vector<std::function<bool(graph::Edge)>> filters;
  for (uint32_t s = 0; s < num_shards; ++s) {
    filters.push_back(shard::OwnsFilter(s, num_shards));
  }
  const graph::Graph g = gen::BarabasiAlbert(200, 3, 77);
  for (const graph::Edge& e : g.Edges()) {
    uint32_t owners = 0;
    for (const auto& f : filters) owners += f(e) ? 1 : 0;
    EXPECT_EQ(owners, 1u) << "edge (" << e.u << "," << e.v
                          << ") owned by " << owners << " shards";
  }
}

// ---- Filtered serving images -----------------------------------------------

TEST(ShardFilterTest, FilteredImagePreservesSlotLayoutAndKeptScores) {
  const graph::Graph g = gen::BarabasiAlbert(120, 3, 31);
  const FrozenEsdIndex full = core::BuildFrozenIndex(g);
  const auto keep = shard::OwnsFilter(1, 3);
  const FrozenEsdIndex filtered = core::FilterFrozenIndex(full, keep);

  // Slot layout is preserved exactly: same slot count, same edge at every
  // slot — this is what makes edge-id tie-breaks and the padding order
  // line up across differently-filtered images.
  ASSERT_EQ(filtered.EdgeSlotCount(), full.EdgeSlotCount());
  size_t kept = 0;
  for (graph::EdgeId e = 0; e < full.EdgeSlotCount(); ++e) {
    EXPECT_EQ(filtered.EdgeAt(e), full.EdgeAt(e));
    if (!full.IsLive(e)) continue;
    if (keep(full.EdgeAt(e))) {
      ++kept;
      ASSERT_TRUE(filtered.IsLive(e));
      // The ownership guarantee the merge proof rests on: a kept edge's
      // multiset — hence its score at every tau — is untouched by masking
      // the other shards' edges.
      const auto full_sizes = full.EdgeSizes(e);
      const auto filt_sizes = filtered.EdgeSizes(e);
      ASSERT_EQ(std::vector<uint32_t>(filt_sizes.begin(), filt_sizes.end()),
                std::vector<uint32_t>(full_sizes.begin(), full_sizes.end()));
      for (uint32_t tau : {1u, 2u, 4u}) {
        EXPECT_EQ(filtered.ScoreOf(e, tau), full.ScoreOf(e, tau));
      }
    } else {
      EXPECT_FALSE(filtered.IsLive(e));
      EXPECT_TRUE(filtered.EdgeSizes(e).empty());
    }
  }
  EXPECT_GT(kept, 0u);
  EXPECT_LT(kept, full.NumRegisteredEdges());
  EXPECT_EQ(filtered.NumRegisteredEdges(), kept);
}

// ---- Scatter-gather merge parity -------------------------------------------

TEST(ShardMergeTest, StaticParityAcrossGraphsAndShardCounts) {
  const std::vector<graph::Graph> zoo = {
      gen::BarabasiAlbert(60, 2, 7),
      gen::BarabasiAlbert(120, 3, 19),
      gen::BarabasiAlbert(200, 4, 43),
  };
  for (size_t gi = 0; gi < zoo.size(); ++gi) {
    const FrozenEsdIndex full = core::BuildFrozenIndex(zoo[gi]);
    for (uint32_t shards : {2u, 3u, 5u}) {
      const std::unique_ptr<ShardedQueryEngine> engine =
          ShardedQueryEngine::BuildStatic(zoo[gi], StaticOptions(shards));
      ASSERT_NE(engine, nullptr);
      EXPECT_EQ(engine->Counts().ok, shards);
      for (uint32_t tau : {1u, 2u, 3u, 5u, 9u}) {
        for (uint32_t k : {1u, 4u, 16u, 64u, 400u}) {
          for (bool pad : {false, true}) {
            const TopKResult want = full.Query(k, tau, pad);
            const serve::ShardedOutcome got =
                engine->Execute(k, tau, pad, kFarDeadline);
            EXPECT_FALSE(got.deadline_expired);
            // Not just the score multiset: the merge must reproduce the
            // canonical (score desc, edge id asc) answer edge for edge.
            EXPECT_EQ(got.result, want)
                << "graph " << gi << " shards=" << shards << " k=" << k
                << " tau=" << tau << " pad=" << pad;
          }
        }
      }
    }
  }
}

TEST(ShardMergeTest, DrainedEntriesRespectEarlyExitBound) {
  const graph::Graph g = gen::BarabasiAlbert(150, 3, 57);
  const uint32_t shards = 4;
  const std::unique_ptr<ShardedQueryEngine> engine =
      ShardedQueryEngine::BuildStatic(g, StaticOptions(shards));
  ASSERT_NE(engine, nullptr);
  for (uint32_t tau : {1u, 2u, 4u}) {
    for (uint32_t k : {1u, 8u, 32u}) {
      const serve::ShardedOutcome got =
          engine->Execute(k, tau, /*pad_with_zero_edges=*/false, kFarDeadline);
      // Each non-winning shard contributes at most one peeked-but-
      // unconsumed head; consumed entries are bounded by the answer size.
      EXPECT_LE(got.drained_entries, got.result.size() + (shards - 1))
          << "k=" << k << " tau=" << tau;
    }
  }
}

TEST(ShardMergeTest, ExpiredDeadlineReturnsDeadlineExpired) {
  const graph::Graph g = gen::BarabasiAlbert(80, 3, 91);
  const std::unique_ptr<ShardedQueryEngine> engine =
      ShardedQueryEngine::BuildStatic(g, StaticOptions(3));
  ASSERT_NE(engine, nullptr);
  const serve::ShardedOutcome got = engine->Execute(
      16, 1, true, std::chrono::steady_clock::now() - std::chrono::seconds(1));
  EXPECT_TRUE(got.deadline_expired);
}

// ---- Service integration ---------------------------------------------------

TEST(ShardServiceTest, ResponsesCarryFleetTallyAndStrictPassesWhenAllOk) {
  const graph::Graph g = gen::BarabasiAlbert(100, 3, 23);
  const FrozenEsdIndex full = core::BuildFrozenIndex(g);
  const std::unique_ptr<ShardedQueryEngine> engine =
      ShardedQueryEngine::BuildStatic(g, StaticOptions(3));
  ASSERT_NE(engine, nullptr);
  serve::EsdQueryService::Options options;
  options.num_threads = 2;
  serve::EsdQueryService service(*engine, options);

  serve::QueryRequest rq;
  rq.k = 10;
  rq.tau = 2;
  for (const bool strict : {false, true}) {
    rq.strict = strict;
    const serve::QueryResponse resp = service.Query(rq);
    ASSERT_EQ(resp.status, serve::ResponseStatus::kOk) << "strict=" << strict;
    EXPECT_EQ(resp.shards_ok, 3u);
    EXPECT_EQ(resp.shards_degraded, 0u);
    EXPECT_EQ(resp.shards_down, 0u);
    EXPECT_EQ(resp.result, full.Query(rq.k, rq.tau));
  }
}

TEST(ShardServiceTest, GenerationKeyedCacheSurvivesFleetQueries) {
  const graph::Graph g = gen::BarabasiAlbert(90, 3, 67);
  const std::unique_ptr<ShardedQueryEngine> engine =
      ShardedQueryEngine::BuildStatic(g, StaticOptions(2));
  ASSERT_NE(engine, nullptr);
  serve::EsdQueryService::Options options;
  options.num_threads = 1;
  options.cache_bytes = 1u << 20;
  serve::EsdQueryService service(*engine, options);
  serve::QueryRequest rq;
  rq.k = 8;
  rq.tau = 2;
  const serve::QueryResponse miss = service.Query(rq);
  ASSERT_EQ(miss.status, serve::ResponseStatus::kOk);
  const serve::QueryResponse hit = service.Query(rq);
  ASSERT_EQ(hit.status, serve::ResponseStatus::kOk);
  EXPECT_EQ(hit.result, miss.result);
  ASSERT_NE(service.cache(), nullptr);
  EXPECT_GE(service.cache()->Snap().hits, 1u);
  // Cached answers still carry the fleet tally of their serving batch.
  EXPECT_EQ(hit.shards_ok, 2u);
}

// ---- Live fleet ------------------------------------------------------------

/// Applies the same updates to a shadow graph the way the live index does.
void ApplyToShadow(graph::DynamicGraph* g, const live::LiveUpdate& u) {
  const graph::VertexId hi = std::max(u.u, u.v);
  if (u.kind == live::UpdateKind::kInsert) {
    while (g->NumVertices() <= hi) g->AddVertex();
    g->InsertEdge(u.u, u.v);
  } else if (hi < g->NumVertices()) {
    g->EraseEdge(u.u, u.v);
  }
}

ShardedOptions LiveOptions(const ScratchDir& dir, uint32_t num_shards) {
  ShardedOptions options;
  options.num_shards = num_shards;
  options.dir = dir.Root();
  options.max_vertex_id = 255;
  options.wal_retry.max_attempts = 2;
  options.wal_retry.base_delay = std::chrono::microseconds(0);
  options.heal_retry_interval = std::chrono::milliseconds(2);
  return options;
}

TEST(ShardLiveTest, BroadcastWritesReachEveryShardAndMergeMatchesReference) {
  ScratchDir dir("live_parity");
  const graph::Graph bootstrap = gen::BarabasiAlbert(70, 3, 11);
  std::string error;
  std::unique_ptr<ShardedQueryEngine> engine =
      ShardedQueryEngine::Open(bootstrap, LiveOptions(dir, 3), &error);
  ASSERT_NE(engine, nullptr) << error;
  ASSERT_TRUE(engine->live_mode());
  EXPECT_EQ(engine->Counts().ok, 3u);

  graph::DynamicGraph shadow(bootstrap);
  util::Rng rng(0xD1CE);
  std::vector<live::LiveUpdate> updates;
  for (int i = 0; i < 40; ++i) {
    live::LiveUpdate u;
    u.kind = rng.NextBool(0.7) ? live::UpdateKind::kInsert
                               : live::UpdateKind::kDelete;
    u.u = static_cast<graph::VertexId>(rng.NextBounded(90));
    do {
      u.v = static_cast<graph::VertexId>(rng.NextBounded(90));
    } while (u.v == u.u);
    updates.push_back(u);
  }
  const uint64_t gen_before = engine->Generation();
  const live::ApplyResult applied =
      engine->ApplyBatchTyped({updates.data(), updates.size()});
  EXPECT_EQ(applied.status, live::ApplyStatus::kOk) << applied.message;
  EXPECT_EQ(applied.processed, updates.size());
  for (const live::LiveUpdate& u : updates) ApplyToShadow(&shadow, u);

  // Every shard's writer applied the full batch (broadcast semantics).
  for (const shard::ShardStatus& st : engine->Status()) {
    EXPECT_EQ(st.state, "ok") << "shard " << st.id << ": " << st.down_reason;
    EXPECT_EQ(st.wal_applied_seq, updates.size());
    EXPECT_EQ(st.journal_lag, 0u);
  }

  // Exact parity: an unsharded live index replaying the same history
  // assigns the same edge-id slots, so after both quiesce the merged
  // answer must match it edge for edge (same canonical order, same
  // padding fill). The fresh-build comparison below covers the scores —
  // its edge-id layout legitimately differs after deletions.
  ASSERT_TRUE(engine->RefreezeAll());
  EXPECT_GT(engine->Generation(), gen_before);
  ScratchDir ref_dir("live_parity_ref");
  live::LiveOptions ref_options;
  ref_options.wal_path = ref_dir.Sub("wal.log").string();
  ref_options.snapshot_path = ref_dir.Sub("snapshot.bin").string();
  ref_options.max_vertex_id = 255;
  std::unique_ptr<live::LiveEsdIndex> reference =
      live::LiveEsdIndex::Open(bootstrap, ref_options, &error);
  ASSERT_NE(reference, nullptr) << error;
  ASSERT_EQ(reference->ApplyBatch(updates, &error), updates.size()) << error;
  ASSERT_TRUE(reference->RefreezeNow());
  const auto ref_engine = reference->CurrentEngine();
  const FrozenEsdIndex rebuilt = core::BuildFrozenIndex(shadow.Snapshot());
  for (uint32_t tau : {1u, 2u, 3u}) {
    for (uint32_t k : {1u, 8u, 64u}) {
      const serve::ShardedOutcome got = engine->Execute(k, tau, true,
                                                        kFarDeadline);
      EXPECT_EQ(got.result, ref_engine->Query(k, tau))
          << "k=" << k << " tau=" << tau;
      EXPECT_EQ(core::Scores(got.result), core::Scores(rebuilt.Query(k, tau)))
          << "k=" << k << " tau=" << tau;
    }
  }

  // The fleet recovers to the same answers from disk.
  std::string reopen_error;
  engine.reset();
  engine = ShardedQueryEngine::Open(bootstrap, LiveOptions(dir, 3),
                                    &reopen_error);
  ASSERT_NE(engine, nullptr) << reopen_error;
  EXPECT_EQ(engine->Counts().ok, 3u);
  const serve::ShardedOutcome got = engine->Execute(16, 2, true, kFarDeadline);
  EXPECT_EQ(got.result, ref_engine->Query(16, 2));
}

TEST(ShardLiveTest, CorruptShardIsQuarantinedAtOpenOthersServe) {
  ScratchDir dir("quarantine");
  const graph::Graph bootstrap = gen::BarabasiAlbert(60, 3, 29);
  const uint32_t shards = 3;

  // Poison shard 1's WAL with a garbage header before the fleet opens.
  fs::create_directories(dir.Sub("shard-1"));
  {
    std::ofstream wal(dir.Sub("shard-1") / "wal.log", std::ios::binary);
    wal << "this is not an ESDW log";
  }

  std::string error;
  const std::unique_ptr<ShardedQueryEngine> engine =
      ShardedQueryEngine::Open(bootstrap, LiveOptions(dir, shards), &error);
  ASSERT_NE(engine, nullptr) << error;  // per-shard failure is not fatal

  const serve::ShardCounts counts = engine->Counts();
  EXPECT_EQ(counts.down, 1u);
  EXPECT_EQ(counts.ok, shards - 1);
  const std::vector<shard::ShardStatus> status = engine->Status();
  EXPECT_EQ(status[1].state, "down");
  EXPECT_NE(status[1].down_reason.find("open failed"), std::string::npos)
      << status[1].down_reason;
  EXPECT_EQ(engine->Health(), obs::HealthState::kDegraded);

  // Partial answers: exactly the healthy shards' edges, in canonical order
  // — the sub-answer of the full build restricted to shards 0 and 2.
  const FrozenEsdIndex full = core::BuildFrozenIndex(bootstrap);
  const auto f0 = shard::OwnsFilter(0, shards);
  const auto f2 = shard::OwnsFilter(2, shards);
  const serve::ShardedOutcome got =
      engine->Execute(1000, 2, /*pad_with_zero_edges=*/false, kFarDeadline);
  TopKResult want;
  for (const core::ScoredEdge& se : full.Query(1000, 2, false)) {
    if (f0(se.edge) || f2(se.edge)) want.push_back(se);
  }
  EXPECT_EQ(got.result, want);
  EXPECT_EQ(got.shards.down, 1u);

  // Strict queries through the service fail typed instead of narrowing.
  serve::EsdQueryService::Options options;
  options.num_threads = 1;
  serve::EsdQueryService service(*engine, options);
  serve::QueryRequest rq;
  rq.k = 8;
  rq.tau = 2;
  rq.strict = true;
  EXPECT_EQ(service.Query(rq).status,
            serve::ResponseStatus::kShardsUnavailable);
  rq.strict = false;
  const serve::QueryResponse partial = service.Query(rq);
  EXPECT_EQ(partial.status, serve::ResponseStatus::kOk);
  EXPECT_EQ(partial.shards_down, 1u);
}

TEST(ShardLiveTest, StaticEngineRejectsWritesTyped) {
  const graph::Graph g = gen::BarabasiAlbert(50, 2, 13);
  const std::unique_ptr<ShardedQueryEngine> engine =
      ShardedQueryEngine::BuildStatic(g, StaticOptions(2));
  ASSERT_NE(engine, nullptr);
  live::LiveUpdate u;
  u.kind = live::UpdateKind::kInsert;
  u.u = 1;
  u.v = 2;
  const live::ApplyResult r = engine->ApplyBatchTyped({&u, 1});
  EXPECT_EQ(r.status, live::ApplyStatus::kDegraded);
  EXPECT_EQ(r.processed, 0u);
  EXPECT_NE(r.message.find("read-only"), std::string::npos) << r.message;
}

TEST(ShardLiveTest, OutOfBoundsBatchRejectedBeforeAnyShard) {
  ScratchDir dir("bounds");
  const graph::Graph bootstrap = gen::BarabasiAlbert(40, 2, 37);
  std::string error;
  const std::unique_ptr<ShardedQueryEngine> engine =
      ShardedQueryEngine::Open(bootstrap, LiveOptions(dir, 2), &error);
  ASSERT_NE(engine, nullptr) << error;
  std::vector<live::LiveUpdate> batch(2);
  batch[0].kind = live::UpdateKind::kInsert;
  batch[0].u = 1;
  batch[0].v = 2;
  batch[1].kind = live::UpdateKind::kInsert;
  batch[1].u = 3;
  batch[1].v = 1000;  // > max_vertex_id (255)
  const live::ApplyResult r =
      engine->ApplyBatchTyped({batch.data(), batch.size()});
  EXPECT_EQ(r.status, live::ApplyStatus::kBounds);
  EXPECT_EQ(r.processed, 0u);
  // Whole-batch precheck: not even the in-bounds prefix reached a WAL.
  for (const shard::ShardStatus& st : engine->Status()) {
    EXPECT_EQ(st.wal_applied_seq, 0u) << "shard " << st.id;
  }
}

// ---- Wire protocol v1/v2 ---------------------------------------------------

TEST(ShardWireTest, QueryCarriesStrictAndV1PayloadStillDecodes) {
  net::QueryFrame q;
  q.cid = 42;
  q.k = 7;
  q.tau = 3;
  q.pad_with_zero_edges = 0;
  q.deadline_us = 1234;
  q.strict = 1;
  const std::string frame = net::EncodeQuery(q);

  net::FrameDecoder decoder;
  decoder.Feed(frame);
  net::Frame out;
  ASSERT_EQ(decoder.Next(&out), net::WireStatus::kOk);
  EXPECT_EQ(out.version, net::kWireVersion);
  net::QueryFrame round;
  ASSERT_EQ(net::DecodeQuery(out.payload, &round), net::WireStatus::kOk);
  EXPECT_EQ(round.cid, 42u);
  EXPECT_EQ(round.strict, 1u);
  EXPECT_EQ(round.deadline_us, 1234u);

  // A v1 client's 25-byte payload (no strict byte) reads as strict = 0.
  net::QueryFrame v1;
  ASSERT_EQ(net::DecodeQuery(
                std::string_view(out.payload).substr(0, out.payload.size() - 1),
                &v1),
            net::WireStatus::kOk);
  EXPECT_EQ(v1.cid, 42u);
  EXPECT_EQ(v1.k, 7u);
  EXPECT_EQ(v1.strict, 0u);
}

TEST(ShardWireTest, QueryResultRoundTripsShardCountsPerVersion) {
  net::QueryResultFrame r;
  r.cid = 9;
  r.status = 0;
  r.rid = 77;
  r.epoch = 5;
  r.shards_ok = 3;
  r.shards_degraded = 1;
  r.shards_down = 2;
  r.edges.push_back({1, 2, 10});
  r.edges.push_back({2, 3, 8});

  // v2 encoding round-trips the fleet tally.
  {
    net::FrameDecoder decoder;
    decoder.Feed(net::EncodeQueryResult(r, /*version=*/2));
    net::Frame frame;
    ASSERT_EQ(decoder.Next(&frame), net::WireStatus::kOk);
    EXPECT_EQ(frame.version, 2);
    net::QueryResultFrame out;
    ASSERT_EQ(net::DecodeQueryResult(frame.payload, &out),
              net::WireStatus::kOk);
    EXPECT_EQ(out.shards_ok, 3u);
    EXPECT_EQ(out.shards_degraded, 1u);
    EXPECT_EQ(out.shards_down, 2u);
    ASSERT_EQ(out.edges.size(), 2u);
    EXPECT_EQ(out.edges[1].score, 8u);
  }

  // v1 encoding omits the counts: the 29-byte prefix decodes with all
  // three zeroed — exactly what a v1 client expects to see.
  {
    net::FrameDecoder decoder;
    decoder.Feed(net::EncodeQueryResult(r, /*version=*/1));
    net::Frame frame;
    ASSERT_EQ(decoder.Next(&frame), net::WireStatus::kOk);
    EXPECT_EQ(frame.version, 1);
    net::QueryResultFrame out;
    ASSERT_EQ(net::DecodeQueryResult(frame.payload, &out),
              net::WireStatus::kOk);
    EXPECT_EQ(out.cid, 9u);
    EXPECT_EQ(out.shards_ok, 0u);
    EXPECT_EQ(out.shards_degraded, 0u);
    EXPECT_EQ(out.shards_down, 0u);
    ASSERT_EQ(out.edges.size(), 2u);
    EXPECT_EQ(out.edges[0].u, 1u);
  }
}

}  // namespace
}  // namespace esd
