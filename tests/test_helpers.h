#ifndef ESD_TESTS_TEST_HELPERS_H_
#define ESD_TESTS_TEST_HELPERS_H_

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/esd_index.h"
#include "core/naive_topk.h"
#include "core/topk_result.h"
#include "graph/graph.h"

namespace esd::test {

/// Flattened image of an EsdIndex: c -> ordered (score, edge) entries.
using IndexImage =
    std::map<uint32_t, std::vector<std::pair<uint32_t, graph::EdgeId>>>;

inline IndexImage ImageOf(const core::EsdIndex& index) {
  IndexImage image;
  index.ForEachList([&image](uint32_t c, const core::EsdIndex::List& list) {
    auto& entries = image[c];
    list.ForEachInOrder([&entries](const core::EsdIndex::Entry& e) {
      entries.emplace_back(e.score, e.e);
      return true;
    });
  });
  return image;
}

/// Asserts two indexes have identical lists (same C, same ordered entries).
inline void ExpectIndexesEqual(const core::EsdIndex& a,
                               const core::EsdIndex& b) {
  EXPECT_EQ(ImageOf(a), ImageOf(b));
  EXPECT_EQ(a.NumEntries(), b.NumEntries());
}

/// Checks the EsdIndex invariant from first principles: every list H(c)
/// contains exactly the edges with max component >= c, keyed by the score
/// at threshold c, and C is exactly the set of occurring sizes.
/// `sizes_of(e)` must return edge e's sorted component sizes; `edge_ids`
/// the live edge ids.
template <typename SizesFn>
void ExpectIndexInvariant(const core::EsdIndex& index,
                          const std::vector<graph::EdgeId>& edge_ids,
                          SizesFn&& sizes_of) {
  std::map<uint32_t, std::vector<std::pair<uint32_t, graph::EdgeId>>> want;
  std::set<uint32_t> all_sizes;
  for (graph::EdgeId e : edge_ids) {
    const std::vector<uint32_t>& sizes = sizes_of(e);
    for (uint32_t s : sizes) all_sizes.insert(s);
  }
  for (uint32_t c : all_sizes) {
    auto& list = want[c];
    for (graph::EdgeId e : edge_ids) {
      const std::vector<uint32_t>& sizes = sizes_of(e);
      if (sizes.empty() || sizes.back() < c) continue;
      uint32_t score = static_cast<uint32_t>(
          sizes.end() - std::lower_bound(sizes.begin(), sizes.end(), c));
      list.emplace_back(score, e);
    }
    std::sort(list.begin(), list.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
  }
  EXPECT_EQ(ImageOf(index), want);
}

/// Descending score vector of the exact top-k (ground truth).
inline std::vector<uint32_t> NaiveTopScores(const graph::Graph& g, uint32_t k,
                                            uint32_t tau) {
  return core::Scores(core::NaiveTopK(g, k, tau));
}

// ---------------------------------------------------------------------------
// A minimal JSON DOM, enough to schema-check the exporters' output. Not a
// general parser: escapes are validated and skipped, numbers go through
// strtod, and trailing garbage fails the parse.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* Find(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text)
      : p_(text.data()), end_(text.data() + text.size()) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out)) return false;
    SkipWs();
    return p_ == end_;
  }

 private:
  void SkipWs() {
    while (p_ < end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      ++p_;
    }
  }

  bool Literal(const char* word) {
    const char* q = p_;
    for (; *word != '\0'; ++word, ++q) {
      if (q >= end_ || *q != *word) return false;
    }
    p_ = q;
    return true;
  }

  bool ParseString(std::string* out) {
    if (p_ >= end_ || *p_ != '"') return false;
    ++p_;
    out->clear();
    while (p_ < end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ >= end_) return false;
        const char c = *p_++;
        if (c == 'u') {
          for (int i = 0; i < 4; ++i, ++p_) {
            if (p_ >= end_ || !std::isxdigit(static_cast<unsigned char>(*p_)))
              return false;
          }
          out->push_back('?');  // code point identity is irrelevant here
        } else if (c == '"' || c == '\\' || c == '/' || c == 'b' ||
                   c == 'f' || c == 'n' || c == 'r' || c == 't') {
          out->push_back(c == 'n' ? '\n' : c);
        } else {
          return false;
        }
      } else {
        out->push_back(*p_++);
      }
    }
    if (p_ >= end_) return false;
    ++p_;  // closing quote
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (p_ >= end_) return false;
    if (*p_ == '{') {
      ++p_;
      out->kind = JsonValue::Kind::kObject;
      SkipWs();
      if (p_ < end_ && *p_ == '}') {
        ++p_;
        return true;
      }
      while (true) {
        SkipWs();
        std::string key;
        if (!ParseString(&key)) return false;
        SkipWs();
        if (p_ >= end_ || *p_ != ':') return false;
        ++p_;
        JsonValue child;
        if (!ParseValue(&child)) return false;
        out->object.emplace(std::move(key), std::move(child));
        SkipWs();
        if (p_ < end_ && *p_ == ',') {
          ++p_;
          continue;
        }
        break;
      }
      if (p_ >= end_ || *p_ != '}') return false;
      ++p_;
      return true;
    }
    if (*p_ == '[') {
      ++p_;
      out->kind = JsonValue::Kind::kArray;
      SkipWs();
      if (p_ < end_ && *p_ == ']') {
        ++p_;
        return true;
      }
      while (true) {
        JsonValue child;
        if (!ParseValue(&child)) return false;
        out->array.push_back(std::move(child));
        SkipWs();
        if (p_ < end_ && *p_ == ',') {
          ++p_;
          continue;
        }
        break;
      }
      if (p_ >= end_ || *p_ != ']') return false;
      ++p_;
      return true;
    }
    if (*p_ == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->str);
    }
    if (Literal("true")) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return true;
    }
    if (Literal("false")) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return true;
    }
    if (Literal("null")) {
      out->kind = JsonValue::Kind::kNull;
      return true;
    }
    char* after = nullptr;
    const double v = std::strtod(p_, &after);
    if (after == p_ || after > end_) return false;
    out->kind = JsonValue::Kind::kNumber;
    out->number = v;
    p_ = after;
    return true;
  }

  const char* p_;
  const char* end_;
};

}  // namespace esd::test

#endif  // ESD_TESTS_TEST_HELPERS_H_
