#ifndef ESD_TESTS_TEST_HELPERS_H_
#define ESD_TESTS_TEST_HELPERS_H_

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/esd_index.h"
#include "core/naive_topk.h"
#include "core/topk_result.h"
#include "graph/graph.h"

namespace esd::test {

/// Flattened image of an EsdIndex: c -> ordered (score, edge) entries.
using IndexImage =
    std::map<uint32_t, std::vector<std::pair<uint32_t, graph::EdgeId>>>;

inline IndexImage ImageOf(const core::EsdIndex& index) {
  IndexImage image;
  index.ForEachList([&image](uint32_t c, const core::EsdIndex::List& list) {
    auto& entries = image[c];
    list.ForEachInOrder([&entries](const core::EsdIndex::Entry& e) {
      entries.emplace_back(e.score, e.e);
      return true;
    });
  });
  return image;
}

/// Asserts two indexes have identical lists (same C, same ordered entries).
inline void ExpectIndexesEqual(const core::EsdIndex& a,
                               const core::EsdIndex& b) {
  EXPECT_EQ(ImageOf(a), ImageOf(b));
  EXPECT_EQ(a.NumEntries(), b.NumEntries());
}

/// Checks the EsdIndex invariant from first principles: every list H(c)
/// contains exactly the edges with max component >= c, keyed by the score
/// at threshold c, and C is exactly the set of occurring sizes.
/// `sizes_of(e)` must return edge e's sorted component sizes; `edge_ids`
/// the live edge ids.
template <typename SizesFn>
void ExpectIndexInvariant(const core::EsdIndex& index,
                          const std::vector<graph::EdgeId>& edge_ids,
                          SizesFn&& sizes_of) {
  std::map<uint32_t, std::vector<std::pair<uint32_t, graph::EdgeId>>> want;
  std::set<uint32_t> all_sizes;
  for (graph::EdgeId e : edge_ids) {
    const std::vector<uint32_t>& sizes = sizes_of(e);
    for (uint32_t s : sizes) all_sizes.insert(s);
  }
  for (uint32_t c : all_sizes) {
    auto& list = want[c];
    for (graph::EdgeId e : edge_ids) {
      const std::vector<uint32_t>& sizes = sizes_of(e);
      if (sizes.empty() || sizes.back() < c) continue;
      uint32_t score = static_cast<uint32_t>(
          sizes.end() - std::lower_bound(sizes.begin(), sizes.end(), c));
      list.emplace_back(score, e);
    }
    std::sort(list.begin(), list.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
  }
  EXPECT_EQ(ImageOf(index), want);
}

/// Descending score vector of the exact top-k (ground truth).
inline std::vector<uint32_t> NaiveTopScores(const graph::Graph& g, uint32_t k,
                                            uint32_t tau) {
  return core::Scores(core::NaiveTopK(g, k, tau));
}

}  // namespace esd::test

#endif  // ESD_TESTS_TEST_HELPERS_H_
