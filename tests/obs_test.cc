// The observability layer: log-scale histogram edge cases and its 12.5%
// bucket-error contract, the metric registry (types, sanitization, both
// exporters — the Prometheus text is checked with a real line parser, the
// JSON fields with a real JSON parser), RAII trace spans with their
// per-thread rings and Chrome trace_event export (schema-validated), the
// PhaseSeries gauges the bench breakdowns read, the per-engine work
// counters, and the serve metrics now hosted on the registry. Suites are
// prefixed Obs* so the TSan CI job picks up the concurrent ones by name.

#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/vertex_diversity_index.h"
#include "core/dynamic_index.h"
#include "core/esd_index.h"
#include "core/frozen_index.h"
#include "core/index_builder.h"
#include "core/online_topk.h"
#include "core/parallel_builder.h"
#include "core/query_engine.h"
#include "gen/barabasi_albert.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/search_stats.h"
#include "obs/trace.h"
#include "serve/metrics.h"
#include "tests/test_helpers.h"

namespace esd {
namespace {

using obs::LatencyHistogram;
using obs::MetricRegistry;
using obs::Tracer;

// JSON schema-check DOM shared with telemetry_test.cc.
using test::JsonParser;
using test::JsonValue;

// The three layers share one stats type — satellite of the dedup: a change
// to the online-search counters is a change everywhere at once.
static_assert(std::is_same_v<core::OnlineStats, obs::OnlineSearchStats>);
static_assert(
    std::is_same_v<baselines::VertexOnlineStats, obs::OnlineSearchStats>);

// ---------------------------------------------------------------------------
// LatencyHistogram

TEST(ObsHistogramTest, EmptySnapshotIsAllZeros) {
  LatencyHistogram h;
  const LatencyHistogram::Snapshot s = h.Snap();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.p50_us, 0.0);
  EXPECT_EQ(s.p95_us, 0.0);
  EXPECT_EQ(s.p99_us, 0.0);
  EXPECT_EQ(s.max_us, 0.0);
  EXPECT_EQ(s.mean_us, 0.0);
  EXPECT_EQ(s.sum_us, 0.0);
}

TEST(ObsHistogramTest, SingleValueRoundTrip) {
  LatencyHistogram h;
  h.RecordNanos(1'000'000);  // 1 ms
  const LatencyHistogram::Snapshot s = h.Snap();
  EXPECT_EQ(s.count, 1u);
  EXPECT_NEAR(s.p50_us, 1000.0, 1000.0 * 0.125);
  EXPECT_DOUBLE_EQ(s.max_us, 1000.0);
  EXPECT_DOUBLE_EQ(s.sum_us, 1000.0);
  EXPECT_DOUBLE_EQ(s.mean_us, 1000.0);
}

TEST(ObsHistogramTest, BucketErrorWithin12Point5Percent) {
  // Every percentile of a single-value histogram must land within 12.5% of
  // the recorded value (the HDR bucket-scheme contract), across nine
  // decades plus power-of-two boundaries on both sides.
  std::vector<uint64_t> values;
  uint64_t lcg = 0x2545F4914F6CDD1Dull;
  for (uint64_t mag = 1; mag <= 1'000'000'000ull; mag *= 10) {
    for (int i = 0; i < 8; ++i) {
      lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
      values.push_back(mag + (lcg >> 33) % (9 * mag));
    }
  }
  for (int bit = 1; bit < 40; ++bit) {
    const uint64_t p = uint64_t{1} << bit;
    values.push_back(p - 1);
    values.push_back(p);
    values.push_back(p + 1);
  }
  for (const uint64_t ns : values) {
    auto h = std::make_unique<LatencyHistogram>();
    h->RecordNanos(ns);
    const LatencyHistogram::Snapshot s = h->Snap();
    const double got_ns = s.p50_us * 1e3;
    const double want_ns = static_cast<double>(ns);
    EXPECT_LE(std::abs(got_ns - want_ns), 0.125 * want_ns + 0.5)
        << "recorded " << ns << " ns, p50 bucket said " << got_ns << " ns";
  }
}

TEST(ObsHistogramTest, RecordMicrosSaturatesInsteadOfOverflowing) {
  LatencyHistogram h;
  h.RecordMicros(-3.5);  // negative -> 0
  h.RecordMicros(std::nan(""));
  h.RecordMicros(std::numeric_limits<double>::infinity());
  h.RecordMicros(1e40);  // above the saturation point
  h.RecordMicros(5.0);
  const LatencyHistogram::Snapshot s = h.Snap();
  EXPECT_EQ(s.count, 5u);
  // inf and 1e40 both clamp to the saturation cap, which is the max.
  EXPECT_DOUBLE_EQ(
      s.max_us, static_cast<double>(LatencyHistogram::kSaturationNs) * 1e-3);
  EXPECT_TRUE(std::isfinite(s.p50_us));
  EXPECT_TRUE(std::isfinite(s.p95_us));
  EXPECT_TRUE(std::isfinite(s.p99_us));
  EXPECT_TRUE(std::isfinite(s.mean_us));
  EXPECT_TRUE(std::isfinite(s.sum_us));
}

TEST(ObsHistogramTest, PercentilesAreOrdered) {
  LatencyHistogram h;
  uint64_t lcg = 99;
  for (int i = 0; i < 10000; ++i) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    h.RecordNanos(1 + (lcg >> 33) % 1'000'000'000ull);
  }
  const LatencyHistogram::Snapshot s = h.Snap();
  EXPECT_EQ(s.count, 10000u);
  EXPECT_LE(s.p50_us, s.p95_us);
  EXPECT_LE(s.p95_us, s.p99_us);
  // Percentiles are bucket midpoints, which may exceed the exact max by at
  // most the bucket width (12.5%).
  EXPECT_LE(s.p99_us, s.max_us * 1.125 + 0.5);
  EXPECT_GT(s.mean_us, 0.0);
}

// ---------------------------------------------------------------------------
// MetricRegistry

TEST(ObsMetricsTest, CounterAndGaugeRoundTrip) {
  MetricRegistry reg;
  obs::Counter& c = reg.GetCounter("requests_total", "help");
  c.Inc();
  c.Inc(4);
  EXPECT_EQ(&c, &reg.GetCounter("requests_total"));  // stable reference
  EXPECT_EQ(reg.CounterValue("requests_total"), 5u);

  obs::Gauge& g = reg.GetGauge("depth");
  g.Set(3.0);
  g.Add(0.5);
  EXPECT_DOUBLE_EQ(reg.GaugeValue("depth"), 3.5);
  EXPECT_EQ(reg.NumMetrics(), 2u);
  // Absent or wrong-typed names read as zero, never throw.
  EXPECT_EQ(reg.CounterValue("no_such_metric"), 0u);
  EXPECT_DOUBLE_EQ(reg.GaugeValue("requests_total"), 0.0);
}

TEST(ObsMetricsTest, SanitizeNameMapsToPrometheusCharset) {
  EXPECT_EQ(MetricRegistry::SanitizeName("build.clique_enum"),
            "build_clique_enum");
  EXPECT_EQ(MetricRegistry::SanitizeName("a:b_C9"), "a:b_C9");
  EXPECT_EQ(MetricRegistry::SanitizeName("9lives"), "_9lives");
  EXPECT_EQ(MetricRegistry::SanitizeName(""), "_");
  EXPECT_EQ(MetricRegistry::SanitizeName("sp ace/slash"), "sp_ace_slash");
}

TEST(ObsMetricsTest, TypeMismatchReturnsHarmlessDummy) {
  MetricRegistry reg;
  reg.GetCounter("mixed").Inc(3);
  // Wrong-typed lookups must not corrupt the registered metric.
  reg.GetGauge("mixed").Set(99.0);
  reg.GetHistogram("mixed").RecordMicros(1.0);
  EXPECT_EQ(reg.CounterValue("mixed"), 3u);
  EXPECT_DOUBLE_EQ(reg.GaugeValue("mixed"), 0.0);  // not a gauge
  EXPECT_EQ(reg.NumMetrics(), 1u);
}

// The acceptance-criterion parser test: every line of the exposition must
// be a comment (# HELP / # TYPE) or a `name[{quantile="q"}] value` sample,
// each sample's metric must have had a preceding # TYPE, and the values
// must round-trip.
TEST(ObsMetricsTest, PrometheusTextExpositionParses) {
  MetricRegistry reg;
  reg.GetCounter("esd_test_requests_total", "Requests\nwith \\ tricky help")
      .Inc(3);
  reg.GetGauge("esd_test_depth", "Queue depth").Set(2.5);
  obs::Histogram& h = reg.GetHistogram("esd_test_latency_us", "Latency");
  h.RecordMicros(100.0);
  h.RecordMicros(200.0);
  h.RecordMicros(300.0);

  const std::string text = reg.PrometheusText();
  ASSERT_FALSE(text.empty());
  ASSERT_EQ(text.back(), '\n');

  std::set<std::string> typed;   // metrics with a # TYPE line seen so far
  std::set<std::string> helped;  // metrics with a # HELP line seen so far
  std::map<std::string, double> samples;
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t eol = text.find('\n', pos);
    ASSERT_NE(eol, std::string::npos) << "unterminated line";
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ASSERT_FALSE(line.empty());
    if (line.rfind("# HELP ", 0) == 0) {
      const size_t sp = line.find(' ', 7);
      ASSERT_NE(sp, std::string::npos) << line;
      const std::string name = line.substr(7, sp - 7);
      EXPECT_TRUE(helped.insert(name).second)
          << "duplicate # HELP for " << name;
      // Help escaping contract: any backslash introduces \\ or \n, so the
      // help text can never smuggle a raw newline or ambiguous escape.
      const std::string help = line.substr(sp + 1);
      for (size_t b = 0; b < help.size(); ++b) {
        if (help[b] != '\\') continue;
        ASSERT_LT(b + 1, help.size()) << "dangling backslash: " << line;
        EXPECT_TRUE(help[b + 1] == '\\' || help[b + 1] == 'n') << line;
        ++b;
      }
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      const size_t sp = line.find(' ', 7);
      ASSERT_NE(sp, std::string::npos) << line;
      const std::string name = line.substr(7, sp - 7);
      const std::string type = line.substr(sp + 1);
      EXPECT_TRUE(type == "counter" || type == "gauge" || type == "summary")
          << line;
      // Exposition convention: # HELP precedes # TYPE for every metric.
      EXPECT_TRUE(helped.count(name)) << "# TYPE before # HELP: " << line;
      typed.insert(name);
      continue;
    }
    ASSERT_NE(line[0], '#') << "unknown comment: " << line;
    // Sample: name, optional {quantile="X"}, space, float.
    size_t i = 0;
    while (i < line.size() &&
           (std::isalnum(static_cast<unsigned char>(line[i])) ||
            line[i] == '_' || line[i] == ':')) {
      ++i;
    }
    ASSERT_GT(i, 0u) << line;
    std::string name = line.substr(0, i);
    std::string key = name;
    if (i < line.size() && line[i] == '{') {
      const size_t close = line.find('}', i);
      ASSERT_NE(close, std::string::npos) << line;
      const std::string labels = line.substr(i, close - i + 1);
      EXPECT_EQ(labels.rfind("{quantile=\"", 0), 0u) << line;
      key += labels;
      i = close + 1;
    }
    ASSERT_LT(i, line.size()) << line;
    ASSERT_EQ(line[i], ' ') << line;
    char* after = nullptr;
    const double value = std::strtod(line.c_str() + i + 1, &after);
    EXPECT_EQ(*after, '\0') << "trailing junk in: " << line;
    // _sum/_count samples belong to the summary typed under the base name.
    std::string base = name;
    for (const char* suffix : {"_sum", "_count"}) {
      const std::string s(suffix);
      if (base.size() > s.size() &&
          base.compare(base.size() - s.size(), s.size(), s) == 0 &&
          typed.count(base.substr(0, base.size() - s.size())) > 0) {
        base = base.substr(0, base.size() - s.size());
      }
    }
    EXPECT_TRUE(typed.count(base)) << "sample before # TYPE: " << line;
    samples[key] = value;
  }

  EXPECT_DOUBLE_EQ(samples.at("esd_test_requests_total"), 3.0);
  EXPECT_DOUBLE_EQ(samples.at("esd_test_depth"), 2.5);
  EXPECT_DOUBLE_EQ(samples.at("esd_test_latency_us_count"), 3.0);
  EXPECT_NEAR(samples.at("esd_test_latency_us_sum"), 600.0, 1e-6);
  EXPECT_NEAR(samples.at("esd_test_latency_us{quantile=\"0.5\"}"), 200.0,
              200.0 * 0.125);
  EXPECT_NEAR(samples.at("esd_test_latency_us{quantile=\"0.99\"}"), 300.0,
              300.0 * 0.125);
  // Every typed metric carried help, and vice versa.
  EXPECT_EQ(typed, helped);
}

// Samples() is the exporter MetricHistory snapshots: counters and histogram
// _count/_sum columns are monotone (rateable), gauges are levels.
TEST(ObsMetricsTest, SamplesExportsAllMetricKinds) {
  MetricRegistry reg;
  reg.GetCounter("esd_s_total", "c").Inc(7);
  reg.GetGauge("esd_s_depth", "g").Set(1.25);
  reg.GetHistogram("esd_s_lat_us", "h").RecordMicros(50.0);

  std::map<std::string, std::pair<double, bool>> got;
  for (const obs::MetricRegistry::Sample& s : reg.Samples()) {
    got[s.name] = {s.value, s.monotone};
  }
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got.at("esd_s_total"), (std::pair<double, bool>{7.0, true}));
  EXPECT_EQ(got.at("esd_s_depth"), (std::pair<double, bool>{1.25, false}));
  EXPECT_EQ(got.at("esd_s_lat_us_count"),
            (std::pair<double, bool>{1.0, true}));
  EXPECT_EQ(got.at("esd_s_lat_us_sum"), (std::pair<double, bool>{50.0, true}));
}

TEST(ObsMetricsTest, JsonFieldsFormValidJson) {
  MetricRegistry reg;
  reg.GetCounter("hits_total").Inc(7);
  reg.GetGauge("temp").Set(-1.5);
  reg.GetHistogram("lat_us").RecordMicros(50.0);

  JsonValue root;
  // Built with append, not operator+: GCC 12's -Wrestrict misfires on the
  // inlined concatenation chain.
  std::string wrapped;
  wrapped.push_back('{');
  wrapped.append(reg.JsonFields());
  wrapped.push_back('}');
  ASSERT_TRUE(JsonParser(wrapped).Parse(&root));
  ASSERT_EQ(root.kind, JsonValue::Kind::kObject);
  ASSERT_NE(root.Find("hits_total"), nullptr);
  EXPECT_DOUBLE_EQ(root.Find("hits_total")->number, 7.0);
  EXPECT_DOUBLE_EQ(root.Find("temp")->number, -1.5);
  ASSERT_NE(root.Find("lat_us_p50"), nullptr);
  ASSERT_NE(root.Find("lat_us_count"), nullptr);
  EXPECT_DOUBLE_EQ(root.Find("lat_us_count")->number, 1.0);
}

TEST(ObsMetricsTest, ConcurrentRegistrationAndRecording) {
  MetricRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kOps = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      for (int i = 0; i < kOps; ++i) {
        reg.GetCounter("shared_total").Inc();
        reg.GetGauge("shared_gauge").Set(static_cast<double>(t));
        reg.GetHistogram("shared_us").RecordMicros(static_cast<double>(i));
        if (i % 500 == 0) (void)reg.PrometheusText();  // export races record
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(reg.CounterValue("shared_total"),
            static_cast<uint64_t>(kThreads) * kOps);
  JsonValue root;
  std::string wrapped;
  wrapped.push_back('{');
  wrapped.append(reg.JsonFields());
  wrapped.push_back('}');
  EXPECT_TRUE(JsonParser(wrapped).Parse(&root));
}

// ---------------------------------------------------------------------------
// PhaseSeries (gauge side exists in both ESD_OBS modes)

TEST(ObsPhaseTest, PhaseSeriesAccumulatesPerPhaseGauges) {
  MetricRegistry reg;
  {
    obs::PhaseSeries phases(&reg);
    phases.Begin("test.alpha");
    // Keep the phase visibly non-empty on any clock resolution.
    const uint64_t start = obs::MonotonicNanos();
    while (obs::MonotonicNanos() - start < 100'000) {
    }
    phases.Begin("test.beta");
  }  // destructor ends beta
  EXPECT_GT(reg.GaugeValue("esd_phase_test_alpha_seconds"), 0.0);
  EXPECT_GE(reg.GaugeValue("esd_phase_test_beta_seconds"), 0.0);
  EXPECT_EQ(reg.NumMetrics(), 2u);

  // A second series on the same registry accumulates (benches diff).
  const double before = reg.GaugeValue("esd_phase_test_alpha_seconds");
  {
    obs::PhaseSeries phases(&reg);
    phases.Begin("test.alpha");
    const uint64_t start = obs::MonotonicNanos();
    while (obs::MonotonicNanos() - start < 100'000) {
    }
  }
  EXPECT_GT(reg.GaugeValue("esd_phase_test_alpha_seconds"), before);
}

// ---------------------------------------------------------------------------
// Trace spans + Chrome export (compiled in only when ESD_OBS=ON)

#if ESD_OBS_TRACING

TEST(ObsTraceTest, SpanRecordsOnDestruction) {
  Tracer& tracer = Tracer::Global();
  tracer.Clear();
  const uint64_t before = tracer.NumEventsRecorded();
  {
    ESD_TRACE_SPAN("obs_test.alpha_span");
  }
  EXPECT_EQ(tracer.NumEventsRecorded(), before + 1);
  EXPECT_NE(tracer.ChromeTraceJson().find("obs_test.alpha_span"),
            std::string::npos);
}

TEST(ObsTraceTest, DisabledTracerSkipsRecording) {
  Tracer& tracer = Tracer::Global();
  tracer.Clear();
  tracer.SetEnabled(false);
  {
    ESD_TRACE_SPAN("obs_test.should_not_appear");
  }
  tracer.SetEnabled(true);
  EXPECT_EQ(tracer.NumEventsRecorded(), 0u);
  EXPECT_EQ(tracer.ChromeTraceJson().find("obs_test.should_not_appear"),
            std::string::npos);
}

TEST(ObsTraceTest, RingWrapKeepsNewestCapacityEvents) {
  Tracer& tracer = Tracer::Global();
  tracer.Clear();
  const uint64_t n = Tracer::kRingCapacity + 123;
  for (uint64_t i = 0; i < n; ++i) {
    tracer.RecordComplete("obs_test.wrap", i, 1);
  }
  EXPECT_EQ(tracer.NumEventsRecorded(), n);  // monotonic, counts overwrites
  const std::string json = tracer.ChromeTraceJson();
  size_t exported = 0;
  for (size_t pos = json.find("obs_test.wrap"); pos != std::string::npos;
       pos = json.find("obs_test.wrap", pos + 1)) {
    ++exported;
  }
  EXPECT_EQ(exported, Tracer::kRingCapacity);  // the newest ring's worth
}

// The acceptance-criterion schema test: a parallel build must export valid
// Chrome trace JSON with per-phase spans and per-worker-thread tracks.
TEST(ObsTraceTest, ParallelBuildExportsValidChromeTrace) {
  Tracer& tracer = Tracer::Global();
  tracer.Clear();
  graph::Graph g = gen::BarabasiAlbert(300, 5, 7);
  core::FrozenEsdIndex frozen = core::BuildFrozenIndexParallel(g, 3);
  ASSERT_GT(frozen.NumEntries(), 0u);

  JsonValue root;
  ASSERT_TRUE(JsonParser(tracer.ChromeTraceJson()).Parse(&root));
  ASSERT_EQ(root.kind, JsonValue::Kind::kObject);
  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::Kind::kArray);

  std::set<std::string> span_names;
  std::set<std::string> thread_names;
  for (const JsonValue& e : events->array) {
    ASSERT_EQ(e.kind, JsonValue::Kind::kObject);
    const JsonValue* ph = e.Find("ph");
    ASSERT_NE(ph, nullptr);
    ASSERT_EQ(ph->kind, JsonValue::Kind::kString);
    const JsonValue* name = e.Find("name");
    ASSERT_NE(name, nullptr);
    ASSERT_NE(e.Find("pid"), nullptr);
    EXPECT_DOUBLE_EQ(e.Find("pid")->number, 1.0);
    ASSERT_NE(e.Find("tid"), nullptr);
    EXPECT_EQ(e.Find("tid")->kind, JsonValue::Kind::kNumber);
    if (ph->str == "X") {
      EXPECT_FALSE(name->str.empty());
      const JsonValue* ts = e.Find("ts");
      const JsonValue* dur = e.Find("dur");
      ASSERT_NE(ts, nullptr);
      ASSERT_NE(dur, nullptr);
      EXPECT_EQ(ts->kind, JsonValue::Kind::kNumber);
      EXPECT_GE(dur->number, 0.0);
      span_names.insert(name->str);
    } else {
      ASSERT_EQ(ph->str, "M") << "unexpected event phase " << ph->str;
      EXPECT_EQ(name->str, "thread_name");
      const JsonValue* args = e.Find("args");
      ASSERT_NE(args, nullptr);
      const JsonValue* tname = args->Find("name");
      ASSERT_NE(tname, nullptr);
      thread_names.insert(tname->str);
    }
  }
  // The builder's phase spans (recorded on the calling thread).
  EXPECT_TRUE(span_names.count("build.dsu_init"));
  EXPECT_TRUE(span_names.count("build.orientation"));
  EXPECT_TRUE(span_names.count("build.clique_enum"));
  EXPECT_TRUE(span_names.count("build.extract_sizes"));
  EXPECT_TRUE(span_names.count("build.slab_sort"));
  // Per-chunk spans from the parallel fan-out.
  EXPECT_TRUE(span_names.count("build.clique_enum.chunk"));
  // The pool's worker threads registered named tracks.
  size_t pool_tracks = 0;
  for (const std::string& t : thread_names) {
    if (t.rfind("esd-pool-", 0) == 0) ++pool_tracks;
  }
  EXPECT_GE(pool_tracks, 2u);  // 3 build threads = main + 2 workers
}

TEST(ObsTraceTest, ConcurrentRecordingAndExport) {
  Tracer& tracer = Tracer::Global();
  tracer.Clear();
  std::atomic<bool> stop{false};
  std::atomic<int> warmed{0};
  std::vector<std::thread> recorders;
  for (int t = 0; t < 4; ++t) {
    recorders.emplace_back([&stop, &warmed] {
      {
        ESD_TRACE_SPAN("obs_test.concurrent");
      }
      warmed.fetch_add(1, std::memory_order_relaxed);
      while (!stop.load(std::memory_order_relaxed)) {
        ESD_TRACE_SPAN("obs_test.concurrent");
      }
    });
  }
  // Don't race past threads that haven't been scheduled yet: every
  // recorder lands one span before the exports start.
  while (warmed.load(std::memory_order_relaxed) < 4) std::this_thread::yield();
  std::string last;
  for (int i = 0; i < 20; ++i) last = Tracer::Global().ChromeTraceJson();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : recorders) t.join();
  JsonValue root;
  EXPECT_TRUE(JsonParser(last).Parse(&root)) << "torn export is not JSON";
  // The final quiescent export must also parse and contain the span.
  EXPECT_NE(tracer.ChromeTraceJson().find("obs_test.concurrent"),
            std::string::npos);
}

#else  // !ESD_OBS_TRACING

TEST(ObsTraceTest, CompiledOutStubsReportUnavailable) {
  Tracer& tracer = Tracer::Global();
  EXPECT_FALSE(tracer.enabled());
  {
    ESD_TRACE_SPAN("obs_test.compiled_out");
  }
  EXPECT_EQ(tracer.NumEventsRecorded(), 0u);
  EXPECT_EQ(tracer.ChromeTraceJson(), "{\"traceEvents\":[]}");
  std::string error;
  EXPECT_FALSE(tracer.WriteChromeTrace("/tmp/unused.json", &error));
  EXPECT_NE(error.find("ESD_OBS=OFF"), std::string::npos);
}

#endif  // ESD_OBS_TRACING

// ---------------------------------------------------------------------------
// Engine work counters

TEST(ObsEngineCountersTest, IndexEnginesCountQueries) {
  graph::Graph g = gen::BarabasiAlbert(200, 4, 11);

  core::EsdIndex treap = core::BuildIndexClique(g);
  (void)treap.Query(5, 2);
  (void)treap.Query(5, 3);
  core::EngineCounters c = treap.Counters();
  EXPECT_EQ(c.queries, 2u);
  EXPECT_GE(c.slab_searches, 2u);
  EXPECT_GE(c.entries_scanned, 2u);

  core::FrozenEsdIndex frozen = core::BuildFrozenIndex(g);
  (void)frozen.Query(5, 2);
  c = frozen.Counters();
  EXPECT_EQ(c.queries, 1u);
  EXPECT_GE(c.slab_searches, 1u);
  EXPECT_GE(c.entries_scanned, 1u);
  // Index engines don't drive the online-search fields.
  EXPECT_EQ(c.exact_computations, 0u);
}

TEST(ObsEngineCountersTest, OnlineEngineExposesPruningPower) {
  graph::Graph g = gen::BarabasiAlbert(200, 4, 13);
  std::string error;
  std::unique_ptr<core::EsdQueryEngine> engine =
      core::BuildQueryEngine(g, "online", &error);
  ASSERT_NE(engine, nullptr) << error;
  (void)engine->Query(5, 2);
  const core::EngineCounters c = engine->Counters();
  EXPECT_EQ(c.queries, 1u);
  EXPECT_GE(c.heap_pops, 1u);
  EXPECT_GE(c.exact_computations, 1u);
}

TEST(ObsEngineCountersTest, DynamicIndexDelegatesAndCountsMutations) {
  graph::Graph g = gen::BarabasiAlbert(120, 3, 17);
  core::DynamicEsdIndex dyn(g);
  (void)dyn.Query(5, 2);
  EXPECT_GE(dyn.Counters().queries, 1u);

  MetricRegistry& global = MetricRegistry::Global();
  const uint64_t inserts_before =
      global.CounterValue("esd_dynamic_inserts_total");
  const uint64_t deletes_before =
      global.CounterValue("esd_dynamic_deletes_total");
  const graph::VertexId v = dyn.AddVertex();
  ASSERT_TRUE(dyn.InsertEdge(v, 0));
  ASSERT_TRUE(dyn.DeleteEdge(v, 0));
  EXPECT_EQ(global.CounterValue("esd_dynamic_inserts_total"),
            inserts_before + 1);
  EXPECT_EQ(global.CounterValue("esd_dynamic_deletes_total"),
            deletes_before + 1);
}

TEST(ObsEngineCountersTest, ExportPublishesGauges) {
  graph::Graph g = gen::BarabasiAlbert(150, 4, 19);
  core::FrozenEsdIndex frozen = core::BuildFrozenIndex(g);
  (void)frozen.Query(10, 2);
  (void)frozen.Query(10, 3);

  MetricRegistry reg;
  core::ExportEngineCounters(frozen, &reg);
  EXPECT_DOUBLE_EQ(reg.GaugeValue("esd_engine_queries"), 2.0);
  EXPECT_GE(reg.GaugeValue("esd_engine_slab_searches"), 2.0);
  EXPECT_GE(reg.GaugeValue("esd_engine_entries_scanned"), 1.0);
  // Re-export overwrites with current lifetime totals, not a second sum.
  (void)frozen.Query(10, 4);
  core::ExportEngineCounters(frozen, &reg);
  EXPECT_DOUBLE_EQ(reg.GaugeValue("esd_engine_queries"), 3.0);
}

TEST(ObsSearchStatsTest, VertexSearchCertifiesZeroBounds) {
  // Star graph: every leaf has degree 1, so at tau = 2 its bound is 0 and
  // the vertex search must certify it without an exact computation.
  const uint32_t n = 50;
  std::vector<graph::Edge> edges;
  for (uint32_t i = 1; i < n; ++i) edges.push_back(graph::MakeEdge(0, i));
  graph::Graph star = graph::Graph::FromEdges(n, std::move(edges));

  baselines::VertexOnlineStats stats;
  auto top = baselines::OnlineVertexTopK(star, 3, 2, &stats);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_GE(stats.zero_bound_skips, n - 1);  // all leaves
  EXPECT_GE(stats.bound_seconds, 0.0);
  EXPECT_LE(stats.exact_computations, static_cast<uint64_t>(n));
}

// ---------------------------------------------------------------------------
// ServiceMetrics on the registry

TEST(ObsServeMetricsTest, SharedRegistryHostsServeMetrics) {
  MetricRegistry reg;
  serve::ServiceMetrics metrics(&reg);
  EXPECT_EQ(&metrics.registry(), &reg);
  metrics.RecordAccepted();
  metrics.RecordCompleted(/*queue_us=*/10.0, /*exec_us=*/5.0);
  metrics.SetQueueDepth(7);

  EXPECT_EQ(reg.CounterValue("esd_serve_accepted_total"), 1u);
  EXPECT_EQ(reg.CounterValue("esd_serve_completed_total"), 1u);
  EXPECT_DOUBLE_EQ(reg.GaugeValue("esd_serve_queue_depth"), 7.0);

  const serve::MetricsSnapshot snap = metrics.Snap();
  EXPECT_EQ(snap.completed, 1u);
  EXPECT_EQ(snap.queue_depth, 7u);
  EXPECT_EQ(snap.total.count, 1u);
  EXPECT_NEAR(snap.total.p50_us, 15.0, 15.0 * 0.125);

  const std::string text = reg.PrometheusText();
  EXPECT_NE(text.find("# TYPE esd_serve_completed_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE esd_serve_total_us summary"),
            std::string::npos);
}

TEST(ObsServeMetricsTest, EmbeddedRegistriesAreIndependent) {
  serve::ServiceMetrics a;
  serve::ServiceMetrics b;
  a.RecordAccepted();
  a.RecordCompleted(1.0, 1.0);
  EXPECT_EQ(a.Snap().completed, 1u);
  // A second default-constructed instance starts from zero — the contract
  // the serve_load sweep relies on between configurations.
  EXPECT_EQ(b.Snap().accepted, 0u);
  EXPECT_EQ(b.Snap().completed, 0u);
}

}  // namespace
}  // namespace esd
