// Request-scoped telemetry: the RequestContext minted at admission must
// survive tau-batching, dedup, and the result cache with unique ids and a
// per-stage attribution that exactly partitions the reported latencies;
// the slow-query ring log must retain the worst of the window with full
// forensics; the metrics time-series ring must turn counter snapshots into
// rates; and trace spans must join under one request id. Suites are
// prefixed Telemetry* so the TSan CI job picks up the concurrent ones by
// name.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/frozen_index.h"
#include "core/index_builder.h"
#include "core/scorer.h"
#include "gen/barabasi_albert.h"
#include "graph/graph.h"
#include "obs/metrics.h"
#include "obs/request_context.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "serve/query_service.h"
#include "serve/slowlog.h"
#include "tests/test_helpers.h"

namespace esd {
namespace {

using core::FrozenEsdIndex;
using obs::CacheOutcome;
using obs::MetricHistory;
using obs::MetricRegistry;
using obs::RequestContext;
using obs::Stage;
using serve::EsdQueryService;
using serve::QueryRequest;
using serve::QueryResponse;
using serve::ResponseStatus;
using serve::SlowQueryLog;
using serve::SlowQueryRecord;
using test::JsonParser;
using test::JsonValue;

// ---------------------------------------------------------------------------
// RequestContext

TEST(TelemetryContextTest, MintIdIsUniqueAndNonZero) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::vector<uint64_t>> minted(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&minted, t] {
      minted[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        minted[t].push_back(RequestContext::MintId());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  std::set<uint64_t> all;
  for (const std::vector<uint64_t>& v : minted) {
    for (uint64_t id : v) {
      EXPECT_NE(id, 0u);
      EXPECT_TRUE(all.insert(id).second) << "duplicate request id " << id;
    }
  }
  EXPECT_EQ(all.size(), static_cast<size_t>(kThreads * kPerThread));
}

TEST(TelemetryContextTest, ChargeAccumulatesPerStage) {
  RequestContext ctx;
  EXPECT_EQ(ctx.AttributedNanos(), 0u);
  ctx.Charge(Stage::kSlabScan, 1000);
  ctx.Charge(Stage::kSlabScan, 500);
  ctx.Charge(Stage::kMerge, 250);
  EXPECT_EQ(ctx.StageNanos(Stage::kSlabScan), 1500u);
  EXPECT_EQ(ctx.StageNanos(Stage::kMerge), 250u);
  EXPECT_EQ(ctx.StageNanos(Stage::kQueueWait), 0u);
  EXPECT_EQ(ctx.AttributedNanos(), 1750u);
  EXPECT_DOUBLE_EQ(ctx.StageMicros(Stage::kSlabScan), 1.5);
}

TEST(TelemetryContextTest, StageAndOutcomeNamesAreStable) {
  EXPECT_STREQ(obs::StageName(Stage::kQueueWait), "queue_wait");
  EXPECT_STREQ(obs::StageName(Stage::kBatchFormation), "batch_formation");
  EXPECT_STREQ(obs::StageName(Stage::kCacheLookup), "cache_lookup");
  EXPECT_STREQ(obs::StageName(Stage::kSlabScan), "slab_scan");
  EXPECT_STREQ(obs::StageName(Stage::kPaddingScan), "padding_scan");
  EXPECT_STREQ(obs::StageName(Stage::kMerge), "merge");
  EXPECT_STREQ(obs::StageSpanName(Stage::kSlabScan), "req.slab_scan");
  EXPECT_STREQ(obs::CacheOutcomeName(CacheOutcome::kNone), "none");
  EXPECT_STREQ(obs::CacheOutcomeName(CacheOutcome::kHit), "hit");
  EXPECT_STREQ(obs::CacheOutcomeName(CacheOutcome::kMiss), "miss");
  EXPECT_STREQ(obs::CacheOutcomeName(CacheOutcome::kDedup), "dedup");
}

// ---------------------------------------------------------------------------
// Trace propagation through the service

// The attribution invariants every completed response must satisfy:
// queue_wait + batch_formation == queue_us and the four execution stages
// partition exec_us (same clock readings, so only float rounding between
// them).
void ExpectAttributionPartitions(const QueryResponse& resp) {
  const double queue_sum = resp.ctx.StageMicros(Stage::kQueueWait) +
                           resp.ctx.StageMicros(Stage::kBatchFormation);
  EXPECT_NEAR(queue_sum, resp.queue_us, 0.5);
  const double exec_sum = resp.ctx.StageMicros(Stage::kCacheLookup) +
                          resp.ctx.StageMicros(Stage::kSlabScan) +
                          resp.ctx.StageMicros(Stage::kPaddingScan) +
                          resp.ctx.StageMicros(Stage::kMerge);
  EXPECT_NEAR(exec_sum, resp.exec_us, 0.5);
}

TEST(TelemetryPropagationTest, ContextSurvivesConcurrentBatching) {
  graph::Graph g = gen::BarabasiAlbert(120, 4, 11);
  FrozenEsdIndex frozen = core::BuildFrozenIndex(g);

  EsdQueryService::Options opts;
  opts.num_threads = 4;
  opts.max_batch = 8;
  opts.cache_bytes = 1 << 20;
  EsdQueryService service(frozen, opts);

  constexpr int kClients = 6;
  constexpr int kRounds = 150;
  std::vector<std::vector<QueryResponse>> responses(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&service, &responses, c] {
      responses[c].reserve(kRounds);
      for (int r = 0; r < kRounds; ++r) {
        QueryRequest rq;
        // A narrow (tau, k) ladder so batching, dedup, and cache hits all
        // actually occur under concurrency.
        rq.tau = 1 + static_cast<uint32_t>((c + r) % 3);
        rq.k = 4 + 4 * static_cast<uint32_t>(r % 2);
        responses[c].push_back(service.Submit(rq).get());
      }
    });
  }
  for (std::thread& t : clients) t.join();
  service.Stop();

  std::set<uint64_t> rids;
  int hits = 0, misses = 0, dedups = 0;
  for (const std::vector<QueryResponse>& per_client : responses) {
    for (const QueryResponse& resp : per_client) {
      ASSERT_EQ(resp.status, ResponseStatus::kOk);
      EXPECT_NE(resp.ctx.request_id, 0u);
      EXPECT_TRUE(rids.insert(resp.ctx.request_id).second)
          << "duplicate rid " << resp.ctx.request_id;
      EXPECT_EQ(resp.ctx.epoch, 0u);  // static engine
      ExpectAttributionPartitions(resp);
      switch (resp.ctx.cache) {
        case CacheOutcome::kHit: ++hits; break;
        case CacheOutcome::kMiss: ++misses; break;
        case CacheOutcome::kDedup: ++dedups; break;
        case CacheOutcome::kNone:
          ADD_FAILURE() << "cache on: outcome none for rid "
                        << resp.ctx.request_id;
          break;
      }
    }
  }
  EXPECT_EQ(rids.size(), static_cast<size_t>(kClients * kRounds));
  // The 6-combination ladder over 900 requests must hit after warmup.
  EXPECT_GT(hits + dedups, 0);
  EXPECT_GT(misses, 0);
}

TEST(TelemetryPropagationTest, CacheOutcomeIsHitAfterMiss) {
  graph::Graph g = gen::BarabasiAlbert(80, 3, 5);
  FrozenEsdIndex frozen = core::BuildFrozenIndex(g);
  EsdQueryService::Options opts;
  opts.num_threads = 1;
  opts.cache_bytes = 1 << 20;
  EsdQueryService service(frozen, opts);

  QueryRequest rq;
  rq.k = 5;
  rq.tau = 2;
  const QueryResponse first = service.Query(rq);
  const QueryResponse second = service.Query(rq);
  ASSERT_EQ(first.status, ResponseStatus::kOk);
  ASSERT_EQ(second.status, ResponseStatus::kOk);
  EXPECT_EQ(first.ctx.cache, CacheOutcome::kMiss);
  EXPECT_EQ(second.ctx.cache, CacheOutcome::kHit);
  EXPECT_LT(first.ctx.request_id, second.ctx.request_id);
  EXPECT_EQ(first.result, second.result);
  // A hit never touches the slab.
  EXPECT_EQ(second.ctx.StageNanos(Stage::kSlabScan), 0u);
}

TEST(TelemetryPropagationTest, UncachedServiceReportsOutcomeNone) {
  graph::Graph g = gen::BarabasiAlbert(80, 3, 7);
  FrozenEsdIndex frozen = core::BuildFrozenIndex(g);
  EsdQueryService::Options opts;
  opts.num_threads = 1;
  EsdQueryService service(frozen, opts);
  QueryRequest rq;
  const QueryResponse resp = service.Query(rq);
  ASSERT_EQ(resp.status, ResponseStatus::kOk);
  EXPECT_EQ(resp.ctx.cache, CacheOutcome::kNone);
  ExpectAttributionPartitions(resp);
}

// ---------------------------------------------------------------------------
// SlowQueryLog

SlowQueryRecord MakeRecord(uint64_t rid, double total_us) {
  SlowQueryRecord rec;
  rec.request_id = rid;
  rec.tau = 2;
  rec.k = 10;
  rec.queue_us = total_us / 2;
  rec.exec_us = total_us / 2;
  rec.total_us = total_us;
  rec.stage_us[static_cast<size_t>(Stage::kQueueWait)] = total_us / 2;
  rec.stage_us[static_cast<size_t>(Stage::kSlabScan)] = total_us / 2;
  return rec;
}

TEST(TelemetrySlowLogTest, RetainsWorstNInOrder) {
  SlowQueryLog::Options opts;
  opts.capacity = 4;
  opts.stripes = 1;  // deterministic: one heap holds the global answer
  SlowQueryLog log(opts);
  for (uint64_t i = 0; i < 10; ++i) {
    log.Record(MakeRecord(i, static_cast<double>(100 + i)));
  }
  EXPECT_EQ(log.recorded(), 10u);
  const std::vector<SlowQueryRecord> worst = log.Worst();
  ASSERT_EQ(worst.size(), 4u);
  for (size_t i = 0; i < worst.size(); ++i) {
    EXPECT_DOUBLE_EQ(worst[i].total_us, static_cast<double>(109 - i));
    EXPECT_EQ(worst[i].request_id, 9 - i);
  }
  EXPECT_EQ(log.Worst(2).size(), 2u);
}

TEST(TelemetrySlowLogTest, StripedLogStillFindsGlobalWorst) {
  SlowQueryLog::Options opts;
  opts.capacity = 4;
  opts.stripes = 8;
  SlowQueryLog log(opts);
  for (uint64_t i = 0; i < 64; ++i) {
    log.Record(MakeRecord(i, static_cast<double>(i)));
  }
  const std::vector<SlowQueryRecord> worst = log.Worst();
  ASSERT_EQ(worst.size(), 4u);
  EXPECT_EQ(worst[0].request_id, 63u);
  EXPECT_DOUBLE_EQ(worst[0].total_us, 63.0);
  for (size_t i = 1; i < worst.size(); ++i) {
    EXPECT_GE(worst[i - 1].total_us, worst[i].total_us);
  }
}

TEST(TelemetrySlowLogTest, WindowExpiresOldEntries) {
  SlowQueryLog::Options opts;
  opts.capacity = 8;
  opts.stripes = 1;
  opts.window = std::chrono::seconds(60);
  SlowQueryLog log(opts);
  const uint64_t now = obs::MonotonicNanos();
  SlowQueryRecord ancient = MakeRecord(1, 9999.0);
  ancient.recorded_ns = now - uint64_t{120} * 1'000'000'000u;
  log.Record(ancient);
  SlowQueryRecord fresh = MakeRecord(2, 10.0);
  fresh.recorded_ns = now;
  log.Record(fresh);
  const std::vector<SlowQueryRecord> worst = log.Worst();
  ASSERT_EQ(worst.size(), 1u);
  EXPECT_EQ(worst[0].request_id, 2u);
}

TEST(TelemetrySlowLogTest, JsonSchemaParsesWithFullAttribution) {
  SlowQueryLog log;
  SlowQueryRecord rec = MakeRecord(7, 123.5);
  rec.epoch = 3;
  rec.scorer = core::ScorerKind::kEsd;
  rec.cache = CacheOutcome::kMiss;
  rec.health = obs::HealthState::kDegraded;
  rec.deadline_missed = false;
  log.Record(rec);
  const std::vector<std::string> lines = log.JsonLines();
  ASSERT_EQ(lines.size(), 1u);
  JsonValue v;
  ASSERT_TRUE(JsonParser(lines[0]).Parse(&v)) << lines[0];
  ASSERT_EQ(v.kind, JsonValue::Kind::kObject);
  EXPECT_DOUBLE_EQ(v.Find("rid")->number, 7.0);
  EXPECT_DOUBLE_EQ(v.Find("total_us")->number, 123.5);
  EXPECT_DOUBLE_EQ(v.Find("epoch")->number, 3.0);
  EXPECT_DOUBLE_EQ(v.Find("tau")->number, 2.0);
  EXPECT_DOUBLE_EQ(v.Find("k")->number, 10.0);
  EXPECT_EQ(v.Find("scorer")->str, "esd");
  EXPECT_EQ(v.Find("cache")->str, "miss");
  EXPECT_EQ(v.Find("health")->str, "degraded");
  EXPECT_EQ(v.Find("deadline_missed")->kind, JsonValue::Kind::kBool);
  const JsonValue* stages = v.Find("stages");
  ASSERT_NE(stages, nullptr);
  ASSERT_EQ(stages->kind, JsonValue::Kind::kObject);
  for (size_t s = 0; s < obs::kNumStages; ++s) {
    EXPECT_NE(stages->Find(obs::StageName(static_cast<Stage>(s))), nullptr)
        << obs::StageName(static_cast<Stage>(s));
  }
  EXPECT_DOUBLE_EQ(stages->Find("slab_scan")->number, 123.5 / 2);
}

TEST(TelemetrySlowLogTest, ConcurrentRecordIsSafeAndBounded) {
  SlowQueryLog::Options opts;
  opts.capacity = 16;
  SlowQueryLog log(opts);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        log.Record(MakeRecord(static_cast<uint64_t>(t * kPerThread + i),
                              static_cast<double>(i % 97)));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(log.recorded(), static_cast<uint64_t>(kThreads * kPerThread));
  const std::vector<SlowQueryRecord> worst = log.Worst();
  EXPECT_LE(worst.size(), 16u);
  ASSERT_FALSE(worst.empty());
  EXPECT_DOUBLE_EQ(worst[0].total_us, 96.0);
  log.Clear();
  EXPECT_TRUE(log.Worst().empty());
}

TEST(TelemetrySlowLogTest, ServiceFeedsSlowLogWithAttribution) {
  graph::Graph g = gen::BarabasiAlbert(100, 3, 3);
  FrozenEsdIndex frozen = core::BuildFrozenIndex(g);
  EsdQueryService::Options opts;
  opts.num_threads = 2;
  opts.slowlog_capacity = 8;
  EsdQueryService service(frozen, opts);

  std::set<uint64_t> rids;
  for (int i = 0; i < 40; ++i) {
    QueryRequest rq;
    rq.tau = 1 + static_cast<uint32_t>(i % 4);
    const QueryResponse resp = service.Query(rq);
    ASSERT_EQ(resp.status, ResponseStatus::kOk);
    rids.insert(resp.ctx.request_id);
  }
  service.Stop();

  const SlowQueryLog& log = service.slow_log();
  EXPECT_EQ(log.recorded(), 40u);
  const std::vector<SlowQueryRecord> worst = log.Worst();
  ASSERT_FALSE(worst.empty());
  EXPECT_LE(worst.size(), 8u);
  for (const SlowQueryRecord& rec : worst) {
    EXPECT_TRUE(rids.count(rec.request_id)) << rec.request_id;
    EXPECT_EQ(rec.scorer, core::ScorerKind::kEsd);
    EXPECT_EQ(rec.health, obs::HealthState::kOk);
    EXPECT_FALSE(rec.deadline_missed);
    double stage_sum = 0;
    for (double us : rec.stage_us) stage_sum += us;
    EXPECT_NEAR(stage_sum, rec.total_us, 1.0);
  }
}

// ---------------------------------------------------------------------------
// MetricHistory

TEST(TelemetryHistoryTest, DerivesRatesFromCounterDeltas) {
  MetricRegistry reg;
  obs::Counter& completed =
      reg.GetCounter("esd_serve_completed_total", "done");
  obs::Counter& hits = reg.GetCounter("esd_cache_hits", "hits");
  obs::Counter& misses = reg.GetCounter("esd_cache_misses", "misses");
  MetricHistory history(reg);

  history.SampleNow();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  completed.Inc(300);
  hits.Inc(30);
  misses.Inc(10);
  history.SampleNow();

  const std::vector<std::string> lines = history.IntervalsJson(10);
  ASSERT_EQ(lines.size(), 1u);
  JsonValue v;
  ASSERT_TRUE(JsonParser(lines[0]).Parse(&v)) << lines[0];
  EXPECT_GT(v.Find("dt_s")->number, 0.0);
  EXPECT_GT(v.Find("qps")->number, 0.0);
  // 300 completions over ~20ms: thousands of qps, not millions.
  EXPECT_LT(v.Find("qps")->number, 300.0 / 0.01);
  EXPECT_NEAR(v.Find("cache_hit_rate")->number, 0.75, 1e-9);
  const JsonValue* rates = v.Find("rates");
  ASSERT_NE(rates, nullptr);
  EXPECT_NE(rates->Find("esd_serve_completed_total"), nullptr);

  const std::string prom = history.RatesPrometheus();
  EXPECT_NE(prom.find("esd_history_qps"), std::string::npos);
  EXPECT_NE(prom.find("esd_history_cache_hit_rate"), std::string::npos);
  EXPECT_NE(prom.find("esd_serve_completed_total:rate_per_s"),
            std::string::npos);
}

TEST(TelemetryHistoryTest, RingWrapsAtCapacity) {
  MetricRegistry reg;
  reg.GetCounter("esd_wrap_total", "c");
  MetricHistory::Options opts;
  opts.capacity = 4;
  MetricHistory history(reg, opts);
  EXPECT_EQ(history.NumSamples(), 0u);
  for (int i = 0; i < 10; ++i) history.SampleNow();
  EXPECT_EQ(history.NumSamples(), 4u);
  EXPECT_EQ(history.capacity(), 4u);
  // Deltas only exist between retained samples: at most capacity - 1.
  EXPECT_LE(history.IntervalsJson(100).size(), 3u);
}

TEST(TelemetryHistoryTest, GaugeLevelsReportedWhenChanged) {
  MetricRegistry reg;
  obs::Gauge& depth = reg.GetGauge("esd_depth", "d");
  MetricHistory history(reg);
  depth.Set(1.0);
  history.SampleNow();
  depth.Set(5.0);
  history.SampleNow();
  const std::vector<std::string> lines = history.IntervalsJson(1);
  ASSERT_EQ(lines.size(), 1u);
  JsonValue v;
  ASSERT_TRUE(JsonParser(lines[0]).Parse(&v)) << lines[0];
  const JsonValue* gauges = v.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  const JsonValue* g = gauges->Find("esd_depth");
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(g->number, 5.0);
}

TEST(TelemetryHistoryTest, BackgroundSamplerRunsAndStops) {
  MetricRegistry reg;
  obs::Counter& ticks = reg.GetCounter("esd_ticks_total", "t");
  std::atomic<int> pre_samples{0};
  MetricHistory::Options opts;
  opts.capacity = 64;
  opts.interval = std::chrono::milliseconds(5);
  opts.pre_sample = [&] {
    pre_samples.fetch_add(1);
    ticks.Inc();
  };
  MetricHistory history(reg, opts);
  history.Start();
  history.Start();  // idempotent
  // Concurrent manual samples race the background thread (TSan checks).
  std::vector<std::thread> manual;
  for (int t = 0; t < 4; ++t) {
    manual.emplace_back([&history] {
      for (int i = 0; i < 20; ++i) history.SampleNow();
    });
  }
  for (std::thread& t : manual) t.join();
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  history.Stop();
  history.Stop();  // idempotent
  const size_t after_stop = history.NumSamples();
  EXPECT_GE(after_stop, 2u);
  EXPECT_GT(pre_samples.load(), 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(history.NumSamples(), after_stop) << "sampler survived Stop()";
}

// ---------------------------------------------------------------------------
// Trace spans joined under one request id

TEST(TelemetryTraceTest, SpansJoinUnderOneRequestId) {
  obs::Tracer& tracer = obs::Tracer::Global();
  if (!tracer.enabled()) GTEST_SKIP() << "tracing compiled out";
  tracer.Clear();

  graph::Graph g = gen::BarabasiAlbert(100, 3, 9);
  FrozenEsdIndex frozen = core::BuildFrozenIndex(g);
  EsdQueryService::Options opts;
  opts.num_threads = 1;
  EsdQueryService service(frozen, opts);
  QueryRequest rq;
  rq.k = 8;
  rq.tau = 2;
  const QueryResponse resp = service.Query(rq);
  ASSERT_EQ(resp.status, ResponseStatus::kOk);
  service.Stop();

  JsonValue trace;
  ASSERT_TRUE(JsonParser(tracer.ChromeTraceJson()).Parse(&trace));
  const JsonValue* events = trace.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::set<std::string> joined;  // span names carrying this request's rid
  for (const JsonValue& ev : events->array) {
    const JsonValue* args = ev.Find("args");
    if (args == nullptr || args->Find("rid") == nullptr) continue;
    if (static_cast<uint64_t>(args->Find("rid")->number) !=
        resp.ctx.request_id) {
      continue;
    }
    joined.insert(ev.Find("name")->str);
  }
  // Admission -> batch at minimum; execution stages when their duration
  // rounded above zero.
  EXPECT_TRUE(joined.count("req.queue_wait")) << joined.size();
  EXPECT_TRUE(joined.count("req.batch_formation")) << joined.size();
  for (const std::string& name : joined) {
    EXPECT_EQ(name.rfind("req.", 0), 0u) << name;
  }
}

TEST(TelemetryTraceTest, WorkerThreadsAreNamedTracks) {
  obs::Tracer& tracer = obs::Tracer::Global();
  if (!tracer.enabled()) GTEST_SKIP() << "tracing compiled out";
  tracer.Clear();

  graph::Graph g = gen::BarabasiAlbert(60, 3, 13);
  FrozenEsdIndex frozen = core::BuildFrozenIndex(g);
  EsdQueryService::Options opts;
  opts.num_threads = 2;
  EsdQueryService service(frozen, opts);
  (void)service.Query(QueryRequest{});
  service.Stop();

  const std::string json = tracer.ChromeTraceJson();
  EXPECT_NE(json.find("serve-worker"), std::string::npos);
}

}  // namespace
}  // namespace esd
