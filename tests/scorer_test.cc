// Scorer plugin framework: registry round-trips, cross-engine parity of
// every scorer against test-local naive references, dynamic-maintenance
// churn parity, scorer-stamped index files (typed mismatch + garbage-id
// fuzz), and a live/WAL round trip for a non-ESD scorer. The Scorer*
// suites are part of the scorer-matrix CI job and the TSan filter.

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <functional>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/dynamic_index.h"
#include "core/esd_index.h"
#include "core/frozen_index.h"
#include "core/index_builder.h"
#include "core/index_io.h"
#include "core/parallel_builder.h"
#include "core/query_engine.h"
#include "core/score_profile.h"
#include "core/scorer.h"
#include "core/topk_result.h"
#include "gen/erdos_renyi.h"
#include "gen/holme_kim.h"
#include "gen/watts_strogatz.h"
#include "graph/graph.h"
#include "live/live_index.h"
#include "util/rng.h"

namespace esd {
namespace {

namespace fs = std::filesystem;

using core::BuildFrozenIndex;
using core::BuildFrozenIndexParallel;
using core::BuildIndex;
using core::BuildIndexParallel;
using core::DiversityScorer;
using core::DynamicEsdIndex;
using core::EsdIndex;
using core::EsdQueryEngine;
using core::FrozenEsdIndex;
using core::IndexIoResult;
using core::IndexIoStatus;
using core::Scores;
using core::ScorerKind;
using core::ScorerOnlineEngine;
using core::TopKResult;
using graph::Edge;
using graph::Graph;
using graph::VertexId;

/// The non-ESD scorers — the plugin path proper (ESD has its own exhaustive
/// suites; here it only anchors factory-equivalence checks).
std::vector<const DiversityScorer*> PluginScorers() {
  return {&core::TrussScorer(), &core::EgoBetweennessScorer()};
}

/// Small graph zoo for the parity properties.
std::vector<Graph> ParityGraphs() {
  std::vector<Graph> out;
  for (uint64_t seed : {1ull, 2ull}) {
    out.push_back(gen::ErdosRenyiGnm(60, 150, seed));
    out.push_back(gen::ErdosRenyiGnp(24, 0.4, seed));
    out.push_back(gen::WattsStrogatz(50, 4, 0.2, seed));
    out.push_back(gen::HolmeKim(45, 3, 0.5, seed));
  }
  return out;
}

/// Asserts `engine` answers exactly like the full-scan reference built from
/// the scorer's single-edge hook, across a (tau, k) grid: identical padded
/// top-k results (scores AND edges — the shared zero-padding order is part
/// of the engine contract), per-edge scores, and threshold counts.
void ExpectMatchesReference(const Graph& g, const DiversityScorer& scorer,
                            const EsdQueryEngine& engine) {
  const ScorerOnlineEngine ref(g, scorer);
  EXPECT_EQ(engine.Scorer(), scorer.Kind());
  for (uint32_t tau : {1u, 2u, 3u, 5u}) {
    for (uint32_t k : {1u, 7u, 25u}) {
      const TopKResult want = ref.Query(k, tau);
      const TopKResult got = engine.Query(k, tau);
      ASSERT_EQ(want.size(), got.size());
      for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(want[i].score, got[i].score) << "tau " << tau << " k " << k;
        EXPECT_EQ(want[i].edge.u, got[i].edge.u);
        EXPECT_EQ(want[i].edge.v, got[i].edge.v);
      }
    }
    for (uint32_t min_score : {1u, 2u}) {
      EXPECT_EQ(ref.CountWithScoreAtLeast(tau, min_score),
                engine.CountWithScoreAtLeast(tau, min_score));
    }
    for (graph::EdgeId e = 0; e < g.NumEdges(); ++e) {
      ASSERT_EQ(ref.ScoreOf(e, tau), engine.ScoreOf(e, tau))
          << "edge " << e << " tau " << tau;
    }
  }
}

TEST(ScorerRegistryTest, NamesKindsAndLookupsRoundTrip) {
  EXPECT_EQ(core::ScorerNames(),
            (std::vector<std::string>{"esd", "truss", "egobw"}));
  for (const std::string& name : core::ScorerNames()) {
    const DiversityScorer* s = core::FindScorer(name);
    ASSERT_NE(s, nullptr) << name;
    EXPECT_EQ(s->Name(), name);
    EXPECT_EQ(&core::ScorerForKind(s->Kind()), s);
    EXPECT_EQ(core::ScorerKindName(s->Kind()), name);
    EXPECT_TRUE(core::ValidScorerKind(static_cast<uint32_t>(s->Kind())));
  }
  EXPECT_EQ(core::FindScorer("bogus"), nullptr);
  EXPECT_EQ(core::FindScorer(""), nullptr);
  for (uint32_t raw : {0u, 4u, 255u, 0x80000000u, 0xFFFFFFFFu}) {
    EXPECT_FALSE(core::ValidScorerKind(raw)) << raw;
  }
}

TEST(ScorerParityTest, AllEnginesMatchReferenceOnEveryScorer) {
  for (const Graph& g : ParityGraphs()) {
    for (const DiversityScorer* scorer : PluginScorers()) {
      const EsdIndex treap = BuildIndex(g, *scorer);
      ExpectMatchesReference(g, *scorer, treap);
      const FrozenEsdIndex frozen = BuildFrozenIndex(g, *scorer);
      ExpectMatchesReference(g, *scorer, frozen);
      const EsdIndex par = BuildIndexParallel(g, *scorer, 4);
      ExpectMatchesReference(g, *scorer, par);
      const FrozenEsdIndex pfro = BuildFrozenIndexParallel(g, *scorer, 4);
      ExpectMatchesReference(g, *scorer, pfro);
      const DynamicEsdIndex dyn(g, *scorer);
      ExpectMatchesReference(g, *scorer, dyn);
    }
  }
}

TEST(ScorerParityTest, EsdScorerPathMatchesHistoricalBuilders) {
  const Graph g = gen::ErdosRenyiGnm(70, 200, 9);
  const FrozenEsdIndex via_scorer = BuildFrozenIndex(g, core::EsdScorer());
  const FrozenEsdIndex historical = BuildFrozenIndex(g);
  EXPECT_TRUE(via_scorer == historical);
  EXPECT_EQ(via_scorer.Scorer(), ScorerKind::kEsd);

  std::string error;
  for (const std::string& name : core::QueryEngineNames()) {
    std::unique_ptr<EsdQueryEngine> engine =
        core::BuildQueryEngine(g, name, core::TrussScorer(), &error);
    ASSERT_NE(engine, nullptr) << name << ": " << error;
    EXPECT_EQ(engine->Scorer(), ScorerKind::kTruss) << name;
    ExpectMatchesReference(g, core::TrussScorer(), *engine);
  }
  EXPECT_EQ(core::BuildQueryEngine(g, "nope", core::TrussScorer(), &error),
            nullptr);
}

TEST(ScorerParityTest, FreezeThawCarryScorerAndAnswers) {
  const Graph g = gen::WattsStrogatz(40, 4, 0.3, 3);
  const EsdIndex treap = BuildIndex(g, core::TrussScorer());
  const FrozenEsdIndex frozen = core::Freeze(treap);
  EXPECT_EQ(frozen.Scorer(), ScorerKind::kTruss);
  const EsdIndex thawed = core::Thaw(frozen);
  EXPECT_EQ(thawed.Scorer(), ScorerKind::kTruss);
  for (uint32_t tau : {1u, 2u, 4u}) {
    EXPECT_EQ(Scores(treap.Query(10, tau)), Scores(thawed.Query(10, tau)));
  }
}

// ---------------------------------------------------------------------------
// Naive-reference checks: each plugin scorer's EdgeValues against an
// independent from-the-definition implementation.
// ---------------------------------------------------------------------------

/// Trussness by definition, for tiny graphs: for k = 3, 4, ..., peel edges
/// closing fewer than k-2 triangles among the survivors; an edge removed on
/// the way to the k-truss has trussness k-1. O(k * m^2) and proud of it.
std::vector<uint32_t> NaiveTrussness(uint32_t n,
                                     const std::vector<Edge>& edges) {
  const size_t m = edges.size();
  std::vector<uint32_t> truss(m, 0);
  std::vector<bool> alive(m, true);
  std::vector<std::set<VertexId>> adj(n);
  for (const Edge& e : edges) {
    adj[e.u].insert(e.v);
    adj[e.v].insert(e.u);
  }
  auto triangles = [&](size_t e) {
    uint32_t cnt = 0;
    for (VertexId w : adj[edges[e].u]) cnt += adj[edges[e].v].count(w);
    return cnt;
  };
  size_t remaining = m;
  for (uint32_t k = 3; remaining > 0; ++k) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t e = 0; e < m; ++e) {
        if (!alive[e] || triangles(e) >= k - 2) continue;
        alive[e] = false;
        truss[e] = k - 1;
        adj[edges[e].u].erase(edges[e].v);
        adj[edges[e].v].erase(edges[e].u);
        --remaining;
        changed = true;
      }
    }
  }
  return truss;
}

/// From-the-definition truss-cohesion values of edge {u, v}: components of
/// the induced common-neighbor subgraph, each valued by the max naive
/// trussness of its edges (1 when edgeless), sorted ascending.
std::vector<uint32_t> NaiveTrussValues(const Graph& g, VertexId u,
                                       VertexId v) {
  std::vector<VertexId> common = graph::CommonNeighbors(g, u, v);
  std::sort(common.begin(), common.end());
  const uint32_t s = static_cast<uint32_t>(common.size());
  std::vector<Edge> local;
  for (uint32_t i = 0; i < s; ++i) {
    for (uint32_t j = i + 1; j < s; ++j) {
      if (g.HasEdge(common[i], common[j])) local.push_back(Edge{i, j});
    }
  }
  const std::vector<uint32_t> truss = NaiveTrussness(s, local);
  std::vector<uint32_t> parent(s);
  for (uint32_t i = 0; i < s; ++i) parent[i] = i;
  std::function<uint32_t(uint32_t)> find = [&](uint32_t x) {
    return parent[x] == x ? x : parent[x] = find(parent[x]);
  };
  for (const Edge& e : local) parent[find(e.u)] = find(e.v);
  std::vector<uint32_t> best(s, 0);
  for (size_t e = 0; e < local.size(); ++e) {
    best[find(local[e].u)] = std::max(best[find(local[e].u)], truss[e]);
  }
  std::vector<uint32_t> values;
  for (uint32_t i = 0; i < s; ++i) {
    if (find(i) == i) values.push_back(std::max(best[i], 1u));
  }
  std::sort(values.begin(), values.end());
  return values;
}

TEST(ScorerNaiveReferenceTest, TrussValuesMatchDefinition) {
  for (uint64_t seed : {1ull, 5ull}) {
    const Graph g = gen::ErdosRenyiGnp(22, 0.35, seed);
    for (graph::EdgeId e = 0; e < g.NumEdges(); ++e) {
      const Edge& uv = g.EdgeAt(e);
      EXPECT_EQ(core::TrussScorer().EdgeValues(g, uv.u, uv.v),
                NaiveTrussValues(g, uv.u, uv.v))
          << "edge {" << uv.u << "," << uv.v << "} seed " << seed;
    }
  }
}

TEST(ScorerNaiveReferenceTest, EgoBetweennessMatchesFormula) {
  for (uint64_t seed : {2ull, 6ull}) {
    const Graph g = gen::ErdosRenyiGnm(40, 160, seed);
    const FrozenEsdIndex frozen =
        BuildFrozenIndex(g, core::EgoBetweennessScorer());
    for (graph::EdgeId e = 0; e < g.NumEdges(); ++e) {
      const Edge& uv = g.EdgeAt(e);
      const std::vector<VertexId> common =
          graph::CommonNeighbors(g, uv.u, uv.v);
      const uint64_t s = common.size();
      uint64_t intra = 0;
      for (size_t i = 0; i < common.size(); ++i) {
        for (size_t j = i + 1; j < common.size(); ++j) {
          intra += g.HasEdge(common[i], common[j]) ? 1 : 0;
        }
      }
      const uint32_t b = static_cast<uint32_t>(s * (s - 1) / 2 - intra);
      EXPECT_EQ(frozen.ScoreOf(e, 1), b);
      if (b > 0) {
        EXPECT_EQ(frozen.ScoreOf(e, b), b);
        EXPECT_EQ(frozen.ScoreOf(e, b + 1), 0u);
      }
    }
  }
}

TEST(ScorerDynamicTest, ChurnKeepsTrussIndexExact) {
  const uint32_t n = 36;
  Graph g = gen::ErdosRenyiGnm(n, 90, 11);
  DynamicEsdIndex dyn(g, core::TrussScorer());
  std::set<std::pair<VertexId, VertexId>> edges;
  for (const Edge& e : g.Edges()) edges.emplace(e.u, e.v);

  util::Rng rng(0x5C07);
  for (int step = 0; step < 80; ++step) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(n));
    VertexId v = static_cast<VertexId>(rng.NextBounded(n));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (rng.NextBool(0.6)) {
      if (dyn.InsertEdge(u, v)) edges.emplace(u, v);
    } else {
      if (dyn.DeleteEdge(u, v)) edges.erase({u, v});
    }
  }

  std::vector<Edge> final_edges;
  for (const auto& [u, v] : edges) final_edges.push_back(Edge{u, v});
  const Graph final_graph = Graph::FromEdges(n, std::move(final_edges));
  const ScorerOnlineEngine ref(final_graph, core::TrussScorer());
  EXPECT_EQ(dyn.Scorer(), ScorerKind::kTruss);
  for (uint32_t tau : {1u, 2u, 3u}) {
    for (uint32_t k : {5u, 20u}) {
      EXPECT_EQ(Scores(ref.Query(k, tau)), Scores(dyn.Query(k, tau)))
          << "tau " << tau << " k " << k;
    }
    EXPECT_EQ(ref.CountWithScoreAtLeast(tau, 1),
              dyn.CountWithScoreAtLeast(tau, 1));
  }
}

// ---------------------------------------------------------------------------
// Scorer-stamped index files.
// ---------------------------------------------------------------------------

TEST(ScorerIndexIoTest, RoundTripCarriesScorerKind) {
  const Graph g = gen::ErdosRenyiGnm(30, 70, 4);
  const EsdIndex treap = BuildIndex(g, core::TrussScorer());
  const FrozenEsdIndex frozen = BuildFrozenIndex(g, core::TrussScorer());

  std::stringstream record_stream, frozen_stream;
  std::string error;
  ASSERT_TRUE(core::SerializeIndex(treap, record_stream, &error)) << error;
  ASSERT_TRUE(core::SerializeFrozenIndex(frozen, frozen_stream, &error))
      << error;

  EsdIndex treap2;
  ASSERT_TRUE(core::DeserializeIndex(record_stream, &treap2, &error))
      << error;
  EXPECT_EQ(treap2.Scorer(), ScorerKind::kTruss);

  FrozenEsdIndex frozen2;
  ASSERT_TRUE(core::DeserializeFrozenIndex(frozen_stream, &frozen2, &error))
      << error;
  EXPECT_EQ(frozen2.Scorer(), ScorerKind::kTruss);
  EXPECT_TRUE(frozen == frozen2);
}

TEST(ScorerIndexIoTest, CheckedLoadAcceptsMatchRejectsMismatch) {
  const Graph g = gen::ErdosRenyiGnm(25, 60, 8);
  const std::string dir = fs::temp_directory_path() /
                          ("esd_scorer_io_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  const std::string treap_path = dir + "/treap.bin";
  const std::string frozen_path = dir + "/frozen.bin";

  std::string error;
  ASSERT_TRUE(
      core::SaveIndex(BuildIndex(g, core::TrussScorer()), treap_path, &error))
      << error;
  ASSERT_TRUE(core::SaveFrozenIndex(BuildFrozenIndex(g, core::TrussScorer()),
                                    frozen_path, &error))
      << error;

  EsdIndex treap;
  FrozenEsdIndex frozen;
  EXPECT_TRUE(core::LoadIndex(treap_path, &treap, ScorerKind::kTruss));
  EXPECT_TRUE(
      core::LoadFrozenIndex(frozen_path, &frozen, ScorerKind::kTruss));

  const IndexIoResult treap_miss =
      core::LoadIndex(treap_path, &treap, ScorerKind::kEgoBetweenness);
  EXPECT_FALSE(treap_miss);
  EXPECT_EQ(treap_miss.status, IndexIoStatus::kScorerMismatch);
  EXPECT_NE(treap_miss.message.find("truss"), std::string::npos);
  EXPECT_NE(treap_miss.message.find("egobw"), std::string::npos);

  const IndexIoResult frozen_miss =
      core::LoadFrozenIndex(frozen_path, &frozen, ScorerKind::kEsd);
  EXPECT_FALSE(frozen_miss);
  EXPECT_EQ(frozen_miss.status, IndexIoStatus::kScorerMismatch);

  // A frozen file also loads into the record path and vice versa — the
  // mismatch check is format-independent.
  const IndexIoResult cross =
      core::LoadIndex(frozen_path, &treap, ScorerKind::kEsd);
  EXPECT_FALSE(cross);
  EXPECT_EQ(cross.status, IndexIoStatus::kScorerMismatch);

  const IndexIoResult missing =
      core::LoadIndex(dir + "/nope.bin", &treap, ScorerKind::kTruss);
  EXPECT_FALSE(missing);
  EXPECT_EQ(missing.status, IndexIoStatus::kIoError);

  fs::remove_all(dir);
}

/// Fuzz the 4-byte scorer-id field (bytes 8..11, right after magic +
/// version) of serialized v3/v4 streams. Garbage ids must fail typed as
/// kUnknownScorer; a *valid but different* id must trip the checksum
/// (kFormatError) — the stamp is checksummed, so it cannot be quietly
/// rewritten; and only a well-formed foreign file yields kScorerMismatch.
TEST(ScorerIndexIoTest, GarbageScorerIdFuzz) {
  const Graph g = gen::ErdosRenyiGnm(20, 45, 5);
  std::string error;
  std::stringstream ss;
  ASSERT_TRUE(core::SerializeFrozenIndex(BuildFrozenIndex(g, core::TrussScorer()),
                                         ss, &error))
      << error;
  const std::string good = ss.str();
  ASSERT_GT(good.size(), 12u);

  for (uint32_t raw : {0u, 4u, 5u, 255u, 0x7FFFFFFFu, 0x80000000u,
                       0xDEADBEEFu, 0xFFFFFFFFu}) {
    std::string bad = good;
    std::memcpy(&bad[8], &raw, sizeof(raw));
    std::stringstream in(bad);
    FrozenEsdIndex out;
    const IndexIoResult res =
        core::DeserializeFrozenIndex(in, &out, ScorerKind::kTruss);
    EXPECT_FALSE(res) << "raw id " << raw;
    EXPECT_EQ(res.status, IndexIoStatus::kUnknownScorer) << raw;
    EXPECT_NE(res.message.find("scorer"), std::string::npos);

    std::stringstream in_bool(bad);
    EXPECT_FALSE(core::DeserializeFrozenIndex(in_bool, &out, &error));
  }

  // Patch in kEsd (valid id, wrong scorer): the checksum covers the field,
  // so this reads as corruption, not as an ESD file.
  {
    std::string forged = good;
    const uint32_t esd_id = static_cast<uint32_t>(ScorerKind::kEsd);
    std::memcpy(&forged[8], &esd_id, sizeof(esd_id));
    std::stringstream in(forged);
    FrozenEsdIndex out;
    const IndexIoResult res =
        core::DeserializeFrozenIndex(in, &out, ScorerKind::kEsd);
    EXPECT_FALSE(res);
    EXPECT_EQ(res.status, IndexIoStatus::kFormatError);
  }

  // Truncation inside the scorer field itself fails gracefully.
  for (size_t keep : {8u, 9u, 11u}) {
    std::stringstream in(good.substr(0, keep));
    FrozenEsdIndex out;
    const IndexIoResult res =
        core::DeserializeFrozenIndex(in, &out, ScorerKind::kTruss);
    EXPECT_FALSE(res) << "keep " << keep;
    EXPECT_EQ(res.status, IndexIoStatus::kFormatError);
  }

  // Same sweep for the record-stream (v3) format.
  std::stringstream rec;
  ASSERT_TRUE(
      core::SerializeIndex(BuildIndex(g, core::TrussScorer()), rec, &error))
      << error;
  const std::string rec_good = rec.str();
  for (uint32_t raw : {0u, 4u, 0xFFFFFFFFu}) {
    std::string bad = rec_good;
    std::memcpy(&bad[8], &raw, sizeof(raw));
    std::stringstream in(bad);
    EsdIndex out;
    const IndexIoResult res =
        core::DeserializeIndex(in, &out, ScorerKind::kTruss);
    EXPECT_FALSE(res) << raw;
    EXPECT_EQ(res.status, IndexIoStatus::kUnknownScorer) << raw;
  }
}

// ---------------------------------------------------------------------------
// Live/WAL round trip for a non-ESD scorer.
// ---------------------------------------------------------------------------

TEST(ScorerLiveTest, TrussIndexSurvivesWalRoundTrip) {
  const uint32_t n = 30;
  const Graph bootstrap = gen::ErdosRenyiGnm(n, 60, 13);
  const std::string dir = fs::temp_directory_path() /
                          ("esd_scorer_live_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);

  live::LiveOptions options;
  options.wal_path = dir + "/wal.bin";
  options.snapshot_path = dir + "/snapshot.bin";
  options.scorer = ScorerKind::kTruss;
  options.refreeze_every = 8;

  std::set<std::pair<VertexId, VertexId>> edges;
  for (const Edge& e : bootstrap.Edges()) edges.emplace(e.u, e.v);

  std::string error;
  std::vector<uint32_t> before_scores;
  {
    std::unique_ptr<live::LiveEsdIndex> live =
        live::LiveEsdIndex::Open(bootstrap, options, &error);
    ASSERT_NE(live, nullptr) << error;

    util::Rng rng(0xBEEF);
    std::vector<live::LiveUpdate> batch;
    for (int step = 0; step < 50; ++step) {
      VertexId u = static_cast<VertexId>(rng.NextBounded(n));
      VertexId v = static_cast<VertexId>(rng.NextBounded(n));
      if (u == v) continue;
      if (u > v) std::swap(u, v);
      live::LiveUpdate up;
      up.u = u;
      up.v = v;
      if (rng.NextBool(0.65)) {
        up.kind = live::UpdateKind::kInsert;
        edges.emplace(u, v);
      } else {
        up.kind = live::UpdateKind::kDelete;
        edges.erase({u, v});
      }
      batch.push_back(up);
    }
    ASSERT_EQ(live->ApplyBatch(batch, &error), batch.size()) << error;
    ASSERT_TRUE(live->RefreezeNow());
    auto engine = live->CurrentEngine();
    EXPECT_EQ(engine->Scorer(), ScorerKind::kTruss);
    before_scores = Scores(engine->Query(15, 2));
    // One checkpoint so the reopen exercises snapshot + WAL, both stamped.
    ASSERT_TRUE(live->Checkpoint(&error)) << error;
  }

  // Reopen under the same scorer: recovered answers must match both the
  // pre-close engine and a from-scratch build on the mirrored final graph.
  {
    std::unique_ptr<live::LiveEsdIndex> live =
        live::LiveEsdIndex::Open(bootstrap, options, &error);
    ASSERT_NE(live, nullptr) << error;
    auto engine = live->CurrentEngine();
    EXPECT_EQ(engine->Scorer(), ScorerKind::kTruss);
    EXPECT_EQ(Scores(engine->Query(15, 2)), before_scores);

    std::vector<Edge> final_edges;
    for (const auto& [u, v] : edges) final_edges.push_back(Edge{u, v});
    const Graph final_graph = Graph::FromEdges(n, std::move(final_edges));
    const ScorerOnlineEngine ref(final_graph, core::TrussScorer());
    for (uint32_t tau : {1u, 2u, 3u}) {
      EXPECT_EQ(Scores(ref.Query(12, tau)), Scores(engine->Query(12, tau)))
          << "tau " << tau;
    }
  }

  // Reopening the same directory under another scorer must fail typed —
  // both artifacts carry the truss stamp.
  {
    live::LiveOptions wrong = options;
    wrong.scorer = ScorerKind::kEsd;
    std::unique_ptr<live::LiveEsdIndex> live =
        live::LiveEsdIndex::Open(bootstrap, wrong, &error);
    EXPECT_EQ(live, nullptr);
    EXPECT_NE(error.find("scorer mismatch"), std::string::npos) << error;
  }

  fs::remove_all(dir);
}

TEST(ScorerProfileTest, HistogramIsScorerGeneric) {
  const Graph g = gen::ErdosRenyiGnm(40, 110, 17);
  const FrozenEsdIndex frozen = BuildFrozenIndex(g, core::TrussScorer());
  const ScorerOnlineEngine ref(g, core::TrussScorer());
  for (uint32_t tau : {1u, 2u, 3u}) {
    const core::ScoreHistogram hist = core::ComputeScoreHistogram(frozen, tau);
    std::vector<uint64_t> want;
    for (graph::EdgeId e = 0; e < g.NumEdges(); ++e) {
      const uint32_t s = ref.ScoreOf(e, tau);
      if (s >= want.size()) want.resize(s + 1, 0);
      ++want[s];
    }
    ASSERT_EQ(hist.count.size(), want.size());
    EXPECT_EQ(hist.count, want);
    EXPECT_EQ(hist.total_edges, g.NumEdges());
    EXPECT_EQ(core::ScorePercentile(hist, 0.0), 0u);
    EXPECT_EQ(core::ScorePercentile(hist, 1.0), hist.max_score);
  }
}

}  // namespace
}  // namespace esd
