// FrozenEsdIndex: the read-optimized serving layer must be observationally
// identical to the treap index it images — on every query, for every
// (k, tau), including the documented zero-padding order — and must
// round-trip losslessly through Freeze/Thaw and both index_io file
// versions.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/esd_index.h"
#include "core/frozen_index.h"
#include "core/index_builder.h"
#include "core/index_io.h"
#include "core/naive_topk.h"
#include "core/parallel_builder.h"
#include "core/query_engine.h"
#include "gen/barabasi_albert.h"
#include "gen/erdos_renyi.h"
#include "graph/builder.h"
#include "tests/test_helpers.h"

namespace esd {
namespace {

using core::EsdIndex;
using core::FrozenEsdIndex;
using core::TopKResult;

/// ~50 small random graphs: half ER (sparse to dense), half BA (hubby).
std::vector<graph::Graph> RandomGraphs() {
  std::vector<graph::Graph> out;
  for (uint64_t seed = 0; seed < 25; ++seed) {
    uint32_t n = 8 + static_cast<uint32_t>(seed) * 2;
    out.push_back(gen::ErdosRenyiGnm(n, 2 + seed * n / 4, seed));
  }
  for (uint64_t seed = 0; seed < 25; ++seed) {
    uint32_t attach = 1 + static_cast<uint32_t>(seed % 4);
    out.push_back(gen::BarabasiAlbert(10 + static_cast<uint32_t>(seed),
                                      attach, 1000 + seed));
  }
  return out;
}

/// Exhaustive observational equality between the treap index and its frozen
/// image: every read of the EsdQueryEngine interface, over every relevant
/// tau and a spread of k / min_score / limit values.
void ExpectEngineParity(const EsdIndex& index, const FrozenEsdIndex& frozen) {
  const uint32_t m = static_cast<uint32_t>(index.NumRegisteredEdges());
  ASSERT_EQ(frozen.NumRegisteredEdges(), index.NumRegisteredEdges());
  ASSERT_EQ(frozen.EdgeSlotCount(), index.EdgeSlotCount());
  EXPECT_EQ(frozen.DistinctSizes(), index.DistinctSizes());

  std::vector<uint32_t> sizes = index.DistinctSizes();
  const uint32_t max_size = sizes.empty() ? 0 : sizes.back();
  for (uint32_t tau = 0; tau <= max_size + 2; ++tau) {
    for (uint32_t k : {0u, 1u, 3u, m / 2, m, m + 4}) {
      EXPECT_EQ(frozen.Query(k, tau), index.Query(k, tau))
          << "k=" << k << " tau=" << tau;
      EXPECT_EQ(frozen.Query(k, tau, false), index.Query(k, tau, false))
          << "k=" << k << " tau=" << tau << " (no padding)";
    }
    for (uint32_t min_score : {0u, 1u, 2u, 5u}) {
      EXPECT_EQ(frozen.CountWithScoreAtLeast(tau, min_score),
                index.CountWithScoreAtLeast(tau, min_score))
          << "tau=" << tau << " min_score=" << min_score;
      for (size_t limit : {size_t{0}, size_t{3}}) {
        EXPECT_EQ(frozen.QueryWithScoreAtLeast(tau, min_score, limit),
                  index.QueryWithScoreAtLeast(tau, min_score, limit))
            << "tau=" << tau << " min_score=" << min_score;
      }
    }
    for (graph::EdgeId e = 0; e < index.EdgeSlotCount(); ++e) {
      if (!index.IsLive(e)) continue;
      EXPECT_EQ(frozen.ScoreOf(e, tau), index.ScoreOf(e, tau))
          << "e=" << e << " tau=" << tau;
    }
  }
}

TEST(FrozenIndexTest, ParityOnRandomGraphs) {
  for (const graph::Graph& g : RandomGraphs()) {
    EsdIndex index = core::BuildIndexClique(g);
    FrozenEsdIndex frozen = core::Freeze(index);
    ExpectEngineParity(index, frozen);
  }
}

TEST(FrozenIndexTest, FreezeThawFreezeIsIdentity) {
  for (const graph::Graph& g : RandomGraphs()) {
    EsdIndex index = core::BuildIndexClique(g);
    FrozenEsdIndex frozen = core::Freeze(index);
    EsdIndex thawed = core::Thaw(frozen);
    test::ExpectIndexesEqual(index, thawed);
    EXPECT_TRUE(core::Freeze(thawed) == frozen);
  }
}

TEST(FrozenIndexTest, BuilderFrozenPathsMatchFreeze) {
  for (uint64_t seed : {3u, 7u, 11u}) {
    graph::Graph g = gen::ErdosRenyiGnm(40, 160, seed);
    FrozenEsdIndex want = core::Freeze(core::BuildIndexClique(g));
    EXPECT_TRUE(core::BuildFrozenIndex(g) == want);
    EXPECT_TRUE(core::BuildFrozenIndexParallel(g, 4) == want);
    EXPECT_TRUE(core::BuildFrozenIndexParallel(
                    g, 3, core::ParallelMode::kVertexParallel) == want);
  }
}

TEST(FrozenIndexTest, FreedSlotsRoundTrip) {
  graph::Graph g = gen::BarabasiAlbert(40, 3, 5);
  EsdIndex index = core::BuildIndexClique(g);
  // Free a few slots, as the dynamic maintenance path would.
  for (graph::EdgeId e : {2u, 7u, 20u}) {
    index.SetEdgeSizes(e, {});
    index.UnregisterEdge(e);
  }
  FrozenEsdIndex frozen = core::Freeze(index);
  EXPECT_EQ(frozen.NumRegisteredEdges(), index.NumRegisteredEdges());
  for (graph::EdgeId e = 0; e < index.EdgeSlotCount(); ++e) {
    EXPECT_EQ(frozen.IsLive(e), index.IsLive(e));
  }
  ExpectEngineParity(index, frozen);

  // Thaw reproduces the exact slot layout, and re-freezing is an identity.
  EsdIndex thawed = core::Thaw(frozen);
  test::ExpectIndexesEqual(index, thawed);
  for (graph::EdgeId e = 0; e < index.EdgeSlotCount(); ++e) {
    EXPECT_EQ(thawed.IsLive(e), index.IsLive(e));
  }
  EXPECT_TRUE(core::Freeze(thawed) == frozen);
}

TEST(FrozenIndexTest, PaddingOrderIsAscendingEdgeId) {
  // A star has zero structural diversity everywhere at tau >= 2, so a
  // padded query is all padding: the documented order is ascending edge id.
  graph::Graph g;
  graph::GraphBuilder b;
  for (uint32_t i = 1; i <= 6; ++i) b.AddEdge(0, i);
  g = b.Build();
  EsdIndex index = core::BuildIndexClique(g);
  FrozenEsdIndex frozen = core::Freeze(index);
  TopKResult got = frozen.Query(4, 3);
  ASSERT_EQ(got.size(), 4u);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].score, 0u);
    EXPECT_EQ(got[i].edge, index.EdgeAt(static_cast<graph::EdgeId>(i)));
  }
  EXPECT_EQ(got, index.Query(4, 3));
}

TEST(FrozenIndexTest, QueriesAgainstNaiveGroundTruth) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    graph::Graph g = gen::ErdosRenyiGnm(30, 120, seed);
    FrozenEsdIndex frozen = core::BuildFrozenIndex(g);
    for (uint32_t tau : {2u, 3u}) {
      EXPECT_EQ(core::Scores(frozen.Query(10, tau)),
                test::NaiveTopScores(g, 10, tau));
    }
  }
}

TEST(FrozenIndexTest, EmptyAndDefaultImages) {
  FrozenEsdIndex def;
  EXPECT_EQ(def.Query(5, 2), TopKResult{});
  EXPECT_EQ(def.CountWithScoreAtLeast(2, 1), 0u);
  EXPECT_EQ(def.MemoryBytes(), 0u);

  FrozenEsdIndex empty = FrozenEsdIndex::FromEdgeSizes({}, {});
  EXPECT_EQ(empty.Query(5, 2), TopKResult{});
  EXPECT_EQ(empty.EdgeSlotCount(), 0u);

  // Even a default image (whose offset tables are empty rather than the
  // canonical single zero) serializes to a loadable v2 file, and loading
  // normalizes it to the canonical empty image.
  std::stringstream buf;
  std::string error;
  ASSERT_TRUE(core::SerializeFrozenIndex(def, buf, &error)) << error;
  FrozenEsdIndex back;
  ASSERT_TRUE(core::DeserializeFrozenIndex(buf, &back, &error)) << error;
  EXPECT_TRUE(back == empty);
}

TEST(FrozenIndexTest, AdoptRejectsMalformedParts) {
  graph::Graph g = gen::ErdosRenyiGnm(20, 60, 9);
  FrozenEsdIndex frozen = core::BuildFrozenIndex(g);
  auto parts_of = [&frozen] {
    FrozenEsdIndex::Parts p;
    p.edges.assign(frozen.Edges().begin(), frozen.Edges().end());
    p.live.assign(frozen.LiveMask().begin(), frozen.LiveMask().end());
    p.size_offsets.assign(frozen.SizeOffsets().begin(),
                          frozen.SizeOffsets().end());
    p.size_pool.assign(frozen.SizePool().begin(), frozen.SizePool().end());
    p.sizes.assign(frozen.Sizes().begin(), frozen.Sizes().end());
    p.offsets.assign(frozen.SlabOffsets().begin(),
                     frozen.SlabOffsets().end());
    p.entries.assign(frozen.Entries().begin(), frozen.Entries().end());
    return p;
  };
  {
    FrozenEsdIndex out;
    std::string error;
    ASSERT_TRUE(FrozenEsdIndex::Adopt(parts_of(), &out, &error)) << error;
    EXPECT_TRUE(out == frozen);
  }
  auto expect_rejected = [](FrozenEsdIndex::Parts p) {
    FrozenEsdIndex out;
    std::string error;
    EXPECT_FALSE(FrozenEsdIndex::Adopt(std::move(p), &out, &error));
    EXPECT_FALSE(error.empty());
  };
  {
    auto p = parts_of();
    p.live.pop_back();  // live mask shorter than the edge table
    expect_rejected(std::move(p));
  }
  {
    auto p = parts_of();
    p.offsets.back() += 1;  // slab offsets no longer cover entries exactly
    expect_rejected(std::move(p));
  }
  {
    auto p = parts_of();
    ASSERT_FALSE(p.entries.empty());
    p.entries[0].score += 1;  // score contradicts the stored multiset
    expect_rejected(std::move(p));
  }
  {
    auto p = parts_of();
    ASSERT_FALSE(p.sizes.empty());
    p.sizes.pop_back();  // C no longer matches the pool's distinct sizes
    expect_rejected(std::move(p));
  }
}

TEST(IndexIoV2Test, FrozenRoundTripV2) {
  for (uint64_t seed : {4u, 8u}) {
    graph::Graph g = gen::BarabasiAlbert(40, 3, seed);
    FrozenEsdIndex frozen = core::BuildFrozenIndex(g);
    std::stringstream buf;
    std::string error;
    ASSERT_TRUE(core::SerializeFrozenIndex(frozen, buf, &error)) << error;
    FrozenEsdIndex back;
    ASSERT_TRUE(core::DeserializeFrozenIndex(buf, &back, &error)) << error;
    EXPECT_TRUE(back == frozen);
  }
}

TEST(IndexIoV2Test, V1FileLoadsIntoBothEngines) {
  graph::Graph g = gen::ErdosRenyiGnm(35, 140, 6);
  EsdIndex built = core::BuildIndexClique(g);
  std::stringstream buf;
  std::string error;
  ASSERT_TRUE(core::SerializeIndex(built, buf, &error)) << error;
  const std::string v1 = buf.str();

  std::stringstream in_treap(v1);
  EsdIndex as_treap;
  ASSERT_TRUE(core::DeserializeIndex(in_treap, &as_treap, &error)) << error;
  std::stringstream in_frozen(v1);
  FrozenEsdIndex as_frozen;
  ASSERT_TRUE(core::DeserializeFrozenIndex(in_frozen, &as_frozen, &error))
      << error;

  test::ExpectIndexesEqual(built, as_treap);
  EXPECT_TRUE(as_frozen == core::Freeze(built));
  ExpectEngineParity(as_treap, as_frozen);
}

TEST(IndexIoV2Test, V2FileLoadsIntoBothEngines) {
  graph::Graph g = gen::ErdosRenyiGnm(35, 140, 7);
  FrozenEsdIndex frozen = core::BuildFrozenIndex(g);
  std::stringstream buf;
  std::string error;
  ASSERT_TRUE(core::SerializeFrozenIndex(frozen, buf, &error)) << error;
  const std::string v2 = buf.str();

  std::stringstream in_frozen(v2);
  FrozenEsdIndex as_frozen;
  ASSERT_TRUE(core::DeserializeFrozenIndex(in_frozen, &as_frozen, &error))
      << error;
  std::stringstream in_treap(v2);
  EsdIndex as_treap;
  ASSERT_TRUE(core::DeserializeIndex(in_treap, &as_treap, &error)) << error;

  EXPECT_TRUE(as_frozen == frozen);
  test::ExpectIndexesEqual(as_treap, core::Thaw(frozen));
  ExpectEngineParity(as_treap, as_frozen);
}

TEST(IndexIoV2Test, V1ToV2MigrationPreservesAnswers) {
  // The migration path: load a legacy v1 file into the serving layer, save
  // it as v2, reload — every answer must survive both hops.
  graph::Graph g = gen::BarabasiAlbert(45, 2, 11);
  EsdIndex built = core::BuildIndexClique(g);
  std::stringstream v1;
  std::string error;
  ASSERT_TRUE(core::SerializeIndex(built, v1, &error)) << error;
  FrozenEsdIndex migrated;
  ASSERT_TRUE(core::DeserializeFrozenIndex(v1, &migrated, &error)) << error;
  std::stringstream v2;
  ASSERT_TRUE(core::SerializeFrozenIndex(migrated, v2, &error)) << error;
  FrozenEsdIndex reloaded;
  ASSERT_TRUE(core::DeserializeFrozenIndex(v2, &reloaded, &error)) << error;
  EXPECT_TRUE(reloaded == migrated);
  ExpectEngineParity(built, reloaded);
}

TEST(IndexIoV2Test, CorruptV2Rejected) {
  graph::Graph g = gen::ErdosRenyiGnm(25, 80, 13);
  FrozenEsdIndex frozen = core::BuildFrozenIndex(g);
  std::stringstream buf;
  std::string error;
  ASSERT_TRUE(core::SerializeFrozenIndex(frozen, buf, &error)) << error;
  const std::string good = buf.str();

  {  // Bad magic.
    std::string bad = good;
    bad[0] = 'X';
    std::stringstream in(bad);
    FrozenEsdIndex out;
    EXPECT_FALSE(core::DeserializeFrozenIndex(in, &out, &error));
  }
  {  // Unsupported version.
    std::string bad = good;
    bad[4] = 99;
    std::stringstream in(bad);
    FrozenEsdIndex out;
    EXPECT_FALSE(core::DeserializeFrozenIndex(in, &out, &error));
  }
  {  // Flipped payload byte: the checksum (or Adopt) must catch it.
    std::string bad = good;
    bad[bad.size() / 2] ^= 0x20;
    std::stringstream in(bad);
    FrozenEsdIndex out;
    EXPECT_FALSE(core::DeserializeFrozenIndex(in, &out, &error));
  }
  {  // Truncation.
    std::string bad = good.substr(0, good.size() - 9);
    std::stringstream in(bad);
    FrozenEsdIndex out;
    EXPECT_FALSE(core::DeserializeFrozenIndex(in, &out, &error));
  }
  {  // A v2 stream also fails cleanly through the treap loader.
    std::string bad = good;
    bad[bad.size() / 2] ^= 0x20;
    std::stringstream in(bad);
    EsdIndex out;
    EXPECT_FALSE(core::DeserializeIndex(in, &out, &error));
  }
}

/// Byte offsets (into a serialized frozen stream) of each array's u64
/// element count, derived from the actual array lengths: 4 magic + 4
/// version + 4 scorer id, then per array an 8-byte count followed by the
/// payload.
std::vector<size_t> V2CountOffsets(const FrozenEsdIndex& frozen) {
  std::vector<size_t> offsets;
  size_t pos = 12;
  const size_t payload_bytes[] = {
      frozen.Edges().size() * sizeof(graph::Edge),
      frozen.LiveMask().size() * sizeof(uint8_t),
      std::max<size_t>(frozen.SizeOffsets().size(), 1) * sizeof(uint64_t),
      frozen.SizePool().size() * sizeof(uint32_t),
      frozen.Sizes().size() * sizeof(uint32_t),
      std::max<size_t>(frozen.SlabOffsets().size(), 1) * sizeof(uint64_t),
      frozen.Entries().size() * sizeof(FrozenEsdIndex::Entry),
  };
  for (size_t bytes : payload_bytes) {
    offsets.push_back(pos);
    pos += sizeof(uint64_t) + bytes;
  }
  return offsets;
}

TEST(IndexIoV2Test, OversizedCountsRejectedWithoutAllocation) {
  // A corrupt or hostile v2 file may claim any 64-bit element count; the
  // loader must reject it with a parse error before trusting it with an
  // allocation. Fuzz every array's count slot with a spread of oversized
  // values (the driver acceptance case: no multi-GB resize, no n*sizeof(T)
  // overflow — just a clean error).
  graph::Graph g = gen::ErdosRenyiGnm(12, 30, 21);
  FrozenEsdIndex frozen = core::BuildFrozenIndex(g);
  std::stringstream buf;
  std::string error;
  ASSERT_TRUE(core::SerializeFrozenIndex(frozen, buf, &error)) << error;
  const std::string good = buf.str();

  const uint64_t hostile_counts[] = {
      uint64_t{1} << 61,                      // ~exabyte resize request
      std::numeric_limits<uint64_t>::max(),   // n * sizeof(T) overflows
      static_cast<uint64_t>(good.size()) + 1  // just past the real stream
  };
  for (size_t offset : V2CountOffsets(frozen)) {
    for (uint64_t n : hostile_counts) {
      std::string bad = good;
      std::memcpy(bad.data() + offset, &n, sizeof(n));
      std::stringstream in(bad);
      FrozenEsdIndex out;
      error.clear();
      EXPECT_FALSE(core::DeserializeFrozenIndex(in, &out, &error))
          << "offset=" << offset << " n=" << n;
      EXPECT_NE(error.find("exceeds remaining bytes"), std::string::npos)
          << "offset=" << offset << " n=" << n << " error=" << error;
    }
  }
  // The same hostile counts must fail the treap loader's v2 path too.
  {
    std::string bad = good;
    const uint64_t huge = uint64_t{1} << 61;
    std::memcpy(bad.data() + 8, &huge, sizeof(huge));
    std::stringstream in(bad);
    EsdIndex out;
    EXPECT_FALSE(core::DeserializeIndex(in, &out, &error));
  }
}

TEST(IndexIoV2Test, TruncatedBlockRejected) {
  // Cut the stream mid-payload (not merely at the tail): the length prefix
  // promises more elements than the stream holds.
  graph::Graph g = gen::ErdosRenyiGnm(12, 30, 22);
  FrozenEsdIndex frozen = core::BuildFrozenIndex(g);
  ASSERT_FALSE(frozen.Edges().empty());
  std::stringstream buf;
  std::string error;
  ASSERT_TRUE(core::SerializeFrozenIndex(frozen, buf, &error)) << error;
  const std::string good = buf.str();

  // End inside the first element of the edges array: header (8) + scorer
  // (4) + count (8) + half an edge.
  for (size_t keep : {size_t{20}, size_t{20 + sizeof(graph::Edge) / 2},
                      good.size() / 2}) {
    std::stringstream in(good.substr(0, keep));
    FrozenEsdIndex out;
    error.clear();
    EXPECT_FALSE(core::DeserializeFrozenIndex(in, &out, &error)) << keep;
    EXPECT_FALSE(error.empty());
  }
}

TEST(QueryEngineTest, FactoryCoversAllEnginesWithEqualAnswers) {
  graph::Graph g = gen::ErdosRenyiGnm(30, 110, 17);
  TopKResult want;  // treap's answer is the reference
  for (const std::string& name : core::QueryEngineNames()) {
    std::string error;
    std::unique_ptr<core::EsdQueryEngine> engine =
        core::BuildQueryEngine(g, name, &error);
    ASSERT_NE(engine, nullptr) << error;
    EXPECT_EQ(engine->EngineName(), name);
    TopKResult got = engine->Query(8, 2);
    if (name == "treap") want = got;
    if (name == "treap" || name == "frozen" || name == "dynamic") {
      // Index-backed engines agree exactly, padding included.
      EXPECT_EQ(got, want) << name;
    } else {
      // Online engines may break score ties differently; the score vector
      // is still the same.
      EXPECT_EQ(core::Scores(got), core::Scores(want)) << name;
    }
    EXPECT_EQ(engine->CountWithScoreAtLeast(2, 1),
              core::BuildQueryEngine(g, "treap", &error)
                  ->CountWithScoreAtLeast(2, 1))
        << name;
  }
  std::string error;
  EXPECT_EQ(core::BuildQueryEngine(g, "no-such-engine", &error), nullptr);
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace esd
