#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/esd_index.h"
#include "core/index_builder.h"
#include "core/online_topk.h"
#include "esd_version.h"
#include "gen/datasets.h"
#include "gen/erdos_renyi.h"
#include "tests/test_helpers.h"

namespace esd {
namespace {

using core::EsdIndex;
using graph::Graph;

TEST(VersionTest, Consistent) {
  EXPECT_GE(kVersionMajor, 1);
  std::string expect = std::to_string(kVersionMajor) + "." +
                       std::to_string(kVersionMinor) + "." +
                       std::to_string(kVersionPatch);
  EXPECT_EQ(expect, kVersionString);
}

TEST(DatasetsTest, ScaleParameterGrowsGraphs) {
  gen::Dataset small = gen::LoadStandardDataset("youtube-s", 0.05);
  gen::Dataset larger = gen::LoadStandardDataset("youtube-s", 0.2);
  EXPECT_GT(larger.graph.NumVertices(), 2 * small.graph.NumVertices());
  EXPECT_GT(larger.graph.NumEdges(), 2 * small.graph.NumEdges());
}

TEST(EsdIndexTest, MoveSemanticsPreserveContents) {
  Graph g = gen::ErdosRenyiGnp(30, 0.3, 5);
  EsdIndex a = core::BuildIndexClique(g);
  uint64_t entries = a.NumEntries();
  std::vector<uint32_t> scores = core::Scores(a.Query(10, 2));
  EsdIndex b = std::move(a);
  EXPECT_EQ(b.NumEntries(), entries);
  EXPECT_EQ(core::Scores(b.Query(10, 2)), scores);
  EsdIndex c;
  c = std::move(b);
  EXPECT_EQ(c.NumEntries(), entries);
  EXPECT_EQ(core::Scores(c.Query(10, 2)), scores);
}

TEST(OnlineTopKTest, DeterministicAcrossRuns) {
  Graph g = gen::ErdosRenyiGnp(50, 0.25, 7);
  auto a = core::OnlineTopK(g, 15, 2, core::UpperBoundRule::kCommonNeighbor);
  auto b = core::OnlineTopK(g, 15, 2, core::UpperBoundRule::kCommonNeighbor);
  EXPECT_EQ(a, b);  // full edge identity, not just scores
}

TEST(OnlineTopKTest, ResultsSortedByScore) {
  Graph g = gen::ErdosRenyiGnp(60, 0.2, 9);
  for (auto rule : {core::UpperBoundRule::kMinDegree,
                    core::UpperBoundRule::kCommonNeighbor}) {
    auto r = core::OnlineTopK(g, 30, 2, rule);
    for (size_t i = 1; i < r.size(); ++i) {
      EXPECT_GE(r[i - 1].score, r[i].score);
    }
  }
}

}  // namespace
}  // namespace esd
