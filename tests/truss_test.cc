#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "cliques/truss.h"
#include "gen/erdos_renyi.h"
#include "graph/builder.h"
#include "graph/graph.h"

namespace esd::cliques {
namespace {

using graph::Edge;
using graph::EdgeId;
using graph::Graph;
using graph::GraphBuilder;
using graph::VertexId;

Graph CompleteGraph(VertexId n) {
  GraphBuilder b(n);
  for (VertexId i = 0; i < n; ++i) {
    for (VertexId j = i + 1; j < n; ++j) b.AddEdge(i, j);
  }
  return b.Build();
}

// Reference: trussness via repeated peeling from scratch. For each k,
// iteratively delete edges with < k-2 triangles; an edge's trussness is
// the largest k at which it survives.
std::vector<uint32_t> BruteTrussness(const Graph& g) {
  const EdgeId m = g.NumEdges();
  std::vector<uint32_t> truss(m, 2);
  for (uint32_t k = 3;; ++k) {
    std::vector<uint8_t> alive(m, 1);
    // Only edges with trussness >= k-1 can be in the k-truss.
    for (EdgeId e = 0; e < m; ++e) alive[e] = truss[e] >= k - 1;
    bool changed = true;
    while (changed) {
      changed = false;
      for (EdgeId e = 0; e < m; ++e) {
        if (!alive[e]) continue;
        const Edge& uv = g.EdgeAt(e);
        uint32_t tri = 0;
        for (VertexId w = 0; w < g.NumVertices(); ++w) {
          EdgeId e1 = g.FindEdge(uv.u, w);
          EdgeId e2 = g.FindEdge(uv.v, w);
          if (e1 != graph::kNoEdge && e2 != graph::kNoEdge && alive[e1] &&
              alive[e2]) {
            ++tri;
          }
        }
        if (tri < k - 2) {
          alive[e] = 0;
          changed = true;
        }
      }
    }
    bool any = false;
    for (EdgeId e = 0; e < m; ++e) {
      if (alive[e]) {
        truss[e] = k;
        any = true;
      }
    }
    if (!any) break;
  }
  return truss;
}

TEST(TrussTest, CliquesHaveFullTrussness) {
  for (VertexId n : {3u, 4u, 5u, 6u}) {
    TrussDecomposition d = ComputeTrussness(CompleteGraph(n));
    EXPECT_EQ(d.max_trussness, n);
    for (uint32_t t : d.trussness) EXPECT_EQ(t, n);
  }
}

TEST(TrussTest, TreesAndCyclesAreTwoTrusses) {
  GraphBuilder path(5);
  for (VertexId i = 0; i + 1 < 5; ++i) path.AddEdge(i, i + 1);
  TrussDecomposition d = ComputeTrussness(path.Build());
  for (uint32_t t : d.trussness) EXPECT_EQ(t, 2u);
  EXPECT_EQ(d.max_trussness, 2u);
}

TEST(TrussTest, CliqueWithPendantEdge) {
  GraphBuilder b(5);
  for (VertexId i = 0; i < 4; ++i) {
    for (VertexId j = i + 1; j < 4; ++j) b.AddEdge(i, j);
  }
  b.AddEdge(3, 4);  // pendant
  Graph g = b.Build();
  TrussDecomposition d = ComputeTrussness(g);
  EdgeId pendant = g.FindEdge(3, 4);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    EXPECT_EQ(d.trussness[e], e == pendant ? 2u : 4u);
  }
}

TEST(TrussTest, EmptyGraph) {
  TrussDecomposition d = ComputeTrussness(Graph());
  EXPECT_EQ(d.max_trussness, 0u);
  EXPECT_TRUE(d.trussness.empty());
}

class TrussRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TrussRandomTest, MatchesBruteForce) {
  Graph g = gen::ErdosRenyiGnp(18, 0.45, GetParam());
  TrussDecomposition d = ComputeTrussness(g);
  EXPECT_EQ(d.trussness, BruteTrussness(g));
}

INSTANTIATE_TEST_SUITE_P(Sweep, TrussRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(TrussTest, TwoCliquesSharingAnEdge) {
  // K5 on {0..4} and K4 on {3,4,5,6}: the shared edge (3,4) belongs to the
  // denser truss.
  GraphBuilder b(7);
  for (VertexId i = 0; i < 5; ++i) {
    for (VertexId j = i + 1; j < 5; ++j) b.AddEdge(i, j);
  }
  for (VertexId i = 3; i < 7; ++i) {
    for (VertexId j = i + 1; j < 7; ++j) b.AddEdge(i, j);
  }
  Graph g = b.Build();
  TrussDecomposition d = ComputeTrussness(g);
  EXPECT_EQ(d.trussness[g.FindEdge(0, 1)], 5u);
  EXPECT_EQ(d.trussness[g.FindEdge(3, 4)], 5u);
  EXPECT_EQ(d.trussness[g.FindEdge(5, 6)], 4u);
  EXPECT_EQ(d.max_trussness, 5u);
}

}  // namespace
}  // namespace esd::cliques
