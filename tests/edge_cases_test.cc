// Boundary coverage sweep: small, empty, disconnected, and over-sized
// inputs across public APIs.

#include <vector>

#include <gtest/gtest.h>

#include "baselines/betweenness.h"
#include "baselines/common_neighbor.h"
#include "cliques/truss.h"
#include "core/dynamic_index.h"
#include "core/edge_dsu_arena.h"
#include "core/esd_index.h"
#include "core/index_builder.h"
#include "core/online_topk.h"
#include "core/parallel_builder.h"
#include "gen/erdos_renyi.h"
#include "gen/word_association.h"
#include "graph/builder.h"
#include "graph/sampling.h"
#include "tests/test_helpers.h"

namespace esd {
namespace {

using core::EsdIndex;
using graph::Edge;
using graph::Graph;
using graph::GraphBuilder;
using graph::VertexId;

TEST(EdgeCasesTest, EmptyGraphEverywhere) {
  Graph g;
  EXPECT_TRUE(core::NaiveTopK(g, 5, 2).empty());
  EXPECT_TRUE(
      core::OnlineTopK(g, 5, 2, core::UpperBoundRule::kMinDegree).empty());
  EsdIndex index = core::BuildIndexClique(g);
  EXPECT_TRUE(index.Query(5, 2).empty());
  EXPECT_EQ(index.NumEntries(), 0u);
  core::EdgeDsuArena arena(g);
  EXPECT_EQ(arena.NumEdges(), 0u);
  EXPECT_TRUE(baselines::EdgeBetweenness(g).empty());
  EXPECT_TRUE(baselines::TopKByCommonNeighbors(g, 5).empty());
  EXPECT_EQ(cliques::ComputeTrussness(g).max_trussness, 0u);
}

TEST(EdgeCasesTest, DisconnectedGraphWithIsolatedVertices) {
  // Two triangles + 5 isolated vertices.
  GraphBuilder b(11);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(0, 2);
  b.AddEdge(3, 4);
  b.AddEdge(4, 5);
  b.AddEdge(3, 5);
  Graph g = b.Build();
  EsdIndex index = core::BuildIndexClique(g);
  // Each triangle edge's ego-network is a single common neighbor.
  for (const Edge& e : g.Edges()) {
    EXPECT_EQ(index.ScoreOf(g.FindEdge(e.u, e.v), 1), 1u);
  }
  EXPECT_EQ(core::Scores(index.Query(6, 1)),
            (std::vector<uint32_t>(6, 1)));
  // Maintenance across components.
  core::DynamicEsdIndex dyn(g);
  ASSERT_TRUE(dyn.InsertEdge(2, 3));  // bridge the triangles
  ASSERT_TRUE(dyn.InsertEdge(10, 0));  // connect an isolated vertex
  Graph now = dyn.CurrentGraph().Snapshot();
  for (uint32_t tau : {1u, 2u}) {
    EXPECT_EQ(core::Scores(dyn.Query(10, tau)),
              test::NaiveTopScores(now, 10, tau));
  }
}

TEST(EdgeCasesTest, KAndTauExtremes) {
  Graph g = gen::ErdosRenyiGnp(25, 0.3, 3);
  EsdIndex index = core::BuildIndexClique(g);
  // k far beyond m.
  EXPECT_EQ(index.Query(1 << 20, 1).size(), g.NumEdges());
  // tau beyond any neighborhood.
  core::TopKResult r = index.Query(5, 1 << 20);
  EXPECT_EQ(r.size(), 5u);
  for (const auto& se : r) EXPECT_EQ(se.score, 0u);
  // k == exact list size boundary (no padding needed).
  size_t positive = index.QueryWithScoreAtLeast(1, 1).size();
  EXPECT_EQ(index.Query(static_cast<uint32_t>(positive), 1, false).size(),
            positive);
}

TEST(EdgeCasesTest, ParallelBuilderMoreThreadsThanWork) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  EsdIndex a = core::BuildIndexParallel(g, 16);
  EsdIndex b = core::BuildIndexBasic(g);
  test::ExpectIndexesEqual(a, b);
}

TEST(EdgeCasesTest, SamplingDegenerateFractions) {
  Graph g = gen::ErdosRenyiGnp(20, 0.4, 5);
  EXPECT_EQ(graph::SampleVertices(g, 0.0, 1).NumVertices(), 0u);
  Graph all = graph::SampleVertices(g, 1.0, 1);
  EXPECT_EQ(all.NumVertices(), g.NumVertices());
  EXPECT_EQ(all.NumEdges(), g.NumEdges());
  // Negative/overflow fractions clamp.
  EXPECT_EQ(graph::SampleEdges(g, -0.5, 1).NumEdges(), 0u);
  EXPECT_EQ(graph::SampleEdges(g, 7.0, 1).NumEdges(), g.NumEdges());
}

TEST(EdgeCasesTest, WordGraphFindAndLabels) {
  gen::WordAssociationParams p;
  p.background_words = 50;
  gen::WordAssociationGraph w = gen::GenerateWordAssociation(p, 3);
  // Every vertex has a nonempty distinct-enough label.
  for (const std::string& word : w.words) EXPECT_FALSE(word.empty());
  // Find is consistent with the label table.
  for (VertexId v = 0; v < std::min<VertexId>(20, w.words.size()); ++v) {
    EXPECT_EQ(w.Find(w.words[v]), v);
  }
}

TEST(EdgeCasesTest, SelfLoopAndDuplicateRobustnessThroughDynamic) {
  core::DynamicEsdIndex dyn(Graph::FromEdges(4, {{0, 1}}));
  EXPECT_FALSE(dyn.InsertEdge(2, 2));
  EXPECT_TRUE(dyn.InsertEdge(1, 2));
  EXPECT_FALSE(dyn.InsertEdge(2, 1));
  EXPECT_FALSE(dyn.DeleteEdge(3, 3));
  EXPECT_EQ(dyn.CurrentGraph().NumEdges(), 2u);
}

TEST(EdgeCasesTest, TrussOnDisconnectedCliques) {
  GraphBuilder b(9);
  for (VertexId i = 0; i < 4; ++i) {
    for (VertexId j = i + 1; j < 4; ++j) b.AddEdge(i, j);
  }
  for (VertexId i = 4; i < 7; ++i) {
    for (VertexId j = i + 1; j < 7; ++j) b.AddEdge(i, j);
  }
  b.AddEdge(7, 8);
  Graph g = b.Build();
  cliques::TrussDecomposition d = cliques::ComputeTrussness(g);
  EXPECT_EQ(d.max_trussness, 4u);
  EXPECT_EQ(d.trussness[g.FindEdge(4, 5)], 3u);
  EXPECT_EQ(d.trussness[g.FindEdge(7, 8)], 2u);
}

}  // namespace
}  // namespace esd
