// Metamorphic properties: transformations of the input whose effect on the
// output is known exactly. These catch bugs that example-based tests and
// cross-implementation agreement can both miss (e.g., a shared
// vertex-ordering assumption).

#include <algorithm>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "core/dynamic_index.h"
#include "core/ego_network.h"
#include "core/esd_index.h"
#include "core/index_builder.h"
#include "core/naive_topk.h"
#include "gen/erdos_renyi.h"
#include "gen/holme_kim.h"
#include "graph/graph.h"
#include "tests/test_helpers.h"
#include "util/rng.h"
#include "util/treap.h"

namespace esd {
namespace {

using core::EsdIndex;
using graph::Edge;
using graph::Graph;
using graph::VertexId;

Graph Relabel(const Graph& g, const std::vector<VertexId>& perm) {
  std::vector<Edge> edges;
  edges.reserve(g.NumEdges());
  for (const Edge& e : g.Edges()) {
    edges.push_back(graph::MakeEdge(perm[e.u], perm[e.v]));
  }
  return Graph::FromEdges(g.NumVertices(), std::move(edges));
}

TEST(MetamorphicTest, ScoresInvariantUnderVertexRelabeling) {
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    Graph g = gen::ErdosRenyiGnp(40, 0.3, seed);
    util::Rng rng(seed * 31);
    std::vector<VertexId> perm(g.NumVertices());
    std::iota(perm.begin(), perm.end(), 0);
    for (VertexId i = g.NumVertices(); i-- > 1;) {
      std::swap(perm[i], perm[rng.NextBounded(i + 1)]);
    }
    Graph h = Relabel(g, perm);
    for (uint32_t tau : {1u, 2u, 3u}) {
      // Full sorted score multisets must match.
      std::vector<uint32_t> a = core::AllEdgeScores(g, tau);
      std::vector<uint32_t> b = core::AllEdgeScores(h, tau);
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      EXPECT_EQ(a, b) << "tau=" << tau << " seed=" << seed;
      // Per-edge correspondence.
      for (const Edge& e : g.Edges()) {
        EXPECT_EQ(core::EdgeScore(g, e.u, e.v, tau),
                  core::EdgeScore(h, perm[e.u], perm[e.v], tau));
      }
    }
    // Index artifacts match too (distinct sizes and entry count).
    EsdIndex ig = core::BuildIndexClique(g);
    EsdIndex ih = core::BuildIndexClique(h);
    EXPECT_EQ(ig.DistinctSizes(), ih.DistinctSizes());
    EXPECT_EQ(ig.NumEntries(), ih.NumEntries());
  }
}

TEST(MetamorphicTest, AddingContextlessEdgeChangesNothingElse) {
  // Observation 2 corollary: inserting an edge whose endpoints share no
  // neighbor leaves every other edge's score untouched.
  Graph g = gen::HolmeKim(80, 4, 0.5, 7);
  // Find such a pair.
  VertexId a = UINT32_MAX, b = UINT32_MAX;
  for (VertexId u = 0; u < g.NumVertices() && a == UINT32_MAX; ++u) {
    for (VertexId v = u + 1; v < g.NumVertices(); ++v) {
      if (!g.HasEdge(u, v) && graph::CountCommonNeighbors(g, u, v) == 0) {
        a = u;
        b = v;
        break;
      }
    }
  }
  ASSERT_NE(a, UINT32_MAX);
  core::DynamicEsdIndex dyn(g);
  std::vector<uint32_t> before = core::AllEdgeScores(g, 2);
  ASSERT_TRUE(dyn.InsertEdge(a, b));
  EXPECT_EQ(dyn.LastUpdateTouchedEdges(), 1u);
  for (graph::EdgeId e = 0; e < g.NumEdges(); ++e) {
    const Edge& uv = g.EdgeAt(e);
    EXPECT_EQ(dyn.ScoreOf(uv.u, uv.v, 2), before[e]);
  }
  EXPECT_EQ(dyn.ScoreOf(a, b, 2), 0u);
}

TEST(MetamorphicTest, DisjointUnionScoresAreTheConcatenation) {
  // Scores on a disjoint union = union of scores of the parts.
  Graph g1 = gen::ErdosRenyiGnp(25, 0.35, 11);
  Graph g2 = gen::ErdosRenyiGnp(20, 0.4, 12);
  std::vector<Edge> edges(g1.Edges());
  for (const Edge& e : g2.Edges()) {
    edges.push_back(Edge{e.u + g1.NumVertices(), e.v + g1.NumVertices()});
  }
  Graph both = Graph::FromEdges(g1.NumVertices() + g2.NumVertices(),
                                std::move(edges));
  for (uint32_t tau : {1u, 2u, 3u}) {
    std::vector<uint32_t> want = core::AllEdgeScores(g1, tau);
    std::vector<uint32_t> s2 = core::AllEdgeScores(g2, tau);
    want.insert(want.end(), s2.begin(), s2.end());
    std::sort(want.begin(), want.end());
    std::vector<uint32_t> got = core::AllEdgeScores(both, tau);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, want);
  }
}

TEST(MetamorphicTest, TreapStructureValidAfterHeavyChurn) {
  util::Treap<uint32_t> t;
  util::Rng rng(99);
  EXPECT_TRUE(t.ValidateStructure());
  for (int step = 0; step < 5000; ++step) {
    uint32_t x = static_cast<uint32_t>(rng.NextBounded(400));
    if (rng.NextBool(0.5)) {
      t.Insert(x);
    } else {
      t.Erase(x);
    }
    if (step % 500 == 0) {
      EXPECT_TRUE(t.ValidateStructure()) << step;
    }
  }
  EXPECT_TRUE(t.ValidateStructure());
  // Bulk build also yields a valid treap.
  std::vector<uint32_t> sorted(1000);
  std::iota(sorted.begin(), sorted.end(), 0);
  t.BuildFromSorted(sorted);
  EXPECT_TRUE(t.ValidateStructure());
}

}  // namespace
}  // namespace esd
