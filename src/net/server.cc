#include "net/server.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "fault/failpoint.h"
#include "obs/trace.h"

namespace esd::net {

namespace {

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

WireError WireErrorFor(WireStatus status) {
  switch (status) {
    case WireStatus::kOversized:
      return WireError::kOversized;
    case WireStatus::kBadType:
      return WireError::kBadType;
    case WireStatus::kBadPayload:
      return WireError::kBadPayload;
    default:
      return WireError::kParse;
  }
}

std::string HttpResponse(int code, const char* reason,
                         std::string_view body) {
  std::string out = "HTTP/1.0 ";
  out += std::to_string(code);
  out += ' ';
  out += reason;
  // version=0.0.4 is the Prometheus text exposition content type.
  out += "\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

/// Per-connection state machine. The loop thread owns fd/mode/input; the
/// ordered output-slot queue is shared with worker-thread completion
/// callbacks under mu.
struct NetServer::Conn {
  int fd = -1;
  ConnMode mode = ConnMode::kUnknown;
  FrameDecoder decoder;
  std::string inbuf;      // sniff buffer + text/http accumulation
  bool read_eof = false;  // peer half-closed
  bool reading = true;    // poller read interest
  bool want_close = false;  // close once slots drain and outbox flushes
  // Current poller interest, to elide redundant Update calls.
  bool armed_read = true;
  bool armed_write = false;

  std::string outbox;  // ready bytes being written (loop thread only)
  size_t out_off = 0;

  std::mutex mu;
  struct Slot {
    bool ready = false;
    std::string bytes;
  };
  /// Ordered response slots: reserved at request parse time, filled sync
  /// (commands) or async (query completions), flushed strictly in order.
  std::deque<Slot> slots;   // guarded by mu
  uint64_t base_seq = 0;    // seq of slots.front(); guarded by mu
  uint64_t next_seq = 0;    // guarded by mu
  size_t slot_bytes = 0;    // staged-but-unflushed bytes; guarded by mu
  uint32_t inflight = 0;    // submitted, not yet completed; guarded by mu
  bool closed = false;      // fd closed; late completions drop; guarded by mu

  explicit Conn(uint32_t max_frame_bytes) : decoder(max_frame_bytes) {}
};

NetServer::NetServer(Handlers handlers, Options options)
    : handlers_(std::move(handlers)),
      options_(std::move(options)),
      registry_(options_.registry != nullptr ? *options_.registry
                                             : obs::MetricRegistry::Global()),
      m_accepts_(registry_.GetCounter("esd_net_accepts_total",
                                      "Connections accepted")),
      m_accept_errors_(registry_.GetCounter(
          "esd_net_accept_errors_total",
          "Accepts rejected (fault-injected, or connection cap)")),
      m_closed_(registry_.GetCounter("esd_net_conn_closed_total",
                                     "Connections closed (any reason)")),
      m_parse_errors_(registry_.GetCounter(
          "esd_net_parse_errors_total",
          "Protocol violations: bad frames, oversized prefixes, bad lines")),
      m_queries_(registry_.GetCounter("esd_net_queries_total",
                                      "Queries decoded from the wire")),
      m_commands_(registry_.GetCounter("esd_net_commands_total",
                                       "Text-mode commands executed")),
      m_scrapes_(registry_.GetCounter("esd_net_http_scrapes_total",
                                      "GET /metrics scrapes answered")),
      m_backpressure_(registry_.GetCounter(
          "esd_net_backpressure_closes_total",
          "Connections closed for exceeding the output-buffer cap")),
      m_read_errors_(registry_.GetCounter(
          "esd_net_read_errors_total",
          "Socket read failures (incl. injected faults)")),
      m_write_errors_(registry_.GetCounter(
          "esd_net_write_errors_total",
          "Socket write failures (incl. injected faults)")),
      m_bytes_read_(registry_.GetCounter("esd_net_bytes_read_total",
                                         "Payload bytes read from sockets")),
      m_bytes_written_(registry_.GetCounter(
          "esd_net_bytes_written_total", "Payload bytes written to sockets")),
      m_connections_(registry_.GetGauge("esd_net_connections",
                                        "Currently open connections")),
      m_inflight_(registry_.GetGauge(
          "esd_net_inflight",
          "Wire queries submitted and not yet answered")) {}

NetServer::~NetServer() { Shutdown(); }

bool NetServer::Start(std::string* error) {
  auto fail = [&](const char* what) {
    if (error != nullptr) {
      *error = std::string(what) + ": " + std::strerror(errno);
    }
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
    if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
    listen_fd_ = wake_read_fd_ = wake_write_fd_ = -1;
    return false;
  };
  poller_ = Poller::Create(options_.force_poll, error);
  if (poller_ == nullptr) return false;

  int pipefd[2];
  if (::pipe(pipefd) != 0) return fail("pipe");
  wake_read_fd_ = pipefd[0];
  wake_write_fd_ = pipefd[1];
  if (!SetNonBlocking(wake_read_fd_) || !SetNonBlocking(wake_write_fd_)) {
    return fail("wake pipe fcntl");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    errno = EINVAL;
    return fail("inet_pton");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, 128) != 0) return fail("listen");
  if (!SetNonBlocking(listen_fd_)) return fail("listener fcntl");
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    return fail("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  poller_->Add(listen_fd_, /*want_read=*/true, /*want_write=*/false);
  poller_->Add(wake_read_fd_, /*want_read=*/true, /*want_write=*/false);
  started_.store(true);
  loop_ = std::thread([this] { LoopThread(); });
  return true;
}

const char* NetServer::backend_name() const {
  return poller_ != nullptr ? poller_->backend_name() : "unstarted";
}

void NetServer::RequestShutdown() {
  shutdown_requested_.store(true);
  Wake();
}

void NetServer::Join() {
  if (loop_.joinable()) loop_.join();
}

void NetServer::Shutdown() {
  if (!started_.load()) return;
  RequestShutdown();
  if (loop_.joinable()) loop_.join();
  if (stopped_.exchange(true)) return;
  // A force-closed connection (backpressure, fault injection, drain
  // timeout) does not cancel the service requests it already submitted:
  // their completion callbacks still hold `this`. The loop is joined, so
  // the count can only fall — wait for the last callback's handoff before
  // letting the destructor run.
  {
    std::unique_lock<std::mutex> lock(inflight_mu_);
    inflight_cv_.wait(lock,
                      [this] { return callback_handoff_.load() == 0; });
  }
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
  wake_read_fd_ = wake_write_fd_ = -1;
}

NetServer::Stats NetServer::SnapStats() const {
  Stats s;
  s.accepts = m_accepts_.Value();
  s.accept_errors = m_accept_errors_.Value();
  s.closed = m_closed_.Value();
  s.parse_errors = m_parse_errors_.Value();
  s.queries = m_queries_.Value();
  s.commands = m_commands_.Value();
  s.scrapes = m_scrapes_.Value();
  s.backpressure_closes = m_backpressure_.Value();
  s.read_errors = m_read_errors_.Value();
  s.write_errors = m_write_errors_.Value();
  s.bytes_read = m_bytes_read_.Value();
  s.bytes_written = m_bytes_written_.Value();
  s.open_connections = open_connections_.load();
  s.inflight = inflight_.load();
  return s;
}

void NetServer::Wake() {
  if (wake_write_fd_ < 0) return;
  const char byte = 1;
  // Nonblocking: a full pipe already guarantees a pending wake.
  [[maybe_unused]] ssize_t n = ::write(wake_write_fd_, &byte, 1);
}

void NetServer::DrainWakePipe() {
  char buf[256];
  while (::read(wake_read_fd_, buf, sizeof(buf)) > 0) {
  }
}

void NetServer::MarkDirty(const std::shared_ptr<Conn>& conn) {
  {
    std::lock_guard<std::mutex> lock(dirty_mu_);
    dirty_.push_back(conn);
  }
  Wake();
}

void NetServer::LoopThread() {
  obs::Tracer::Global().SetCurrentThreadName("net-loop");
  std::vector<Poller::Event> events;
  bool draining = false;
  std::chrono::steady_clock::time_point drain_deadline;
  while (true) {
    if (shutdown_requested_.load() && !draining) {
      draining = true;
      drain_deadline = std::chrono::steady_clock::now() +
                       options_.drain_timeout;
      if (listen_fd_ >= 0) {
        poller_->Remove(listen_fd_);
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
      // Stop reading: requests already decoded keep draining, new bytes
      // stay in the kernel and die with the connection.
      for (auto& [fd, conn] : conns_) {
        conn->reading = false;
        UpdateInterest(conn);
      }
    }
    if (draining) {
      std::vector<std::shared_ptr<Conn>> open;
      open.reserve(conns_.size());
      for (auto& [fd, conn] : conns_) open.push_back(conn);
      for (const std::shared_ptr<Conn>& conn : open) {
        bool idle;
        {
          std::lock_guard<std::mutex> lock(conn->mu);
          idle = conn->slots.empty() && conn->inflight == 0;
        }
        if (idle && conn->out_off == conn->outbox.size()) {
          CloseConn(conn, /*backpressure=*/false);
        }
      }
      if (conns_.empty()) break;
      if (std::chrono::steady_clock::now() > drain_deadline) {
        std::vector<std::shared_ptr<Conn>> all;
        for (auto& [fd, conn] : conns_) all.push_back(conn);
        for (const std::shared_ptr<Conn>& conn : all) {
          CloseConn(conn, /*backpressure=*/false);
        }
        break;
      }
    }
    const int timeout_ms = draining ? 20 : -1;
    if (poller_->Wait(&events, timeout_ms) < 0) break;
    for (const Poller::Event& ev : events) {
      if (ev.fd == wake_read_fd_) {
        DrainWakePipe();
        continue;
      }
      if (ev.fd == listen_fd_) {
        AcceptReady();
        continue;
      }
      auto it = conns_.find(ev.fd);
      if (it == conns_.end()) continue;  // closed earlier this iteration
      std::shared_ptr<Conn> conn = it->second;
      if (ev.readable || ev.error) HandleRead(conn);
      // HandleRead may have closed the connection; re-check.
      if (ev.writable && conns_.count(ev.fd) != 0) HandleWrite(conn);
    }
    // Completions staged by worker threads since the last pass.
    std::vector<std::shared_ptr<Conn>> dirty;
    {
      std::lock_guard<std::mutex> lock(dirty_mu_);
      dirty.swap(dirty_);
    }
    for (const std::shared_ptr<Conn>& conn : dirty) {
      bool gone;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        gone = conn->closed;
      }
      if (!gone) FlushSlots(conn);
    }
  }
  // Loop exit: close whatever survived (wait error or drain timeout path
  // already closed everything on the normal path).
  std::vector<std::shared_ptr<Conn>> rest;
  for (auto& [fd, conn] : conns_) rest.push_back(conn);
  for (const std::shared_ptr<Conn>& conn : rest) {
    CloseConn(conn, /*backpressure=*/false);
  }
  if (listen_fd_ >= 0) {
    poller_->Remove(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void NetServer::AcceptReady() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      m_accept_errors_.Inc();
      return;
    }
    // Chaos coverage: an injected accept fault drops the connection on the
    // floor exactly like a transient kernel-side failure would.
    if (ESD_FAILPOINT("net.accept").fired) {
      m_accept_errors_.Inc();
      ::close(fd);
      continue;
    }
    if (conns_.size() >= options_.max_connections) {
      m_accept_errors_.Inc();
      ::close(fd);
      continue;
    }
    if (!SetNonBlocking(fd)) {
      m_accept_errors_.Inc();
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Conn>(options_.max_frame_bytes);
    conn->fd = fd;
    poller_->Add(fd, /*want_read=*/true, /*want_write=*/false);
    conns_.emplace(fd, std::move(conn));
    m_accepts_.Inc();
    open_connections_.store(conns_.size());
    m_connections_.Set(static_cast<double>(conns_.size()));
  }
}

void NetServer::HandleRead(const std::shared_ptr<Conn>& conn) {
  if (const fault::FaultHit hit = ESD_FAILPOINT("net.read"); hit.fired) {
    // Injected read fault: indistinguishable from ECONNRESET — drop the
    // connection, keep the loop serving everyone else.
    m_read_errors_.Inc();
    CloseConn(conn, /*backpressure=*/false);
    return;
  }
  char buf[64 * 1024];
  // One read per readiness event: level-triggered polling re-signals if
  // more bytes remain, and bounded reads keep one firehose connection from
  // starving the rest of the loop.
  ssize_t n;
  do {
    n = ::read(conn->fd, buf, sizeof(buf));
  } while (n < 0 && errno == EINTR);
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    m_read_errors_.Inc();
    CloseConn(conn, /*backpressure=*/false);
    return;
  }
  if (n == 0) {
    conn->read_eof = true;
    conn->reading = false;
    UpdateInterest(conn);
  } else {
    m_bytes_read_.Inc(static_cast<uint64_t>(n));
    if (conn->mode == ConnMode::kBinary) {
      conn->decoder.Feed(buf, static_cast<size_t>(n));
    } else {
      conn->inbuf.append(buf, static_cast<size_t>(n));
    }
  }
  ProcessInput(conn);
}

void NetServer::ProcessInput(const std::shared_ptr<Conn>& conn) {
  if (conn->mode == ConnMode::kUnknown) {
    const ConnMode mode = DetectMode(conn->inbuf);
    if (mode == ConnMode::kUnknown) {
      if (conn->read_eof) CloseConn(conn, /*backpressure=*/false);
      return;  // fewer than 4 bytes of a "GET " prefix: keep sniffing
    }
    conn->mode = mode;
    if (mode == ConnMode::kBinary) {
      conn->decoder.Feed(conn->inbuf);
      conn->inbuf.clear();
      conn->inbuf.shrink_to_fit();
    }
  }
  switch (conn->mode) {
    case ConnMode::kBinary:
      ProcessBinary(conn);
      break;
    case ConnMode::kText:
      ProcessText(conn);
      break;
    case ConnMode::kHttp:
      ProcessHttp(conn);
      break;
    case ConnMode::kUnknown:
      break;
  }
  FlushSlots(conn);
}

void NetServer::ProcessBinary(const std::shared_ptr<Conn>& conn) {
  while (conn->reading || conn->read_eof) {
    Frame frame;
    const WireStatus status = conn->decoder.Next(&frame);
    if (status == WireStatus::kNeedMore) break;
    if (status != WireStatus::kOk) {
      // Unsynchronizable stream: answer one typed error frame and hang up.
      m_parse_errors_.Inc();
      const uint64_t seq = ReserveSlot(conn);
      FillSlotLocal(conn, seq,
                    EncodeError(WireErrorFor(status), WireStatusName(status)));
      conn->want_close = true;
      conn->reading = false;
      UpdateInterest(conn);
      break;
    }
    switch (frame.type) {
      case FrameType::kPing: {
        const uint64_t seq = ReserveSlot(conn);
        FillSlotLocal(conn, seq, EncodeFrame(FrameType::kPong, ""));
        break;
      }
      case FrameType::kQuery: {
        QueryFrame q;
        if (DecodeQuery(frame.payload, &q) != WireStatus::kOk) {
          m_parse_errors_.Inc();
          const uint64_t seq = ReserveSlot(conn);
          FillSlotLocal(conn, seq,
                        EncodeError(WireError::kBadPayload, "bad query"));
          conn->want_close = true;
          conn->reading = false;
          UpdateInterest(conn);
          break;
        }
        serve::QueryRequest rq;
        rq.k = q.k;
        rq.tau = q.tau;
        rq.pad_with_zero_edges = q.pad_with_zero_edges != 0;
        rq.deadline_us = q.deadline_us;
        rq.strict = q.strict != 0;
        rq.arrival_ns = obs::MonotonicNanos();
        const uint64_t seq = ReserveSlot(conn);
        m_queries_.Inc();
        // Answer in the version the request arrived with: a v1 client
        // gets the 29-byte result prefix it knows how to parse.
        SubmitQuery(conn, rq, seq, q.cid, /*binary=*/true, frame.version);
        break;
      }
      default: {
        // Server->client frame types coming *from* a client are protocol
        // violations.
        m_parse_errors_.Inc();
        const uint64_t seq = ReserveSlot(conn);
        FillSlotLocal(conn, seq,
                      EncodeError(WireError::kBadType, "client sent a "
                                                       "server frame type"));
        conn->want_close = true;
        conn->reading = false;
        UpdateInterest(conn);
        break;
      }
    }
    if (conn->want_close) break;
  }
  if (conn->read_eof && conn->decoder.buffered_bytes() == 0) {
    conn->want_close = true;
  }
}

void NetServer::ProcessText(const std::shared_ptr<Conn>& conn) {
  while (true) {
    const size_t nl = conn->inbuf.find('\n');
    if (nl == std::string::npos) {
      if (conn->inbuf.size() > options_.max_line_bytes) {
        m_parse_errors_.Inc();
        const uint64_t seq = ReserveSlot(conn);
        FillSlotLocal(conn, seq, "ERR line too long\n");
        conn->want_close = true;
        conn->reading = false;
        UpdateInterest(conn);
      } else if (conn->read_eof && !conn->inbuf.empty()) {
        // Final unterminated line: the stdin loop serves it too.
        std::string line(std::move(conn->inbuf));
        conn->inbuf.clear();
        if (!line.empty() && line.back() == '\r') line.pop_back();
        HandleTextLine(conn, line);
      }
      break;
    }
    std::string line = conn->inbuf.substr(0, nl);
    conn->inbuf.erase(0, nl + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    HandleTextLine(conn, line);
    if (conn->want_close) break;
  }
  if (conn->read_eof && conn->inbuf.empty()) conn->want_close = true;
}

void NetServer::HandleTextLine(const std::shared_ptr<Conn>& conn,
                               const std::string& line) {
  const size_t first = line.find_first_not_of(" \t");
  if (first == std::string::npos) return;  // blank line: ignore, like stdin
  const size_t word_end = line.find_first_of(" \t", first);
  const std::string cmd = line.substr(first, word_end == std::string::npos
                                                 ? std::string::npos
                                                 : word_end - first);
  if (cmd == "QUERY") {
    serve::QueryRequest rq;
    unsigned k = 0, tau = 0;
    char extra[16] = {0};
    const int fields = std::sscanf(line.c_str() + first, "QUERY %u %u %15s",
                                   &k, &tau, extra);
    const bool strict = fields == 3 && std::string_view(extra) == "STRICT";
    if (fields < 2 || (fields == 3 && !strict)) {
      const uint64_t seq = ReserveSlot(conn);
      FillSlotLocal(conn, seq, "ERR usage: QUERY <k> <tau> [STRICT]\n");
      return;
    }
    rq.k = k;
    rq.tau = tau;
    rq.strict = strict;
    rq.arrival_ns = obs::MonotonicNanos();
    const uint64_t seq = ReserveSlot(conn);
    m_queries_.Inc();
    SubmitQuery(conn, rq, seq, /*cid=*/0, /*binary=*/false);
    return;
  }
  m_commands_.Inc();
  std::string out;
  const bool keep_open = handlers_.command ? handlers_.command(line, &out)
                                           : false;
  const uint64_t seq = ReserveSlot(conn);
  FillSlotLocal(conn, seq, std::move(out));
  if (!keep_open) {
    conn->want_close = true;
    conn->reading = false;
    UpdateInterest(conn);
  }
}

void NetServer::ProcessHttp(const std::shared_ptr<Conn>& conn) {
  const size_t head_end = conn->inbuf.find("\r\n\r\n");
  const size_t line_end = conn->inbuf.find('\n');
  // HTTP/1.0 GETs have no body; the request line alone is enough to route.
  if (head_end == std::string::npos && line_end == std::string::npos) {
    if (conn->inbuf.size() > options_.max_http_bytes || conn->read_eof) {
      m_parse_errors_.Inc();
      CloseConn(conn, /*backpressure=*/false);
    }
    return;
  }
  const std::string request_line = conn->inbuf.substr(
      0, line_end == std::string::npos ? conn->inbuf.size() : line_end);
  conn->inbuf.clear();
  conn->reading = false;
  UpdateInterest(conn);
  std::string response;
  if (request_line.rfind("GET /metrics", 0) == 0) {
    m_scrapes_.Inc();
    const std::string body =
        handlers_.metrics_text ? handlers_.metrics_text() : "";
    response = HttpResponse(200, "OK", body);
  } else {
    response = HttpResponse(404, "Not Found", "not found\n");
  }
  const uint64_t seq = ReserveSlot(conn);
  FillSlotLocal(conn, seq, std::move(response));
  conn->want_close = true;
}

void NetServer::SubmitQuery(const std::shared_ptr<Conn>& conn,
                            const serve::QueryRequest& request,
                            uint64_t slot_seq, uint64_t cid, bool binary,
                            uint8_t wire_version) {
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    ++conn->inflight;
  }
  m_inflight_.Set(static_cast<double>(inflight_.fetch_add(1) + 1));
  callback_handoff_.fetch_add(1);
  // The callback owns a shared_ptr: the Conn object outlives the service's
  // answer even if the socket dies first (the bytes are then dropped under
  // conn->closed, and no Pending ever dangles).
  handlers_.submit(request, [this, conn, slot_seq, cid, binary,
                             wire_version](serve::QueryResponse resp) {
    std::string bytes;
    if (binary) {
      QueryResultFrame result;
      result.cid = cid;
      result.status = static_cast<uint8_t>(resp.status);
      result.rid = resp.ctx.request_id;
      result.epoch = resp.ctx.epoch;
      result.shards_ok = resp.shards_ok;
      result.shards_degraded = resp.shards_degraded;
      result.shards_down = resp.shards_down;
      result.edges.reserve(resp.result.size());
      for (const auto& scored : resp.result) {
        result.edges.push_back(ResultEdge{scored.edge.u, scored.edge.v,
                                          scored.score});
      }
      bytes = EncodeQueryResult(result, wire_version);
    } else {
      bytes = handlers_.format_query ? handlers_.format_query(resp)
                                     : std::string("OK\n");
    }
    bool deliver = false;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      --conn->inflight;
      if (!conn->closed) {
        const uint64_t idx = slot_seq - conn->base_seq;
        if (idx < conn->slots.size()) {
          conn->slots[idx].ready = true;
          conn->slots[idx].bytes = std::move(bytes);
          conn->slot_bytes += conn->slots[idx].bytes.size();
        }
        deliver = true;
      }
    }
    // Retire the stats count before the response is staged: by the time a
    // client can observe its answer, inflight is already back down.
    m_inflight_.Set(static_cast<double>(inflight_.fetch_sub(1) - 1));
    if (deliver) MarkDirty(conn);
    // Last touch of the server: once the handoff count under inflight_mu_
    // hits zero and the lock is released, Shutdown() may return and
    // destroy this object — nothing below may dereference `this`.
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      if (callback_handoff_.fetch_sub(1) == 1) inflight_cv_.notify_all();
    }
  });
}

uint64_t NetServer::ReserveSlot(const std::shared_ptr<Conn>& conn) {
  std::lock_guard<std::mutex> lock(conn->mu);
  conn->slots.emplace_back();
  return conn->next_seq++;
}

void NetServer::FillSlotLocal(const std::shared_ptr<Conn>& conn, uint64_t seq,
                              std::string bytes) {
  std::lock_guard<std::mutex> lock(conn->mu);
  const uint64_t idx = seq - conn->base_seq;
  if (idx >= conn->slots.size()) return;
  conn->slots[idx].ready = true;
  conn->slots[idx].bytes = std::move(bytes);
  conn->slot_bytes += conn->slots[idx].bytes.size();
}

void NetServer::FlushSlots(const std::shared_ptr<Conn>& conn) {
  bool overflow = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    while (!conn->slots.empty() && conn->slots.front().ready) {
      conn->slot_bytes -= conn->slots.front().bytes.size();
      conn->outbox += conn->slots.front().bytes;
      conn->slots.pop_front();
      ++conn->base_seq;
    }
    const size_t pending =
        (conn->outbox.size() - conn->out_off) + conn->slot_bytes;
    overflow = pending > options_.max_output_bytes;
  }
  if (overflow) {
    // The client stopped reading while responses kept accumulating: cut it
    // loose instead of letting one slow consumer hold response memory.
    m_backpressure_.Inc();
    CloseConn(conn, /*backpressure=*/true);
    return;
  }
  HandleWrite(conn);
}

void NetServer::HandleWrite(const std::shared_ptr<Conn>& conn) {
  if (conn->out_off < conn->outbox.size()) {
    if (const fault::FaultHit hit = ESD_FAILPOINT("net.write"); hit.fired) {
      m_write_errors_.Inc();
      CloseConn(conn, /*backpressure=*/false);
      return;
    }
  }
  while (conn->out_off < conn->outbox.size()) {
    ssize_t n;
    do {
      n = ::write(conn->fd, conn->outbox.data() + conn->out_off,
                  conn->outbox.size() - conn->out_off);
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      m_write_errors_.Inc();
      CloseConn(conn, /*backpressure=*/false);
      return;
    }
    conn->out_off += static_cast<size_t>(n);
    m_bytes_written_.Inc(static_cast<uint64_t>(n));
  }
  if (conn->out_off == conn->outbox.size()) {
    conn->outbox.clear();
    conn->out_off = 0;
  } else if (conn->out_off > (1u << 20)) {
    conn->outbox.erase(0, conn->out_off);
    conn->out_off = 0;
  }
  UpdateInterest(conn);
  // Close-after-flush: everything reserved was answered and written.
  bool idle;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    idle = conn->slots.empty() && conn->inflight == 0;
  }
  if (idle && conn->outbox.empty() && (conn->want_close || conn->read_eof)) {
    CloseConn(conn, /*backpressure=*/false);
  }
}

void NetServer::UpdateInterest(const std::shared_ptr<Conn>& conn) {
  const bool want_read = conn->reading;
  const bool want_write = conn->out_off < conn->outbox.size();
  if (want_read == conn->armed_read && want_write == conn->armed_write) {
    return;
  }
  conn->armed_read = want_read;
  conn->armed_write = want_write;
  poller_->Update(conn->fd, want_read, want_write);
}

void NetServer::CloseConn(const std::shared_ptr<Conn>& conn,
                          bool backpressure) {
  (void)backpressure;  // counted by the caller; parameter documents intent
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed) return;
    conn->closed = true;
    conn->slots.clear();
    conn->slot_bytes = 0;
  }
  poller_->Remove(conn->fd);
  ::close(conn->fd);
  conns_.erase(conn->fd);
  m_closed_.Inc();
  open_connections_.store(conns_.size());
  m_connections_.Set(static_cast<double>(conns_.size()));
}

}  // namespace esd::net
