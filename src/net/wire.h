#ifndef ESD_NET_WIRE_H_
#define ESD_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace esd::net {

/// Length-prefixed binary wire protocol for the network front end, built
/// on the index_io framing discipline: a fixed versioned header, a bounded
/// length prefix that is checked against a hard cap BEFORE any allocation
/// or payload wait, and typed parse errors so the server can count and
/// report exactly what a hostile or broken client sent.
///
/// Frame layout (all integers little-endian; the header is 8 bytes):
///
///   offset  size  field
///   0       1     magic    0xE5 (also the binary-mode detection byte:
///                          never a printable ASCII command or 'G' of GET)
///   1       1     version  kMinWireVersion..kWireVersion
///   2       1     type     FrameType
///   3       1     flags    reserved, must be 0
///   4       4     length   payload bytes, <= max_frame_bytes
///   8       len   payload  typed per FrameType
///
/// Requests carry a client-chosen correlation id that the response echoes,
/// so pipelined clients can match answers without trusting ordering (the
/// server nevertheless answers each connection in submission order).
///
/// Version history. v1: 25-byte query payload, 29-byte result prefix.
/// v2 (sharded serving): the query payload gains a trailing `strict` byte
/// (26 bytes) and the result prefix gains three u16 shard-health counts
/// (35 bytes). Decoders accept both layouts — a v1 query reads as
/// strict = 0 — and the server answers each request in the version the
/// request arrived with, so v1 clients never see bytes they can't parse.

inline constexpr uint8_t kFrameMagic = 0xE5;
inline constexpr uint8_t kWireVersion = 2;
inline constexpr uint8_t kMinWireVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 8;
/// Hard cap a decoder enforces on the length prefix before allocating or
/// waiting for payload bytes. Responses are sized by the server itself
/// (top-k results), requests are tiny; 1 MiB bounds both with headroom.
inline constexpr uint32_t kDefaultMaxFrameBytes = 1u << 20;

enum class FrameType : uint8_t {
  kPing = 0x01,         ///< empty payload; answered by kPong
  kQuery = 0x02,        ///< QueryFrame payload; answered by kQueryResult
  kPong = 0x81,         ///< empty payload
  kQueryResult = 0x82,  ///< QueryResultFrame payload
  kError = 0xFF,        ///< ErrorFrame payload (server -> client only)
};

/// Typed outcome of decoding. kNeedMore is the only non-terminal state: a
/// partial frame straddling read() boundaries resolves on the next Feed.
/// Everything from kBadMagic down is a fatal protocol error — the stream
/// cannot be resynchronized, so the server answers kError and closes.
enum class WireStatus : uint8_t {
  kOk = 0,
  kNeedMore,     ///< incomplete header or payload; feed more bytes
  kBadMagic,     ///< first byte of a frame is not kFrameMagic
  kBadVersion,   ///< unknown protocol version
  kBadFlags,     ///< reserved flags set
  kOversized,    ///< length prefix exceeds the hard cap
  kBadType,      ///< unknown FrameType
  kBadPayload,   ///< payload does not parse as its frame type
};

const char* WireStatusName(WireStatus status);

/// Error codes carried by kError frames.
enum class WireError : uint16_t {
  kNone = 0,
  kParse = 1,         ///< malformed frame (any fatal WireStatus)
  kOversized = 2,     ///< length prefix over the cap
  kBadType = 3,       ///< unknown frame type
  kBadPayload = 4,    ///< frame type known, payload malformed
  kShutdown = 5,      ///< server draining; request not accepted
  kBackpressure = 6,  ///< output buffer cap exceeded; connection closing
  kBadCommand = 7,    ///< text-mode line too long / not a command
};

struct Frame {
  FrameType type = FrameType::kPing;
  /// Header version the frame arrived with; responses to it should be
  /// encoded at the same version.
  uint8_t version = kWireVersion;
  std::string payload;
};

/// Payload of kQuery: 26 bytes in v2 (25 in v1 — no strict byte).
struct QueryFrame {
  uint64_t cid = 0;  ///< client correlation id, echoed in the response
  uint32_t k = 10;
  uint32_t tau = 2;
  uint8_t pad_with_zero_edges = 1;
  uint64_t deadline_us = 0;
  /// Sharded serving: 1 = fail typed (kShardsUnavailable) unless every
  /// shard contributed; 0 = accept a partial answer over healthy shards.
  uint8_t strict = 0;
};

struct ResultEdge {
  uint32_t u = 0;
  uint32_t v = 0;
  uint32_t score = 0;
};

/// Payload of kQueryResult: fixed prefix (35 bytes in v2, 29 in v1 — no
/// shard counts) + 12 bytes per edge. The edge count is validated against
/// the payload length before allocation; the two prefix widths differ by
/// 6 bytes, never a multiple of the edge stride, so the decoder tells the
/// layouts apart from the length alone.
struct QueryResultFrame {
  uint64_t cid = 0;
  uint8_t status = 0;  ///< serve::ResponseStatus numeric value
  uint64_t rid = 0;    ///< server-minted request id (telemetry join key)
  uint64_t epoch = 0;  ///< serving epoch the answer came from
  /// Fleet tally of the serving batch (v2; all zero from v1 servers and
  /// unsharded ones).
  uint16_t shards_ok = 0;
  uint16_t shards_degraded = 0;
  uint16_t shards_down = 0;
  std::vector<ResultEdge> edges;
};

/// Payload of kError: u16 code + UTF-8 message (rest of payload).
struct ErrorFrame {
  WireError code = WireError::kNone;
  std::string message;
};

/// Encoders produce one complete frame (header + payload), ready to write.
/// `version` selects the header byte and, for query results, the payload
/// layout — servers pass the version the request arrived with.
std::string EncodeFrame(FrameType type, std::string_view payload,
                        uint8_t version = kWireVersion);
std::string EncodeQuery(const QueryFrame& q);
std::string EncodeQueryResult(const QueryResultFrame& r,
                              uint8_t version = kWireVersion);
std::string EncodeError(WireError code, std::string_view message);

/// Payload decoders (header already stripped by FrameDecoder).
WireStatus DecodeQuery(std::string_view payload, QueryFrame* out);
WireStatus DecodeQueryResult(std::string_view payload, QueryResultFrame* out);
WireStatus DecodeError(std::string_view payload, ErrorFrame* out);

/// Incremental frame decoder: feed raw bytes as read() returns them, pull
/// complete frames out. Partial frames are reassembled across arbitrary
/// read boundaries. The length prefix is validated against the cap as soon
/// as the 8-byte header is complete — before the decoder waits for (or the
/// caller buffers) a single payload byte.
class FrameDecoder {
 public:
  explicit FrameDecoder(uint32_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void Feed(const char* data, size_t n) { buf_.append(data, n); }
  void Feed(std::string_view bytes) { buf_.append(bytes); }

  /// Extracts the next complete frame. kOk fills *out and consumes the
  /// frame; kNeedMore leaves the buffer untouched; any other status is a
  /// fatal protocol error (the buffer is poisoned and every later call
  /// returns the same error).
  WireStatus Next(Frame* out);

  size_t buffered_bytes() const { return buf_.size(); }

 private:
  uint32_t max_frame_bytes_;
  std::string buf_;
  WireStatus poisoned_ = WireStatus::kOk;
};

/// What the first bytes of a connection say about its protocol. kUnknown
/// means undecidable yet (fewer than 4 bytes, all a prefix of "GET ").
enum class ConnMode : uint8_t {
  kUnknown = 0,
  kBinary,  ///< first byte is kFrameMagic
  kText,    ///< line-oriented command mode (nc / smoke scripts)
  kHttp,    ///< starts with "GET " — minimal HTTP for /metrics scrapes
};

/// Sniffs the protocol from the first bytes received. Binary resolves on
/// one byte (0xE5 is not printable ASCII); "GET " needs up to 4 bytes;
/// anything else is text.
ConnMode DetectMode(std::string_view first_bytes);

const char* ConnModeName(ConnMode mode);

}  // namespace esd::net

#endif  // ESD_NET_WIRE_H_
