#include "net/wire.h"

#include <cstring>

namespace esd::net {

namespace {

/// Little-endian scalar append/read. The wire format is explicitly LE so a
/// frame captured on one host parses on any other (the in-memory formats
/// in core/ are native-order by design; the network must not be).
void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

uint16_t GetU16(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint16_t>(b[0] | (b[1] << 8));
}

uint32_t GetU32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) |
         (static_cast<uint32_t>(b[3]) << 24);
}

uint64_t GetU64(const char* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

bool KnownType(uint8_t t) {
  switch (static_cast<FrameType>(t)) {
    case FrameType::kPing:
    case FrameType::kQuery:
    case FrameType::kPong:
    case FrameType::kQueryResult:
    case FrameType::kError:
      return true;
  }
  return false;
}

constexpr size_t kQueryPayloadBytesV1 = 8 + 4 + 4 + 1 + 8;       // 25
constexpr size_t kQueryPayloadBytesV2 = kQueryPayloadBytesV1 + 1;  // 26
constexpr size_t kQueryResultPrefixBytesV1 = 8 + 1 + 8 + 8 + 4;  // 29
constexpr size_t kQueryResultPrefixBytesV2 =
    kQueryResultPrefixBytesV1 + 3 * 2;  // 35
constexpr size_t kResultEdgeBytes = 12;

}  // namespace

const char* WireStatusName(WireStatus status) {
  switch (status) {
    case WireStatus::kOk:
      return "ok";
    case WireStatus::kNeedMore:
      return "need-more";
    case WireStatus::kBadMagic:
      return "bad-magic";
    case WireStatus::kBadVersion:
      return "bad-version";
    case WireStatus::kBadFlags:
      return "bad-flags";
    case WireStatus::kOversized:
      return "oversized";
    case WireStatus::kBadType:
      return "bad-type";
    case WireStatus::kBadPayload:
      return "bad-payload";
  }
  return "unknown";
}

std::string EncodeFrame(FrameType type, std::string_view payload,
                        uint8_t version) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  out.push_back(static_cast<char>(kFrameMagic));
  out.push_back(static_cast<char>(version));
  out.push_back(static_cast<char>(type));
  out.push_back(0);  // flags
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  out.append(payload);
  return out;
}

std::string EncodeQuery(const QueryFrame& q) {
  std::string payload;
  payload.reserve(kQueryPayloadBytesV2);
  PutU64(&payload, q.cid);
  PutU32(&payload, q.k);
  PutU32(&payload, q.tau);
  payload.push_back(static_cast<char>(q.pad_with_zero_edges));
  PutU64(&payload, q.deadline_us);
  payload.push_back(static_cast<char>(q.strict));
  return EncodeFrame(FrameType::kQuery, payload);
}

std::string EncodeQueryResult(const QueryResultFrame& r, uint8_t version) {
  std::string payload;
  payload.reserve(kQueryResultPrefixBytesV2 +
                  r.edges.size() * kResultEdgeBytes);
  PutU64(&payload, r.cid);
  payload.push_back(static_cast<char>(r.status));
  PutU64(&payload, r.rid);
  PutU64(&payload, r.epoch);
  if (version >= 2) {
    PutU16(&payload, r.shards_ok);
    PutU16(&payload, r.shards_degraded);
    PutU16(&payload, r.shards_down);
  }
  PutU32(&payload, static_cast<uint32_t>(r.edges.size()));
  for (const ResultEdge& e : r.edges) {
    PutU32(&payload, e.u);
    PutU32(&payload, e.v);
    PutU32(&payload, e.score);
  }
  return EncodeFrame(FrameType::kQueryResult, payload, version);
}

std::string EncodeError(WireError code, std::string_view message) {
  std::string payload;
  payload.reserve(2 + message.size());
  PutU16(&payload, static_cast<uint16_t>(code));
  payload.append(message);
  return EncodeFrame(FrameType::kError, payload);
}

WireStatus DecodeQuery(std::string_view payload, QueryFrame* out) {
  if (payload.size() != kQueryPayloadBytesV1 &&
      payload.size() != kQueryPayloadBytesV2) {
    return WireStatus::kBadPayload;
  }
  const char* p = payload.data();
  out->cid = GetU64(p);
  out->k = GetU32(p + 8);
  out->tau = GetU32(p + 12);
  out->pad_with_zero_edges = static_cast<uint8_t>(p[16]);
  if (out->pad_with_zero_edges > 1) return WireStatus::kBadPayload;
  out->deadline_us = GetU64(p + 17);
  // v1 queries have no strict byte: partial-result semantics, the mode
  // every pre-sharding client implicitly asked for.
  out->strict = 0;
  if (payload.size() == kQueryPayloadBytesV2) {
    out->strict = static_cast<uint8_t>(p[25]);
    if (out->strict > 1) return WireStatus::kBadPayload;
  }
  return WireStatus::kOk;
}

WireStatus DecodeQueryResult(std::string_view payload, QueryResultFrame* out) {
  if (payload.size() < kQueryResultPrefixBytesV1) {
    return WireStatus::kBadPayload;
  }
  // The prefix widths differ by 6 bytes — not a multiple of the 12-byte
  // edge stride — so exactly one layout fits any valid payload length.
  size_t prefix = 0;
  if (payload.size() >= kQueryResultPrefixBytesV2 &&
      (payload.size() - kQueryResultPrefixBytesV2) % kResultEdgeBytes == 0) {
    prefix = kQueryResultPrefixBytesV2;
  } else if ((payload.size() - kQueryResultPrefixBytesV1) % kResultEdgeBytes ==
             0) {
    prefix = kQueryResultPrefixBytesV1;
  } else {
    return WireStatus::kBadPayload;
  }
  const char* p = payload.data();
  out->cid = GetU64(p);
  out->status = static_cast<uint8_t>(p[8]);
  out->rid = GetU64(p + 9);
  out->epoch = GetU64(p + 17);
  out->shards_ok = out->shards_degraded = out->shards_down = 0;
  const char* q = p + 25;
  if (prefix == kQueryResultPrefixBytesV2) {
    out->shards_ok = GetU16(q);
    out->shards_degraded = GetU16(q + 2);
    out->shards_down = GetU16(q + 4);
    q += 6;
  }
  const uint32_t count = GetU32(q);
  // The count is validated against the bytes actually present before the
  // vector is sized — a hostile count cannot drive an allocation.
  const size_t remaining = payload.size() - prefix;
  if (remaining != static_cast<size_t>(count) * kResultEdgeBytes) {
    return WireStatus::kBadPayload;
  }
  out->edges.resize(count);
  const char* e = p + prefix;
  for (uint32_t i = 0; i < count; ++i, e += kResultEdgeBytes) {
    out->edges[i].u = GetU32(e);
    out->edges[i].v = GetU32(e + 4);
    out->edges[i].score = GetU32(e + 8);
  }
  return WireStatus::kOk;
}

WireStatus DecodeError(std::string_view payload, ErrorFrame* out) {
  if (payload.size() < 2) return WireStatus::kBadPayload;
  out->code = static_cast<WireError>(GetU16(payload.data()));
  out->message.assign(payload.substr(2));
  return WireStatus::kOk;
}

WireStatus FrameDecoder::Next(Frame* out) {
  if (poisoned_ != WireStatus::kOk) return poisoned_;
  if (buf_.size() < kFrameHeaderBytes) return WireStatus::kNeedMore;
  const auto* h = reinterpret_cast<const unsigned char*>(buf_.data());
  WireStatus bad = WireStatus::kOk;
  if (h[0] != kFrameMagic) {
    bad = WireStatus::kBadMagic;
  } else if (h[1] < kMinWireVersion || h[1] > kWireVersion) {
    bad = WireStatus::kBadVersion;
  } else if (h[3] != 0) {
    bad = WireStatus::kBadFlags;
  } else if (!KnownType(h[2])) {
    bad = WireStatus::kBadType;
  }
  const uint32_t length = GetU32(buf_.data() + 4);
  // The cap check happens here, with only the 8 header bytes buffered:
  // an oversized prefix is rejected before any payload is awaited.
  if (bad == WireStatus::kOk && length > max_frame_bytes_) {
    bad = WireStatus::kOversized;
  }
  if (bad != WireStatus::kOk) {
    poisoned_ = bad;  // unsynchronizable stream: fail every later call too
    return bad;
  }
  const size_t total = kFrameHeaderBytes + length;
  if (buf_.size() < total) return WireStatus::kNeedMore;
  out->type = static_cast<FrameType>(h[2]);
  out->version = h[1];
  out->payload.assign(buf_, kFrameHeaderBytes, length);
  buf_.erase(0, total);
  return WireStatus::kOk;
}

ConnMode DetectMode(std::string_view first_bytes) {
  if (first_bytes.empty()) return ConnMode::kUnknown;
  if (static_cast<unsigned char>(first_bytes[0]) == kFrameMagic) {
    return ConnMode::kBinary;
  }
  // "GET " wins over text; until 4 bytes arrive a strict prefix of it is
  // still ambiguous (no text command starts with 'G', so only real HTTP
  // clients ever stall here, and they always send the full request line).
  constexpr std::string_view kGet = "GET ";
  const size_t n = std::min(first_bytes.size(), kGet.size());
  if (first_bytes.substr(0, n) == kGet.substr(0, n)) {
    return first_bytes.size() >= kGet.size() ? ConnMode::kHttp
                                             : ConnMode::kUnknown;
  }
  return ConnMode::kText;
}

const char* ConnModeName(ConnMode mode) {
  switch (mode) {
    case ConnMode::kUnknown:
      return "unknown";
    case ConnMode::kBinary:
      return "binary";
    case ConnMode::kText:
      return "text";
    case ConnMode::kHttp:
      return "http";
  }
  return "unknown";
}

}  // namespace esd::net
