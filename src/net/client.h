#ifndef ESD_NET_CLIENT_H_
#define ESD_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "net/wire.h"

namespace esd::net {

/// Minimal blocking client for the binary wire protocol — the test and
/// bench counterpart of NetServer (the server itself never blocks). One
/// instance is one TCP connection; not thread-safe.
class BlockingClient {
 public:
  BlockingClient() = default;
  ~BlockingClient() { Close(); }

  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;
  BlockingClient(BlockingClient&& other) noexcept
      : fd_(other.fd_), decoder_(std::move(other.decoder_)) {
    other.fd_ = -1;
  }

  /// Connects to host:port. False with *error set on failure.
  bool Connect(const std::string& host, uint16_t port, std::string* error);
  void Close();
  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Writes raw bytes (a pre-encoded frame, or hostile garbage in tests).
  bool SendRaw(std::string_view bytes);

  bool SendQuery(const QueryFrame& q) { return SendRaw(EncodeQuery(q)); }
  bool SendPing() { return SendRaw(EncodeFrame(FrameType::kPing, "")); }

  /// Blocks until one complete frame arrives (or the peer closes / a
  /// protocol error occurs). kOk fills *out.
  WireStatus RecvFrame(Frame* out);

  /// SendQuery + RecvFrame + DecodeQueryResult in one call. False on any
  /// transport or protocol failure.
  bool Query(const QueryFrame& q, QueryResultFrame* out);

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

}  // namespace esd::net

#endif  // ESD_NET_CLIENT_H_
