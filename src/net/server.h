#ifndef ESD_NET_SERVER_H_
#define ESD_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/poller.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "serve/query_service.h"

namespace esd::net {

/// Network front end of the serving stack: one non-blocking event-loop
/// thread (epoll, poll fallback) owning a listener plus per-connection
/// state machines. Three protocols share the port, auto-detected from the
/// first bytes of each connection:
///
///   binary  — the length-prefixed frame protocol of net/wire.h (first
///             byte 0xE5); queries are decoded and fed to the submit
///             handler (the EsdQueryService admission queue), responses
///             come back through completion callbacks on worker threads.
///   text    — newline-delimited commands, line-compatible with the
///             esd_server stdin loop, so existing QUERY/STATS/METRICS
///             smoke scripts work unchanged over `nc`.
///   http    — minimal HTTP/1.0: `GET /metrics` answers a Prometheus
///             scrape with the registry exposition and closes.
///
/// Ordering: every request on a connection — sync command or async query —
/// reserves an output slot at parse time, and slots flush strictly in
/// reservation order, so pipelined clients see responses in request order
/// even though queries complete out of order across service batches.
///
/// Backpressure: responses accumulate in a bounded per-connection output
/// buffer; a client that stops reading past Options::max_output_bytes is
/// disconnected (esd_net_backpressure_closes_total) rather than allowed to
/// hold response memory hostage.
///
/// The loop never blocks on a query: decoded requests go to the submit
/// handler and return immediately; completions re-enter through a wake
/// pipe. A slow or dead connection therefore never stalls the others.
class NetServer {
 public:
  struct Options {
    std::string bind_address = "127.0.0.1";
    /// TCP port; 0 asks the kernel for an ephemeral port (see port()).
    uint16_t port = 0;
    /// Accepts beyond this many open connections are closed immediately.
    size_t max_connections = 1024;
    /// Hard cap a binary frame's length prefix is checked against before
    /// any payload is buffered.
    uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
    /// Text-mode line cap; a longer line without a newline is a protocol
    /// error (the connection is closed with an ERR line).
    size_t max_line_bytes = 4096;
    /// HTTP request-head cap (request line + headers).
    size_t max_http_bytes = 8192;
    /// Per-connection output-buffer cap; exceeding it is a backpressure
    /// close.
    size_t max_output_bytes = 4u << 20;
    /// Use the portable poll backend even where epoll is available.
    bool force_poll = false;
    /// Graceful-shutdown budget: how long Shutdown() lets in-flight
    /// queries drain and outboxes flush before force-closing.
    std::chrono::milliseconds drain_timeout{5000};
    /// Registry for esd_net_* metrics; null = obs::MetricRegistry::Global().
    obs::MetricRegistry* registry = nullptr;
  };

  /// Async query path: implementations submit to the admission queue and
  /// invoke the callback exactly once, from any thread, when the response
  /// is ready (including rejected/shutdown bounces).
  using SubmitFn = std::function<void(
      const serve::QueryRequest&, std::function<void(serve::QueryResponse)>)>;
  /// Text-mode command execution (every line except QUERY). Returns false
  /// to close the connection after the reply flushes (QUIT).
  using CommandFn = std::function<bool(const std::string& line,
                                       std::string* out)>;
  /// Renders a text-mode QUERY response (the stdin loop's format).
  using TextResponseFn =
      std::function<std::string(const serve::QueryResponse&)>;
  /// Body of a GET /metrics scrape (Prometheus text exposition).
  using MetricsFn = std::function<std::string()>;

  struct Handlers {
    SubmitFn submit;
    CommandFn command;
    TextResponseFn format_query;
    MetricsFn metrics_text;
  };

  /// Monotonic counters + point gauges, mirrored on the registry as
  /// esd_net_*; SnapStats() is for tests and STATS lines.
  struct Stats {
    uint64_t accepts = 0;
    uint64_t accept_errors = 0;
    uint64_t closed = 0;
    uint64_t parse_errors = 0;
    uint64_t queries = 0;
    uint64_t commands = 0;
    uint64_t scrapes = 0;
    uint64_t backpressure_closes = 0;
    uint64_t read_errors = 0;
    uint64_t write_errors = 0;
    uint64_t bytes_read = 0;
    uint64_t bytes_written = 0;
    uint64_t open_connections = 0;
    uint64_t inflight = 0;
  };

  NetServer(Handlers handlers, Options options);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens, and spawns the event-loop thread. False with *error
  /// set on socket/bind/listen failure.
  bool Start(std::string* error);

  /// Graceful shutdown: stop accepting, stop reading, let in-flight
  /// queries complete and outboxes flush (up to drain_timeout), close
  /// everything, join the loop. Idempotent; called by the destructor.
  void Shutdown();

  /// Flags the loop to begin the Shutdown() drain without joining — safe
  /// to call from any thread (one atomic store + one pipe write), so a
  /// signal-handler-adjacent path can trigger the drain and the owner
  /// joins later via Shutdown().
  void RequestShutdown();

  /// Blocks until the loop thread exits — i.e. until RequestShutdown is
  /// called (e.g. from a signal handler) and the drain completes. Lets
  /// esd_server keep serving after stdin hits EOF. Call Shutdown()
  /// afterwards to release the wake pipe.
  void Join();

  /// The bound port (resolves Options::port == 0), valid after Start().
  uint16_t port() const { return port_; }
  /// "epoll" or "poll", valid after Start().
  const char* backend_name() const;

  Stats SnapStats() const;

 private:
  struct Conn;

  void LoopThread();
  void AcceptReady();
  void HandleRead(const std::shared_ptr<Conn>& conn);
  void HandleWrite(const std::shared_ptr<Conn>& conn);
  void ProcessInput(const std::shared_ptr<Conn>& conn);
  void ProcessBinary(const std::shared_ptr<Conn>& conn);
  void ProcessText(const std::shared_ptr<Conn>& conn);
  void ProcessHttp(const std::shared_ptr<Conn>& conn);
  void HandleTextLine(const std::shared_ptr<Conn>& conn,
                      const std::string& line);
  void SubmitQuery(const std::shared_ptr<Conn>& conn,
                   const serve::QueryRequest& request, uint64_t slot_seq,
                   uint64_t cid, bool binary,
                   uint8_t wire_version = kWireVersion);
  /// Reserves the next ordered output slot (under conn->mu).
  uint64_t ReserveSlot(const std::shared_ptr<Conn>& conn);
  /// Fills a reserved slot; loop-thread fast path for sync replies.
  void FillSlotLocal(const std::shared_ptr<Conn>& conn, uint64_t seq,
                     std::string bytes);
  /// Moves the ready prefix of the slot queue into the outbox; applies the
  /// backpressure cap; updates poller interest. Loop thread only.
  void FlushSlots(const std::shared_ptr<Conn>& conn);
  void UpdateInterest(const std::shared_ptr<Conn>& conn);
  void CloseConn(const std::shared_ptr<Conn>& conn, bool backpressure);
  void Wake();
  void DrainWakePipe();
  void MarkDirty(const std::shared_ptr<Conn>& conn);

  const Handlers handlers_;
  const Options options_;
  obs::MetricRegistry& registry_;

  // esd_net_* instruments (registered once in the constructor).
  obs::Counter& m_accepts_;
  obs::Counter& m_accept_errors_;
  obs::Counter& m_closed_;
  obs::Counter& m_parse_errors_;
  obs::Counter& m_queries_;
  obs::Counter& m_commands_;
  obs::Counter& m_scrapes_;
  obs::Counter& m_backpressure_;
  obs::Counter& m_read_errors_;
  obs::Counter& m_write_errors_;
  obs::Counter& m_bytes_read_;
  obs::Counter& m_bytes_written_;
  obs::Gauge& m_connections_;
  obs::Gauge& m_inflight_;

  std::unique_ptr<Poller> poller_;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  uint16_t port_ = 0;

  std::thread loop_;
  std::atomic<bool> started_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<bool> stopped_{false};

  /// Loop-thread-owned connection table (fd -> state).
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;

  /// Connections with completions staged by worker threads, pending a
  /// loop-side FlushSlots. Guarded by dirty_mu_.
  std::mutex dirty_mu_;
  std::vector<std::shared_ptr<Conn>> dirty_;

  /// Mirrors of the gauge values readable without the registry.
  std::atomic<uint64_t> open_connections_{0};
  std::atomic<uint64_t> inflight_{0};

  /// Completion callbacks still executing (one per submitted query, from
  /// submit until the callback's final statement). Distinct from inflight_:
  /// inflight_ is retired BEFORE the response is staged for delivery (so a
  /// client that has its answer never observes a stale nonzero count),
  /// while this handoff count is retired as the callback's LAST touch of
  /// the server. Shutdown() waits on the cv until it reaches zero — a
  /// callback can therefore never outlive the object it captured (a
  /// force-closed connection does not cancel its in-flight service
  /// requests).
  std::atomic<uint64_t> callback_handoff_{0};
  std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;
};

}  // namespace esd::net

#endif  // ESD_NET_SERVER_H_
