#include "net/poller.h"

#include <cerrno>
#include <cstring>
#include <map>

#include <poll.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/epoll.h>
#endif

namespace esd::net {

namespace {

/// Portable backend: poll(2) over a registration map rebuilt into a flat
/// pollfd array per Wait. O(n) per wait, which is fine for the connection
/// counts a fallback path serves; the epoll backend is the scale path.
class PollPoller final : public Poller {
 public:
  bool Add(int fd, bool want_read, bool want_write) override {
    return fds_.emplace(fd, Interest{want_read, want_write}).second;
  }

  bool Update(int fd, bool want_read, bool want_write) override {
    auto it = fds_.find(fd);
    if (it == fds_.end()) return false;
    it->second = Interest{want_read, want_write};
    return true;
  }

  void Remove(int fd) override { fds_.erase(fd); }

  int Wait(std::vector<Event>* out, int timeout_ms) override {
    out->clear();
    pollfds_.clear();
    pollfds_.reserve(fds_.size());
    for (const auto& [fd, interest] : fds_) {
      short events = 0;
      if (interest.read) events |= POLLIN;
      if (interest.write) events |= POLLOUT;
      pollfds_.push_back(pollfd{fd, events, 0});
    }
    const int n = ::poll(pollfds_.data(),
                         static_cast<nfds_t>(pollfds_.size()), timeout_ms);
    if (n < 0) return errno == EINTR ? 0 : -1;
    for (const pollfd& p : pollfds_) {
      if (p.revents == 0) continue;
      Event ev;
      ev.fd = p.fd;
      ev.readable = (p.revents & POLLIN) != 0;
      ev.writable = (p.revents & POLLOUT) != 0;
      ev.error = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      out->push_back(ev);
    }
    return static_cast<int>(out->size());
  }

  const char* backend_name() const override { return "poll"; }

 private:
  struct Interest {
    bool read = false;
    bool write = false;
  };
  std::map<int, Interest> fds_;
  std::vector<pollfd> pollfds_;
};

#if defined(__linux__)

class EpollPoller final : public Poller {
 public:
  explicit EpollPoller(int epfd) : epfd_(epfd) {}
  ~EpollPoller() override { ::close(epfd_); }

  bool Add(int fd, bool want_read, bool want_write) override {
    epoll_event ev = Make(fd, want_read, want_write);
    return ::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) == 0;
  }

  bool Update(int fd, bool want_read, bool want_write) override {
    epoll_event ev = Make(fd, want_read, want_write);
    return ::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) == 0;
  }

  void Remove(int fd) override {
    epoll_event ev{};  // ignored since 2.6.9, required by older kernels
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, &ev);
  }

  int Wait(std::vector<Event>* out, int timeout_ms) override {
    out->clear();
    epoll_event events[128];
    const int n = ::epoll_wait(epfd_, events, 128, timeout_ms);
    if (n < 0) return errno == EINTR ? 0 : -1;
    out->reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      Event ev;
      ev.fd = events[i].data.fd;
      ev.readable = (events[i].events & EPOLLIN) != 0;
      ev.writable = (events[i].events & EPOLLOUT) != 0;
      ev.error = (events[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      out->push_back(ev);
    }
    return n;
  }

  const char* backend_name() const override { return "epoll"; }

 private:
  static epoll_event Make(int fd, bool want_read, bool want_write) {
    epoll_event ev{};
    if (want_read) ev.events |= EPOLLIN;
    if (want_write) ev.events |= EPOLLOUT;
    ev.data.fd = fd;
    return ev;
  }

  int epfd_;
};

#endif  // __linux__

}  // namespace

std::unique_ptr<Poller> Poller::Create(bool force_poll, std::string* error) {
#if defined(__linux__)
  if (!force_poll) {
    const int epfd = ::epoll_create1(EPOLL_CLOEXEC);
    if (epfd >= 0) return std::make_unique<EpollPoller>(epfd);
    // epoll unavailable (exotic container seccomp profiles): fall through
    // to the portable backend rather than failing to serve at all.
  }
#else
  (void)force_poll;
#endif
  (void)error;
  return std::make_unique<PollPoller>();
}

}  // namespace esd::net
