#ifndef ESD_NET_POLLER_H_
#define ESD_NET_POLLER_H_

#include <memory>
#include <string>
#include <vector>

namespace esd::net {

/// Readiness-notification backend of the event loop: epoll on Linux,
/// poll(2) everywhere (and on Linux when forced, so the fallback path is
/// testable on the primary platform). One instance belongs to one loop
/// thread; no method is thread-safe.
class Poller {
 public:
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    /// Error/hangup readiness (EPOLLERR/EPOLLHUP, POLLERR/POLLHUP/POLLNVAL).
    /// The loop treats it as readable: the next read() surfaces the errno.
    bool error = false;
  };

  virtual ~Poller() = default;

  /// Registers fd with the given interest set. fd must not be registered.
  virtual bool Add(int fd, bool want_read, bool want_write) = 0;
  /// Re-arms an already registered fd.
  virtual bool Update(int fd, bool want_read, bool want_write) = 0;
  /// Deregisters; safe to call for an fd about to be closed.
  virtual void Remove(int fd) = 0;

  /// Blocks up to timeout_ms (-1 = forever) and appends ready events to
  /// *out (cleared first). Returns the event count, 0 on timeout, -1 on a
  /// non-EINTR wait error.
  virtual int Wait(std::vector<Event>* out, int timeout_ms) = 0;

  virtual const char* backend_name() const = 0;

  /// Builds the platform's best backend (epoll on Linux), or the portable
  /// poll backend when force_poll is set or epoll is unavailable. Null with
  /// *error set only if even poll setup fails.
  static std::unique_ptr<Poller> Create(bool force_poll, std::string* error);
};

}  // namespace esd::net

#endif  // ESD_NET_POLLER_H_
