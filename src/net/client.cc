#include "net/client.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace esd::net {

bool BlockingClient::Connect(const std::string& host, uint16_t port,
                             std::string* error) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad address: " + host;
    Close();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr) *error = std::strerror(errno);
    Close();
    return false;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return true;
}

void BlockingClient::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  decoder_ = FrameDecoder();
}

bool BlockingClient::SendRaw(std::string_view bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd_, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

WireStatus BlockingClient::RecvFrame(Frame* out) {
  while (true) {
    const WireStatus status = decoder_.Next(out);
    if (status != WireStatus::kNeedMore) return status;
    char buf[64 * 1024];
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      return WireStatus::kNeedMore;  // transport error mid-frame
    }
    if (n == 0) return WireStatus::kNeedMore;  // peer closed mid-frame
    decoder_.Feed(buf, static_cast<size_t>(n));
  }
}

bool BlockingClient::Query(const QueryFrame& q, QueryResultFrame* out) {
  if (!SendQuery(q)) return false;
  Frame frame;
  if (RecvFrame(&frame) != WireStatus::kOk) return false;
  if (frame.type != FrameType::kQueryResult) return false;
  return DecodeQueryResult(frame.payload, out) == WireStatus::kOk;
}

}  // namespace esd::net
