#ifndef ESD_UTIL_THREAD_POOL_H_
#define ESD_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

namespace esd::util {

/// Fixed-size worker pool used by the parallel index builder (PESDIndex+,
/// Section IV-E of the paper).
///
/// `num_threads == 1` degenerates to running everything on the calling
/// thread, so single-threaded baselines pay no synchronization cost.
class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers (the calling thread participates in
  /// ParallelFor). `num_threads` is clamped to >= 1. Workers name their
  /// Chrome-trace tracks "<thread_name_prefix>-<i>" starting at 1 (the
  /// owning thread is "-0" by convention when it participates); an empty
  /// prefix means "esd-pool".
  explicit ThreadPool(unsigned num_threads);
  ThreadPool(unsigned num_threads, std::string thread_name_prefix);
  ~ThreadPool();

  /// std::thread::hardware_concurrency clamped to >= 1 — the default worker
  /// count for the serving layer and the bench thread sweeps.
  static unsigned DefaultThreadCount();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned num_threads() const { return num_threads_; }

  /// Runs fn(i) for every i in [begin, end), distributing dynamically in
  /// chunks of `grain` indices. Blocks until all iterations complete.
  /// `fn` must be safe to call concurrently from multiple threads.
  void ParallelFor(uint64_t begin, uint64_t end, uint64_t grain,
                   const std::function<void(uint64_t)>& fn);

  /// Runs fn(chunk_begin, chunk_end) over dynamic chunks. Blocks.
  void ParallelForChunked(uint64_t begin, uint64_t end, uint64_t grain,
                          const std::function<void(uint64_t, uint64_t)>& fn);

  /// Fire-and-forget: enqueues `task` to run on one of the pool's worker
  /// threads and returns immediately (the live-index subsystem hosts its
  /// background re-freezes this way). A 1-thread pool has no workers, so
  /// the task runs inline on the calling thread — callers that need true
  /// background execution must size the pool >= 2. Tasks pending at
  /// destruction are drained (run, not dropped) before the workers join;
  /// a Post() racing shutdown runs inline. Tasks must not call Post or
  /// ParallelFor on their own pool.
  void Post(std::function<void()> task);

 private:
  void WorkerLoop();

  unsigned num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  bool shutdown_ = false;

  // Posted fire-and-forget tasks; protected by mu_. Workers prefer tasks
  // over ParallelFor chunks and drain the queue before shutdown.
  std::deque<std::function<void()>> tasks_;

  // Current ParallelFor job; protected by mu_ for setup/teardown, lock-free
  // chunk claiming through next_.
  std::function<void(uint64_t, uint64_t)> job_;
  std::atomic<uint64_t> next_{0};
  uint64_t end_ = 0;
  uint64_t grain_ = 1;
  uint64_t generation_ = 0;
  unsigned active_workers_ = 0;
};

}  // namespace esd::util

#endif  // ESD_UTIL_THREAD_POOL_H_
