#ifndef ESD_UTIL_TIMER_H_
#define ESD_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace esd::util {

/// Monotonic wall-clock stopwatch used by the benchmark harness.
class Timer {
 public:
  Timer() { Reset(); }

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset(), in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace esd::util

#endif  // ESD_UTIL_TIMER_H_
