#ifndef ESD_UTIL_BINARY_HEAP_H_
#define ESD_UTIL_BINARY_HEAP_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace esd::util {

/// Binary max-heap of (value, priority) pairs — the priority queue Q of the
/// dequeue-twice online search framework (Algorithm 1).
///
/// Ties on priority are broken by insertion order being unspecified; the
/// online algorithm's correctness does not depend on tie order (Theorem 1).
template <typename T, typename Priority = int64_t>
class BinaryHeap {
 public:
  struct Entry {
    T value;
    Priority priority;
  };

  BinaryHeap() = default;

  size_t size() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }
  void Reserve(size_t n) { heap_.reserve(n); }
  void Clear() { heap_.clear(); }

  /// Adds `value` with `priority`.
  void Push(T value, Priority priority) {
    heap_.push_back(Entry{std::move(value), priority});
    SiftUp(heap_.size() - 1);
  }

  /// Highest-priority entry. Heap must be non-empty.
  const Entry& Top() const { return heap_.front(); }

  /// Removes and returns the highest-priority entry. Heap must be non-empty.
  Entry Pop() {
    Entry top = std::move(heap_.front());
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) SiftDown(0);
    return top;
  }

 private:
  void SiftUp(size_t i) {
    while (i > 0) {
      size_t parent = (i - 1) / 2;
      if (heap_[parent].priority >= heap_[i].priority) break;
      std::swap(heap_[parent], heap_[i]);
      i = parent;
    }
  }

  void SiftDown(size_t i) {
    const size_t n = heap_.size();
    while (true) {
      size_t l = 2 * i + 1;
      size_t r = l + 1;
      size_t best = i;
      if (l < n && heap_[l].priority > heap_[best].priority) best = l;
      if (r < n && heap_[r].priority > heap_[best].priority) best = r;
      if (best == i) break;
      std::swap(heap_[i], heap_[best]);
      i = best;
    }
  }

  std::vector<Entry> heap_;
};

}  // namespace esd::util

#endif  // ESD_UTIL_BINARY_HEAP_H_
