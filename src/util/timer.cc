#include "util/timer.h"

// Timer is header-only; this translation unit exists so the target has a
// definition anchor and the header gets compiled standalone at least once.
namespace esd::util {}
