#ifndef ESD_UTIL_SPINLOCK_H_
#define ESD_UTIL_SPINLOCK_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace esd::util {

/// Minimal test-and-test-and-set spinlock. Critical sections in the parallel
/// index builder are a handful of array writes, so spinning beats a mutex.
class SpinLock {
 public:
  void Lock() {
    while (flag_.exchange(true, std::memory_order_acquire)) {
      while (flag_.load(std::memory_order_relaxed)) {
        // spin
      }
    }
  }
  void Unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

/// RAII guard for SpinLock.
class SpinLockGuard {
 public:
  explicit SpinLockGuard(SpinLock& lock) : lock_(lock) { lock_.Lock(); }
  ~SpinLockGuard() { lock_.Unlock(); }
  SpinLockGuard(const SpinLockGuard&) = delete;
  SpinLockGuard& operator=(const SpinLockGuard&) = delete;

 private:
  SpinLock& lock_;
};

/// An array of spinlocks indexed by key hash. The parallel builder guards
/// each per-edge disjoint-set structure M_e by the stripe of its edge id;
/// union operations take exactly one stripe at a time, so no lock ordering
/// issues can arise.
class StripedLocks {
 public:
  /// `stripes` is rounded up to a power of two (min 1).
  explicit StripedLocks(size_t stripes = 1024) {
    size_t n = 1;
    while (n < stripes) n <<= 1;
    locks_ = std::vector<SpinLock>(n);
  }

  SpinLock& ForKey(uint64_t key) {
    return locks_[Mix64(key) & (locks_.size() - 1)];
  }

  size_t num_stripes() const { return locks_.size(); }

 private:
  std::vector<SpinLock> locks_;
};

}  // namespace esd::util

#endif  // ESD_UTIL_SPINLOCK_H_
