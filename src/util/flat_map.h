#ifndef ESD_UTIL_FLAT_MAP_H_
#define ESD_UTIL_FLAT_MAP_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace esd::util {

/// Open-addressing hash map for integral keys, tuned for the small per-edge
/// vertex maps this library allocates by the million (disjoint-set slots,
/// neighborhood membership marks).
///
/// Layout: parallel arrays of slot state / key / value with linear probing
/// and backward-shift deletion (no tombstones, so lookup cost never degrades
/// after heavy churn). Capacity is a power of two; max load factor is 7/8.
///
/// Iteration order is unspecified. References returned by find()/operator[]
/// are invalidated by any mutating call.
template <typename K, typename V>
class FlatMap {
  static_assert(std::is_integral_v<K>, "FlatMap requires an integral key");

 public:
  FlatMap() = default;

  /// Pre-sizes the table for at least `n` elements without rehashing.
  explicit FlatMap(size_t n) { Reserve(n); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Removes all elements but keeps the allocation.
  void Clear() {
    std::fill(state_.begin(), state_.end(), uint8_t{0});
    size_ = 0;
  }

  /// Ensures capacity for at least `n` elements.
  void Reserve(size_t n) {
    size_t want = 16;
    while (want * 7 / 8 < n) want <<= 1;
    if (want > Capacity()) Rehash(want);
  }

  /// Returns a pointer to the value for `key`, or nullptr if absent.
  V* Find(K key) {
    if (size_ == 0) return nullptr;
    size_t i = Probe(key);
    return state_[i] ? &vals_[i] : nullptr;
  }
  const V* Find(K key) const {
    return const_cast<FlatMap*>(this)->Find(key);
  }

  bool Contains(K key) const { return Find(key) != nullptr; }

  /// Inserts `{key, value}` if absent; returns {pointer to value, inserted}.
  std::pair<V*, bool> Insert(K key, V value) {
    GrowIfNeeded();
    size_t i = Probe(key);
    if (state_[i]) return {&vals_[i], false};
    state_[i] = 1;
    keys_[i] = key;
    vals_[i] = std::move(value);
    ++size_;
    return {&vals_[i], true};
  }

  /// Returns the value for `key`, default-constructing it if absent.
  V& operator[](K key) { return *Insert(key, V{}).first; }

  /// Erases `key`; returns true if it was present.
  bool Erase(K key) {
    if (size_ == 0) return false;
    size_t i = Probe(key);
    if (!state_[i]) return false;
    // Backward-shift deletion: move subsequent probe-chain entries up.
    size_t mask = Capacity() - 1;
    size_t hole = i;
    size_t j = i;
    while (true) {
      j = (j + 1) & mask;
      if (!state_[j]) break;
      size_t home = Home(keys_[j]);
      // Can slot j's entry legally move into the hole? Yes iff the hole is
      // not "between" home and j in cyclic probe order.
      bool movable = (hole <= j) ? (home <= hole || home > j)
                                 : (home <= hole && home > j);
      if (movable) {
        keys_[hole] = keys_[j];
        vals_[hole] = std::move(vals_[j]);
        hole = j;
      }
    }
    state_[hole] = 0;
    --size_;
    return true;
  }

  /// Invokes `fn(key, value&)` for every element (unspecified order).
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (size_t i = 0; i < Capacity(); ++i) {
      if (state_[i]) fn(keys_[i], vals_[i]);
    }
  }
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < Capacity(); ++i) {
      if (state_[i]) fn(keys_[i], vals_[i]);
    }
  }

 private:
  size_t Capacity() const { return state_.size(); }

  size_t Home(K key) const {
    return static_cast<size_t>(Mix64(static_cast<uint64_t>(key))) &
           (Capacity() - 1);
  }

  // Returns the slot holding `key`, or the empty slot where it would go.
  size_t Probe(K key) const {
    size_t mask = Capacity() - 1;
    size_t i = Home(key);
    while (state_[i] && keys_[i] != key) i = (i + 1) & mask;
    return i;
  }

  void GrowIfNeeded() {
    if (Capacity() == 0) {
      Rehash(16);
    } else if ((size_ + 1) * 8 > Capacity() * 7) {
      Rehash(Capacity() * 2);
    }
  }

  void Rehash(size_t cap) {
    std::vector<uint8_t> old_state = std::move(state_);
    std::vector<K> old_keys = std::move(keys_);
    std::vector<V> old_vals = std::move(vals_);
    state_.assign(cap, 0);
    keys_.assign(cap, K{});
    vals_.assign(cap, V{});
    size_ = 0;
    for (size_t i = 0; i < old_state.size(); ++i) {
      if (old_state[i]) Insert(old_keys[i], std::move(old_vals[i]));
    }
  }

  std::vector<uint8_t> state_;
  std::vector<K> keys_;
  std::vector<V> vals_;
  size_t size_ = 0;
};

/// Open-addressing hash set for integral keys; thin wrapper over FlatMap.
template <typename K>
class FlatSet {
 public:
  FlatSet() = default;
  explicit FlatSet(size_t n) : map_(n) {}

  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  void Clear() { map_.Clear(); }
  void Reserve(size_t n) { map_.Reserve(n); }
  bool Contains(K key) const { return map_.Contains(key); }
  bool Insert(K key) { return map_.Insert(key, Empty{}).second; }
  bool Erase(K key) { return map_.Erase(key); }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    map_.ForEach([&](K k, const Empty&) { fn(k); });
  }

 private:
  struct Empty {};
  FlatMap<K, Empty> map_;
};

}  // namespace esd::util

#endif  // ESD_UTIL_FLAT_MAP_H_
