#ifndef ESD_UTIL_DSU_H_
#define ESD_UTIL_DSU_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/flat_map.h"

namespace esd::util {

/// Classic disjoint-set union over a fixed index range [0, n).
///
/// Union by size with path halving; amortized cost per operation is
/// O(gamma(n)), the inverse Ackermann function referenced throughout the
/// paper's complexity analysis.
class Dsu {
 public:
  /// Creates n singleton sets {0}, {1}, ..., {n-1}.
  explicit Dsu(size_t n = 0);

  /// Resets to n singleton sets.
  void Reset(size_t n);

  /// Number of elements.
  size_t size() const { return parent_.size(); }

  /// Number of disjoint sets.
  size_t NumComponents() const { return num_components_; }

  /// Representative of x's set.
  uint32_t Find(uint32_t x);

  /// Merges the sets of a and b; returns true if they were distinct.
  bool Union(uint32_t a, uint32_t b);

  /// Size of the set containing x.
  uint32_t ComponentSize(uint32_t x);

  /// True if a and b are in the same set.
  bool Same(uint32_t a, uint32_t b) { return Find(a) == Find(b); }

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint32_t> count_;
  size_t num_components_ = 0;
};

/// Disjoint-set union keyed by sparse vertex ids — the paper's per-edge
/// structure `M_uv` (Algorithm 3, lines 1-4): each common neighbor of the
/// edge's endpoints is a member, each set is one connected component of the
/// edge ego-network, and every root carries the component's size ("count").
///
/// Members can be added and removed dynamically, which the maintenance
/// algorithms (Algorithms 4 and 5) rely on. Removal is restricted to
/// singletons or whole components, matching how the paper's Deletion
/// algorithm rebuilds affected components.
class KeyedDsu {
 public:
  KeyedDsu() = default;

  /// Pre-sizes internal tables for n members.
  void Reserve(size_t n);

  /// Adds `v` as a new singleton component; returns false if already present.
  bool AddMember(uint32_t v);

  /// True if `v` is a member.
  bool Contains(uint32_t v) const;

  /// Representative vertex of v's component. `v` must be a member.
  uint32_t Find(uint32_t v);

  /// Merges the components of `a` and `b`; returns true if they differed.
  /// Both must be members.
  bool Union(uint32_t a, uint32_t b);

  /// Size of the component containing `v`. `v` must be a member.
  uint32_t ComponentSize(uint32_t v);

  /// True if members `a` and `b` share a component.
  bool Same(uint32_t a, uint32_t b) { return Find(a) == Find(b); }

  /// Total members across all components.
  size_t NumMembers() const { return num_members_; }

  /// Number of components.
  size_t NumComponents() const { return num_components_; }

  /// Removes `v` if it is a singleton component; returns false otherwise
  /// (including when `v` is not a member).
  bool RemoveSingleton(uint32_t v);

  /// All member vertices of v's component.
  std::vector<uint32_t> ComponentMembers(uint32_t v);

  /// Removes v's entire component (all its members).
  void RemoveComponent(uint32_t v);

  /// Invokes fn(root_vertex, component_size) for every component.
  template <typename Fn>
  void ForEachComponent(Fn&& fn) {
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].alive && slots_[i].parent == static_cast<int32_t>(i)) {
        fn(slots_[i].vertex, slots_[i].count);
      }
    }
  }

  /// Invokes fn(vertex) for every member.
  template <typename Fn>
  void ForEachMember(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.alive) fn(s.vertex);
    }
  }

  /// Sorted (ascending) list of component sizes — the paper's `C_uv`
  /// with multiplicities.
  std::vector<uint32_t> ComponentSizes();

 private:
  struct Slot {
    uint32_t vertex = 0;
    int32_t parent = -1;  // slot index; == own index for roots
    uint32_t count = 0;   // component size, valid at roots
    uint8_t alive = 0;
  };

  int32_t FindSlot(int32_t i);

  std::vector<Slot> slots_;
  FlatMap<uint32_t, int32_t> index_;  // vertex -> slot
  size_t num_members_ = 0;
  size_t num_components_ = 0;
};

}  // namespace esd::util

#endif  // ESD_UTIL_DSU_H_
