#ifndef ESD_UTIL_RNG_H_
#define ESD_UTIL_RNG_H_

#include <cstdint>

namespace esd::util {

/// Deterministic, fast pseudo-random number generator (xoshiro256**).
///
/// All generators and randomized algorithms in this library take an explicit
/// seed so that every experiment is reproducible. The engine satisfies the
/// C++ UniformRandomBitGenerator requirements and can therefore be plugged
/// into <random> distributions, although the member helpers below cover the
/// needs of this library without pulling in <random> at call sites.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the engine; two Rng instances built from the same seed produce
  /// identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next 64 random bits.
  uint64_t Next();
  result_type operator()() { return Next(); }

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  /// nearly-divisionless technique.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  bool NextBool(double p);

  /// Splits off an independent generator (useful for per-thread streams).
  Rng Split();

 private:
  uint64_t s_[4];
};

/// SplitMix64 step — used for seeding and as a cheap standalone mixer.
uint64_t SplitMix64(uint64_t* state);

/// Mixes a 64-bit value into a well-distributed hash (Stafford variant 13).
uint64_t Mix64(uint64_t x);

}  // namespace esd::util

#endif  // ESD_UTIL_RNG_H_
