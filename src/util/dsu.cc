#include "util/dsu.h"

#include <algorithm>
#include <cassert>

namespace esd::util {

Dsu::Dsu(size_t n) { Reset(n); }

void Dsu::Reset(size_t n) {
  parent_.resize(n);
  count_.assign(n, 1);
  for (size_t i = 0; i < n; ++i) parent_[i] = static_cast<uint32_t>(i);
  num_components_ = n;
}

uint32_t Dsu::Find(uint32_t x) {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool Dsu::Union(uint32_t a, uint32_t b) {
  a = Find(a);
  b = Find(b);
  if (a == b) return false;
  if (count_[a] < count_[b]) std::swap(a, b);
  parent_[b] = a;
  count_[a] += count_[b];
  --num_components_;
  return true;
}

uint32_t Dsu::ComponentSize(uint32_t x) { return count_[Find(x)]; }

void KeyedDsu::Reserve(size_t n) {
  slots_.reserve(n);
  index_.Reserve(n);
}

bool KeyedDsu::AddMember(uint32_t v) {
  auto [slot_ptr, inserted] =
      index_.Insert(v, static_cast<int32_t>(slots_.size()));
  if (!inserted) {
    // Resurrect a previously removed member in place.
    Slot& s = slots_[static_cast<size_t>(*slot_ptr)];
    if (s.alive) return false;
    s.parent = *slot_ptr;
    s.count = 1;
    s.alive = 1;
    ++num_members_;
    ++num_components_;
    return true;
  }
  Slot s;
  s.vertex = v;
  s.parent = static_cast<int32_t>(slots_.size());
  s.count = 1;
  s.alive = 1;
  slots_.push_back(s);
  ++num_members_;
  ++num_components_;
  return true;
}

bool KeyedDsu::Contains(uint32_t v) const {
  const int32_t* i = index_.Find(v);
  return i != nullptr && slots_[static_cast<size_t>(*i)].alive;
}

int32_t KeyedDsu::FindSlot(int32_t i) {
  while (slots_[static_cast<size_t>(i)].parent != i) {
    Slot& s = slots_[static_cast<size_t>(i)];
    s.parent = slots_[static_cast<size_t>(s.parent)].parent;  // path halving
    i = s.parent;
  }
  return i;
}

uint32_t KeyedDsu::Find(uint32_t v) {
  const int32_t* i = index_.Find(v);
  assert(i != nullptr && slots_[static_cast<size_t>(*i)].alive);
  return slots_[static_cast<size_t>(FindSlot(*i))].vertex;
}

bool KeyedDsu::Union(uint32_t a, uint32_t b) {
  const int32_t* ia = index_.Find(a);
  const int32_t* ib = index_.Find(b);
  assert(ia != nullptr && ib != nullptr);
  int32_t ra = FindSlot(*ia);
  int32_t rb = FindSlot(*ib);
  if (ra == rb) return false;
  if (slots_[static_cast<size_t>(ra)].count <
      slots_[static_cast<size_t>(rb)].count) {
    std::swap(ra, rb);
  }
  slots_[static_cast<size_t>(rb)].parent = ra;
  slots_[static_cast<size_t>(ra)].count +=
      slots_[static_cast<size_t>(rb)].count;
  --num_components_;
  return true;
}

uint32_t KeyedDsu::ComponentSize(uint32_t v) {
  const int32_t* i = index_.Find(v);
  assert(i != nullptr);
  return slots_[static_cast<size_t>(FindSlot(*i))].count;
}

bool KeyedDsu::RemoveSingleton(uint32_t v) {
  const int32_t* i = index_.Find(v);
  if (i == nullptr) return false;
  Slot& s = slots_[static_cast<size_t>(*i)];
  if (!s.alive || s.parent != *i || s.count != 1) return false;
  s.alive = 0;
  --num_members_;
  --num_components_;
  return true;
}

std::vector<uint32_t> KeyedDsu::ComponentMembers(uint32_t v) {
  const int32_t* iv = index_.Find(v);
  assert(iv != nullptr);
  int32_t root = FindSlot(*iv);
  std::vector<uint32_t> members;
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].alive && FindSlot(static_cast<int32_t>(i)) == root) {
      members.push_back(slots_[i].vertex);
    }
  }
  return members;
}

void KeyedDsu::RemoveComponent(uint32_t v) {
  const int32_t* iv = index_.Find(v);
  assert(iv != nullptr);
  int32_t root = FindSlot(*iv);
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].alive && FindSlot(static_cast<int32_t>(i)) == root) {
      slots_[i].alive = 0;
      --num_members_;
    }
  }
  --num_components_;
}

std::vector<uint32_t> KeyedDsu::ComponentSizes() {
  std::vector<uint32_t> sizes;
  sizes.reserve(num_components_);
  ForEachComponent([&](uint32_t, uint32_t count) { sizes.push_back(count); });
  std::sort(sizes.begin(), sizes.end());
  return sizes;
}

}  // namespace esd::util
