#ifndef ESD_UTIL_POSIX_IO_H_
#define ESD_UTIL_POSIX_IO_H_

#include <cstddef>
#include <cstdint>

namespace esd::util {

/// Outcome of one WriteFully call, typed so callers can distinguish a
/// plain IO error (errno in error_code) from a short write that made no
/// progress (short_write, no errno — the kernel accepted part of the
/// buffer and then stalled, or a wal.short_write-style fail point
/// simulated exactly that).
struct WriteResult {
  bool ok = false;
  bool short_write = false;
  int error_code = 0;        ///< errno of the failing write (0 otherwise)
  uint64_t eintr_retries = 0;
  size_t bytes_written = 0;  ///< bytes actually handed to the kernel

  explicit operator bool() const { return ok; }
};

/// write() until every byte is accepted. EINTR is retried explicitly (and
/// counted; a pathological signal storm gives up as an EINTR error after a
/// large bounded number of retries). A write() that repeatedly returns
/// zero progress gives up with the typed short_write outcome instead of
/// spinning. `short_write_failpoint`, when non-null, names an
/// ESD_FAILPOINT evaluated on entry; if it fires, half the buffer is
/// written for real and the call returns short_write — the torn-bytes
/// case durable-log writers must repair (see WalWriter::Append).
WriteResult WriteFully(int fd, const char* data, size_t n,
                       const char* short_write_failpoint = nullptr);

}  // namespace esd::util

#endif  // ESD_UTIL_POSIX_IO_H_
