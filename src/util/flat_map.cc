#include "util/flat_map.h"

// FlatMap/FlatSet are header-only templates; this file anchors the target.
namespace esd::util {}
