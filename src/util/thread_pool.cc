#include "util/thread_pool.h"

#include <algorithm>
#include <string>

#include "fault/failpoint.h"
#include "obs/trace.h"

namespace esd::util {

unsigned ThreadPool::DefaultThreadCount() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

ThreadPool::ThreadPool(unsigned num_threads) : ThreadPool(num_threads, {}) {}

ThreadPool::ThreadPool(unsigned num_threads, std::string thread_name_prefix)
    : num_threads_(std::max(1u, num_threads)) {
  if (thread_name_prefix.empty()) thread_name_prefix = "esd-pool";
  workers_.reserve(num_threads_ - 1);
  for (unsigned i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this, i, thread_name_prefix] {
      // Names the worker's track in exported Chrome traces (no-op stub
      // under ESD_OBS=OFF). The calling thread stays on its own track —
      // owners that participate (the serve runner) name themselves
      // "<prefix>-0".
      obs::Tracer::Global().SetCurrentThreadName(thread_name_prefix + "-" +
                                                 std::to_string(i + 1));
      WorkerLoop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::ParallelFor(uint64_t begin, uint64_t end, uint64_t grain,
                             const std::function<void(uint64_t)>& fn) {
  ParallelForChunked(begin, end, grain, [&fn](uint64_t lo, uint64_t hi) {
    for (uint64_t i = lo; i < hi; ++i) fn(i);
  });
}

void ThreadPool::ParallelForChunked(
    uint64_t begin, uint64_t end, uint64_t grain,
    const std::function<void(uint64_t, uint64_t)>& fn) {
  if (begin >= end) return;
  grain = std::max<uint64_t>(1, grain);
  if (num_threads_ == 1 || end - begin <= grain) {
    fn(begin, end);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = fn;
    next_.store(begin, std::memory_order_relaxed);
    end_ = end;
    grain_ = grain;
    ++generation_;
    active_workers_ = static_cast<unsigned>(workers_.size());
  }
  work_ready_.notify_all();

  // The calling thread participates.
  while (true) {
    uint64_t lo = next_.fetch_add(grain, std::memory_order_relaxed);
    if (lo >= end) break;
    fn(lo, std::min(lo + grain, end));
  }

  // Wait for workers to drain their chunks.
  std::unique_lock<std::mutex> lock(mu_);
  work_done_.wait(lock, [this] { return active_workers_ == 0; });
  job_ = nullptr;
}

void ThreadPool::Post(std::function<void()> task) {
  // Scheduling-edge fail point: a delay() spec here stalls the posting
  // thread (admission jitter); error actions are ignored — Post is
  // fire-and-forget and never drops work.
  (void)ESD_FAILPOINT("pool.post");
  if (workers_.empty()) {  // 1-thread pool: no worker will ever drain it
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!shutdown_) {
      tasks_.push_back(std::move(task));
      task = nullptr;
    }
  }
  if (task) {  // lost the race with the destructor: run inline
    task();
    return;
  }
  work_ready_.notify_one();
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  while (true) {
    std::function<void()> task;
    std::function<void(uint64_t, uint64_t)> job;
    uint64_t end = 0, grain = 1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [&] {
        return shutdown_ || !tasks_.empty() ||
               (job_ != nullptr && generation_ != seen_generation);
      });
      if (!tasks_.empty()) {
        // Tasks take priority and are drained even during shutdown, so a
        // refreeze posted just before teardown still publishes.
        task = std::move(tasks_.front());
        tasks_.pop_front();
      } else if (shutdown_) {
        return;
      } else {
        seen_generation = generation_;
        job = job_;
        end = end_;
        grain = grain_;
      }
    }
    if (task) {
      // A delay() spec here simulates a stalled worker — the knob the
      // queue-full/deadline-expiry service tests turn.
      (void)ESD_FAILPOINT("pool.task");
      task();
      continue;
    }
    while (true) {
      uint64_t lo = next_.fetch_add(grain, std::memory_order_relaxed);
      if (lo >= end) break;
      job(lo, std::min(lo + grain, end));
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_workers_ == 0) work_done_.notify_all();
    }
  }
}

}  // namespace esd::util
