#include "util/posix_io.h"

#include <unistd.h>

#include <cerrno>

#include "fault/failpoint.h"

namespace esd::util {

namespace {

/// Bounded so a signal storm (or an EINTR-injecting fail point left on
/// forever) degrades into a typed error instead of an unkillable loop.
constexpr uint64_t kMaxEintrRetries = 1024;
constexpr int kMaxZeroProgressWrites = 8;

}  // namespace

WriteResult WriteFully(int fd, const char* data, size_t n,
                       const char* short_write_failpoint) {
  WriteResult result;
#if ESD_FAULT_ENABLED
  if (short_write_failpoint != nullptr) {
    if (const fault::FaultHit hit = fault::Evaluate(short_write_failpoint);
        hit.fired) {
      // Simulate the kernel accepting only part of the buffer: the torn
      // bytes genuinely land on disk so repair paths are exercised.
      size_t want = n / 2;
      while (want > 0) {
        const ssize_t w = ::write(fd, data, want);
        if (w <= 0) break;
        data += w;
        want -= static_cast<size_t>(w);
        result.bytes_written += static_cast<size_t>(w);
      }
      result.short_write = true;
      return result;
    }
  }
#else
  (void)short_write_failpoint;
#endif
  int zero_streak = 0;
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) {
        if (++result.eintr_retries > kMaxEintrRetries) {
          result.error_code = EINTR;
          return result;
        }
        continue;
      }
      result.error_code = errno;
      return result;
    }
    if (w == 0) {
      if (++zero_streak >= kMaxZeroProgressWrites) {
        result.short_write = true;
        return result;
      }
      continue;
    }
    zero_streak = 0;
    data += w;
    n -= static_cast<size_t>(w);
    result.bytes_written += static_cast<size_t>(w);
  }
  result.ok = true;
  return result;
}

}  // namespace esd::util
