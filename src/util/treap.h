#ifndef ESD_UTIL_TREAP_H_
#define ESD_UTIL_TREAP_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/rng.h"

namespace esd::util {

/// Order-statistics treap: the "self-balance binary search tree" the paper
/// uses for every sorted list H(c) of the ESDIndex (Section IV-A).
///
/// Supports O(log n) expected insert/erase/contains/rank/k-th, an O(n)
/// bulk build from sorted input (used by the index builders), and in-order
/// traversal with early termination (the O(k log n) top-k scan).
///
/// Nodes live in a contiguous pool with a free list, so the treap is
/// trivially copyable — index maintenance exploits this to clone an H(c')
/// list when a brand-new component size c appears (see DESIGN.md §3).
template <typename Key, typename Less = std::less<Key>>
class Treap {
 public:
  explicit Treap(Less less = Less()) : less_(less), rng_(0xE5DA1DB8u) {}

  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Removes all keys (keeps the pool allocation).
  void Clear() {
    nodes_.clear();
    free_.clear();
    root_ = kNil;
    count_ = 0;
  }

  /// Inserts `key`; returns false if an equal key is already present.
  bool Insert(const Key& key) {
    bool inserted = false;
    root_ = InsertRec(root_, key, &inserted);
    if (inserted) ++count_;
    return inserted;
  }

  /// Erases `key`; returns false if absent.
  bool Erase(const Key& key) {
    bool erased = false;
    root_ = EraseRec(root_, key, &erased);
    if (erased) --count_;
    return erased;
  }

  /// True if an equal key is present.
  bool Contains(const Key& key) const {
    uint32_t n = root_;
    while (n != kNil) {
      if (less_(key, nodes_[n].key)) {
        n = nodes_[n].left;
      } else if (less_(nodes_[n].key, key)) {
        n = nodes_[n].right;
      } else {
        return true;
      }
    }
    return false;
  }

  /// Pointer to the i-th smallest key (0-based), or nullptr if out of range.
  const Key* Kth(size_t i) const {
    if (i >= count_) return nullptr;
    uint32_t n = root_;
    while (true) {
      size_t ls = SubtreeSize(nodes_[n].left);
      if (i < ls) {
        n = nodes_[n].left;
      } else if (i == ls) {
        return &nodes_[n].key;
      } else {
        i -= ls + 1;
        n = nodes_[n].right;
      }
    }
  }

  /// Number of keys strictly less than `key`.
  size_t Rank(const Key& key) const {
    size_t rank = 0;
    uint32_t n = root_;
    while (n != kNil) {
      if (less_(nodes_[n].key, key)) {
        rank += SubtreeSize(nodes_[n].left) + 1;
        n = nodes_[n].right;
      } else {
        n = nodes_[n].left;
      }
    }
    return rank;
  }

  /// In-order traversal; `fn(key)` returns false to stop early. Returns
  /// false if the traversal was stopped.
  template <typename Fn>
  bool ForEachInOrder(Fn&& fn) const {
    return Walk(root_, fn);
  }

  /// Collects the first k keys in sorted order.
  std::vector<Key> TopK(size_t k) const {
    std::vector<Key> out;
    out.reserve(std::min(k, count_));
    ForEachInOrder([&](const Key& key) {
      if (out.size() >= k) return false;
      out.push_back(key);
      return true;
    });
    return out;
  }

  /// Rebuilds the treap from strictly-increasing sorted keys in O(n),
  /// replacing current contents. Uses the right-spine Cartesian-tree
  /// construction with random priorities.
  void BuildFromSorted(const std::vector<Key>& sorted) {
    Clear();
    nodes_.reserve(sorted.size());
    std::vector<uint32_t> spine;  // rightmost path, top to bottom
    for (const Key& key : sorted) {
      uint32_t n = NewNode(key);
      uint32_t last_popped = kNil;
      while (!spine.empty() && nodes_[spine.back()].prio < nodes_[n].prio) {
        last_popped = spine.back();
        spine.pop_back();
      }
      nodes_[n].left = last_popped;
      if (spine.empty()) {
        root_ = n;
      } else {
        nodes_[spine.back()].right = n;
      }
      spine.push_back(n);
    }
    // Fix subtree sizes bottom-up along the spine and recursively; a single
    // post-order pass over the pool suffices because children were created
    // before parents only along left links. Do an explicit recomputation.
    RecomputeSizes(root_);
    count_ = sorted.size();
  }

  /// Structural self-check (tests/debug): verifies the BST order, the
  /// max-heap priority invariant, and subtree-size bookkeeping. O(n).
  bool ValidateStructure() const {
    size_t visited = 0;
    bool ok = ValidateRec(root_, nullptr, nullptr, &visited);
    return ok && visited == count_;
  }

 private:
  static constexpr uint32_t kNil = UINT32_MAX;

  bool ValidateRec(uint32_t n, const Key* lo, const Key* hi,
                   size_t* visited) const {
    if (n == kNil) return true;
    const Node& node = nodes_[n];
    if (lo != nullptr && !less_(*lo, node.key)) return false;
    if (hi != nullptr && !less_(node.key, *hi)) return false;
    if (node.left != kNil && nodes_[node.left].prio > node.prio) return false;
    if (node.right != kNil && nodes_[node.right].prio > node.prio) {
      return false;
    }
    if (node.size != 1 + SubtreeSize(node.left) + SubtreeSize(node.right)) {
      return false;
    }
    *visited += 1;
    return ValidateRec(node.left, lo, &node.key, visited) &&
           ValidateRec(node.right, &node.key, hi, visited);
  }

  struct Node {
    Key key;
    uint32_t prio;
    uint32_t left = kNil;
    uint32_t right = kNil;
    uint32_t size = 1;
  };

  size_t SubtreeSize(uint32_t n) const { return n == kNil ? 0 : nodes_[n].size; }

  void Pull(uint32_t n) {
    nodes_[n].size = static_cast<uint32_t>(
        1 + SubtreeSize(nodes_[n].left) + SubtreeSize(nodes_[n].right));
  }

  uint32_t NewNode(const Key& key) {
    uint32_t prio = static_cast<uint32_t>(rng_.Next());
    if (!free_.empty()) {
      uint32_t n = free_.back();
      free_.pop_back();
      nodes_[n] = Node{key, prio, kNil, kNil, 1};
      return n;
    }
    nodes_.push_back(Node{key, prio, kNil, kNil, 1});
    return static_cast<uint32_t>(nodes_.size() - 1);
  }

  uint32_t RotateRight(uint32_t n) {
    uint32_t l = nodes_[n].left;
    nodes_[n].left = nodes_[l].right;
    nodes_[l].right = n;
    Pull(n);
    Pull(l);
    return l;
  }

  uint32_t RotateLeft(uint32_t n) {
    uint32_t r = nodes_[n].right;
    nodes_[n].right = nodes_[r].left;
    nodes_[r].left = n;
    Pull(n);
    Pull(r);
    return r;
  }

  uint32_t InsertRec(uint32_t n, const Key& key, bool* inserted) {
    if (n == kNil) {
      *inserted = true;
      return NewNode(key);
    }
    if (less_(key, nodes_[n].key)) {
      nodes_[n].left = InsertRec(nodes_[n].left, key, inserted);
      Pull(n);
      if (nodes_[nodes_[n].left].prio > nodes_[n].prio) n = RotateRight(n);
    } else if (less_(nodes_[n].key, key)) {
      nodes_[n].right = InsertRec(nodes_[n].right, key, inserted);
      Pull(n);
      if (nodes_[nodes_[n].right].prio > nodes_[n].prio) n = RotateLeft(n);
    }
    return n;
  }

  uint32_t EraseRec(uint32_t n, const Key& key, bool* erased) {
    if (n == kNil) return kNil;
    if (less_(key, nodes_[n].key)) {
      nodes_[n].left = EraseRec(nodes_[n].left, key, erased);
      Pull(n);
    } else if (less_(nodes_[n].key, key)) {
      nodes_[n].right = EraseRec(nodes_[n].right, key, erased);
      Pull(n);
    } else {
      *erased = true;
      if (nodes_[n].left == kNil) {
        uint32_t r = nodes_[n].right;
        free_.push_back(n);
        return r;
      }
      if (nodes_[n].right == kNil) {
        uint32_t l = nodes_[n].left;
        free_.push_back(n);
        return l;
      }
      if (nodes_[nodes_[n].left].prio > nodes_[nodes_[n].right].prio) {
        n = RotateRight(n);
        nodes_[n].right = EraseRec(nodes_[n].right, key, erased);
      } else {
        n = RotateLeft(n);
        nodes_[n].left = EraseRec(nodes_[n].left, key, erased);
      }
      Pull(n);
    }
    return n;
  }

  template <typename Fn>
  bool Walk(uint32_t n, Fn&& fn) const {
    if (n == kNil) return true;
    if (!Walk(nodes_[n].left, fn)) return false;
    if (!fn(nodes_[n].key)) return false;
    return Walk(nodes_[n].right, fn);
  }

  uint32_t RecomputeSizes(uint32_t n) {
    if (n == kNil) return 0;
    nodes_[n].size =
        1 + RecomputeSizes(nodes_[n].left) + RecomputeSizes(nodes_[n].right);
    return nodes_[n].size;
  }

  Less less_;
  Rng rng_;
  std::vector<Node> nodes_;
  std::vector<uint32_t> free_;
  uint32_t root_ = kNil;
  size_t count_ = 0;
};

}  // namespace esd::util

#endif  // ESD_UTIL_TREAP_H_
