#ifndef ESD_FAULT_FAILPOINT_H_
#define ESD_FAULT_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

/// Deterministic fail-point framework (the fail-rs / TiKV idea): IO and
/// scheduling edges evaluate `ESD_FAILPOINT("name")` and, when that point
/// has been activated, receive an injected fault — an errno-style error, a
/// delay, probabilistically or on a chosen hit. Points are activated
/// programmatically (tests) or through the environment:
///
///   ESD_FAILPOINTS="wal.append=error(ENOSPC);snapshot.rename=1in5"
///   ESD_FAILPOINT_SEED=42
///
/// Spec grammar, one entry per point:
///   spec   := 'off' | [freq '*'] action | freq
///   freq   := N 'in' M          fire with probability N/M (seeded RNG)
///           | 'nth(' N ')'      fire only on the Nth hit (1-based)
///           | 'after(' N ')'    fire on every hit after the first N
///           | N                 fire on the first N hits, then stop
///   action := 'error' ['(' code ')']   inject errno `code` (default EIO;
///                                      symbolic like ENOSPC, or numeric)
///           | 'delay(' MS ')'          sleep MS milliseconds, then proceed
/// A bare freq defaults to error(EIO): "1in5" == "1in5*error(EIO)".
///
/// Cost model: compiled out entirely under -DESD_FAULT=OFF (the macro
/// expands to an empty constexpr hit); compiled in but unconfigured, a
/// point is one relaxed atomic load of the process-wide active count.
#ifndef ESD_FAULT_ENABLED
#define ESD_FAULT_ENABLED 1
#endif

namespace esd::fault {

/// True when ESD_FAILPOINT call sites were compiled in (-DESD_FAULT=ON).
/// The registry itself always exists; with this false, activating a point
/// affects only direct Evaluate calls, never the instrumented code paths.
inline constexpr bool kFailPointsCompiledIn = ESD_FAULT_ENABLED != 0;

/// One instrumented call site, for operator discovery (esd_server's
/// `FAILPOINT LIST`): the point name a chaos schedule would target and
/// what failing it simulates.
struct FailPointSite {
  std::string_view name;
  std::string_view description;
};

/// The curated registry of compiled-in call sites, sorted by name. Sites
/// whose names are built per instance (per-shard WAL/refreeze suffixes
/// like "wal.append.shard2", per-shard query probes "shard.query.2") are
/// listed once under their base name with the suffix convention noted —
/// the live hit counts of the suffixed instances still show up in
/// FAILPOINT LIST because the registry tracks any evaluated name.
std::vector<FailPointSite> BuiltinFailPointSites();

/// What one ESD_FAILPOINT evaluation injected. `fired` is true only for
/// error actions — the call site must fail with `error_code`. Delay
/// actions sleep inside Evaluate and return fired == false, so call sites
/// need no delay handling of their own.
struct FaultHit {
  bool fired = false;
  int error_code = 0;  ///< errno value; meaningful only when fired
  explicit operator bool() const { return fired; }
};

/// Process-wide registry of activated fail points. All operations are
/// thread-safe; Evaluate is called concurrently from IO and worker
/// threads. The probabilistic trigger draws from one seeded splitmix64
/// stream shared by every point, so a fixed seed plus a deterministic
/// evaluation order reproduces a fault schedule exactly.
class FailPointRegistry {
 public:
  /// The registry ESD_FAILPOINT consults. First use activates any points
  /// named in $ESD_FAILPOINTS (parse errors are reported to stderr and
  /// skipped) and seeds the RNG from $ESD_FAILPOINT_SEED.
  static FailPointRegistry& Global();

  FailPointRegistry() = default;
  FailPointRegistry(const FailPointRegistry&) = delete;
  FailPointRegistry& operator=(const FailPointRegistry&) = delete;

  /// Activates (or reconfigures — hit counts reset) one point. A spec of
  /// "off" deactivates. Returns false with *error set on a bad spec.
  bool Set(std::string_view name, std::string_view spec, std::string* error);

  /// Parses a full "name=spec;name=spec" list (the env-var syntax).
  /// Stops at the first bad entry.
  bool Configure(std::string_view list, std::string* error);

  void Clear(std::string_view name);
  void ClearAll();

  /// Reseeds the probabilistic-trigger RNG (also resets the stream).
  void SetSeed(uint64_t seed);

  /// Evaluates one point: counts the hit, decides whether the trigger
  /// fires, executes delay actions, and returns error actions to the call
  /// site. Unconfigured names return an empty hit.
  FaultHit Evaluate(std::string_view name);

  /// Introspection: total evaluations / fires of a point (0 if unknown).
  uint64_t HitCount(std::string_view name) const;
  uint64_t FireCount(std::string_view name) const;

  /// Names of every activated point, sorted.
  std::vector<std::string> ActiveNames() const;

 private:
  enum class Freq : uint8_t { kAlways, kProb, kNth, kAfter, kTimes };
  enum class Action : uint8_t { kError, kDelay };

  struct Point {
    Freq freq = Freq::kAlways;
    uint64_t freq_a = 0;  ///< numerator / N of nth/after/times
    uint64_t freq_b = 0;  ///< denominator of kProb
    Action action = Action::kError;
    int error_code = 0;
    uint32_t delay_ms = 0;
    uint64_t hits = 0;
    uint64_t fires = 0;
  };

  static bool ParseSpec(std::string_view spec, Point* out,
                        std::string* error);
  uint64_t NextRandom();  // splitmix64; caller holds mu_

  mutable std::mutex mu_;
  std::map<std::string, Point, std::less<>> points_;
  uint64_t rng_state_ = 0x9E3779B97F4A7C15ull;
};

/// Process-wide count of activated points; ESD_FAILPOINT's fast path.
extern std::atomic<int> g_active_points;

FaultHit EvaluateSlow(std::string_view name);

inline FaultHit Evaluate(std::string_view name) {
  if (g_active_points.load(std::memory_order_relaxed) == 0) return FaultHit{};
  return EvaluateSlow(name);
}

}  // namespace esd::fault

#if ESD_FAULT_ENABLED
#define ESD_FAILPOINT(name) (::esd::fault::Evaluate(name))
#else
#define ESD_FAILPOINT(name) (::esd::fault::FaultHit{})
#endif

#endif  // ESD_FAULT_FAILPOINT_H_
