#include "fault/failpoint.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace esd::fault {

std::atomic<int> g_active_points{0};

namespace {

bool SetError(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

/// Symbolic errno names accepted by error(...). Numeric codes also parse.
struct ErrnoName {
  const char* name;
  int code;
};
constexpr ErrnoName kErrnoNames[] = {
    {"EIO", EIO},       {"ENOSPC", ENOSPC}, {"ENOENT", ENOENT},
    {"EINTR", EINTR},   {"EACCES", EACCES}, {"EAGAIN", EAGAIN},
    {"EMFILE", EMFILE}, {"ENOMEM", ENOMEM}, {"EDQUOT", EDQUOT},
    {"EROFS", EROFS},   {"EBADF", EBADF},   {"ENODEV", ENODEV},
    // Network IO sites (net.read / net.write / net.accept).
    {"ECONNRESET", ECONNRESET},
    {"ECONNREFUSED", ECONNREFUSED},
    {"EPIPE", EPIPE},
    {"ETIMEDOUT", ETIMEDOUT},
};

bool ParseErrno(std::string_view text, int* code) {
  for (const ErrnoName& e : kErrnoNames) {
    if (text == e.name) {
      *code = e.code;
      return true;
    }
  }
  if (text.empty()) return false;
  int value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
  }
  *code = value;
  return value > 0;
}

bool ParseUint(std::string_view text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

/// "name(arg)" -> arg; empty view when the shape does not match.
std::string_view CallArg(std::string_view text, std::string_view fn) {
  if (text.size() < fn.size() + 2 || text.substr(0, fn.size()) != fn ||
      text[fn.size()] != '(' || text.back() != ')') {
    return {};
  }
  return text.substr(fn.size() + 1, text.size() - fn.size() - 2);
}

uint64_t Splitmix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

FailPointRegistry& FailPointRegistry::Global() {
  static FailPointRegistry* registry = [] {
    auto* r = new FailPointRegistry();
    if (const char* seed = std::getenv("ESD_FAILPOINT_SEED")) {
      uint64_t value = 0;
      if (ParseUint(seed, &value)) r->SetSeed(value);
    }
    if (const char* spec = std::getenv("ESD_FAILPOINTS")) {
      std::string error;
      if (!r->Configure(spec, &error)) {
        std::fprintf(stderr, "esd: bad ESD_FAILPOINTS entry ignored: %s\n",
                     error.c_str());
      }
    }
    return r;
  }();
  return *registry;
}

bool FailPointRegistry::ParseSpec(std::string_view spec, Point* out,
                                  std::string* error) {
  Point p;
  std::string_view rest = spec;

  // Optional frequency prefix, "freq*action" (or a bare freq).
  const size_t star = rest.find('*');
  std::string_view freq = star == std::string_view::npos
                              ? std::string_view{}
                              : rest.substr(0, star);
  bool have_freq = false;
  auto parse_freq = [&p](std::string_view text) {
    const size_t in = text.find("in");
    if (in != std::string_view::npos && in > 0) {
      uint64_t num = 0, den = 0;
      if (ParseUint(text.substr(0, in), &num) &&
          ParseUint(text.substr(in + 2), &den) && num > 0 && num <= den) {
        p.freq = Freq::kProb;
        p.freq_a = num;
        p.freq_b = den;
        return true;
      }
      return false;
    }
    if (std::string_view arg = CallArg(text, "nth"); !arg.empty()) {
      p.freq = Freq::kNth;
      return ParseUint(arg, &p.freq_a) && p.freq_a > 0;
    }
    if (std::string_view arg = CallArg(text, "after"); !arg.empty()) {
      p.freq = Freq::kAfter;
      return ParseUint(arg, &p.freq_a);
    }
    if (ParseUint(text, &p.freq_a) && p.freq_a > 0) {
      p.freq = Freq::kTimes;
      return true;
    }
    return false;
  };
  if (!freq.empty()) {
    if (!parse_freq(freq)) {
      return SetError(error, "bad fail-point frequency: '" +
                                 std::string(freq) + "'");
    }
    have_freq = true;
    rest = rest.substr(star + 1);
  }

  // Action (or a bare frequency, which defaults to error(EIO)).
  if (rest == "error") {
    p.action = Action::kError;
    p.error_code = EIO;
  } else if (std::string_view arg = CallArg(rest, "error"); !arg.empty()) {
    p.action = Action::kError;
    if (!ParseErrno(arg, &p.error_code)) {
      return SetError(error,
                      "bad fail-point errno: '" + std::string(arg) + "'");
    }
  } else if (std::string_view arg = CallArg(rest, "delay"); !arg.empty()) {
    p.action = Action::kDelay;
    uint64_t ms = 0;
    if (!ParseUint(arg, &ms) || ms > 60'000) {
      return SetError(error,
                      "bad fail-point delay: '" + std::string(arg) + "'");
    }
    p.delay_ms = static_cast<uint32_t>(ms);
  } else if (!have_freq && parse_freq(rest)) {
    p.action = Action::kError;  // bare frequency: "1in5", "nth(3)", "2"
    p.error_code = EIO;
  } else {
    return SetError(error,
                    "bad fail-point spec: '" + std::string(spec) + "'");
  }
  *out = p;
  return true;
}

bool FailPointRegistry::Set(std::string_view name, std::string_view spec,
                            std::string* error) {
  if (name.empty()) return SetError(error, "empty fail-point name");
  if (spec == "off") {
    Clear(name);
    return true;
  }
  Point p;
  if (!ParseSpec(spec, &p, error)) return false;
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = points_.insert_or_assign(std::string(name), p);
  (void)it;
  if (inserted) g_active_points.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool FailPointRegistry::Configure(std::string_view list, std::string* error) {
  size_t begin = 0;
  while (begin <= list.size()) {
    size_t end = list.find(';', begin);
    if (end == std::string_view::npos) end = list.size();
    const std::string_view entry = list.substr(begin, end - begin);
    begin = end + 1;
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return SetError(error, "bad fail-point entry (want name=spec): '" +
                                 std::string(entry) + "'");
    }
    if (!Set(entry.substr(0, eq), entry.substr(eq + 1), error)) return false;
  }
  return true;
}

void FailPointRegistry::Clear(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  if (it != points_.end()) {
    points_.erase(it);
    g_active_points.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FailPointRegistry::ClearAll() {
  std::lock_guard<std::mutex> lock(mu_);
  g_active_points.fetch_sub(static_cast<int>(points_.size()),
                            std::memory_order_relaxed);
  points_.clear();
}

void FailPointRegistry::SetSeed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  rng_state_ = seed;
}

uint64_t FailPointRegistry::NextRandom() { return Splitmix64(&rng_state_); }

FaultHit FailPointRegistry::Evaluate(std::string_view name) {
  uint32_t delay_ms = 0;
  FaultHit hit;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = points_.find(name);
    if (it == points_.end()) return hit;
    Point& p = it->second;
    ++p.hits;
    bool fire = false;
    switch (p.freq) {
      case Freq::kAlways:
        fire = true;
        break;
      case Freq::kProb:
        fire = NextRandom() % p.freq_b < p.freq_a;
        break;
      case Freq::kNth:
        fire = p.hits == p.freq_a;
        break;
      case Freq::kAfter:
        fire = p.hits > p.freq_a;
        break;
      case Freq::kTimes:
        fire = p.hits <= p.freq_a;
        break;
    }
    if (!fire) return hit;
    ++p.fires;
    if (p.action == Action::kError) {
      hit.fired = true;
      hit.error_code = p.error_code;
    } else {
      delay_ms = p.delay_ms;  // sleep outside the lock
    }
  }
  if (delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  return hit;
}

uint64_t FailPointRegistry::HitCount(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.hits;
}

uint64_t FailPointRegistry::FireCount(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.fires;
}

std::vector<std::string> FailPointRegistry::ActiveNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(points_.size());
  for (const auto& [name, point] : points_) names.push_back(name);
  return names;
}

FaultHit EvaluateSlow(std::string_view name) {
  return FailPointRegistry::Global().Evaluate(name);
}

std::vector<FailPointSite> BuiltinFailPointSites() {
  // Keep sorted by name; one entry per base site. Suffixed per-instance
  // sites (".shard<i>" on the WAL/refreeze family, ".<i>" on shard.query)
  // follow the convention noted in their description.
  return {
      {"index_io.load", "index file read fails typed (open/parse path)"},
      {"index_io.save", "index file write fails typed"},
      {"live.refreeze",
       "background epoch rebuild fails; feeds the refreeze circuit "
       "breaker (per shard: live.refreeze.shard<i>)"},
      {"net.accept", "accept() fails; listener logs and keeps polling"},
      {"net.read", "connection read fails; connection is torn down"},
      {"net.write", "connection write fails; connection is torn down"},
      {"pool.post", "thread-pool task submission drops the task"},
      {"pool.task", "thread-pool task body fails/stalls (delay actions)"},
      {"recovery.replay", "WAL replay record fails -> torn-tail handling"},
      {"serve.admission", "admission sheds the request (typed rejection)"},
      {"serve.worker", "serving worker stalls (delay) before batch pickup"},
      {"shard.query.<i>",
       "scatter probe of shard i errors (dropped from the merge, stall "
       "breaker trips) or stalls (delay; consecutive slow probes trip)"},
      {"snapshot.dir_fsync", "snapshot directory fsync fails"},
      {"snapshot.fsync", "snapshot data fsync fails"},
      {"snapshot.open", "snapshot temp-file open fails"},
      {"snapshot.rename", "snapshot atomic rename fails"},
      {"snapshot.write", "snapshot body write fails"},
      {"wal.append",
       "WAL record append fails; exhausting retries flips the index "
       "read-only (per shard: wal.append.shard<i>)"},
      {"wal.fsync",
       "WAL fsync fails (per shard: wal.fsync.shard<i>)"},
      {"wal.open", "WAL open at boot fails (per shard: wal.open.shard<i>)"},
      {"wal.short_write",
       "WAL append writes a short prefix, simulating a torn record "
       "(per shard: wal.short_write.shard<i>)"},
      {"wal.truncate",
       "WAL truncate (checkpoint / torn-tail repair) fails "
       "(per shard: wal.truncate.shard<i>)"},
  };
}

}  // namespace esd::fault
