#ifndef ESD_FAULT_RETRY_H_
#define ESD_FAULT_RETRY_H_

#include <chrono>
#include <thread>
#include <utility>

namespace esd::fault {

/// Capped exponential backoff: attempt n (1-based) sleeps
/// min(base_delay * 2^(n-1), max_delay) before retrying. Used by the live
/// index for WAL append/fsync retries; delays default small because the
/// write path holds its mutex across the retry loop.
struct RetryPolicy {
  int max_attempts = 4;
  std::chrono::microseconds base_delay{1000};
  std::chrono::microseconds max_delay{8000};

  std::chrono::microseconds DelayFor(int attempt) const {
    if (attempt < 1 || base_delay.count() <= 0) {
      return std::chrono::microseconds{0};
    }
    // Shift-safe doubling: saturate at max_delay instead of overflowing.
    std::chrono::microseconds d = base_delay;
    for (int i = 1; i < attempt && d < max_delay; ++i) d += d;
    return d < max_delay ? d : max_delay;
  }
};

struct RetryOutcome {
  bool ok = false;
  int attempts = 0;  ///< calls made to fn (>= 1 unless max_attempts < 1)
};

/// Calls fn() (returning bool) up to policy.max_attempts times, sleeping
/// the policy's backoff between attempts. Zero/negative base_delay retries
/// without sleeping (the chaos tests run this way to stay deterministic).
template <typename Fn>
RetryOutcome RetryWithBackoff(const RetryPolicy& policy, Fn&& fn) {
  RetryOutcome outcome;
  const int attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    ++outcome.attempts;
    if (std::forward<Fn>(fn)()) {
      outcome.ok = true;
      return outcome;
    }
    if (attempt == attempts) break;
    const auto delay = policy.DelayFor(attempt);
    if (delay.count() > 0) std::this_thread::sleep_for(delay);
  }
  return outcome;
}

}  // namespace esd::fault

#endif  // ESD_FAULT_RETRY_H_
