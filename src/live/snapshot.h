#ifndef ESD_LIVE_SNAPSHOT_H_
#define ESD_LIVE_SNAPSHOT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/dynamic_index.h"
#include "core/frozen_index.h"
#include "graph/dynamic_graph.h"
#include "graph/graph.h"
#include "live/wal.h"
#include "util/thread_pool.h"

namespace esd::live {

/// One published read epoch: an immutable FrozenEsdIndex plus the update
/// watermark it reflects. Readers pin an epoch with one shared_ptr copy and
/// keep serving from it for as long as they like — publication of a newer
/// epoch never invalidates a pinned one (RCU semantics: old epochs are
/// reclaimed when the last reader drops its pin).
struct EpochSnapshot {
  core::FrozenEsdIndex index;
  uint64_t epoch = 0;        ///< 0 for the boot snapshot, +1 per publish
  uint64_t applied_seq = 0;  ///< last WAL seq folded into `index`
  std::chrono::steady_clock::time_point published_at{};

  /// Age of this epoch (now - publish time), the serving-staleness signal.
  double AgeSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         published_at)
        .count();
  }
};

/// The persisted half of a checkpoint: the writer graph plus its update
/// watermark ("ESDS" file: header, then — v2 only — u32 scorer id, u64
/// applied_seq, u32 num_vertices, length-prefixed edge array, trailing u64
/// FNV-1a checksum, same conventions as index_io, written atomically via
/// tmp-file + rename). v1 files carry no scorer id and load as kEsd; new
/// snapshots are always written v2.
struct GraphSnapshotData {
  uint64_t applied_seq = 0;
  graph::VertexId num_vertices = 0;
  std::vector<graph::Edge> edges;
  core::ScorerKind scorer = core::ScorerKind::kEsd;
};

bool SaveGraphSnapshot(const std::string& path, const graph::DynamicGraph& g,
                       uint64_t applied_seq, std::string* error,
                       core::ScorerKind scorer = core::ScorerKind::kEsd);
bool LoadGraphSnapshot(const std::string& path, GraphSnapshotData* out,
                       std::string* error);

/// Called when the post-rename directory fsync of an atomic snapshot write
/// fails. The snapshot data itself is durable (file fsynced before rename);
/// only the rename's directory entry might not survive a power cut, so this
/// is a warning, not a write failure — but it is no longer silent: the
/// esd_snapshot_dir_fsync_failures counter on MetricRegistry::Global() is
/// bumped and this handler (process-wide; tests install their own) runs.
using SnapshotDirFsyncHandler =
    std::function<void(const std::string& dir, int error_code)>;

/// Installs `handler` (empty = counter-only) and returns the previous one.
SnapshotDirFsyncHandler SetSnapshotDirFsyncHandler(
    SnapshotDirFsyncHandler handler);

/// Writer-side state of the live index: owns the maintained
/// DynamicEsdIndex (Section V's Algorithms 4/5 keep it exact under edge
/// updates) and periodically re-freezes it into an immutable
/// FrozenEsdIndex published through an RCU-style std::shared_ptr swap.
///
/// Concurrency contract:
///   * Apply/ApplyBatch/RefreezeNow/GraphCopy serialize on one writer
///     mutex; callers (LiveEsdIndex) add their own WAL ordering on top.
///   * Current() never blocks on writers: one shared_ptr copy under a
///     dedicated publication mutex whose critical sections are O(1)
///     pointer swaps (a refreeze builds the new image under the writer
///     lock, outside the publication lock).
///   * ScheduleRefreeze() coalesces: at most one background refreeze is
///     queued on the pool at a time.
class EpochSnapshotManager {
 public:
  /// Restricts which edges each PUBLISHED epoch serves; the writer index
  /// itself always maintains the full graph (so recovery, checkpoints, and
  /// per-edge maintenance stay whole-graph exact — scores depend on global
  /// 2-hop structure). A shard passes its ownership predicate here: every
  /// refreeze is masked through core::FilterFrozenIndex before readers see
  /// it, partitioning serving memory while write work stays replicated.
  using ServeFilter = std::function<bool(graph::Edge)>;

  /// Bootstraps the writer index from `base` (a from-scratch build under
  /// `scorer` — the ESD 4-clique build for the default EsdScorer()) and
  /// publishes epoch 0 covering `base_seq`. `scorer` must outlive the
  /// manager; the built-in scorers are process-lifetime singletons.
  /// `fault_site_suffix` renames the "live.refreeze" fail point for this
  /// instance (per-shard chaos targeting); empty keeps the classic name.
  EpochSnapshotManager(const graph::Graph& base, uint64_t base_seq,
                       unsigned pool_threads,
                       const core::DiversityScorer& scorer =
                           core::EsdScorer(),
                       ServeFilter serve_filter = {},
                       const std::string& fault_site_suffix = "");

  /// Joins in-flight background refreezes (the pool drains before exit).
  ~EpochSnapshotManager() = default;

  EpochSnapshotManager(const EpochSnapshotManager&) = delete;
  EpochSnapshotManager& operator=(const EpochSnapshotManager&) = delete;

  /// Applies one update at watermark `seq` to the writer index, growing
  /// the vertex set as needed (up to `max_vertex_id`). Returns true if the
  /// update changed the graph ("effective"); false for no-ops (duplicate
  /// insert, missing delete, self-loop) and for out-of-bounds endpoints
  /// (*error set in that last case when non-null).
  bool Apply(const WalRecord& record, graph::VertexId max_vertex_id,
             std::string* error);

  /// Rebuilds the frozen image from the writer index and publishes it as a
  /// new epoch. Synchronous; serializes with Apply. Returns false when the
  /// rebuild failed (only possible via the live.refreeze fail point today):
  /// the previous epoch stays published and the circuit breaker counts the
  /// failure — after `breaker_threshold` consecutive failures the breaker
  /// opens and ScheduleRefreeze() skips work until `breaker_cooldown` has
  /// passed, at which point the next schedule is the retry. A success
  /// closes the breaker.
  bool RefreezeNow();

  /// Queues RefreezeNow on the pool unless one is already queued or the
  /// breaker is open and still cooling down.
  void ScheduleRefreeze();

  /// Called after every successful publish (outside the publication lock)
  /// with the new epoch id and its applied_seq watermark — the hook the
  /// serving layer's epoch-keyed result cache uses to rotate generations
  /// proactively instead of waiting for the first post-swap lookup.
  /// Discarded stale publishes (see publish_races) never fire it. May be
  /// invoked from the background refreeze pool; keep it cheap. Replaces
  /// any previous listener; empty clears.
  using EpochListener = std::function<void(uint64_t epoch, uint64_t seq)>;
  void SetEpochListener(EpochListener listener);

  /// Reconfigures the refreeze circuit breaker (threshold in consecutive
  /// failures; cooldown before a retry is allowed through).
  void ConfigureBreaker(int threshold, std::chrono::milliseconds cooldown);

  bool breaker_open() const {
    return breaker_open_.load(std::memory_order_relaxed);
  }
  uint64_t refreeze_failures() const {
    return refreeze_failures_.load(std::memory_order_relaxed);
  }
  /// Refreezes skipped because the breaker was open.
  uint64_t refreezes_skipped() const {
    return refreezes_skipped_.load(std::memory_order_relaxed);
  }
  /// Stale publishes discarded by the seq guard: a refreeze that froze at
  /// an older applied_seq but reached Publish after a newer one. Without
  /// the guard these would roll readers (and every epoch-keyed cache
  /// generation) back to a stale image.
  uint64_t publish_races() const {
    return publish_races_.load(std::memory_order_relaxed);
  }

  /// The current epoch (pin by keeping the shared_ptr). Never null.
  std::shared_ptr<const EpochSnapshot> Current() const {
    std::lock_guard<std::mutex> lock(published_mu_);
    return published_;
  }

  /// Copy of the writer graph and its watermark, for checkpoint persistence.
  void GraphCopy(graph::DynamicGraph* out, uint64_t* applied_seq) const;

  uint64_t applied_seq() const {
    return applied_seq_.load(std::memory_order_relaxed);
  }
  uint64_t epochs_published() const {
    return epochs_published_.load(std::memory_order_relaxed);
  }

  /// Test/diagnostic access to the writer index. Not synchronized: callers
  /// must quiesce writers first.
  const core::DynamicEsdIndex& writer_unsynchronized() const {
    return writer_;
  }

 private:
  void Publish(core::FrozenEsdIndex frozen, uint64_t seq);

  /// Immutable after construction; applied to every freeze before publish.
  const ServeFilter serve_filter_;
  const std::string refreeze_site_;

  mutable std::mutex mu_;  // guards writer_ and the breaker bookkeeping
  core::DynamicEsdIndex writer_;
  bool refreeze_queued_ = false;

  // Refreeze circuit breaker (guarded by mu_ except the atomics, which are
  // also read lock-free by Stats/health reporting).
  int breaker_threshold_ = 3;
  std::chrono::milliseconds breaker_cooldown_{100};
  int consecutive_failures_ = 0;
  std::chrono::steady_clock::time_point breaker_opened_at_{};
  std::atomic<bool> breaker_open_{false};
  std::atomic<uint64_t> refreeze_failures_{0};
  std::atomic<uint64_t> refreezes_skipped_{0};

  std::atomic<uint64_t> applied_seq_;
  std::atomic<uint64_t> epochs_published_{0};
  std::atomic<uint64_t> publish_races_{0};

  /// Publication lock: both sides hold it only for one shared_ptr copy or
  /// swap, so readers never wait on an index build. (std::atomic<shared_ptr>
  /// would do, but libstdc++'s lock-bit implementation is opaque to TSan.)
  /// Publish's staleness guard lives under this lock too: an incoming
  /// epoch whose applied_seq is older than the published one is discarded,
  /// which makes (epoch id, applied_seq) jointly monotone — the invariant
  /// the serving layer's result cache keys on.
  mutable std::mutex published_mu_;
  std::shared_ptr<const EpochSnapshot> published_;

  /// Epoch-change notification (guarded separately: the listener can be
  /// installed while refreezes are in flight, and firing it must not hold
  /// published_mu_).
  mutable std::mutex listener_mu_;
  EpochListener listener_;

  /// Declared last: destroyed first, which drains any queued refreeze
  /// while the members it touches are still alive.
  util::ThreadPool pool_;
};

}  // namespace esd::live

#endif  // ESD_LIVE_SNAPSHOT_H_
