#ifndef ESD_LIVE_LIVE_INDEX_H_
#define ESD_LIVE_LIVE_INDEX_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/query_engine.h"
#include "graph/graph.h"
#include "live/recovery.h"
#include "live/snapshot.h"
#include "live/wal.h"
#include "obs/metrics.h"

namespace esd::live {

/// Configuration of one live index instance.
struct LiveOptions {
  std::string wal_path;       ///< required
  std::string snapshot_path;  ///< optional: empty disables checkpoints
  /// Re-freeze (publish a new read epoch) every this many applied updates;
  /// 0 disables automatic refreezes (callers drive RefreezeNow/Checkpoint).
  uint64_t refreeze_every = 256;
  /// fsync the WAL once per Apply/ApplyBatch call (the durability knob;
  /// turning it off trades crash durability of the newest batch for
  /// throughput — recovery still works, it just replays less).
  bool fsync_on_batch = true;
  /// Hard bound on vertex ids accepted by inserts (auto-grow limit).
  graph::VertexId max_vertex_id = (1u << 22);
  /// Threads of the background refreeze pool.
  unsigned pool_threads = 2;
  /// Metrics home; null = obs::MetricRegistry::Global().
  obs::MetricRegistry* registry = nullptr;
};

/// One update submitted to the live index.
struct LiveUpdate {
  UpdateKind kind = UpdateKind::kInsert;
  graph::VertexId u = 0;
  graph::VertexId v = 0;
};

/// Point-in-time counters of a live index.
struct LiveStats {
  uint64_t applied_seq = 0;      ///< newest durable+applied update
  uint64_t inserts = 0;          ///< effective inserts since Open
  uint64_t deletes = 0;          ///< effective deletes since Open
  uint64_t noops = 0;            ///< updates that did not change the graph
  uint64_t refreezes = 0;        ///< epochs published since Open (boot incl.)
  uint64_t checkpoints = 0;      ///< successful Checkpoint() calls
  uint64_t wal_bytes = 0;        ///< current WAL file size
  uint64_t snapshot_epoch = 0;   ///< epoch id of the current read snapshot
  uint64_t snapshot_seq = 0;     ///< watermark of the current read snapshot
  double snapshot_age_s = 0;     ///< age of the current read snapshot
  uint64_t snapshot_lag = 0;     ///< applied_seq - snapshot_seq
  uint64_t recovered_replayed = 0;  ///< WAL records folded in at Open
};

/// The live serving index: WAL-backed ingestion in front of an
/// EpochSnapshotManager, recovered on open.
///
/// Write path (Apply/ApplyBatch, serialized on one mutex):
///   1. append the update(s) to the WAL, fsync once per call (durability
///      point — an update is acknowledged only once it would survive
///      SIGKILL),
///   2. apply to the writer-side DynamicEsdIndex (paper Section V
///      maintenance),
///   3. every `refreeze_every` applied updates, queue a background
///      re-freeze that publishes a fresh immutable FrozenEsdIndex epoch.
///
/// Read path: CurrentSnapshot()/CurrentEngine() — one O(1) shared_ptr
/// copy; readers keep serving their pinned epoch while newer ones publish
/// (RCU). EngineProvider() packages this for EsdQueryService, which pins
/// one snapshot per batch.
///
/// Checkpoint(): publish + persist a graph snapshot, then truncate the WAL.
/// Crash-safe in every interleaving because records carry sequence numbers
/// and recovery skips those at or below the snapshot watermark.
class LiveEsdIndex {
 public:
  /// Recovers durable state (snapshot + WAL suffix; falls back to
  /// `bootstrap` when neither exists), truncates any torn WAL tail, opens
  /// the log for appending, and publishes the boot epoch. Returns null
  /// with *error set on unrecoverable state.
  static std::unique_ptr<LiveEsdIndex> Open(const graph::Graph& bootstrap,
                                            const LiveOptions& options,
                                            std::string* error);

  ~LiveEsdIndex() = default;
  LiveEsdIndex(const LiveEsdIndex&) = delete;
  LiveEsdIndex& operator=(const LiveEsdIndex&) = delete;

  /// Applies one update durably. Returns false on WAL/filesystem errors or
  /// an out-of-bounds vertex id; graph no-ops (duplicate insert, missing
  /// delete) return true and count in Stats().noops.
  bool Apply(const LiveUpdate& update, std::string* error);

  /// Applies a batch with one fsync at the end (the amortized write path).
  /// Stops at the first hard error (*error set; earlier updates remain
  /// applied and durable). Returns the number of updates processed.
  size_t ApplyBatch(std::span<const LiveUpdate> updates, std::string* error);

  /// Publishes a fresh epoch, persists the graph snapshot, truncates the
  /// WAL. No-op-with-error when options.snapshot_path is empty.
  bool Checkpoint(std::string* error);

  /// Synchronous epoch publish (also available through the background
  /// refreeze schedule).
  void RefreezeNow() { manager_->RefreezeNow(); }

  /// The current read epoch; pin by holding the shared_ptr.
  std::shared_ptr<const EpochSnapshot> CurrentSnapshot() const {
    return manager_->Current();
  }

  /// The current epoch's engine, as an aliasing shared_ptr: the engine
  /// stays valid exactly as long as the returned pointer lives.
  std::shared_ptr<const core::EsdQueryEngine> CurrentEngine() const {
    auto snap = manager_->Current();
    return std::shared_ptr<const core::EsdQueryEngine>(snap, &snap->index);
  }

  /// Provider functor for EsdQueryService's engine-swap serving mode.
  std::function<std::shared_ptr<const core::EsdQueryEngine>()>
  EngineProvider() const {
    return [this] { return CurrentEngine(); };
  }

  LiveStats Stats() const;

  /// Pushes the esd_live_* gauges/counters into the configured registry.
  void ExportMetrics() const;

  /// Recovery outcome of Open (tail status, replayed records, ...).
  const RecoveredState& recovery() const { return recovered_; }

  const LiveOptions& options() const { return options_; }

 private:
  LiveEsdIndex(const LiveOptions& options, RecoveredState recovered);

  LiveOptions options_;
  RecoveredState recovered_;

  /// Serializes the write path: WAL append order == apply order == seq
  /// order. (Lock order: live_mu_ before the manager's writer mutex.)
  mutable std::mutex live_mu_;
  WalWriter wal_;
  uint64_t next_seq_ = 1;
  uint64_t since_refreeze_ = 0;
  uint64_t inserts_ = 0;
  uint64_t deletes_ = 0;
  uint64_t noops_ = 0;
  uint64_t checkpoints_ = 0;

  std::unique_ptr<EpochSnapshotManager> manager_;
};

}  // namespace esd::live

#endif  // ESD_LIVE_LIVE_INDEX_H_
