#ifndef ESD_LIVE_LIVE_INDEX_H_
#define ESD_LIVE_LIVE_INDEX_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/query_engine.h"
#include "fault/retry.h"
#include "graph/graph.h"
#include "live/recovery.h"
#include "live/snapshot.h"
#include "live/wal.h"
#include "obs/health.h"
#include "obs/metrics.h"

namespace esd::live {

/// Configuration of one live index instance.
struct LiveOptions {
  std::string wal_path;       ///< required
  std::string snapshot_path;  ///< optional: empty disables checkpoints
  /// Diversity scorer this index maintains. The WAL and snapshot files
  /// are stamped with it: opening a directory written under a different
  /// scorer fails typed instead of replaying the wrong semantics.
  core::ScorerKind scorer = core::ScorerKind::kEsd;
  /// Re-freeze (publish a new read epoch) every this many applied updates;
  /// 0 disables automatic refreezes (callers drive RefreezeNow/Checkpoint).
  uint64_t refreeze_every = 256;
  /// fsync the WAL once per Apply/ApplyBatch call (the durability knob;
  /// turning it off trades crash durability of the newest batch for
  /// throughput — recovery still works, it just replays less).
  bool fsync_on_batch = true;
  /// Hard bound on vertex ids accepted by inserts (auto-grow limit).
  graph::VertexId max_vertex_id = (1u << 22);
  /// Threads of the background refreeze pool.
  unsigned pool_threads = 2;
  /// Metrics home; null = obs::MetricRegistry::Global().
  obs::MetricRegistry* registry = nullptr;
  /// Capped-exponential-backoff policy for failed WAL appends and fsyncs.
  /// Exhausting it flips the index read-only (writes rejected typed,
  /// reads keep serving the last good epoch).
  fault::RetryPolicy wal_retry;
  /// While read-only, how long between single-attempt heal probes. The
  /// first write after the interval elapses tries the WAL once; success
  /// heals the index, failure re-arms the interval.
  std::chrono::milliseconds heal_retry_interval{50};
  /// Refreeze circuit breaker: consecutive rebuild failures before it
  /// opens, and how long it stays open before letting a retry through.
  int refreeze_breaker_threshold = 3;
  std::chrono::milliseconds refreeze_breaker_cooldown{100};
  /// Restricts the edges published read epochs serve (see
  /// EpochSnapshotManager::ServeFilter). The WAL, writer index, recovery,
  /// and checkpoints all stay whole-graph; only the frozen images readers
  /// pin are masked. Empty (default) serves everything.
  EpochSnapshotManager::ServeFilter serve_filter;
  /// Suffix appended to this instance's fail-point site names
  /// ("wal.append" -> "wal.append.shard2", "live.refreeze" likewise) so a
  /// chaos schedule can fail one shard's durability path in isolation.
  /// Empty (default) keeps the process-classic names.
  std::string fault_site_suffix;
};

/// One update submitted to the live index.
struct LiveUpdate {
  UpdateKind kind = UpdateKind::kInsert;
  graph::VertexId u = 0;
  graph::VertexId v = 0;
};

/// Typed outcome of a write call — the contract degraded serving runs on.
enum class ApplyStatus : uint8_t {
  kOk = 0,
  kBounds,    ///< out-of-range vertex id; nothing was logged
  kWalError,  ///< WAL retries exhausted on THIS call; index is now read-only
  kDegraded,  ///< index was already read-only; write rejected untried (or
              ///< the periodic heal probe just failed)
};

const char* ApplyStatusName(ApplyStatus status);

/// What a typed write call did. `processed` updates were applied to the
/// in-memory writer index; on kOk they are also durable. On kWalError the
/// in-memory state may be ahead of the log (the failing update and
/// everything after it were NOT applied; with fsync_on_batch the batch's
/// durability is not guaranteed until the next successful sync).
struct ApplyResult {
  size_t processed = 0;
  ApplyStatus status = ApplyStatus::kOk;
  std::string message;  ///< human-readable cause when status != kOk
};

/// Point-in-time counters of a live index.
struct LiveStats {
  uint64_t applied_seq = 0;      ///< newest durable+applied update
  uint64_t inserts = 0;          ///< effective inserts since Open
  uint64_t deletes = 0;          ///< effective deletes since Open
  uint64_t noops = 0;            ///< updates that did not change the graph
  uint64_t refreezes = 0;        ///< epochs published since Open (boot incl.)
  uint64_t checkpoints = 0;      ///< successful Checkpoint() calls
  uint64_t wal_bytes = 0;        ///< current WAL file size
  uint64_t snapshot_epoch = 0;   ///< epoch id of the current read snapshot
  uint64_t snapshot_seq = 0;     ///< watermark of the current read snapshot
  double snapshot_age_s = 0;     ///< age of the current read snapshot
  uint64_t snapshot_lag = 0;     ///< applied_seq - snapshot_seq
  uint64_t recovered_replayed = 0;  ///< WAL records folded in at Open

  // Fault posture (PR 5): retries, failures, and the degraded-mode flags.
  bool read_only = false;            ///< WAL unavailable; writes rejected
  bool breaker_open = false;         ///< refreeze circuit breaker is open
  uint64_t wal_retries = 0;          ///< extra WAL attempts beyond the first
  uint64_t wal_append_failures = 0;  ///< WAL calls that exhausted retries
  uint64_t degraded_rejections = 0;  ///< writes bounced while read-only
  uint64_t heals = 0;                ///< read-only -> ok transitions
  uint64_t checkpoint_failures = 0;  ///< Checkpoint() calls that failed
  uint64_t refreeze_failures = 0;    ///< failed epoch rebuilds
  uint64_t refreezes_skipped = 0;    ///< rebuilds skipped by the open breaker
  uint64_t wal_eintr_retries = 0;    ///< EINTR retries absorbed by appends
  uint64_t publish_races = 0;        ///< stale publishes discarded by seq guard
};

/// The live serving index: WAL-backed ingestion in front of an
/// EpochSnapshotManager, recovered on open.
///
/// Write path (Apply/ApplyBatch, serialized on one mutex):
///   1. append the update(s) to the WAL, fsync once per call (durability
///      point — an update is acknowledged only once it would survive
///      SIGKILL),
///   2. apply to the writer-side DynamicEsdIndex (paper Section V
///      maintenance),
///   3. every `refreeze_every` applied updates, queue a background
///      re-freeze that publishes a fresh immutable FrozenEsdIndex epoch.
///
/// Read path: CurrentSnapshot()/CurrentEngine() — one O(1) shared_ptr
/// copy; readers keep serving their pinned epoch while newer ones publish
/// (RCU). EngineProvider() packages this for EsdQueryService, which pins
/// one snapshot per batch.
///
/// Checkpoint(): publish + persist a graph snapshot, then truncate the WAL.
/// Crash-safe in every interleaving because records carry sequence numbers
/// and recovery skips those at or below the snapshot watermark.
class LiveEsdIndex {
 public:
  /// Recovers durable state (snapshot + WAL suffix; falls back to
  /// `bootstrap` when neither exists), truncates any torn WAL tail, opens
  /// the log for appending, and publishes the boot epoch. Returns null
  /// with *error set on unrecoverable state.
  static std::unique_ptr<LiveEsdIndex> Open(const graph::Graph& bootstrap,
                                            const LiveOptions& options,
                                            std::string* error);

  ~LiveEsdIndex() = default;
  LiveEsdIndex(const LiveEsdIndex&) = delete;
  LiveEsdIndex& operator=(const LiveEsdIndex&) = delete;

  /// Applies one update durably. Returns false on WAL/filesystem errors or
  /// an out-of-bounds vertex id; graph no-ops (duplicate insert, missing
  /// delete) return true and count in Stats().noops. Thin wrapper over
  /// ApplyTyped for callers that only need bool + text.
  bool Apply(const LiveUpdate& update, std::string* error);

  /// Applies a batch with one fsync at the end (the amortized write path).
  /// Stops at the first hard error (*error set; earlier updates remain
  /// applied and durable). Returns the number of updates processed.
  /// Wrapper over ApplyBatchTyped.
  size_t ApplyBatch(std::span<const LiveUpdate> updates, std::string* error);

  /// Typed single-update write (see ApplyResult for the contract).
  ApplyResult ApplyTyped(const LiveUpdate& update);

  /// Typed batched write path, and the seat of fault hardening:
  ///   * each WAL append runs under options.wal_retry (capped exponential
  ///     backoff); transient failures are retried invisibly;
  ///   * exhausting the retries flips the index read-only: this call
  ///     returns kWalError, later writes return kDegraded instantly, and
  ///     reads keep serving the last published epoch untouched;
  ///   * while read-only, one single-attempt heal probe is allowed through
  ///     every options.heal_retry_interval; the first success heals the
  ///     index (the probing batch proceeds normally).
  ApplyResult ApplyBatchTyped(std::span<const LiveUpdate> updates);

  /// Publishes a fresh epoch, persists the graph snapshot, truncates the
  /// WAL. No-op-with-error when options.snapshot_path is empty.
  bool Checkpoint(std::string* error);

  /// Synchronous epoch publish (also available through the background
  /// refreeze schedule). False when the rebuild failed — the previous
  /// epoch stays published and the circuit breaker counts the failure.
  bool RefreezeNow() { return manager_->RefreezeNow(); }

  /// Fault posture for health endpoints: read-only beats an open refreeze
  /// breaker (degraded) beats ok.
  obs::HealthState Health() const;

  /// The current read epoch; pin by holding the shared_ptr.
  std::shared_ptr<const EpochSnapshot> CurrentSnapshot() const {
    return manager_->Current();
  }

  /// The current epoch's engine, as an aliasing shared_ptr: the engine
  /// stays valid exactly as long as the returned pointer lives.
  std::shared_ptr<const core::EsdQueryEngine> CurrentEngine() const {
    auto snap = manager_->Current();
    return std::shared_ptr<const core::EsdQueryEngine>(snap, &snap->index);
  }

  /// Provider functor for EsdQueryService's engine-swap serving mode.
  std::function<std::shared_ptr<const core::EsdQueryEngine>()>
  EngineProvider() const {
    return [this] { return CurrentEngine(); };
  }

  /// Installs a callback fired after every successful epoch publish (new
  /// epoch id + applied_seq watermark) — what a serving-layer result cache
  /// hooks to rotate generations as soon as an epoch swaps, instead of on
  /// the first post-swap lookup. Runs on the background refreeze pool;
  /// keep it cheap, and clear it (empty listener) before destroying
  /// anything it captures.
  void SetEpochListener(EpochSnapshotManager::EpochListener listener) {
    manager_->SetEpochListener(std::move(listener));
  }

  LiveStats Stats() const;

  /// Pushes the esd_live_* gauges/counters into the configured registry.
  void ExportMetrics() const;

  /// Recovery outcome of Open (tail status, replayed records, ...).
  const RecoveredState& recovery() const { return recovered_; }

  const LiveOptions& options() const { return options_; }

 private:
  LiveEsdIndex(const LiveOptions& options, RecoveredState recovered);

  /// Flips into read-only mode and arms the next heal probe. live_mu_ held.
  void EnterReadOnlyLocked();

  LiveOptions options_;
  RecoveredState recovered_;

  /// Serializes the write path: WAL append order == apply order == seq
  /// order. (Lock order: live_mu_ before the manager's writer mutex.)
  mutable std::mutex live_mu_;
  WalWriter wal_;
  uint64_t next_seq_ = 1;
  uint64_t since_refreeze_ = 0;
  uint64_t inserts_ = 0;
  uint64_t deletes_ = 0;
  uint64_t noops_ = 0;
  uint64_t checkpoints_ = 0;

  // Degraded-mode state (guarded by live_mu_; read_only_ is atomic so
  // Health() — a classification probe on sharded query paths — never
  // blocks behind a write or heal probe holding live_mu_).
  std::atomic<bool> read_only_{false};
  std::chrono::steady_clock::time_point next_probe_{};
  uint64_t wal_retries_ = 0;
  uint64_t wal_append_failures_ = 0;
  uint64_t degraded_rejections_ = 0;
  uint64_t heals_ = 0;
  uint64_t checkpoint_failures_ = 0;

  std::unique_ptr<EpochSnapshotManager> manager_;
};

}  // namespace esd::live

#endif  // ESD_LIVE_LIVE_INDEX_H_
