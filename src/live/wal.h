#ifndef ESD_LIVE_WAL_H_
#define ESD_LIVE_WAL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "core/scorer.h"
#include "graph/graph.h"

namespace esd::live {

/// One edge update as it flows through the live subsystem.
enum class UpdateKind : uint8_t { kInsert = 0, kDelete = 1 };

const char* UpdateKindName(UpdateKind kind);

/// One durable WAL entry: a sequence number (strictly increasing within a
/// log) plus the update it records. Sequence numbers let recovery skip
/// entries already folded into a persisted snapshot, which makes the
/// checkpoint protocol (persist snapshot, then truncate log) safe against
/// a crash between the two steps.
struct WalRecord {
  uint64_t seq = 0;
  UpdateKind kind = UpdateKind::kInsert;
  graph::VertexId u = 0;
  graph::VertexId v = 0;
};

/// Why replay stopped before the end of the file. Everything except
/// kBadFileHeader is a tolerated torn tail: the records before it are
/// valid and were delivered; recovery truncates the file back to
/// `valid_bytes` and serving continues.
enum class WalTailStatus : uint8_t {
  kClean = 0,          ///< EOF exactly at a record boundary
  kTruncatedRecord,    ///< partial record (or partial initial header) at EOF
  kChecksumMismatch,   ///< payload bytes do not match the stored checksum
  kOversizedRecord,    ///< length prefix exceeds kMaxWalRecordBytes
  kMalformedRecord,    ///< length prefix is not a v1 payload size
  kBadFileHeader,      ///< magic/version wrong: not our log, nothing replayed
};

const char* WalTailStatusName(WalTailStatus status);

/// Typed outcome of the last WalWriter operation, so the live index can
/// distinguish retryable IO errors (ENOSPC clearing, disk coming back)
/// from programming errors and from a short write that tore the tail.
enum class WalIoStatus : uint8_t {
  kOk = 0,
  kNotOpen,      ///< operation on a closed writer
  kIoError,      ///< write/fsync/truncate failed; errno in last_errno()
  kShortWrite,   ///< write stalled mid-record; tail repaired (or dirty)
};

const char* WalIoStatusName(WalIoStatus status);

/// Outcome of one ReplayWal pass.
struct WalReplayResult {
  uint64_t records = 0;     ///< valid records delivered to the callback
  uint64_t last_seq = 0;    ///< seq of the last valid record (0 if none)
  uint64_t valid_bytes = 0; ///< replayable prefix length, incl. file header
  WalTailStatus tail = WalTailStatus::kClean;
  /// Scorer the log belongs to (v2 header field; v1 logs are kEsd).
  core::ScorerKind scorer = core::ScorerKind::kEsd;
};

/// On-disk layout (native byte order, like every format in this repo):
///   v1 file header: magic "ESDW" + u32 version (1)
///   v2 file header: magic "ESDW" + u32 version (2) + u32 scorer id
///   records:        u32 payload_len | u64 fnv1a(payload) | payload
///   payload:        u64 seq | u8 kind | u32 u | u32 v      (17 bytes)
/// Both header versions replay; fresh logs are always written v2.
inline constexpr size_t kWalFileHeaderBytes = 8;
inline constexpr size_t kWalFileHeaderBytesV2 = 12;
inline constexpr size_t kWalRecordHeaderBytes = 12;
inline constexpr uint32_t kWalPayloadBytes = 17;
/// Hard bound on a record's claimed payload length. A corrupt or hostile
/// length prefix can therefore never drive an allocation: payloads are read
/// into a fixed stack buffer of this size.
inline constexpr uint32_t kMaxWalRecordBytes = 4096;

/// Streams every valid record of the log at `path` through `fn`, stopping
/// at EOF or at the first invalid byte (torn tail). A missing or empty
/// file replays zero records with a clean tail. Returns false only when
/// the file exists but is not an ESDW log (kBadFileHeader) or cannot be
/// read at all — *error is set and nothing is replayed; every torn-tail
/// case returns true with `result->tail` typed accordingly.
bool ReplayWal(const std::string& path,
               const std::function<void(const WalRecord&)>& fn,
               WalReplayResult* result, std::string* error);

/// Append-side handle on a WAL file. Append() buffers nothing: each record
/// is one write() syscall; durability is explicit via Sync() (fsync), which
/// the live index issues once per applied batch. Not thread-safe — the
/// live index serializes writers.
///
/// Failure handling: a failed or short Append() leaves no half-record
/// behind — the writer ftruncate()s the file back to the last record
/// boundary before returning, so a later retry appends to a clean tail.
/// If even that repair fails the tail is flagged dirty and every
/// subsequent Append() re-attempts the repair before writing.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Renames this writer's fail-point sites from the process-wide
  /// "wal.append"/"wal.fsync"/... to "wal.append<suffix>" etc. A sharded
  /// deployment gives each shard's writer its own suffix (".shard2"), so
  /// chaos schedules can fail exactly one shard's log while the rest of
  /// the fleet keeps appending. Call before Open; empty (the default)
  /// keeps the classic names.
  void SetFaultSiteSuffix(const std::string& suffix);

  /// Opens `path` for appending, creating it (with a fresh v2 file header
  /// stamped with `scorer`) if missing or empty. The caller must have
  /// truncated any torn tail first (recovery does); an existing file with
  /// a foreign or partial header is refused rather than clobbered, and so
  /// is a log whose header names a different scorer (v1 logs count as
  /// kEsd) — appending another scorer's updates would poison replay.
  bool Open(const std::string& path, std::string* error,
            core::ScorerKind scorer = core::ScorerKind::kEsd);

  /// Appends one record (not yet durable; call Sync()). On failure the
  /// typed cause is in last_status()/last_errno() and the file has been
  /// truncated back to the previous record boundary (see class comment).
  bool Append(const WalRecord& record, std::string* error);

  /// fsync: everything appended so far survives a crash/SIGKILL.
  bool Sync(std::string* error);

  /// Drops every record, keeping the file header — the checkpoint
  /// compaction step. Durable on return.
  bool TruncateAll(std::string* error);

  /// Current file size in bytes (header included).
  uint64_t SizeBytes() const { return bytes_; }

  /// Typed cause of the most recent operation's outcome.
  WalIoStatus last_status() const { return last_status_; }
  /// errno of the most recent kIoError (0 otherwise).
  int last_errno() const { return last_errno_; }
  /// Cumulative EINTR retries absorbed by append loops on this writer.
  uint64_t eintr_retries() const { return eintr_retries_; }
  /// True while a failed append's torn bytes could not be truncated away.
  bool tail_dirty() const { return tail_dirty_; }

  bool is_open() const { return fd_ >= 0; }
  void Close();

 private:
  bool RepairTail(std::string* error);

  // Fail-point site names, rewritable per instance (SetFaultSiteSuffix).
  std::string site_open_ = "wal.open";
  std::string site_append_ = "wal.append";
  std::string site_fsync_ = "wal.fsync";
  std::string site_truncate_ = "wal.truncate";
  std::string site_short_write_ = "wal.short_write";

  int fd_ = -1;
  uint64_t bytes_ = 0;
  /// Length of the file header Open() found or wrote (8 for an adopted v1
  /// log, 12 for v2) — TruncateAll must cut back to exactly this.
  uint64_t header_bytes_ = kWalFileHeaderBytes;
  WalIoStatus last_status_ = WalIoStatus::kOk;
  int last_errno_ = 0;
  uint64_t eintr_retries_ = 0;
  bool tail_dirty_ = false;
};

}  // namespace esd::live

#endif  // ESD_LIVE_WAL_H_
