#include "live/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>

#include "core/binary_format.h"
#include "fault/failpoint.h"
#include "util/posix_io.h"

namespace esd::live {

namespace {

constexpr char kWalMagic[4] = {'E', 'S', 'D', 'W'};
constexpr uint32_t kWalVersion = 1;        // 8-byte header, implicitly kEsd
constexpr uint32_t kWalVersionScorer = 2;  // 12-byte header with scorer id

void EncodeU32(char* dst, uint32_t v) { std::memcpy(dst, &v, sizeof(v)); }
void EncodeU64(char* dst, uint64_t v) { std::memcpy(dst, &v, sizeof(v)); }

uint32_t DecodeU32(const char* src) {
  uint32_t v;
  std::memcpy(&v, src, sizeof(v));
  return v;
}
uint64_t DecodeU64(const char* src) {
  uint64_t v;
  std::memcpy(&v, src, sizeof(v));
  return v;
}

void EncodePayload(const WalRecord& rec, char* dst) {
  EncodeU64(dst, rec.seq);
  dst[8] = static_cast<char>(rec.kind);
  EncodeU32(dst + 9, rec.u);
  EncodeU32(dst + 13, rec.v);
}

WalRecord DecodePayload(const char* src) {
  WalRecord rec;
  rec.seq = DecodeU64(src);
  rec.kind = static_cast<uint8_t>(src[8]) == 0 ? UpdateKind::kInsert
                                               : UpdateKind::kDelete;
  rec.u = DecodeU32(src + 9);
  rec.v = DecodeU32(src + 13);
  return rec;
}

bool SetError(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

}  // namespace

const char* UpdateKindName(UpdateKind kind) {
  return kind == UpdateKind::kInsert ? "insert" : "delete";
}

const char* WalIoStatusName(WalIoStatus status) {
  switch (status) {
    case WalIoStatus::kOk:
      return "ok";
    case WalIoStatus::kNotOpen:
      return "not-open";
    case WalIoStatus::kIoError:
      return "io-error";
    case WalIoStatus::kShortWrite:
      return "short-write";
  }
  return "?";
}

const char* WalTailStatusName(WalTailStatus status) {
  switch (status) {
    case WalTailStatus::kClean:
      return "clean";
    case WalTailStatus::kTruncatedRecord:
      return "truncated-record";
    case WalTailStatus::kChecksumMismatch:
      return "checksum-mismatch";
    case WalTailStatus::kOversizedRecord:
      return "oversized-record";
    case WalTailStatus::kMalformedRecord:
      return "malformed-record";
    case WalTailStatus::kBadFileHeader:
      return "bad-file-header";
  }
  return "?";
}

bool ReplayWal(const std::string& path,
               const std::function<void(const WalRecord&)>& fn,
               WalReplayResult* result, std::string* error) {
  *result = WalReplayResult{};
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    // A log that was never created replays as empty — the first Open()
    // writes it.
    struct stat st;
    if (::stat(path.c_str(), &st) != 0 && errno == ENOENT) return true;
    return SetError(error, "cannot open wal file " + path);
  }

  char header[kWalFileHeaderBytes];
  in.read(header, sizeof(header));
  const std::streamsize got = in.gcount();
  if (got == 0) return true;  // empty file: fresh log
  if (got < static_cast<std::streamsize>(sizeof(header))) {
    // The initial header write itself was torn; nothing was ever logged.
    result->tail = WalTailStatus::kTruncatedRecord;
    return true;
  }
  const uint32_t version = DecodeU32(header + 4);
  if (std::memcmp(header, kWalMagic, sizeof(kWalMagic)) != 0 ||
      (version != kWalVersion && version != kWalVersionScorer)) {
    result->tail = WalTailStatus::kBadFileHeader;
    return SetError(error, "bad wal header: " + path + " is not an ESDW log");
  }
  result->valid_bytes = kWalFileHeaderBytes;
  if (version == kWalVersionScorer) {
    char scorer_field[4];
    in.read(scorer_field, sizeof(scorer_field));
    if (in.gcount() < static_cast<std::streamsize>(sizeof(scorer_field))) {
      // Torn mid-header: nothing was ever logged.
      result->valid_bytes = 0;
      result->tail = WalTailStatus::kTruncatedRecord;
      return true;
    }
    const uint32_t raw = DecodeU32(scorer_field);
    if (!core::ValidScorerKind(raw)) {
      result->tail = WalTailStatus::kBadFileHeader;
      return SetError(error, "bad wal header: " + path +
                                 " names unknown scorer id " +
                                 std::to_string(raw));
    }
    result->scorer = static_cast<core::ScorerKind>(raw);
    result->valid_bytes = kWalFileHeaderBytesV2;
  }

  // Fixed stack buffer: a corrupt length prefix can never over-allocate.
  char payload[kMaxWalRecordBytes];
  char rec_header[kWalRecordHeaderBytes];
  while (true) {
    in.read(rec_header, sizeof(rec_header));
    const std::streamsize hdr_got = in.gcount();
    if (hdr_got == 0) break;  // clean EOF
    if (hdr_got < static_cast<std::streamsize>(sizeof(rec_header))) {
      result->tail = WalTailStatus::kTruncatedRecord;
      return true;
    }
    const uint32_t len = DecodeU32(rec_header);
    const uint64_t stored_sum = DecodeU64(rec_header + 4);
    if (len > kMaxWalRecordBytes) {
      result->tail = WalTailStatus::kOversizedRecord;
      return true;
    }
    if (len != kWalPayloadBytes) {
      result->tail = WalTailStatus::kMalformedRecord;
      return true;
    }
    in.read(payload, len);
    if (in.gcount() < static_cast<std::streamsize>(len)) {
      result->tail = WalTailStatus::kTruncatedRecord;
      return true;
    }
    if (core::Fnv1a(payload, len) != stored_sum) {
      result->tail = WalTailStatus::kChecksumMismatch;
      return true;
    }
    const WalRecord rec = DecodePayload(payload);
    if (fn) fn(rec);
    ++result->records;
    result->last_seq = rec.seq;
    result->valid_bytes += kWalRecordHeaderBytes + len;
  }
  return true;
}

WalWriter::~WalWriter() { Close(); }

void WalWriter::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void WalWriter::SetFaultSiteSuffix(const std::string& suffix) {
  site_open_ = "wal.open" + suffix;
  site_append_ = "wal.append" + suffix;
  site_fsync_ = "wal.fsync" + suffix;
  site_truncate_ = "wal.truncate" + suffix;
  site_short_write_ = "wal.short_write" + suffix;
}

bool WalWriter::Open(const std::string& path, std::string* error,
                     core::ScorerKind scorer) {
  Close();
  last_status_ = WalIoStatus::kOk;
  last_errno_ = 0;
  tail_dirty_ = false;
  if (const auto hit = ESD_FAILPOINT(site_open_)) {
    last_status_ = WalIoStatus::kIoError;
    last_errno_ = hit.error_code;
    return SetError(error, "cannot open wal file " + path + ": " +
                               std::strerror(hit.error_code) +
                               " [injected]");
  }
  fd_ = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd_ < 0) {
    last_status_ = WalIoStatus::kIoError;
    last_errno_ = errno;
    return SetError(error, "cannot open wal file " + path + ": " +
                               std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    Close();
    return SetError(error, "cannot stat wal file " + path);
  }
  bytes_ = static_cast<uint64_t>(st.st_size);
  if (bytes_ == 0) {
    // Fresh log: always the v2 header, stamped with the caller's scorer.
    char header[kWalFileHeaderBytesV2];
    std::memcpy(header, kWalMagic, sizeof(kWalMagic));
    EncodeU32(header + 4, kWalVersionScorer);
    EncodeU32(header + 8, static_cast<uint32_t>(scorer));
    const util::WriteResult wr = util::WriteFully(fd_, header, sizeof(header));
    eintr_retries_ += wr.eintr_retries;
    if (!wr.ok) {
      last_status_ =
          wr.short_write ? WalIoStatus::kShortWrite : WalIoStatus::kIoError;
      last_errno_ = wr.error_code;
      Close();
      return SetError(error, std::string("wal header write failed: ") +
                                 std::strerror(wr.error_code));
    }
    if (!Sync(error)) {
      Close();
      return false;
    }
    bytes_ = kWalFileHeaderBytesV2;
    header_bytes_ = kWalFileHeaderBytesV2;
    return true;
  }
  if (bytes_ < kWalFileHeaderBytes) {
    Close();
    return SetError(error, "wal file " + path +
                               " has a torn header; run recovery first");
  }
  // Verify we are appending to our own format, not someone else's file,
  // and to our own scorer's log, not another engine's.
  std::ifstream in(path, std::ios::binary);
  char header[kWalFileHeaderBytes];
  in.read(header, sizeof(header));
  const uint32_t version = in ? DecodeU32(header + 4) : 0;
  if (!in || std::memcmp(header, kWalMagic, sizeof(kWalMagic)) != 0 ||
      (version != kWalVersion && version != kWalVersionScorer)) {
    Close();
    return SetError(error, "bad wal header: " + path + " is not an ESDW log");
  }
  core::ScorerKind file_scorer = core::ScorerKind::kEsd;
  header_bytes_ = kWalFileHeaderBytes;
  if (version == kWalVersionScorer) {
    char scorer_field[4];
    in.read(scorer_field, sizeof(scorer_field));
    if (!in || bytes_ < kWalFileHeaderBytesV2) {
      Close();
      return SetError(error, "wal file " + path +
                                 " has a torn header; run recovery first");
    }
    const uint32_t raw = DecodeU32(scorer_field);
    if (!core::ValidScorerKind(raw)) {
      Close();
      return SetError(error, "bad wal header: " + path +
                                 " names unknown scorer id " +
                                 std::to_string(raw));
    }
    file_scorer = static_cast<core::ScorerKind>(raw);
    header_bytes_ = kWalFileHeaderBytesV2;
  }
  if (file_scorer != scorer) {
    Close();
    return SetError(
        error, "wal scorer mismatch: " + path + " belongs to scorer '" +
                   std::string(core::ScorerKindName(file_scorer)) +
                   "' but this index uses '" +
                   std::string(core::ScorerKindName(scorer)) + "'");
  }
  return true;
}

/// Truncate the file back to bytes_ — the last record boundary — so a
/// retried Append() never strands torn bytes under a new record. O_APPEND
/// writes land at the (restored) end of file, so no seek is needed.
bool WalWriter::RepairTail(std::string* error) {
  if (::ftruncate(fd_, static_cast<off_t>(bytes_)) != 0) {
    tail_dirty_ = true;
    return SetError(error, std::string("wal tail repair failed: ") +
                               std::strerror(errno));
  }
  tail_dirty_ = false;
  return true;
}

bool WalWriter::Append(const WalRecord& record, std::string* error) {
  if (fd_ < 0) {
    last_status_ = WalIoStatus::kNotOpen;
    return SetError(error, "wal writer is not open");
  }
  if (tail_dirty_ && !RepairTail(error)) {
    last_status_ = WalIoStatus::kIoError;
    last_errno_ = errno;
    return false;
  }
  if (const auto hit = ESD_FAILPOINT(site_append_)) {
    last_status_ = WalIoStatus::kIoError;
    last_errno_ = hit.error_code;
    return SetError(error, std::string("wal write failed: ") +
                               std::strerror(hit.error_code) + " [injected]");
  }
  char buf[kWalRecordHeaderBytes + kWalPayloadBytes];
  EncodePayload(record, buf + kWalRecordHeaderBytes);
  EncodeU32(buf, kWalPayloadBytes);
  EncodeU64(buf + 4, core::Fnv1a(buf + kWalRecordHeaderBytes,
                                 kWalPayloadBytes));
  const util::WriteResult wr =
      util::WriteFully(fd_, buf, sizeof(buf), site_short_write_.c_str());
  eintr_retries_ += wr.eintr_retries;
  if (!wr.ok) {
    last_status_ =
        wr.short_write ? WalIoStatus::kShortWrite : WalIoStatus::kIoError;
    last_errno_ = wr.error_code;
    // Drop whatever partial bytes reached the file; ignore the repair's
    // own error string so the caller sees the root cause, but keep the
    // dirty flag for the next attempt if it failed.
    if (wr.bytes_written > 0 || wr.short_write) RepairTail(nullptr);
    if (wr.short_write) {
      return SetError(error,
                      tail_dirty_
                          ? "wal write torn mid-record; tail repair failed"
                          : "wal write torn mid-record; tail repaired");
    }
    return SetError(error, std::string("wal write failed: ") +
                               std::strerror(wr.error_code));
  }
  last_status_ = WalIoStatus::kOk;
  last_errno_ = 0;
  bytes_ += sizeof(buf);
  return true;
}

bool WalWriter::Sync(std::string* error) {
  if (fd_ < 0) {
    last_status_ = WalIoStatus::kNotOpen;
    return SetError(error, "wal writer is not open");
  }
  if (const auto hit = ESD_FAILPOINT(site_fsync_)) {
    last_status_ = WalIoStatus::kIoError;
    last_errno_ = hit.error_code;
    return SetError(error, std::string("wal fsync failed: ") +
                               std::strerror(hit.error_code) + " [injected]");
  }
  if (::fsync(fd_) != 0) {
    last_status_ = WalIoStatus::kIoError;
    last_errno_ = errno;
    return SetError(error,
                    std::string("wal fsync failed: ") + std::strerror(errno));
  }
  last_status_ = WalIoStatus::kOk;
  last_errno_ = 0;
  return true;
}

bool WalWriter::TruncateAll(std::string* error) {
  if (fd_ < 0) {
    last_status_ = WalIoStatus::kNotOpen;
    return SetError(error, "wal writer is not open");
  }
  if (const auto hit = ESD_FAILPOINT(site_truncate_)) {
    last_status_ = WalIoStatus::kIoError;
    last_errno_ = hit.error_code;
    return SetError(error, std::string("wal truncate failed: ") +
                               std::strerror(hit.error_code) + " [injected]");
  }
  if (::ftruncate(fd_, static_cast<off_t>(header_bytes_)) != 0) {
    last_status_ = WalIoStatus::kIoError;
    last_errno_ = errno;
    return SetError(error, std::string("wal truncate failed: ") +
                               std::strerror(errno));
  }
  bytes_ = header_bytes_;
  tail_dirty_ = false;
  return Sync(error);
}

}  // namespace esd::live
