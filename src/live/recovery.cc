#include "live/recovery.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <utility>

#include "fault/failpoint.h"
#include "live/snapshot.h"
#include "obs/trace.h"

namespace esd::live {

namespace {

bool SetError(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

/// Replays one update onto the bare graph (no index maintenance — recovery
/// rebuilds the index once from the final graph, which is exactly the
/// from-scratch build the parity property compares against).
void ApplyToGraph(graph::DynamicGraph* g, const WalRecord& rec) {
  const graph::VertexId hi = std::max(rec.u, rec.v);
  if (rec.kind == UpdateKind::kInsert) {
    while (g->NumVertices() <= hi) g->AddVertex();
    g->InsertEdge(rec.u, rec.v);
  } else if (hi < g->NumVertices()) {
    g->EraseEdge(rec.u, rec.v);
  }
}

}  // namespace

bool Recover(const graph::Graph& bootstrap, const RecoveryOptions& options,
             RecoveredState* state, std::string* error) {
  ESD_TRACE_SPAN("live.replay");
  *state = RecoveredState{};
  if (const auto hit = ESD_FAILPOINT("recovery.replay")) {
    // Typed and retryable: no partial state escapes (the caller's
    // RecoveredState is freshly reset above), so a later Recover() call
    // starts clean.
    return SetError(error, std::string("recovery replay failed: ") +
                               std::strerror(hit.error_code) + " [injected]");
  }

  // 1. Base state: the checkpoint snapshot if one was persisted, otherwise
  //    the caller's bootstrap graph at watermark 0.
  std::error_code ec;
  if (!options.snapshot_path.empty() &&
      std::filesystem::exists(options.snapshot_path, ec)) {
    GraphSnapshotData snap;
    if (!LoadGraphSnapshot(options.snapshot_path, &snap, error)) {
      return false;  // a snapshot that exists but cannot be read is fatal
    }
    if (snap.scorer != options.expected_scorer) {
      return SetError(
          error,
          "snapshot scorer mismatch: " + options.snapshot_path +
              " belongs to scorer '" +
              std::string(core::ScorerKindName(snap.scorer)) +
              "' but recovery expects '" +
              std::string(core::ScorerKindName(options.expected_scorer)) +
              "'");
    }
    state->graph = graph::DynamicGraph(snap.num_vertices);
    for (const graph::Edge& e : snap.edges) state->graph.InsertEdge(e.u, e.v);
    state->snapshot_seq = snap.applied_seq;
    state->snapshot_loaded = true;
  } else {
    state->graph = graph::DynamicGraph(bootstrap);
  }

  // 2. WAL suffix: records at or below the snapshot watermark were already
  //    folded into the snapshot (a crash between "persist snapshot" and
  //    "truncate log" leaves them in the log — skipping by seq makes the
  //    checkpoint protocol idempotent).
  const uint64_t skip_through = state->snapshot_seq;
  if (!options.wal_path.empty()) {
    const bool ok = ReplayWal(
        options.wal_path,
        [state, skip_through](const WalRecord& rec) {
          if (rec.seq <= skip_through) return;
          ApplyToGraph(&state->graph, rec);
          ++state->replay_applied;
        },
        &state->wal, error);
    if (!ok) return false;
    if (state->wal.scorer != options.expected_scorer &&
        (state->wal.records > 0 ||
         state->wal.valid_bytes >= kWalFileHeaderBytes)) {
      // A log that replayed at least its header under another scorer's id
      // must not be adopted; an absent/empty/torn-header log carries no
      // scorer claim and stays usable.
      return SetError(
          error, "wal scorer mismatch: " + options.wal_path +
                     " belongs to scorer '" +
                     std::string(core::ScorerKindName(state->wal.scorer)) +
                     "' but recovery expects '" +
                     std::string(core::ScorerKindName(
                         options.expected_scorer)) +
                     "'");
    }

    // 3. Compact a torn tail so the writer can reopen the log for appends.
    if (options.truncate_torn_tail &&
        state->wal.tail != WalTailStatus::kClean) {
      std::filesystem::resize_file(options.wal_path, state->wal.valid_bytes,
                                   ec);
      if (ec) {
        return SetError(error, "cannot truncate torn wal tail of " +
                                   options.wal_path + ": " + ec.message());
      }
      state->wal_truncated = true;
    }
  }

  state->applied_seq = std::max(state->snapshot_seq, state->wal.last_seq);
  return true;
}

}  // namespace esd::live
