#ifndef ESD_LIVE_RECOVERY_H_
#define ESD_LIVE_RECOVERY_H_

#include <cstdint>
#include <string>

#include "graph/dynamic_graph.h"
#include "graph/graph.h"
#include "live/wal.h"

namespace esd::live {

/// Where a live index keeps its durable state.
struct RecoveryOptions {
  std::string wal_path;
  std::string snapshot_path;
  /// When true (the default), a torn WAL tail is truncated back to the
  /// last valid record so the log can be reopened for appending.
  bool truncate_torn_tail = true;
  /// Scorer this recovery serves. A snapshot or WAL stamped with a
  /// different scorer id is an unrecoverable mismatch (replaying another
  /// definition's updates would silently produce wrong scores); legacy
  /// files without an id count as kEsd.
  core::ScorerKind expected_scorer = core::ScorerKind::kEsd;
};

/// What Recover() reconstructed.
struct RecoveredState {
  graph::DynamicGraph graph;   ///< snapshot (or bootstrap) + WAL suffix
  uint64_t applied_seq = 0;    ///< watermark of `graph`
  uint64_t snapshot_seq = 0;   ///< watermark of the loaded snapshot (0 if none)
  bool snapshot_loaded = false;
  WalReplayResult wal;         ///< replay outcome, incl. typed tail status
  uint64_t replay_applied = 0; ///< WAL records folded in (seq > snapshot_seq)
  bool wal_truncated = false;  ///< a torn tail was cut back to valid_bytes
};

/// Rebuilds the last durable graph state: load the checkpoint snapshot if
/// one exists (else start from `bootstrap`), then replay the WAL suffix,
/// skipping records already covered by the snapshot's watermark. Torn WAL
/// tails are tolerated (replay stops at the last valid record; the tail is
/// truncated when options.truncate_torn_tail). Returns false — with *error
/// set — only on unrecoverable states: a corrupt snapshot file, a foreign
/// WAL file, or filesystem errors.
bool Recover(const graph::Graph& bootstrap, const RecoveryOptions& options,
             RecoveredState* state, std::string* error);

}  // namespace esd::live

#endif  // ESD_LIVE_RECOVERY_H_
