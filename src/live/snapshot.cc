#include "live/snapshot.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "core/binary_format.h"
#include "fault/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/posix_io.h"

namespace esd::live {

namespace {

constexpr char kSnapshotMagic[4] = {'E', 'S', 'D', 'S'};
constexpr uint32_t kSnapshotVersion = 1;        // no scorer id, reads as kEsd
constexpr uint32_t kSnapshotVersionScorer = 2;  // leading u32 scorer id

bool SetError(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

std::mutex g_dir_fsync_handler_mu;
SnapshotDirFsyncHandler g_dir_fsync_handler;

void ReportDirFsyncFailure(const std::string& dir, int error_code) {
  obs::MetricRegistry::Global()
      .GetCounter("esd_snapshot_dir_fsync_failures",
                  "post-rename directory fsyncs that failed (snapshot data "
                  "durable; the rename may not survive a power cut)")
      .Inc();
  SnapshotDirFsyncHandler handler;
  {
    std::lock_guard<std::mutex> lock(g_dir_fsync_handler_mu);
    handler = g_dir_fsync_handler;
  }
  if (handler) handler(dir, error_code);
}

/// Durable whole-file write: tmp file in the same directory, write + fsync +
/// close, rename over the target, fsync the directory. A crash at any point
/// leaves either the old snapshot or the new one, never a torn mix.
bool WriteFileAtomically(const std::string& path, const std::string& bytes,
                         std::string* error) {
  const std::string tmp = path + ".tmp";
  if (const auto hit = ESD_FAILPOINT("snapshot.open")) {
    return SetError(error, "cannot open " + tmp + " for writing: " +
                               std::strerror(hit.error_code) + " [injected]");
  }
  int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) {
    return SetError(error, "cannot open " + tmp + " for writing: " +
                               std::strerror(errno));
  }
  if (const auto hit = ESD_FAILPOINT("snapshot.write")) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return SetError(error, "snapshot write failed: " +
                               std::string(std::strerror(hit.error_code)) +
                               " [injected]");
  }
  const util::WriteResult wr = util::WriteFully(
      fd, bytes.data(), bytes.size(), "snapshot.short_write");
  if (!wr.ok) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return SetError(error, wr.short_write
                               ? "snapshot write torn mid-file"
                               : "snapshot write failed: " +
                                     std::string(std::strerror(
                                         wr.error_code)));
  }
  bool synced = ::fsync(fd) == 0;
  if (const auto hit = ESD_FAILPOINT("snapshot.fsync")) {
    synced = false;
    errno = hit.error_code;
  }
  ::close(fd);
  if (!synced) {
    ::unlink(tmp.c_str());
    return SetError(error, "snapshot fsync failed: " +
                               std::string(std::strerror(errno)));
  }
  if (const auto hit = ESD_FAILPOINT("snapshot.rename")) {
    ::unlink(tmp.c_str());
    return SetError(error, "cannot rename " + tmp + " over " + path + ": " +
                               std::strerror(hit.error_code) + " [injected]");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int rename_errno = errno;  // before unlink can clobber it
    ::unlink(tmp.c_str());
    return SetError(error, "cannot rename " + tmp + " over " + path + ": " +
                               std::strerror(rename_errno));
  }
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  int dir_fsync_errno = 0;
  if (dfd >= 0) {
    if (::fsync(dfd) != 0) dir_fsync_errno = errno;
    ::close(dfd);
  } else {
    dir_fsync_errno = errno;
  }
  if (const auto hit = ESD_FAILPOINT("snapshot.dir_fsync")) {
    dir_fsync_errno = hit.error_code;
  }
  if (dir_fsync_errno != 0) {
    // The snapshot bytes are durable; only the rename's directory entry is
    // at risk. Typed warning instead of the old silent best-effort.
    ReportDirFsyncFailure(dir, dir_fsync_errno);
  }
  return true;
}

}  // namespace

SnapshotDirFsyncHandler SetSnapshotDirFsyncHandler(
    SnapshotDirFsyncHandler handler) {
  std::lock_guard<std::mutex> lock(g_dir_fsync_handler_mu);
  std::swap(handler, g_dir_fsync_handler);
  return handler;
}

bool SaveGraphSnapshot(const std::string& path, const graph::DynamicGraph& g,
                       uint64_t applied_seq, std::string* error,
                       core::ScorerKind scorer) {
  std::vector<graph::Edge> edges;
  edges.reserve(g.NumEdges());
  for (graph::VertexId u = 0; u < g.NumVertices(); ++u) {
    for (graph::VertexId v : g.Neighbors(u)) {
      if (u < v) edges.push_back({u, v});
    }
  }
  std::ostringstream out(std::ios::binary);
  out.write(kSnapshotMagic, sizeof(kSnapshotMagic));
  uint32_t version = kSnapshotVersionScorer;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  core::BinaryWriter w(out);
  w.Put(static_cast<uint32_t>(scorer));
  w.Put(applied_seq);
  w.Put(g.NumVertices());
  w.PutArray(std::span<const graph::Edge>(edges));
  const uint64_t checksum = w.checksum();
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  if (!out) return SetError(error, "snapshot serialization failed");
  return WriteFileAtomically(path, std::move(out).str(), error);
}

bool LoadGraphSnapshot(const std::string& path, GraphSnapshotData* out,
                       std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return SetError(error, "cannot open snapshot file " + path);
  char magic[4];
  uint32_t version = 0;
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return SetError(error, "bad magic: " + path + " is not an ESDS snapshot");
  }
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in ||
      (version != kSnapshotVersion && version != kSnapshotVersionScorer)) {
    return SetError(error, "unsupported snapshot version");
  }
  core::BinaryReader r(in);
  GraphSnapshotData data;
  if (version == kSnapshotVersionScorer) {
    uint32_t raw = 0;
    if (!r.Get(&raw)) return SetError(error, "truncated snapshot file");
    if (!core::ValidScorerKind(raw)) {
      return SetError(error, "corrupt snapshot: unknown scorer id " +
                                 std::to_string(raw));
    }
    data.scorer = static_cast<core::ScorerKind>(raw);
  }
  if (!r.Get(&data.applied_seq) || !r.Get(&data.num_vertices) ||
      !r.GetArray(&data.edges)) {
    return SetError(error, r.error() != nullptr
                               ? r.error()
                               : "truncated snapshot file");
  }
  uint64_t stored_checksum = 0;
  in.read(reinterpret_cast<char*>(&stored_checksum), sizeof(stored_checksum));
  if (!in || stored_checksum != r.checksum()) {
    return SetError(error, "checksum mismatch: snapshot file corrupt");
  }
  for (const graph::Edge& e : data.edges) {
    if (e.u >= data.num_vertices || e.v >= data.num_vertices || e.u == e.v) {
      return SetError(error, "corrupt snapshot: edge endpoint out of range");
    }
  }
  *out = std::move(data);
  return true;
}

EpochSnapshotManager::EpochSnapshotManager(const graph::Graph& base,
                                           uint64_t base_seq,
                                           unsigned pool_threads,
                                           const core::DiversityScorer& scorer,
                                           ServeFilter serve_filter,
                                           const std::string& fault_site_suffix)
    : serve_filter_(std::move(serve_filter)),
      refreeze_site_("live.refreeze" + fault_site_suffix),
      writer_(base, scorer),
      applied_seq_(base_seq),
      // Named track: background re-freezes show up as "refreeze-1" (etc.)
      // in Chrome trace exports instead of bare thread ids.
      pool_(std::max(2u, pool_threads), "refreeze") {
  Publish(core::Freeze(writer_.Index()), base_seq);
}

bool EpochSnapshotManager::Apply(const WalRecord& record,
                                 graph::VertexId max_vertex_id,
                                 std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  const graph::VertexId hi = std::max(record.u, record.v);
  bool effective = false;
  if (record.kind == UpdateKind::kInsert) {
    if (hi > max_vertex_id) {
      SetError(error, "vertex id " + std::to_string(hi) +
                          " exceeds the live index bound " +
                          std::to_string(max_vertex_id));
      return false;
    }
    while (writer_.CurrentGraph().NumVertices() <= hi) writer_.AddVertex();
    effective = writer_.InsertEdge(record.u, record.v);
  } else {
    // Deleting outside the vertex set is just a no-op miss, never an error.
    effective = hi < writer_.CurrentGraph().NumVertices() &&
                writer_.DeleteEdge(record.u, record.v);
  }
  applied_seq_.store(record.seq, std::memory_order_relaxed);
  return effective;
}

bool EpochSnapshotManager::RefreezeNow() {
  ESD_TRACE_SPAN("live.refreeze");
  core::FrozenEsdIndex frozen;
  uint64_t seq;
  {
    std::lock_guard<std::mutex> lock(mu_);
    refreeze_queued_ = false;
    frozen = core::Freeze(writer_.Index());
    seq = applied_seq_.load(std::memory_order_relaxed);
  }
  // The freeze-to-publish window: mu_ is released, so newer updates can be
  // applied — and refrozen by another thread — before this image reaches
  // Publish. The fail point sits here on purpose: an error action models a
  // failed rebuild (previous epoch stays published, breaker counts it),
  // while a delay action parks this thread in exactly the window whose
  // interleaving Publish's seq guard must survive.
  if (ESD_FAILPOINT(refreeze_site_)) {
    std::lock_guard<std::mutex> lock(mu_);
    refreeze_failures_.fetch_add(1, std::memory_order_relaxed);
    if (++consecutive_failures_ >= breaker_threshold_ &&
        !breaker_open_.load(std::memory_order_relaxed)) {
      breaker_open_.store(true, std::memory_order_relaxed);
      breaker_opened_at_ = std::chrono::steady_clock::now();
    }
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    consecutive_failures_ = 0;
    breaker_open_.store(false, std::memory_order_relaxed);
  }
  Publish(std::move(frozen), seq);
  return true;
}

void EpochSnapshotManager::ScheduleRefreeze() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (refreeze_queued_) return;
    if (breaker_open_.load(std::memory_order_relaxed)) {
      const auto now = std::chrono::steady_clock::now();
      if (now - breaker_opened_at_ < breaker_cooldown_) {
        // Open breaker, still cooling down: don't burn a pool slot on a
        // rebuild that just failed. The skip is counted so operators can
        // see staleness accumulating.
        refreezes_skipped_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      // Cooldown elapsed: let one attempt through (the retry); re-arm the
      // window so a failure waits out another cooldown.
      breaker_opened_at_ = now;
    }
    refreeze_queued_ = true;
  }
  pool_.Post([this] { RefreezeNow(); });
}

void EpochSnapshotManager::ConfigureBreaker(
    int threshold, std::chrono::milliseconds cooldown) {
  std::lock_guard<std::mutex> lock(mu_);
  breaker_threshold_ = std::max(1, threshold);
  breaker_cooldown_ = cooldown;
}

void EpochSnapshotManager::GraphCopy(graph::DynamicGraph* out,
                                     uint64_t* applied_seq) const {
  std::lock_guard<std::mutex> lock(mu_);
  *out = writer_.CurrentGraph();
  *applied_seq = applied_seq_.load(std::memory_order_relaxed);
}

void EpochSnapshotManager::SetEpochListener(EpochListener listener) {
  std::lock_guard<std::mutex> lock(listener_mu_);
  listener_ = std::move(listener);
}

void EpochSnapshotManager::Publish(core::FrozenEsdIndex frozen,
                                   uint64_t seq) {
  auto snap = std::make_shared<EpochSnapshot>();
  // Ownership mask: readers of this manager only ever see the filtered
  // image; the full one is a freeze-time intermediate.
  snap->index = serve_filter_ ? core::FilterFrozenIndex(frozen, serve_filter_)
                              : std::move(frozen);
  snap->applied_seq = seq;
  snap->published_at = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(published_mu_);
    // Seq guard: freezes are built under mu_ but published after releasing
    // it, so a slow freeze can arrive here after a faster one that folded
    // in more updates. Publishing it would roll readers — and every
    // epoch-keyed result-cache generation — back to a stale image; discard
    // it instead. Epoch ids are assigned under this lock so (epoch,
    // applied_seq) stay jointly monotone.
    if (published_ != nullptr && seq < published_->applied_seq) {
      publish_races_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    snap->epoch = epochs_published_.fetch_add(1, std::memory_order_relaxed);
    published_ = snap;
  }
  EpochListener listener;
  {
    std::lock_guard<std::mutex> lock(listener_mu_);
    listener = listener_;
  }
  if (listener) listener(snap->epoch, snap->applied_seq);
}

}  // namespace esd::live
