#include "live/live_index.h"

#include <algorithm>
#include <utility>

#include "obs/trace.h"

namespace esd::live {

namespace {

bool SetError(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

obs::MetricRegistry& Registry(const LiveOptions& options) {
  return options.registry != nullptr ? *options.registry
                                     : obs::MetricRegistry::Global();
}

}  // namespace

const char* ApplyStatusName(ApplyStatus status) {
  switch (status) {
    case ApplyStatus::kOk:
      return "ok";
    case ApplyStatus::kBounds:
      return "bounds";
    case ApplyStatus::kWalError:
      return "wal-error";
    case ApplyStatus::kDegraded:
      return "degraded";
  }
  return "?";
}

std::unique_ptr<LiveEsdIndex> LiveEsdIndex::Open(const graph::Graph& bootstrap,
                                                 const LiveOptions& options,
                                                 std::string* error) {
  if (options.wal_path.empty()) {
    SetError(error, "LiveOptions.wal_path is required");
    return nullptr;
  }
  RecoveryOptions rec_options;
  rec_options.wal_path = options.wal_path;
  rec_options.snapshot_path = options.snapshot_path;
  rec_options.expected_scorer = options.scorer;
  RecoveredState state;
  if (!Recover(bootstrap, rec_options, &state, error)) return nullptr;

  std::unique_ptr<LiveEsdIndex> live(
      new LiveEsdIndex(options, std::move(state)));
  if (!options.fault_site_suffix.empty()) {
    live->wal_.SetFaultSiteSuffix(options.fault_site_suffix);
  }
  if (!live->wal_.Open(options.wal_path, error, options.scorer)) {
    return nullptr;
  }
  return live;
}

LiveEsdIndex::LiveEsdIndex(const LiveOptions& options, RecoveredState recovered)
    : options_(options), recovered_(std::move(recovered)) {
  manager_ = std::make_unique<EpochSnapshotManager>(
      recovered_.graph.Snapshot(), recovered_.applied_seq,
      options_.pool_threads, core::ScorerForKind(options_.scorer),
      options_.serve_filter, options_.fault_site_suffix);
  manager_->ConfigureBreaker(options_.refreeze_breaker_threshold,
                             options_.refreeze_breaker_cooldown);
  next_seq_ = recovered_.applied_seq + 1;
  // The recovered graph lives on inside the manager; drop the copy.
  recovered_.graph = graph::DynamicGraph();
  Registry(options_)
      .GetCounter("esd_live_replayed_total",
                  "WAL records folded in during recovery")
      .Inc(recovered_.replay_applied);
}

bool LiveEsdIndex::Apply(const LiveUpdate& update, std::string* error) {
  return ApplyBatch(std::span<const LiveUpdate>(&update, 1), error) == 1;
}

size_t LiveEsdIndex::ApplyBatch(std::span<const LiveUpdate> updates,
                                std::string* error) {
  const ApplyResult result = ApplyBatchTyped(updates);
  if (!result.message.empty()) SetError(error, result.message);
  return result.processed;
}

ApplyResult LiveEsdIndex::ApplyTyped(const LiveUpdate& update) {
  return ApplyBatchTyped(std::span<const LiveUpdate>(&update, 1));
}

void LiveEsdIndex::EnterReadOnlyLocked() {
  read_only_ = true;
  next_probe_ = std::chrono::steady_clock::now() + options_.heal_retry_interval;
}

ApplyResult LiveEsdIndex::ApplyBatchTyped(std::span<const LiveUpdate> updates) {
  static thread_local std::string scratch_error;
  ApplyResult result;
  std::lock_guard<std::mutex> lock(live_mu_);
  obs::MetricRegistry& reg = Registry(options_);
  obs::Counter& c_inserts =
      reg.GetCounter("esd_live_inserts_total", "effective edge inserts");
  obs::Counter& c_deletes =
      reg.GetCounter("esd_live_deletes_total", "effective edge deletes");
  obs::Counter& c_noops =
      reg.GetCounter("esd_live_noops_total", "updates that changed nothing");
  obs::Counter& c_retries = reg.GetCounter(
      "esd_live_wal_retries_total",
      "extra WAL attempts beyond the first (backoff retries that ran)");
  obs::Counter& c_wal_failures = reg.GetCounter(
      "esd_live_wal_append_failures_total",
      "WAL operations that exhausted their retry budget");
  obs::Counter& c_degraded = reg.GetCounter(
      "esd_live_degraded_rejections_total",
      "writes rejected because the index was read-only");
  obs::Counter& c_heals = reg.GetCounter(
      "esd_live_heals_total", "read-only -> ok transitions after WAL recovery");

  // Read-only gate: reject instantly unless a heal probe is due. The probe
  // gives the first WAL append below exactly one attempt (no retry storm
  // against a dead disk); success heals the index mid-call.
  bool probing = false;
  if (read_only_) {
    if (std::chrono::steady_clock::now() < next_probe_) {
      ++degraded_rejections_;
      c_degraded.Inc();
      result.status = ApplyStatus::kDegraded;
      result.message =
          "live index is read-only (WAL unavailable); writes rejected until "
          "a heal probe succeeds";
      return result;
    }
    probing = true;
  }

  std::string append_error;
  bool appended = false;
  for (const LiveUpdate& u : updates) {
    // Bounds are enforced BEFORE the WAL append so the log never contains
    // a record recovery would interpret differently than the writer did.
    const graph::VertexId hi = std::max(u.u, u.v);
    if (u.kind == UpdateKind::kInsert && hi > options_.max_vertex_id) {
      result.status = ApplyStatus::kBounds;
      result.message = "vertex id " + std::to_string(hi) +
                       " exceeds the live index bound " +
                       std::to_string(options_.max_vertex_id);
      break;  // earlier appends in this batch still get their fsync below
    }
    WalRecord rec;
    rec.seq = next_seq_;
    rec.kind = u.kind;
    rec.u = u.u;
    rec.v = u.v;
    bool ok;
    if (probing) {
      ok = wal_.Append(rec, &append_error);
      if (ok) {
        // The WAL is back: heal and let the rest of the batch (and every
        // later write) take the normal retried path again.
        read_only_ = false;
        probing = false;
        ++heals_;
        c_heals.Inc();
      } else {
        next_probe_ = std::chrono::steady_clock::now() +
                      options_.heal_retry_interval;
        ++degraded_rejections_;
        c_degraded.Inc();
        result.status = ApplyStatus::kDegraded;
        result.message = "live index heal probe failed: " + append_error;
        return result;
      }
    } else {
      const fault::RetryOutcome out =
          fault::RetryWithBackoff(options_.wal_retry, [&] {
            return wal_.Append(rec, &append_error);
          });
      if (out.attempts > 1) {
        const uint64_t extra = static_cast<uint64_t>(out.attempts) - 1;
        wal_retries_ += extra;
        c_retries.Inc(extra);
      }
      ok = out.ok;
    }
    if (!ok) {
      ++wal_append_failures_;
      c_wal_failures.Inc();
      EnterReadOnlyLocked();
      result.status = ApplyStatus::kWalError;
      result.message = "wal append failed after " +
                       std::to_string(options_.wal_retry.max_attempts) +
                       " attempts (" + append_error +
                       "); live index is now read-only";
      break;
    }
    appended = true;
    ++next_seq_;
    const bool effective =
        manager_->Apply(rec, options_.max_vertex_id, &scratch_error);
    if (effective) {
      if (u.kind == UpdateKind::kInsert) {
        ++inserts_;
        c_inserts.Inc();
      } else {
        ++deletes_;
        c_deletes.Inc();
      }
    } else {
      ++noops_;
      c_noops.Inc();
    }
    ++result.processed;
    if (options_.refreeze_every != 0 &&
        ++since_refreeze_ >= options_.refreeze_every) {
      since_refreeze_ = 0;
      manager_->ScheduleRefreeze();
    }
  }
  // One durability point per batch: the records are acknowledged together.
  // An fsync that fails through its retries degrades exactly like a failed
  // append — the batch is applied in memory but its durability is not
  // acknowledged.
  if (appended && options_.fsync_on_batch) {
    std::string sync_error;
    const fault::RetryOutcome out = fault::RetryWithBackoff(
        options_.wal_retry, [&] { return wal_.Sync(&sync_error); });
    if (out.attempts > 1) {
      const uint64_t extra = static_cast<uint64_t>(out.attempts) - 1;
      wal_retries_ += extra;
      c_retries.Inc(extra);
    }
    if (!out.ok) {
      ++wal_append_failures_;
      c_wal_failures.Inc();
      EnterReadOnlyLocked();
      result.status = ApplyStatus::kWalError;
      result.message = "wal fsync failed after " +
                       std::to_string(options_.wal_retry.max_attempts) +
                       " attempts (" + sync_error +
                       "); live index is now read-only";
    }
  }
  return result;
}

bool LiveEsdIndex::Checkpoint(std::string* error) {
  ESD_TRACE_SPAN("live.checkpoint");
  if (options_.snapshot_path.empty()) {
    return SetError(error, "checkpointing is disabled: no snapshot_path");
  }
  std::lock_guard<std::mutex> lock(live_mu_);
  obs::Counter& c_failures = Registry(options_).GetCounter(
      "esd_live_checkpoint_failures_total", "Checkpoint() calls that failed");
  // Publish first so readers never regress behind the persisted state. A
  // failed rebuild aborts the checkpoint: the previous epoch, snapshot,
  // and WAL all stay intact, so nothing is lost and a retry is safe.
  if (!manager_->RefreezeNow()) {
    ++checkpoint_failures_;
    c_failures.Inc();
    return SetError(error,
                    "checkpoint aborted: epoch rebuild failed (previous "
                    "epoch stays published)");
  }
  graph::DynamicGraph g;
  uint64_t seq = 0;
  manager_->GraphCopy(&g, &seq);
  if (!SaveGraphSnapshot(options_.snapshot_path, g, seq, error,
                         options_.scorer)) {
    ++checkpoint_failures_;
    c_failures.Inc();
    return false;
  }
  // Crash window here is safe: replay skips records with seq <= snapshot's.
  if (!wal_.TruncateAll(error)) {
    ++checkpoint_failures_;
    c_failures.Inc();
    return false;
  }
  ++checkpoints_;
  Registry(options_)
      .GetCounter("esd_live_checkpoints_total", "successful checkpoints")
      .Inc();
  return true;
}

obs::HealthState LiveEsdIndex::Health() const {
  // Lock-free on purpose: sharded classification probes health on every
  // query, and must not queue behind a write (or a sleeping heal probe)
  // that holds live_mu_.
  if (read_only_.load(std::memory_order_acquire)) {
    return obs::HealthState::kReadOnly;
  }
  return manager_->breaker_open() ? obs::HealthState::kDegraded
                                  : obs::HealthState::kOk;
}

LiveStats LiveEsdIndex::Stats() const {
  LiveStats s;
  {
    std::lock_guard<std::mutex> lock(live_mu_);
    s.applied_seq = next_seq_ - 1;
    s.inserts = inserts_;
    s.deletes = deletes_;
    s.noops = noops_;
    s.checkpoints = checkpoints_;
    s.wal_bytes = wal_.SizeBytes();
    s.read_only = read_only_;
    s.wal_retries = wal_retries_;
    s.wal_append_failures = wal_append_failures_;
    s.degraded_rejections = degraded_rejections_;
    s.heals = heals_;
    s.checkpoint_failures = checkpoint_failures_;
    s.wal_eintr_retries = wal_.eintr_retries();
  }
  s.breaker_open = manager_->breaker_open();
  s.refreeze_failures = manager_->refreeze_failures();
  s.refreezes_skipped = manager_->refreezes_skipped();
  s.publish_races = manager_->publish_races();
  s.refreezes = manager_->epochs_published();
  const auto snap = manager_->Current();
  s.snapshot_epoch = snap->epoch;
  s.snapshot_seq = snap->applied_seq;
  s.snapshot_age_s = snap->AgeSeconds();
  s.snapshot_lag = s.applied_seq > s.snapshot_seq
                       ? s.applied_seq - s.snapshot_seq
                       : 0;
  s.recovered_replayed = recovered_.replay_applied;
  return s;
}

void LiveEsdIndex::ExportMetrics() const {
  const LiveStats s = Stats();
  obs::MetricRegistry& reg = Registry(options_);
  reg.GetGauge("esd_live_wal_bytes", "current WAL file size")
      .Set(static_cast<double>(s.wal_bytes));
  reg.GetGauge("esd_live_snapshot_age_seconds",
               "age of the serving read epoch")
      .Set(s.snapshot_age_s);
  reg.GetGauge("esd_live_snapshot_lag_updates",
               "updates applied but not yet visible to readers")
      .Set(static_cast<double>(s.snapshot_lag));
  reg.GetGauge("esd_live_epoch", "id of the serving read epoch")
      .Set(static_cast<double>(s.snapshot_epoch));
  reg.GetGauge("esd_live_applied_seq", "newest durable applied update")
      .Set(static_cast<double>(s.applied_seq));
  reg.GetGauge("esd_live_read_only", "1 while the WAL is unavailable")
      .Set(s.read_only ? 1 : 0);
  reg.GetGauge("esd_live_refreeze_breaker_open",
               "1 while the refreeze circuit breaker is open")
      .Set(s.breaker_open ? 1 : 0);
  reg.GetGauge("esd_live_refreeze_failures",
               "failed epoch rebuilds since open")
      .Set(static_cast<double>(s.refreeze_failures));
  reg.GetGauge("esd_live_refreezes_skipped",
               "rebuilds skipped while the breaker was open")
      .Set(static_cast<double>(s.refreezes_skipped));
  reg.GetGauge("esd_live_wal_eintr_retries",
               "EINTR retries absorbed by WAL writes")
      .Set(static_cast<double>(s.wal_eintr_retries));
  reg.GetGauge("esd_live_publish_races",
               "stale epoch publishes discarded by the seq guard")
      .Set(static_cast<double>(s.publish_races));
  obs::ExportHealth(reg, Health());
}

}  // namespace esd::live
