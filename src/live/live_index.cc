#include "live/live_index.h"

#include <algorithm>
#include <utility>

#include "obs/trace.h"

namespace esd::live {

namespace {

bool SetError(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

obs::MetricRegistry& Registry(const LiveOptions& options) {
  return options.registry != nullptr ? *options.registry
                                     : obs::MetricRegistry::Global();
}

}  // namespace

std::unique_ptr<LiveEsdIndex> LiveEsdIndex::Open(const graph::Graph& bootstrap,
                                                 const LiveOptions& options,
                                                 std::string* error) {
  if (options.wal_path.empty()) {
    SetError(error, "LiveOptions.wal_path is required");
    return nullptr;
  }
  RecoveryOptions rec_options;
  rec_options.wal_path = options.wal_path;
  rec_options.snapshot_path = options.snapshot_path;
  RecoveredState state;
  if (!Recover(bootstrap, rec_options, &state, error)) return nullptr;

  std::unique_ptr<LiveEsdIndex> live(
      new LiveEsdIndex(options, std::move(state)));
  if (!live->wal_.Open(options.wal_path, error)) return nullptr;
  return live;
}

LiveEsdIndex::LiveEsdIndex(const LiveOptions& options, RecoveredState recovered)
    : options_(options), recovered_(std::move(recovered)) {
  manager_ = std::make_unique<EpochSnapshotManager>(
      recovered_.graph.Snapshot(), recovered_.applied_seq,
      options_.pool_threads);
  next_seq_ = recovered_.applied_seq + 1;
  // The recovered graph lives on inside the manager; drop the copy.
  recovered_.graph = graph::DynamicGraph();
  Registry(options_)
      .GetCounter("esd_live_replayed_total",
                  "WAL records folded in during recovery")
      .Inc(recovered_.replay_applied);
}

bool LiveEsdIndex::Apply(const LiveUpdate& update, std::string* error) {
  return ApplyBatch(std::span<const LiveUpdate>(&update, 1), error) == 1;
}

size_t LiveEsdIndex::ApplyBatch(std::span<const LiveUpdate> updates,
                                std::string* error) {
  static thread_local std::string scratch_error;
  std::lock_guard<std::mutex> lock(live_mu_);
  obs::MetricRegistry& reg = Registry(options_);
  obs::Counter& c_inserts =
      reg.GetCounter("esd_live_inserts_total", "effective edge inserts");
  obs::Counter& c_deletes =
      reg.GetCounter("esd_live_deletes_total", "effective edge deletes");
  obs::Counter& c_noops =
      reg.GetCounter("esd_live_noops_total", "updates that changed nothing");

  size_t processed = 0;
  bool appended = false;
  for (const LiveUpdate& u : updates) {
    // Bounds are enforced BEFORE the WAL append so the log never contains
    // a record recovery would interpret differently than the writer did.
    const graph::VertexId hi = std::max(u.u, u.v);
    if (u.kind == UpdateKind::kInsert && hi > options_.max_vertex_id) {
      SetError(error, "vertex id " + std::to_string(hi) +
                          " exceeds the live index bound " +
                          std::to_string(options_.max_vertex_id));
      break;
    }
    WalRecord rec;
    rec.seq = next_seq_;
    rec.kind = u.kind;
    rec.u = u.u;
    rec.v = u.v;
    if (!wal_.Append(rec, error)) break;
    appended = true;
    ++next_seq_;
    const bool effective =
        manager_->Apply(rec, options_.max_vertex_id, &scratch_error);
    if (effective) {
      if (u.kind == UpdateKind::kInsert) {
        ++inserts_;
        c_inserts.Inc();
      } else {
        ++deletes_;
        c_deletes.Inc();
      }
    } else {
      ++noops_;
      c_noops.Inc();
    }
    ++processed;
    if (options_.refreeze_every != 0 &&
        ++since_refreeze_ >= options_.refreeze_every) {
      since_refreeze_ = 0;
      manager_->ScheduleRefreeze();
    }
  }
  // One durability point per batch: the records are acknowledged together.
  if (appended && options_.fsync_on_batch) {
    std::string sync_error;
    if (!wal_.Sync(&sync_error)) {
      if (error != nullptr && error->empty()) *error = sync_error;
      return processed;
    }
  }
  return processed;
}

bool LiveEsdIndex::Checkpoint(std::string* error) {
  ESD_TRACE_SPAN("live.checkpoint");
  if (options_.snapshot_path.empty()) {
    return SetError(error, "checkpointing is disabled: no snapshot_path");
  }
  std::lock_guard<std::mutex> lock(live_mu_);
  // Publish first so readers never regress behind the persisted state.
  manager_->RefreezeNow();
  graph::DynamicGraph g;
  uint64_t seq = 0;
  manager_->GraphCopy(&g, &seq);
  if (!SaveGraphSnapshot(options_.snapshot_path, g, seq, error)) return false;
  // Crash window here is safe: replay skips records with seq <= snapshot's.
  if (!wal_.TruncateAll(error)) return false;
  ++checkpoints_;
  Registry(options_)
      .GetCounter("esd_live_checkpoints_total", "successful checkpoints")
      .Inc();
  return true;
}

LiveStats LiveEsdIndex::Stats() const {
  LiveStats s;
  {
    std::lock_guard<std::mutex> lock(live_mu_);
    s.applied_seq = next_seq_ - 1;
    s.inserts = inserts_;
    s.deletes = deletes_;
    s.noops = noops_;
    s.checkpoints = checkpoints_;
    s.wal_bytes = wal_.SizeBytes();
  }
  s.refreezes = manager_->epochs_published();
  const auto snap = manager_->Current();
  s.snapshot_epoch = snap->epoch;
  s.snapshot_seq = snap->applied_seq;
  s.snapshot_age_s = snap->AgeSeconds();
  s.snapshot_lag = s.applied_seq > s.snapshot_seq
                       ? s.applied_seq - s.snapshot_seq
                       : 0;
  s.recovered_replayed = recovered_.replay_applied;
  return s;
}

void LiveEsdIndex::ExportMetrics() const {
  const LiveStats s = Stats();
  obs::MetricRegistry& reg = Registry(options_);
  reg.GetGauge("esd_live_wal_bytes", "current WAL file size")
      .Set(static_cast<double>(s.wal_bytes));
  reg.GetGauge("esd_live_snapshot_age_seconds",
               "age of the serving read epoch")
      .Set(s.snapshot_age_s);
  reg.GetGauge("esd_live_snapshot_lag_updates",
               "updates applied but not yet visible to readers")
      .Set(static_cast<double>(s.snapshot_lag));
  reg.GetGauge("esd_live_epoch", "id of the serving read epoch")
      .Set(static_cast<double>(s.snapshot_epoch));
  reg.GetGauge("esd_live_applied_seq", "newest durable applied update")
      .Set(static_cast<double>(s.applied_seq));
}

}  // namespace esd::live
