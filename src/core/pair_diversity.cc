#include "core/pair_diversity.h"

#include <algorithm>

#include "core/ego_network.h"
#include "util/binary_heap.h"
#include "util/flat_map.h"

namespace esd::core {

using graph::Graph;
using graph::VertexId;

uint32_t PairScore(const Graph& g, VertexId u, VertexId v, uint32_t tau) {
  if (u == v || tau == 0) return 0;
  return ScoreFromSizes(EgoComponentSizes(g, u, v), tau);
}

std::vector<ScoredPair> TopKNonAdjacentPairs(const Graph& g, uint32_t k,
                                             uint32_t tau,
                                             size_t max_candidates) {
  std::vector<ScoredPair> result;
  if (k == 0 || tau == 0 || g.NumVertices() < 2) return result;

  // Candidate generation: for every vertex u, count common neighbors with
  // each distance-2 vertex w > u (wedges u - v - w), skipping adjacent
  // pairs. Every non-adjacent pair with a nonempty common neighborhood is
  // produced exactly once.
  struct Candidate {
    VertexId u, v;
    uint32_t common;
  };
  std::vector<Candidate> candidates;
  util::FlatMap<VertexId, uint32_t> counts;
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    counts.Clear();
    for (VertexId v : g.Neighbors(u)) {
      for (VertexId w : g.Neighbors(v)) {
        if (w > u) ++counts[w];
      }
    }
    counts.ForEach([&](VertexId w, uint32_t c) {
      if (!g.HasEdge(u, w)) candidates.push_back(Candidate{u, w, c});
    });
  }

  // Optional cap: keep the candidates with the most common neighbors (the
  // upper bound is monotone in the count, so this discards the least
  // promising pairs first).
  if (max_candidates > 0 && candidates.size() > max_candidates) {
    std::nth_element(candidates.begin(),
                     candidates.begin() + static_cast<long>(max_candidates),
                     candidates.end(),
                     [](const Candidate& a, const Candidate& b) {
                       return a.common > b.common;
                     });
    candidates.resize(max_candidates);
  }

  // Dequeue-twice search over the candidates.
  auto priority = [](uint32_t value, uint32_t phase) {
    return (static_cast<int64_t>(value) << 1) | phase;
  };
  util::BinaryHeap<uint32_t, int64_t> queue;  // payload: candidate index
  queue.Reserve(candidates.size());
  for (uint32_t i = 0; i < candidates.size(); ++i) {
    queue.Push(i, priority(candidates[i].common / tau, 0));
  }
  std::vector<uint32_t> exact(candidates.size(), 0);
  while (result.size() < k && !queue.empty()) {
    auto [i, prio] = queue.Pop();
    const Candidate& c = candidates[i];
    if ((prio & 1) != 0) {
      result.push_back(ScoredPair{c.u, c.v, exact[i]});
      continue;
    }
    exact[i] = PairScore(g, c.u, c.v, tau);
    queue.Push(i, priority(exact[i], 1));
  }
  return result;
}

}  // namespace esd::core
