#include "core/naive_topk.h"

#include <algorithm>
#include <numeric>

#include "core/ego_network.h"

namespace esd::core {

using graph::EdgeId;
using graph::Graph;

std::vector<uint32_t> AllEdgeScores(const Graph& g, uint32_t tau) {
  std::vector<uint32_t> scores(g.NumEdges());
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const graph::Edge& uv = g.EdgeAt(e);
    scores[e] = EdgeScore(g, uv.u, uv.v, tau);
  }
  return scores;
}

TopKResult NaiveTopK(const Graph& g, uint32_t k, uint32_t tau) {
  std::vector<uint32_t> scores = AllEdgeScores(g, tau);
  std::vector<EdgeId> ids(g.NumEdges());
  std::iota(ids.begin(), ids.end(), 0);
  size_t take = std::min<size_t>(k, ids.size());
  std::partial_sort(ids.begin(), ids.begin() + take, ids.end(),
                    [&scores](EdgeId a, EdgeId b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  TopKResult out;
  out.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    out.push_back(ScoredEdge{g.EdgeAt(ids[i]), scores[ids[i]]});
  }
  return out;
}

}  // namespace esd::core
