#ifndef ESD_CORE_BINARY_FORMAT_H_
#define ESD_CORE_BINARY_FORMAT_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <ios>
#include <istream>
#include <limits>
#include <ostream>
#include <span>
#include <type_traits>
#include <vector>

namespace esd::core {

// Whole slabs move through single stream ops; a narrowing cast (e.g.
// through `long`, 32-bit on LLP64 targets) would silently truncate >2 GiB
// blocks. std::streamsize must cover any in-memory block size.
static_assert(sizeof(std::streamsize) >= sizeof(size_t),
              "std::streamsize narrower than size_t: block IO would truncate");

/// Running FNV-1a over serialized payload bytes — the shared checksum of
/// every on-disk format in this repo (index files, snapshots, WAL records).
class Checksummer {
 public:
  void Feed(const void* data, size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001B3ULL;
    }
  }
  uint64_t value() const { return hash_; }

 private:
  uint64_t hash_ = 0xCBF29CE484222325ULL;
};

/// One-shot FNV-1a of a byte block (the WAL's per-record checksum).
inline uint64_t Fnv1a(const void* data, size_t n) {
  Checksummer sum;
  sum.Feed(data, n);
  return sum.value();
}

/// Checksumming stream writer shared by the binary formats (index_io v1/v2,
/// live snapshots). Values are written in native byte order.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& out) : out_(out) {}

  template <typename T>
  void Put(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    out_.write(reinterpret_cast<const char*>(&value), sizeof(value));
    sum_.Feed(&value, sizeof(value));
  }
  void PutRaw(const void* data, size_t n) {
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(n));
    sum_.Feed(data, n);
  }
  /// Length-prefixed contiguous block: u64 element count, then the elements
  /// as one raw write.
  template <typename T>
  void PutArray(std::span<const T> a) {
    static_assert(std::is_trivially_copyable_v<T>);
    Put(static_cast<uint64_t>(a.size()));
    if (!a.empty()) PutRaw(a.data(), a.size() * sizeof(T));
  }
  uint64_t checksum() const { return sum_.value(); }
  bool ok() const { return static_cast<bool>(out_); }

 private:
  std::ostream& out_;
  Checksummer sum_;
};

/// Checksumming stream reader, hardened against corrupt or hostile files:
/// GetArray never trusts a length prefix with an allocation (see below).
class BinaryReader {
 public:
  explicit BinaryReader(std::istream& in) : in_(in) {}

  template <typename T>
  bool Get(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    in_.read(reinterpret_cast<char*>(value), sizeof(T));
    if (!in_) return false;
    sum_.Feed(value, sizeof(T));
    return true;
  }
  bool GetRaw(void* data, size_t n) {
    in_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
    if (!in_) return false;
    sum_.Feed(data, n);
    return true;
  }
  /// Length-prefixed block, the inverse of BinaryWriter::PutArray. The
  /// element count comes straight from a possibly corrupt or hostile file,
  /// so it is never trusted with an allocation: when the stream length is
  /// known, a count exceeding the remaining bytes is rejected up front, and
  /// the payload is then read in bounded chunks so even an unseekable
  /// stream can only make us allocate one chunk past the bytes it actually
  /// holds.
  template <typename T>
  bool GetArray(std::vector<T>* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t n = 0;
    if (!Get(&n)) return false;
    if (n > RemainingBytes() / sizeof(T)) {
      error_ = "corrupt index file: array length exceeds remaining bytes";
      return false;
    }
    out->clear();
    constexpr uint64_t kChunkElems =
        std::max<uint64_t>(1, (uint64_t{1} << 20) / sizeof(T));
    for (uint64_t done = 0; done < n;) {
      const uint64_t take = std::min(n - done, kChunkElems);
      out->resize(static_cast<size_t>(done + take));
      if (!GetRaw(out->data() + done, static_cast<size_t>(take) * sizeof(T))) {
        *out = {};
        error_ = "truncated index file: array shorter than its length prefix";
        return false;
      }
      done += take;
    }
    return true;
  }
  uint64_t checksum() const { return sum_.value(); }
  /// Parse-error detail from the last failing GetArray, or nullptr when the
  /// failure was a plain stream error.
  const char* error() const { return error_; }

 private:
  /// Bytes left between the read position and the end of the stream, or
  /// uint64 max when the stream is unseekable (no length to check against).
  uint64_t RemainingBytes() {
    const std::streampos cur = in_.tellg();
    if (cur == std::streampos(-1)) {
      return std::numeric_limits<uint64_t>::max();
    }
    in_.seekg(0, std::ios::end);
    const std::streampos end = in_.tellg();
    in_.seekg(cur);
    if (end == std::streampos(-1) || end < cur) return 0;
    return static_cast<uint64_t>(end - cur);
  }

  std::istream& in_;
  Checksummer sum_;
  const char* error_ = nullptr;
};

}  // namespace esd::core

#endif  // ESD_CORE_BINARY_FORMAT_H_
