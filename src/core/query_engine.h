#ifndef ESD_CORE_QUERY_ENGINE_H_
#define ESD_CORE_QUERY_ENGINE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/online_topk.h"
#include "core/scorer.h"
#include "core/topk_result.h"
#include "graph/graph.h"

namespace esd::obs {
class MetricRegistry;
}  // namespace esd::obs

namespace esd::core {

/// One read of an engine's lifetime work counters. Which fields move
/// depends on the engine: the index engines drive slab_searches /
/// entries_scanned, the online adapter drives heap_pops /
/// exact_computations / zero_bound_skips. Fields an engine doesn't track
/// stay 0.
struct EngineCounters {
  uint64_t queries = 0;            ///< Query() calls answered
  uint64_t slab_searches = 0;      ///< H-list / slab binary searches run
  uint64_t entries_scanned = 0;    ///< index entries read to build answers
  uint64_t heap_pops = 0;          ///< online: priority-queue pops
  uint64_t exact_computations = 0; ///< online: exact ego-network BFS runs
  uint64_t zero_bound_skips = 0;   ///< online: candidates certified bound=0
};

/// The atomic home of EngineCounters inside an engine. Lives in otherwise
/// const engines (recording from const query methods is the point), so
/// every field is mutable-friendly relaxed-atomic; copy/move copy the
/// current values, which keeps engines that rely on implicit copies/moves
/// (FrozenEsdIndex into unique_ptr, EsdIndex returned by value) movable
/// despite holding atomics.
class EngineCounterBlock {
 public:
  EngineCounterBlock() = default;
  EngineCounterBlock(const EngineCounterBlock& other) { CopyFrom(other); }
  EngineCounterBlock& operator=(const EngineCounterBlock& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }

  void AddQuery() const { queries_.fetch_add(1, std::memory_order_relaxed); }
  void AddSlabSearch(uint64_t n = 1) const {
    slab_searches_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddEntriesScanned(uint64_t n) const {
    entries_scanned_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddOnlineStats(const OnlineStats& s) const {
    heap_pops_.fetch_add(s.heap_pops, std::memory_order_relaxed);
    exact_computations_.fetch_add(s.exact_computations,
                                  std::memory_order_relaxed);
    zero_bound_skips_.fetch_add(s.zero_bound_skips,
                                std::memory_order_relaxed);
  }

  EngineCounters Snap() const {
    EngineCounters c;
    c.queries = queries_.load(std::memory_order_relaxed);
    c.slab_searches = slab_searches_.load(std::memory_order_relaxed);
    c.entries_scanned = entries_scanned_.load(std::memory_order_relaxed);
    c.heap_pops = heap_pops_.load(std::memory_order_relaxed);
    c.exact_computations =
        exact_computations_.load(std::memory_order_relaxed);
    c.zero_bound_skips = zero_bound_skips_.load(std::memory_order_relaxed);
    return c;
  }

 private:
  void CopyFrom(const EngineCounterBlock& other) {
    const EngineCounters c = other.Snap();
    queries_.store(c.queries, std::memory_order_relaxed);
    slab_searches_.store(c.slab_searches, std::memory_order_relaxed);
    entries_scanned_.store(c.entries_scanned, std::memory_order_relaxed);
    heap_pops_.store(c.heap_pops, std::memory_order_relaxed);
    exact_computations_.store(c.exact_computations,
                              std::memory_order_relaxed);
    zero_bound_skips_.store(c.zero_bound_skips, std::memory_order_relaxed);
  }

  mutable std::atomic<uint64_t> queries_{0};
  mutable std::atomic<uint64_t> slab_searches_{0};
  mutable std::atomic<uint64_t> entries_scanned_{0};
  mutable std::atomic<uint64_t> heap_pops_{0};
  mutable std::atomic<uint64_t> exact_computations_{0};
  mutable std::atomic<uint64_t> zero_bound_skips_{0};
};

/// The serving-layer contract every top-k ESD engine implements.
///
/// Four engines exist:
///   * EsdIndex        — the paper's treap-backed index ("treap"), also the
///                       mutation substrate of the maintenance algorithms;
///   * FrozenEsdIndex  — an immutable CSR-slab image of the same index
///                       ("frozen"), the read-optimized serving layer;
///   * DynamicEsdIndex — the maintained index ("dynamic"), delegating to its
///                       internal EsdIndex;
///   * OnlineQueryEngine — an index-free adapter over the online BFS
///                       algorithms ("online"), for one-shot workloads.
///
/// Shared semantics (engine-parity tests rely on these exactly):
///   * Query(k, 0) and Query(0, tau) are empty.
///   * When fewer than k edges have positive score and padding is on, the
///     remainder is filled with zero-score live edges in ascending edge-id
///     order, skipping edges already reported — a documented deterministic
///     order, identical across the index-backed engines.
///   * CountWithScoreAtLeast(tau, 0) counts every live edge;
///     QueryWithScoreAtLeast requires min_score >= 1 (else empty).
///
/// Thread safety: every method of this interface is const and must be safe
/// to call concurrently from any number of threads as long as no thread
/// mutates the engine (or, for the online adapters, the borrowed graph)
/// during the calls. The serving layer (serve::EsdQueryService) relies on
/// exactly this contract to share one engine across its worker pool;
/// FrozenEsdIndex is immutable after construction and is the engine meant
/// to be shared. Mutating engines (EsdIndex under maintenance,
/// DynamicEsdIndex) require external synchronization between writes and
/// any concurrent reads.
class EsdQueryEngine {
 public:
  virtual ~EsdQueryEngine() = default;

  /// Top-k structural diversity query at threshold `tau`.
  virtual TopKResult Query(uint32_t k, uint32_t tau,
                           bool pad_with_zero_edges = true) const = 0;

  /// Score of edge `e` (a dense id of this engine's snapshot) at `tau`.
  virtual uint32_t ScoreOf(graph::EdgeId e, uint32_t tau) const = 0;

  /// Number of edges whose score at `tau` is >= min_score.
  virtual uint64_t CountWithScoreAtLeast(uint32_t tau,
                                         uint32_t min_score) const = 0;

  /// All edges with score >= min_score at `tau` (at most `limit`,
  /// 0 = unlimited), descending score.
  virtual TopKResult QueryWithScoreAtLeast(uint32_t tau, uint32_t min_score,
                                           size_t limit = 0) const = 0;

  /// Approximate resident bytes of the serving structure (0 for the
  /// index-free online adapter).
  virtual uint64_t MemoryBytes() const = 0;

  /// Stable engine name ("treap", "frozen", "dynamic", "online", ...), the
  /// key used by the CLI/bench engine selectors and the JSON bench output.
  virtual std::string_view EngineName() const = 0;

  /// Lifetime work counters (see EngineCounters). Engines that don't
  /// instrument return all zeros. Safe concurrently with queries.
  virtual EngineCounters Counters() const { return {}; }

  /// Which diversity definition this engine's scores follow (see
  /// core/scorer.h). The historical engines predate the scorer seam and
  /// default to ESD; scorer-parameterized engines override.
  virtual ScorerKind Scorer() const { return ScorerKind::kEsd; }

 protected:
  EsdQueryEngine() = default;
  EsdQueryEngine(const EsdQueryEngine&) = default;
  EsdQueryEngine& operator=(const EsdQueryEngine&) = default;
  EsdQueryEngine(EsdQueryEngine&&) = default;
  EsdQueryEngine& operator=(EsdQueryEngine&&) = default;
};

/// Index-free engine: answers every call by running the online algorithms
/// against a borrowed graph (which must outlive the adapter). Query is the
/// dequeue-twice OnlineTopK; the threshold calls score every edge — they
/// exist for interface completeness, not for serving traffic.
class OnlineQueryEngine final : public EsdQueryEngine {
 public:
  explicit OnlineQueryEngine(
      const graph::Graph& g,
      UpperBoundRule rule = UpperBoundRule::kCommonNeighbor)
      : graph_(g), rule_(rule) {}

  TopKResult Query(uint32_t k, uint32_t tau,
                   bool pad_with_zero_edges = true) const override;
  uint32_t ScoreOf(graph::EdgeId e, uint32_t tau) const override;
  uint64_t CountWithScoreAtLeast(uint32_t tau,
                                 uint32_t min_score) const override;
  TopKResult QueryWithScoreAtLeast(uint32_t tau, uint32_t min_score,
                                   size_t limit = 0) const override;
  uint64_t MemoryBytes() const override { return 0; }
  std::string_view EngineName() const override {
    return rule_ == UpperBoundRule::kCommonNeighbor ? "online"
                                                    : "online-mindeg";
  }
  /// Prune counters accumulated across Query() calls (heap_pops,
  /// exact_computations, zero_bound_skips): the OnlineStats of every
  /// dequeue-twice run, reachable through the engine interface so
  /// esd_cli --engine online can print pruning power.
  EngineCounters Counters() const override { return counters_.Snap(); }

 private:
  const graph::Graph& graph_;
  UpperBoundRule rule_;
  EngineCounterBlock counters_;
};

/// Index-free engine for an arbitrary scorer: answers every call by scoring
/// edges of a borrowed graph (which must outlive the adapter) through the
/// scorer's single-edge recompute hook. The reference implementation the
/// scorer parity tests compare the indexed engines against; full-scan, so
/// meant for correctness work and one-shot workloads, not serving. Follows
/// the shared engine semantics exactly (zero-padding order, empty Query on
/// k == 0 or tau == 0, CountWithScoreAtLeast(tau, 0) == m).
class ScorerOnlineEngine final : public EsdQueryEngine {
 public:
  ScorerOnlineEngine(const graph::Graph& g, const DiversityScorer& scorer)
      : graph_(g),
        scorer_(scorer),
        name_("online-" + std::string(scorer.Name())) {}

  TopKResult Query(uint32_t k, uint32_t tau,
                   bool pad_with_zero_edges = true) const override;
  uint32_t ScoreOf(graph::EdgeId e, uint32_t tau) const override;
  uint64_t CountWithScoreAtLeast(uint32_t tau,
                                 uint32_t min_score) const override;
  TopKResult QueryWithScoreAtLeast(uint32_t tau, uint32_t min_score,
                                   size_t limit = 0) const override;
  uint64_t MemoryBytes() const override { return 0; }
  std::string_view EngineName() const override { return name_; }
  ScorerKind Scorer() const override { return scorer_.Kind(); }
  EngineCounters Counters() const override { return counters_.Snap(); }

 private:
  /// Score of every edge at `tau`, by EdgeId.
  std::vector<uint32_t> AllScores(uint32_t tau) const;

  const graph::Graph& graph_;
  const DiversityScorer& scorer_;
  std::string name_;  // EngineName() returns a view; owned storage
  EngineCounterBlock counters_;
};

/// Engine names accepted by BuildQueryEngine, in presentation order.
std::vector<std::string> QueryEngineNames();

/// Builds the engine registered under `name` ("treap", "frozen", "dynamic",
/// "online", "online-mindeg") for graph `g`. The online engines borrow `g`
/// (it must outlive the result); the index engines snapshot it. Returns
/// nullptr and sets *error on an unknown name.
std::unique_ptr<EsdQueryEngine> BuildQueryEngine(const graph::Graph& g,
                                                 std::string_view name,
                                                 std::string* error);

/// Scorer-parameterized factory: same engine names, but the per-edge score
/// definition comes from `scorer`. For the ESD scorer this dispatches to
/// the specialized builders above; for other scorers the index engines are
/// built through the scorer's bulk hook and the online engines become
/// ScorerOnlineEngine full scans (both "online" and "online-mindeg" map to
/// the same full scan — non-ESD scorers have no upper-bound pruning rules).
std::unique_ptr<EsdQueryEngine> BuildQueryEngine(
    const graph::Graph& g, std::string_view name,
    const DiversityScorer& scorer, std::string* error);

/// Publishes engine.Counters() as gauges `<prefix><field>` (default
/// esd_engine_queries, esd_engine_heap_pops, ...) on `registry`, so a
/// registry scrape (esd_server METRICS, esd_cli --metrics) carries the
/// engine's work counters. Gauges, not counters: each call overwrites
/// with the engine's current lifetime totals.
void ExportEngineCounters(const EsdQueryEngine& engine,
                          obs::MetricRegistry* registry,
                          std::string_view prefix = "esd_engine_");

}  // namespace esd::core

#endif  // ESD_CORE_QUERY_ENGINE_H_
