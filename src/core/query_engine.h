#ifndef ESD_CORE_QUERY_ENGINE_H_
#define ESD_CORE_QUERY_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/online_topk.h"
#include "core/topk_result.h"
#include "graph/graph.h"

namespace esd::core {

/// The serving-layer contract every top-k ESD engine implements.
///
/// Four engines exist:
///   * EsdIndex        — the paper's treap-backed index ("treap"), also the
///                       mutation substrate of the maintenance algorithms;
///   * FrozenEsdIndex  — an immutable CSR-slab image of the same index
///                       ("frozen"), the read-optimized serving layer;
///   * DynamicEsdIndex — the maintained index ("dynamic"), delegating to its
///                       internal EsdIndex;
///   * OnlineQueryEngine — an index-free adapter over the online BFS
///                       algorithms ("online"), for one-shot workloads.
///
/// Shared semantics (engine-parity tests rely on these exactly):
///   * Query(k, 0) and Query(0, tau) are empty.
///   * When fewer than k edges have positive score and padding is on, the
///     remainder is filled with zero-score live edges in ascending edge-id
///     order, skipping edges already reported — a documented deterministic
///     order, identical across the index-backed engines.
///   * CountWithScoreAtLeast(tau, 0) counts every live edge;
///     QueryWithScoreAtLeast requires min_score >= 1 (else empty).
///
/// Thread safety: every method of this interface is const and must be safe
/// to call concurrently from any number of threads as long as no thread
/// mutates the engine (or, for the online adapters, the borrowed graph)
/// during the calls. The serving layer (serve::EsdQueryService) relies on
/// exactly this contract to share one engine across its worker pool;
/// FrozenEsdIndex is immutable after construction and is the engine meant
/// to be shared. Mutating engines (EsdIndex under maintenance,
/// DynamicEsdIndex) require external synchronization between writes and
/// any concurrent reads.
class EsdQueryEngine {
 public:
  virtual ~EsdQueryEngine() = default;

  /// Top-k structural diversity query at threshold `tau`.
  virtual TopKResult Query(uint32_t k, uint32_t tau,
                           bool pad_with_zero_edges = true) const = 0;

  /// Score of edge `e` (a dense id of this engine's snapshot) at `tau`.
  virtual uint32_t ScoreOf(graph::EdgeId e, uint32_t tau) const = 0;

  /// Number of edges whose score at `tau` is >= min_score.
  virtual uint64_t CountWithScoreAtLeast(uint32_t tau,
                                         uint32_t min_score) const = 0;

  /// All edges with score >= min_score at `tau` (at most `limit`,
  /// 0 = unlimited), descending score.
  virtual TopKResult QueryWithScoreAtLeast(uint32_t tau, uint32_t min_score,
                                           size_t limit = 0) const = 0;

  /// Approximate resident bytes of the serving structure (0 for the
  /// index-free online adapter).
  virtual uint64_t MemoryBytes() const = 0;

  /// Stable engine name ("treap", "frozen", "dynamic", "online", ...), the
  /// key used by the CLI/bench engine selectors and the JSON bench output.
  virtual std::string_view EngineName() const = 0;

 protected:
  EsdQueryEngine() = default;
  EsdQueryEngine(const EsdQueryEngine&) = default;
  EsdQueryEngine& operator=(const EsdQueryEngine&) = default;
  EsdQueryEngine(EsdQueryEngine&&) = default;
  EsdQueryEngine& operator=(EsdQueryEngine&&) = default;
};

/// Index-free engine: answers every call by running the online algorithms
/// against a borrowed graph (which must outlive the adapter). Query is the
/// dequeue-twice OnlineTopK; the threshold calls score every edge — they
/// exist for interface completeness, not for serving traffic.
class OnlineQueryEngine final : public EsdQueryEngine {
 public:
  explicit OnlineQueryEngine(
      const graph::Graph& g,
      UpperBoundRule rule = UpperBoundRule::kCommonNeighbor)
      : graph_(g), rule_(rule) {}

  TopKResult Query(uint32_t k, uint32_t tau,
                   bool pad_with_zero_edges = true) const override;
  uint32_t ScoreOf(graph::EdgeId e, uint32_t tau) const override;
  uint64_t CountWithScoreAtLeast(uint32_t tau,
                                 uint32_t min_score) const override;
  TopKResult QueryWithScoreAtLeast(uint32_t tau, uint32_t min_score,
                                   size_t limit = 0) const override;
  uint64_t MemoryBytes() const override { return 0; }
  std::string_view EngineName() const override {
    return rule_ == UpperBoundRule::kCommonNeighbor ? "online"
                                                    : "online-mindeg";
  }

 private:
  const graph::Graph& graph_;
  UpperBoundRule rule_;
};

/// Engine names accepted by BuildQueryEngine, in presentation order.
std::vector<std::string> QueryEngineNames();

/// Builds the engine registered under `name` ("treap", "frozen", "dynamic",
/// "online", "online-mindeg") for graph `g`. The online engines borrow `g`
/// (it must outlive the result); the index engines snapshot it. Returns
/// nullptr and sets *error on an unknown name.
std::unique_ptr<EsdQueryEngine> BuildQueryEngine(const graph::Graph& g,
                                                 std::string_view name,
                                                 std::string* error);

}  // namespace esd::core

#endif  // ESD_CORE_QUERY_ENGINE_H_
