#include "core/online_topk.h"

#include <algorithm>

#include "core/ego_network.h"
#include "util/binary_heap.h"
#include "util/timer.h"

namespace esd::core {

using graph::EdgeId;
using graph::Graph;

TopKResult OnlineTopK(const Graph& g, uint32_t k, uint32_t tau,
                      UpperBoundRule rule, OnlineStats* stats) {
  TopKResult result;
  if (k == 0 || g.NumEdges() == 0 || tau == 0) return result;

  // Priority encodes (score_or_bound, phase): phase 1 (exact) wins ties so
  // certified answers drain before equal-bound candidates are expanded.
  auto priority = [](uint32_t value, uint32_t phase) {
    return (static_cast<int64_t>(value) << 1) | phase;
  };

  util::BinaryHeap<EdgeId, int64_t> queue;
  queue.Reserve(g.NumEdges());

  util::Timer bound_timer;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const graph::Edge& uv = g.EdgeAt(e);
    uint32_t base;
    if (rule == UpperBoundRule::kMinDegree) {
      base = std::min(g.Degree(uv.u), g.Degree(uv.v));
    } else {
      base = graph::CountCommonNeighbors(g, uv.u, uv.v);
    }
    const uint32_t bound = base / tau;
    if (bound == 0) {
      // score(e) <= bound = 0 and scores are non-negative, so the edge is
      // already certified at 0: enqueue it directly in the exact phase and
      // never pay its ego-network BFS.
      queue.Push(e, priority(0, 1));
      if (stats != nullptr) ++stats->zero_bound_skips;
    } else {
      queue.Push(e, priority(bound, 0));
    }
  }
  if (stats != nullptr) stats->bound_seconds = bound_timer.ElapsedSeconds();

  std::vector<uint32_t> exact(g.NumEdges(), 0);
  while (result.size() < k && !queue.empty()) {
    auto [e, prio] = queue.Pop();
    if (stats != nullptr) ++stats->heap_pops;
    if ((prio & 1) != 0) {
      // Second dequeue: certified answer (Theorem 1).
      result.push_back(ScoredEdge{g.EdgeAt(e), exact[e]});
      continue;
    }
    const graph::Edge& uv = g.EdgeAt(e);
    exact[e] = EdgeScore(g, uv.u, uv.v, tau);
    if (stats != nullptr) ++stats->exact_computations;
    queue.Push(e, priority(exact[e], 1));
  }
  return result;
}

}  // namespace esd::core
