#include "core/index_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <span>
#include <utility>
#include <vector>

#include "core/binary_format.h"
#include "fault/failpoint.h"

namespace esd::core {

namespace {

/// Shared by the four path-based entry points: a fired index_io.save /
/// index_io.load fail point turns into the same typed "cannot open"-style
/// error a real filesystem failure would produce.
bool InjectedIoError(const char* point, const std::string& path,
                     const char* verb, std::string* error) {
  (void)point;  // the macro discards its argument under ESD_FAULT=OFF
  if (const auto hit = ESD_FAILPOINT(point)) {
    if (error != nullptr) {
      *error = std::string("cannot ") + verb + " " + path + ": " +
               std::strerror(hit.error_code) + " [injected]";
    }
    return true;
  }
  return false;
}

}  // namespace

namespace {

// The checksumming Reader/Writer pair and its hardened length-prefix
// handling live in core/binary_format.h, shared with the live-index
// snapshot and WAL formats.
using Reader = BinaryReader;
using Writer = BinaryWriter;

constexpr char kMagic[4] = {'E', 'S', 'D', 'X'};
constexpr uint32_t kVersionRecords = 1;  // per-slot records, treaps rebuilt
constexpr uint32_t kVersionFrozen = 2;   // frozen arrays written verbatim

/// Reads magic + version. Returns 0 (with *error set) on failure.
uint32_t ReadHeader(std::istream& in, std::string* error) {
  auto fail = [error](const char* what) {
    if (error != nullptr) *error = what;
    return 0u;
  };
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return fail("bad magic: not an ESDIndex file");
  }
  uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in ||
      (version != kVersionRecords && version != kVersionFrozen)) {
    return fail("unsupported index version");
  }
  return version;
}

/// One v1 slot record.
struct Record {
  graph::Edge edge;
  bool live;
  std::vector<uint32_t> sizes;
};

/// Reads the v1 payload (after the header) and verifies the checksum.
bool ReadV1Records(std::istream& in, std::vector<Record>* out,
                   std::string* error) {
  auto fail = [error](const char* what) {
    if (error != nullptr) *error = what;
    return false;
  };
  Reader r(in);
  uint64_t slots = 0;
  if (!r.Get(&slots)) return fail("truncated index file");
  std::vector<Record> records;
  records.reserve(slots);
  for (uint64_t i = 0; i < slots; ++i) {
    Record rec;
    uint8_t live = 0;
    uint32_t count = 0;
    if (!r.Get(&rec.edge.u) || !r.Get(&rec.edge.v) || !r.Get(&live) ||
        !r.Get(&count)) {
      return fail("truncated index file");
    }
    rec.live = live != 0;
    rec.sizes.resize(count);
    uint32_t prev = 0;
    for (uint32_t j = 0; j < count; ++j) {
      if (!r.Get(&rec.sizes[j])) return fail("truncated index file");
      if (rec.sizes[j] < prev || rec.sizes[j] == 0) {
        return fail("corrupt index file: size multiset not sorted/positive");
      }
      prev = rec.sizes[j];
    }
    records.push_back(std::move(rec));
  }
  uint64_t stored_checksum = 0;
  in.read(reinterpret_cast<char*>(&stored_checksum), sizeof(stored_checksum));
  if (!in || stored_checksum != r.checksum()) {
    return fail("checksum mismatch: index file corrupt");
  }
  *out = std::move(records);
  return true;
}

/// Reads the v2 payload (after the header) and verifies the checksum. The
/// parts still need FrozenEsdIndex::Adopt validation afterwards.
bool ReadV2Parts(std::istream& in, FrozenEsdIndex::Parts* out,
                 std::string* error) {
  auto fail = [error](const char* what) {
    if (error != nullptr) *error = what;
    return false;
  };
  Reader r(in);
  FrozenEsdIndex::Parts parts;
  if (!r.GetArray(&parts.edges) || !r.GetArray(&parts.live) ||
      !r.GetArray(&parts.size_offsets) || !r.GetArray(&parts.size_pool) ||
      !r.GetArray(&parts.sizes) || !r.GetArray(&parts.offsets) ||
      !r.GetArray(&parts.entries)) {
    return fail(r.error() != nullptr ? r.error() : "truncated index file");
  }
  uint64_t stored_checksum = 0;
  in.read(reinterpret_cast<char*>(&stored_checksum), sizeof(stored_checksum));
  if (!in || stored_checksum != r.checksum()) {
    return fail("checksum mismatch: index file corrupt");
  }
  *out = std::move(parts);
  return true;
}

/// Reassembles an EsdIndex from v1 records, reproducing the exact edge-id
/// layout (freed slots stay freed).
EsdIndex IndexFromRecords(std::vector<Record> records) {
  bool all_live = true;
  for (const Record& rec : records) all_live &= rec.live;
  EsdIndex fresh;
  if (all_live) {
    // Fast path: all slots live -> BulkLoad.
    std::vector<graph::Edge> edges;
    std::vector<std::vector<uint32_t>> sizes;
    edges.reserve(records.size());
    sizes.reserve(records.size());
    for (Record& rec : records) {
      edges.push_back(rec.edge);
      sizes.push_back(std::move(rec.sizes));
    }
    fresh.BulkLoad(std::move(edges), std::move(sizes));
  } else {
    // Register every slot first so ids stay sequential (RegisterEdge would
    // otherwise recycle freed ids mid-replay), then free the dead slots.
    for (Record& rec : records) {
      graph::EdgeId e = fresh.RegisterEdge(rec.edge);
      if (rec.live) fresh.SetEdgeSizes(e, std::move(rec.sizes));
    }
    for (graph::EdgeId e = 0; e < records.size(); ++e) {
      if (!records[e].live) fresh.UnregisterEdge(e);
    }
  }
  return fresh;
}

/// Builds the frozen image from v1 records (the one-time slab build a v1
/// file pays when loaded into the serving layer).
FrozenEsdIndex FrozenFromRecords(std::vector<Record> records) {
  std::vector<graph::Edge> edges;
  std::vector<std::vector<uint32_t>> sizes;
  std::vector<uint8_t> live;
  edges.reserve(records.size());
  sizes.reserve(records.size());
  live.reserve(records.size());
  for (Record& rec : records) {
    edges.push_back(rec.edge);
    sizes.push_back(std::move(rec.sizes));
    live.push_back(rec.live ? 1 : 0);
  }
  return FrozenEsdIndex::FromEdgeSizes(std::move(edges), std::move(sizes),
                                       std::move(live));
}

}  // namespace

bool SerializeIndex(const EsdIndex& index, std::ostream& out,
                    std::string* error) {
  out.write(kMagic, sizeof(kMagic));
  uint32_t version = kVersionRecords;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));

  Writer w(out);
  const uint64_t slots = index.EdgeSlotCount();
  w.Put(slots);
  for (graph::EdgeId e = 0; e < slots; ++e) {
    const graph::Edge edge = index.EdgeAt(e);
    w.Put(edge.u);
    w.Put(edge.v);
    w.Put(static_cast<uint8_t>(index.IsLive(e) ? 1 : 0));
    // Freed slots always carry an empty multiset (UnregisterEdge requires
    // clearing first), so EdgeSizes is safe for both cases.
    const std::vector<uint32_t>& sizes = index.EdgeSizes(e);
    w.Put(static_cast<uint32_t>(sizes.size()));
    if (!sizes.empty()) {
      w.PutRaw(sizes.data(), sizes.size() * sizeof(uint32_t));
    }
  }
  uint64_t checksum = w.checksum();
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "write failure while serializing index";
    return false;
  }
  return true;
}

bool SerializeFrozenIndex(const FrozenEsdIndex& index, std::ostream& out,
                          std::string* error) {
  out.write(kMagic, sizeof(kMagic));
  uint32_t version = kVersionFrozen;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));

  // A default-constructed index has empty offset arrays; serialize the
  // canonical single-zero tables so the file always round-trips through
  // Adopt's invariants.
  static constexpr uint64_t kZeroOffset = 0;
  std::span<const uint64_t> size_offsets = index.SizeOffsets();
  if (size_offsets.empty()) size_offsets = std::span(&kZeroOffset, 1);
  std::span<const uint64_t> slab_offsets = index.SlabOffsets();
  if (slab_offsets.empty()) slab_offsets = std::span(&kZeroOffset, 1);

  Writer w(out);
  w.PutArray(index.Edges());
  w.PutArray(index.LiveMask());
  w.PutArray(size_offsets);
  w.PutArray(index.SizePool());
  w.PutArray(index.Sizes());
  w.PutArray(slab_offsets);
  w.PutArray(index.Entries());
  uint64_t checksum = w.checksum();
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "write failure while serializing index";
    return false;
  }
  return true;
}

bool DeserializeIndex(std::istream& in, EsdIndex* index, std::string* error) {
  const uint32_t version = ReadHeader(in, error);
  if (version == 0) return false;
  if (version == kVersionRecords) {
    std::vector<Record> records;
    if (!ReadV1Records(in, &records, error)) return false;
    *index = IndexFromRecords(std::move(records));
    return true;
  }
  // v2: validate the frozen image, then thaw it back into treaps.
  FrozenEsdIndex::Parts parts;
  if (!ReadV2Parts(in, &parts, error)) return false;
  FrozenEsdIndex frozen;
  if (!FrozenEsdIndex::Adopt(std::move(parts), &frozen, error)) return false;
  *index = Thaw(frozen);
  return true;
}

bool DeserializeFrozenIndex(std::istream& in, FrozenEsdIndex* index,
                            std::string* error) {
  const uint32_t version = ReadHeader(in, error);
  if (version == 0) return false;
  if (version == kVersionFrozen) {
    FrozenEsdIndex::Parts parts;
    if (!ReadV2Parts(in, &parts, error)) return false;
    return FrozenEsdIndex::Adopt(std::move(parts), index, error);
  }
  // v1: rebuild the slabs once from the per-edge multisets.
  std::vector<Record> records;
  if (!ReadV1Records(in, &records, error)) return false;
  *index = FrozenFromRecords(std::move(records));
  return true;
}

bool SaveIndex(const EsdIndex& index, const std::string& path,
               std::string* error) {
  if (InjectedIoError("index_io.save", path, "write", error)) return false;
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  return SerializeIndex(index, out, error);
}

bool LoadIndex(const std::string& path, EsdIndex* index, std::string* error) {
  if (InjectedIoError("index_io.load", path, "read", error)) return false;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  return DeserializeIndex(in, index, error);
}

bool SaveFrozenIndex(const FrozenEsdIndex& index, const std::string& path,
                     std::string* error) {
  if (InjectedIoError("index_io.save", path, "write", error)) return false;
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  return SerializeFrozenIndex(index, out, error);
}

bool LoadFrozenIndex(const std::string& path, FrozenEsdIndex* index,
                     std::string* error) {
  if (InjectedIoError("index_io.load", path, "read", error)) return false;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  return DeserializeFrozenIndex(in, index, error);
}

}  // namespace esd::core
