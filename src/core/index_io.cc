#include "core/index_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <optional>
#include <ostream>
#include <span>
#include <utility>
#include <vector>

#include "core/binary_format.h"
#include "fault/failpoint.h"

namespace esd::core {

namespace {

/// Shared by the path-based entry points: a fired index_io.save /
/// index_io.load fail point turns into the same typed "cannot open"-style
/// error a real filesystem failure would produce.
bool InjectedIoError(const char* point, const std::string& path,
                     const char* verb, std::string* error) {
  (void)point;  // the macro discards its argument under ESD_FAULT=OFF
  if (const auto hit = ESD_FAILPOINT(point)) {
    if (error != nullptr) {
      *error = std::string("cannot ") + verb + " " + path + ": " +
               std::strerror(hit.error_code) + " [injected]";
    }
    return true;
  }
  return false;
}

}  // namespace

namespace {

// The checksumming Reader/Writer pair and its hardened length-prefix
// handling live in core/binary_format.h, shared with the live-index
// snapshot and WAL formats.
using Reader = BinaryReader;
using Writer = BinaryWriter;

constexpr char kMagic[4] = {'E', 'S', 'D', 'X'};
constexpr uint32_t kVersionRecords = 1;        // per-slot records, no scorer
constexpr uint32_t kVersionFrozen = 2;         // frozen arrays, no scorer
constexpr uint32_t kVersionRecordsScorer = 3;  // v1 + leading scorer id
constexpr uint32_t kVersionFrozenScorer = 4;   // v2 + leading scorer id

IndexIoResult Fail(IndexIoStatus status, std::string message) {
  return IndexIoResult{status, std::move(message)};
}

IndexIoResult FormatError(std::string message) {
  return Fail(IndexIoStatus::kFormatError, std::move(message));
}

bool IsRecordVersion(uint32_t v) {
  return v == kVersionRecords || v == kVersionRecordsScorer;
}

/// Reads magic + version (the un-checksummed preamble). Returns kOk and
/// sets *version on success.
IndexIoResult ReadVersionHeader(std::istream& in, uint32_t* version) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return FormatError("bad magic: not an ESDIndex file");
  }
  uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in || v < kVersionRecords || v > kVersionFrozenScorer) {
    return FormatError("unsupported index version");
  }
  *version = v;
  return {};
}

/// Reads the scorer id (first checksummed field) for v3/v4 streams;
/// v1/v2 streams carry no id and load as kEsd. A raw value that is not a
/// known ScorerKind is the typed kUnknownScorer error — the payload that
/// follows cannot be trusted to mean anything.
IndexIoResult ReadScorerField(Reader& r, uint32_t version, ScorerKind* out) {
  if (version < kVersionRecordsScorer) {
    *out = ScorerKind::kEsd;
    return {};
  }
  uint32_t raw = 0;
  if (!r.Get(&raw)) return FormatError("truncated index file");
  if (!ValidScorerKind(raw)) {
    return Fail(
        IndexIoStatus::kUnknownScorer,
        "unknown scorer id " + std::to_string(raw) + " in index file");
  }
  *out = static_cast<ScorerKind>(raw);
  return {};
}

/// The kScorerMismatch error, emitted only after the checksum verified —
/// so "mismatch" always means a well-formed file of another scorer, never
/// a corrupt one.
IndexIoResult CheckExpectedScorer(ScorerKind got,
                                  std::optional<ScorerKind> expected) {
  if (!expected.has_value() || got == *expected) return {};
  return Fail(IndexIoStatus::kScorerMismatch,
              std::string("scorer mismatch: index file was built for '") +
                  std::string(ScorerKindName(got)) + "' (id " +
                  std::to_string(static_cast<uint32_t>(got)) +
                  ") but this engine expects '" +
                  std::string(ScorerKindName(*expected)) + "' (id " +
                  std::to_string(static_cast<uint32_t>(*expected)) + ")");
}

/// One record-format slot.
struct Record {
  graph::Edge edge;
  bool live;
  std::vector<uint32_t> sizes;
};

/// Reads the record payload (after the header/scorer) and verifies the
/// checksum. `r` must be the same Reader the scorer field went through so
/// the checksum covers it.
IndexIoResult ReadRecordPayload(std::istream& in, Reader& r,
                                std::vector<Record>* out) {
  uint64_t slots = 0;
  if (!r.Get(&slots)) return FormatError("truncated index file");
  std::vector<Record> records;
  records.reserve(slots);
  for (uint64_t i = 0; i < slots; ++i) {
    Record rec;
    uint8_t live = 0;
    uint32_t count = 0;
    if (!r.Get(&rec.edge.u) || !r.Get(&rec.edge.v) || !r.Get(&live) ||
        !r.Get(&count)) {
      return FormatError("truncated index file");
    }
    rec.live = live != 0;
    rec.sizes.resize(count);
    uint32_t prev = 0;
    for (uint32_t j = 0; j < count; ++j) {
      if (!r.Get(&rec.sizes[j])) return FormatError("truncated index file");
      if (rec.sizes[j] < prev || rec.sizes[j] == 0) {
        return FormatError(
            "corrupt index file: size multiset not sorted/positive");
      }
      prev = rec.sizes[j];
    }
    records.push_back(std::move(rec));
  }
  uint64_t stored_checksum = 0;
  in.read(reinterpret_cast<char*>(&stored_checksum), sizeof(stored_checksum));
  if (!in || stored_checksum != r.checksum()) {
    return FormatError("checksum mismatch: index file corrupt");
  }
  *out = std::move(records);
  return {};
}

/// Reads the frozen payload (after the header/scorer) and verifies the
/// checksum. The parts still need FrozenEsdIndex::Adopt validation.
IndexIoResult ReadFrozenPayload(std::istream& in, Reader& r,
                                FrozenEsdIndex::Parts* out) {
  FrozenEsdIndex::Parts parts;
  if (!r.GetArray(&parts.edges) || !r.GetArray(&parts.live) ||
      !r.GetArray(&parts.size_offsets) || !r.GetArray(&parts.size_pool) ||
      !r.GetArray(&parts.sizes) || !r.GetArray(&parts.offsets) ||
      !r.GetArray(&parts.entries)) {
    return FormatError(r.error() != nullptr ? r.error()
                                            : "truncated index file");
  }
  uint64_t stored_checksum = 0;
  in.read(reinterpret_cast<char*>(&stored_checksum), sizeof(stored_checksum));
  if (!in || stored_checksum != r.checksum()) {
    return FormatError("checksum mismatch: index file corrupt");
  }
  *out = std::move(parts);
  return {};
}

/// Reassembles an EsdIndex from record slots, reproducing the exact
/// edge-id layout (freed slots stay freed).
EsdIndex IndexFromRecords(std::vector<Record> records) {
  bool all_live = true;
  for (const Record& rec : records) all_live &= rec.live;
  EsdIndex fresh;
  if (all_live) {
    // Fast path: all slots live -> BulkLoad.
    std::vector<graph::Edge> edges;
    std::vector<std::vector<uint32_t>> sizes;
    edges.reserve(records.size());
    sizes.reserve(records.size());
    for (Record& rec : records) {
      edges.push_back(rec.edge);
      sizes.push_back(std::move(rec.sizes));
    }
    fresh.BulkLoad(std::move(edges), std::move(sizes));
  } else {
    // Register every slot first so ids stay sequential (RegisterEdge would
    // otherwise recycle freed ids mid-replay), then free the dead slots.
    for (Record& rec : records) {
      graph::EdgeId e = fresh.RegisterEdge(rec.edge);
      if (rec.live) fresh.SetEdgeSizes(e, std::move(rec.sizes));
    }
    for (graph::EdgeId e = 0; e < records.size(); ++e) {
      if (!records[e].live) fresh.UnregisterEdge(e);
    }
  }
  return fresh;
}

/// Builds the frozen image from record slots (the one-time slab build a
/// record file pays when loaded into the serving layer).
FrozenEsdIndex FrozenFromRecords(std::vector<Record> records,
                                 ScorerKind scorer) {
  std::vector<graph::Edge> edges;
  std::vector<std::vector<uint32_t>> sizes;
  std::vector<uint8_t> live;
  edges.reserve(records.size());
  sizes.reserve(records.size());
  live.reserve(records.size());
  for (Record& rec : records) {
    edges.push_back(rec.edge);
    sizes.push_back(std::move(rec.sizes));
    live.push_back(rec.live ? 1 : 0);
  }
  return FrozenEsdIndex::FromEdgeSizes(std::move(edges), std::move(sizes),
                                       std::move(live), scorer);
}

IndexIoResult DeserializeIndexImpl(std::istream& in, EsdIndex* index,
                                   std::optional<ScorerKind> expected) {
  uint32_t version = 0;
  if (IndexIoResult res = ReadVersionHeader(in, &version); !res) return res;
  Reader r(in);
  ScorerKind scorer = ScorerKind::kEsd;
  if (IndexIoResult res = ReadScorerField(r, version, &scorer); !res) {
    return res;
  }
  if (IsRecordVersion(version)) {
    std::vector<Record> records;
    if (IndexIoResult res = ReadRecordPayload(in, r, &records); !res) {
      return res;
    }
    if (IndexIoResult res = CheckExpectedScorer(scorer, expected); !res) {
      return res;
    }
    *index = IndexFromRecords(std::move(records));
    index->SetScorerKind(scorer);
    return {};
  }
  // Frozen stream: validate the image, then thaw it back into treaps.
  FrozenEsdIndex::Parts parts;
  if (IndexIoResult res = ReadFrozenPayload(in, r, &parts); !res) return res;
  if (IndexIoResult res = CheckExpectedScorer(scorer, expected); !res) {
    return res;
  }
  parts.scorer = scorer;
  FrozenEsdIndex frozen;
  std::string adopt_error;
  if (!FrozenEsdIndex::Adopt(std::move(parts), &frozen, &adopt_error)) {
    return FormatError(std::move(adopt_error));
  }
  *index = Thaw(frozen);
  return {};
}

IndexIoResult DeserializeFrozenIndexImpl(std::istream& in,
                                         FrozenEsdIndex* index,
                                         std::optional<ScorerKind> expected) {
  uint32_t version = 0;
  if (IndexIoResult res = ReadVersionHeader(in, &version); !res) return res;
  Reader r(in);
  ScorerKind scorer = ScorerKind::kEsd;
  if (IndexIoResult res = ReadScorerField(r, version, &scorer); !res) {
    return res;
  }
  if (!IsRecordVersion(version)) {
    FrozenEsdIndex::Parts parts;
    if (IndexIoResult res = ReadFrozenPayload(in, r, &parts); !res) {
      return res;
    }
    if (IndexIoResult res = CheckExpectedScorer(scorer, expected); !res) {
      return res;
    }
    parts.scorer = scorer;
    std::string adopt_error;
    if (!FrozenEsdIndex::Adopt(std::move(parts), index, &adopt_error)) {
      return FormatError(std::move(adopt_error));
    }
    return {};
  }
  // Record stream: rebuild the slabs once from the per-edge multisets.
  std::vector<Record> records;
  if (IndexIoResult res = ReadRecordPayload(in, r, &records); !res) {
    return res;
  }
  if (IndexIoResult res = CheckExpectedScorer(scorer, expected); !res) {
    return res;
  }
  *index = FrozenFromRecords(std::move(records), scorer);
  return {};
}

IndexIoResult LoadIndexImpl(const std::string& path, EsdIndex* index,
                            std::optional<ScorerKind> expected) {
  std::string injected;
  if (InjectedIoError("index_io.load", path, "read", &injected)) {
    return Fail(IndexIoStatus::kIoError, std::move(injected));
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Fail(IndexIoStatus::kIoError, "cannot open " + path);
  return DeserializeIndexImpl(in, index, expected);
}

IndexIoResult LoadFrozenIndexImpl(const std::string& path,
                                  FrozenEsdIndex* index,
                                  std::optional<ScorerKind> expected) {
  std::string injected;
  if (InjectedIoError("index_io.load", path, "read", &injected)) {
    return Fail(IndexIoStatus::kIoError, std::move(injected));
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Fail(IndexIoStatus::kIoError, "cannot open " + path);
  return DeserializeFrozenIndexImpl(in, index, expected);
}

/// Adapts a typed result to the legacy bool + string* surface.
bool ToBool(const IndexIoResult& res, std::string* error) {
  if (!res && error != nullptr) *error = res.message;
  return static_cast<bool>(res);
}

}  // namespace

bool SerializeIndex(const EsdIndex& index, std::ostream& out,
                    std::string* error) {
  out.write(kMagic, sizeof(kMagic));
  uint32_t version = kVersionRecordsScorer;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));

  Writer w(out);
  w.Put(static_cast<uint32_t>(index.Scorer()));
  const uint64_t slots = index.EdgeSlotCount();
  w.Put(slots);
  for (graph::EdgeId e = 0; e < slots; ++e) {
    const graph::Edge edge = index.EdgeAt(e);
    w.Put(edge.u);
    w.Put(edge.v);
    w.Put(static_cast<uint8_t>(index.IsLive(e) ? 1 : 0));
    // Freed slots always carry an empty multiset (UnregisterEdge requires
    // clearing first), so EdgeSizes is safe for both cases.
    const std::vector<uint32_t>& sizes = index.EdgeSizes(e);
    w.Put(static_cast<uint32_t>(sizes.size()));
    if (!sizes.empty()) {
      w.PutRaw(sizes.data(), sizes.size() * sizeof(uint32_t));
    }
  }
  uint64_t checksum = w.checksum();
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "write failure while serializing index";
    return false;
  }
  return true;
}

bool SerializeFrozenIndex(const FrozenEsdIndex& index, std::ostream& out,
                          std::string* error) {
  out.write(kMagic, sizeof(kMagic));
  uint32_t version = kVersionFrozenScorer;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));

  // A default-constructed index has empty offset arrays; serialize the
  // canonical single-zero tables so the file always round-trips through
  // Adopt's invariants.
  static constexpr uint64_t kZeroOffset = 0;
  std::span<const uint64_t> size_offsets = index.SizeOffsets();
  if (size_offsets.empty()) size_offsets = std::span(&kZeroOffset, 1);
  std::span<const uint64_t> slab_offsets = index.SlabOffsets();
  if (slab_offsets.empty()) slab_offsets = std::span(&kZeroOffset, 1);

  Writer w(out);
  w.Put(static_cast<uint32_t>(index.Scorer()));
  w.PutArray(index.Edges());
  w.PutArray(index.LiveMask());
  w.PutArray(size_offsets);
  w.PutArray(index.SizePool());
  w.PutArray(index.Sizes());
  w.PutArray(slab_offsets);
  w.PutArray(index.Entries());
  uint64_t checksum = w.checksum();
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "write failure while serializing index";
    return false;
  }
  return true;
}

bool DeserializeIndex(std::istream& in, EsdIndex* index, std::string* error) {
  return ToBool(DeserializeIndexImpl(in, index, std::nullopt), error);
}

bool DeserializeFrozenIndex(std::istream& in, FrozenEsdIndex* index,
                            std::string* error) {
  return ToBool(DeserializeFrozenIndexImpl(in, index, std::nullopt), error);
}

IndexIoResult DeserializeIndex(std::istream& in, EsdIndex* index,
                               ScorerKind expected_scorer) {
  return DeserializeIndexImpl(in, index, expected_scorer);
}

IndexIoResult DeserializeFrozenIndex(std::istream& in, FrozenEsdIndex* index,
                                     ScorerKind expected_scorer) {
  return DeserializeFrozenIndexImpl(in, index, expected_scorer);
}

bool SaveIndex(const EsdIndex& index, const std::string& path,
               std::string* error) {
  if (InjectedIoError("index_io.save", path, "write", error)) return false;
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  return SerializeIndex(index, out, error);
}

bool LoadIndex(const std::string& path, EsdIndex* index, std::string* error) {
  return ToBool(LoadIndexImpl(path, index, std::nullopt), error);
}

IndexIoResult LoadIndex(const std::string& path, EsdIndex* index,
                        ScorerKind expected_scorer) {
  return LoadIndexImpl(path, index, expected_scorer);
}

bool SaveFrozenIndex(const FrozenEsdIndex& index, const std::string& path,
                     std::string* error) {
  if (InjectedIoError("index_io.save", path, "write", error)) return false;
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  return SerializeFrozenIndex(index, out, error);
}

bool LoadFrozenIndex(const std::string& path, FrozenEsdIndex* index,
                     std::string* error) {
  return ToBool(LoadFrozenIndexImpl(path, index, std::nullopt), error);
}

IndexIoResult LoadFrozenIndex(const std::string& path, FrozenEsdIndex* index,
                              ScorerKind expected_scorer) {
  return LoadFrozenIndexImpl(path, index, expected_scorer);
}

}  // namespace esd::core
