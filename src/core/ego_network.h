#ifndef ESD_CORE_EGO_NETWORK_H_
#define ESD_CORE_EGO_NETWORK_H_

#include <cstdint>
#include <vector>

#include "graph/dynamic_graph.h"
#include "graph/graph.h"

namespace esd::core {

/// Sizes of the connected components of the edge ego-network G_{N(uv)}
/// (Definition 1), sorted ascending. Computed exactly as the paper's BFS
/// (Algorithm 1 line 13 / Algorithm 2 lines 1-2): traverse each member's
/// full neighbor list, keeping the neighbors inside N(uv). Cost
/// O(Σ_{w∈N(uv)} d(w)).
std::vector<uint32_t> EgoComponentSizes(const graph::Graph& g,
                                        graph::VertexId u, graph::VertexId v);

/// Output-sensitive variant (an improvement over the paper): for a member
/// whose degree exceeds |N(uv)|, probe the member set against its sorted
/// adjacency instead, bounding the per-member cost by
/// O(min{d(w), |N(uv)|} log d(w)). Same result; used by the improved-
/// baseline builder in the ablation benches.
std::vector<uint32_t> EgoComponentSizesFast(const graph::Graph& g,
                                            graph::VertexId u,
                                            graph::VertexId v);

/// Same, over a mutable graph (used by maintenance tests and the
/// local-rebuild deletion strategy).
std::vector<uint32_t> EgoComponentSizes(const graph::DynamicGraph& g,
                                        graph::VertexId u, graph::VertexId v);

/// The connected components of the edge ego-network, as member lists
/// (each inner vector sorted ascending; components ordered by ascending
/// size, ties by smallest member). The "social contexts" themselves —
/// what the case studies display (each component is one sense / one
/// community around the tie).
std::vector<std::vector<graph::VertexId>> EgoComponents(const graph::Graph& g,
                                                        graph::VertexId u,
                                                        graph::VertexId v);

/// Edge structural diversity score(u, v): number of connected components of
/// G_{N(uv)} with size >= tau (Definition 2). tau must be >= 1.
uint32_t EdgeScore(const graph::Graph& g, graph::VertexId u, graph::VertexId v,
                   uint32_t tau);

/// Score derived from a (sorted ascending) component-size list.
uint32_t ScoreFromSizes(const std::vector<uint32_t>& sorted_sizes,
                        uint32_t tau);

}  // namespace esd::core

#endif  // ESD_CORE_EGO_NETWORK_H_
