#include "core/parallel_builder.h"

#include <utility>

#include "cliques/four_clique.h"
#include "core/edge_dsu_arena.h"
#include "graph/orientation.h"
#include "obs/trace.h"
#include "util/spinlock.h"
#include "util/thread_pool.h"

namespace esd::core {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;
using util::KeyedDsu;

namespace {

// Phases 1-3 of Section IV-E: parallel per-edge component-size extraction,
// shared by the treap and frozen output paths. The pool outlives the call.
std::vector<std::vector<uint32_t>> ParallelComponentSizes(
    const Graph& g, util::ThreadPool& pool, ParallelMode mode,
    std::vector<KeyedDsu>* m_out) {
  const EdgeId m = g.NumEdges();
  obs::PhaseSeries phases;

  // Phase 1: disjoint-set initialization, parallel over edges.
  phases.Begin("build.dsu_init");
  EdgeDsuArena dsu(g, &pool);

  // Phase 2: 4-clique enumeration.
  phases.Begin("build.orientation");
  graph::DegreeOrderedDag dag(g);
  util::StripedLocks locks(4096);
  auto locked_union = [&](EdgeId e, VertexId a, VertexId b) {
    util::SpinLockGuard guard(locks.ForKey(e));
    dsu.Union(e, a, b);
  };
  auto on_clique = [&](const cliques::FourClique& q) {
    locked_union(q.uv, q.w1, q.w2);
    locked_union(q.uw1, q.v, q.w2);
    locked_union(q.uw2, q.v, q.w1);
    locked_union(q.vw1, q.u, q.w2);
    locked_union(q.vw2, q.u, q.w1);
    locked_union(q.w1w2, q.u, q.v);
  };
  phases.Begin("build.clique_enum");
  if (mode == ParallelMode::kEdgeParallel) {
    // The paper's choice: parallel over directed arcs, whose work
    // distribution is much flatter than per-vertex work.
    struct Arc {
      VertexId u, v;
      EdgeId e;
    };
    std::vector<Arc> arcs;
    arcs.reserve(m);
    for (VertexId u = 0; u < g.NumVertices(); ++u) {
      auto out = dag.OutNeighbors(u);
      auto eids = dag.OutEdges(u);
      for (size_t i = 0; i < out.size(); ++i) {
        arcs.push_back(Arc{u, out[i], eids[i]});
      }
    }
    pool.ParallelForChunked(
        0, arcs.size(), 64, [&](uint64_t lo, uint64_t hi) {
          ESD_TRACE_SPAN("build.clique_enum.chunk");
          cliques::FourCliqueScratch scratch;
          for (uint64_t i = lo; i < hi; ++i) {
            const Arc& arc = arcs[i];
            cliques::ForEach4CliqueOfArc(dag, arc.u, arc.v, arc.e, &scratch,
                                         on_clique);
          }
        });
  } else {
    // The "simple solution" the paper warns about: parallel over vertices.
    pool.ParallelForChunked(
        0, g.NumVertices(), 32, [&](uint64_t lo, uint64_t hi) {
          ESD_TRACE_SPAN("build.clique_enum.chunk");
          cliques::FourCliqueScratch scratch;
          for (uint64_t u = lo; u < hi; ++u) {
            auto out = dag.OutNeighbors(static_cast<VertexId>(u));
            auto eids = dag.OutEdges(static_cast<VertexId>(u));
            for (size_t i = 0; i < out.size(); ++i) {
              cliques::ForEach4CliqueOfArc(dag, static_cast<VertexId>(u),
                                           out[i], eids[i], &scratch,
                                           on_clique);
            }
          }
        });
  }

  // Phase 3: component-size extraction, parallel over edges. Arena slices
  // of different edges are disjoint, so no synchronization is needed.
  phases.Begin("build.extract_sizes");
  std::vector<std::vector<uint32_t>> sizes(m);
  pool.ParallelForChunked(0, m, 512, [&](uint64_t lo, uint64_t hi) {
    ESD_TRACE_SPAN("build.extract_sizes.chunk");
    for (uint64_t e = lo; e < hi; ++e) {
      sizes[e] = dsu.ComponentSizes(static_cast<EdgeId>(e));
    }
  });

  if (m_out != nullptr) {
    m_out->clear();
    m_out->resize(m);
    auto& out = *m_out;
    pool.ParallelForChunked(0, m, 512, [&](uint64_t lo, uint64_t hi) {
      for (uint64_t e = lo; e < hi; ++e) {
        out[e] = dsu.ToKeyedDsu(static_cast<EdgeId>(e));
      }
    });
  }
  return sizes;
}

// Non-ESD scorer path: the bulk build is embarrassingly parallel over edges
// (each edge's value multiset depends only on its own ego subgraph).
std::vector<std::vector<uint32_t>> ParallelScorerValues(
    const Graph& g, const DiversityScorer& scorer, util::ThreadPool& pool) {
  const EdgeId m = g.NumEdges();
  obs::PhaseSeries phases;
  phases.Begin("build.extract_sizes");
  std::vector<std::vector<uint32_t>> values(m);
  pool.ParallelForChunked(0, m, 64, [&](uint64_t lo, uint64_t hi) {
    ESD_TRACE_SPAN("build.extract_sizes.chunk");
    for (uint64_t e = lo; e < hi; ++e) {
      const graph::Edge& uv = g.EdgeAt(static_cast<EdgeId>(e));
      values[e] = scorer.EdgeValues(g, uv.u, uv.v);
    }
  });
  return values;
}

}  // namespace

EsdIndex BuildIndexParallel(const Graph& g, unsigned num_threads,
                            std::vector<KeyedDsu>* m_out, ParallelMode mode) {
  util::ThreadPool pool(num_threads);
  EsdIndex index;
  index.BulkLoad(g.Edges(), ParallelComponentSizes(g, pool, mode, m_out));
  return index;
}

FrozenEsdIndex BuildFrozenIndexParallel(const Graph& g, unsigned num_threads,
                                        ParallelMode mode) {
  util::ThreadPool pool(num_threads);
  return FrozenEsdIndex::FromEdgeSizes(
      g.Edges(), ParallelComponentSizes(g, pool, mode, nullptr));
}

EsdIndex BuildIndexParallel(const Graph& g, const DiversityScorer& scorer,
                            unsigned num_threads, ParallelMode mode) {
  if (scorer.Kind() == ScorerKind::kEsd) {
    return BuildIndexParallel(g, num_threads, nullptr, mode);
  }
  util::ThreadPool pool(num_threads);
  EsdIndex index;
  index.BulkLoad(g.Edges(), ParallelScorerValues(g, scorer, pool));
  index.SetScorerKind(scorer.Kind());
  return index;
}

FrozenEsdIndex BuildFrozenIndexParallel(const Graph& g,
                                        const DiversityScorer& scorer,
                                        unsigned num_threads,
                                        ParallelMode mode) {
  if (scorer.Kind() == ScorerKind::kEsd) {
    return BuildFrozenIndexParallel(g, num_threads, mode);
  }
  util::ThreadPool pool(num_threads);
  return FrozenEsdIndex::FromEdgeSizes(
      g.Edges(), ParallelScorerValues(g, scorer, pool), {}, scorer.Kind());
}

}  // namespace esd::core
