#ifndef ESD_CORE_INDEX_BUILDER_H_
#define ESD_CORE_INDEX_BUILDER_H_

#include <vector>

#include "core/esd_index.h"
#include "core/frozen_index.h"
#include "core/scorer.h"
#include "graph/graph.h"
#include "util/dsu.h"

namespace esd::core {

/// Basic index construction (Algorithm 2, "ESDIndex"): one BFS over every
/// edge ego-network. O((d_max + log m) α m) worst case — each 4-clique is
/// effectively traversed six times, once per edge.
EsdIndex BuildIndexBasic(const graph::Graph& g);

/// Improved BFS baseline (beyond the paper): same as Algorithm 2 but with
/// the output-sensitive ego BFS (EgoComponentSizesFast), which bounds the
/// per-member probe cost by min{d(w), |N(uv)|}. Used by the builder
/// ablation bench.
EsdIndex BuildIndexBasicFast(const graph::Graph& g);

/// Improved index construction (Algorithm 3, "ESDIndex+"): enumerate every
/// 4-clique exactly once on the degree-ordered DAG and grow the per-edge
/// disjoint sets M_uv (Observation 1). O((α γ(n) + log m) α m).
///
/// If `m_out` is non-null it receives the per-edge disjoint-set structures
/// (indexed by EdgeId), which the dynamic index maintains incrementally.
EsdIndex BuildIndexClique(const graph::Graph& g,
                          std::vector<util::KeyedDsu>* m_out = nullptr);

/// Frozen-output path of the 4-clique builder: the per-edge component-size
/// multisets are emitted straight into the CSR slabs of a FrozenEsdIndex,
/// skipping treap construction entirely. Identical query answers to
/// Freeze(BuildIndexClique(g)) with one fewer intermediate structure.
FrozenEsdIndex BuildFrozenIndex(const graph::Graph& g);

/// The shared core of Algorithm 3: per-edge component-size multisets via one
/// 4-clique enumeration over the degree-ordered DAG (no H build). Exposed so
/// the ESD scorer's bulk hook and the builders share one implementation. If
/// `m_out` is non-null it receives the per-edge disjoint-set structures.
std::vector<std::vector<uint32_t>> CliqueComponentSizes(
    const graph::Graph& g, std::vector<util::KeyedDsu>* m_out = nullptr);

/// Scorer-parameterized treap build: ESD dispatches to BuildIndexClique,
/// any other scorer bulk-computes its value multisets through the scorer
/// hook. The result is stamped with the scorer's kind.
EsdIndex BuildIndex(const graph::Graph& g, const DiversityScorer& scorer);

/// Scorer-parameterized frozen build (same dispatch as BuildIndex).
FrozenEsdIndex BuildFrozenIndex(const graph::Graph& g,
                                const DiversityScorer& scorer);

}  // namespace esd::core

#endif  // ESD_CORE_INDEX_BUILDER_H_
