#ifndef ESD_CORE_ONLINE_TOPK_H_
#define ESD_CORE_ONLINE_TOPK_H_

#include <cstdint>

#include "core/topk_result.h"
#include "graph/graph.h"
#include "obs/search_stats.h"

namespace esd::core {

/// Upper-bounding rule used to initialize priorities in the dequeue-twice
/// framework (Section III).
enum class UpperBoundRule {
  /// ⌊min{d(u), d(v)} / τ⌋ — cheap, O(m) total ("OnlineBFS").
  kMinDegree,
  /// ⌊|N(u) ∩ N(v)| / τ⌋ — tighter, O(αm) total ("OnlineBFS+").
  kCommonNeighbor,
};

/// Counters exposed for the pruning-power ablation bench. Shared with the
/// vertex baseline (baselines::VertexOnlineStats is the same type): both
/// dequeue-twice searches report through obs::OnlineSearchStats.
using OnlineStats = obs::OnlineSearchStats;

/// The dequeue-twice online search framework (Algorithm 1): every edge is
/// enqueued with its upper bound; the first time an edge is dequeued its
/// exact score is computed and re-enqueued; the second dequeue certifies
/// the edge as an answer (Theorem 1).
///
/// Returns min(k, m) edges in descending score order. `tau` must be >= 1.
TopKResult OnlineTopK(const graph::Graph& g, uint32_t k, uint32_t tau,
                      UpperBoundRule rule, OnlineStats* stats = nullptr);

}  // namespace esd::core

#endif  // ESD_CORE_ONLINE_TOPK_H_
