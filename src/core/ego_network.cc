#include "core/ego_network.h"

#include <algorithm>

#include "graph/connectivity.h"
#include "util/flat_map.h"

namespace esd::core {

using graph::DynamicGraph;
using graph::Graph;
using graph::VertexId;

std::vector<uint32_t> EgoComponentSizes(const Graph& g, VertexId u,
                                        VertexId v) {
  // Plain BFS, as in the paper: every member's full neighbor list is
  // scanned and filtered against the membership table.
  std::vector<VertexId> common = graph::CommonNeighbors(g, u, v);
  const size_t k = common.size();
  std::vector<uint32_t> sizes;
  if (k == 0) return sizes;
  util::FlatMap<VertexId, uint32_t> local(k);
  for (uint32_t i = 0; i < k; ++i) local.Insert(common[i], i);
  std::vector<uint8_t> visited(k, 0);
  std::vector<uint32_t> queue;
  for (uint32_t s = 0; s < k; ++s) {
    if (visited[s]) continue;
    visited[s] = 1;
    queue.assign(1, s);
    uint32_t comp = 0;
    while (!queue.empty()) {
      uint32_t li = queue.back();
      queue.pop_back();
      ++comp;
      for (VertexId w : g.Neighbors(common[li])) {
        const uint32_t* lj = local.Find(w);
        if (lj != nullptr && !visited[*lj]) {
          visited[*lj] = 1;
          queue.push_back(*lj);
        }
      }
    }
    sizes.push_back(comp);
  }
  std::sort(sizes.begin(), sizes.end());
  return sizes;
}

std::vector<uint32_t> EgoComponentSizesFast(const Graph& g, VertexId u,
                                            VertexId v) {
  std::vector<VertexId> common = graph::CommonNeighbors(g, u, v);
  std::vector<uint32_t> sizes = graph::InducedComponentSizes(g, common);
  std::sort(sizes.begin(), sizes.end());
  return sizes;
}

std::vector<uint32_t> EgoComponentSizes(const DynamicGraph& g, VertexId u,
                                        VertexId v) {
  std::vector<VertexId> common = g.CommonNeighbors(u, v);
  const size_t k = common.size();
  std::vector<uint32_t> sizes;
  if (k == 0) return sizes;
  util::FlatMap<VertexId, uint32_t> local(k);
  for (uint32_t i = 0; i < k; ++i) local.Insert(common[i], i);
  std::vector<uint8_t> visited(k, 0);
  std::vector<uint32_t> queue;
  for (uint32_t s = 0; s < k; ++s) {
    if (visited[s]) continue;
    visited[s] = 1;
    queue.assign(1, s);
    uint32_t comp = 0;
    while (!queue.empty()) {
      uint32_t li = queue.back();
      queue.pop_back();
      ++comp;
      for (VertexId w : g.Neighbors(common[li])) {
        const uint32_t* lj = local.Find(w);
        if (lj != nullptr && !visited[*lj]) {
          visited[*lj] = 1;
          queue.push_back(*lj);
        }
      }
    }
    sizes.push_back(comp);
  }
  std::sort(sizes.begin(), sizes.end());
  return sizes;
}

std::vector<std::vector<VertexId>> EgoComponents(const Graph& g, VertexId u,
                                                 VertexId v) {
  std::vector<VertexId> common = graph::CommonNeighbors(g, u, v);
  const size_t k = common.size();
  std::vector<std::vector<VertexId>> components;
  if (k == 0) return components;
  util::FlatMap<VertexId, uint32_t> local(k);
  for (uint32_t i = 0; i < k; ++i) local.Insert(common[i], i);
  std::vector<uint8_t> visited(k, 0);
  std::vector<uint32_t> queue;
  for (uint32_t s = 0; s < k; ++s) {
    if (visited[s]) continue;
    visited[s] = 1;
    queue.assign(1, s);
    std::vector<VertexId> members;
    while (!queue.empty()) {
      uint32_t li = queue.back();
      queue.pop_back();
      members.push_back(common[li]);
      for (VertexId w : g.Neighbors(common[li])) {
        const uint32_t* lj = local.Find(w);
        if (lj != nullptr && !visited[*lj]) {
          visited[*lj] = 1;
          queue.push_back(*lj);
        }
      }
    }
    std::sort(members.begin(), members.end());
    components.push_back(std::move(members));
  }
  std::sort(components.begin(), components.end(),
            [](const std::vector<VertexId>& a, const std::vector<VertexId>& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              return a.front() < b.front();
            });
  return components;
}

uint32_t ScoreFromSizes(const std::vector<uint32_t>& sorted_sizes,
                        uint32_t tau) {
  auto it =
      std::lower_bound(sorted_sizes.begin(), sorted_sizes.end(), tau);
  return static_cast<uint32_t>(sorted_sizes.end() - it);
}

uint32_t EdgeScore(const Graph& g, VertexId u, VertexId v, uint32_t tau) {
  return ScoreFromSizes(EgoComponentSizes(g, u, v), tau);
}

}  // namespace esd::core
