#ifndef ESD_CORE_PAIR_DIVERSITY_H_
#define ESD_CORE_PAIR_DIVERSITY_H_

#include <cstdint>
#include <vector>

#include "core/topk_result.h"
#include "graph/graph.h"

namespace esd::core {

/// Structural diversity of an arbitrary vertex pair (u, v) — Dong et
/// al. [3], the work that motivated the paper: the number of connected
/// components with size >= tau in the subgraph induced by N(u) ∩ N(v).
/// The pair need not be an edge; Dong et al. showed high pair diversity
/// predicts future links ("friend suggestion").
uint32_t PairScore(const graph::Graph& g, graph::VertexId u,
                   graph::VertexId v, uint32_t tau);

/// A scored candidate pair (not necessarily an edge).
struct ScoredPair {
  graph::VertexId u = 0, v = 0;
  uint32_t score = 0;

  friend bool operator==(const ScoredPair&, const ScoredPair&) = default;
};

/// Top-k *non-adjacent* pairs by structural diversity — the friend-
/// suggestion query. Candidates are exactly the non-adjacent pairs with at
/// least one common neighbor (others score 0), enumerated through wedges;
/// the dequeue-twice framework with the common-neighbor bound
/// ⌊|N(u)∩N(v)|/τ⌋ prunes exact computations.
///
/// `max_candidates` caps the candidate set (highest common-neighbor counts
/// kept) to bound memory on dense graphs; 0 means no cap.
std::vector<ScoredPair> TopKNonAdjacentPairs(const graph::Graph& g,
                                             uint32_t k, uint32_t tau,
                                             size_t max_candidates = 0);

}  // namespace esd::core

#endif  // ESD_CORE_PAIR_DIVERSITY_H_
