#ifndef ESD_CORE_NAIVE_TOPK_H_
#define ESD_CORE_NAIVE_TOPK_H_

#include <cstdint>
#include <vector>

#include "core/topk_result.h"
#include "graph/graph.h"

namespace esd::core {

/// Structural diversity of every edge at threshold tau, indexed by EdgeId.
/// This is the "straightforward algorithm" of Section I used as the ground
/// truth in tests.
std::vector<uint32_t> AllEdgeScores(const graph::Graph& g, uint32_t tau);

/// Baseline top-k: score every edge, partial-sort, return the k best
/// (fewer if the graph has fewer than k edges).
TopKResult NaiveTopK(const graph::Graph& g, uint32_t k, uint32_t tau);

}  // namespace esd::core

#endif  // ESD_CORE_NAIVE_TOPK_H_
