#include "core/edge_dsu_arena.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "cliques/triangle.h"

namespace esd::core {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;

EdgeDsuArena::EdgeDsuArena(const Graph& g, util::ThreadPool* pool) {
  const EdgeId m = g.NumEdges();
  // |N(uv)| per edge via triangle support — one O(αm) pass sizes the whole
  // arena so member fill never reallocates.
  std::vector<uint32_t> support = cliques::EdgeSupport(g);
  offsets_.assign(m + 1, 0);
  for (EdgeId e = 0; e < m; ++e) offsets_[e + 1] = offsets_[e] + support[e];
  members_.resize(offsets_[m]);
  parent_.resize(offsets_[m]);
  count_.assign(offsets_[m], 1);

  auto fill = [this, &g](uint64_t lo, uint64_t hi) {
    for (uint64_t e = lo; e < hi; ++e) {
      const graph::Edge& uv = g.EdgeAt(static_cast<EdgeId>(e));
      auto nu = g.Neighbors(uv.u);
      auto nv = g.Neighbors(uv.v);
      uint64_t out = offsets_[e];
      size_t i = 0, j = 0;
      while (i < nu.size() && j < nv.size()) {
        if (nu[i] < nv[j]) {
          ++i;
        } else if (nu[i] > nv[j]) {
          ++j;
        } else {
          members_[out] = nu[i];
          parent_[out] = static_cast<uint32_t>(out);
          ++out;
          ++i;
          ++j;
        }
      }
      assert(out == offsets_[e + 1]);
    }
  };
  if (pool != nullptr) {
    pool->ParallelForChunked(0, m, 512, fill);
  } else {
    fill(0, m);
  }
}

uint32_t EdgeDsuArena::SlotOf(EdgeId e, VertexId w) const {
  auto slice = Members(e);
  auto it = std::lower_bound(slice.begin(), slice.end(), w);
  assert(it != slice.end() && *it == w);
  return static_cast<uint32_t>(offsets_[e] + (it - slice.begin()));
}

uint32_t EdgeDsuArena::FindSlot(uint32_t s) {
  while (parent_[s] != s) {
    parent_[s] = parent_[parent_[s]];  // path halving
    s = parent_[s];
  }
  return s;
}

void EdgeDsuArena::Union(EdgeId e, VertexId a, VertexId b) {
  uint32_t ra = FindSlot(SlotOf(e, a));
  uint32_t rb = FindSlot(SlotOf(e, b));
  if (ra == rb) return;
  if (count_[ra] < count_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  count_[ra] += count_[rb];
}

std::vector<uint32_t> EdgeDsuArena::ComponentSizes(EdgeId e) {
  std::vector<uint32_t> sizes;
  for (uint64_t s = offsets_[e]; s < offsets_[e + 1]; ++s) {
    if (parent_[s] == s) sizes.push_back(count_[s]);
  }
  std::sort(sizes.begin(), sizes.end());
  return sizes;
}

util::KeyedDsu EdgeDsuArena::ToKeyedDsu(EdgeId e) {
  util::KeyedDsu out;
  auto slice = Members(e);
  out.Reserve(slice.size());
  for (VertexId w : slice) out.AddMember(w);
  for (uint64_t s = offsets_[e]; s < offsets_[e + 1]; ++s) {
    uint32_t root = FindSlot(static_cast<uint32_t>(s));
    if (root != s) out.Union(members_[s], members_[root]);
  }
  return out;
}

}  // namespace esd::core
