#ifndef ESD_CORE_INDEX_IO_H_
#define ESD_CORE_INDEX_IO_H_

#include <iosfwd>
#include <string>

#include "core/esd_index.h"
#include "core/frozen_index.h"
#include "core/scorer.h"

namespace esd::core {

/// Binary serialization of the index, so a built index can be persisted
/// and loaded by later processes (the paper's motivating deployment: build
/// once in ~minutes, then answer queries in milliseconds forever).
///
/// Four on-disk versions share the magic "ESDX" + u32 version header and a
/// trailing u64 FNV-1a checksum of the payload:
///
///   v1 (record format): u64 edge-slot count, then per-slot
///      {u, v, live, size count, sizes...}. The H(c) lists are rebuilt on
///      load from the per-edge size multisets.
///   v2 (frozen format): the seven FrozenEsdIndex arrays written verbatim
///      as length-prefixed contiguous blocks (edges, live mask, multiset
///      CSR offsets + pool, distinct sizes C, slab offsets, slab entries).
///      Contiguous writes, mmap-friendly layout, and a load path that is
///      validation + adoption — no rebuild step.
///   v3 / v4: v1 / v2 with a leading u32 scorer id (ScorerKind) as the
///      first checksummed field, so a file built for one diversity scorer
///      is never silently loaded by another. v1/v2 files load as kEsd.
///
/// Both loaders accept all versions: a record file loads into a
/// FrozenEsdIndex by building the slabs once, and a frozen file loads into
/// an EsdIndex by thawing (rebuilding the treaps from the stored
/// multisets). SerializeIndex always writes v3; SerializeFrozenIndex
/// always writes v4, both stamped with the index's Scorer().

/// Typed outcome of a checked load/save, so callers can distinguish "the
/// disk is broken" from "this file belongs to a different scorer".
enum class IndexIoStatus {
  kOk = 0,
  kIoError,         // cannot open / write failure (incl. injected faults)
  kFormatError,     // bad magic, version, truncation, checksum, validation
  kScorerMismatch,  // well-formed file, but built for a different scorer
  kUnknownScorer,   // scorer id field is not any known ScorerKind
};

struct IndexIoResult {
  IndexIoStatus status = IndexIoStatus::kOk;
  std::string message;  // empty on kOk
  explicit operator bool() const { return status == IndexIoStatus::kOk; }
};

bool SaveIndex(const EsdIndex& index, const std::string& path,
               std::string* error);
bool LoadIndex(const std::string& path, EsdIndex* index, std::string* error);

bool SaveFrozenIndex(const FrozenEsdIndex& index, const std::string& path,
                     std::string* error);
bool LoadFrozenIndex(const std::string& path, FrozenEsdIndex* index,
                     std::string* error);

/// Checked variants: fail with kScorerMismatch when the file's scorer id
/// differs from `expected_scorer` (v1/v2 files count as kEsd). The bool
/// APIs above accept any scorer and stamp it on the loaded index.
IndexIoResult LoadIndex(const std::string& path, EsdIndex* index,
                        ScorerKind expected_scorer);
IndexIoResult LoadFrozenIndex(const std::string& path, FrozenEsdIndex* index,
                              ScorerKind expected_scorer);

/// Stream variants (used by the file functions and by tests).
bool SerializeIndex(const EsdIndex& index, std::ostream& out,
                    std::string* error);
bool DeserializeIndex(std::istream& in, EsdIndex* index, std::string* error);
bool SerializeFrozenIndex(const FrozenEsdIndex& index, std::ostream& out,
                          std::string* error);
bool DeserializeFrozenIndex(std::istream& in, FrozenEsdIndex* index,
                            std::string* error);

IndexIoResult DeserializeIndex(std::istream& in, EsdIndex* index,
                               ScorerKind expected_scorer);
IndexIoResult DeserializeFrozenIndex(std::istream& in, FrozenEsdIndex* index,
                                     ScorerKind expected_scorer);

}  // namespace esd::core

#endif  // ESD_CORE_INDEX_IO_H_
