#ifndef ESD_CORE_INDEX_IO_H_
#define ESD_CORE_INDEX_IO_H_

#include <iosfwd>
#include <string>

#include "core/esd_index.h"
#include "core/frozen_index.h"

namespace esd::core {

/// Binary serialization of the index, so a built index can be persisted
/// and loaded by later processes (the paper's motivating deployment: build
/// once in ~minutes, then answer queries in milliseconds forever).
///
/// Two on-disk versions share the magic "ESDX" + u32 version header and a
/// trailing u64 FNV-1a checksum of the payload:
///
///   v1 (record format): u64 edge-slot count, then per-slot
///      {u, v, live, size count, sizes...}. The H(c) lists are rebuilt on
///      load from the per-edge size multisets.
///   v2 (frozen format): the seven FrozenEsdIndex arrays written verbatim
///      as length-prefixed contiguous blocks (edges, live mask, multiset
///      CSR offsets + pool, distinct sizes C, slab offsets, slab entries).
///      Contiguous writes, mmap-friendly layout, and a load path that is
///      validation + adoption — no rebuild step.
///
/// Both loaders accept both versions: a v1 file loads into a
/// FrozenEsdIndex by building the slabs once, and a v2 file loads into an
/// EsdIndex by thawing (rebuilding the treaps from the stored multisets).
/// SerializeIndex always writes v1; SerializeFrozenIndex always writes v2.
bool SaveIndex(const EsdIndex& index, const std::string& path,
               std::string* error);
bool LoadIndex(const std::string& path, EsdIndex* index, std::string* error);

bool SaveFrozenIndex(const FrozenEsdIndex& index, const std::string& path,
                     std::string* error);
bool LoadFrozenIndex(const std::string& path, FrozenEsdIndex* index,
                     std::string* error);

/// Stream variants (used by the file functions and by tests).
bool SerializeIndex(const EsdIndex& index, std::ostream& out,
                    std::string* error);
bool DeserializeIndex(std::istream& in, EsdIndex* index, std::string* error);
bool SerializeFrozenIndex(const FrozenEsdIndex& index, std::ostream& out,
                          std::string* error);
bool DeserializeFrozenIndex(std::istream& in, FrozenEsdIndex* index,
                            std::string* error);

}  // namespace esd::core

#endif  // ESD_CORE_INDEX_IO_H_
