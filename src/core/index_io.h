#ifndef ESD_CORE_INDEX_IO_H_
#define ESD_CORE_INDEX_IO_H_

#include <iosfwd>
#include <string>

#include "core/esd_index.h"

namespace esd::core {

/// Binary serialization of an EsdIndex, so a built index can be persisted
/// and memory-mapped/loaded by later processes (the paper's motivating
/// deployment: build once in ~minutes, then answer queries in
/// milliseconds forever).
///
/// Format (little-endian): magic "ESDX", u32 version, u64 edge count,
/// per-edge record {u, v, live, size count, sizes...}, u64 FNV-1a checksum
/// of everything after the header. The H(c) lists are rebuilt on load from
/// the per-edge size multisets (cheaper to rebuild than to store, and
/// immune to treap layout drift).
bool SaveIndex(const EsdIndex& index, const std::string& path,
               std::string* error);
bool LoadIndex(const std::string& path, EsdIndex* index, std::string* error);

/// Stream variants (used by the file functions and by tests).
bool SerializeIndex(const EsdIndex& index, std::ostream& out,
                    std::string* error);
bool DeserializeIndex(std::istream& in, EsdIndex* index, std::string* error);

}  // namespace esd::core

#endif  // ESD_CORE_INDEX_IO_H_
