#ifndef ESD_CORE_DYNAMIC_INDEX_H_
#define ESD_CORE_DYNAMIC_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/esd_index.h"
#include "core/scorer.h"
#include "core/topk_result.h"
#include "graph/dynamic_graph.h"
#include "graph/graph.h"
#include "util/dsu.h"
#include "util/flat_map.h"

namespace esd::core {

/// How DeleteEdge repairs the per-edge disjoint sets of affected edges.
enum class DeletionStrategy {
  /// Rebuild M_xy of every affected edge from scratch (simple, obviously
  /// correct; cost O(Σ |N(xy)| · d̄) over affected edges).
  kRebuildLocal,
  /// The paper's Update procedure (Algorithm 5, lines 24-35): rebuild only
  /// the single component that contained the deleted edge's endpoints.
  kTargeted,
};

/// A dynamically maintained ESDIndex (Section V).
///
/// Owns the evolving graph, the index H, and the per-edge disjoint-set
/// structures M_e plus component-size multisets C_e the paper's maintenance
/// algorithms carry along. InsertEdge implements Algorithm 4; DeleteEdge
/// implements Algorithm 5 (both strategies available).
///
/// The key locality property (Observations 2 and 3): an update of edge
/// (u, v) only touches edges of the subgraph Ĝ_{N(uv)} induced by
/// N(uv) ∪ {u, v}.
///
/// As an EsdQueryEngine the class delegates every read to the maintained
/// EsdIndex, so a dynamic deployment serves the exact same answers as a
/// static one built on the current graph.
class DynamicEsdIndex final : public EsdQueryEngine {
 public:
  /// Bootstraps from a static snapshot using the 4-clique builder.
  explicit DynamicEsdIndex(
      const graph::Graph& g,
      DeletionStrategy strategy = DeletionStrategy::kTargeted);

  /// Scorer-parameterized bootstrap. For the ESD scorer this is the ctor
  /// above (incremental DSU maintenance, Algorithms 4/5). For any other
  /// scorer the same affected-edge enumeration applies — an update of
  /// (u, v) only changes the ego subgraphs of the edge itself, the wedge
  /// edges (u, w)/(v, w), and the pair edges inside N(uv) — but each
  /// affected edge's value multiset is recomputed through the scorer's
  /// single-edge hook instead of repaired via per-edge disjoint sets.
  /// `scorer` must outlive the index (the built-ins are singletons).
  DynamicEsdIndex(const graph::Graph& g, const DiversityScorer& scorer,
                  DeletionStrategy strategy = DeletionStrategy::kTargeted);

  /// Inserts edge {u, v} and repairs the index (Algorithm 4).
  /// Returns false (no-op) if the edge exists or u == v.
  bool InsertEdge(graph::VertexId u, graph::VertexId v);

  /// Deletes edge {u, v} and repairs the index (Algorithm 5).
  /// Returns false (no-op) if the edge does not exist.
  bool DeleteEdge(graph::VertexId u, graph::VertexId v);

  /// One update of a batch.
  struct EdgeUpdate {
    enum class Kind : uint8_t { kInsert, kDelete };
    Kind kind;
    graph::VertexId u, v;
  };

  /// Applies a sequence of updates, deferring and deduplicating the H-list
  /// score refreshes until the end of the batch — edges touched by several
  /// updates are re-scored once (an extension beyond the paper's
  /// one-update-at-a-time algorithms). Returns the number of updates that
  /// took effect.
  size_t ApplyBatch(std::span<const EdgeUpdate> updates);

  /// Adds an isolated vertex and returns its id. (Section V: "vertex
  /// insertion and deletion can be treated as a series of edge insertions
  /// and deletions" — pair this with InsertEdge for the edges.)
  graph::VertexId AddVertex() { return graph_.AddVertex(); }

  /// Removes every edge incident to `v` as one batch (v itself remains as
  /// an isolated vertex, matching the paper's reduction of vertex deletion
  /// to edge deletions). Returns the number of edges removed.
  size_t RemoveVertexEdges(graph::VertexId v);

  /// Top-k query against the maintained index. O(k log m + log n).
  TopKResult Query(uint32_t k, uint32_t tau,
                   bool pad_with_zero_edges = true) const override {
    return index_.Query(k, tau, pad_with_zero_edges);
  }

  /// Structural diversity of edge {u, v} at threshold tau, from the
  /// maintained multiset. Edge must exist.
  uint32_t ScoreOf(graph::VertexId u, graph::VertexId v, uint32_t tau) const;

  /// EsdQueryEngine reads, delegated to the maintained index. Edge ids are
  /// the maintained index's dense ids (stable across updates that do not
  /// remove the edge).
  uint32_t ScoreOf(graph::EdgeId e, uint32_t tau) const override {
    return index_.ScoreOf(e, tau);
  }
  uint64_t CountWithScoreAtLeast(uint32_t tau,
                                 uint32_t min_score) const override {
    return index_.CountWithScoreAtLeast(tau, min_score);
  }
  TopKResult QueryWithScoreAtLeast(uint32_t tau, uint32_t min_score,
                                   size_t limit = 0) const override {
    return index_.QueryWithScoreAtLeast(tau, min_score, limit);
  }
  /// Bytes of the maintained index payload (the serving structure; the
  /// per-edge DSU maintenance state is not counted).
  uint64_t MemoryBytes() const override { return index_.MemoryBytes(); }
  std::string_view EngineName() const override { return "dynamic"; }
  ScorerKind Scorer() const override { return scorer_->Kind(); }

  /// Work counters of the maintained index (queries route through it).
  EngineCounters Counters() const override { return index_.Counters(); }

  /// Current graph.
  const graph::DynamicGraph& CurrentGraph() const { return graph_; }

  /// The maintained index (for introspection and tests).
  const EsdIndex& Index() const { return index_; }

  /// Number of edges whose score entries were touched by the last update —
  /// the locality measure reported by the maintenance bench.
  size_t LastUpdateTouchedEdges() const { return last_touched_; }

 private:
  static uint64_t Key(graph::VertexId u, graph::VertexId v) {
    graph::Edge e = graph::MakeEdge(u, v);
    return (static_cast<uint64_t>(e.u) << 32) | e.v;
  }

  graph::EdgeId IdOf(graph::VertexId u, graph::VertexId v) const;

  /// Rebuilds dsu_[e] from the current graph (common neighborhood +
  /// pairwise adjacency unions).
  void RebuildDsu(graph::EdgeId e);

  /// Paper's Update: in M_e, rebuild only the component containing z.
  /// `z` need not be a member (then this is a no-op).
  void TargetedRepair(graph::EdgeId e, graph::VertexId z);

  /// Pushes edge e's current value multiset into the index.
  void RefreshScores(graph::EdgeId e);

  /// Edge e's value multiset right now: M_e's component sizes on the DSU
  /// fast path, otherwise a scorer recompute from the current graph.
  std::vector<uint32_t> ValuesFor(graph::EdgeId e);

  graph::DynamicGraph graph_;
  EsdIndex index_;
  const DiversityScorer* scorer_;               // never null
  bool use_dsu_;  // ESD only: maintain per-edge DSUs incrementally
  std::vector<util::KeyedDsu> dsu_;             // by EdgeId (DSU path only)
  util::FlatMap<uint64_t, graph::EdgeId> ids_;  // (u,v) -> EdgeId
  DeletionStrategy strategy_;
  size_t last_touched_ = 0;
  // Batch mode: RefreshScores records edge keys here instead of updating H.
  bool batch_mode_ = false;
  util::FlatSet<uint64_t> pending_refresh_;
};

}  // namespace esd::core

#endif  // ESD_CORE_DYNAMIC_INDEX_H_
