#ifndef ESD_CORE_SCORER_H_
#define ESD_CORE_SCORER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "graph/dynamic_graph.h"
#include "graph/graph.h"

namespace esd::core {

/// Identifies a per-edge diversity definition. The raw value is what gets
/// stamped into every on-disk artifact (index files, WAL header, graph
/// snapshots), so the enumerators are stable wire constants — never renumber.
enum class ScorerKind : uint32_t {
  /// The paper's edge structural diversity: values are the sizes of the
  /// connected components of the edge ego-network G_{N(uv)}.
  kEsd = 1,
  /// Truss-cohesion structural diversity: one value per ego-network
  /// component, its k-truss cohesion (max trussness of its edges; 1 for an
  /// edgeless component), so score_tau counts the components that are at
  /// least tau-cohesive.
  kTruss = 2,
  /// Ego-betweenness: b(uv) = s(s-1)/2 - |E(G_{N(uv)})| with s = |N(uv)|,
  /// the number of non-adjacent common-neighbor pairs the tie bridges.
  /// Encoded as b copies of b so score_tau(e) = b when tau <= b, else 0.
  kEgoBetweenness = 3,
};

/// A pluggable per-edge score definition over the generic index substrate.
///
/// Every engine in this repo (treap H-lists, frozen CSR slabs, dynamic
/// maintenance, the live/WAL stack) operates on one invariant shape: each
/// edge e carries a sorted-ascending multiset of uint32 values C_e, and
/// score_tau(e) = |{ c in C_e : c >= tau }|. The Theorem-4 H-list
/// consistency that makes the index answer top-k queries holds for ANY
/// multiset, so a scorer only has to define what C_e is:
///   * a bulk build hook (all edges of a static graph),
///   * a single-edge recompute hook (used by dynamic maintenance, whose
///     affected-edge enumeration — the edge, its wedge edges (u,w)/(v,w),
///     and pair edges inside N(uv) — is valid for any scorer whose value
///     depends only on the edge's ego subgraph), and
///   * a stable id/name for dispatch and on-disk stamping.
class DiversityScorer {
 public:
  virtual ~DiversityScorer() = default;

  /// Stable wire id of this scorer.
  virtual ScorerKind Kind() const = 0;

  /// Stable short name ("esd", "truss", "egobw") — the key used by
  /// `esd_cli --scorer`, the engine factory, and bench JSON.
  virtual std::string_view Name() const = 0;

  /// Value multisets (each sorted ascending) for every edge of `g`,
  /// indexed by EdgeId. Default: one EdgeValues call per edge.
  virtual std::vector<std::vector<uint32_t>> BuildAllEdgeValues(
      const graph::Graph& g) const;

  /// Value multiset (sorted ascending) of edge {u, v}.
  virtual std::vector<uint32_t> EdgeValues(const graph::Graph& g,
                                           graph::VertexId u,
                                           graph::VertexId v) const = 0;

  /// Same, over a mutable graph (the dynamic-maintenance recompute path).
  virtual std::vector<uint32_t> EdgeValues(const graph::DynamicGraph& g,
                                           graph::VertexId u,
                                           graph::VertexId v) const = 0;

 protected:
  DiversityScorer() = default;
  DiversityScorer(const DiversityScorer&) = default;
  DiversityScorer& operator=(const DiversityScorer&) = default;
};

/// The three built-in scorers (stateless process-lifetime singletons).
const DiversityScorer& EsdScorer();
const DiversityScorer& TrussScorer();
const DiversityScorer& EgoBetweennessScorer();

/// Scorer registered under `name`, or nullptr if unknown.
const DiversityScorer* FindScorer(std::string_view name);

/// Scorer for a (valid) kind.
const DiversityScorer& ScorerForKind(ScorerKind kind);

/// True if `raw` is the wire value of a known ScorerKind.
bool ValidScorerKind(uint32_t raw);

/// Stable name of `kind` ("esd", "truss", "egobw").
std::string_view ScorerKindName(ScorerKind kind);

/// Names accepted by FindScorer, in presentation order.
std::vector<std::string> ScorerNames();

}  // namespace esd::core

#endif  // ESD_CORE_SCORER_H_
