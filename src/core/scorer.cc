#include "core/scorer.h"

#include <algorithm>

#include "cliques/truss.h"
#include "core/ego_network.h"
#include "core/index_builder.h"
#include "graph/graph.h"
#include "util/dsu.h"

namespace esd::core {

namespace {

using graph::Edge;
using graph::Graph;
using graph::VertexId;

std::vector<VertexId> CommonOf(const Graph& g, VertexId u, VertexId v) {
  return graph::CommonNeighbors(g, u, v);
}

std::vector<VertexId> CommonOf(const graph::DynamicGraph& g, VertexId u,
                               VertexId v) {
  return g.CommonNeighbors(u, v);
}

// Truss-cohesion values of edge {u, v}: remap N(uv) to local ids, induce the
// ego subgraph, run one truss decomposition over it, and emit per connected
// component the max trussness of its edges (1 for an edgeless singleton).
// Works for Graph and DynamicGraph — both expose Neighbors() spans.
template <typename G>
std::vector<uint32_t> TrussValuesImpl(const G& g, VertexId u, VertexId v) {
  std::vector<VertexId> common = CommonOf(g, u, v);
  std::sort(common.begin(), common.end());
  const uint32_t s = static_cast<uint32_t>(common.size());
  if (s == 0) return {};
  std::vector<Edge> local_edges;
  for (uint32_t i = 0; i < s; ++i) {
    for (VertexId x : g.Neighbors(common[i])) {
      auto it = std::lower_bound(common.begin(), common.end(), x);
      if (it == common.end() || *it != x) continue;
      const uint32_t j = static_cast<uint32_t>(it - common.begin());
      if (i < j) local_edges.push_back(Edge{i, j});
    }
  }
  Graph ego = Graph::FromEdges(s, std::move(local_edges));
  const cliques::TrussDecomposition truss = cliques::ComputeTrussness(ego);
  util::Dsu dsu(s);
  for (const Edge& e : ego.Edges()) dsu.Union(e.u, e.v);
  std::vector<uint32_t> best(s, 0);
  for (graph::EdgeId e = 0; e < ego.NumEdges(); ++e) {
    const uint32_t root = dsu.Find(ego.EdgeAt(e).u);
    best[root] = std::max(best[root], truss.trussness[e]);
  }
  std::vector<uint32_t> values;
  values.reserve(dsu.NumComponents());
  for (uint32_t i = 0; i < s; ++i) {
    if (dsu.Find(i) != i) continue;
    values.push_back(std::max(best[i], 1u));  // edgeless component -> 1
  }
  std::sort(values.begin(), values.end());
  return values;
}

// Ego-betweenness of edge {u, v}: the number of non-adjacent pairs of common
// neighbors, b = s(s-1)/2 - |E(G_{N(uv)})|. Encoded as b copies of b so the
// generic threshold machinery yields score_tau = b * [tau <= b].
template <typename G>
std::vector<uint32_t> EgoBetweennessValuesImpl(const G& g, VertexId u,
                                               VertexId v) {
  std::vector<VertexId> common = CommonOf(g, u, v);
  std::sort(common.begin(), common.end());
  const uint64_t s = common.size();
  if (s < 2) return {};
  uint64_t intra = 0;  // edges of the induced ego subgraph, counted twice
  for (VertexId w : common) {
    for (VertexId x : g.Neighbors(w)) {
      if (std::binary_search(common.begin(), common.end(), x)) ++intra;
    }
  }
  const uint64_t b = s * (s - 1) / 2 - intra / 2;
  if (b == 0) return {};
  return std::vector<uint32_t>(static_cast<size_t>(b),
                               static_cast<uint32_t>(b));
}

class EsdScorerImpl final : public DiversityScorer {
 public:
  ScorerKind Kind() const override { return ScorerKind::kEsd; }
  std::string_view Name() const override { return "esd"; }
  std::vector<std::vector<uint32_t>> BuildAllEdgeValues(
      const Graph& g) const override {
    return CliqueComponentSizes(g, nullptr);
  }
  std::vector<uint32_t> EdgeValues(const Graph& g, VertexId u,
                                   VertexId v) const override {
    return EgoComponentSizes(g, u, v);
  }
  std::vector<uint32_t> EdgeValues(const graph::DynamicGraph& g, VertexId u,
                                   VertexId v) const override {
    return EgoComponentSizes(g, u, v);
  }
};

class TrussScorerImpl final : public DiversityScorer {
 public:
  ScorerKind Kind() const override { return ScorerKind::kTruss; }
  std::string_view Name() const override { return "truss"; }
  std::vector<uint32_t> EdgeValues(const Graph& g, VertexId u,
                                   VertexId v) const override {
    return TrussValuesImpl(g, u, v);
  }
  std::vector<uint32_t> EdgeValues(const graph::DynamicGraph& g, VertexId u,
                                   VertexId v) const override {
    return TrussValuesImpl(g, u, v);
  }
};

class EgoBetweennessScorerImpl final : public DiversityScorer {
 public:
  ScorerKind Kind() const override { return ScorerKind::kEgoBetweenness; }
  std::string_view Name() const override { return "egobw"; }
  std::vector<uint32_t> EdgeValues(const Graph& g, VertexId u,
                                   VertexId v) const override {
    return EgoBetweennessValuesImpl(g, u, v);
  }
  std::vector<uint32_t> EdgeValues(const graph::DynamicGraph& g, VertexId u,
                                   VertexId v) const override {
    return EgoBetweennessValuesImpl(g, u, v);
  }
};

}  // namespace

std::vector<std::vector<uint32_t>> DiversityScorer::BuildAllEdgeValues(
    const Graph& g) const {
  std::vector<std::vector<uint32_t>> values(g.NumEdges());
  for (graph::EdgeId e = 0; e < g.NumEdges(); ++e) {
    const Edge& uv = g.EdgeAt(e);
    values[e] = EdgeValues(g, uv.u, uv.v);
  }
  return values;
}

const DiversityScorer& EsdScorer() {
  static const EsdScorerImpl scorer;
  return scorer;
}

const DiversityScorer& TrussScorer() {
  static const TrussScorerImpl scorer;
  return scorer;
}

const DiversityScorer& EgoBetweennessScorer() {
  static const EgoBetweennessScorerImpl scorer;
  return scorer;
}

const DiversityScorer* FindScorer(std::string_view name) {
  if (name == "esd") return &EsdScorer();
  if (name == "truss") return &TrussScorer();
  if (name == "egobw") return &EgoBetweennessScorer();
  return nullptr;
}

const DiversityScorer& ScorerForKind(ScorerKind kind) {
  switch (kind) {
    case ScorerKind::kEsd:
      return EsdScorer();
    case ScorerKind::kTruss:
      return TrussScorer();
    case ScorerKind::kEgoBetweenness:
      return EgoBetweennessScorer();
  }
  return EsdScorer();
}

bool ValidScorerKind(uint32_t raw) {
  return raw == static_cast<uint32_t>(ScorerKind::kEsd) ||
         raw == static_cast<uint32_t>(ScorerKind::kTruss) ||
         raw == static_cast<uint32_t>(ScorerKind::kEgoBetweenness);
}

std::string_view ScorerKindName(ScorerKind kind) {
  return ScorerForKind(kind).Name();
}

std::vector<std::string> ScorerNames() {
  return {"esd", "truss", "egobw"};
}

}  // namespace esd::core
