#ifndef ESD_CORE_TOPK_RESULT_H_
#define ESD_CORE_TOPK_RESULT_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace esd::core {

/// One edge of a top-k answer.
struct ScoredEdge {
  graph::Edge edge;
  uint32_t score = 0;

  friend bool operator==(const ScoredEdge&, const ScoredEdge&) = default;
};

/// A top-k answer: edges sorted by score descending. Ties are broken
/// arbitrarily (the paper leaves tie order unspecified), so tests compare
/// the score multiset, not edge identities.
using TopKResult = std::vector<ScoredEdge>;

/// Extracts the (descending) score vector of a result — the canonical form
/// used when comparing answers from different algorithms.
inline std::vector<uint32_t> Scores(const TopKResult& r) {
  std::vector<uint32_t> s;
  s.reserve(r.size());
  for (const ScoredEdge& e : r) s.push_back(e.score);
  return s;
}

}  // namespace esd::core

#endif  // ESD_CORE_TOPK_RESULT_H_
