#ifndef ESD_CORE_EDGE_DSU_ARENA_H_
#define ESD_CORE_EDGE_DSU_ARENA_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/dsu.h"
#include "util/thread_pool.h"

namespace esd::core {

/// All per-edge disjoint-set structures M_uv of Algorithm 3, packed into
/// one arena.
///
/// A per-edge hash-map DSU (util::KeyedDsu) costs several allocations per
/// edge — measurably the dominant cost of index construction at laptop
/// scale. This arena lays every edge's member list (its sorted common
/// neighborhood) in one CSR-style buffer with parallel parent/count arrays;
/// vertex→slot resolution is a binary search in the edge's slice. Union
/// and Find use path halving + union by size, exactly like KeyedDsu.
///
/// Slices of different edges are disjoint, so the parallel builder may
/// process different edges concurrently as long as it serializes unions on
/// the *same* edge (striped locks).
class EdgeDsuArena {
 public:
  /// Builds member slices for every edge of `g` — lines 1-4 of Algorithm 3.
  /// If `pool` is non-null the per-edge fill runs on it.
  explicit EdgeDsuArena(const graph::Graph& g,
                        util::ThreadPool* pool = nullptr);

  /// Number of edges covered.
  size_t NumEdges() const { return offsets_.size() - 1; }

  /// Total members across all edges — the paper's O(αm) bound.
  size_t TotalMembers() const { return members_.size(); }

  /// Sorted members (common neighborhood) of edge e.
  std::span<const graph::VertexId> Members(graph::EdgeId e) const {
    return {members_.data() + offsets_[e], members_.data() + offsets_[e + 1]};
  }

  /// Merges the components of vertices a and b in edge e's structure.
  /// Both must be members of e's common neighborhood.
  void Union(graph::EdgeId e, graph::VertexId a, graph::VertexId b);

  /// Sorted component sizes of edge e's ego-network (the paper's C_uv).
  std::vector<uint32_t> ComponentSizes(graph::EdgeId e);

  /// Converts edge e's structure to a standalone KeyedDsu with the same
  /// components (used to bootstrap the dynamic index).
  util::KeyedDsu ToKeyedDsu(graph::EdgeId e);

 private:
  uint32_t SlotOf(graph::EdgeId e, graph::VertexId w) const;
  uint32_t FindSlot(uint32_t s);

  std::vector<uint64_t> offsets_;          // size m+1
  std::vector<graph::VertexId> members_;   // sorted per edge slice
  std::vector<uint32_t> parent_;           // absolute slot indices
  std::vector<uint32_t> count_;            // component size at roots
};

}  // namespace esd::core

#endif  // ESD_CORE_EDGE_DSU_ARENA_H_
