#include "core/query_engine.h"

#include <algorithm>

#include "core/dynamic_index.h"
#include "core/ego_network.h"
#include "core/esd_index.h"
#include "core/frozen_index.h"
#include "core/index_builder.h"
#include "core/naive_topk.h"

namespace esd::core {

TopKResult OnlineQueryEngine::Query(uint32_t k, uint32_t tau,
                                    bool pad_with_zero_edges) const {
  if (k == 0 || tau == 0) return {};
  TopKResult out = OnlineTopK(graph_, k, tau, rule_);
  if (!pad_with_zero_edges) {
    while (!out.empty() && out.back().score == 0) out.pop_back();
  }
  return out;
}

uint32_t OnlineQueryEngine::ScoreOf(graph::EdgeId e, uint32_t tau) const {
  const graph::Edge& uv = graph_.EdgeAt(e);
  return EdgeScore(graph_, uv.u, uv.v, tau);
}

uint64_t OnlineQueryEngine::CountWithScoreAtLeast(uint32_t tau,
                                                  uint32_t min_score) const {
  if (min_score == 0) return graph_.NumEdges();
  if (tau == 0) return 0;
  uint64_t count = 0;
  for (uint32_t score : AllEdgeScores(graph_, tau)) {
    count += score >= min_score ? 1 : 0;
  }
  return count;
}

TopKResult OnlineQueryEngine::QueryWithScoreAtLeast(uint32_t tau,
                                                    uint32_t min_score,
                                                    size_t limit) const {
  TopKResult out;
  if (tau == 0 || min_score == 0) return out;
  std::vector<uint32_t> scores = AllEdgeScores(graph_, tau);
  for (graph::EdgeId e = 0; e < scores.size(); ++e) {
    if (scores[e] >= min_score) {
      out.push_back(ScoredEdge{graph_.EdgeAt(e), scores[e]});
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const ScoredEdge& a, const ScoredEdge& b) {
                     return a.score > b.score;
                   });
  if (limit > 0 && out.size() > limit) out.resize(limit);
  return out;
}

std::vector<std::string> QueryEngineNames() {
  return {"treap", "frozen", "dynamic", "online", "online-mindeg"};
}

std::unique_ptr<EsdQueryEngine> BuildQueryEngine(const graph::Graph& g,
                                                 std::string_view name,
                                                 std::string* error) {
  if (name == "treap") {
    return std::make_unique<EsdIndex>(BuildIndexClique(g));
  }
  if (name == "frozen") {
    return std::make_unique<FrozenEsdIndex>(BuildFrozenIndex(g));
  }
  if (name == "dynamic") {
    return std::make_unique<DynamicEsdIndex>(g);
  }
  if (name == "online") {
    return std::make_unique<OnlineQueryEngine>(g,
                                               UpperBoundRule::kCommonNeighbor);
  }
  if (name == "online-mindeg") {
    return std::make_unique<OnlineQueryEngine>(g, UpperBoundRule::kMinDegree);
  }
  if (error != nullptr) {
    *error = "unknown engine '" + std::string(name) + "' (expected one of:";
    for (const std::string& n : QueryEngineNames()) *error += " " + n;
    *error += ")";
  }
  return nullptr;
}

}  // namespace esd::core
