#include "core/query_engine.h"

#include <algorithm>

#include "core/dynamic_index.h"
#include "core/ego_network.h"
#include "core/esd_index.h"
#include "core/frozen_index.h"
#include "core/index_builder.h"
#include "core/naive_topk.h"
#include "obs/metrics.h"

namespace esd::core {

TopKResult OnlineQueryEngine::Query(uint32_t k, uint32_t tau,
                                    bool pad_with_zero_edges) const {
  if (k == 0 || tau == 0) return {};
  OnlineStats stats;
  TopKResult out = OnlineTopK(graph_, k, tau, rule_, &stats);
  counters_.AddQuery();
  counters_.AddOnlineStats(stats);
  if (!pad_with_zero_edges) {
    while (!out.empty() && out.back().score == 0) out.pop_back();
  }
  return out;
}

uint32_t OnlineQueryEngine::ScoreOf(graph::EdgeId e, uint32_t tau) const {
  const graph::Edge& uv = graph_.EdgeAt(e);
  return EdgeScore(graph_, uv.u, uv.v, tau);
}

uint64_t OnlineQueryEngine::CountWithScoreAtLeast(uint32_t tau,
                                                  uint32_t min_score) const {
  if (min_score == 0) return graph_.NumEdges();
  if (tau == 0) return 0;
  uint64_t count = 0;
  for (uint32_t score : AllEdgeScores(graph_, tau)) {
    count += score >= min_score ? 1 : 0;
  }
  return count;
}

TopKResult OnlineQueryEngine::QueryWithScoreAtLeast(uint32_t tau,
                                                    uint32_t min_score,
                                                    size_t limit) const {
  TopKResult out;
  if (tau == 0 || min_score == 0) return out;
  std::vector<uint32_t> scores = AllEdgeScores(graph_, tau);
  for (graph::EdgeId e = 0; e < scores.size(); ++e) {
    if (scores[e] >= min_score) {
      out.push_back(ScoredEdge{graph_.EdgeAt(e), scores[e]});
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const ScoredEdge& a, const ScoredEdge& b) {
                     return a.score > b.score;
                   });
  if (limit > 0 && out.size() > limit) out.resize(limit);
  return out;
}

std::vector<uint32_t> ScorerOnlineEngine::AllScores(uint32_t tau) const {
  std::vector<uint32_t> scores(graph_.NumEdges(), 0);
  for (graph::EdgeId e = 0; e < graph_.NumEdges(); ++e) {
    const graph::Edge& uv = graph_.EdgeAt(e);
    scores[e] = ScoreFromSizes(scorer_.EdgeValues(graph_, uv.u, uv.v), tau);
  }
  return scores;
}

TopKResult ScorerOnlineEngine::Query(uint32_t k, uint32_t tau,
                                     bool pad_with_zero_edges) const {
  if (k == 0 || tau == 0) return {};
  counters_.AddQuery();
  const std::vector<uint32_t> scores = AllScores(tau);
  counters_.AddEntriesScanned(scores.size());
  // Positive-score edges in the canonical (score desc, edge asc) order,
  // then the documented zero-pad order — exact parity with the indexes.
  std::vector<graph::EdgeId> positive;
  for (graph::EdgeId e = 0; e < scores.size(); ++e) {
    if (scores[e] > 0) positive.push_back(e);
  }
  std::sort(positive.begin(), positive.end(),
            [&scores](graph::EdgeId a, graph::EdgeId b) {
              if (scores[a] != scores[b]) return scores[a] > scores[b];
              return a < b;
            });
  TopKResult out;
  const size_t take = std::min<size_t>(k, positive.size());
  out.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    out.push_back(ScoredEdge{graph_.EdgeAt(positive[i]), scores[positive[i]]});
  }
  if (pad_with_zero_edges) {
    for (graph::EdgeId e = 0; e < scores.size() && out.size() < k; ++e) {
      if (scores[e] == 0) out.push_back(ScoredEdge{graph_.EdgeAt(e), 0});
    }
  }
  return out;
}

uint32_t ScorerOnlineEngine::ScoreOf(graph::EdgeId e, uint32_t tau) const {
  const graph::Edge& uv = graph_.EdgeAt(e);
  return ScoreFromSizes(scorer_.EdgeValues(graph_, uv.u, uv.v), tau);
}

uint64_t ScorerOnlineEngine::CountWithScoreAtLeast(uint32_t tau,
                                                   uint32_t min_score) const {
  if (min_score == 0) return graph_.NumEdges();
  if (tau == 0) return 0;
  uint64_t count = 0;
  for (uint32_t score : AllScores(tau)) count += score >= min_score ? 1 : 0;
  return count;
}

TopKResult ScorerOnlineEngine::QueryWithScoreAtLeast(uint32_t tau,
                                                     uint32_t min_score,
                                                     size_t limit) const {
  TopKResult out;
  if (tau == 0 || min_score == 0) return out;
  const std::vector<uint32_t> scores = AllScores(tau);
  for (graph::EdgeId e = 0; e < scores.size(); ++e) {
    if (scores[e] >= min_score) {
      out.push_back(ScoredEdge{graph_.EdgeAt(e), scores[e]});
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const ScoredEdge& a, const ScoredEdge& b) {
                     return a.score > b.score;
                   });
  if (limit > 0 && out.size() > limit) out.resize(limit);
  return out;
}

std::vector<std::string> QueryEngineNames() {
  return {"treap", "frozen", "dynamic", "online", "online-mindeg"};
}

std::unique_ptr<EsdQueryEngine> BuildQueryEngine(const graph::Graph& g,
                                                 std::string_view name,
                                                 std::string* error) {
  if (name == "treap") {
    return std::make_unique<EsdIndex>(BuildIndexClique(g));
  }
  if (name == "frozen") {
    return std::make_unique<FrozenEsdIndex>(BuildFrozenIndex(g));
  }
  if (name == "dynamic") {
    return std::make_unique<DynamicEsdIndex>(g);
  }
  if (name == "online") {
    return std::make_unique<OnlineQueryEngine>(g,
                                               UpperBoundRule::kCommonNeighbor);
  }
  if (name == "online-mindeg") {
    return std::make_unique<OnlineQueryEngine>(g, UpperBoundRule::kMinDegree);
  }
  if (error != nullptr) {
    *error = "unknown engine '" + std::string(name) + "' (expected one of:";
    for (const std::string& n : QueryEngineNames()) *error += " " + n;
    *error += ")";
  }
  return nullptr;
}

std::unique_ptr<EsdQueryEngine> BuildQueryEngine(const graph::Graph& g,
                                                 std::string_view name,
                                                 const DiversityScorer& scorer,
                                                 std::string* error) {
  if (scorer.Kind() == ScorerKind::kEsd) {
    return BuildQueryEngine(g, name, error);
  }
  if (name == "treap") {
    return std::make_unique<EsdIndex>(BuildIndex(g, scorer));
  }
  if (name == "frozen") {
    return std::make_unique<FrozenEsdIndex>(BuildFrozenIndex(g, scorer));
  }
  if (name == "dynamic") {
    return std::make_unique<DynamicEsdIndex>(g, scorer);
  }
  if (name == "online" || name == "online-mindeg") {
    return std::make_unique<ScorerOnlineEngine>(g, scorer);
  }
  return BuildQueryEngine(g, name, error);  // unknown name: shared error
}

void ExportEngineCounters(const EsdQueryEngine& engine,
                          obs::MetricRegistry* registry,
                          std::string_view prefix) {
  const EngineCounters c = engine.Counters();
  const std::string p(prefix);
  auto set = [&](const char* field, uint64_t v, const char* help) {
    registry->GetGauge(p + field, help).Set(static_cast<double>(v));
  };
  set("queries", c.queries, "Query() calls answered by the engine");
  set("slab_searches", c.slab_searches,
      "H-list / slab binary searches run");
  set("entries_scanned", c.entries_scanned,
      "Index entries read to build answers");
  set("heap_pops", c.heap_pops, "Online search priority-queue pops");
  set("exact_computations", c.exact_computations,
      "Online search exact ego-network BFS runs");
  set("zero_bound_skips", c.zero_bound_skips,
      "Online candidates certified by a zero upper bound");
}

}  // namespace esd::core
