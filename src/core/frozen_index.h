#ifndef ESD_CORE_FROZEN_INDEX_H_
#define ESD_CORE_FROZEN_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/query_engine.h"
#include "core/topk_result.h"
#include "graph/graph.h"

namespace esd::core {

class EsdIndex;

/// Read-optimized, immutable image of the ESDIndex (Section IV-A) — the
/// serving layer.
///
/// Where EsdIndex keeps every H(c) list as an order-statistics treap (the
/// mutation substrate the maintenance algorithms need), FrozenEsdIndex lays
/// the same logical content out flat:
///
///   sizes_    [c_0 < c_1 < ...]            the distinct size set C, sorted
///   offsets_  [o_0, o_1, ..., o_|C|]       prefix sums, o_0 = 0
///   entries_  [ ..H(c_0).. | ..H(c_1).. | ... ]   one CSR slab per list
///
/// Slab i holds H(sizes_[i]) as contiguous (score, edge) pairs in the
/// canonical order (score desc, edge id asc). Query(k, tau) is one binary
/// search over sizes_ plus a linear scan of a slab prefix — no pointer
/// chasing, no per-node allocation — and CountWithScoreAtLeast is two
/// binary searches. The per-edge size multisets are packed the same way
/// (size_offsets_ / size_pool_), so ScoreOf stays O(log) and the structure
/// round-trips losslessly to/from EsdIndex (Freeze / Thaw below).
///
/// Every array is a straight contiguous allocation, which is what makes the
/// index_io v2 format a plain sequence of array writes (mmap-friendly) and
/// lets a loaded file serve queries with no rebuild step.
class FrozenEsdIndex final : public EsdQueryEngine {
 public:
  /// An entry of a slab: same 8-byte POD as EsdIndex::Entry.
  struct Entry {
    uint32_t score = 0;
    graph::EdgeId e = 0;

    friend bool operator==(const Entry&, const Entry&) = default;
  };

  /// The raw arrays of a frozen index — the unit of (de)serialization.
  /// Adopt() validates every structural invariant before accepting one.
  struct Parts {
    ScorerKind scorer = ScorerKind::kEsd;  // which definition the values follow
    std::vector<graph::Edge> edges;      // by edge-id slot
    std::vector<uint8_t> live;           // by slot; 0 = freed
    std::vector<uint64_t> size_offsets;  // per-slot multiset CSR, n+1
    std::vector<uint32_t> size_pool;     // ascending within each slot
    std::vector<uint32_t> sizes;         // distinct sizes C, ascending
    std::vector<uint64_t> offsets;       // slab offsets, |C|+1
    std::vector<Entry> entries;          // slabs, canonical order
  };

  FrozenEsdIndex() = default;

  /// Builds the frozen image straight from per-edge component-size
  /// multisets (each ascending; index = dense edge id), skipping treap
  /// construction entirely — the builders' frozen-output path. An empty
  /// `live` means every slot is live.
  static FrozenEsdIndex FromEdgeSizes(
      std::vector<graph::Edge> edges,
      std::vector<std::vector<uint32_t>> sizes_per_edge,
      std::vector<uint8_t> live = {},
      ScorerKind scorer = ScorerKind::kEsd);

  /// Validates `parts` (offset monotonicity, sorted multisets and slabs,
  /// edge ids in range, slab membership/scores consistent with the
  /// multisets) and adopts them into *out. On failure returns false, sets
  /// *error, and leaves *out untouched.
  static bool Adopt(Parts parts, FrozenEsdIndex* out, std::string* error);

  // ---- EsdQueryEngine ------------------------------------------------------

  /// Top-k query: binary search for the smallest c* >= tau in C, then a
  /// linear scan of the H(c*) slab prefix. Padding follows the documented
  /// deterministic order (ascending edge id over live edges not already
  /// reported), so results match EsdIndex::Query exactly.
  TopKResult Query(uint32_t k, uint32_t tau,
                   bool pad_with_zero_edges = true) const override;

  /// Sentinel for "no slab serves this tau" (tau above every stored size).
  static constexpr size_t kNoSlab = ~size_t{0};

  /// The sizes_ binary search of Query, exposed separately so a batch of
  /// same-tau queries pays it once: index of the slab serving threshold
  /// `tau` (smallest c >= tau), or kNoSlab. Requires tau >= 1.
  size_t FindSlab(uint32_t tau) const;

  /// Query with the binary search already done: serves k entries from slab
  /// `slab` (kNoSlab reads as an empty slab). For slab == FindSlab(tau)
  /// and k, tau >= 1 this returns exactly Query(k, tau,
  /// pad_with_zero_edges).
  TopKResult QueryAtSlab(size_t slab, uint32_t k,
                         bool pad_with_zero_edges = true) const;

  /// The zero-padding phase of QueryAtSlab, exposed separately so callers
  /// that attribute per-stage time (the serving layer, esd_cli --explain)
  /// can run scan and padding under distinct clocks. Requires *inout to be
  /// the unpadded answer QueryAtSlab(slab, k, false) for the same slab and
  /// k; afterwards *inout equals QueryAtSlab(slab, k, true) exactly (same
  /// ascending-edge-id fill, same dedup against the slab prefix).
  void PadQueryResult(size_t slab, uint32_t k, TopKResult* inout) const;

  uint32_t ScoreOf(graph::EdgeId e, uint32_t tau) const override;
  /// Two binary searches: one over sizes_, one over the slab (entries are
  /// score-descending, so the >= min_score prefix is a partition point).
  uint64_t CountWithScoreAtLeast(uint32_t tau,
                                 uint32_t min_score) const override;
  TopKResult QueryWithScoreAtLeast(uint32_t tau, uint32_t min_score,
                                   size_t limit = 0) const override;
  uint64_t MemoryBytes() const override;
  std::string_view EngineName() const override { return "frozen"; }

  /// Work counters: queries answered, sizes_ binary searches (FindSlab,
  /// including the batched path), and slab entries scanned.
  EngineCounters Counters() const override { return counters_.Snap(); }

  /// Which diversity definition the stored values follow (part of the
  /// logical image: serialized, compared by operator==, and checked on
  /// load so a file frozen for one scorer never serves another).
  ScorerKind Scorer() const override { return scorer_; }

  // ---- Edge registry (read-only mirror of EsdIndex) ------------------------

  graph::Edge EdgeAt(graph::EdgeId e) const { return edges_[e]; }
  size_t EdgeSlotCount() const { return edges_.size(); }
  size_t NumRegisteredEdges() const { return num_live_; }
  bool IsLive(graph::EdgeId e) const { return e < live_.size() && live_[e]; }

  /// Component-size multiset of slot `e` (ascending), as a view into the
  /// packed pool.
  std::span<const uint32_t> EdgeSizes(graph::EdgeId e) const {
    return {size_pool_.data() + size_offsets_[e],
            size_pool_.data() + size_offsets_[e + 1]};
  }

  // ---- Introspection / raw views -------------------------------------------

  /// Distinct component sizes C, ascending (a copy, mirroring EsdIndex).
  std::vector<uint32_t> DistinctSizes() const { return sizes_; }
  size_t NumLists() const { return sizes_.size(); }
  uint64_t NumEntries() const { return entries_.size(); }

  /// The H(sizes[i]) slab, canonical (score desc, edge asc) order.
  std::span<const Entry> ListAt(size_t i) const {
    return {entries_.data() + offsets_[i], entries_.data() + offsets_[i + 1]};
  }

  /// Raw array views, in v2 serialization order.
  std::span<const graph::Edge> Edges() const { return edges_; }
  std::span<const uint8_t> LiveMask() const { return live_; }
  std::span<const uint64_t> SizeOffsets() const { return size_offsets_; }
  std::span<const uint32_t> SizePool() const { return size_pool_; }
  std::span<const uint32_t> Sizes() const { return sizes_; }
  std::span<const uint64_t> SlabOffsets() const { return offsets_; }
  std::span<const Entry> Entries() const { return entries_; }

  friend bool operator==(const FrozenEsdIndex& a, const FrozenEsdIndex& b);

 private:
  std::vector<graph::Edge> edges_;
  std::vector<uint8_t> live_;
  std::vector<uint64_t> size_offsets_;
  std::vector<uint32_t> size_pool_;
  std::vector<uint32_t> sizes_;
  std::vector<uint64_t> offsets_;
  std::vector<Entry> entries_;
  uint64_t num_live_ = 0;
  ScorerKind scorer_ = ScorerKind::kEsd;
  /// Not part of the logical image: ignored by operator== and not
  /// serialized (a loaded index starts at zero).
  EngineCounterBlock counters_;
};

/// Converts the mutable treap-backed index into its frozen serving image.
/// Freed slots are preserved (live mask + empty multiset), so
/// Thaw(Freeze(x)) reproduces x's exact id layout.
FrozenEsdIndex Freeze(const EsdIndex& index);

/// Reconstructs a mutable EsdIndex from a frozen image (the H(c) treaps are
/// rebuilt from the stored multisets, exactly as the v1 loader does).
EsdIndex Thaw(const FrozenEsdIndex& frozen);

/// Restricts a frozen image to the edges `keep` selects: the edge-id slot
/// layout is preserved exactly (so ids, padding order, and dedup semantics
/// line up across differently-filtered images of the same index), but
/// non-kept slots are marked dead with empty multisets and their slab
/// entries dropped. This is the sharding primitive: a shard serves
/// FilterFrozenIndex(full, owns) and the scores it reports for kept edges
/// are identical to the full image's — per-edge scores depend only on that
/// edge's own multiset, so masking other edges never perturbs them.
FrozenEsdIndex FilterFrozenIndex(
    const FrozenEsdIndex& index,
    const std::function<bool(graph::Edge)>& keep);

}  // namespace esd::core

#endif  // ESD_CORE_FROZEN_INDEX_H_
