#ifndef ESD_CORE_ESD_INDEX_H_
#define ESD_CORE_ESD_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "core/query_engine.h"
#include "core/topk_result.h"
#include "graph/graph.h"
#include "util/treap.h"

namespace esd::core {

/// The ESDIndex structure of Section IV-A.
///
/// For every component size c occurring in some edge ego-network (the set
/// C), the index keeps a list H(c) of all edges whose ego-network has a
/// component of size >= c, ordered by the structural diversity computed at
/// threshold c (descending). Each H(c) is an order-statistics treap, the
/// paper's "self-balance binary search tree".
///
/// The class is also the mutation substrate of the maintenance algorithms
/// (Section V): it stores each edge's component-size multiset C_e and
/// exposes SetEdgeSizes(), which atomically moves the edge's entries across
/// all affected lists, creating brand-new H(c) lists by cloning the next
/// larger list (see DESIGN.md §3 for why the clone is exact) and dropping
/// lists whose size value disappears from the graph.
///
/// Invariant (checked by tests): for every c in C,
///   H(c) = { (score_c(e), e) : max(C_e) >= c },  score_c(e) = |{s in C_e :
///   s >= c}|,
/// and C = { s : some edge has a component of size s }.
///
/// For serving-only deployments, Freeze() (core/frozen_index.h) converts
/// this structure into the flat, read-optimized FrozenEsdIndex; both
/// implement the EsdQueryEngine interface with identical query semantics.
class EsdIndex : public EsdQueryEngine {
 public:
  /// An entry of a sorted list H(c): ordered by score descending, then edge
  /// id ascending.
  struct Entry {
    uint32_t score = 0;
    graph::EdgeId e = 0;
  };
  struct EntryLess {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.score != b.score) return a.score > b.score;
      return a.e < b.e;
    }
  };
  using List = util::Treap<Entry, EntryLess>;

  EsdIndex() = default;

  // ---- Edge registry ------------------------------------------------------

  /// Registers an edge and returns its dense id (freed ids are reused).
  graph::EdgeId RegisterEdge(graph::Edge uv);

  /// Unregisters `e`. Its size list must already be empty
  /// (SetEdgeSizes(e, {}) first).
  void UnregisterEdge(graph::EdgeId e);

  /// Endpoints of a registered edge.
  graph::Edge EdgeAt(graph::EdgeId e) const { return edges_[e]; }

  /// Number of live registered edges.
  size_t NumRegisteredEdges() const { return edges_.size() - free_ids_.size(); }

  /// Total edge-id slots, live and freed (ids are < EdgeSlotCount()).
  size_t EdgeSlotCount() const { return edges_.size(); }

  /// True if edge id `e` is currently registered.
  bool IsLive(graph::EdgeId e) const { return e < live_.size() && live_[e]; }

  // ---- Construction / maintenance ----------------------------------------

  /// Replaces edge e's component-size multiset with `sorted_sizes`
  /// (ascending) and updates every affected H(c) list. O(|C_e| log m)
  /// amortized, plus clone cost when a never-before-seen size appears.
  void SetEdgeSizes(graph::EdgeId e, std::vector<uint32_t> sorted_sizes);

  /// Bulk construction: edge ids 0..sizes.size()-1 are registered with the
  /// given endpoints and every H(c) list is built from sorted runs in
  /// O(total entries). Replaces current contents. Used by the builders
  /// (Algorithms 2 and 3, lines building H).
  void BulkLoad(std::vector<graph::Edge> edges,
                std::vector<std::vector<uint32_t>> sizes_per_edge);

  /// Component-size multiset of edge e (ascending).
  const std::vector<uint32_t>& EdgeSizes(graph::EdgeId e) const {
    return edge_sizes_[e];
  }

  // ---- Query ---------------------------------------------------------------

  /// Top-k structural diversity query (Section IV-B): finds the smallest
  /// c* >= tau in C and reports the first k entries of H(c*).
  /// O(k log m + log n).
  ///
  /// If fewer than k edges have positive score and `pad_with_zero_edges` is
  /// true, zero-score live edges fill the remainder in ascending edge-id
  /// order, skipping edges already reported — a documented deterministic
  /// order (parity with the online algorithms, which always return
  /// min(k, m) edges, and with FrozenEsdIndex, which pads identically so
  /// engine-parity tests can compare exact results).
  TopKResult Query(uint32_t k, uint32_t tau,
                   bool pad_with_zero_edges = true) const override;

  /// Score of edge `e` at threshold tau, from the stored multiset. O(log).
  uint32_t ScoreOf(graph::EdgeId e, uint32_t tau) const override;

  /// Number of edges whose structural diversity at threshold tau is
  /// >= min_score. O(log m) via the order statistics of H(c*). A
  /// min_score of 0 counts every registered edge.
  uint64_t CountWithScoreAtLeast(uint32_t tau,
                                 uint32_t min_score) const override;

  /// All edges with score >= min_score at threshold tau (at most `limit`,
  /// 0 = unlimited), descending score. min_score must be >= 1.
  TopKResult QueryWithScoreAtLeast(uint32_t tau, uint32_t min_score,
                                   size_t limit = 0) const override;

  // ---- Introspection -------------------------------------------------------

  /// Distinct component sizes C, ascending.
  std::vector<uint32_t> DistinctSizes() const;

  /// Number of sorted lists |C|.
  size_t NumLists() const { return lists_.size(); }

  /// Total entries across all lists — the paper's O(αm) index size.
  uint64_t NumEntries() const { return num_entries_; }

  /// Approximate resident bytes of the index payload (list nodes + stored
  /// size multisets), the quantity plotted in Fig. 6(a).
  uint64_t MemoryBytes() const override;

  /// Engine selector key for this implementation.
  std::string_view EngineName() const override { return "treap"; }

  /// Work counters: queries answered, H-list lower_bound searches, and
  /// entries walked to build answers.
  EngineCounters Counters() const override { return counters_.Snap(); }

  /// Which diversity definition the stored value multisets follow. The
  /// structure itself is scorer-agnostic (any sorted multiset per edge);
  /// the kind is a label the builders stamp so serialization and the live
  /// stack can refuse cross-scorer mixing.
  ScorerKind Scorer() const override { return scorer_kind_; }

  /// Stamps the scorer label (builders and loaders only; does not touch
  /// the stored multisets).
  void SetScorerKind(ScorerKind kind) { scorer_kind_ = kind; }

  /// Invokes fn(c, list) for every list, ascending c.
  template <typename Fn>
  void ForEachList(Fn&& fn) const {
    for (const auto& [c, list] : lists_) fn(c, list);
  }

 private:
  void RemoveEntries(graph::EdgeId e, const std::vector<uint32_t>& sizes);
  void InsertEntries(graph::EdgeId e, const std::vector<uint32_t>& sizes);

  std::map<uint32_t, List> lists_;
  // Number of edges owning at least one component of size c; a list lives
  // iff its counter is positive.
  std::map<uint32_t, uint32_t> size_owner_count_;
  std::vector<std::vector<uint32_t>> edge_sizes_;  // by EdgeId
  std::vector<graph::Edge> edges_;                 // by EdgeId
  std::vector<graph::EdgeId> free_ids_;
  std::vector<uint8_t> live_;  // by EdgeId
  uint64_t num_entries_ = 0;
  ScorerKind scorer_kind_ = ScorerKind::kEsd;
  EngineCounterBlock counters_;
};

}  // namespace esd::core

#endif  // ESD_CORE_ESD_INDEX_H_
