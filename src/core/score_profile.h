#ifndef ESD_CORE_SCORE_PROFILE_H_
#define ESD_CORE_SCORE_PROFILE_H_

#include <cstdint>
#include <vector>

#include "core/query_engine.h"

namespace esd::core {

/// Distribution of diversity scores over all edges at a fixed threshold
/// tau — the analytics view the paper's case studies eyeball ("when
/// tau >= 3, the structural diversity scores of most edges in DBLP are no
/// larger than 3"). Computed straight off the engine in one in-order walk
/// of H(c*); scorer-generic (works for any EsdQueryEngine, any scorer).
struct ScoreHistogram {
  /// count[s] = number of edges with score exactly s (index 0 included).
  std::vector<uint64_t> count;
  uint64_t total_edges = 0;
  uint32_t max_score = 0;
  double mean = 0.0;
};

/// Builds the histogram for threshold tau. O(|H(c*)| + max_score) on the
/// index engines (one QueryWithScoreAtLeast walk); a full scan on the
/// online adapters.
ScoreHistogram ComputeScoreHistogram(const EsdQueryEngine& engine,
                                     uint32_t tau);

/// Smallest score s such that at least `fraction` of all edges score <= s.
/// fraction in [0,1] (clamped); fraction 0.0 and empty histograms return 0,
/// fraction 1.0 returns max_score.
uint32_t ScorePercentile(const ScoreHistogram& histogram, double fraction);

}  // namespace esd::core

#endif  // ESD_CORE_SCORE_PROFILE_H_
