#include "core/esd_index.h"

#include <algorithm>
#include <cassert>

#include "obs/trace.h"
#include "util/flat_map.h"

namespace esd::core {

using graph::Edge;
using graph::EdgeId;

EdgeId EsdIndex::RegisterEdge(Edge uv) {
  if (!free_ids_.empty()) {
    EdgeId e = free_ids_.back();
    free_ids_.pop_back();
    edges_[e] = uv;
    live_[e] = 1;
    edge_sizes_[e].clear();
    return e;
  }
  EdgeId e = static_cast<EdgeId>(edges_.size());
  edges_.push_back(uv);
  edge_sizes_.emplace_back();
  live_.push_back(1);
  return e;
}

void EsdIndex::UnregisterEdge(EdgeId e) {
  assert(live_[e] && edge_sizes_[e].empty());
  live_[e] = 0;
  free_ids_.push_back(e);
}

void EsdIndex::RemoveEntries(EdgeId e, const std::vector<uint32_t>& sizes) {
  if (sizes.empty()) return;
  const uint32_t max_size = sizes.back();
  for (auto it = lists_.begin();
       it != lists_.end() && it->first <= max_size; ++it) {
    uint32_t score = static_cast<uint32_t>(
        sizes.end() - std::lower_bound(sizes.begin(), sizes.end(), it->first));
    bool erased = it->second.Erase(Entry{score, e});
    assert(erased);
    (void)erased;
    --num_entries_;
  }
  // Update owner counts for e's distinct sizes; drop lists that lost their
  // last owner (queries then fall through to the next larger c, which by
  // Theorem 4 yields identical answers).
  for (size_t i = 0; i < sizes.size(); ++i) {
    if (i > 0 && sizes[i] == sizes[i - 1]) continue;
    auto cnt = size_owner_count_.find(sizes[i]);
    assert(cnt != size_owner_count_.end());
    if (--cnt->second == 0) {
      size_owner_count_.erase(cnt);
      auto list_it = lists_.find(sizes[i]);
      assert(list_it != lists_.end());
      num_entries_ -= list_it->second.size();
      lists_.erase(list_it);
    }
  }
}

void EsdIndex::InsertEntries(EdgeId e, const std::vector<uint32_t>& sizes) {
  if (sizes.empty()) return;
  // First materialize lists for never-before-seen sizes by cloning the next
  // larger list: exact because no edge currently owns a component size in
  // the gap (see DESIGN.md §3 and the proof of Theorem 4).
  for (size_t i = 0; i < sizes.size(); ++i) {
    if (i > 0 && sizes[i] == sizes[i - 1]) continue;
    uint32_t s = sizes[i];
    auto [cnt, inserted] = size_owner_count_.try_emplace(s, 0);
    ++cnt->second;
    if (inserted) {
      auto next = lists_.upper_bound(s);
      List clone = next == lists_.end() ? List() : next->second;
      num_entries_ += clone.size();
      lists_.emplace(s, std::move(clone));
    }
  }
  const uint32_t max_size = sizes.back();
  for (auto it = lists_.begin();
       it != lists_.end() && it->first <= max_size; ++it) {
    uint32_t score = static_cast<uint32_t>(
        sizes.end() - std::lower_bound(sizes.begin(), sizes.end(), it->first));
    bool ok = it->second.Insert(Entry{score, e});
    assert(ok);
    (void)ok;
    ++num_entries_;
  }
}

void EsdIndex::SetEdgeSizes(EdgeId e, std::vector<uint32_t> sorted_sizes) {
  assert(e < edge_sizes_.size() && live_[e]);
  assert(std::is_sorted(sorted_sizes.begin(), sorted_sizes.end()));
  if (edge_sizes_[e] == sorted_sizes) return;
  RemoveEntries(e, edge_sizes_[e]);
  InsertEntries(e, sorted_sizes);
  edge_sizes_[e] = std::move(sorted_sizes);
}

void EsdIndex::BulkLoad(std::vector<Edge> edges,
                        std::vector<std::vector<uint32_t>> sizes_per_edge) {
  obs::PhaseSeries phases;
  phases.Begin("build.hlist_build");
  assert(edges.size() == sizes_per_edge.size());
  lists_.clear();
  size_owner_count_.clear();
  free_ids_.clear();
  num_entries_ = 0;
  edges_ = std::move(edges);
  edge_sizes_ = std::move(sizes_per_edge);
  live_.assign(edges_.size(), 1);

  // Owner counts and the distinct size set C.
  for (const auto& sizes : edge_sizes_) {
    assert(std::is_sorted(sizes.begin(), sizes.end()));
    for (size_t i = 0; i < sizes.size(); ++i) {
      if (i > 0 && sizes[i] == sizes[i - 1]) continue;
      ++size_owner_count_[sizes[i]];
    }
  }
  std::vector<uint32_t> all_c;
  all_c.reserve(size_owner_count_.size());
  for (const auto& [c, cnt] : size_owner_count_) all_c.push_back(c);

  // Group edges by the maximum component size of their ego-network, then
  // sweep c from largest to smallest, keeping the set of edges with
  // max >= c "active" and emitting one sorted run per list.
  std::map<uint32_t, std::vector<EdgeId>, std::greater<>> by_max;
  for (EdgeId e = 0; e < edge_sizes_.size(); ++e) {
    if (!edge_sizes_[e].empty()) {
      by_max[edge_sizes_[e].back()].push_back(e);
    }
  }
  std::vector<EdgeId> active;
  auto max_it = by_max.begin();
  std::vector<Entry> run;
  for (auto c_it = all_c.rbegin(); c_it != all_c.rend(); ++c_it) {
    uint32_t c = *c_it;
    while (max_it != by_max.end() && max_it->first >= c) {
      active.insert(active.end(), max_it->second.begin(),
                    max_it->second.end());
      ++max_it;
    }
    run.clear();
    run.reserve(active.size());
    for (EdgeId e : active) {
      const auto& sizes = edge_sizes_[e];
      uint32_t score = static_cast<uint32_t>(
          sizes.end() - std::lower_bound(sizes.begin(), sizes.end(), c));
      run.push_back(Entry{score, e});
    }
    std::sort(run.begin(), run.end(), [](const Entry& a, const Entry& b) {
      return EntryLess()(a, b);
    });
    List list;
    list.BuildFromSorted(run);
    num_entries_ += list.size();
    lists_.emplace(c, std::move(list));
  }
}

TopKResult EsdIndex::Query(uint32_t k, uint32_t tau,
                           bool pad_with_zero_edges) const {
  TopKResult out;
  if (k == 0 || tau == 0) return out;
  counters_.AddQuery();
  counters_.AddSlabSearch();
  auto it = lists_.lower_bound(tau);
  std::vector<EdgeId> taken;
  if (it != lists_.end()) {
    it->second.ForEachInOrder([&](const Entry& entry) {
      if (out.size() >= k) return false;
      out.push_back(ScoredEdge{edges_[entry.e], entry.score});
      taken.push_back(entry.e);
      return true;
    });
  }
  if (pad_with_zero_edges && out.size() < k) {
    // Documented deterministic padding order: lowest-id live edges first,
    // skipping edges already reported (FrozenEsdIndex pads identically).
    util::FlatSet<EdgeId> included(taken.size());
    for (EdgeId e : taken) included.Insert(e);
    for (EdgeId e = 0; e < edges_.size() && out.size() < k; ++e) {
      if (live_[e] && !included.Contains(e)) {
        out.push_back(ScoredEdge{edges_[e], 0});
      }
    }
  }
  counters_.AddEntriesScanned(out.size());
  return out;
}

uint64_t EsdIndex::CountWithScoreAtLeast(uint32_t tau,
                                         uint32_t min_score) const {
  if (min_score == 0) return NumRegisteredEdges();
  if (tau == 0) return 0;
  auto it = lists_.lower_bound(tau);
  if (it == lists_.end()) return 0;
  // Entries are ordered by score descending; everything ranked before the
  // probe (min_score - 1, edge 0) has score >= min_score.
  return it->second.Rank(Entry{min_score - 1, 0});
}

TopKResult EsdIndex::QueryWithScoreAtLeast(uint32_t tau, uint32_t min_score,
                                           size_t limit) const {
  TopKResult out;
  if (tau == 0 || min_score == 0) return out;
  auto it = lists_.lower_bound(tau);
  if (it == lists_.end()) return out;
  it->second.ForEachInOrder([&](const Entry& entry) {
    if (entry.score < min_score) return false;
    if (limit > 0 && out.size() >= limit) return false;
    out.push_back(ScoredEdge{edges_[entry.e], entry.score});
    return true;
  });
  return out;
}

uint32_t EsdIndex::ScoreOf(EdgeId e, uint32_t tau) const {
  const auto& sizes = edge_sizes_[e];
  return static_cast<uint32_t>(
      sizes.end() - std::lower_bound(sizes.begin(), sizes.end(), tau));
}

std::vector<uint32_t> EsdIndex::DistinctSizes() const {
  std::vector<uint32_t> out;
  out.reserve(lists_.size());
  for (const auto& [c, list] : lists_) out.push_back(c);
  return out;
}

uint64_t EsdIndex::MemoryBytes() const {
  // Treap node: Entry (8) + priority/left/right/size (16).
  uint64_t bytes = num_entries_ * 24;
  for (const auto& sizes : edge_sizes_) {
    bytes += sizes.size() * sizeof(uint32_t);
  }
  bytes += edges_.size() * (sizeof(Edge) + sizeof(uint8_t));
  return bytes;
}

}  // namespace esd::core
