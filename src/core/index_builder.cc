#include "core/index_builder.h"

#include <utility>

#include "cliques/four_clique.h"
#include "core/edge_dsu_arena.h"
#include "core/ego_network.h"
#include "graph/orientation.h"
#include "obs/trace.h"

namespace esd::core {

using graph::EdgeId;
using graph::Graph;
using util::KeyedDsu;

EsdIndex BuildIndexBasic(const Graph& g) {
  std::vector<std::vector<uint32_t>> sizes(g.NumEdges());
  {
    obs::PhaseSeries phases;
    phases.Begin("build.ego_bfs");
    for (EdgeId e = 0; e < g.NumEdges(); ++e) {
      const graph::Edge& uv = g.EdgeAt(e);
      sizes[e] = EgoComponentSizes(g, uv.u, uv.v);
    }
  }
  EsdIndex index;
  index.BulkLoad(g.Edges(), std::move(sizes));
  return index;
}

EsdIndex BuildIndexBasicFast(const Graph& g) {
  std::vector<std::vector<uint32_t>> sizes(g.NumEdges());
  {
    obs::PhaseSeries phases;
    phases.Begin("build.ego_bfs");
    for (EdgeId e = 0; e < g.NumEdges(); ++e) {
      const graph::Edge& uv = g.EdgeAt(e);
      sizes[e] = EgoComponentSizesFast(g, uv.u, uv.v);
    }
  }
  EsdIndex index;
  index.BulkLoad(g.Edges(), std::move(sizes));
  return index;
}

// Algorithm 3 minus the H build: per-edge component-size multisets via one
// 4-clique enumeration over the degree-ordered DAG. Shared by the treap and
// frozen output paths (and the ESD scorer's bulk hook).
std::vector<std::vector<uint32_t>> CliqueComponentSizes(
    const Graph& g, std::vector<KeyedDsu>* m_out) {
  const EdgeId m = g.NumEdges();
  obs::PhaseSeries phases;
  // Lines 1-4 of Algorithm 3: one disjoint-set structure per edge, seeded
  // with the common neighborhood as singletons (arena-packed).
  phases.Begin("build.dsu_init");
  EdgeDsuArena dsu(g);

  // Lines 5-15: each 4-clique {u, v, w1, w2} merges, in the structure of
  // every one of its six edges, the opposite pair of vertices.
  phases.Begin("build.orientation");
  graph::DegreeOrderedDag dag(g);
  phases.Begin("build.clique_enum");
  cliques::ForEach4Clique(dag, [&dsu](const cliques::FourClique& q) {
    dsu.Union(q.uv, q.w1, q.w2);
    dsu.Union(q.uw1, q.v, q.w2);
    dsu.Union(q.uw2, q.v, q.w1);
    dsu.Union(q.vw1, q.u, q.w2);
    dsu.Union(q.vw2, q.u, q.w1);
    dsu.Union(q.w1w2, q.u, q.v);
  });

  // Lines 16-23 (first half): read component sizes off the disjoint sets.
  phases.Begin("build.extract_sizes");
  std::vector<std::vector<uint32_t>> sizes(m);
  for (EdgeId e = 0; e < m; ++e) sizes[e] = dsu.ComponentSizes(e);
  if (m_out != nullptr) {
    m_out->clear();
    m_out->reserve(m);
    for (EdgeId e = 0; e < m; ++e) m_out->push_back(dsu.ToKeyedDsu(e));
  }
  return sizes;
}

EsdIndex BuildIndexClique(const Graph& g, std::vector<KeyedDsu>* m_out) {
  EsdIndex index;
  index.BulkLoad(g.Edges(), CliqueComponentSizes(g, m_out));
  return index;
}

FrozenEsdIndex BuildFrozenIndex(const Graph& g) {
  return FrozenEsdIndex::FromEdgeSizes(g.Edges(),
                                       CliqueComponentSizes(g, nullptr));
}

EsdIndex BuildIndex(const Graph& g, const DiversityScorer& scorer) {
  if (scorer.Kind() == ScorerKind::kEsd) return BuildIndexClique(g);
  EsdIndex index;
  index.BulkLoad(g.Edges(), scorer.BuildAllEdgeValues(g));
  index.SetScorerKind(scorer.Kind());
  return index;
}

FrozenEsdIndex BuildFrozenIndex(const Graph& g,
                                const DiversityScorer& scorer) {
  if (scorer.Kind() == ScorerKind::kEsd) return BuildFrozenIndex(g);
  return FrozenEsdIndex::FromEdgeSizes(g.Edges(), scorer.BuildAllEdgeValues(g),
                                       {}, scorer.Kind());
}

}  // namespace esd::core
