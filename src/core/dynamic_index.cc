#include "core/dynamic_index.h"

#include <algorithm>
#include <cassert>

#include "core/index_builder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace esd::core {

using graph::Edge;
using graph::EdgeId;
using graph::VertexId;
using util::KeyedDsu;

namespace {

// Resolved once; afterwards each update is one relaxed atomic add.
obs::Counter& InsertCounter() {
  static obs::Counter& c = obs::MetricRegistry::Global().GetCounter(
      "esd_dynamic_inserts_total", "Edge insertions applied (Algorithm 4)");
  return c;
}
obs::Counter& DeleteCounter() {
  static obs::Counter& c = obs::MetricRegistry::Global().GetCounter(
      "esd_dynamic_deletes_total", "Edge deletions applied (Algorithm 5)");
  return c;
}
obs::Counter& TouchedCounter() {
  static obs::Counter& c = obs::MetricRegistry::Global().GetCounter(
      "esd_dynamic_touched_edges_total",
      "Edges whose index entries were touched by updates (locality)");
  return c;
}

}  // namespace

DynamicEsdIndex::DynamicEsdIndex(const graph::Graph& g,
                                 DeletionStrategy strategy)
    : DynamicEsdIndex(g, EsdScorer(), strategy) {}

DynamicEsdIndex::DynamicEsdIndex(const graph::Graph& g,
                                 const DiversityScorer& scorer,
                                 DeletionStrategy strategy)
    : graph_(g),
      scorer_(&scorer),
      use_dsu_(scorer.Kind() == ScorerKind::kEsd),
      strategy_(strategy) {
  index_ = use_dsu_ ? BuildIndexClique(g, &dsu_) : BuildIndex(g, scorer);
  ids_.Reserve(g.NumEdges());
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const Edge& uv = g.EdgeAt(e);
    ids_.Insert(Key(uv.u, uv.v), e);
  }
}

EdgeId DynamicEsdIndex::IdOf(VertexId u, VertexId v) const {
  const EdgeId* e = ids_.Find(Key(u, v));
  assert(e != nullptr);
  return *e;
}

std::vector<uint32_t> DynamicEsdIndex::ValuesFor(EdgeId e) {
  if (use_dsu_) return dsu_[e].ComponentSizes();
  const Edge uv = index_.EdgeAt(e);
  return scorer_->EdgeValues(graph_, uv.u, uv.v);
}

void DynamicEsdIndex::RefreshScores(EdgeId e) {
  if (batch_mode_) {
    const Edge uv = index_.EdgeAt(e);
    pending_refresh_.Insert(Key(uv.u, uv.v));
    return;
  }
  index_.SetEdgeSizes(e, ValuesFor(e));
}

size_t DynamicEsdIndex::ApplyBatch(std::span<const EdgeUpdate> updates) {
  batch_mode_ = true;
  pending_refresh_.Clear();
  size_t applied = 0;
  for (const EdgeUpdate& up : updates) {
    bool ok = up.kind == EdgeUpdate::Kind::kInsert ? InsertEdge(up.u, up.v)
                                                   : DeleteEdge(up.u, up.v);
    applied += ok;
  }
  batch_mode_ = false;
  size_t touched = 0;
  pending_refresh_.ForEach([this, &touched](uint64_t key) {
    const EdgeId* e = ids_.Find(key);
    if (e != nullptr) {  // skip edges deleted later in the batch
      index_.SetEdgeSizes(*e, ValuesFor(*e));
      ++touched;
    }
  });
  pending_refresh_.Clear();
  last_touched_ = touched;
  return applied;
}

bool DynamicEsdIndex::InsertEdge(VertexId u, VertexId v) {
  ESD_TRACE_SPAN("maintain.insert");
  if (!graph_.InsertEdge(u, v)) return false;
  InsertCounter().Inc();
  const Edge uv = graph::MakeEdge(u, v);
  const EdgeId e = index_.RegisterEdge(uv);
  if (use_dsu_) {
    if (e >= dsu_.size()) {
      dsu_.resize(e + 1);
    } else {
      dsu_[e] = KeyedDsu();
    }
  }
  ids_[Key(u, v)] = e;

  // Lines 2-9 of Algorithm 4: the common neighborhood seeds M_uv, and the
  // new edge makes v a common neighbor of every (u, w) — and u of every
  // (v, w) — for w in N(uv). The affected-edge enumeration is the same for
  // every scorer; only the DSU repairs are ESD-specific (non-ESD scorers
  // recompute each affected edge through the scorer hook instead).
  std::vector<VertexId> common = graph_.CommonNeighbors(u, v);
  std::vector<EdgeId> affected;
  affected.reserve(3 * common.size() + 1);
  affected.push_back(e);
  if (use_dsu_) dsu_[e].Reserve(common.size());
  util::FlatSet<VertexId> in_common(common.size());
  for (VertexId w : common) {
    in_common.Insert(w);
    EdgeId euw = IdOf(u, w);
    EdgeId evw = IdOf(v, w);
    if (use_dsu_) {
      dsu_[e].AddMember(w);
      dsu_[euw].AddMember(v);
      dsu_[evw].AddMember(u);
    }
    affected.push_back(euw);
    affected.push_back(evw);
  }

  // Lines 10-19: every edge (w1, w2) inside N(uv) closes the new 4-clique
  // {u, v, w1, w2}; merge the opposite pair in all six structures.
  for (VertexId w1 : common) {
    for (VertexId w2 : graph_.Neighbors(w1)) {
      if (w2 <= w1 || !in_common.Contains(w2)) continue;
      EdgeId e12 = IdOf(w1, w2);
      if (use_dsu_) {
        dsu_[e].Union(w1, w2);
        dsu_[IdOf(u, w1)].Union(v, w2);
        dsu_[IdOf(u, w2)].Union(v, w1);
        dsu_[IdOf(v, w1)].Union(u, w2);
        dsu_[IdOf(v, w2)].Union(u, w1);
        dsu_[e12].Union(u, v);
      }
      affected.push_back(e12);
    }
  }

  // Lines 20-22: refresh C_xy and H for every edge of Ĝ_{N(uv)}.
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());
  for (EdgeId a : affected) RefreshScores(a);
  last_touched_ = affected.size();
  TouchedCounter().Inc(last_touched_);
  return true;
}

bool DynamicEsdIndex::DeleteEdge(VertexId u, VertexId v) {
  ESD_TRACE_SPAN("maintain.delete");
  const uint64_t key = Key(u, v);
  const EdgeId* pe = ids_.Find(key);
  if (pe == nullptr) return false;
  const EdgeId e = *pe;
  DeleteCounter().Inc();

  // Snapshot the affected subgraph G̃_{N(uv)} before mutating the graph.
  std::vector<VertexId> common = graph_.CommonNeighbors(u, v);
  util::FlatSet<VertexId> in_common(common.size());
  for (VertexId w : common) in_common.Insert(w);
  struct Pair {
    VertexId w1, w2;
    EdgeId e12;
  };
  std::vector<Pair> pairs;
  for (VertexId w1 : common) {
    for (VertexId w2 : graph_.Neighbors(w1)) {
      if (w2 <= w1 || !in_common.Contains(w2)) continue;
      pairs.push_back(Pair{w1, w2, IdOf(w1, w2)});
    }
  }

  graph_.EraseEdge(u, v);

  std::vector<EdgeId> affected;
  affected.reserve(2 * common.size() + pairs.size());

  if (!use_dsu_) {
    // Non-ESD scorers: same affected set, repaired by recomputing each
    // edge's values from the post-deletion graph via the scorer hook.
    for (VertexId w : common) {
      affected.push_back(IdOf(u, w));
      affected.push_back(IdOf(v, w));
    }
    for (const Pair& p : pairs) affected.push_back(p.e12);
    std::sort(affected.begin(), affected.end());
    affected.erase(std::unique(affected.begin(), affected.end()),
                   affected.end());
  } else if (strategy_ == DeletionStrategy::kRebuildLocal) {
    for (VertexId w : common) {
      affected.push_back(IdOf(u, w));
      affected.push_back(IdOf(v, w));
    }
    for (const Pair& p : pairs) affected.push_back(p.e12);
    std::sort(affected.begin(), affected.end());
    affected.erase(std::unique(affected.begin(), affected.end()),
                   affected.end());
    for (EdgeId a : affected) RebuildDsu(a);
  } else {
    // Algorithm 5. For each w in N(uv): v leaves N(uw) and u leaves N(vw);
    // if the leaving endpoint was isolated it is simply dropped (lines 6-9),
    // otherwise its component is rebuilt (the Update procedure).
    for (VertexId w : common) {
      EdgeId euw = IdOf(u, w);
      EdgeId evw = IdOf(v, w);
      if (!dsu_[euw].RemoveSingleton(v)) TargetedRepair(euw, v);
      if (!dsu_[evw].RemoveSingleton(u)) TargetedRepair(evw, u);
      affected.push_back(euw);
      affected.push_back(evw);
    }
    // For each edge (w1, w2) inside N(uv): the 4-clique {u, v, w1, w2} is
    // broken; u and v stay members of M_{w1w2} but their shared component
    // may split (lines 10-18).
    for (const Pair& p : pairs) {
      TargetedRepair(p.e12, u);
      affected.push_back(p.e12);
    }
    std::sort(affected.begin(), affected.end());
    affected.erase(std::unique(affected.begin(), affected.end()),
                   affected.end());
  }
  for (EdgeId a : affected) RefreshScores(a);

  // Lines 22-23: drop the deleted edge itself.
  index_.SetEdgeSizes(e, {});
  index_.UnregisterEdge(e);
  if (use_dsu_) dsu_[e] = KeyedDsu();
  ids_.Erase(key);
  last_touched_ = affected.size() + 1;
  TouchedCounter().Inc(last_touched_);
  return true;
}

size_t DynamicEsdIndex::RemoveVertexEdges(graph::VertexId v) {
  if (v >= graph_.NumVertices()) return 0;
  auto nbrs = graph_.Neighbors(v);
  std::vector<EdgeUpdate> batch;
  batch.reserve(nbrs.size());
  for (graph::VertexId w : nbrs) {
    batch.push_back({EdgeUpdate::Kind::kDelete, v, w});
  }
  return ApplyBatch(batch);
}

void DynamicEsdIndex::RebuildDsu(EdgeId e) {
  const Edge xy = index_.EdgeAt(e);
  KeyedDsu fresh;
  std::vector<VertexId> common = graph_.CommonNeighbors(xy.u, xy.v);
  fresh.Reserve(common.size());
  util::FlatSet<VertexId> in_common(common.size());
  for (VertexId w : common) {
    fresh.AddMember(w);
    in_common.Insert(w);
  }
  for (VertexId w1 : common) {
    for (VertexId w2 : graph_.Neighbors(w1)) {
      if (w2 > w1 && in_common.Contains(w2)) fresh.Union(w1, w2);
    }
  }
  dsu_[e] = std::move(fresh);
}

void DynamicEsdIndex::TargetedRepair(EdgeId e, VertexId z) {
  KeyedDsu& m = dsu_[e];
  if (!m.Contains(z)) return;
  const Edge xy = index_.EdgeAt(e);
  std::vector<VertexId> stale = m.ComponentMembers(z);
  m.RemoveComponent(z);
  // Re-admit members still in N(xy) as singletons (lines 28-30), then
  // re-union along surviving ego-network edges (lines 31-33). Deletions
  // only split components, so edges leaving the old component's vertex set
  // cannot exist.
  util::FlatSet<VertexId> keep(stale.size());
  for (VertexId w : stale) {
    if (graph_.HasEdge(xy.u, w) && graph_.HasEdge(xy.v, w)) {
      m.AddMember(w);
      keep.Insert(w);
    }
  }
  for (VertexId w : stale) {
    if (!keep.Contains(w)) continue;
    for (VertexId w2 : graph_.Neighbors(w)) {
      if (w2 > w && keep.Contains(w2)) m.Union(w, w2);
    }
  }
}

uint32_t DynamicEsdIndex::ScoreOf(VertexId u, VertexId v,
                                  uint32_t tau) const {
  return index_.ScoreOf(IdOf(u, v), tau);
}

}  // namespace esd::core
