#ifndef ESD_CORE_PARALLEL_BUILDER_H_
#define ESD_CORE_PARALLEL_BUILDER_H_

#include <vector>

#include "core/esd_index.h"
#include "core/frozen_index.h"
#include "core/scorer.h"
#include "graph/graph.h"
#include "util/dsu.h"

namespace esd::core {

/// Work-distribution strategy for the 4-clique enumeration phase
/// (Section IV-E). The paper rejects the "simple solution" of
/// parallelizing over vertices because out-degree (and thus per-vertex
/// clique work) is heavily skewed, and adopts edge-parallelism instead;
/// both are provided so the ablation bench can measure that argument.
enum class ParallelMode {
  kVertexParallel,
  kEdgeParallel,
};

/// Parallel index construction (Section IV-E, "PESDIndex+").
///
/// Parallelizes the three phases of Algorithm 3:
///   1. per-edge disjoint-set initialization (edges are independent),
///   2. 4-clique enumeration, parallel over directed edges of the DAG by
///      default (see ParallelMode) — with each union on M_e guarded by a
///      striped spinlock keyed by e,
///   3. component-size extraction per edge.
/// The final H(c) bulk build is sequential (it is a small fraction of the
/// total work).
///
/// With num_threads == 1 this matches BuildIndexClique output exactly; with
/// more threads the resulting index is identical (unions commute).
EsdIndex BuildIndexParallel(const graph::Graph& g, unsigned num_threads,
                            std::vector<util::KeyedDsu>* m_out = nullptr,
                            ParallelMode mode = ParallelMode::kEdgeParallel);

/// Frozen-output path of the parallel builder: same three parallel phases,
/// but the per-edge size multisets are emitted straight into the CSR slabs
/// of a FrozenEsdIndex — no treaps are ever constructed. Produces identical
/// query answers to Freeze(BuildIndexParallel(g, ...)).
FrozenEsdIndex BuildFrozenIndexParallel(
    const graph::Graph& g, unsigned num_threads,
    ParallelMode mode = ParallelMode::kEdgeParallel);

/// Scorer-parameterized parallel builds. ESD dispatches to the clique
/// pipeline above; any other scorer computes its per-edge value multisets
/// in parallel over edges through the scorer's single-edge hook (edges are
/// independent, so no locking is needed). Results are stamped with the
/// scorer's kind.
EsdIndex BuildIndexParallel(const graph::Graph& g,
                            const DiversityScorer& scorer,
                            unsigned num_threads,
                            ParallelMode mode = ParallelMode::kEdgeParallel);
FrozenEsdIndex BuildFrozenIndexParallel(
    const graph::Graph& g, const DiversityScorer& scorer,
    unsigned num_threads, ParallelMode mode = ParallelMode::kEdgeParallel);

}  // namespace esd::core

#endif  // ESD_CORE_PARALLEL_BUILDER_H_
