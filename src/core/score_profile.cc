#include "core/score_profile.h"

#include <algorithm>
#include <cmath>

namespace esd::core {

ScoreHistogram ComputeScoreHistogram(const EsdQueryEngine& engine,
                                     uint32_t tau) {
  ScoreHistogram out;
  out.total_edges = engine.CountWithScoreAtLeast(tau, 0);
  // Every edge in H(c*) contributes its stored score; every other edge
  // scores zero (Theorem 4 argument: no component size lies in [tau, c*)).
  TopKResult scored = engine.QueryWithScoreAtLeast(tau, 1);
  out.max_score = scored.empty() ? 0 : scored.front().score;
  out.count.assign(out.max_score + 1, 0);
  uint64_t sum = 0;
  for (const ScoredEdge& se : scored) {
    ++out.count[se.score];
    sum += se.score;
  }
  out.count[0] = out.total_edges - scored.size();
  out.mean = out.total_edges == 0
                 ? 0.0
                 : static_cast<double>(sum) /
                       static_cast<double>(out.total_edges);
  return out;
}

uint32_t ScorePercentile(const ScoreHistogram& histogram, double fraction) {
  if (histogram.total_edges == 0) return 0;
  fraction = std::clamp(fraction, 0.0, 1.0);
  // Smallest s with #{edges scoring <= s} >= ceil(fraction * total): the
  // truncating cast here used to floor the target, so e.g. fraction 0.5
  // over 3 edges asked for 1 edge instead of 2 and every mid-range
  // percentile came out one bucket low on odd counts.
  const uint64_t need = static_cast<uint64_t>(
      std::ceil(fraction * static_cast<double>(histogram.total_edges)));
  uint64_t seen = 0;
  for (uint32_t s = 0; s < histogram.count.size(); ++s) {
    seen += histogram.count[s];
    if (seen >= need) return s;
  }
  return histogram.max_score;
}

}  // namespace esd::core
