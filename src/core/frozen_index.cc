#include "core/frozen_index.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "core/esd_index.h"
#include "obs/trace.h"
#include "util/flat_map.h"

namespace esd::core {

using graph::Edge;
using graph::EdgeId;

namespace {

/// Canonical slab order: score descending, then edge id ascending — the
/// same total order EsdIndex::EntryLess imposes on the treaps.
bool EntryBefore(const FrozenEsdIndex::Entry& a,
                 const FrozenEsdIndex::Entry& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.e < b.e;
}

uint32_t ScoreAt(std::span<const uint32_t> sizes, uint32_t c) {
  return static_cast<uint32_t>(
      sizes.end() - std::lower_bound(sizes.begin(), sizes.end(), c));
}

}  // namespace

FrozenEsdIndex FrozenEsdIndex::FromEdgeSizes(
    std::vector<Edge> edges, std::vector<std::vector<uint32_t>> sizes_per_edge,
    std::vector<uint8_t> live, ScorerKind scorer) {
  obs::PhaseSeries phases;
  phases.Begin("build.slab_sort");
  FrozenEsdIndex out;
  out.scorer_ = scorer;
  const size_t n = edges.size();
  assert(sizes_per_edge.size() == n);
  out.edges_ = std::move(edges);
  out.live_ = live.empty() ? std::vector<uint8_t>(n, 1) : std::move(live);
  assert(out.live_.size() == n);
  for (size_t e = 0; e < n; ++e) {
    assert(std::is_sorted(sizes_per_edge[e].begin(), sizes_per_edge[e].end()));
    if (!out.live_[e]) sizes_per_edge[e].clear();  // freed slots carry nothing
    if (out.live_[e]) ++out.num_live_;
  }

  // Pack the per-edge multisets into one CSR pool.
  out.size_offsets_.resize(n + 1);
  uint64_t total_sizes = 0;
  for (size_t e = 0; e < n; ++e) {
    out.size_offsets_[e] = total_sizes;
    total_sizes += sizes_per_edge[e].size();
  }
  out.size_offsets_[n] = total_sizes;
  out.size_pool_.reserve(total_sizes);
  for (size_t e = 0; e < n; ++e) {
    out.size_pool_.insert(out.size_pool_.end(), sizes_per_edge[e].begin(),
                          sizes_per_edge[e].end());
  }

  // The distinct size set C, ascending.
  out.sizes_ = out.size_pool_;
  std::sort(out.sizes_.begin(), out.sizes_.end());
  out.sizes_.erase(std::unique(out.sizes_.begin(), out.sizes_.end()),
                   out.sizes_.end());
  const size_t num_c = out.sizes_.size();

  // |H(c_i)| = #{edges with max(C_e) >= c_i}: bucket edges by the index of
  // their maximum size, then suffix-sum.
  std::vector<std::vector<EdgeId>> by_max(num_c);
  for (size_t e = 0; e < n; ++e) {
    if (sizes_per_edge[e].empty()) continue;
    size_t idx = static_cast<size_t>(
        std::lower_bound(out.sizes_.begin(), out.sizes_.end(),
                         sizes_per_edge[e].back()) -
        out.sizes_.begin());
    by_max[idx].push_back(static_cast<EdgeId>(e));
  }
  out.offsets_.assign(num_c + 1, 0);
  {
    uint64_t suffix = 0;
    std::vector<uint64_t> slab_len(num_c, 0);
    for (size_t i = num_c; i-- > 0;) {
      suffix += by_max[i].size();
      slab_len[i] = suffix;
    }
    for (size_t i = 0; i < num_c; ++i) {
      out.offsets_[i + 1] = out.offsets_[i] + slab_len[i];
    }
  }
  out.entries_.resize(out.offsets_[num_c]);

  // Sweep c from largest to smallest keeping the active set (edges with
  // max >= c), emitting each slab as one sorted run — the same sweep as
  // EsdIndex::BulkLoad, but into flat storage instead of treaps.
  std::vector<EdgeId> active;
  std::vector<Entry> run;
  for (size_t i = num_c; i-- > 0;) {
    active.insert(active.end(), by_max[i].begin(), by_max[i].end());
    const uint32_t c = out.sizes_[i];
    run.clear();
    run.reserve(active.size());
    for (EdgeId e : active) {
      run.push_back(Entry{ScoreAt(out.EdgeSizes(e), c), e});
    }
    std::sort(run.begin(), run.end(), EntryBefore);
    assert(run.size() == out.offsets_[i + 1] - out.offsets_[i]);
    std::copy(run.begin(), run.end(), out.entries_.begin() + out.offsets_[i]);
  }
  return out;
}

bool FrozenEsdIndex::Adopt(Parts parts, FrozenEsdIndex* out,
                           std::string* error) {
  auto fail = [error](const char* what) {
    if (error != nullptr) *error = what;
    return false;
  };
  if (!ValidScorerKind(static_cast<uint32_t>(parts.scorer))) {
    return fail("frozen index: unknown scorer id");
  }
  const size_t n = parts.edges.size();
  if (parts.live.size() != n) return fail("frozen index: live mask size");
  if (parts.size_offsets.size() != n + 1 || parts.size_offsets[0] != 0 ||
      parts.size_offsets[n] != parts.size_pool.size()) {
    return fail("frozen index: size-offset table malformed");
  }
  uint64_t num_live = 0;
  for (size_t e = 0; e < n; ++e) {
    const uint64_t lo = parts.size_offsets[e], hi = parts.size_offsets[e + 1];
    if (lo > hi) return fail("frozen index: size offsets not monotone");
    if (parts.live[e] == 0 && lo != hi) {
      return fail("frozen index: freed slot with non-empty multiset");
    }
    num_live += parts.live[e] != 0 ? 1 : 0;
    uint32_t prev = 0;
    for (uint64_t i = lo; i < hi; ++i) {
      if (parts.size_pool[i] == 0 || parts.size_pool[i] < prev) {
        return fail("frozen index: multiset not sorted/positive");
      }
      prev = parts.size_pool[i];
    }
  }
  // C must be exactly the distinct sizes occurring in the pool.
  {
    std::vector<uint32_t> want = parts.size_pool;
    std::sort(want.begin(), want.end());
    want.erase(std::unique(want.begin(), want.end()), want.end());
    if (want != parts.sizes) {
      return fail("frozen index: size set C does not match multisets");
    }
  }
  const size_t num_c = parts.sizes.size();
  if (parts.offsets.size() != num_c + 1 || parts.offsets[0] != 0 ||
      parts.offsets[num_c] != parts.entries.size()) {
    return fail("frozen index: slab offset table malformed");
  }
  // Expected |H(c_i)| = #{edges with max(C_e) >= c_i}: bucket each edge by
  // the index of its maximum size, then suffix-sum.
  std::vector<uint64_t> expected_len(num_c + 1, 0);
  for (size_t e = 0; e < n; ++e) {
    const uint64_t shi = parts.size_offsets[e + 1];
    if (parts.size_offsets[e] == shi) continue;
    size_t idx = static_cast<size_t>(
        std::lower_bound(parts.sizes.begin(), parts.sizes.end(),
                         parts.size_pool[shi - 1]) -
        parts.sizes.begin());
    ++expected_len[idx];
  }
  for (size_t i = num_c; i-- > 0;) expected_len[i] += expected_len[i + 1];
  // Validate each slab: strict canonical order, in-range live edges, and
  // scores consistent with the stored multisets. Completeness (every edge
  // with max >= c present) follows from the slab-length check: strict
  // order makes entries distinct, and each must have max >= c.
  for (size_t i = 0; i < num_c; ++i) {
    const uint32_t c = parts.sizes[i];
    const uint64_t lo = parts.offsets[i], hi = parts.offsets[i + 1];
    if (lo > hi) return fail("frozen index: slab offsets not monotone");
    if (hi - lo != expected_len[i]) {
      return fail("frozen index: slab length wrong");
    }
    for (uint64_t j = lo; j < hi; ++j) {
      const Entry& entry = parts.entries[j];
      if (j > lo && !EntryBefore(parts.entries[j - 1], entry)) {
        return fail("frozen index: slab not in canonical order");
      }
      if (entry.e >= n || parts.live[entry.e] == 0) {
        return fail("frozen index: slab entry references bad edge");
      }
      std::span<const uint32_t> sizes{
          parts.size_pool.data() + parts.size_offsets[entry.e],
          parts.size_pool.data() + parts.size_offsets[entry.e + 1]};
      if (entry.score != ScoreAt(sizes, c) || entry.score == 0) {
        return fail("frozen index: slab score inconsistent with multiset");
      }
    }
  }
  out->edges_ = std::move(parts.edges);
  out->live_ = std::move(parts.live);
  out->size_offsets_ = std::move(parts.size_offsets);
  out->size_pool_ = std::move(parts.size_pool);
  out->sizes_ = std::move(parts.sizes);
  out->offsets_ = std::move(parts.offsets);
  out->entries_ = std::move(parts.entries);
  out->num_live_ = num_live;
  out->scorer_ = parts.scorer;
  return true;
}

size_t FrozenEsdIndex::FindSlab(uint32_t tau) const {
  counters_.AddSlabSearch();
  auto it = std::lower_bound(sizes_.begin(), sizes_.end(), tau);
  if (it == sizes_.end()) return kNoSlab;
  return static_cast<size_t>(it - sizes_.begin());
}

TopKResult FrozenEsdIndex::Query(uint32_t k, uint32_t tau,
                                 bool pad_with_zero_edges) const {
  if (k == 0 || tau == 0) return {};
  return QueryAtSlab(FindSlab(tau), k, pad_with_zero_edges);
}

TopKResult FrozenEsdIndex::QueryAtSlab(size_t slab_index, uint32_t k,
                                       bool pad_with_zero_edges) const {
  TopKResult out;
  if (k == 0) return out;
  counters_.AddQuery();
  std::span<const Entry> slab;
  if (slab_index != kNoSlab) slab = ListAt(slab_index);
  const size_t take = std::min<size_t>(k, slab.size());
  out.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    out.push_back(ScoredEdge{edges_[slab[i].e], slab[i].score});
  }
  if (pad_with_zero_edges) PadQueryResult(slab_index, k, &out);
  // Only the real slab prefix counts as entries scanned: zero-padded filler
  // edges never touch a slab, and counting them would inflate the engine
  // work counters cache-benefit analysis compares against.
  counters_.AddEntriesScanned(take);
  return out;
}

void FrozenEsdIndex::PadQueryResult(size_t slab_index, uint32_t k,
                                    TopKResult* inout) const {
  TopKResult& out = *inout;
  if (out.size() >= k) return;
  std::span<const Entry> slab;
  if (slab_index != kNoSlab) slab = ListAt(slab_index);
  // The entries already in `out` are exactly the slab's first out.size()
  // (the unpadded-answer precondition), so the dedup set rebuilds from the
  // slab prefix rather than from the endpoint pairs.
  const size_t take = std::min<size_t>(out.size(), slab.size());
  util::FlatSet<EdgeId> included(take);
  for (size_t i = 0; i < take; ++i) included.Insert(slab[i].e);
  for (EdgeId e = 0; e < edges_.size() && out.size() < k; ++e) {
    if (live_[e] && !included.Contains(e)) {
      out.push_back(ScoredEdge{edges_[e], 0});
    }
  }
}

uint32_t FrozenEsdIndex::ScoreOf(EdgeId e, uint32_t tau) const {
  return ScoreAt(EdgeSizes(e), tau);
}

uint64_t FrozenEsdIndex::CountWithScoreAtLeast(uint32_t tau,
                                               uint32_t min_score) const {
  if (min_score == 0) return num_live_;
  if (tau == 0) return 0;
  counters_.AddSlabSearch();
  auto it = std::lower_bound(sizes_.begin(), sizes_.end(), tau);
  if (it == sizes_.end()) return 0;
  std::span<const Entry> slab =
      ListAt(static_cast<size_t>(it - sizes_.begin()));
  // Scores are descending, so the >= min_score prefix is a partition point.
  auto pos = std::partition_point(
      slab.begin(), slab.end(),
      [min_score](const Entry& x) { return x.score >= min_score; });
  return static_cast<uint64_t>(pos - slab.begin());
}

TopKResult FrozenEsdIndex::QueryWithScoreAtLeast(uint32_t tau,
                                                 uint32_t min_score,
                                                 size_t limit) const {
  TopKResult out;
  if (tau == 0 || min_score == 0) return out;
  counters_.AddSlabSearch();
  auto it = std::lower_bound(sizes_.begin(), sizes_.end(), tau);
  if (it == sizes_.end()) return out;
  for (const Entry& entry : ListAt(static_cast<size_t>(it - sizes_.begin()))) {
    if (entry.score < min_score) break;
    if (limit > 0 && out.size() >= limit) break;
    out.push_back(ScoredEdge{edges_[entry.e], entry.score});
  }
  counters_.AddEntriesScanned(out.size());
  return out;
}

uint64_t FrozenEsdIndex::MemoryBytes() const {
  return entries_.size() * sizeof(Entry) +
         size_pool_.size() * sizeof(uint32_t) +
         sizes_.size() * sizeof(uint32_t) +
         offsets_.size() * sizeof(uint64_t) +
         size_offsets_.size() * sizeof(uint64_t) +
         edges_.size() * sizeof(Edge) + live_.size() * sizeof(uint8_t);
}

bool operator==(const FrozenEsdIndex& a, const FrozenEsdIndex& b) {
  return a.scorer_ == b.scorer_ && a.edges_ == b.edges_ &&
         a.live_ == b.live_ && a.size_offsets_ == b.size_offsets_ &&
         a.size_pool_ == b.size_pool_ && a.sizes_ == b.sizes_ &&
         a.offsets_ == b.offsets_ && a.entries_ == b.entries_;
}

FrozenEsdIndex Freeze(const EsdIndex& index) {
  const size_t slots = index.EdgeSlotCount();
  std::vector<Edge> edges;
  std::vector<std::vector<uint32_t>> sizes;
  std::vector<uint8_t> live;
  edges.reserve(slots);
  sizes.reserve(slots);
  live.reserve(slots);
  for (EdgeId e = 0; e < slots; ++e) {
    edges.push_back(index.EdgeAt(e));
    sizes.push_back(index.EdgeSizes(e));
    live.push_back(index.IsLive(e) ? 1 : 0);
  }
  return FrozenEsdIndex::FromEdgeSizes(std::move(edges), std::move(sizes),
                                       std::move(live), index.Scorer());
}

EsdIndex Thaw(const FrozenEsdIndex& frozen) {
  const size_t slots = frozen.EdgeSlotCount();
  bool all_live = frozen.NumRegisteredEdges() == slots;
  EsdIndex out;
  if (all_live) {
    std::vector<Edge> edges(frozen.Edges().begin(), frozen.Edges().end());
    std::vector<std::vector<uint32_t>> sizes;
    sizes.reserve(slots);
    for (EdgeId e = 0; e < slots; ++e) {
      std::span<const uint32_t> s = frozen.EdgeSizes(e);
      sizes.emplace_back(s.begin(), s.end());
    }
    out.BulkLoad(std::move(edges), std::move(sizes));
  } else {
    // Register every slot first so ids stay sequential, then free the dead
    // ones — identical to the v1 deserialization replay.
    for (EdgeId e = 0; e < slots; ++e) {
      EdgeId got = out.RegisterEdge(frozen.EdgeAt(e));
      assert(got == e);
      (void)got;
      if (frozen.IsLive(e)) {
        std::span<const uint32_t> s = frozen.EdgeSizes(e);
        out.SetEdgeSizes(e, std::vector<uint32_t>(s.begin(), s.end()));
      }
    }
    for (EdgeId e = 0; e < slots; ++e) {
      if (!frozen.IsLive(e)) out.UnregisterEdge(e);
    }
  }
  out.SetScorerKind(frozen.Scorer());
  return out;
}

FrozenEsdIndex FilterFrozenIndex(
    const FrozenEsdIndex& index,
    const std::function<bool(Edge)>& keep) {
  const size_t slots = index.EdgeSlotCount();
  std::vector<Edge> edges(index.Edges().begin(), index.Edges().end());
  std::vector<std::vector<uint32_t>> sizes(slots);
  std::vector<uint8_t> live(slots, 0);
  for (EdgeId e = 0; e < slots; ++e) {
    if (!index.IsLive(e) || !keep(edges[e])) continue;
    live[e] = 1;
    std::span<const uint32_t> s = index.EdgeSizes(e);
    sizes[e].assign(s.begin(), s.end());
  }
  return FrozenEsdIndex::FromEdgeSizes(std::move(edges), std::move(sizes),
                                       std::move(live), index.Scorer());
}

}  // namespace esd::core
