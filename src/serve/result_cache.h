#ifndef ESD_SERVE_RESULT_CACHE_H_
#define ESD_SERVE_RESULT_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/topk_result.h"
#include "obs/metrics.h"

namespace esd::serve {

/// Epoch-keyed top-k result cache — the serving layer's answer to the
/// observation that within one published epoch every (tau, k, pad) answer
/// is immutable, and real traffic (serve_load's Zipfian mix) concentrates
/// on a handful of parameter combinations. A hit turns the common case
/// into a hash lookup plus a result copy; the slab is never touched.
///
/// Correctness rests on one invariant, repaired by the seq-guarded
/// EpochSnapshotManager::Publish: epoch ids are monotone in applied_seq,
/// so a given epoch id names exactly one immutable index image. The cache
/// keys whole generations on that id:
///
///   * One Generation = one epoch's worth of entries, sharded (per-shard
///     mutex + LRU + hash map), behind a shared_ptr the readers pin.
///   * Epoch swap = O(1) whole-generation invalidation: swap in a fresh
///     Generation and drop the pointer — no tombstones, no per-entry
///     walk. In-flight readers still pinning the old generation finish
///     harmlessly against it (their batch pinned the matching old engine,
///     so old-generation answers are still correct for them).
///   * A lookup carrying an epoch NEWER than the current generation
///     rotates first (the notification path via OnEpochChange does the
///     same proactively); a lookup carrying an OLDER epoch — a batch that
///     pinned its engine just before a swap — bypasses: it must neither
///     hit the new generation nor pollute it with stale answers.
///
/// Lock discipline mirrors EpochSnapshotManager's publication lock: the
/// generation pointer hides behind gen_mu_ whose critical sections are
/// O(1) shared_ptr copies/swaps, so lookups (which then lock only their
/// one shard) never contend with the writer's epoch bump, and the bump
/// never waits on a resident lookup.
///
/// Memory is bounded twice per shard — entry count and bytes — with LRU
/// eviction inside the shard. A result too large for its shard's byte
/// budget is simply not cached.
class ResultCache {
 public:
  struct Options {
    /// Total entry budget across shards (>= 1 enforced per shard).
    size_t max_entries = 1 << 16;
    /// Total byte budget across shards for cached results (0 = entry
    /// bound only).
    size_t max_bytes = 32u << 20;
    /// Lock stripes; rounded up to a power of two, at least 1.
    size_t shards = 16;
  };

  /// Point-in-time view of the cache (Snap walks the current generation's
  /// shards; counters are lifetime totals across generations).
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;     ///< includes stale-epoch bypasses
    uint64_t bypasses = 0;   ///< lookups from an already-retired epoch
    uint64_t evictions = 0;  ///< entries dropped by LRU budget enforcement
    uint64_t generations = 0;  ///< rotations performed (initial gen incl.)
    uint64_t epoch = 0;        ///< epoch the current generation serves
    size_t entries = 0;        ///< entries resident in the current gen
    uint64_t bytes = 0;        ///< bytes resident in the current gen
    double hit_rate = 0;       ///< hits / (hits + misses), 0 when idle
  };

  /// Registers the esd_cache_{hits,misses,evictions,bytes,hit_rate}
  /// metrics on `registry` (which must outlive the cache).
  ResultCache(const Options& options, obs::MetricRegistry& registry);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Looks up (tau, k, pad) in the generation serving `epoch`. On hit,
  /// copies the cached answer into *out and refreshes its LRU position.
  /// A newer epoch rotates the generation first (and misses); an older
  /// epoch bypasses (misses without rotating).
  bool Lookup(uint64_t epoch, uint32_t tau, uint32_t k, bool pad,
              core::TopKResult* out);

  /// Inserts an answer computed against `epoch`'s engine. Dropped when the
  /// generation has moved past `epoch` (a stale insert must never land in
  /// a newer generation) or when the result exceeds the shard byte budget.
  void Insert(uint64_t epoch, uint32_t tau, uint32_t k, bool pad,
              const core::TopKResult& result);

  /// Proactive generation rotation, wired to the live index's epoch
  /// listener so the swap happens at publish time rather than on the
  /// first post-swap lookup. Older/equal epochs are no-ops.
  void OnEpochChange(uint64_t epoch);

  Stats Snap() const;

 private:
  struct CacheKey {
    uint32_t tau = 0;
    uint32_t k = 0;
    uint8_t pad = 0;

    friend bool operator==(const CacheKey&, const CacheKey&) = default;
  };
  struct CacheKeyHash {
    size_t operator()(const CacheKey& key) const {
      // splitmix64 finalizer over the packed key: tau and k each get 32
      // bits; pad flips the top bit pre-mix.
      uint64_t x = (static_cast<uint64_t>(key.tau) << 32) | key.k;
      if (key.pad != 0) x ^= uint64_t{1} << 63;
      x += 0x9E3779B97F4A7C15ull;
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
      x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
      return static_cast<size_t>(x ^ (x >> 31));
    }
  };

  struct Entry {
    CacheKey key;
    core::TopKResult result;
    size_t bytes = 0;
  };

  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash>
        map;
    size_t bytes = 0;
  };

  /// One epoch's entries. Immutable epoch id; shards mutate under their
  /// own locks. Retired generations (swapped out by a rotation) refuse
  /// late inserts so the byte gauge tracks only the live generation.
  struct Generation {
    explicit Generation(uint64_t e, size_t shard_count)
        : epoch(e), shards(shard_count) {}
    const uint64_t epoch;
    std::vector<Shard> shards;
    std::atomic<bool> retired{false};
    /// Sum of shard byte counts, maintained atomically so the gauge can be
    /// refreshed without sweeping every shard lock.
    std::atomic<uint64_t> total_bytes{0};
  };

  /// Estimated resident size of one cached entry (list node + map slot +
  /// the result payload).
  static size_t EntryBytes(const core::TopKResult& result) {
    return sizeof(Entry) + kEntryOverheadBytes +
           result.size() * sizeof(core::ScoredEdge);
  }
  static constexpr size_t kEntryOverheadBytes = 64;

  std::shared_ptr<Generation> Pin() const {
    std::lock_guard<std::mutex> lock(gen_mu_);
    return gen_;
  }

  /// Swaps in a fresh generation for `epoch` if it is newer than the
  /// current one. Returns the generation now serving (for callers that
  /// continue into it).
  std::shared_ptr<Generation> Rotate(uint64_t epoch);

  Shard& ShardFor(Generation& gen, const CacheKey& key) const {
    return gen.shards[CacheKeyHash{}(key) & (num_shards_ - 1)];
  }

  /// Evicts from the shard's LRU tail until both budgets hold. Shard lock
  /// held by the caller.
  void EnforceBudgets(Generation& gen, Shard& shard);

  void RecordLookup(bool hit);

  size_t num_shards_;        // power of two
  size_t shard_entry_budget_;
  size_t shard_byte_budget_;  // SIZE_MAX when max_bytes == 0

  obs::Counter& hits_;
  obs::Counter& misses_;
  obs::Counter& evictions_;
  obs::Gauge& bytes_gauge_;
  obs::Gauge& hit_rate_;
  std::atomic<uint64_t> bypasses_{0};
  std::atomic<uint64_t> generations_{1};

  /// Generation pointer lock — O(1) critical sections only (copy or
  /// swap), the reader/writer non-contention guarantee.
  mutable std::mutex gen_mu_;
  std::shared_ptr<Generation> gen_;
};

}  // namespace esd::serve

#endif  // ESD_SERVE_RESULT_CACHE_H_
