#ifndef ESD_SERVE_METRICS_H_
#define ESD_SERVE_METRICS_H_

#include <array>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/request_context.h"

namespace esd::serve {

/// The HDR-style histogram now lives in obs/ (shared by the registry);
/// this alias keeps the serve-layer spelling that predates the move.
using LatencyHistogram = obs::LatencyHistogram;

/// One coherent read of a service's counters and latency distributions.
struct MetricsSnapshot {
  uint64_t accepted = 0;         ///< requests admitted to the queue
  uint64_t rejected = 0;         ///< bounced by bounded admission (or stop)
  uint64_t completed = 0;        ///< served with an engine answer
  uint64_t deadline_missed = 0;  ///< expired in the queue, never executed
  uint64_t shards_unavailable = 0;  ///< strict requests typed-failed on a
                                    ///< degraded fleet (sharded mode only)
  uint64_t batches = 0;          ///< worker wakeups that drained >= 1 request
  uint64_t slab_searches_saved = 0;  ///< tau-batching: binary searches elided
  uint64_t queue_depth = 0;      ///< requests waiting at snapshot time
  LatencyHistogram::Snapshot queue_wait;  ///< admission -> worker pickup
  LatencyHistogram::Snapshot execute;     ///< engine time per served query
  LatencyHistogram::Snapshot total;       ///< admission -> response ready
  /// Per-stage attribution distributions, indexed by obs::Stage. Every
  /// completed request records all six (zeros included), so _count matches
  /// `completed` and sums partition the end-to-end time.
  std::array<LatencyHistogram::Snapshot, obs::kNumStages> stages;
};

/// The instrumentation an EsdQueryService carries, hosted on an
/// obs::MetricRegistry under esd_serve_* names so a scrape of the registry
/// (esd_server's METRICS command) sees the serving counters without a
/// second bookkeeping path. Pass a registry to share (typically
/// &obs::MetricRegistry::Global()); the default constructor keeps a
/// private embedded registry, which load benches rely on so that each
/// sweep configuration starts from zero. All recorders are wait-free
/// relaxed atomics; Snap() and exporters may run concurrently.
class ServiceMetrics {
 public:
  explicit ServiceMetrics(obs::MetricRegistry* registry = nullptr)
      : owned_(registry == nullptr ? std::make_unique<obs::MetricRegistry>()
                                   : nullptr),
        reg_(registry != nullptr ? *registry : *owned_),
        accepted_(reg_.GetCounter("esd_serve_accepted_total",
                                  "Requests admitted to the queue")),
        rejected_(reg_.GetCounter("esd_serve_rejected_total",
                                  "Requests bounced by bounded admission")),
        completed_(reg_.GetCounter("esd_serve_completed_total",
                                   "Requests served with an engine answer")),
        deadline_missed_(
            reg_.GetCounter("esd_serve_deadline_missed_total",
                            "Requests expired in the queue, never executed")),
        shards_unavailable_(reg_.GetCounter(
            "esd_serve_shards_unavailable_total",
            "Strict requests typed-failed because >= 1 shard was sick")),
        batches_(reg_.GetCounter("esd_serve_batches_total",
                                 "Worker wakeups that drained >= 1 request")),
        slab_searches_saved_(
            reg_.GetCounter("esd_serve_slab_searches_saved_total",
                            "Slab binary searches elided by tau-batching")),
        queue_depth_(reg_.GetGauge("esd_serve_queue_depth",
                                   "Requests waiting in the queue")),
        queue_wait_(reg_.GetHistogram("esd_serve_queue_wait_us",
                                      "Admission to worker pickup, us")),
        execute_(reg_.GetHistogram("esd_serve_execute_us",
                                   "Engine time per served query, us")),
        total_(reg_.GetHistogram("esd_serve_total_us",
                                 "Admission to response ready, us")),
        stages_{&reg_.GetHistogram(
                    "esd_serve_stage_queue_wait_us",
                    "Attribution: admission to batch pickup, us"),
                &reg_.GetHistogram(
                    "esd_serve_stage_batch_formation_us",
                    "Attribution: batch start to this request's turn "
                    "(sort, engine pin, earlier batchmates), us"),
                &reg_.GetHistogram(
                    "esd_serve_stage_cache_lookup_us",
                    "Attribution: dedup probe + result-cache lookup, us"),
                &reg_.GetHistogram(
                    "esd_serve_stage_slab_scan_us",
                    "Attribution: slab prefix scan / engine query, us"),
                &reg_.GetHistogram(
                    "esd_serve_stage_padding_scan_us",
                    "Attribution: zero-padding walk over live edges, us"),
                &reg_.GetHistogram(
                    "esd_serve_stage_merge_us",
                    "Attribution: answer assembly and cache insert, us")} {}

  ServiceMetrics(const ServiceMetrics&) = delete;
  ServiceMetrics& operator=(const ServiceMetrics&) = delete;

  /// The registry these metrics live on (the shared one, or the embedded
  /// private one when default-constructed).
  obs::MetricRegistry& registry() { return reg_; }

  void RecordAccepted() { accepted_.Inc(); }
  void RecordRejected() { rejected_.Inc(); }
  void RecordBatch(size_t distinct_taus, size_t batched_queries) {
    batches_.Inc();
    slab_searches_saved_.Inc(batched_queries - distinct_taus);
  }
  void RecordDeadlineMissed(double queue_us) {
    deadline_missed_.Inc();
    queue_wait_.RecordMicros(queue_us);
  }
  void RecordShardsUnavailable(double queue_us) {
    shards_unavailable_.Inc();
    queue_wait_.RecordMicros(queue_us);
  }
  void RecordCompleted(double queue_us, double exec_us) {
    completed_.Inc();
    queue_wait_.RecordMicros(queue_us);
    execute_.RecordMicros(exec_us);
    total_.RecordMicros(queue_us + exec_us);
  }
  void SetQueueDepth(size_t depth) {
    queue_depth_.Set(static_cast<double>(depth));
  }
  /// Records a served request's attribution breakdown. Zero-duration
  /// stages are skipped — a stage histogram's _count is the number of
  /// requests where that stage did work (so its quantiles describe actual
  /// executions, undiluted by zeros), while the stage _sums still
  /// partition end-to-end time exactly. Skipping zeros also halves the
  /// shared-counter traffic on the hot path: a typical request touches
  /// three or four of the six stages.
  void RecordStages(const obs::RequestContext& ctx) {
    for (size_t i = 0; i < obs::kNumStages; ++i) {
      const uint64_t ns = ctx.stage_ns[i];
      if (ns != 0) stages_[i]->RecordNanos(ns);
    }
  }

  MetricsSnapshot Snap() const {
    MetricsSnapshot s;
    s.accepted = accepted_.Value();
    s.rejected = rejected_.Value();
    s.completed = completed_.Value();
    s.deadline_missed = deadline_missed_.Value();
    s.shards_unavailable = shards_unavailable_.Value();
    s.batches = batches_.Value();
    s.slab_searches_saved = slab_searches_saved_.Value();
    s.queue_depth = static_cast<uint64_t>(queue_depth_.Value());
    s.queue_wait = queue_wait_.Snap();
    s.execute = execute_.Snap();
    s.total = total_.Snap();
    for (size_t i = 0; i < obs::kNumStages; ++i) {
      s.stages[i] = stages_[i]->Snap();
    }
    return s;
  }

 private:
  std::unique_ptr<obs::MetricRegistry> owned_;
  obs::MetricRegistry& reg_;
  obs::Counter& accepted_;
  obs::Counter& rejected_;
  obs::Counter& completed_;
  obs::Counter& deadline_missed_;
  obs::Counter& shards_unavailable_;
  obs::Counter& batches_;
  obs::Counter& slab_searches_saved_;
  obs::Gauge& queue_depth_;
  obs::Histogram& queue_wait_;
  obs::Histogram& execute_;
  obs::Histogram& total_;
  std::array<obs::Histogram*, obs::kNumStages> stages_;
};

/// Extra key/value fields (no surrounding braces) in the machine-readable
/// JSON-line dialect bench_common.h emits, appendable to a '{"bench":...'
/// line: counters plus end-to-end and per-stage percentiles.
inline std::string MetricsJsonFields(const MetricsSnapshot& s) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "\"accepted\":%llu,\"rejected\":%llu,\"completed\":%llu,"
      "\"deadline_missed\":%llu,\"batches\":%llu,"
      "\"slab_searches_saved\":%llu,"
      "\"p50_us\":%.3f,\"p95_us\":%.3f,\"p99_us\":%.3f,"
      "\"queue_p95_us\":%.3f,\"exec_p95_us\":%.3f",
      static_cast<unsigned long long>(s.accepted),
      static_cast<unsigned long long>(s.rejected),
      static_cast<unsigned long long>(s.completed),
      static_cast<unsigned long long>(s.deadline_missed),
      static_cast<unsigned long long>(s.batches),
      static_cast<unsigned long long>(s.slab_searches_saved),
      s.total.p50_us, s.total.p95_us, s.total.p99_us, s.queue_wait.p95_us,
      s.execute.p95_us);
  return buf;
}

/// Per-stage attribution fields for the same JSON-line dialect: p95 and
/// cumulative sum per stage, so bench artifacts can reconstruct both tail
/// shape and where the run's total wall time went.
inline std::string StageJsonFields(const MetricsSnapshot& s) {
  std::string out;
  char buf[128];
  for (size_t i = 0; i < obs::kNumStages; ++i) {
    const char* name = obs::StageName(static_cast<obs::Stage>(i));
    std::snprintf(buf, sizeof(buf),
                  "%s\"stage_%s_p95_us\":%.3f,\"stage_%s_sum_us\":%.1f",
                  i == 0 ? "" : ",", name, s.stages[i].p95_us, name,
                  s.stages[i].sum_us);
    out.append(buf);
  }
  return out;
}

}  // namespace esd::serve

#endif  // ESD_SERVE_METRICS_H_
