#ifndef ESD_SERVE_METRICS_H_
#define ESD_SERVE_METRICS_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

namespace esd::serve {

/// Lock-free log-scale latency histogram (HDR-style: power-of-two major
/// buckets, 8 linear sub-buckets each, so any recorded value lands in a
/// bucket within 12.5% of its true nanosecond latency). Record() is a
/// single relaxed atomic increment, safe from any number of threads;
/// Snap() reads a racy-but-consistent-enough snapshot for export, which is
/// the usual contract for serving metrics.
class LatencyHistogram {
 public:
  /// Percentiles and moments of one histogram, in microseconds.
  struct Snapshot {
    uint64_t count = 0;
    double p50_us = 0;
    double p95_us = 0;
    double p99_us = 0;
    double max_us = 0;
    double mean_us = 0;
  };

  void RecordNanos(uint64_t ns) {
    buckets_[BucketOf(ns)].fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
    uint64_t seen = max_ns_.load(std::memory_order_relaxed);
    while (ns > seen &&
           !max_ns_.compare_exchange_weak(seen, ns,
                                          std::memory_order_relaxed)) {
    }
  }
  void RecordMicros(double us) {
    RecordNanos(us <= 0 ? 0 : static_cast<uint64_t>(us * 1e3));
  }

  Snapshot Snap() const {
    std::array<uint64_t, kBuckets> counts;
    uint64_t total = 0;
    for (size_t b = 0; b < kBuckets; ++b) {
      counts[b] = buckets_[b].load(std::memory_order_relaxed);
      total += counts[b];
    }
    Snapshot s;
    s.count = total;
    if (total == 0) return s;
    s.p50_us = PercentileUs(counts, total, 0.50);
    s.p95_us = PercentileUs(counts, total, 0.95);
    s.p99_us = PercentileUs(counts, total, 0.99);
    s.max_us =
        static_cast<double>(max_ns_.load(std::memory_order_relaxed)) * 1e-3;
    s.mean_us =
        static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) * 1e-3 /
        static_cast<double>(total);
    return s;
  }

 private:
  static constexpr int kSubBits = 3;
  static constexpr size_t kSub = size_t{1} << kSubBits;  // 8 sub-buckets
  // Largest bucket index is reached at ns = 2^64 - 1 (bit width 64):
  // (64 - 1 - kSubBits + 1) * kSub + (kSub - 1) = 495.
  static constexpr size_t kBuckets = (64 - kSubBits) * kSub + kSub;

  static size_t BucketOf(uint64_t ns) {
    if (ns < kSub) return static_cast<size_t>(ns);
    const int shift = std::bit_width(ns) - 1 - kSubBits;
    return static_cast<size_t>(shift + 1) * kSub +
           static_cast<size_t>((ns >> shift) & (kSub - 1));
  }

  /// Representative latency of bucket `b` (its midpoint), in microseconds.
  static double BucketMidUs(size_t b) {
    if (b < kSub) return static_cast<double>(b) * 1e-3;
    const int shift = static_cast<int>(b / kSub) - 1;
    const double lo = std::ldexp(static_cast<double>(kSub + b % kSub), shift);
    const double width = std::ldexp(1.0, shift);
    return (lo + width * 0.5) * 1e-3;
  }

  static double PercentileUs(const std::array<uint64_t, kBuckets>& counts,
                             uint64_t total, double p) {
    const uint64_t rank =
        std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(
                                  p * static_cast<double>(total))));
    uint64_t seen = 0;
    for (size_t b = 0; b < kBuckets; ++b) {
      seen += counts[b];
      if (seen >= rank) return BucketMidUs(b);
    }
    return BucketMidUs(kBuckets - 1);
  }

  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> sum_ns_{0};
  std::atomic<uint64_t> max_ns_{0};
};

/// One coherent read of a service's counters and latency distributions.
struct MetricsSnapshot {
  uint64_t accepted = 0;         ///< requests admitted to the queue
  uint64_t rejected = 0;         ///< bounced by bounded admission (or stop)
  uint64_t completed = 0;        ///< served with an engine answer
  uint64_t deadline_missed = 0;  ///< expired in the queue, never executed
  uint64_t batches = 0;          ///< worker wakeups that drained >= 1 request
  uint64_t slab_searches_saved = 0;  ///< tau-batching: binary searches elided
  LatencyHistogram::Snapshot queue_wait;  ///< admission -> worker pickup
  LatencyHistogram::Snapshot execute;     ///< engine time per served query
  LatencyHistogram::Snapshot total;       ///< admission -> response ready
};

/// The lock-free instrumentation an EsdQueryService carries: monotonically
/// increasing counters plus per-stage latency histograms. All recorders are
/// wait-free relaxed atomics; exporters may be called concurrently.
class ServiceMetrics {
 public:
  void RecordAccepted() { accepted_.fetch_add(1, std::memory_order_relaxed); }
  void RecordRejected() { rejected_.fetch_add(1, std::memory_order_relaxed); }
  void RecordBatch(size_t distinct_taus, size_t batched_queries) {
    batches_.fetch_add(1, std::memory_order_relaxed);
    slab_searches_saved_.fetch_add(batched_queries - distinct_taus,
                                   std::memory_order_relaxed);
  }
  void RecordDeadlineMissed(double queue_us) {
    deadline_missed_.fetch_add(1, std::memory_order_relaxed);
    queue_wait_.RecordMicros(queue_us);
  }
  void RecordCompleted(double queue_us, double exec_us) {
    completed_.fetch_add(1, std::memory_order_relaxed);
    queue_wait_.RecordMicros(queue_us);
    execute_.RecordMicros(exec_us);
    total_.RecordMicros(queue_us + exec_us);
  }

  MetricsSnapshot Snap() const {
    MetricsSnapshot s;
    s.accepted = accepted_.load(std::memory_order_relaxed);
    s.rejected = rejected_.load(std::memory_order_relaxed);
    s.completed = completed_.load(std::memory_order_relaxed);
    s.deadline_missed = deadline_missed_.load(std::memory_order_relaxed);
    s.batches = batches_.load(std::memory_order_relaxed);
    s.slab_searches_saved =
        slab_searches_saved_.load(std::memory_order_relaxed);
    s.queue_wait = queue_wait_.Snap();
    s.execute = execute_.Snap();
    s.total = total_.Snap();
    return s;
  }

 private:
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> deadline_missed_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> slab_searches_saved_{0};
  LatencyHistogram queue_wait_;
  LatencyHistogram execute_;
  LatencyHistogram total_;
};

/// Extra key/value fields (no surrounding braces) in the machine-readable
/// JSON-line dialect bench_common.h emits, appendable to a '{"bench":...'
/// line: counters plus end-to-end and per-stage percentiles.
inline std::string MetricsJsonFields(const MetricsSnapshot& s) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "\"accepted\":%llu,\"rejected\":%llu,\"completed\":%llu,"
      "\"deadline_missed\":%llu,\"batches\":%llu,"
      "\"slab_searches_saved\":%llu,"
      "\"p50_us\":%.3f,\"p95_us\":%.3f,\"p99_us\":%.3f,"
      "\"queue_p95_us\":%.3f,\"exec_p95_us\":%.3f",
      static_cast<unsigned long long>(s.accepted),
      static_cast<unsigned long long>(s.rejected),
      static_cast<unsigned long long>(s.completed),
      static_cast<unsigned long long>(s.deadline_missed),
      static_cast<unsigned long long>(s.batches),
      static_cast<unsigned long long>(s.slab_searches_saved),
      s.total.p50_us, s.total.p95_us, s.total.p99_us, s.queue_wait.p95_us,
      s.execute.p95_us);
  return buf;
}

}  // namespace esd::serve

#endif  // ESD_SERVE_METRICS_H_
