#include "serve/result_cache.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace esd::serve {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

ResultCache::ResultCache(const Options& options, obs::MetricRegistry& registry)
    : num_shards_(RoundUpPow2(std::max<size_t>(options.shards, 1))),
      shard_entry_budget_(
          std::max<size_t>(options.max_entries / num_shards_, 1)),
      shard_byte_budget_(options.max_bytes == 0
                             ? std::numeric_limits<size_t>::max()
                             : std::max<size_t>(
                                   options.max_bytes / num_shards_, 1)),
      hits_(registry.GetCounter("esd_cache_hits",
                                "result cache lookups answered without "
                                "touching the slab")),
      misses_(registry.GetCounter("esd_cache_misses",
                                  "result cache lookups that fell through "
                                  "to query execution")),
      evictions_(registry.GetCounter("esd_cache_evictions",
                                     "cache entries dropped by LRU budget "
                                     "enforcement")),
      bytes_gauge_(registry.GetGauge("esd_cache_bytes",
                                     "bytes resident in the current cache "
                                     "generation")),
      hit_rate_(registry.GetGauge("esd_cache_hit_rate",
                                  "lifetime cache hits / lookups")),
      gen_(std::make_shared<Generation>(0, num_shards_)) {}

bool ResultCache::Lookup(uint64_t epoch, uint32_t tau, uint32_t k, bool pad,
                         core::TopKResult* out) {
  std::shared_ptr<Generation> gen = Pin();
  if (epoch > gen->epoch) gen = Rotate(epoch);
  if (epoch < gen->epoch) {
    // The caller pinned its engine just before an epoch swap; its answers
    // belong to a retired generation. Count as a miss so the hit rate
    // reflects real serving behavior.
    bypasses_.fetch_add(1, std::memory_order_relaxed);
    RecordLookup(false);
    return false;
  }

  const CacheKey key{tau, k, static_cast<uint8_t>(pad ? 1 : 0)};
  Shard& shard = ShardFor(*gen, key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      *out = it->second->result;
      RecordLookup(true);
      return true;
    }
  }
  RecordLookup(false);
  return false;
}

void ResultCache::Insert(uint64_t epoch, uint32_t tau, uint32_t k, bool pad,
                         const core::TopKResult& result) {
  std::shared_ptr<Generation> gen = Pin();
  if (epoch > gen->epoch) gen = Rotate(epoch);
  // A stale answer must never land in a newer generation; a retired
  // generation refuses late arrivals so the byte gauge tracks only the
  // live one.
  if (epoch < gen->epoch || gen->retired.load(std::memory_order_acquire)) {
    return;
  }

  const size_t entry_bytes = EntryBytes(result);
  if (entry_bytes > shard_byte_budget_) return;  // would evict everything

  const CacheKey key{tau, k, static_cast<uint8_t>(pad ? 1 : 0)};
  Shard& shard = ShardFor(*gen, key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      // Same (epoch, tau, k, pad) => same answer; just refresh recency.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
      shard.lru.push_front(Entry{key, result, entry_bytes});
      shard.map.emplace(key, shard.lru.begin());
      shard.bytes += entry_bytes;
      gen->total_bytes.fetch_add(entry_bytes, std::memory_order_relaxed);
      EnforceBudgets(*gen, shard);
    }
  }
  if (!gen->retired.load(std::memory_order_acquire)) {
    bytes_gauge_.Set(static_cast<double>(
        gen->total_bytes.load(std::memory_order_relaxed)));
  }
}

void ResultCache::OnEpochChange(uint64_t epoch) { Rotate(epoch); }

std::shared_ptr<ResultCache::Generation> ResultCache::Rotate(uint64_t epoch) {
  auto fresh = std::make_shared<Generation>(epoch, num_shards_);
  std::shared_ptr<Generation> retired;
  {
    std::lock_guard<std::mutex> lock(gen_mu_);
    if (epoch <= gen_->epoch) return gen_;  // racing rotation already won
    retired = gen_;
    gen_ = fresh;
  }
  // Whole-generation invalidation is the swap above; everything below is
  // bookkeeping outside the pointer lock.
  retired->retired.store(true, std::memory_order_release);
  generations_.fetch_add(1, std::memory_order_relaxed);
  bytes_gauge_.Set(0);
  return fresh;
}

void ResultCache::EnforceBudgets(Generation& gen, Shard& shard) {
  while (!shard.lru.empty() && (shard.lru.size() > shard_entry_budget_ ||
                                shard.bytes > shard_byte_budget_)) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    gen.total_bytes.fetch_sub(victim.bytes, std::memory_order_relaxed);
    shard.map.erase(victim.key);
    shard.lru.pop_back();
    evictions_.Inc();
  }
}

void ResultCache::RecordLookup(bool hit) {
  if (hit) {
    hits_.Inc();
  } else {
    misses_.Inc();
  }
  const double h = static_cast<double>(hits_.Value());
  const double m = static_cast<double>(misses_.Value());
  hit_rate_.Set(h + m > 0 ? h / (h + m) : 0.0);
}

ResultCache::Stats ResultCache::Snap() const {
  Stats s;
  s.hits = hits_.Value();
  s.misses = misses_.Value();
  s.bypasses = bypasses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.Value();
  s.generations = generations_.load(std::memory_order_relaxed);
  std::shared_ptr<Generation> gen = Pin();
  s.epoch = gen->epoch;
  for (Shard& shard : gen->shards) {
    std::lock_guard<std::mutex> lock(shard.mu);
    s.entries += shard.lru.size();
    s.bytes += shard.bytes;
  }
  const double total = static_cast<double>(s.hits + s.misses);
  s.hit_rate = total > 0 ? static_cast<double>(s.hits) / total : 0.0;
  return s;
}

}  // namespace esd::serve
