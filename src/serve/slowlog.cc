#include "serve/slowlog.h"

#include <algorithm>
#include <cstdio>

#include "obs/trace.h"

namespace esd::serve {

namespace {

bool CheaperThan(const SlowQueryRecord& a, const SlowQueryRecord& b) {
  // std::push_heap builds a max-heap; inverting the comparison keeps the
  // *cheapest* retained record on top, where eviction can see it in O(1).
  return a.total_us > b.total_us;
}

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out->append(buf);
}

}  // namespace

SlowQueryLog::SlowQueryLog(const Options& options)
    : capacity_(std::max<size_t>(1, options.capacity)),
      window_(options.window),
      window_ns_(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(options.window)
              .count())),
      stripes_(std::max<size_t>(1, options.stripes)) {}

void SlowQueryLog::ExpireLocked(Stripe& stripe, uint64_t now_ns) const {
  auto expired = [&](const SlowQueryRecord& r) {
    return now_ns - r.recorded_ns > window_ns_;
  };
  if (std::none_of(stripe.heap.begin(), stripe.heap.end(), expired)) return;
  stripe.heap.erase(
      std::remove_if(stripe.heap.begin(), stripe.heap.end(), expired),
      stripe.heap.end());
  std::make_heap(stripe.heap.begin(), stripe.heap.end(), CheaperThan);
}

void SlowQueryLog::RefreshHintsLocked(Stripe& stripe) const {
  stripe.floor_us.store(stripe.heap.size() >= capacity_
                            ? stripe.heap.front().total_us
                            : -1.0,
                        std::memory_order_relaxed);
  uint64_t oldest = 0;
  for (const SlowQueryRecord& r : stripe.heap) {
    if (oldest == 0 || r.recorded_ns < oldest) oldest = r.recorded_ns;
  }
  stripe.oldest_ns.store(oldest, std::memory_order_relaxed);
}

void SlowQueryLog::Record(SlowQueryRecord record) {
  // Sequential ids round-robin the stripes, spreading concurrent workers
  // across locks even under a single hot client.
  Stripe& stripe = stripes_[record.request_id % stripes_.size()];
  stripe.recorded.fetch_add(1, std::memory_order_relaxed);
  if (record.recorded_ns == 0) record.recorded_ns = obs::MonotonicNanos();
  // Saturated-stripe fast path: once the stripe is full (floor_us >= 0),
  // a record that can't beat the cheapest retained entry is dropped with
  // two relaxed loads — no mutex, no expiry scan. The oldest_ns guard
  // keeps this sound: if the stripe's oldest entry may have aged out of
  // the window, the floor is stale-high and we must take the lock to
  // expire and re-evaluate. (Unsigned wrap from a concurrent hint update
  // only over-estimates the age, which falls through to the slow path —
  // the conservative direction.)
  const double floor_us = stripe.floor_us.load(std::memory_order_relaxed);
  if (floor_us >= 0 && record.total_us <= floor_us &&
      record.recorded_ns -
              stripe.oldest_ns.load(std::memory_order_relaxed) <=
          window_ns_) {
    return;
  }
  std::lock_guard<std::mutex> lock(stripe.mu);
  ExpireLocked(stripe, record.recorded_ns);
  if (stripe.heap.size() < capacity_) {
    stripe.heap.push_back(std::move(record));
    std::push_heap(stripe.heap.begin(), stripe.heap.end(), CheaperThan);
  } else if (record.total_us > stripe.heap.front().total_us) {
    std::pop_heap(stripe.heap.begin(), stripe.heap.end(), CheaperThan);
    stripe.heap.back() = std::move(record);
    std::push_heap(stripe.heap.begin(), stripe.heap.end(), CheaperThan);
  }
  RefreshHintsLocked(stripe);
}

std::vector<SlowQueryRecord> SlowQueryLog::Worst(size_t n) const {
  const uint64_t now_ns = obs::MonotonicNanos();
  std::vector<SlowQueryRecord> merged;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    for (const SlowQueryRecord& r : stripe.heap) {
      if (now_ns - r.recorded_ns > window_ns_) continue;
      merged.push_back(r);
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const SlowQueryRecord& a, const SlowQueryRecord& b) {
              if (a.total_us != b.total_us) return a.total_us > b.total_us;
              return a.request_id < b.request_id;
            });
  size_t keep = capacity_;
  if (n != 0) keep = std::min(keep, n);
  if (merged.size() > keep) merged.resize(keep);
  return merged;
}

std::string SlowQueryLog::ToJson(const SlowQueryRecord& r, uint64_t now_ns) {
  std::string out = "{\"rid\":" + std::to_string(r.request_id);
  out.append(",\"total_us\":");
  AppendDouble(&out, r.total_us);
  out.append(",\"queue_us\":");
  AppendDouble(&out, r.queue_us);
  out.append(",\"exec_us\":");
  AppendDouble(&out, r.exec_us);
  out.append(",\"tau\":" + std::to_string(r.tau));
  out.append(",\"k\":" + std::to_string(r.k));
  out.append(r.pad_with_zero_edges ? ",\"pad\":true" : ",\"pad\":false");
  out.append(",\"scorer\":\"");
  out.append(core::ScorerKindName(r.scorer));
  out.append("\",\"epoch\":" + std::to_string(r.epoch));
  out.append(",\"cache\":\"");
  out.append(obs::CacheOutcomeName(r.cache));
  out.append("\",\"health\":\"");
  out.append(obs::HealthStateName(r.health));
  out.append("\",\"deadline_missed\":");
  out.append(r.deadline_missed ? "true" : "false");
  if (r.shards_ok + r.shards_degraded + r.shards_down > 0) {
    out.append(",\"shards_ok\":" + std::to_string(r.shards_ok));
    out.append(",\"shards_degraded\":" + std::to_string(r.shards_degraded));
    out.append(",\"shards_down\":" + std::to_string(r.shards_down));
  }
  out.append(",\"age_s\":");
  AppendDouble(&out, now_ns >= r.recorded_ns
                         ? static_cast<double>(now_ns - r.recorded_ns) * 1e-9
                         : 0.0);
  out.append(",\"stages\":{");
  for (size_t i = 0; i < obs::kNumStages; ++i) {
    if (i != 0) out.push_back(',');
    out.push_back('"');
    out.append(obs::StageName(static_cast<obs::Stage>(i)));
    out.append("\":");
    AppendDouble(&out, r.stage_us[i]);
  }
  out.append("}}");
  return out;
}

std::vector<std::string> SlowQueryLog::JsonLines(size_t n) const {
  const uint64_t now_ns = obs::MonotonicNanos();
  std::vector<std::string> out;
  for (const SlowQueryRecord& r : Worst(n)) {
    out.push_back(ToJson(r, now_ns));
  }
  return out;
}

void SlowQueryLog::Clear() {
  for (Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    stripe.heap.clear();
    RefreshHintsLocked(stripe);
  }
}

}  // namespace esd::serve
