#ifndef ESD_SERVE_SLOWLOG_H_
#define ESD_SERVE_SLOWLOG_H_

/// Always-on slow-query ring log: retains the N worst requests (by total
/// latency) of the trailing window, each with its full per-stage
/// attribution, tau/k/pad, scorer, epoch, cache outcome, and the health
/// state sampled at admission — the forensic record esd_server's SLOWLOG
/// command serves when someone asks "why was *this* query slow."
///
/// Lock-striped: requests hash by request id onto `stripes` independent
/// min-heaps (each bounded at `capacity` entries), so concurrent serving
/// workers almost never contend on the same mutex. Snapshot() merges the
/// stripes, drops entries older than the window, and returns the global
/// worst-first list. Recording is O(log capacity) under one stripe mutex
/// with no allocation beyond the bounded heap — and once a stripe is
/// saturated, requests that can't beat its cheapest retained entry are
/// rejected on a lock-free fast path (two relaxed loads, no mutex, no
/// expiry scan), which is what keeps the log cheap enough to stay on in
/// production (and it works in both ESD_OBS modes).

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/scorer.h"
#include "obs/health.h"
#include "obs/request_context.h"

namespace esd::serve {

/// One retained slow request. Times in microseconds; stage_us is indexed
/// by obs::Stage.
struct SlowQueryRecord {
  uint64_t request_id = 0;
  uint64_t epoch = 0;
  uint32_t tau = 0;
  uint32_t k = 0;
  bool pad_with_zero_edges = true;
  bool deadline_missed = false;
  core::ScorerKind scorer = core::ScorerKind::kEsd;
  obs::CacheOutcome cache = obs::CacheOutcome::kNone;
  obs::HealthState health = obs::HealthState::kOk;
  /// Fleet tally at serve time (sharded services only; all zero — and
  /// omitted from the JSON — on unsharded ones). A slow partial answer is
  /// distinguishable from a slow full one in the forensic record.
  uint16_t shards_ok = 0;
  uint16_t shards_degraded = 0;
  uint16_t shards_down = 0;
  double queue_us = 0;
  double exec_us = 0;
  double total_us = 0;
  double stage_us[obs::kNumStages] = {};
  /// Steady-clock nanos when recorded; 0 lets Record() stamp the current
  /// time (tests inject old stamps to exercise window expiry).
  uint64_t recorded_ns = 0;
};

class SlowQueryLog {
 public:
  struct Options {
    /// Worst entries retained per window, across all stripes.
    size_t capacity = 32;
    /// Trailing window; entries age out at Record() and Snapshot() time.
    std::chrono::seconds window{60};
    /// Independent locks; rounded up to >= 1. Each stripe holds up to
    /// `capacity` entries so a hot stripe alone can cover the budget.
    size_t stripes = 8;
  };

  SlowQueryLog() : SlowQueryLog(Options{}) {}
  explicit SlowQueryLog(const Options& options);

  /// Considers one finished request for retention (always cheap; drops it
  /// immediately when it can't beat the stripe's current worst set).
  void Record(SlowQueryRecord record);

  /// The current worst requests, most expensive first, capped at
  /// min(n, capacity); n == 0 means the full capacity.
  std::vector<SlowQueryRecord> Worst(size_t n = 0) const;

  /// Worst(n) as JSON lines (one object per record, worst first).
  std::vector<std::string> JsonLines(size_t n = 0) const;

  /// One record as a JSON object (stable schema, also used by tests).
  static std::string ToJson(const SlowQueryRecord& record, uint64_t now_ns);

  /// Total requests offered to Record() since construction.
  uint64_t recorded() const {
    uint64_t total = 0;
    for (const Stripe& stripe : stripes_) {
      total += stripe.recorded.load(std::memory_order_relaxed);
    }
    return total;
  }

  size_t capacity() const { return capacity_; }
  std::chrono::seconds window() const { return window_; }

  void Clear();

 private:
  /// Cache-line aligned so one worker's hot stripe never false-shares
  /// with a neighbour's.
  struct alignas(64) Stripe {
    mutable std::mutex mu;
    /// Min-heap on total_us (cheapest retained entry on top), bounded at
    /// capacity_ — eviction compares against the cheapest in O(1).
    std::vector<SlowQueryRecord> heap;
    /// Fast-reject hints, refreshed under the mutex after every mutation:
    /// floor_us is the cheapest retained total once the stripe is full
    /// (-1 while it isn't — everything must take the lock), oldest_ns the
    /// oldest retained stamp. Record() rejects without locking only when
    /// the candidate can't beat the floor AND nothing can have expired.
    std::atomic<double> floor_us{-1.0};
    std::atomic<uint64_t> oldest_ns{0};
    /// Requests offered to this stripe (fast-rejected ones included).
    std::atomic<uint64_t> recorded{0};
  };

  void ExpireLocked(Stripe& stripe, uint64_t now_ns) const;
  void RefreshHintsLocked(Stripe& stripe) const;

  const size_t capacity_;
  const std::chrono::seconds window_;
  const uint64_t window_ns_;
  std::vector<Stripe> stripes_;
};

}  // namespace esd::serve

#endif  // ESD_SERVE_SLOWLOG_H_
