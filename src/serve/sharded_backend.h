#ifndef ESD_SERVE_SHARDED_BACKEND_H_
#define ESD_SERVE_SHARDED_BACKEND_H_

#include <chrono>
#include <cstdint>

#include "core/scorer.h"
#include "core/topk_result.h"
#include "obs/health.h"

namespace esd::serve {

/// Fleet health tally stamped into every sharded QueryResponse: how many
/// shards contributed to (ok), were alive but excluded from (degraded), or
/// were entirely absent from (down) the merge. ok + degraded + down is the
/// configured shard count.
struct ShardCounts {
  uint16_t ok = 0;
  uint16_t degraded = 0;  ///< serving an old epoch: read-only, breaker, stale
  uint16_t down = 0;      ///< quarantined at open, resync required, stall-tripped
  uint32_t total() const {
    return static_cast<uint32_t>(ok) + degraded + down;
  }
  bool all_ok() const { return degraded == 0 && down == 0; }
};

/// One scatter-gather execution's outcome.
struct ShardedOutcome {
  core::TopKResult result;
  /// Fleet tally at execution time (may differ from the batch-level poll
  /// if a shard changed state mid-batch; the response carries this one).
  ShardCounts shards;
  /// The merge hit `deadline` before completing; `result` is partial junk
  /// and the caller must answer kDeadlineMissed instead.
  bool deadline_expired = false;
  /// Slab entries actually drained across all shards — the early-exit
  /// bound's observable: at most k + (#shards - 1) for a k-entry answer.
  uint64_t drained_entries = 0;
};

/// The seam between EsdQueryService and a sharded engine (src/shard/).
/// Lives in serve/ so the service never links the shard (and thus live)
/// layer; the concrete ShardedQueryEngine implements it one library up.
///
/// Thread-safety contract: every method is callable concurrently from all
/// serving workers, and none of them may block on the backend's write path
/// (a stalled WAL heal probe must never stall a reader) — the service's
/// typed-rejection-under-degradation guarantee rests on this.
class ShardedBackend {
 public:
  virtual ~ShardedBackend() = default;

  /// Monotone serving generation: bumps whenever any shard's published
  /// epoch, health, or up/down state changes. Plays the role the single
  /// live epoch plays for the result cache — one generation names one
  /// immutable (epoch vector, fleet state) image, so cached answers are
  /// invalidated by any shard-level event, including heals.
  virtual uint64_t Generation() = 0;

  /// Current fleet tally (same classification Execute stamps).
  virtual ShardCounts Counts() = 0;

  /// Scatter-gather top-k over the healthy shards. Returns when the merge
  /// finishes or `deadline` passes, whichever is first.
  virtual ShardedOutcome Execute(
      uint32_t k, uint32_t tau, bool pad_with_zero_edges,
      std::chrono::steady_clock::time_point deadline) = 0;

  /// Worst-shard health folded for the service's Health(): any shard down
  /// or degraded degrades the fleet view (partial answers), all-ok is ok.
  virtual obs::HealthState Health() const = 0;

  /// Diversity definition every shard serves (shards never mix scorers).
  virtual core::ScorerKind Scorer() const = 0;
};

}  // namespace esd::serve

#endif  // ESD_SERVE_SHARDED_BACKEND_H_
