#ifndef ESD_SERVE_QUERY_SERVICE_H_
#define ESD_SERVE_QUERY_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/frozen_index.h"
#include "core/query_engine.h"
#include "obs/health.h"
#include "obs/request_context.h"
#include "serve/metrics.h"
#include "serve/result_cache.h"
#include "serve/sharded_backend.h"
#include "serve/slowlog.h"
#include "util/thread_pool.h"

namespace esd::serve {

/// One top-k query as submitted by a client.
struct QueryRequest {
  uint32_t k = 10;
  uint32_t tau = 2;
  bool pad_with_zero_edges = true;
  /// Deadline relative to Submit(), in microseconds; 0 = none. A request
  /// still queued when its deadline passes is answered kDeadlineMissed
  /// without touching the engine (the engine call itself is never aborted).
  uint64_t deadline_us = 0;
  /// Monotonic nanoseconds (obs::MonotonicNanos) when the request actually
  /// arrived — stamped by the network front end at decode time. 0 (the
  /// default) means "now": admission charges queue_wait from its own clock
  /// read. When set, queue_wait and the deadline are anchored at wire
  /// arrival, so time a request spends in socket buffers and the event
  /// loop is attributed to it rather than silently dropped.
  uint64_t arrival_ns = 0;
  /// Partial-result policy for sharded serving. false (partial, the
  /// default): answer from whatever shards are healthy, with the fleet
  /// tally in QueryResponse::shards_*. true (strict): any degraded or down
  /// shard fails the request typed (kShardsUnavailable) without executing
  /// — fail fast instead of silently narrowing the answer. Ignored by
  /// unsharded services (a single engine is always "all shards ok").
  bool strict = false;
};

enum class ResponseStatus : uint8_t {
  kOk = 0,
  kRejectedQueueFull,   ///< bounced by bounded admission, never queued
  kDeadlineMissed,      ///< expired while queued, engine never ran
  kShutdown,            ///< submitted after Stop(), or unserved at teardown
  kShardsUnavailable,   ///< strict query, but >= 1 shard degraded or down
};

/// The service's answer to one QueryRequest.
struct QueryResponse {
  ResponseStatus status = ResponseStatus::kOk;
  core::TopKResult result;  ///< empty unless status == kOk
  double queue_us = 0;      ///< admission -> worker pickup (0 if rejected)
  double exec_us = 0;       ///< engine time (0 unless status == kOk)
  /// Request-scoped telemetry: the id minted at admission, the epoch the
  /// answer came from, the cache outcome, and the per-stage attribution
  /// (queue_wait + batch_formation == queue_us; the remaining stages
  /// partition exec_us). Zeroed for rejected/shutdown responses.
  obs::RequestContext ctx;
  /// Fleet tally (sharded serving only; all zero on unsharded services):
  /// shards that contributed to this answer, shards alive but excluded
  /// (their edges are missing from the result), and shards down. A partial
  /// answer is exactly one with shards_degraded + shards_down > 0.
  uint16_t shards_ok = 0;
  uint16_t shards_degraded = 0;
  uint16_t shards_down = 0;
};

/// Concurrent query service over one shared immutable EsdQueryEngine — the
/// paper's build-once / query-forever workload as an actual server loop.
///
/// Shape: Submit() pushes into one bounded FIFO (admission control: a full
/// queue rejects instead of blocking, so overload degrades by shedding, not
/// by unbounded memory). Worker loops — run on the existing
/// util::ThreadPool via one long-lived ParallelFor, one loop per pool
/// thread — drain up to max_batch requests per wakeup and serve them
/// batched: the batch is sorted by tau, so when the engine is a
/// FrozenEsdIndex the slab binary search is paid once per distinct tau in
/// the batch rather than once per query (FindSlab/QueryAtSlab). Under low
/// load batches degenerate to size 1 and the service behaves like a plain
/// thread-per-request executor; under load batching kicks in naturally.
///
/// Ahead of the slab path sits an optional epoch-keyed ResultCache
/// (Options::cache_bytes): repeated (tau, k, pad) traffic within one
/// engine epoch is answered from the cache without touching the engine,
/// and an epoch swap invalidates the whole generation in O(1). Batches are
/// additionally sorted by (tau, k, pad) so identical requests inside one
/// batch are answered once and copied.
///
/// The engine is shared by const reference across all workers, relying on
/// the EsdQueryEngine thread-safety contract: the caller must not mutate
/// the engine (or an online adapter's borrowed graph) while the service is
/// alive. FrozenEsdIndex, immutable by construction, is the intended
/// engine.
///
/// Responses are delivered through std::future. Stop() (also run by the
/// destructor) drains gracefully: every admitted request is still served;
/// only requests submitted after Stop() — or left queued when a paused
/// service is torn down — see kShutdown.
class EsdQueryService {
 public:
  struct Options {
    /// Worker threads; 0 = util::ThreadPool::DefaultThreadCount().
    unsigned num_threads = 0;
    /// Bounded admission: queue length beyond which Submit rejects.
    size_t max_queue = 1024;
    /// Max requests one worker drains per wakeup (the batching window).
    size_t max_batch = 32;
    /// When true the constructor does not start the workers; requests
    /// queue (and admission/deadlines apply) until Start(). Lets tests
    /// stage a deterministic backlog.
    bool start_paused = false;
    /// Registry the service's esd_serve_* metrics live on. Null (default)
    /// keeps a private embedded registry — load benches rely on starting
    /// from zero. esd_server passes &obs::MetricRegistry::Global() so the
    /// METRICS command scrapes serving metrics alongside everything else.
    obs::MetricRegistry* registry = nullptr;
    /// Upstream health feed folded into Health() (e.g. the LiveEsdIndex's
    /// degraded/read-only state). Called from any thread; empty = the
    /// service reports only its own state.
    std::function<obs::HealthState()> health_source;
    /// Byte budget of the epoch-keyed result cache; 0 (default) disables
    /// caching entirely. Only honored in static-engine mode (the engine is
    /// immutable, epoch 0 forever) and epoch-provider mode (epoch swaps
    /// rotate the cache generation); the legacy EngineProvider mode has no
    /// epoch signal and never caches.
    size_t cache_bytes = 0;
    /// Entry budget of the result cache (split across its shards).
    size_t cache_entries = 1 << 16;
    /// Lock stripes of the result cache.
    size_t cache_shards = 16;
    /// Slow-query forensics (always on): worst requests retained per
    /// trailing window, served by slow_log() / esd_server's SLOWLOG.
    size_t slowlog_capacity = 32;
    std::chrono::seconds slowlog_window{60};
    size_t slowlog_stripes = 8;
  };

  /// Returns the engine a batch should serve from. Called once per batch
  /// (the pinning granularity): every request in a batch sees one
  /// consistent engine, and the shared_ptr keeps that engine alive for the
  /// batch even if the provider publishes a newer one mid-serve. Must be
  /// callable from any worker thread and never return null.
  using EngineProvider =
      std::function<std::shared_ptr<const core::EsdQueryEngine>()>;

  /// An engine pinned together with the epoch id it serves — what the
  /// epoch-aware provider returns. The epoch keys the result cache: two
  /// calls returning the same epoch MUST return the same (immutable)
  /// engine image. LiveEsdIndex's seq-guarded publish provides exactly
  /// this (epoch ids are monotone in applied_seq).
  struct PinnedEngine {
    std::shared_ptr<const core::EsdQueryEngine> engine;
    uint64_t epoch = 0;
  };
  /// Epoch-aware engine provider; must never return a null engine.
  using EpochEngineProvider = std::function<PinnedEngine()>;

  explicit EsdQueryService(const core::EsdQueryEngine& engine);
  EsdQueryService(const core::EsdQueryEngine& engine, const Options& options);
  /// Engine-swap serving mode: each batch pins the provider's current
  /// engine (e.g. a LiveEsdIndex epoch) instead of one fixed engine.
  /// No epoch signal, so Options::cache_bytes is ignored (never caches).
  EsdQueryService(EngineProvider provider, const Options& options);
  /// Epoch-aware engine-swap mode: like EngineProvider, but each batch also
  /// learns which epoch it pinned, enabling the result cache (hits answer
  /// without touching the engine; an epoch swap invalidates the whole
  /// cache generation in O(1)).
  EsdQueryService(EpochEngineProvider provider, const Options& options);
  /// Sharded scatter-gather mode: every miss executes through `backend`
  /// (which must outlive the service), the result cache keys on the
  /// backend's monotone Generation() instead of a single epoch, strict
  /// requests fail typed (kShardsUnavailable) while any shard is sick, and
  /// every response carries the fleet tally.
  EsdQueryService(ShardedBackend& backend, const Options& options);
  ~EsdQueryService();

  EsdQueryService(const EsdQueryService&) = delete;
  EsdQueryService& operator=(const EsdQueryService&) = delete;

  /// Starts the worker loops (no-op unless constructed start_paused, or
  /// called twice).
  void Start();

  /// Non-blocking admission. The future is always eventually ready; a
  /// rejected or post-Stop request resolves immediately.
  std::future<QueryResponse> Submit(const QueryRequest& request);

  /// Callback-completion admission: `done` is invoked exactly once with the
  /// response — from a worker thread on the normal path, or synchronously
  /// on the calling thread when the request bounces at admission (queue
  /// full, post-Stop). Same admission, deadline, batching, cache, and
  /// telemetry semantics as Submit. The network front end uses this to
  /// fan responses back into its event loop without a blocking future wait
  /// per connection; callers must therefore not hold locks the callback
  /// also takes.
  void SubmitAsync(const QueryRequest& request,
                   std::function<void(QueryResponse)> done);

  /// Blocking convenience wrapper: Submit + wait. Deadlocks on a paused
  /// service (nothing serves the queue) — call Start() first.
  QueryResponse Query(const QueryRequest& request);

  /// Stops accepting work, serves everything already admitted, joins the
  /// workers. Idempotent; called by the destructor.
  void Stop();

  const ServiceMetrics& metrics() const { return metrics_; }
  unsigned num_threads() const { return num_threads_; }

  /// The always-on slow-query ring log (worst requests of the trailing
  /// window, with full per-stage attribution).
  const SlowQueryLog& slow_log() const { return slow_log_; }

  /// Epoch-change notification, wired to LiveEsdIndex::SetEpochListener so
  /// the cache generation rotates at publish time instead of lazily on the
  /// first post-swap lookup. Safe from any thread; no-op when caching is
  /// off.
  void NotifyEpoch(uint64_t epoch) {
    if (cache_) cache_->OnEpochChange(epoch);
  }

  /// The result cache, or null when disabled (cache_bytes == 0 or legacy
  /// provider mode). Exposed for stats surfaces (esd_server STATS, tests).
  const ResultCache* cache() const { return cache_.get(); }

  /// Combined serving health: the worse of this service's own state (a
  /// stopped service is read-only — admitted work still drains but nothing
  /// new is accepted) and the Options::health_source feed.
  obs::HealthState Health() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    QueryRequest request;
    std::promise<QueryResponse> promise;
    /// Set for SubmitAsync requests; when present the response goes through
    /// it (Resolve) and the promise is never touched.
    std::function<void(QueryResponse)> callback;
    Clock::time_point enqueued;
    Clock::time_point deadline;  // time_point::max() when none
    /// Telemetry context minted at admission; travels with the request and
    /// is returned in the response.
    obs::RequestContext ctx;
    /// Serving health as last sampled when this request was admitted (the
    /// upstream feed is polled per batch, not per admission).
    obs::HealthState admit_health = obs::HealthState::kOk;
  };

  void WorkerLoop();
  void ServeBatch(std::vector<Pending> batch);
  /// Builds a Pending (timestamps, telemetry context, admit health),
  /// honoring QueryRequest::arrival_ns as the enqueue instant when set.
  Pending MakePending(const QueryRequest& request);
  /// Shared admission bottom half of Submit/SubmitAsync.
  void Enqueue(Pending p);
  /// Delivers a response through whichever completion channel the request
  /// carries (callback or promise). Every Pending passes through here
  /// exactly once — admission bounce, Stop orphan, or served batch.
  static void Resolve(Pending& p, QueryResponse response);

  /// Exactly one of engine_/provider_/epoch_provider_/sharded_ is set. In
  /// provider modes ServeBatch re-pins per batch; in static mode engine_
  /// (and the frozen_ downcast) are fixed for the service's lifetime; in
  /// sharded mode every miss scatter-gathers through the backend.
  const core::EsdQueryEngine* engine_;
  EngineProvider provider_;
  EpochEngineProvider epoch_provider_;
  ShardedBackend* sharded_ = nullptr;
  /// Non-null when engine_ is a FrozenEsdIndex: enables the batched
  /// slab-reuse fast path.
  const core::FrozenEsdIndex* frozen_;
  const unsigned num_threads_;
  const size_t max_queue_;
  const size_t max_batch_;
  const std::function<obs::HealthState()> health_source_;

  ServiceMetrics metrics_;
  /// Declared after metrics_: the cache registers its esd_cache_* metrics
  /// on metrics_.registry(). Null when caching is disabled.
  std::unique_ptr<ResultCache> cache_;
  SlowQueryLog slow_log_;
  /// Latest upstream health observation (one byte of HealthState),
  /// refreshed once per served batch and stamped into admissions — slow-log
  /// entries carry it without a per-request lock on the health source.
  std::atomic<uint8_t> last_health_{0};
  util::ThreadPool pool_;

  mutable std::mutex mu_;
  std::condition_variable queue_ready_;
  std::deque<Pending> queue_;
  bool stop_ = false;
  bool started_ = false;

  /// Drives pool_.ParallelFor(0, num_threads_, ...) with one WorkerLoop per
  /// iteration; exists so construction returns while workers run.
  std::thread runner_;
};

}  // namespace esd::serve

#endif  // ESD_SERVE_QUERY_SERVICE_H_
