#include "serve/query_service.h"

#include <algorithm>
#include <utility>

#include "fault/failpoint.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace esd::serve {

namespace {

double Micros(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double, std::micro>(d).count();
}

std::unique_ptr<ResultCache> MakeCache(const EsdQueryService::Options& options,
                                       ServiceMetrics& metrics) {
  if (options.cache_bytes == 0) return nullptr;
  ResultCache::Options copts;
  copts.max_bytes = options.cache_bytes;
  copts.max_entries = options.cache_entries;
  copts.shards = options.cache_shards;
  return std::make_unique<ResultCache>(copts, metrics.registry());
}

}  // namespace

EsdQueryService::EsdQueryService(const core::EsdQueryEngine& engine)
    : EsdQueryService(engine, Options{}) {}

EsdQueryService::EsdQueryService(const core::EsdQueryEngine& engine,
                                 const Options& options)
    : engine_(&engine),
      frozen_(dynamic_cast<const core::FrozenEsdIndex*>(&engine)),
      num_threads_(options.num_threads == 0
                       ? util::ThreadPool::DefaultThreadCount()
                       : options.num_threads),
      max_queue_(std::max<size_t>(1, options.max_queue)),
      max_batch_(std::max<size_t>(1, options.max_batch)),
      health_source_(options.health_source),
      metrics_(options.registry),
      cache_(MakeCache(options, metrics_)),  // static engine: epoch 0 forever
      pool_(num_threads_) {
  if (!options.start_paused) Start();
}

EsdQueryService::EsdQueryService(EngineProvider provider,
                                 const Options& options)
    : engine_(nullptr),
      provider_(std::move(provider)),
      frozen_(nullptr),
      num_threads_(options.num_threads == 0
                       ? util::ThreadPool::DefaultThreadCount()
                       : options.num_threads),
      max_queue_(std::max<size_t>(1, options.max_queue)),
      max_batch_(std::max<size_t>(1, options.max_batch)),
      health_source_(options.health_source),
      metrics_(options.registry),
      // No epoch signal in this mode: the provider may swap engines under a
      // constant key, so caching would serve stale answers. Disabled.
      cache_(nullptr),
      pool_(num_threads_) {
  if (!options.start_paused) Start();
}

EsdQueryService::EsdQueryService(EpochEngineProvider provider,
                                 const Options& options)
    : engine_(nullptr),
      epoch_provider_(std::move(provider)),
      frozen_(nullptr),
      num_threads_(options.num_threads == 0
                       ? util::ThreadPool::DefaultThreadCount()
                       : options.num_threads),
      max_queue_(std::max<size_t>(1, options.max_queue)),
      max_batch_(std::max<size_t>(1, options.max_batch)),
      health_source_(options.health_source),
      metrics_(options.registry),
      cache_(MakeCache(options, metrics_)),
      pool_(num_threads_) {
  if (!options.start_paused) Start();
}

EsdQueryService::~EsdQueryService() { Stop(); }

void EsdQueryService::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_ || stop_) return;
    started_ = true;
  }
  runner_ = std::thread([this] {
    pool_.ParallelFor(0, num_threads_, 1, [this](uint64_t) { WorkerLoop(); });
  });
}

std::future<QueryResponse> EsdQueryService::Submit(
    const QueryRequest& request) {
  Pending p;
  p.request = request;
  p.enqueued = Clock::now();
  p.deadline =
      request.deadline_us == 0
          ? Clock::time_point::max()
          : p.enqueued + std::chrono::microseconds(request.deadline_us);
  std::future<QueryResponse> future = p.promise.get_future();

  ResponseStatus bounce = ResponseStatus::kOk;
  // Admission fail point: a fired error action sheds this request exactly
  // like a full queue would (same typed status, same metrics), letting
  // tests and drills exercise the shedding path under any load.
  const bool shed_injected = ESD_FAILPOINT("serve.admission").fired;
  size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      bounce = ResponseStatus::kShutdown;
    } else if (shed_injected || queue_.size() >= max_queue_) {
      bounce = ResponseStatus::kRejectedQueueFull;
    } else {
      queue_.push_back(std::move(p));
    }
    depth = queue_.size();
  }
  metrics_.SetQueueDepth(depth);
  if (bounce != ResponseStatus::kOk) {
    metrics_.RecordRejected();
    QueryResponse response;
    response.status = bounce;
    p.promise.set_value(std::move(response));
  } else {
    metrics_.RecordAccepted();
    queue_ready_.notify_one();
  }
  return future;
}

QueryResponse EsdQueryService::Query(const QueryRequest& request) {
  return Submit(request).get();
}

void EsdQueryService::Stop() {
  std::vector<Pending> orphans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    if (!started_) {
      // Paused service: no worker will ever drain the queue; answer the
      // backlog here instead of leaving promises unsatisfied.
      orphans.assign(std::make_move_iterator(queue_.begin()),
                     std::make_move_iterator(queue_.end()));
      queue_.clear();
    }
  }
  queue_ready_.notify_all();
  for (Pending& p : orphans) {
    QueryResponse response;
    response.status = ResponseStatus::kShutdown;
    p.promise.set_value(std::move(response));
  }
  if (runner_.joinable()) runner_.join();
}

void EsdQueryService::WorkerLoop() {
  while (true) {
    std::vector<Pending> batch;
    size_t depth = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and backlog drained
      const size_t take = std::min(max_batch_, queue_.size());
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      depth = queue_.size();
      // More work may remain for the other workers.
      if (!queue_.empty()) queue_ready_.notify_one();
    }
    metrics_.SetQueueDepth(depth);
    ServeBatch(std::move(batch));
  }
}

obs::HealthState EsdQueryService::Health() const {
  obs::HealthState own = obs::HealthState::kOk;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) own = obs::HealthState::kReadOnly;
  }
  if (health_source_) return obs::WorseHealth(own, health_source_());
  return own;
}

void EsdQueryService::ServeBatch(std::vector<Pending> batch) {
  ESD_TRACE_SPAN("serve.batch");
  // Worker-stall fail point: a delay() spec here holds the whole batch
  // after pickup, the knob the deadline-expiry and queue-full tests turn.
  (void)ESD_FAILPOINT("serve.worker");
  // Pin the serving engine once per batch. In provider mode the shared_ptr
  // keeps this batch's epoch alive even while the writer publishes newer
  // ones (RCU read-side); in static mode the engine outlives the service
  // by contract and pinning is free.
  std::shared_ptr<const core::EsdQueryEngine> pinned;
  const core::EsdQueryEngine* engine = engine_;
  const core::FrozenEsdIndex* frozen = frozen_;
  uint64_t epoch = 0;  // static engines never change: epoch 0 forever
  if (epoch_provider_) {
    PinnedEngine pe = epoch_provider_();
    pinned = std::move(pe.engine);
    epoch = pe.epoch;
    engine = pinned.get();
    frozen = dynamic_cast<const core::FrozenEsdIndex*>(engine);
  } else if (provider_) {
    pinned = provider_();
    engine = pinned.get();
    frozen = dynamic_cast<const core::FrozenEsdIndex*>(engine);
  }
  // Group by (tau, k, pad) (stable: FIFO preserved among identical
  // requests) so the frozen engine's sizes_ binary search runs once per
  // distinct tau in the batch — one ascending-tau sweep — and identical
  // requests land adjacent, where the dedup below answers them once.
  std::stable_sort(batch.begin(), batch.end(),
                   [](const Pending& a, const Pending& b) {
                     if (a.request.tau != b.request.tau)
                       return a.request.tau < b.request.tau;
                     if (a.request.k != b.request.k)
                       return a.request.k < b.request.k;
                     return a.request.pad_with_zero_edges <
                            b.request.pad_with_zero_edges;
                   });
  // Two passes — serve everything (recording per-request and per-batch
  // metrics), then resolve the promises — so by the time any client
  // observes a response, every metric for this batch is already visible.
  std::vector<QueryResponse> responses(batch.size());
  size_t executed = 0;
  size_t distinct_taus = 0;
  size_t slab = core::FrozenEsdIndex::kNoSlab;
  uint32_t slab_tau = 0;
  bool have_slab = false;
  // Distinct-tau accounting is shared by the frozen and degenerate paths:
  // a tau counts once per batch no matter how many requests carry it or
  // which path serves them (the degenerate path used to count every
  // request, overstating slab_searches_saved's baseline).
  uint32_t last_tau = 0;
  bool have_tau = false;
  // Intra-batch dedup: the previous executed request's (tau, k, pad) and
  // its answer (stable pointer into `responses`).
  const QueryRequest* prev_rq = nullptr;
  const core::TopKResult* prev_result = nullptr;
  for (size_t i = 0; i < batch.size(); ++i) {
    const Pending& p = batch[i];
    const Clock::time_point picked_up = Clock::now();
    QueryResponse& response = responses[i];
    response.queue_us = Micros(picked_up - p.enqueued);
    if (picked_up > p.deadline) {
      response.status = ResponseStatus::kDeadlineMissed;
      metrics_.RecordDeadlineMissed(response.queue_us);
    } else {
      const QueryRequest& rq = p.request;
      util::Timer timer;
      if (!have_tau || last_tau != rq.tau) {
        ++distinct_taus;
        last_tau = rq.tau;
        have_tau = true;
      }
      if (prev_rq != nullptr && prev_rq->tau == rq.tau &&
          prev_rq->k == rq.k &&
          prev_rq->pad_with_zero_edges == rq.pad_with_zero_edges) {
        // Identical to the previous request of this batch (same pinned
        // engine): copy its answer.
        response.result = *prev_result;
      } else if (cache_ != nullptr &&
                 cache_->Lookup(epoch, rq.tau, rq.k, rq.pad_with_zero_edges,
                                &response.result)) {
        // Cache hit: answered without touching the engine.
      } else {
        if (frozen != nullptr && rq.k > 0 && rq.tau > 0) {
          if (!have_slab || slab_tau != rq.tau) {
            slab = frozen->FindSlab(rq.tau);
            slab_tau = rq.tau;
            have_slab = true;
          }
          response.result =
              frozen->QueryAtSlab(slab, rq.k, rq.pad_with_zero_edges);
        } else {
          // Degenerate (k or tau 0) or non-frozen engine: per-request path.
          response.result =
              engine->Query(rq.k, rq.tau, rq.pad_with_zero_edges);
        }
        if (cache_ != nullptr) {
          cache_->Insert(epoch, rq.tau, rq.k, rq.pad_with_zero_edges,
                         response.result);
        }
      }
      prev_rq = &rq;
      prev_result = &response.result;
      response.exec_us = timer.ElapsedMicros();
      response.status = ResponseStatus::kOk;
      metrics_.RecordCompleted(response.queue_us, response.exec_us);
      ++executed;
    }
  }
  if (executed > 0) metrics_.RecordBatch(distinct_taus, executed);
  for (size_t i = 0; i < batch.size(); ++i) {
    batch[i].promise.set_value(std::move(responses[i]));
  }
}

}  // namespace esd::serve
