#include "serve/query_service.h"

#include <algorithm>
#include <utility>

#include "fault/failpoint.h"
#include "obs/trace.h"

namespace esd::serve {

namespace {

double Micros(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double, std::micro>(d).count();
}

uint64_t Nanos(std::chrono::steady_clock::time_point t) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          t.time_since_epoch())
          .count());
}

SlowQueryLog::Options SlowLogOptions(const EsdQueryService::Options& o) {
  SlowQueryLog::Options s;
  s.capacity = o.slowlog_capacity;
  s.window = o.slowlog_window;
  s.stripes = o.slowlog_stripes;
  return s;
}

std::unique_ptr<ResultCache> MakeCache(const EsdQueryService::Options& options,
                                       ServiceMetrics& metrics) {
  if (options.cache_bytes == 0) return nullptr;
  ResultCache::Options copts;
  copts.max_bytes = options.cache_bytes;
  copts.max_entries = options.cache_entries;
  copts.shards = options.cache_shards;
  return std::make_unique<ResultCache>(copts, metrics.registry());
}

}  // namespace

EsdQueryService::EsdQueryService(const core::EsdQueryEngine& engine)
    : EsdQueryService(engine, Options{}) {}

EsdQueryService::EsdQueryService(const core::EsdQueryEngine& engine,
                                 const Options& options)
    : engine_(&engine),
      frozen_(dynamic_cast<const core::FrozenEsdIndex*>(&engine)),
      num_threads_(options.num_threads == 0
                       ? util::ThreadPool::DefaultThreadCount()
                       : options.num_threads),
      max_queue_(std::max<size_t>(1, options.max_queue)),
      max_batch_(std::max<size_t>(1, options.max_batch)),
      health_source_(options.health_source),
      metrics_(options.registry),
      cache_(MakeCache(options, metrics_)),  // static engine: epoch 0 forever
      slow_log_(SlowLogOptions(options)),
      pool_(num_threads_, "serve-worker") {
  if (!options.start_paused) Start();
}

EsdQueryService::EsdQueryService(EngineProvider provider,
                                 const Options& options)
    : engine_(nullptr),
      provider_(std::move(provider)),
      frozen_(nullptr),
      num_threads_(options.num_threads == 0
                       ? util::ThreadPool::DefaultThreadCount()
                       : options.num_threads),
      max_queue_(std::max<size_t>(1, options.max_queue)),
      max_batch_(std::max<size_t>(1, options.max_batch)),
      health_source_(options.health_source),
      metrics_(options.registry),
      // No epoch signal in this mode: the provider may swap engines under a
      // constant key, so caching would serve stale answers. Disabled.
      cache_(nullptr),
      slow_log_(SlowLogOptions(options)),
      pool_(num_threads_, "serve-worker") {
  if (!options.start_paused) Start();
}

EsdQueryService::EsdQueryService(EpochEngineProvider provider,
                                 const Options& options)
    : engine_(nullptr),
      epoch_provider_(std::move(provider)),
      frozen_(nullptr),
      num_threads_(options.num_threads == 0
                       ? util::ThreadPool::DefaultThreadCount()
                       : options.num_threads),
      max_queue_(std::max<size_t>(1, options.max_queue)),
      max_batch_(std::max<size_t>(1, options.max_batch)),
      health_source_(options.health_source),
      metrics_(options.registry),
      cache_(MakeCache(options, metrics_)),
      slow_log_(SlowLogOptions(options)),
      pool_(num_threads_, "serve-worker") {
  if (!options.start_paused) Start();
}

EsdQueryService::EsdQueryService(ShardedBackend& backend,
                                 const Options& options)
    : engine_(nullptr),
      sharded_(&backend),
      frozen_(nullptr),
      num_threads_(options.num_threads == 0
                       ? util::ThreadPool::DefaultThreadCount()
                       : options.num_threads),
      max_queue_(std::max<size_t>(1, options.max_queue)),
      max_batch_(std::max<size_t>(1, options.max_batch)),
      health_source_(options.health_source),
      metrics_(options.registry),
      // The backend's monotone Generation() plays the epoch role, so the
      // cache stays sound across shard-level events (epoch publishes,
      // degradations, heals all rotate the generation).
      cache_(MakeCache(options, metrics_)),
      slow_log_(SlowLogOptions(options)),
      pool_(num_threads_, "serve-worker") {
  if (!options.start_paused) Start();
}

EsdQueryService::~EsdQueryService() { Stop(); }

void EsdQueryService::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_ || stop_) return;
    started_ = true;
  }
  runner_ = std::thread([this] {
    // The runner participates in its own ParallelFor, so it is worker 0;
    // the pool's spawned threads are serve-worker-1..N-1.
    obs::Tracer::Global().SetCurrentThreadName("serve-worker-0");
    pool_.ParallelFor(0, num_threads_, 1, [this](uint64_t) { WorkerLoop(); });
  });
}

EsdQueryService::Pending EsdQueryService::MakePending(
    const QueryRequest& request) {
  Pending p;
  p.request = request;
  // Wire-stamped requests anchor at arrival: steady_clock is the clock
  // behind obs::MonotonicNanos, so the nanosecond stamp converts back to a
  // time_point on the same timeline and queue_wait covers the socket and
  // event-loop leg too, not just the admission queue.
  p.enqueued = request.arrival_ns == 0
                   ? Clock::now()
                   : Clock::time_point(
                         std::chrono::nanoseconds(request.arrival_ns));
  p.deadline =
      request.deadline_us == 0
          ? Clock::time_point::max()
          : p.enqueued + std::chrono::microseconds(request.deadline_us);
  // Telemetry context: the id minted here follows the request through
  // batching, cache, slab execution, and back out in the response (and
  // joins its trace spans under one rid).
  p.ctx.request_id = obs::RequestContext::MintId();
  p.ctx.admit_ns = Nanos(p.enqueued);
  p.admit_health =
      static_cast<obs::HealthState>(last_health_.load(std::memory_order_relaxed));
  return p;
}

void EsdQueryService::Resolve(Pending& p, QueryResponse response) {
  if (p.callback) {
    p.callback(std::move(response));
  } else {
    p.promise.set_value(std::move(response));
  }
}

std::future<QueryResponse> EsdQueryService::Submit(
    const QueryRequest& request) {
  Pending p = MakePending(request);
  std::future<QueryResponse> future = p.promise.get_future();
  Enqueue(std::move(p));
  return future;
}

void EsdQueryService::SubmitAsync(const QueryRequest& request,
                                  std::function<void(QueryResponse)> done) {
  Pending p = MakePending(request);
  p.callback = std::move(done);
  Enqueue(std::move(p));
}

void EsdQueryService::Enqueue(Pending p) {
  ResponseStatus bounce = ResponseStatus::kOk;
  // Admission fail point: a fired error action sheds this request exactly
  // like a full queue would (same typed status, same metrics), letting
  // tests and drills exercise the shedding path under any load.
  const bool shed_injected = ESD_FAILPOINT("serve.admission").fired;
  size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      bounce = ResponseStatus::kShutdown;
    } else if (shed_injected || queue_.size() >= max_queue_) {
      bounce = ResponseStatus::kRejectedQueueFull;
    } else {
      queue_.push_back(std::move(p));
    }
    depth = queue_.size();
  }
  metrics_.SetQueueDepth(depth);
  if (bounce != ResponseStatus::kOk) {
    // p was not moved into the queue on this branch; resolve it here, on
    // the caller's thread (SubmitAsync documents this synchronous case).
    metrics_.RecordRejected();
    QueryResponse response;
    response.status = bounce;
    Resolve(p, std::move(response));
  } else {
    metrics_.RecordAccepted();
    queue_ready_.notify_one();
  }
}

QueryResponse EsdQueryService::Query(const QueryRequest& request) {
  return Submit(request).get();
}

void EsdQueryService::Stop() {
  std::vector<Pending> orphans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    if (!started_) {
      // Paused service: no worker will ever drain the queue; answer the
      // backlog here instead of leaving promises unsatisfied.
      orphans.assign(std::make_move_iterator(queue_.begin()),
                     std::make_move_iterator(queue_.end()));
      queue_.clear();
    }
  }
  queue_ready_.notify_all();
  for (Pending& p : orphans) {
    QueryResponse response;
    response.status = ResponseStatus::kShutdown;
    Resolve(p, std::move(response));
  }
  if (runner_.joinable()) runner_.join();
}

void EsdQueryService::WorkerLoop() {
  while (true) {
    std::vector<Pending> batch;
    size_t depth = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and backlog drained
      const size_t take = std::min(max_batch_, queue_.size());
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      depth = queue_.size();
      // More work may remain for the other workers.
      if (!queue_.empty()) queue_ready_.notify_one();
    }
    metrics_.SetQueueDepth(depth);
    ServeBatch(std::move(batch));
  }
}

obs::HealthState EsdQueryService::Health() const {
  obs::HealthState own = obs::HealthState::kOk;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) own = obs::HealthState::kReadOnly;
  }
  if (sharded_ != nullptr) own = obs::WorseHealth(own, sharded_->Health());
  if (health_source_) return obs::WorseHealth(own, health_source_());
  return own;
}

void EsdQueryService::ServeBatch(std::vector<Pending> batch) {
  ESD_TRACE_SPAN("serve.batch");
  // Worker-stall fail point: a delay() spec here holds the whole batch
  // after pickup, the knob the deadline-expiry and queue-full tests turn.
  (void)ESD_FAILPOINT("serve.worker");
  // Attribution epoch boundary: time before this instant is queue_wait,
  // time between it and a request's own turn is batch_formation (their sum
  // is the classic queue_us).
  const uint64_t batch_start_ns = obs::MonotonicNanos();
  // Pin the serving engine once per batch. In provider mode the shared_ptr
  // keeps this batch's epoch alive even while the writer publishes newer
  // ones (RCU read-side); in static mode the engine outlives the service
  // by contract and pinning is free.
  std::shared_ptr<const core::EsdQueryEngine> pinned;
  const core::EsdQueryEngine* engine = engine_;
  const core::FrozenEsdIndex* frozen = frozen_;
  uint64_t epoch = 0;  // static engines never change: epoch 0 forever
  // Sharded mode: the backend's monotone generation is this batch's
  // "epoch" (cache key), and the fleet tally polled here is stamped into
  // every response that doesn't execute (hits, dedups, strict bounces);
  // misses get the fresher per-execute tally.
  ShardCounts batch_shards;
  if (sharded_ != nullptr) {
    epoch = sharded_->Generation();
    batch_shards = sharded_->Counts();
  } else if (epoch_provider_) {
    PinnedEngine pe = epoch_provider_();
    pinned = std::move(pe.engine);
    epoch = pe.epoch;
    engine = pinned.get();
    frozen = dynamic_cast<const core::FrozenEsdIndex*>(engine);
  } else if (provider_) {
    pinned = provider_();
    engine = pinned.get();
    frozen = dynamic_cast<const core::FrozenEsdIndex*>(engine);
  }
  // Per-batch forensic stamps: upstream health is polled here (not per
  // request) and published for future admissions to pick up.
  if (health_source_) {
    last_health_.store(static_cast<uint8_t>(health_source_()),
                       std::memory_order_relaxed);
  }
  const core::ScorerKind scorer =
      sharded_ != nullptr ? sharded_->Scorer() : engine->Scorer();
  // Group by (tau, k, pad) (stable: FIFO preserved among identical
  // requests) so the frozen engine's sizes_ binary search runs once per
  // distinct tau in the batch — one ascending-tau sweep — and identical
  // requests land adjacent, where the dedup below answers them once.
  std::stable_sort(batch.begin(), batch.end(),
                   [](const Pending& a, const Pending& b) {
                     if (a.request.tau != b.request.tau)
                       return a.request.tau < b.request.tau;
                     if (a.request.k != b.request.k)
                       return a.request.k < b.request.k;
                     return a.request.pad_with_zero_edges <
                            b.request.pad_with_zero_edges;
                   });
  // Two passes — serve everything (recording per-request and per-batch
  // metrics), then resolve the promises — so by the time any client
  // observes a response, every metric for this batch is already visible.
  std::vector<QueryResponse> responses(batch.size());
  size_t executed = 0;
  size_t distinct_taus = 0;
  size_t slab = core::FrozenEsdIndex::kNoSlab;
  uint32_t slab_tau = 0;
  bool have_slab = false;
  // Distinct-tau accounting is shared by the frozen and degenerate paths:
  // a tau counts once per batch no matter how many requests carry it or
  // which path serves them (the degenerate path used to count every
  // request, overstating slab_searches_saved's baseline).
  uint32_t last_tau = 0;
  bool have_tau = false;
  // Intra-batch dedup: the previous executed request's (tau, k, pad) and
  // its answer (stable pointer into `responses`).
  const QueryRequest* prev_rq = nullptr;
  const core::TopKResult* prev_result = nullptr;
  obs::Tracer& tracer = obs::Tracer::Global();
  auto record_slow = [&](const Pending& p, const QueryResponse& r,
                         bool missed, uint64_t now_ns) {
    SlowQueryRecord rec;
    rec.request_id = r.ctx.request_id;
    rec.epoch = r.ctx.epoch;
    // Stamped from a timestamp the serving loop already took, so the slow
    // log never reads the clock itself on the hot path.
    rec.recorded_ns = now_ns;
    rec.tau = p.request.tau;
    rec.k = p.request.k;
    rec.pad_with_zero_edges = p.request.pad_with_zero_edges;
    rec.deadline_missed = missed;
    rec.scorer = scorer;
    rec.cache = r.ctx.cache;
    rec.health = p.admit_health;
    rec.shards_ok = r.shards_ok;
    rec.shards_degraded = r.shards_degraded;
    rec.shards_down = r.shards_down;
    rec.queue_us = r.queue_us;
    rec.exec_us = r.exec_us;
    rec.total_us = r.queue_us + r.exec_us;
    for (size_t s = 0; s < obs::kNumStages; ++s) {
      rec.stage_us[s] = static_cast<double>(r.ctx.stage_ns[s]) * 1e-3;
    }
    slow_log_.Record(std::move(rec));
  };
  for (size_t i = 0; i < batch.size(); ++i) {
    const Pending& p = batch[i];
    const Clock::time_point picked_up = Clock::now();
    const uint64_t t0 = Nanos(picked_up);
    QueryResponse& response = responses[i];
    response.ctx = p.ctx;
    obs::RequestContext& ctx = response.ctx;
    ctx.epoch = epoch;
    if (sharded_ != nullptr) {
      response.shards_ok = batch_shards.ok;
      response.shards_degraded = batch_shards.degraded;
      response.shards_down = batch_shards.down;
    }
    response.queue_us = Micros(picked_up - p.enqueued);
    // queue_wait ends where the batch began; everything since is
    // batch_formation (sort, engine pin, earlier batchmates). Together
    // they are exactly queue_us.
    ctx.Charge(obs::Stage::kQueueWait, batch_start_ns > ctx.admit_ns
                                           ? batch_start_ns - ctx.admit_ns
                                           : 0);
    ctx.Charge(obs::Stage::kBatchFormation,
               t0 > batch_start_ns ? t0 - batch_start_ns : 0);
    if (picked_up > p.deadline) {
      response.status = ResponseStatus::kDeadlineMissed;
      metrics_.RecordDeadlineMissed(response.queue_us);
      // Missed deadlines are forensic gold: they enter the slow log with
      // their queue-side attribution even though the engine never ran.
      record_slow(p, response, /*missed=*/true, t0);
    } else if (sharded_ != nullptr && p.request.strict &&
               !batch_shards.all_ok()) {
      // Strict partial-result policy: the caller asked to fail fast rather
      // than accept a narrowed answer, and the fleet is not whole. Decided
      // before the cache so a stale full answer can never mask a sick
      // shard — and without touching the backend, so it stays instant no
      // matter what the sick shard is doing (heal probe, stall, recovery).
      response.status = ResponseStatus::kShardsUnavailable;
      metrics_.RecordShardsUnavailable(response.queue_us);
      record_slow(p, response, /*missed=*/false, t0);
    } else {
      const QueryRequest& rq = p.request;
      if (!have_tau || last_tau != rq.tau) {
        ++distinct_taus;
        last_tau = rq.tau;
        have_tau = true;
      }
      // Stage boundaries within this request's execution window:
      // t0..t1 cache_lookup, t1..t2 slab_scan, t2..t3 padding_scan,
      // t3..t4 merge.
      uint64_t t1 = t0;
      uint64_t t2 = t0;
      uint64_t t3 = t0;
      if (prev_rq != nullptr && prev_rq->tau == rq.tau &&
          prev_rq->k == rq.k &&
          prev_rq->pad_with_zero_edges == rq.pad_with_zero_edges) {
        // Identical to the previous request of this batch (same pinned
        // engine): copy its answer (the copy itself is merge work).
        t1 = t2 = t3 = obs::MonotonicNanos();
        ctx.cache = obs::CacheOutcome::kDedup;
        response.result = *prev_result;
      } else if (cache_ != nullptr &&
                 cache_->Lookup(epoch, rq.tau, rq.k, rq.pad_with_zero_edges,
                                &response.result)) {
        // Cache hit: answered without touching the engine.
        t1 = t2 = t3 = obs::MonotonicNanos();
        ctx.cache = obs::CacheOutcome::kHit;
      } else {
        ctx.cache = cache_ != nullptr ? obs::CacheOutcome::kMiss
                                      : obs::CacheOutcome::kNone;
        // Without a cache there was no lookup to time: cache_lookup is
        // identically zero and the clock read would only measure itself.
        t1 = cache_ != nullptr ? obs::MonotonicNanos() : t0;
        if (sharded_ != nullptr) {
          // Scatter-gather miss path. The whole merge (per-shard slab
          // cursors + k-way heap + padding) runs inside the backend and is
          // attributed to slab_scan; the per-shard split lives in the
          // esd_shard_* metrics rather than the six-stage enum.
          ShardedOutcome so = sharded_->Execute(
              rq.k, rq.tau, rq.pad_with_zero_edges, p.deadline);
          t2 = t3 = obs::MonotonicNanos();
          response.shards_ok = so.shards.ok;
          response.shards_degraded = so.shards.degraded;
          response.shards_down = so.shards.down;
          if (so.deadline_expired) {
            response.status = ResponseStatus::kDeadlineMissed;
            metrics_.RecordDeadlineMissed(response.queue_us);
            record_slow(p, response, /*missed=*/true, t2);
            continue;  // never dedup-copied, never cached
          }
          response.result = std::move(so.result);
        } else if (frozen != nullptr && rq.k > 0 && rq.tau > 0) {
          if (!have_slab || slab_tau != rq.tau) {
            slab = frozen->FindSlab(rq.tau);
            slab_tau = rq.tau;
            have_slab = true;
          }
          // Scan and padding run under separate clocks (identical answer
          // to QueryAtSlab(slab, k, pad)): the skew sweep showed deep-k
          // padding dominating misses, and this is where that shows up.
          response.result = frozen->QueryAtSlab(slab, rq.k, false);
          t2 = obs::MonotonicNanos();
          t3 = t2;
          if (rq.pad_with_zero_edges) {
            frozen->PadQueryResult(slab, rq.k, &response.result);
            t3 = obs::MonotonicNanos();
          }
        } else {
          // Degenerate (k or tau 0) or non-frozen engine: per-request
          // path, attributed wholly to slab_scan.
          response.result =
              engine->Query(rq.k, rq.tau, rq.pad_with_zero_edges);
          t2 = t3 = obs::MonotonicNanos();
        }
        if (cache_ != nullptr) {
          cache_->Insert(epoch, rq.tau, rq.k, rq.pad_with_zero_edges,
                         response.result);
        }
      }
      prev_rq = &rq;
      prev_result = &response.result;
      const uint64_t t4 = obs::MonotonicNanos();
      ctx.Charge(obs::Stage::kCacheLookup, t1 - t0);
      ctx.Charge(obs::Stage::kSlabScan, t2 - t1);
      ctx.Charge(obs::Stage::kPaddingScan, t3 - t2);
      ctx.Charge(obs::Stage::kMerge, t4 - t3);
      response.exec_us = static_cast<double>(t4 - t0) * 1e-3;
      response.status = ResponseStatus::kOk;
      metrics_.RecordCompleted(response.queue_us, response.exec_us);
      metrics_.RecordStages(ctx);
      ++executed;
      record_slow(p, response, /*missed=*/false, t4);
      if (tracer.enabled()) {
        // One span per nonzero stage, all joined by args.rid — a filtered
        // Perfetto view reassembles this request's admission -> batch ->
        // slab timeline even though it shared a batch and a worker track.
        const uint64_t rid = ctx.request_id;
        tracer.RecordComplete(obs::StageSpanName(obs::Stage::kQueueWait),
                              ctx.admit_ns,
                              ctx.StageNanos(obs::Stage::kQueueWait), rid);
        tracer.RecordComplete(
            obs::StageSpanName(obs::Stage::kBatchFormation), batch_start_ns,
            ctx.StageNanos(obs::Stage::kBatchFormation), rid);
        if (t1 > t0) {
          tracer.RecordComplete(obs::StageSpanName(obs::Stage::kCacheLookup),
                                t0, t1 - t0, rid);
        }
        if (t2 > t1) {
          tracer.RecordComplete(obs::StageSpanName(obs::Stage::kSlabScan),
                                t1, t2 - t1, rid);
        }
        if (t3 > t2) {
          tracer.RecordComplete(
              obs::StageSpanName(obs::Stage::kPaddingScan), t2, t3 - t2, rid);
        }
        if (t4 > t3) {
          tracer.RecordComplete(obs::StageSpanName(obs::Stage::kMerge), t3,
                                t4 - t3, rid);
        }
      }
    }
  }
  if (executed > 0) metrics_.RecordBatch(distinct_taus, executed);
  for (size_t i = 0; i < batch.size(); ++i) {
    Resolve(batch[i], std::move(responses[i]));
  }
}

}  // namespace esd::serve
