#ifndef ESD_SHARD_SHARDED_ENGINE_H_
#define ESD_SHARD_SHARDED_ENGINE_H_

/// Sharded serving engine with per-shard fault domains.
///
/// The fleet hash-partitions edge *ownership* across N shards
/// (partition.h), and each shard runs its own complete fault domain: a
/// private LiveEsdIndex with its own WAL directory, snapshot, epoch
/// lifecycle, retry/breaker posture, and fail-point site names
/// ("wal.append.shard2"). A torn WAL, ENOSPC, or corrupt snapshot
/// quarantines exactly one shard; the other N-1 keep serving.
///
/// Write path — broadcast: every shard's writer maintains the FULL graph
/// (ESD scores depend on whole ego networks, so a partial graph would
/// score its own edges wrong; replicating write work is the price of
/// serving exact scores from a partition). An engine-level in-memory
/// journal with per-shard applied watermarks lets a shard that rejected
/// writes while read-only catch back up through its normal typed apply
/// path once it heals; a shard that falls further behind than the journal
/// bound is quarantined ("resync required").
///
/// Read path — partitioned: each shard's published epochs are masked to
/// its owned edges (LiveOptions::serve_filter -> core::FilterFrozenIndex),
/// so serving memory is split ~1/N per shard while the edge-id slot layout
/// stays identical across shards. Execute() scatters one slab cursor per
/// healthy shard and k-way merges heads in canonical (score desc, edge id
/// asc) order, never draining a shard past its contribution — the
/// early-exit bound: at most k consumed entries plus one peeked head per
/// shard. Because a shard's filtered image reports exactly the global
/// score for each owned edge, the merge over all-healthy shards
/// reproduces the unsharded canonical answer bit for bit.
///
/// Degradation policy (the classification Counts()/Execute() stamp):
///   ok        — up, health kOk, caught up to the fleet write watermark;
///               included in the merge.
///   degraded  — alive but excluded: read-only (WAL dead), refreeze
///               breaker open, or behind the write watermark. Its data
///               may be stale, so partial answers skip it rather than
///               serve wrong freshness as truth.
///   down      — quarantined at open, catch-up overflow, or tripped by
///               the query stall breaker (consecutive slow shard probes
///               open it; it cools down and re-closes lazily).
/// Queries never block on the write path: classification reads atomics,
/// and a shard mid-heal-probe is simply counted degraded this round.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/frozen_index.h"
#include "core/scorer.h"
#include "fault/retry.h"
#include "graph/graph.h"
#include "live/live_index.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "serve/sharded_backend.h"

namespace esd::shard {

/// Configuration of a sharded engine. Per-shard LiveOptions are derived
/// from this: shard i lives in `<dir>/shard-<i>/` with fail-point suffix
/// ".shard<i>".
struct ShardedOptions {
  uint32_t num_shards = 4;  ///< clamped to >= 1
  /// Fleet root directory (live mode). Empty selects static mode: shards
  /// are filtered frozen images of one bulk build, writes rejected typed.
  std::string dir;
  core::ScorerKind scorer = core::ScorerKind::kEsd;
  uint64_t refreeze_every = 256;
  bool fsync_on_batch = true;
  graph::VertexId max_vertex_id = (1u << 22);
  unsigned pool_threads = 2;  ///< per shard (refreeze pool)
  obs::MetricRegistry* registry = nullptr;  ///< null = Global()
  fault::RetryPolicy wal_retry;
  std::chrono::milliseconds heal_retry_interval{50};
  int refreeze_breaker_threshold = 3;
  std::chrono::milliseconds refreeze_breaker_cooldown{100};
  /// Query stall breaker: a shard whose scatter probe takes longer than
  /// `stall_threshold` on `stall_breaker_trips` consecutive queries is
  /// counted down (excluded, fail-point not evaluated) until the cooldown
  /// elapses. This is what keeps one stalled shard from dragging every
  /// query to the deadline.
  std::chrono::microseconds stall_threshold{100000};
  int stall_breaker_trips = 2;
  std::chrono::milliseconds stall_breaker_cooldown{500};
  /// Catch-up journal bound: a shard more than this many updates behind
  /// the fleet watermark is quarantined instead of buffered forever.
  size_t max_catchup_lag = 65536;
};

/// Introspection snapshot of one shard (the STATS / chaos-test view).
struct ShardStatus {
  uint32_t id = 0;
  std::string state;        ///< "ok" | "degraded" | "down"
  std::string down_reason;  ///< non-empty when down (not for stall trips)
  obs::HealthState health = obs::HealthState::kOk;
  uint64_t epoch = 0;            ///< published epoch id (live mode)
  uint64_t wal_applied_seq = 0;  ///< shard WAL watermark (live mode)
  uint64_t journal_applied = 0;  ///< fleet-journal updates applied
  uint64_t journal_lag = 0;      ///< fleet watermark - journal_applied
  uint64_t queries = 0;          ///< merges this shard contributed to
  uint64_t drained = 0;          ///< slab entries drained from this shard
  uint64_t stall_trips = 0;
  uint64_t replayed = 0;  ///< journal updates replayed while catching up
};

class ShardedQueryEngine final : public serve::ShardedBackend {
 public:
  /// Live mode: opens (and recovers) one LiveEsdIndex per shard under
  /// `options.dir`. A shard whose open fails — torn WAL beyond repair,
  /// corrupt snapshot, filesystem error — is quarantined, not fatal; the
  /// engine opens as long as at least one shard does (*error set and null
  /// returned only when every shard fails). Shards that recovered to an
  /// older WAL watermark than the fleet's newest are quarantined as stale
  /// ("resync required") so the merge never mixes recovery torn-points.
  static std::unique_ptr<ShardedQueryEngine> Open(
      const graph::Graph& bootstrap, const ShardedOptions& options,
      std::string* error);

  /// Static mode: one bulk build of `g`, filtered per shard. No WAL, no
  /// journal; writes return kDegraded typed. (Benchmarks and the frozen
  /// server path use this to exercise the scatter-gather merge alone.)
  static std::unique_ptr<ShardedQueryEngine> BuildStatic(
      const graph::Graph& g, const ShardedOptions& options);

  ~ShardedQueryEngine() override;

  // ---- serve::ShardedBackend ----------------------------------------------
  uint64_t Generation() override;
  serve::ShardCounts Counts() override;
  serve::ShardedOutcome Execute(
      uint32_t k, uint32_t tau, bool pad_with_zero_edges,
      std::chrono::steady_clock::time_point deadline) override;
  obs::HealthState Health() const override;
  core::ScorerKind Scorer() const override { return options_.scorer; }

  // ---- Write path (live mode) ---------------------------------------------

  /// Broadcasts the batch: journal first, then every up shard catches up
  /// through its own typed apply path (WAL append + fsync + maintenance).
  /// kOk when at least one shard made the batch durable (the message
  /// notes laggards); kDegraded when no shard could accept it (it stays
  /// journaled for replay after a heal); kBounds rejects the whole batch
  /// before any shard is touched. Static engines reject kDegraded.
  live::ApplyResult ApplyBatchTyped(std::span<const live::LiveUpdate> updates);

  /// Drives heal probes + journal replay on shards that are behind,
  /// without submitting new writes (chaos tests and background pokes).
  void CatchUp();

  /// Checkpoints every up shard; false (with *error naming the shards)
  /// if any failed. Down shards are skipped, not failures.
  bool Checkpoint(std::string* error);

  /// Synchronously publishes fresh epochs on every up shard, so all
  /// serve filters reflect the same write watermark — the quiesced state
  /// exact-parity tests compare against. True when all up shards froze.
  bool RefreezeAll();

  // ---- Introspection ------------------------------------------------------
  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }
  bool live_mode() const { return live_mode_; }
  std::vector<ShardStatus> Status() const;

  /// Sum of the currently published per-shard serving images — the
  /// partitioned counterpart of one engine's MemoryBytes().
  uint64_t MemoryBytes() const;

  /// Pushes esd_shard_* gauges into the registry (counters are maintained
  /// at event time).
  void ExportMetrics() const;

 private:
  enum class ShardClass : uint8_t { kOk = 0, kDegraded = 1, kDown = 2 };

  struct Shard {
    uint32_t id = 0;
    std::string query_site;  ///< "shard.query.<id>"
    std::unique_ptr<live::LiveEsdIndex> live;          // live mode
    std::shared_ptr<const core::FrozenEsdIndex> frozen;  // static mode

    std::atomic<bool> down{false};
    std::string down_reason;  // guarded by state_mu_

    /// Fleet-journal updates applied to this shard (not WAL seq).
    std::atomic<uint64_t> applied{0};

    // Stall breaker (guarded by state_mu_).
    int consecutive_slow = 0;
    bool tripped = false;
    std::chrono::steady_clock::time_point tripped_until{};

    std::atomic<uint64_t> queries{0};
    std::atomic<uint64_t> drained{0};
    std::atomic<uint64_t> stall_trips{0};
    std::atomic<uint64_t> replayed{0};
  };

  explicit ShardedQueryEngine(const ShardedOptions& options, bool live_mode);

  ShardClass Classify(const Shard& s,
                      std::chrono::steady_clock::time_point now) const;
  /// Breaker bookkeeping after one scatter probe; true if the shard may
  /// contribute this round (a probe error excludes it immediately).
  bool NoteProbe(Shard& s, std::chrono::nanoseconds elapsed, bool error);
  void MarkDown(Shard& s, std::string reason);

  /// Replays journal into one shard until caught up (write_mu_ held).
  /// Updates below `fresh_base` — the fleet watermark before the current
  /// broadcast, i.e. work the shard missed earlier — count as replayed.
  void CatchUpShardLocked(Shard& s, uint64_t fresh_base);
  void CatchUpAllLocked(uint64_t fresh_base);  // write_mu_ held
  void TrimJournalLocked();                    // write_mu_ held

  ShardedOptions options_;
  const bool live_mode_;
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Serializes the broadcast write path. Never taken by Execute/Counts/
  /// Generation — the reader side runs on atomics and state_mu_ only.
  mutable std::mutex write_mu_;
  std::deque<live::LiveUpdate> journal_;  // guarded by write_mu_
  uint64_t journal_base_ = 0;             // guarded by write_mu_
  std::atomic<uint64_t> journal_end_{0};  ///< fleet write watermark

  /// Guards down_reason and the stall-breaker fields; held briefly.
  mutable std::mutex state_mu_;

  /// Generation fingerprint: bumps the monotone counter whenever the
  /// (epoch vector, classification vector) image changes.
  mutable std::mutex gen_mu_;
  uint64_t generation_ = 1;   // guarded by gen_mu_
  uint64_t last_fp_ = 0;      // guarded by gen_mu_

  obs::MetricRegistry& reg_;
  obs::Counter& stall_trips_total_;
  obs::Counter& quarantined_total_;
  obs::Counter& replayed_total_;
};

}  // namespace esd::shard

#endif  // ESD_SHARD_SHARDED_ENGINE_H_
