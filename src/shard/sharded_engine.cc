#include "shard/sharded_engine.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "core/index_builder.h"
#include "fault/failpoint.h"
#include "shard/partition.h"

namespace esd::shard {

namespace {

using Clock = std::chrono::steady_clock;

/// mkdir -p for the two-level fleet layout (<dir>, <dir>/shard-<i>).
bool EnsureDir(const std::string& path, std::string* error) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) return true;
  *error = path + ": " + std::strerror(errno);
  return false;
}

const char* ClassName(int cls) {
  switch (cls) {
    case 0: return "ok";
    case 1: return "degraded";
    default: return "down";
  }
}

}  // namespace

ShardedQueryEngine::ShardedQueryEngine(const ShardedOptions& options,
                                       bool live_mode)
    : options_(options),
      live_mode_(live_mode),
      reg_(options.registry != nullptr ? *options.registry
                                       : obs::MetricRegistry::Global()),
      stall_trips_total_(reg_.GetCounter(
          "esd_shard_stall_trips_total",
          "Query stall breaker openings across all shards")),
      quarantined_total_(reg_.GetCounter(
          "esd_shard_quarantined_total",
          "Shards marked down (open failure, stale recovery, overflow)")),
      replayed_total_(reg_.GetCounter(
          "esd_shard_replayed_total",
          "Journal updates replayed into healing shards")) {
  options_.num_shards = std::max<uint32_t>(1, options_.num_shards);
  shards_.reserve(options_.num_shards);
  for (uint32_t i = 0; i < options_.num_shards; ++i) {
    auto s = std::make_unique<Shard>();
    s->id = i;
    s->query_site = "shard.query." + std::to_string(i);
    shards_.push_back(std::move(s));
  }
}

ShardedQueryEngine::~ShardedQueryEngine() = default;

std::unique_ptr<ShardedQueryEngine> ShardedQueryEngine::Open(
    const graph::Graph& bootstrap, const ShardedOptions& options,
    std::string* error) {
  std::unique_ptr<ShardedQueryEngine> engine(
      new ShardedQueryEngine(options, /*live_mode=*/true));
  const uint32_t n = engine->num_shards();
  std::string first_error;
  std::string dir_error;
  const bool root_ok = EnsureDir(options.dir, &dir_error);
  for (auto& sp : engine->shards_) {
    Shard& s = *sp;
    const std::string shard_dir =
        options.dir + "/shard-" + std::to_string(s.id);
    std::string err;
    if (!root_ok) {
      err = dir_error;
    } else if (EnsureDir(shard_dir, &err)) {
      live::LiveOptions lo;
      lo.wal_path = shard_dir + "/wal.log";
      lo.snapshot_path = shard_dir + "/snapshot.bin";
      lo.scorer = options.scorer;
      lo.refreeze_every = options.refreeze_every;
      lo.fsync_on_batch = options.fsync_on_batch;
      lo.max_vertex_id = options.max_vertex_id;
      lo.pool_threads = options.pool_threads;
      lo.registry = options.registry;
      lo.wal_retry = options.wal_retry;
      lo.heal_retry_interval = options.heal_retry_interval;
      lo.refreeze_breaker_threshold = options.refreeze_breaker_threshold;
      lo.refreeze_breaker_cooldown = options.refreeze_breaker_cooldown;
      lo.serve_filter = OwnsFilter(s.id, n);
      lo.fault_site_suffix = ".shard" + std::to_string(s.id);
      s.live = live::LiveEsdIndex::Open(bootstrap, lo, &err);
    }
    if (s.live == nullptr) {
      if (first_error.empty()) first_error = err;
      engine->MarkDown(s, "open failed: " + err);
    }
  }

  // Quarantine shards that recovered to an older durable watermark than
  // the fleet's newest: their serve filters would answer from a torn past.
  uint64_t fleet_seq = 0;
  for (const auto& sp : engine->shards_) {
    if (sp->live != nullptr && !sp->down.load(std::memory_order_relaxed)) {
      fleet_seq = std::max(fleet_seq, sp->live->Stats().applied_seq);
    }
  }
  uint32_t up = 0;
  for (auto& sp : engine->shards_) {
    Shard& s = *sp;
    if (s.live == nullptr || s.down.load(std::memory_order_relaxed)) continue;
    const uint64_t seq = s.live->Stats().applied_seq;
    if (seq < fleet_seq) {
      engine->MarkDown(s, "stale after recovery (applied_seq " +
                              std::to_string(seq) + " < fleet " +
                              std::to_string(fleet_seq) +
                              "); resync required");
    } else {
      ++up;
    }
  }
  if (up == 0) {
    if (error != nullptr) {
      *error = "all " + std::to_string(n) +
               " shards failed to open: " + first_error;
    }
    return nullptr;
  }
  return engine;
}

std::unique_ptr<ShardedQueryEngine> ShardedQueryEngine::BuildStatic(
    const graph::Graph& g, const ShardedOptions& options) {
  std::unique_ptr<ShardedQueryEngine> engine(
      new ShardedQueryEngine(options, /*live_mode=*/false));
  const uint32_t n = engine->num_shards();
  const core::FrozenEsdIndex full =
      core::BuildFrozenIndex(g, core::ScorerForKind(options.scorer));
  for (auto& sp : engine->shards_) {
    sp->frozen = std::make_shared<const core::FrozenEsdIndex>(
        core::FilterFrozenIndex(full, OwnsFilter(sp->id, n)));
  }
  return engine;
}

// ---- Classification --------------------------------------------------------

ShardedQueryEngine::ShardClass ShardedQueryEngine::Classify(
    const Shard& s, Clock::time_point now) const {
  if (s.down.load(std::memory_order_acquire)) return ShardClass::kDown;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (s.tripped) {
      if (now < s.tripped_until) return ShardClass::kDown;
      // Cooldown elapsed: close the breaker lazily and fall through.
      Shard& mut = const_cast<Shard&>(s);
      mut.tripped = false;
      mut.consecutive_slow = 0;
    }
  }
  if (s.live != nullptr) {
    if (s.live->Health() != obs::HealthState::kOk) return ShardClass::kDegraded;
    if (s.applied.load(std::memory_order_acquire) !=
        journal_end_.load(std::memory_order_acquire)) {
      return ShardClass::kDegraded;
    }
  }
  return ShardClass::kOk;
}

serve::ShardCounts ShardedQueryEngine::Counts() {
  const Clock::time_point now = Clock::now();
  serve::ShardCounts c;
  for (const auto& sp : shards_) {
    switch (Classify(*sp, now)) {
      case ShardClass::kOk: ++c.ok; break;
      case ShardClass::kDegraded: ++c.degraded; break;
      case ShardClass::kDown: ++c.down; break;
    }
  }
  return c;
}

obs::HealthState ShardedQueryEngine::Health() const {
  const Clock::time_point now = Clock::now();
  for (const auto& sp : shards_) {
    if (Classify(*sp, now) != ShardClass::kOk) {
      return obs::HealthState::kDegraded;
    }
  }
  return obs::HealthState::kOk;
}

uint64_t ShardedQueryEngine::Generation() {
  const Clock::time_point now = Clock::now();
  uint64_t fp = 14695981039346656037ull;  // FNV offset basis
  auto mix = [&fp](uint64_t v) {
    fp ^= v;
    fp *= 1099511628211ull;  // FNV prime
  };
  for (const auto& sp : shards_) {
    mix(static_cast<uint64_t>(Classify(*sp, now)));
    mix(sp->applied.load(std::memory_order_acquire));
    if (sp->live != nullptr) mix(sp->live->CurrentSnapshot()->epoch);
  }
  std::lock_guard<std::mutex> lock(gen_mu_);
  if (fp != last_fp_) {
    last_fp_ = fp;
    ++generation_;
  }
  return generation_;
}

// ---- Scatter-gather --------------------------------------------------------

bool ShardedQueryEngine::NoteProbe(Shard& s, std::chrono::nanoseconds elapsed,
                                   bool error) {
  std::lock_guard<std::mutex> lock(state_mu_);
  auto trip = [&] {
    s.tripped = true;
    s.tripped_until = Clock::now() + options_.stall_breaker_cooldown;
    s.consecutive_slow = 0;
    s.stall_trips.fetch_add(1, std::memory_order_relaxed);
    stall_trips_total_.Inc();
  };
  if (error) {
    trip();
    return false;
  }
  if (elapsed >= options_.stall_threshold) {
    if (++s.consecutive_slow >= options_.stall_breaker_trips) trip();
    // A merely slow shard still contributes this round — the cost is
    // already paid; the breaker protects the *next* queries.
    return true;
  }
  s.consecutive_slow = 0;
  return true;
}

serve::ShardedOutcome ShardedQueryEngine::Execute(
    uint32_t k, uint32_t tau, bool pad_with_zero_edges,
    Clock::time_point deadline) {
  const Clock::time_point now = Clock::now();
  serve::ShardedOutcome out;

  struct Pin {
    Shard* shard = nullptr;
    /// Keeps the live shard's epoch alive for the whole merge.
    std::shared_ptr<const live::EpochSnapshot> snap;
    const core::FrozenEsdIndex* frozen = nullptr;
    std::span<const core::FrozenEsdIndex::Entry> slab;
    size_t pos = 0;
    bool peeked = false;
  };
  std::vector<Pin> pins;
  pins.reserve(shards_.size());
  for (const auto& sp : shards_) {
    switch (Classify(*sp, now)) {
      case ShardClass::kDegraded:
        ++out.shards.degraded;
        continue;
      case ShardClass::kDown:
        ++out.shards.down;
        continue;
      case ShardClass::kOk:
        break;
    }
    Pin p;
    p.shard = sp.get();
    if (sp->live != nullptr) {
      p.snap = sp->live->CurrentSnapshot();
      p.frozen = &p.snap->index;
    } else {
      p.frozen = sp->frozen.get();
    }
    pins.push_back(std::move(p));
  }

  // Scatter probes: the injectable per-shard query edge. A stalled or
  // erroring shard is detected here, charged to its breaker, and (on
  // error) dropped from this round's merge.
  auto& failpoints = fault::FailPointRegistry::Global();
  for (size_t i = 0; i < pins.size();) {
    const Clock::time_point t0 = Clock::now();
    const fault::FaultHit hit = failpoints.Evaluate(pins[i].shard->query_site);
    const Clock::time_point t1 = Clock::now();
    const bool usable = NoteProbe(*pins[i].shard, t1 - t0, hit.fired);
    if (t1 > deadline) {
      out.deadline_expired = true;
      out.shards.ok = static_cast<uint16_t>(pins.size());
      return out;
    }
    if (!usable) {
      ++out.shards.down;
      pins.erase(pins.begin() + static_cast<ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  out.shards.ok = static_cast<uint16_t>(pins.size());
  if (pins.empty()) return out;

  // One slab binary search per shard, then the k-way head merge in the
  // canonical (score desc, edge id asc) order. Slot layouts are identical
  // across shards, so edge-id ties order exactly as the unsharded slab.
  for (Pin& p : pins) {
    const size_t slab = tau == 0 ? core::FrozenEsdIndex::kNoSlab
                                 : p.frozen->FindSlab(tau);
    if (slab != core::FrozenEsdIndex::kNoSlab) p.slab = p.frozen->ListAt(slab);
    p.shard->queries.fetch_add(1, std::memory_order_relaxed);
  }
  std::vector<graph::EdgeId> reported;
  reported.reserve(k);
  out.result.reserve(k);
  uint64_t steps = 0;
  while (out.result.size() < k) {
    int best = -1;
    for (size_t i = 0; i < pins.size(); ++i) {
      Pin& p = pins[i];
      if (p.pos >= p.slab.size()) continue;
      p.peeked = true;
      if (best < 0) {
        best = static_cast<int>(i);
        continue;
      }
      const core::FrozenEsdIndex::Entry& e = p.slab[p.pos];
      const core::FrozenEsdIndex::Entry& b =
          pins[static_cast<size_t>(best)].slab[pins[static_cast<size_t>(best)].pos];
      if (e.score > b.score || (e.score == b.score && e.e < b.e)) {
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;
    Pin& p = pins[static_cast<size_t>(best)];
    const core::FrozenEsdIndex::Entry e = p.slab[p.pos++];
    // The consumer's NEXT head has not been examined yet — if the merge
    // stops here it must not count as drained, or the early-exit bound
    // k + (#shards - 1) overshoots by one.
    p.peeked = false;
    out.result.push_back({p.frozen->EdgeAt(e.e), e.score});
    reported.push_back(e.e);
    if ((++steps & 1023u) == 0 && Clock::now() > deadline) {
      out.deadline_expired = true;
      return out;
    }
  }

  // Early-exit observable: consumed entries plus peeked-but-unconsumed
  // heads — at most k + (#shards - 1) total.
  for (const Pin& p : pins) {
    const uint64_t drained =
        p.pos + ((p.peeked && p.pos < p.slab.size()) ? 1 : 0);
    out.drained_entries += drained;
    p.shard->drained.fetch_add(drained, std::memory_order_relaxed);
  }

  // Zero-padding in ascending edge-id order across the union of owned
  // live edges. Each edge has exactly one owner, so scanning the shards'
  // masked live bitmaps never double-reports.
  if (pad_with_zero_edges && out.result.size() < k) {
    std::sort(reported.begin(), reported.end());
    size_t slots = 0;
    for (const Pin& p : pins) slots = std::max(slots, p.frozen->EdgeSlotCount());
    for (graph::EdgeId e = 0; e < slots && out.result.size() < k; ++e) {
      if ((e & 4095u) == 0 && Clock::now() > deadline) {
        out.deadline_expired = true;
        return out;
      }
      if (std::binary_search(reported.begin(), reported.end(), e)) continue;
      for (const Pin& p : pins) {
        if (p.frozen->IsLive(e)) {
          out.result.push_back({p.frozen->EdgeAt(e), 0});
          break;
        }
      }
    }
  }
  return out;
}

// ---- Write path ------------------------------------------------------------

void ShardedQueryEngine::MarkDown(Shard& s, std::string reason) {
  bool was_down = s.down.exchange(true, std::memory_order_acq_rel);
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    s.down_reason = std::move(reason);
  }
  if (!was_down) quarantined_total_.Inc();
}

void ShardedQueryEngine::CatchUpShardLocked(Shard& s, uint64_t fresh_base) {
  if (s.down.load(std::memory_order_relaxed) || s.live == nullptr) return;
  const uint64_t end = journal_base_ + journal_.size();
  std::vector<live::LiveUpdate> scratch;
  while (s.applied.load(std::memory_order_relaxed) < end) {
    const uint64_t before = s.applied.load(std::memory_order_relaxed);
    const size_t off = static_cast<size_t>(before - journal_base_);
    const size_t n = std::min<size_t>(journal_.size() - off, 512);
    scratch.assign(journal_.begin() + static_cast<ptrdiff_t>(off),
                   journal_.begin() + static_cast<ptrdiff_t>(off + n));
    const live::ApplyResult r = s.live->ApplyBatchTyped(scratch);
    s.applied.fetch_add(r.processed, std::memory_order_acq_rel);
    // Only the portion below fresh_base is replay — updates the shard
    // missed while sick. The fresh tail of the current broadcast is
    // ordinary application, even on a shard that just healed.
    const uint64_t after = before + r.processed;
    const uint64_t replay =
        std::min(after, fresh_base) - std::min(before, fresh_base);
    if (replay > 0) {
      s.replayed.fetch_add(replay, std::memory_order_relaxed);
      replayed_total_.Inc(replay);
    }
    if (r.status != live::ApplyStatus::kOk) break;
  }
  if (end - s.applied.load(std::memory_order_relaxed) >
      options_.max_catchup_lag) {
    MarkDown(s, "catch-up journal overflow (lag > " +
                    std::to_string(options_.max_catchup_lag) +
                    "); resync required");
  }
}

void ShardedQueryEngine::CatchUpAllLocked(uint64_t fresh_base) {
  for (auto& sp : shards_) CatchUpShardLocked(*sp, fresh_base);
}

void ShardedQueryEngine::TrimJournalLocked() {
  uint64_t min_applied = journal_base_ + journal_.size();
  bool any_up = false;
  for (const auto& sp : shards_) {
    if (sp->down.load(std::memory_order_relaxed) || sp->live == nullptr) {
      continue;
    }
    any_up = true;
    min_applied = std::min(min_applied,
                           sp->applied.load(std::memory_order_relaxed));
  }
  const uint64_t trim_to = any_up ? min_applied : journal_base_ + journal_.size();
  while (journal_base_ < trim_to && !journal_.empty()) {
    journal_.pop_front();
    ++journal_base_;
  }
}

live::ApplyResult ShardedQueryEngine::ApplyBatchTyped(
    std::span<const live::LiveUpdate> updates) {
  live::ApplyResult r;
  if (!live_mode_) {
    r.status = live::ApplyStatus::kDegraded;
    r.message = "static sharded engine is read-only";
    return r;
  }
  std::lock_guard<std::mutex> lock(write_mu_);
  // Whole-batch bounds pre-check: a rejected batch must reach *no* shard,
  // or the fleet's watermarks would disagree about what exists.
  for (const live::LiveUpdate& u : updates) {
    if (u.kind == live::UpdateKind::kInsert &&
        (u.u > options_.max_vertex_id || u.v > options_.max_vertex_id)) {
      r.status = live::ApplyStatus::kBounds;
      r.message = "vertex id exceeds max_vertex_id (" +
                  std::to_string(options_.max_vertex_id) + ")";
      return r;
    }
  }
  const uint64_t fresh_base = journal_base_ + journal_.size();
  for (const live::LiveUpdate& u : updates) journal_.push_back(u);
  journal_end_.store(journal_base_ + journal_.size(),
                     std::memory_order_release);
  CatchUpAllLocked(fresh_base);
  TrimJournalLocked();

  const uint64_t watermark = journal_end_.load(std::memory_order_relaxed);
  uint32_t current = 0, behind = 0, down = 0;
  for (const auto& sp : shards_) {
    if (sp->down.load(std::memory_order_relaxed)) {
      ++down;
    } else if (sp->applied.load(std::memory_order_relaxed) == watermark) {
      ++current;
    } else {
      ++behind;
    }
  }
  r.processed = updates.size();
  if (current == 0) {
    r.processed = 0;
    r.status = live::ApplyStatus::kDegraded;
    r.message = "no shard durably accepted the batch (" +
                std::to_string(behind) + " behind, " + std::to_string(down) +
                " down); journaled for replay after heal";
  } else if (behind + down > 0) {
    r.message = std::to_string(behind) + " shard(s) behind, " +
                std::to_string(down) + " down; replay queued";
  }
  return r;
}

void ShardedQueryEngine::CatchUp() {
  if (!live_mode_) return;
  std::lock_guard<std::mutex> lock(write_mu_);
  // No new writes ride along, so everything applied here is replay.
  CatchUpAllLocked(journal_base_ + journal_.size());
  TrimJournalLocked();
}

bool ShardedQueryEngine::Checkpoint(std::string* error) {
  if (!live_mode_) {
    if (error != nullptr) *error = "static sharded engine has no checkpoints";
    return false;
  }
  std::lock_guard<std::mutex> lock(write_mu_);
  bool ok = true;
  std::string combined;
  for (auto& sp : shards_) {
    if (sp->down.load(std::memory_order_relaxed) || sp->live == nullptr) {
      continue;
    }
    std::string err;
    if (!sp->live->Checkpoint(&err)) {
      ok = false;
      if (!combined.empty()) combined += "; ";
      combined += "shard " + std::to_string(sp->id) + ": " + err;
    }
  }
  if (!ok && error != nullptr) *error = combined;
  return ok;
}

bool ShardedQueryEngine::RefreezeAll() {
  if (!live_mode_) return true;
  bool ok = true;
  for (auto& sp : shards_) {
    if (sp->down.load(std::memory_order_relaxed) || sp->live == nullptr) {
      continue;
    }
    ok = sp->live->RefreezeNow() && ok;
  }
  return ok;
}

// ---- Introspection ---------------------------------------------------------

std::vector<ShardStatus> ShardedQueryEngine::Status() const {
  const Clock::time_point now = Clock::now();
  const uint64_t watermark = journal_end_.load(std::memory_order_acquire);
  std::vector<ShardStatus> out;
  out.reserve(shards_.size());
  for (const auto& sp : shards_) {
    const Shard& s = *sp;
    ShardStatus st;
    st.id = s.id;
    st.state = ClassName(static_cast<int>(Classify(s, now)));
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      st.down_reason = s.down_reason;
    }
    if (s.live != nullptr) {
      st.health = s.live->Health();
      const live::LiveStats ls = s.live->Stats();
      st.epoch = ls.snapshot_epoch;
      st.wal_applied_seq = ls.applied_seq;
    }
    st.journal_applied = s.applied.load(std::memory_order_relaxed);
    st.journal_lag =
        watermark > st.journal_applied ? watermark - st.journal_applied : 0;
    st.queries = s.queries.load(std::memory_order_relaxed);
    st.drained = s.drained.load(std::memory_order_relaxed);
    st.stall_trips = s.stall_trips.load(std::memory_order_relaxed);
    st.replayed = s.replayed.load(std::memory_order_relaxed);
    out.push_back(std::move(st));
  }
  return out;
}

uint64_t ShardedQueryEngine::MemoryBytes() const {
  uint64_t total = 0;
  for (const auto& sp : shards_) {
    if (sp->live != nullptr) {
      total += sp->live->CurrentSnapshot()->index.MemoryBytes();
    } else if (sp->frozen != nullptr) {
      total += sp->frozen->MemoryBytes();
    }
  }
  return total;
}

void ShardedQueryEngine::ExportMetrics() const {
  const Clock::time_point now = Clock::now();
  uint32_t ok = 0, degraded = 0, down = 0;
  for (const auto& sp : shards_) {
    switch (Classify(*sp, now)) {
      case ShardClass::kOk: ++ok; break;
      case ShardClass::kDegraded: ++degraded; break;
      case ShardClass::kDown: ++down; break;
    }
    if (sp->live != nullptr) sp->live->ExportMetrics();
  }
  reg_.GetGauge("esd_shard_count", "Configured shards").Set(shards_.size());
  reg_.GetGauge("esd_shard_ok", "Shards serving and current").Set(ok);
  reg_.GetGauge("esd_shard_degraded", "Shards alive but excluded from merges")
      .Set(degraded);
  reg_.GetGauge("esd_shard_down", "Shards quarantined or breaker-tripped")
      .Set(down);
  uint64_t backlog = 0;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    backlog = journal_.size();
  }
  reg_.GetGauge("esd_shard_journal_backlog",
                "Catch-up journal entries retained for lagging shards")
      .Set(static_cast<double>(backlog));
}

}  // namespace esd::shard
