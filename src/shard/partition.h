#ifndef ESD_SHARD_PARTITION_H_
#define ESD_SHARD_PARTITION_H_

#include <cstdint>
#include <functional>

#include "graph/graph.h"

namespace esd::shard {

/// splitmix64 finalizer — the same mixer the fail-point RNG and the graph
/// generators use; full-avalanche, so consecutive vertex ids don't cluster
/// on one shard.
inline uint64_t MixEdgeKey(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// The partition function: which shard owns edge (u, v). Stable across
/// processes and runs — it depends only on the normalized endpoint pair —
/// which is what lets a recovered shard re-derive its ownership mask from
/// nothing but its id and the fleet size. num_shards <= 1 collapses to a
/// single owner.
inline uint32_t ShardOfEdge(graph::Edge e, uint32_t num_shards) {
  if (num_shards <= 1) return 0;
  const graph::Edge n = graph::MakeEdge(e.u, e.v);
  const uint64_t key = (static_cast<uint64_t>(n.u) << 32) | n.v;
  return static_cast<uint32_t>(MixEdgeKey(key) % num_shards);
}

/// The ownership mask of one shard, in the shape EpochSnapshotManager's
/// ServeFilter and core::FilterFrozenIndex expect.
inline std::function<bool(graph::Edge)> OwnsFilter(uint32_t shard,
                                                   uint32_t num_shards) {
  return [shard, num_shards](graph::Edge e) {
    return ShardOfEdge(e, num_shards) == shard;
  };
}

}  // namespace esd::shard

#endif  // ESD_SHARD_PARTITION_H_
