#ifndef ESD_CLIQUES_KCLIQUE_H_
#define ESD_CLIQUES_KCLIQUE_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace esd::cliques {

/// Lists every k-clique of `g` exactly once, invoking `fn` with the k
/// member vertices. The enumeration recurses over the degree-ordered DAG,
/// intersecting out-neighborhoods (Chiba–Nishizeki / kClist style, the
/// O(k·m·α^(k-2)) family cited by the paper's related work).
///
/// `k` must be >= 1. For k == 1 this lists vertices; for k == 2, edges.
/// The span passed to `fn` is only valid during the call.
void ForEachKClique(const graph::Graph& g, int k,
                    const std::function<void(std::span<const graph::VertexId>)>& fn);

/// Number of k-cliques.
uint64_t CountKCliques(const graph::Graph& g, int k);

}  // namespace esd::cliques

#endif  // ESD_CLIQUES_KCLIQUE_H_
