#include "cliques/truss.h"

#include <algorithm>

#include "cliques/triangle.h"

namespace esd::cliques {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;

TrussDecomposition ComputeTrussness(const Graph& g) {
  const EdgeId m = g.NumEdges();
  TrussDecomposition out;
  out.trussness.assign(m, 2);
  if (m == 0) return out;

  std::vector<uint32_t> support = EdgeSupport(g);
  const uint32_t max_support =
      *std::max_element(support.begin(), support.end());

  // Bucket sort edges by support (Batagelj–Zaveršnik style peeling).
  std::vector<uint32_t> bin(max_support + 2, 0);
  for (EdgeId e = 0; e < m; ++e) ++bin[support[e]];
  uint32_t start = 0;
  for (uint32_t s = 0; s <= max_support; ++s) {
    uint32_t cnt = bin[s];
    bin[s] = start;
    start += cnt;
  }
  std::vector<EdgeId> sorted(m);
  std::vector<uint32_t> pos(m);
  for (EdgeId e = 0; e < m; ++e) {
    pos[e] = bin[support[e]];
    sorted[pos[e]] = e;
    ++bin[support[e]];
  }
  for (uint32_t s = max_support; s >= 1; --s) bin[s] = bin[s - 1];
  bin[0] = 0;

  std::vector<uint8_t> removed(m, 0);
  auto decrease_support = [&](EdgeId e, uint32_t floor_support) {
    uint32_t s = support[e];
    if (s <= floor_support) return;
    // Swap e to the front of its bucket, shift the bucket boundary.
    uint32_t pe = pos[e];
    uint32_t pfirst = bin[s];
    EdgeId first = sorted[pfirst];
    if (first != e) {
      sorted[pe] = first;
      pos[first] = pe;
      sorted[pfirst] = e;
      pos[e] = pfirst;
    }
    ++bin[s];
    --support[e];
  };

  uint32_t k = 2;
  for (uint32_t i = 0; i < m; ++i) {
    EdgeId e = sorted[i];
    k = std::max(k, support[e] + 2);
    out.trussness[e] = k;
    removed[e] = 1;
    // Every surviving triangle through e loses a triangle on its other two
    // edges. Walk the (sorted) adjacency of both endpoints in lockstep.
    const graph::Edge& uv = g.EdgeAt(e);
    auto nu = g.Neighbors(uv.u);
    auto eu = g.IncidentEdges(uv.u);
    auto nv = g.Neighbors(uv.v);
    auto ev = g.IncidentEdges(uv.v);
    size_t a = 0, b = 0;
    while (a < nu.size() && b < nv.size()) {
      if (nu[a] < nv[b]) {
        ++a;
      } else if (nu[a] > nv[b]) {
        ++b;
      } else {
        EdgeId e1 = eu[a], e2 = ev[b];
        if (!removed[e1] && !removed[e2]) {
          decrease_support(e1, support[e]);
          decrease_support(e2, support[e]);
        }
        ++a;
        ++b;
      }
    }
  }
  out.max_trussness = k;
  return out;
}

}  // namespace esd::cliques
