#ifndef ESD_CLIQUES_TRIANGLE_H_
#define ESD_CLIQUES_TRIANGLE_H_

#include <cstdint>
#include <functional>

#include "graph/graph.h"
#include "graph/orientation.h"

namespace esd::cliques {

/// A triangle {u, v, w} with the ids of its three edges. Vertices satisfy
/// u ≺ v ≺ w in the degree ordering of the DAG used for enumeration.
struct Triangle {
  graph::VertexId u, v, w;
  graph::EdgeId uv, uw, vw;
};

/// Enumerates every triangle exactly once by intersecting out-neighborhoods
/// on the degree-ordered DAG (the standard O(αm) algorithm).
void ForEachTriangle(const graph::DegreeOrderedDag& dag,
                     const std::function<void(const Triangle&)>& fn);

/// Number of triangles.
uint64_t CountTriangles(const graph::Graph& g);

/// Per-edge triangle support |N(uv)| for every edge, computed in O(αm).
std::vector<uint32_t> EdgeSupport(const graph::Graph& g);

/// Global clustering coefficient 3*triangles / open wedges (0 if no wedge).
double GlobalClusteringCoefficient(const graph::Graph& g);

}  // namespace esd::cliques

#endif  // ESD_CLIQUES_TRIANGLE_H_
