#ifndef ESD_CLIQUES_FOUR_CLIQUE_H_
#define ESD_CLIQUES_FOUR_CLIQUE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/orientation.h"

namespace esd::cliques {

/// A 4-clique {u, v, w1, w2} with the ids of all six edges. The guarantees
/// are u ≺ v, and {w1, w2} ⊆ N+(u) ∩ N+(v) with w1 ≺ w2; every 4-clique of
/// the graph is emitted exactly once (Observation 1 of the paper maps each
/// such clique to one edge of one edge ego-network).
struct FourClique {
  graph::VertexId u, v, w1, w2;
  graph::EdgeId uv, uw1, uw2, vw1, vw2, w1w2;
};

/// Scratch buffers reused across arcs, so per-arc enumeration does not
/// allocate. One instance per thread in the parallel builder.
class FourCliqueScratch {
 public:
  struct CommonOut {
    graph::VertexId w;
    graph::EdgeId uw;
    graph::EdgeId vw;
  };
  std::vector<CommonOut> common;
};

/// Enumerates the 4-cliques whose two lowest-ranked vertices are the arc
/// (u, v) of the DAG (u ≺ v). `e_uv` is the undirected edge id of the arc.
/// The union over all arcs yields each 4-clique exactly once.
///
/// `fn` is a callable taking (const FourClique&); it is a template
/// parameter so the per-clique dispatch inlines (this sits on the index
/// builder's hottest path).
template <typename Fn>
void ForEach4CliqueOfArc(const graph::DegreeOrderedDag& dag, graph::VertexId u,
                         graph::VertexId v, graph::EdgeId e_uv,
                         FourCliqueScratch* scratch, Fn&& fn) {
  auto nu = dag.OutNeighbors(u);
  auto eu = dag.OutEdges(u);
  auto nv = dag.OutNeighbors(v);
  auto ev = dag.OutEdges(v);

  // W = N+(u) ∩ N+(v), with the edge ids to both endpoints.
  auto& common = scratch->common;
  common.clear();
  size_t i = 0, j = 0;
  while (i < nu.size() && j < nv.size()) {
    if (nu[i] < nv[j]) {
      ++i;
    } else if (nu[i] > nv[j]) {
      ++j;
    } else {
      common.push_back({nu[i], eu[i], ev[j]});
      ++i;
      ++j;
    }
  }
  if (common.size() < 2) return;

  // Edges inside W: for each w1 in W, merge-intersect N+(w1) with W (both
  // sorted by vertex id). Each such edge (w1, w2) closes exactly one
  // 4-clique {u, v, w1, w2}.
  for (size_t a = 0; a < common.size(); ++a) {
    graph::VertexId w1 = common[a].w;
    auto nw = dag.OutNeighbors(w1);
    auto ew = dag.OutEdges(w1);
    // q scans all of W: id order need not agree with rank order, so lower-id
    // members can still be out-neighbors of w1. Each W-edge lives in exactly
    // one out-list, so nothing is emitted twice.
    size_t p = 0, q = 0;
    while (p < nw.size() && q < common.size()) {
      if (nw[p] < common[q].w) {
        ++p;
      } else if (nw[p] > common[q].w) {
        ++q;
      } else {
        const auto& c2 = common[q];
        fn(FourClique{u, v, w1, c2.w, e_uv, common[a].uw, c2.uw, common[a].vw,
                      c2.vw, ew[p]});
        ++p;
        ++q;
      }
    }
  }
}

/// Enumerates all 4-cliques of the graph exactly once, in O(α²m) time
/// (Chiba–Nishizeki via the degree-ordered DAG).
template <typename Fn>
void ForEach4Clique(const graph::DegreeOrderedDag& dag, Fn&& fn) {
  FourCliqueScratch scratch;
  const graph::VertexId n = dag.NumVertices();
  for (graph::VertexId u = 0; u < n; ++u) {
    auto nu = dag.OutNeighbors(u);
    auto eu = dag.OutEdges(u);
    for (size_t vi = 0; vi < nu.size(); ++vi) {
      ForEach4CliqueOfArc(dag, u, nu[vi], eu[vi], &scratch, fn);
    }
  }
}

/// Number of 4-cliques.
uint64_t Count4Cliques(const graph::Graph& g);

}  // namespace esd::cliques

#endif  // ESD_CLIQUES_FOUR_CLIQUE_H_
