#ifndef ESD_CLIQUES_TRUSS_H_
#define ESD_CLIQUES_TRUSS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace esd::cliques {

/// Result of k-truss decomposition (Wang & Cheng; cited by the paper's
/// related work). The trussness of an edge is the largest k such that the
/// edge lives in a subgraph where every edge closes >= k-2 triangles.
struct TrussDecomposition {
  /// Trussness per edge (>= 2 for every edge of a nonempty graph).
  std::vector<uint32_t> trussness;
  /// Maximum trussness over all edges (0 for edgeless graphs).
  uint32_t max_trussness = 0;
};

/// Support-peeling truss decomposition over the oriented triangle listing.
/// Useful as a "tie strength / community density" contrast to structural
/// diversity: a high-trussness edge sits inside ONE dense community, while
/// a high-ESD edge touches MANY sparse ones.
TrussDecomposition ComputeTrussness(const graph::Graph& g);

}  // namespace esd::cliques

#endif  // ESD_CLIQUES_TRUSS_H_
