#include "cliques/four_clique.h"

namespace esd::cliques {

uint64_t Count4Cliques(const graph::Graph& g) {
  graph::DegreeOrderedDag dag(g);
  uint64_t count = 0;
  ForEach4Clique(dag, [&count](const FourClique&) { ++count; });
  return count;
}

}  // namespace esd::cliques
