#include "cliques/triangle.h"

namespace esd::cliques {

using graph::DegreeOrderedDag;
using graph::EdgeId;
using graph::Graph;
using graph::VertexId;

void ForEachTriangle(const DegreeOrderedDag& dag,
                     const std::function<void(const Triangle&)>& fn) {
  const VertexId n = dag.NumVertices();
  for (VertexId u = 0; u < n; ++u) {
    auto nu = dag.OutNeighbors(u);
    auto eu = dag.OutEdges(u);
    for (size_t vi = 0; vi < nu.size(); ++vi) {
      VertexId v = nu[vi];
      auto nv = dag.OutNeighbors(v);
      auto ev = dag.OutEdges(v);
      // Merge-intersect out-lists of u and v (both sorted by id).
      size_t i = 0, j = 0;
      while (i < nu.size() && j < nv.size()) {
        if (nu[i] < nv[j]) {
          ++i;
        } else if (nu[i] > nv[j]) {
          ++j;
        } else {
          VertexId w = nu[i];
          // Orientation of (u,v,w): u precedes v and w; v precedes w.
          fn(Triangle{u, v, w, eu[vi], eu[i], ev[j]});
          ++i;
          ++j;
        }
      }
    }
  }
}

uint64_t CountTriangles(const Graph& g) {
  DegreeOrderedDag dag(g);
  uint64_t count = 0;
  ForEachTriangle(dag, [&count](const Triangle&) { ++count; });
  return count;
}

std::vector<uint32_t> EdgeSupport(const Graph& g) {
  std::vector<uint32_t> support(g.NumEdges(), 0);
  DegreeOrderedDag dag(g);
  ForEachTriangle(dag, [&support](const Triangle& t) {
    ++support[t.uv];
    ++support[t.uw];
    ++support[t.vw];
  });
  return support;
}

double GlobalClusteringCoefficient(const Graph& g) {
  uint64_t wedges = 0;
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    uint64_t d = g.Degree(u);
    wedges += d * (d - 1) / 2;
  }
  if (wedges == 0) return 0.0;
  return 3.0 * static_cast<double>(CountTriangles(g)) /
         static_cast<double>(wedges);
}

}  // namespace esd::cliques
