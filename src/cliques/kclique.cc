#include "cliques/kclique.h"

#include <algorithm>

#include "graph/orientation.h"

namespace esd::cliques {

using graph::DegreeOrderedDag;
using graph::Graph;
using graph::VertexId;

namespace {

class KCliqueLister {
 public:
  KCliqueLister(const DegreeOrderedDag& dag, int k,
                const std::function<void(std::span<const VertexId>)>& fn)
      : dag_(dag), k_(k), fn_(fn) {
    clique_.reserve(k);
    cands_.resize(k > 2 ? k - 2 : 0);
  }

  void Run() {
    const VertexId n = dag_.NumVertices();
    for (VertexId u = 0; u < n; ++u) {
      clique_.assign(1, u);
      if (k_ == 1) {
        fn_(clique_);
        continue;
      }
      auto out = dag_.OutNeighbors(u);
      Extend(std::vector<VertexId>(out.begin(), out.end()), 0);
    }
  }

 private:
  // clique_ holds `level + 1` vertices; `cands` are vertices extending it,
  // all ranked above every clique member.
  void Extend(const std::vector<VertexId>& cands, int depth) {
    if (static_cast<int>(clique_.size()) == k_ - 1) {
      for (VertexId w : cands) {
        clique_.push_back(w);
        fn_(clique_);
        clique_.pop_back();
      }
      return;
    }
    for (VertexId w : cands) {
      auto out = dag_.OutNeighbors(w);
      std::vector<VertexId>& next = cands_[depth];
      next.clear();
      std::set_intersection(cands.begin(), cands.end(), out.begin(), out.end(),
                            std::back_inserter(next));
      if (next.empty()) continue;  // cannot reach k members down this branch
      clique_.push_back(w);
      Extend(next, depth + 1);
      clique_.pop_back();
    }
  }

  const DegreeOrderedDag& dag_;
  const int k_;
  const std::function<void(std::span<const VertexId>)>& fn_;
  std::vector<VertexId> clique_;
  std::vector<std::vector<VertexId>> cands_;
};

}  // namespace

void ForEachKClique(const Graph& g, int k,
                    const std::function<void(std::span<const VertexId>)>& fn) {
  if (k < 1) return;
  DegreeOrderedDag dag(g);
  KCliqueLister lister(dag, k, fn);
  lister.Run();
}

uint64_t CountKCliques(const Graph& g, int k) {
  uint64_t count = 0;
  ForEachKClique(g, k, [&count](std::span<const VertexId>) { ++count; });
  return count;
}

}  // namespace esd::cliques
