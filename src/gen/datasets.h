#ifndef ESD_GEN_DATASETS_H_
#define ESD_GEN_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace esd::gen {

/// A named benchmark dataset. These are deterministic synthetic stand-ins
/// for the paper's five SNAP graphs (Table I), scaled to single-core
/// laptop size; see DESIGN.md §2 for the substitution rationale.
struct Dataset {
  std::string name;
  graph::Graph graph;
};

/// Names of the five Table-I stand-ins, in the paper's order:
/// youtube-s, wikitalk-s, dblp-s, pokec-s, livejournal-s.
std::vector<std::string> StandardDatasetNames();

/// Generates a standard dataset by name. `scale` multiplies the vertex
/// budget (1.0 ≈ 1/100 of the paper's graphs; raise it on bigger hardware).
/// Unknown names abort in debug builds and return an empty graph otherwise.
Dataset LoadStandardDataset(const std::string& name, double scale = 1.0);

/// Statistics reported in the paper's Table I.
struct DatasetStats {
  uint64_t n = 0;
  uint64_t m = 0;
  uint32_t max_degree = 0;
  uint32_t degeneracy = 0;
};
DatasetStats ComputeStats(const graph::Graph& g);

}  // namespace esd::gen

#endif  // ESD_GEN_DATASETS_H_
