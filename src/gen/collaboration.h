#ifndef ESD_GEN_COLLABORATION_H_
#define ESD_GEN_COLLABORATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace esd::gen {

/// Parameters of the DBLP-like co-authorship generator.
struct CollaborationParams {
  uint32_t num_authors = 20000;
  uint32_t num_communities = 40;   // research areas
  uint32_t num_papers = 30000;     // each paper cliques its author set
  uint32_t min_authors_per_paper = 2;
  uint32_t max_authors_per_paper = 5;
  /// Probability that a paper draws all its authors from one community
  /// (the rest mix two communities, creating ordinary cross links).
  double intra_community_paper_p = 0.92;
  /// Zipf-ish skew of author productivity (higher = more superstars).
  double productivity_skew = 0.8;

  /// Planted high-ESD "bridge" pairs: two prolific co-authors who write
  /// papers with small, mutually unrelated groups from
  /// `contexts_per_bridge` different communities — their common
  /// neighborhood splits into that many components (the paper's Fig. 12
  /// (a)/(b) shape).
  uint32_t num_bridge_pairs = 5;
  uint32_t contexts_per_bridge = 8;
  uint32_t authors_per_context = 3;

  /// Planted barbell: two cliques joined by a single co-authorship — the
  /// weak-tie shape that betweenness (BT) favors (Fig. 12 (e)/(f)).
  uint32_t num_barbells = 3;
  uint32_t barbell_clique_size = 12;
};

/// A generated co-authorship network with ground-truth annotations.
struct CollaborationGraph {
  graph::Graph graph;
  std::vector<uint32_t> community;             // per author
  std::vector<graph::Edge> planted_bridges;    // expected ESD winners
  std::vector<graph::Edge> planted_barbells;   // expected BT winners
  std::vector<std::string> author_names;       // synthetic labels
};

/// Generates the network. Every paper contributes a clique on its authors,
/// so the graph is triangle-rich like real co-authorship data.
CollaborationGraph GenerateCollaboration(const CollaborationParams& params,
                                         uint64_t seed);

}  // namespace esd::gen

#endif  // ESD_GEN_COLLABORATION_H_
