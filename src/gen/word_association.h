#ifndef ESD_GEN_WORD_ASSOCIATION_H_
#define ESD_GEN_WORD_ASSOCIATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace esd::gen {

/// A planted polysemous word pair together with its sense clusters — the
/// ground truth of the word-association case study (Exp-8 / Fig. 13).
struct PolysemousPair {
  std::string word_a;
  std::string word_b;
  /// Each inner vector is one "sense": words all associated with both
  /// members of the pair and with each other, but not with other senses.
  std::vector<std::vector<std::string>> senses;
};

/// A word-association network with vertex labels.
struct WordAssociationGraph {
  graph::Graph graph;
  std::vector<std::string> words;            // per vertex
  std::vector<graph::Edge> planted_pairs;    // the polysemous pairs
  std::vector<PolysemousPair> ground_truth;  // parallel to planted_pairs

  /// Vertex id of `word`, or UINT32_MAX if absent.
  graph::VertexId Find(const std::string& word) const;
};

/// Parameters for the synthetic USF-like free-association network.
struct WordAssociationParams {
  /// Background vocabulary beyond the curated lexicon.
  uint32_t background_words = 4500;
  /// Mean associations per background word (Holme–Kim attachment).
  uint32_t background_attach = 10;
  double background_triad_p = 0.4;
  /// Random noise associations from sense words into the background.
  uint32_t noise_edges_per_sense_word = 2;
};

/// Builds the network: an embedded curated lexicon plants the paper's
/// "bank–money" and "wood–house" style polysemous pairs (each sense is a
/// clique hanging off both pair words), grafted onto a Holme–Kim background
/// of generic words.
WordAssociationGraph GenerateWordAssociation(const WordAssociationParams& p,
                                             uint64_t seed);

}  // namespace esd::gen

#endif  // ESD_GEN_WORD_ASSOCIATION_H_
