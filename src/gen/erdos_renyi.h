#ifndef ESD_GEN_ERDOS_RENYI_H_
#define ESD_GEN_ERDOS_RENYI_H_

#include <cstdint>

#include "graph/graph.h"

namespace esd::gen {

/// G(n, m): exactly `m` distinct uniform random edges (self-loop free).
/// `m` is clamped to the number of possible edges.
graph::Graph ErdosRenyiGnm(uint32_t n, uint64_t m, uint64_t seed);

/// G(n, p): every edge independently with probability p. O(n²) — intended
/// for small test graphs.
graph::Graph ErdosRenyiGnp(uint32_t n, double p, uint64_t seed);

}  // namespace esd::gen

#endif  // ESD_GEN_ERDOS_RENYI_H_
