#ifndef ESD_GEN_BARABASI_ALBERT_H_
#define ESD_GEN_BARABASI_ALBERT_H_

#include <cstdint>

#include "graph/graph.h"

namespace esd::gen {

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `attach` existing vertices chosen proportionally to degree. Produces a
/// power-law degree distribution with pronounced hubs — the shape of the
/// paper's Youtube dataset. Requires attach >= 1; n > attach.
graph::Graph BarabasiAlbert(uint32_t n, uint32_t attach, uint64_t seed);

}  // namespace esd::gen

#endif  // ESD_GEN_BARABASI_ALBERT_H_
