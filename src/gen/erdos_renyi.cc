#include "gen/erdos_renyi.h"

#include <algorithm>

#include "util/flat_map.h"
#include "util/rng.h"

namespace esd::gen {

using graph::Edge;
using graph::Graph;
using graph::VertexId;

Graph ErdosRenyiGnm(uint32_t n, uint64_t m, uint64_t seed) {
  util::Rng rng(seed);
  uint64_t max_edges = n < 2 ? 0 : static_cast<uint64_t>(n) * (n - 1) / 2;
  m = std::min(m, max_edges);
  util::FlatSet<uint64_t> seen(m);
  std::vector<Edge> edges;
  edges.reserve(m);
  while (edges.size() < m) {
    VertexId a = static_cast<VertexId>(rng.NextBounded(n));
    VertexId b = static_cast<VertexId>(rng.NextBounded(n));
    if (a == b) continue;
    Edge e = graph::MakeEdge(a, b);
    uint64_t key = (static_cast<uint64_t>(e.u) << 32) | e.v;
    if (seen.Insert(key)) edges.push_back(e);
  }
  return Graph::FromEdges(n, std::move(edges));
}

Graph ErdosRenyiGnp(uint32_t n, double p, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Edge> edges;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      if (rng.NextBool(p)) edges.push_back(Edge{u, v});
    }
  }
  return Graph::FromEdges(n, std::move(edges));
}

}  // namespace esd::gen
