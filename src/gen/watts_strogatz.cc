#include "gen/watts_strogatz.h"

#include "util/flat_map.h"
#include "util/rng.h"

namespace esd::gen {

using graph::Edge;
using graph::Graph;
using graph::VertexId;

Graph WattsStrogatz(uint32_t n, uint32_t k, double rewire_p, uint64_t seed) {
  util::Rng rng(seed);
  if (n < 3 || k < 2) return Graph::FromEdges(n, {});
  uint32_t half = std::min(k / 2, (n - 1) / 2);
  std::vector<Edge> edges;
  util::FlatSet<uint64_t> present(static_cast<size_t>(n) * half);
  auto key = [](Edge e) {
    return (static_cast<uint64_t>(e.u) << 32) | e.v;
  };
  for (VertexId u = 0; u < n; ++u) {
    for (uint32_t d = 1; d <= half; ++d) {
      Edge e = graph::MakeEdge(u, (u + d) % n);
      if (present.Insert(key(e))) edges.push_back(e);
    }
  }
  // Rewire: replace the far endpoint with a uniform random vertex.
  for (Edge& e : edges) {
    if (!rng.NextBool(rewire_p)) continue;
    for (int tries = 0; tries < 16; ++tries) {
      VertexId w = static_cast<VertexId>(rng.NextBounded(n));
      if (w == e.u) continue;
      Edge cand = graph::MakeEdge(e.u, w);
      if (present.Contains(key(cand))) continue;
      present.Erase(key(e));
      present.Insert(key(cand));
      e = cand;
      break;
    }
  }
  return Graph::FromEdges(n, std::move(edges));
}

}  // namespace esd::gen
