#include "gen/barabasi_albert.h"

#include <algorithm>

#include "util/rng.h"

namespace esd::gen {

using graph::Edge;
using graph::Graph;
using graph::VertexId;

Graph BarabasiAlbert(uint32_t n, uint32_t attach, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Edge> edges;
  if (n <= 1 || attach == 0) return Graph::FromEdges(n, {});
  attach = std::min(attach, n - 1);
  edges.reserve(static_cast<size_t>(n) * attach);

  // `endpoints` holds every edge endpoint once; sampling a uniform element
  // is degree-proportional sampling.
  std::vector<VertexId> endpoints;
  endpoints.reserve(2 * static_cast<size_t>(n) * attach);

  // Seed: a small clique on the first attach+1 vertices.
  for (VertexId u = 0; u <= attach; ++u) {
    for (VertexId v = u + 1; v <= attach; ++v) {
      edges.push_back(Edge{u, v});
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  std::vector<VertexId> targets(attach);
  for (VertexId u = attach + 1; u < n; ++u) {
    // Draw `attach` distinct degree-proportional targets.
    size_t got = 0;
    while (got < attach) {
      VertexId t = endpoints[rng.NextBounded(endpoints.size())];
      bool dup = false;
      for (size_t i = 0; i < got; ++i) {
        if (targets[i] == t) {
          dup = true;
          break;
        }
      }
      if (!dup) targets[got++] = t;
    }
    for (VertexId t : targets) {
      edges.push_back(graph::MakeEdge(u, t));
      endpoints.push_back(u);
      endpoints.push_back(t);
    }
  }
  return Graph::FromEdges(n, std::move(edges));
}

}  // namespace esd::gen
