#include "gen/rmat.h"

#include "util/rng.h"

namespace esd::gen {

using graph::Edge;
using graph::Graph;
using graph::VertexId;

Graph Rmat(const RmatParams& params, uint64_t seed) {
  util::Rng rng(seed);
  const uint32_t n = 1u << params.scale;
  const uint64_t target =
      static_cast<uint64_t>(params.edge_factor * static_cast<double>(n));
  std::vector<Edge> edges;
  edges.reserve(target);
  const double ab = params.a + params.b;
  const double abc = ab + params.c;
  for (uint64_t i = 0; i < target; ++i) {
    uint32_t u = 0, v = 0;
    for (uint32_t bit = 0; bit < params.scale; ++bit) {
      double r = rng.NextDouble();
      if (r < params.a) {
        // upper-left: no bits set
      } else if (r < ab) {
        v |= 1u << bit;
      } else if (r < abc) {
        u |= 1u << bit;
      } else {
        u |= 1u << bit;
        v |= 1u << bit;
      }
    }
    if (u != v) edges.push_back(graph::MakeEdge(u, v));
  }
  return Graph::FromEdges(n, std::move(edges));
}

}  // namespace esd::gen
