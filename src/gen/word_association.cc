#include "gen/word_association.h"

#include <algorithm>

#include "graph/builder.h"
#include "util/flat_map.h"
#include "util/rng.h"

namespace esd::gen {

using graph::Edge;
using graph::Graph;
using graph::VertexId;

namespace {

/// The curated lexicon: polysemous pairs with their sense clusters,
/// modeled on the paper's Fig. 13 examples.
std::vector<PolysemousPair> CuratedPairs() {
  return {
      {"bank",
       "money",
       {
           {"account", "check", "deposit", "save", "teller", "vault"},
           {"loan", "mortgage", "federal"},
           {"rob", "steal"},
           {"rich", "wealth"},
           {"bill", "cash"},
           {"river", "shore"},
       }},
      {"wood",
       "house",
       {
           {"cabin", "log", "lodge"},
           {"door", "floor", "frame"},
           {"fire", "stove"},
           {"forest", "tree"},
           {"build", "carpenter"},
       }},
      {"light",
       "fire",
       {
           {"match", "candle", "flame"},
           {"lamp", "bulb"},
           {"sun", "bright"},
           {"camp", "smoke"},
       }},
      {"cold",
       "water",
       {
           {"ice", "freeze", "frost"},
           {"shower", "bath"},
           {"winter", "snow"},
           {"drink", "glass"},
       }},
  };
}

}  // namespace

VertexId WordAssociationGraph::Find(const std::string& word) const {
  for (VertexId v = 0; v < words.size(); ++v) {
    if (words[v] == word) return v;
  }
  return UINT32_MAX;
}

WordAssociationGraph GenerateWordAssociation(const WordAssociationParams& p,
                                             uint64_t seed) {
  util::Rng rng(seed);
  WordAssociationGraph out;
  out.ground_truth = CuratedPairs();

  // Intern curated words first (words may repeat across pairs/senses).
  auto intern = [&out](const std::string& w) -> VertexId {
    for (VertexId v = 0; v < out.words.size(); ++v) {
      if (out.words[v] == w) return v;
    }
    out.words.push_back(w);
    return static_cast<VertexId>(out.words.size() - 1);
  };

  struct SenseClique {
    std::vector<VertexId> members;
  };
  std::vector<Edge> edges;
  std::vector<VertexId> sense_words;  // for noise attachment
  for (const PolysemousPair& pair : out.ground_truth) {
    VertexId a = intern(pair.word_a);
    VertexId b = intern(pair.word_b);
    edges.push_back(graph::MakeEdge(a, b));
    out.planted_pairs.push_back(graph::MakeEdge(a, b));
    for (const auto& sense : pair.senses) {
      std::vector<VertexId> members;
      for (const std::string& w : sense) members.push_back(intern(w));
      // Every sense word associates with both pair words and with the rest
      // of its sense.
      for (size_t i = 0; i < members.size(); ++i) {
        edges.push_back(graph::MakeEdge(a, members[i]));
        edges.push_back(graph::MakeEdge(b, members[i]));
        sense_words.push_back(members[i]);
        for (size_t j = i + 1; j < members.size(); ++j) {
          edges.push_back(graph::MakeEdge(members[i], members[j]));
        }
      }
    }
  }

  // Background vocabulary: generic words in a clustered scale-free blob.
  const VertexId curated = static_cast<VertexId>(out.words.size());
  for (uint32_t i = 0; i < p.background_words; ++i) {
    out.words.push_back("word" + std::to_string(i));
  }
  const VertexId n = static_cast<VertexId>(out.words.size());

  // Holme–Kim-style attachment over the background block.
  std::vector<VertexId> endpoints;
  if (p.background_words > 2 && p.background_attach > 0) {
    uint32_t attach = std::min(p.background_attach, p.background_words - 1);
    for (VertexId u = curated; u <= curated + attach; ++u) {
      for (VertexId v = u + 1; v <= curated + attach; ++v) {
        edges.push_back(Edge{u, v});
        endpoints.push_back(u);
        endpoints.push_back(v);
      }
    }
    for (VertexId u = curated + attach + 1; u < n; ++u) {
      for (uint32_t i = 0; i < attach; ++i) {
        VertexId t = endpoints[rng.NextBounded(endpoints.size())];
        if (t == u) continue;
        edges.push_back(graph::MakeEdge(u, t));
        endpoints.push_back(u);
        endpoints.push_back(t);
      }
    }
  }

  // Noise: loose associations from sense words into the background, so the
  // curated structure is embedded rather than an island. These do not touch
  // the planted pairs' common neighborhoods.
  if (!endpoints.empty()) {
    for (VertexId w : sense_words) {
      for (uint32_t i = 0; i < p.noise_edges_per_sense_word; ++i) {
        VertexId t = endpoints[rng.NextBounded(endpoints.size())];
        edges.push_back(graph::MakeEdge(w, t));
      }
    }
  }

  out.graph = Graph::FromEdges(n, std::move(edges));
  return out;
}

}  // namespace esd::gen
