#include "gen/planted_partition.h"

#include "util/rng.h"

namespace esd::gen {

using graph::Edge;
using graph::Graph;
using graph::VertexId;

PlantedPartitionResult PlantedPartition(uint32_t num_communities,
                                        uint32_t community_size, double p_in,
                                        double p_out, uint64_t seed) {
  util::Rng rng(seed);
  const VertexId n = num_communities * community_size;
  PlantedPartitionResult out;
  out.community.resize(n);
  for (VertexId v = 0; v < n; ++v) out.community[v] = v / community_size;

  std::vector<Edge> edges;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      double p = out.community[u] == out.community[v] ? p_in : p_out;
      if (rng.NextBool(p)) edges.push_back(Edge{u, v});
    }
  }
  out.graph = Graph::FromEdges(n, std::move(edges));
  return out;
}

}  // namespace esd::gen
