#ifndef ESD_GEN_WATTS_STROGATZ_H_
#define ESD_GEN_WATTS_STROGATZ_H_

#include <cstdint>

#include "graph/graph.h"

namespace esd::gen {

/// Watts–Strogatz small world: ring lattice where each vertex connects to
/// its `k` nearest neighbors (k rounded down to even), each edge rewired
/// with probability `rewire_p`. High clustering, short paths.
graph::Graph WattsStrogatz(uint32_t n, uint32_t k, double rewire_p,
                           uint64_t seed);

}  // namespace esd::gen

#endif  // ESD_GEN_WATTS_STROGATZ_H_
