#include "gen/collaboration.h"

#include <algorithm>
#include <cmath>

#include "graph/builder.h"
#include "util/rng.h"

namespace esd::gen {

using graph::Edge;
using graph::Graph;
using graph::VertexId;

CollaborationGraph GenerateCollaboration(const CollaborationParams& params,
                                         uint64_t seed) {
  util::Rng rng(seed);
  CollaborationGraph out;

  const uint32_t reserved =
      params.num_bridge_pairs *
          (2 + params.contexts_per_bridge * params.authors_per_context) +
      params.num_barbells * 2 * params.barbell_clique_size;
  const uint32_t n = params.num_authors;
  const uint32_t background = n > reserved ? n - reserved : 0;
  const uint32_t comms = std::max(1u, params.num_communities);
  const uint32_t comm_size = std::max(1u, background / comms);

  out.community.resize(n, comms);  // reserved authors get their own label
  for (VertexId a = 0; a < background; ++a) {
    out.community[a] = std::min(a / comm_size, comms - 1);
  }
  out.author_names.resize(n);
  for (VertexId a = 0; a < n; ++a) {
    out.author_names[a] = "Author_" + std::to_string(a);
  }

  graph::GraphBuilder builder(n);

  // Skewed (Zipf-like) author pick within a community: low offsets are the
  // community's prolific authors.
  auto pick_author = [&](uint32_t community) {
    double u = rng.NextDouble();
    double exponent = 1.0 + 3.0 * params.productivity_skew;
    uint32_t offset =
        static_cast<uint32_t>(std::pow(u, exponent) * comm_size);
    offset = std::min(offset, comm_size - 1);
    return std::min(community * comm_size + offset, background - 1);
  };
  auto add_paper = [&](const std::vector<VertexId>& authors) {
    for (size_t i = 0; i < authors.size(); ++i) {
      for (size_t j = i + 1; j < authors.size(); ++j) {
        if (authors[i] != authors[j]) builder.AddEdge(authors[i], authors[j]);
      }
    }
  };

  // Background papers.
  std::vector<VertexId> authors;
  if (background > comms) {
    for (uint32_t p = 0; p < params.num_papers; ++p) {
      uint32_t c1 = static_cast<uint32_t>(rng.NextBounded(comms));
      uint32_t c2 = rng.NextBool(params.intra_community_paper_p)
                        ? c1
                        : static_cast<uint32_t>(rng.NextBounded(comms));
      uint32_t count = params.min_authors_per_paper +
                       static_cast<uint32_t>(rng.NextBounded(
                           params.max_authors_per_paper -
                           params.min_authors_per_paper + 1));
      authors.clear();
      for (uint32_t i = 0; i < count; ++i) {
        authors.push_back(pick_author(i % 2 == 0 ? c1 : c2));
      }
      add_paper(authors);
    }
  }

  // Planted bridges: a prolific pair co-authoring with small groups from
  // `contexts_per_bridge` disjoint communities.
  VertexId next_reserved = background;
  for (uint32_t b = 0; b < params.num_bridge_pairs; ++b) {
    VertexId a1 = next_reserved++;
    VertexId a2 = next_reserved++;
    out.author_names[a1] = "BridgeA_" + std::to_string(b);
    out.author_names[a2] = "BridgeB_" + std::to_string(b);
    out.planted_bridges.push_back(graph::MakeEdge(a1, a2));
    for (uint32_t ctx = 0; ctx < params.contexts_per_bridge; ++ctx) {
      uint32_t c = (b * params.contexts_per_bridge + ctx) % comms;
      authors.assign({a1, a2});
      for (uint32_t i = 0; i < params.authors_per_context; ++i) {
        out.community[next_reserved] = c;  // context group lives in area c
        authors.push_back(next_reserved++);
      }
      add_paper(authors);
      // Tie each context group loosely into its background community so the
      // bridge members are not an isolated island.
      if (background > comms) builder.AddEdge(authors[2], pick_author(c));
    }
  }

  // Planted barbells: two reserved cliques joined by a single edge; one
  // side is tethered to the background so inter-blob traffic crosses the
  // joint (the weak tie betweenness loves).
  for (uint32_t b = 0; b < params.num_barbells; ++b) {
    std::vector<VertexId> blob_a, blob_b;
    uint32_t ca = (2 * b) % comms;
    uint32_t cb = (2 * b + 1) % comms;
    for (uint32_t i = 0; i < params.barbell_clique_size; ++i) {
      out.community[next_reserved] = ca;
      blob_a.push_back(next_reserved++);
    }
    for (uint32_t i = 0; i < params.barbell_clique_size; ++i) {
      out.community[next_reserved] = cb;
      blob_b.push_back(next_reserved++);
    }
    add_paper(blob_a);
    add_paper(blob_b);
    out.author_names[blob_a[0]] = "BarbellA_" + std::to_string(b);
    out.author_names[blob_b[0]] = "BarbellB_" + std::to_string(b);
    builder.AddEdge(blob_a[0], blob_b[0]);
    out.planted_barbells.push_back(graph::MakeEdge(blob_a[0], blob_b[0]));
    if (background > comms) {
      builder.AddEdge(blob_a[1],
                      pick_author(static_cast<uint32_t>(rng.NextBounded(comms))));
    }
  }

  out.graph = builder.Build();
  return out;
}

}  // namespace esd::gen
