#ifndef ESD_GEN_PLANTED_PARTITION_H_
#define ESD_GEN_PLANTED_PARTITION_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace esd::gen {

/// Planted-partition (stochastic block) graph with equal-size communities.
struct PlantedPartitionResult {
  graph::Graph graph;
  std::vector<uint32_t> community;  // per vertex
};

/// `num_communities` blocks of `community_size` vertices; intra-community
/// edges with probability p_in, inter with p_out. O(n²) sampling — sized
/// for tests and case studies, not for million-vertex graphs.
PlantedPartitionResult PlantedPartition(uint32_t num_communities,
                                        uint32_t community_size, double p_in,
                                        double p_out, uint64_t seed);

}  // namespace esd::gen

#endif  // ESD_GEN_PLANTED_PARTITION_H_
