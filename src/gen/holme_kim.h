#ifndef ESD_GEN_HOLME_KIM_H_
#define ESD_GEN_HOLME_KIM_H_

#include <cstdint>

#include "graph/graph.h"

namespace esd::gen {

/// Holme–Kim "powerlaw cluster" model: preferential attachment where each
/// subsequent link of a new vertex closes a triangle with probability
/// `triad_p` (attaching to a random neighbor of the previous target).
/// Produces power-law degrees *and* high clustering — the shape of the
/// paper's Pokec/LiveJournal social graphs. Requires attach >= 1.
graph::Graph HolmeKim(uint32_t n, uint32_t attach, double triad_p,
                      uint64_t seed);

}  // namespace esd::gen

#endif  // ESD_GEN_HOLME_KIM_H_
