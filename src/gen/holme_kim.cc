#include "gen/holme_kim.h"

#include <algorithm>

#include "util/flat_map.h"
#include "util/rng.h"

namespace esd::gen {

using graph::Edge;
using graph::Graph;
using graph::VertexId;

Graph HolmeKim(uint32_t n, uint32_t attach, double triad_p, uint64_t seed) {
  util::Rng rng(seed);
  if (n <= 1 || attach == 0) return Graph::FromEdges(n, {});
  attach = std::min(attach, n - 1);

  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(n) * attach);
  std::vector<VertexId> endpoints;  // degree-proportional sampling pool
  std::vector<std::vector<VertexId>> adj(n);

  auto add_edge = [&](VertexId a, VertexId b) {
    edges.push_back(graph::MakeEdge(a, b));
    endpoints.push_back(a);
    endpoints.push_back(b);
    adj[a].push_back(b);
    adj[b].push_back(a);
  };

  for (VertexId u = 0; u <= attach; ++u) {
    for (VertexId v = u + 1; v <= attach; ++v) add_edge(u, v);
  }

  util::FlatSet<VertexId> linked;
  for (VertexId u = attach + 1; u < n; ++u) {
    linked.Clear();
    VertexId prev_target = 0;
    bool have_prev = false;
    uint32_t made = 0;
    uint32_t guard = 0;
    while (made < attach && guard < 50 * attach) {
      ++guard;
      VertexId t;
      if (have_prev && rng.NextBool(triad_p) && !adj[prev_target].empty()) {
        // Triad step: attach to a random neighbor of the previous target.
        t = adj[prev_target][rng.NextBounded(adj[prev_target].size())];
      } else {
        t = endpoints[rng.NextBounded(endpoints.size())];
      }
      if (t == u || linked.Contains(t)) continue;
      linked.Insert(t);
      add_edge(u, t);
      prev_target = t;
      have_prev = true;
      ++made;
    }
  }
  return Graph::FromEdges(n, std::move(edges));
}

}  // namespace esd::gen
