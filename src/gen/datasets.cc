#include "gen/datasets.h"

#include <cassert>
#include <cmath>

#include "gen/barabasi_albert.h"
#include "gen/collaboration.h"
#include "gen/holme_kim.h"
#include "gen/rmat.h"
#include "graph/builder.h"
#include "util/rng.h"
#include "graph/core_decomposition.h"

namespace esd::gen {

using graph::Graph;

namespace {

// Adds a celebrity layer to a social base graph: `hubs` new vertices that
// form a clique (celebrities know each other) and each follow-connect to
// `followers` random users. Real social graphs (Pokec d_max=14854,
// LiveJournal d_max=14815, Youtube d_max=28754) owe their degree tails to
// such vertices, and hub-hub edges own the large, sparsely-connected
// common neighborhoods that separate the BFS index builder from the
// 4-clique one.
Graph WithCelebrityHubs(const Graph& base, uint32_t hubs, uint32_t followers,
                        uint64_t seed) {
  util::Rng rng(seed);
  const graph::VertexId n = base.NumVertices();
  graph::GraphBuilder b(n + hubs);
  for (const graph::Edge& e : base.Edges()) b.AddEdge(e.u, e.v);
  for (uint32_t h = 0; h < hubs; ++h) {
    graph::VertexId hub = n + h;
    for (uint32_t g2 = h + 1; g2 < hubs; ++g2) b.AddEdge(hub, n + g2);
    for (uint32_t f = 0; f < followers; ++f) {
      b.AddEdge(hub, static_cast<graph::VertexId>(rng.NextBounded(n)));
    }
  }
  return b.Build();
}

}  // namespace

std::vector<std::string> StandardDatasetNames() {
  return {"youtube-s", "wikitalk-s", "dblp-s", "pokec-s", "livejournal-s"};
}

Dataset LoadStandardDataset(const std::string& name, double scale) {
  Dataset out;
  out.name = name;
  auto scaled = [scale](uint32_t base) {
    return static_cast<uint32_t>(base * scale + 0.5);
  };
  if (name == "youtube-s") {
    // Youtube: hub-heavy, sparse (m/n ≈ 2.6), modest clustering.
    out.graph = WithCelebrityHubs(HolmeKim(scaled(11000), 3, 0.35,
                                           /*seed=*/0xA001),
                                  6, scaled(900), 0xB001);
  } else if (name == "wikitalk-s") {
    // WikiTalk: extreme degree skew, very sparse tail (m/n ≈ 1.9).
    RmatParams p;
    p.scale = 14;
    while ((1u << p.scale) < scaled(16384)) ++p.scale;
    p.edge_factor = 2.6;
    p.a = 0.57;
    p.b = 0.19;
    p.c = 0.19;
    p.d = 0.05;
    out.graph = Rmat(p, /*seed=*/0xA002);
  } else if (name == "dblp-s") {
    // DBLP: clique-rich co-authorship communities (m/n ≈ 4.5).
    CollaborationParams p;
    p.num_authors = scaled(18000);
    p.num_communities = 40;
    p.num_papers = scaled(26000);
    out.graph = GenerateCollaboration(p, /*seed=*/0xA003).graph;
  } else if (name == "pokec-s") {
    // Pokec: dense social graph (m/n ≈ 13.7), moderate clustering, small
    // degeneracy, strong celebrity tail (paper d_max=14854).
    out.graph = WithCelebrityHubs(HolmeKim(scaled(9000), 11, 0.25,
                                           /*seed=*/0xA004),
                                  15, scaled(1200), 0xB004);
  } else if (name == "livejournal-s") {
    // LiveJournal: biggest graph, high clustering and degeneracy
    // (m/n ≈ 8.7), celebrity tail (paper d_max=14815).
    out.graph = WithCelebrityHubs(HolmeKim(scaled(14000), 8, 0.55,
                                           /*seed=*/0xA005),
                                  12, scaled(1400), 0xB005);
  } else {
    assert(false && "unknown dataset name");
  }
  return out;
}

DatasetStats ComputeStats(const Graph& g) {
  DatasetStats s;
  s.n = g.NumVertices();
  s.m = g.NumEdges();
  s.max_degree = g.MaxDegree();
  s.degeneracy = graph::ComputeCores(g).degeneracy;
  return s;
}

}  // namespace esd::gen
