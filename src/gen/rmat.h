#ifndef ESD_GEN_RMAT_H_
#define ESD_GEN_RMAT_H_

#include <cstdint>

#include "graph/graph.h"

namespace esd::gen {

/// R-MAT recursive matrix generator parameters. Probabilities must sum to
/// (approximately) 1; the classic skewed setting a=0.57, b=0.19, c=0.19,
/// d=0.05 mimics the extreme hub structure of communication graphs like
/// the paper's WikiTalk dataset.
struct RmatParams {
  uint32_t scale = 14;        // n = 2^scale vertices
  double edge_factor = 2.0;   // m ≈ edge_factor * n
  double a = 0.57, b = 0.19, c = 0.19, d = 0.05;
};

/// Generates an undirected simple R-MAT graph (self-loops dropped,
/// duplicates collapsed, so the final m is somewhat below the target).
graph::Graph Rmat(const RmatParams& params, uint64_t seed);

}  // namespace esd::gen

#endif  // ESD_GEN_RMAT_H_
