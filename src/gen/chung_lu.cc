#include "gen/chung_lu.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/rng.h"

namespace esd::gen {

using graph::Edge;
using graph::Graph;
using graph::VertexId;

Graph ChungLu(const std::vector<double>& weights, uint64_t seed) {
  const VertexId n = static_cast<VertexId>(weights.size());
  util::Rng rng(seed);

  // Process vertices in non-increasing weight order; for each u, walk the
  // candidate list with geometric skips calibrated to the *maximum*
  // remaining probability, then accept with the true ratio (Miller–Hagberg).
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&weights](VertexId a, VertexId b) {
    return weights[a] > weights[b];
  });
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  std::vector<Edge> edges;
  if (total <= 0) return Graph::FromEdges(n, {});

  for (VertexId i = 0; i < n; ++i) {
    double wi = weights[order[i]];
    VertexId j = i + 1;
    double p = std::min(1.0, wi * (j < n ? weights[order[j]] : 0.0) / total);
    while (j < n && p > 0) {
      if (p < 1.0) {
        double r = rng.NextDouble();
        j += static_cast<VertexId>(std::log(1.0 - r) / std::log(1.0 - p));
      }
      if (j >= n) break;
      double q = std::min(1.0, wi * weights[order[j]] / total);
      if (rng.NextDouble() < q / p) {
        edges.push_back(graph::MakeEdge(order[i], order[j]));
      }
      p = q;
      ++j;
    }
  }
  return Graph::FromEdges(n, std::move(edges));
}

Graph ChungLuPowerLaw(uint32_t n, double gamma, double w_min, double w_max,
                      uint64_t seed) {
  std::vector<double> weights(n);
  for (uint32_t i = 0; i < n; ++i) {
    double w = w_min * std::pow(static_cast<double>(n) / (i + 1),
                                1.0 / (gamma - 1.0));
    weights[i] = std::min(w, w_max);
  }
  return ChungLu(weights, seed);
}

}  // namespace esd::gen
