#ifndef ESD_GEN_CHUNG_LU_H_
#define ESD_GEN_CHUNG_LU_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace esd::gen {

/// Chung–Lu random graph with a given expected-degree sequence: edge (u,v)
/// appears with probability min(1, w_u w_v / Σw). Implemented with the
/// sorted-weight skipping technique, O(n + m) in expectation — the
/// standard degree-preserving null model for skewed graphs.
graph::Graph ChungLu(const std::vector<double>& weights, uint64_t seed);

/// Convenience: Chung–Lu with a truncated power-law weight sequence
/// w_i = w_min * (n/(i+1))^(1/(gamma-1)), capped at `w_max`. gamma > 2.
graph::Graph ChungLuPowerLaw(uint32_t n, double gamma, double w_min,
                             double w_max, uint64_t seed);

}  // namespace esd::gen

#endif  // ESD_GEN_CHUNG_LU_H_
